(** End-to-end driver: MiniC source -> checked AST -> Tir -> promoted IR
    -> sanitizer instrumentation -> VM run. *)

type run_result = {
  outcome : Vm.Machine.outcome;
  cycles : int;            (** deterministic cost-model cycles *)
  resident : int;          (** bytes: all touched pages *)
  program_resident : int;  (** bytes: program-region pages only *)
  output : string;         (** captured stdout *)
  heap_allocs : int;
  instrumented_size : int; (** static instruction count after the pass *)
  reports : Vm.Report.t list;
      (** findings recorded by a [Recover] sink, in submission order;
          empty under [Halt] (the finding is in [outcome]) *)
  suppressed : int;        (** findings deduplicated or over the cap *)
  telemetry : (string * int) list;
      (** runtime gauges (metadata-table degradation, injected faults),
          sorted by key — [snapshot.gauges], kept for callers that only
          want the counters *)
  snapshot : Telemetry.Snapshot.t;
      (** the run's full telemetry: per-check-site counters, named
          counters/gauges, the bounded event ring *)
  site_labels : (int * string) list;
      (** site id -> IR origin ("func.bN\[i\] intrinsic"), sorted — the
          labels behind the [--profile] hot-site report *)
}

val compile : ?optimize:bool -> ?fuel:Tir.Fuel.t -> string -> Tir.Ir.modul
(** Parse, check, lower; [optimize] (default true) runs the -O2 model
    (slot promotion).  Raises [Minic.Sema.Error] or [Tir.Lower.Error].
    Always runs the front end (no caching).  [fuel] burns the produced
    module's size (may raise [Tir.Fuel.Exhausted]). *)

val compile_cached : optimize:bool -> ?fuel:Tir.Fuel.t -> string -> Tir.Ir.modul
(** Like [compile], but parse/check/lower/promote run once per
    (source, optimize) pair; the result is a deep clone ([Tir.Ir.clone])
    of the cached pristine module, safe to mutate.  Thread-safe: the
    cache is shared across Harness.Pool workers.  Fuel burn is
    cache-state independent: a hit burns exactly what the miss would
    have. *)

val clear_compile_cache : unit -> unit
(** Drops every cached module (tests, memory pressure). *)

type verify_mode =
  | Off     (** no static checks *)
  | Warn    (** report rejections on stderr, keep going *)
  | Strict  (** raise [Verifier_reject] *)

val verify_mode : verify_mode ref
(** The [Tir.Verify] gate run by [build]/[build_link] around the
    sanitizer's instrument/optimize phases.  [Strict] by default; the
    bench switches to [Warn] so a verifier regression cannot void a
    measurement run. *)

exception
  Verifier_reject of { tool : string; stage : string; errors : string list }
(** [stage] is ["preopt"] or ["postopt"]; [errors] are rendered
    [Tir.Verify.error]s (plus the coverage-shrink violation, if any). *)

val instrument_verified : ?fuel:Tir.Fuel.t -> Spec.t -> Tir.Ir.modul -> unit
(** The gate itself: instrument, verify, optimize, verify again, and
    require the covered-obligation count non-shrinking across the
    optimization.  Exposed for tools (CLI [--verify], bench) that need
    the phases on a module they built themselves.  [fuel] bounds the
    verifier dataflow fixpoints. *)

val build : Spec.t -> ?optimize:bool -> ?fuel:Tir.Fuel.t -> string -> Tir.Ir.modul
(** [compile_cached], then instrument + optimize under the verification
    gate.  May raise [Spec.Unsupported], [Verifier_reject] or
    [Tir.Fuel.Exhausted]. *)

val build_link :
  Spec.t ->
  ?optimize:bool ->
  (string * [ `Instrumented | `Uninstrumented ]) list ->
  Tir.Ir.modul
(** Multi-translation-unit build: compile each unit, link (LTO model),
    then instrument the whole program.  [`Uninstrumented] units model
    precompiled legacy libraries (paper section II.E). *)

val default_backend : Vm.Machine.backend ref
(** The backend used when a caller passes no [?backend] (initially
    [Interp]).  CLI-startup-only: assign it at most once, from a single
    thread, before any [Harness.Pool] domain is spawned -- a later write
    races against concurrent requests that picked a different backend.
    Every in-tree tool threads [~backend] explicitly instead (the bench,
    the fuzzer and the serve daemon pass it through
    [Harness.Overhead]/[Harness.Tables]/[Fuzz.Campaign]/[Serve.Engine]),
    so nothing in this repository mutates the ref. *)

val run_module :
  Spec.t ->
  ?lines:string list ->
  ?packets:string list ->
  ?externs:(string * (Vm.State.t -> int array -> int)) list ->
  ?budget:int ->
  ?seed:int ->
  ?policy:Vm.Report.policy ->
  ?fault:Vm.Fault.t ->
  ?backend:Vm.Machine.backend ->
  ?fuel:Tir.Fuel.t ->
  Tir.Ir.modul ->
  run_result
(** Runs an instrumented module.  [lines]/[packets] feed the dummy input
    server; [externs] resolve body-less external functions.  [policy]
    overrides the sanitizer's [default_policy]; [fault] threads a fault
    injector into the run (see {!Vm.Fault}).  [backend] (default
    [!default_backend]) selects the interpreter or the threaded-code
    jit; [fuel] meters jit compilation (burned identically whether the
    jit's compile cache hits or misses). *)

val run :
  Spec.t ->
  ?lines:string list ->
  ?packets:string list ->
  ?externs:(string * (Vm.State.t -> int array -> int)) list ->
  ?budget:int ->
  ?seed:int ->
  ?policy:Vm.Report.policy ->
  ?fault:Vm.Fault.t ->
  ?fuel:Tir.Fuel.t ->
  ?backend:Vm.Machine.backend ->
  ?optimize:bool ->
  string ->
  run_result
(** [build] + [run_module] in one step.  When no [fuel] is given but
    [fault] carries a [Fuel n] injection, a compile-phase fuel of [n]
    steps is created from it, so the ["fuel:N"] fault surface reaches
    the pipeline (jit compilation included). *)

(** The shared check-optimization machinery (paper section II.F), used
    by CECSan and the ASan-- baseline:

    - redundant-check elimination within a block (with copy
      canonicalization);
    - loop-invariant check hoisting -- stores too for table-based tools,
      loads only for redzone tools;
    - monotonic check grouping: when the [Tir.Scev] mini scalar
      evolution determines the max access range statically (constant or
      constant-initialized bounds; plain and struct-array affine
      accesses), the per-iteration checks collapse to checks of the
      range's extremes.

    The sanitizer description is [Tir.Verify.spec] -- the same record
    also drives the static verifier that re-derives these
    transformations' reasoning. *)

type spec = Tir.Verify.spec = {
  check_load : string;
  check_store : string;
  produces_addr : bool;  (** the check's result is the stripped address *)
  strip_mask : int;
  may_hoist_stores : bool;
  hazard_intrinsics : string list;
      (** runtime calls that can invalidate metadata: barriers for both
          optimizations *)
  extcall_strip : string option;
      (** tag-strip intrinsic required on pointer args of external
          calls; used by the verifier, ignored by the optimizer *)
}

val redundant : spec -> Tir.Ir.func -> int
(** Block-local elimination; returns the number of checks removed. *)

type loop_stats = { hoisted : int; endpoints : int; grouped : int }

val loops : spec -> ?check_step:int -> Tir.Ir.modul -> Tir.Ir.func ->
  loop_stats
(** Loop-invariant hoisting and endpoint grouping over the function's
    natural loops.  Loops containing calls or hazard intrinsics are left
    alone (their metadata could change mid-loop). *)

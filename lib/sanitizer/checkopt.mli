(** The shared check-optimization machinery (paper section II.F), used
    by CECSan and the ASan-- baseline:

    - redundant-check elimination within a block (with copy
      canonicalization);
    - loop-invariant check hoisting -- stores too for table-based tools,
      loads only for redzone tools;
    - monotonic check grouping: when the [Tir.Scev] mini scalar
      evolution determines the max access range statically (constant or
      constant-initialized bounds; plain and struct-array affine
      accesses), the per-iteration checks collapse to checks of the
      range's extremes.

    The sanitizer description is [Tir.Verify.spec] -- the same record
    also drives the static verifier that re-derives these
    transformations' reasoning. *)

type spec = Tir.Verify.spec = {
  check_load : string;
  check_store : string;
  produces_addr : bool;  (** the check's result is the stripped address *)
  strip_mask : int;
  may_hoist_stores : bool;
  hazard_intrinsics : string list;
      (** runtime calls that can invalidate metadata: barriers for both
          optimizations *)
  extcall_strip : string option;
      (** tag-strip intrinsic required on pointer args of external
          calls; used by the verifier, ignored by the optimizer *)
  absint : Tir.Absint.model option;
      (** abstract-interpretation model of the tool's intrinsics,
          enabling the certified-elision pass ({!absint}) *)
}

val redundant : spec -> ?pure:(string -> bool) -> Tir.Ir.func -> int
(** Block-local elimination; returns the number of checks removed.
    [pure] (default: nothing is pure) marks callees that cannot touch
    metadata, making calls to them transparent; pass the
    [Tir.Analysis.pure_callees] closure so the verifier agrees. *)

type loop_stats = { hoisted : int; endpoints : int; grouped : int }

val loops : spec -> ?check_step:int -> ?pure:(string -> bool) ->
  Tir.Ir.modul -> Tir.Ir.func -> loop_stats
(** Loop-invariant hoisting and endpoint grouping over the function's
    natural loops.  Loops containing hazard intrinsics or calls to
    non-[pure] callees are left alone (their metadata could change
    mid-loop). *)

type absint_stats = { elided : int; downgraded : int; facts : int }

val absint : Tir.Ir.modul -> spec -> absint_stats
(** Certified check elision from whole-program abstract interpretation
    (DESIGN.md section 16).  A check whose pointer provably stays in
    bounds of a live, non-escaping object is replaced by a zero-cost
    elided marker (plus a tag-strip of its destination); one whose
    temporal half alone is proved is renamed to the model's
    spatial-only variant at the same site.  Every rewrite appends a
    {!Tir.Witness.t} to the module for [Tir.Verify] to replay.  No-op
    when the spec carries no model.  Must run after {!redundant} and
    {!loops}, which key on the original check names. *)

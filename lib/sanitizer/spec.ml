(* The common sanitizer interface.

   A sanitizer is an instrumentation pass over Tir plus a runtime for the
   VM.  Instrumentation happens after all modules are linked (the paper
   instruments during LTO, which is what lets it tell truly external
   functions apart), so passes see the whole program. *)

exception Unsupported of string
(** SoftBound-style "compilation error": the pass cannot handle a
    construct in the program.  The harness counts such cases as excluded,
    as the paper does for SoftBound+CETS (3970 of 15752 cases). *)

type t = {
  name : string;
  (* inserts checks/metadata in place; may raise [Unsupported]; must
     leave the module verifiable (no check-elimination here) *)
  instrument : Tir.Ir.modul -> unit;
  (* the check-optimization phase (section II.F), run separately so the
     driver can verify coverage both before and after it; identity for
     tools without check optimizations *)
  optimize : Tir.Ir.modul -> unit;
  (* how Tir.Verify certifies this tool's output; None skips the
     coverage half (well-formedness is always checked) *)
  verify : Tir.Verify.spec option;
  (* fresh per-run runtime state *)
  fresh_runtime : unit -> Vm.Runtime.t;
  (* what the driver does with findings unless told otherwise *)
  default_policy : Vm.Report.policy;
}

(* The uninstrumented baseline: what plain `clang -O2` produces. *)
let none : t = {
  name = "none";
  instrument = (fun _ -> ());
  optimize = (fun _ -> ());
  verify = None;
  fresh_runtime = (fun () -> Vm.Runtime.none);
  default_policy = Vm.Report.Halt;
}

(* The allocation-family callees that sanitizers rewrite/wrap. *)
let is_alloc_family = function
  | "malloc" | "free" | "calloc" | "realloc" -> true
  | _ -> false

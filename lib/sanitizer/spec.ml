(* The common sanitizer interface.

   A sanitizer is an instrumentation pass over Tir plus a runtime for the
   VM.  Instrumentation happens after all modules are linked (the paper
   instruments during LTO, which is what lets it tell truly external
   functions apart), so passes see the whole program. *)

exception Unsupported of string
(** SoftBound-style "compilation error": the pass cannot handle a
    construct in the program.  The harness counts such cases as excluded,
    as the paper does for SoftBound+CETS (3970 of 15752 cases). *)

type t = {
  name : string;
  (* rewrites the module in place; may raise [Unsupported] *)
  instrument : Tir.Ir.modul -> unit;
  (* fresh per-run runtime state *)
  fresh_runtime : unit -> Vm.Runtime.t;
  (* what the driver does with findings unless told otherwise *)
  default_policy : Vm.Report.policy;
}

(* The uninstrumented baseline: what plain `clang -O2` produces. *)
let none : t = {
  name = "none";
  instrument = (fun _ -> ());
  fresh_runtime = (fun () -> Vm.Runtime.none);
  default_policy = Vm.Report.Halt;
}

(* The allocation-family callees that sanitizers rewrite/wrap. *)
let is_alloc_family = function
  | "malloc" | "free" | "calloc" | "realloc" -> true
  | _ -> false

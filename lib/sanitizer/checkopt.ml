(* Generic check-optimization machinery (paper section II.F), shared by
   CECSan and by the ASan-- baseline:

   - redundant-check elimination within a basic block;
   - loop-invariant check hoisting (CECSan: loads AND stores; redzone
     tools: loads only, because a hoisted store check could be defeated
     by the store overwriting the redzone);
   - monotonic check grouping driven by the small scalar-evolution
     analysis in [Tir.Scev]: for affine accesses whose max access range
     is statically determined (the applicability condition of II.F.1),
     the per-iteration checks collapse to checks of the range's
     extremes.  With a dynamic bound the optimization does not apply and
     per-iteration checks remain.

   The sanitizer description consumed here is [Tir.Verify.spec]: the
   same record drives both the transformations and the static verifier
   that re-derives their reasoning (translation validation). *)

open Tir.Ir
module Cfg = Tir.Cfg
module Scev = Tir.Scev

type spec = Tir.Verify.spec = {
  check_load : string;
  check_store : string;
  produces_addr : bool;           (* check dst = stripped address *)
  strip_mask : int;               (* mask replacing an elided strip *)
  may_hoist_stores : bool;
  hazard_intrinsics : string list;(* runtime calls that change metadata *)
  extcall_strip : string option;  (* tag strip required at external calls *)
  absint : Tir.Absint.model option; (* abstract-interpretation model *)
}

let is_check spec name =
  String.equal name spec.check_load || String.equal name spec.check_store

let is_hazard spec name =
  List.exists (String.equal name) spec.hazard_intrinsics

let opnd_key = function
  | Reg r -> "r" ^ string_of_int r
  | Imm v -> "i" ^ string_of_int v
  | Glob g -> "g" ^ g

(* --- redundant check elimination ------------------------------------------ *)

(* Within a block: a second check on the same pointer with a size no
   larger than an already-performed one is dropped (replaced by a move of
   the stripped address when the sanitizer's checks produce one).  Any
   call to a callee that can touch metadata, or any runtime operation
   that can invalidate it, clears the knowledge; metadata-pure callees
   (per [Tir.Analysis.pure_callees], the closure Verify also consults)
   are transparent. *)
let redundant (spec : spec) ?(pure = fun _ -> false) (f : func) : int =
  let removed = ref 0 in
  Array.iter
    (fun b ->
       let known : (string, int * int option) Hashtbl.t = Hashtbl.create 8 in
       (* copy chains within the block: checks key on the canonical
          register, so repeated dereferences of the same (copied)
          pointer deduplicate *)
       let copy_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
       let rec canon_reg r =
         match Hashtbl.find_opt copy_of r with
         | Some s -> canon_reg s
         | None -> r
       in
       let canon_opnd = function
         | Reg r -> Reg (canon_reg r)
         | o -> o
       in
       (* reg -> keys to invalidate when reg is redefined *)
       let kill_reg r =
         Hashtbl.remove copy_of r;
         let key = "r" ^ string_of_int r in
         Hashtbl.remove known key;
         (* also drop any entry whose remembered dst is r *)
         let stale =
           Hashtbl.fold
             (fun k (_, d) acc -> if d = Some r then k :: acc else acc)
             known []
         in
         List.iter (Hashtbl.remove known) stale
       in
       b.b_instrs <-
         List.concat_map
           (fun i ->
              match i with
              | Imov { dst; src = Reg s } as i ->
                kill_reg dst;
                Hashtbl.replace copy_of dst (canon_reg s);
                [ i ]
              | Iintrin { dst; name; args = [ p; Imm size ]; site }
                when is_check spec name ->
                let key = opnd_key (canon_opnd p) in
                (match Hashtbl.find_opt known key with
                 | Some (size0, dst0) when size <= size0 ->
                   incr removed;
                   (* a zero-cost marker keeps the site's count: every
                      execution the eliminated check would have had is
                      recorded as elided *)
                   let marker =
                     Iintrin
                       { dst = None; name = telemetry_elided; args = [];
                         site }
                   in
                   marker
                   :: (match dst, dst0 with
                       | Some d, Some d0 when spec.produces_addr ->
                         [ Imov { dst = d; src = Reg d0 } ]
                       | Some d, _ ->
                         [ Ibin { op = And; dst = d; a = p;
                                  b = Imm spec.strip_mask } ]
                       | None, _ -> [])
                 | _ ->
                   Hashtbl.replace known key (size, dst);
                   [ i ])
              | Icall { callee; _ } when not (pure callee) ->
                Hashtbl.reset known;
                [ i ]
              | Iintrin { name; _ } when is_hazard spec name ->
                Hashtbl.reset known;
                [ i ]
              | i ->
                (match defs i with Some d -> kill_reg d | None -> ());
                [ i ])
           b.b_instrs)
    f.f_blocks;
  !removed

(* --- loop optimization ---------------------------------------------------- *)

type loop_stats = { hoisted : int; endpoints : int; grouped : int }

let loops (spec : spec) ?(check_step = 5) ?(pure = fun _ -> false)
    (md : modul) (f : func) : loop_stats =
  ignore check_step;
  let stats = ref { hoisted = 0; endpoints = 0; grouped = 0 } in
  let cfg0 = Cfg.build f in
  let idom = Cfg.dominators cfg0 in
  let all_loops = Cfg.loops f cfg0 idom in
  (* inner loops first *)
  let all_loops =
    List.sort (fun a b -> compare (List.length a.Cfg.body)
                  (List.length b.Cfg.body)) all_loops
  in
  (* [make_preheader] may append a block and returns a rebuilt Cfg.t;
     thread it so the next loop's preheader query never reads stale
     edge arrays *)
  let cfg = ref cfg0 in
  List.iter
    (fun l ->
       let body_has_hazard =
         List.exists
           (fun bid ->
              List.exists
                (function
                  | Icall { callee; _ } -> not (pure callee)
                  | Iintrin { name; _ } -> is_hazard spec name
                  | _ -> false)
                f.f_blocks.(bid).b_instrs)
           l.Cfg.body
       in
       if not body_has_hazard then begin
         let defined = Cfg.regs_defined_in f l in
         let preheader =
           lazy
             (let p, cfg' = Cfg.make_preheader f !cfg l in
              cfg := cfg';
              p)
         in
         let defs_map = Scev.single_defs f in
         (* invariant modulo copies: resolve through moves/extensions and
            return the canonical operand, usable in the preheader *)
         let invariant = function
           | (Imm _ | Glob _) as o -> Some o
           | Reg r ->
             let cr = Scev.canon defs_map r in
             if Hashtbl.mem defined cr then None else Some (Reg cr)
         in
         List.iter
           (fun bid ->
              let b = f.f_blocks.(bid) in
              b.b_instrs <-
                List.concat_map
                  (fun i ->
                     match i with
                     | Iintrin { dst; name; args = [ p; Imm size ]; site }
                       when is_check spec name ->
                       let is_store = String.equal name spec.check_store in
                       (match invariant p with
                        | Some p'
                          when spec.may_hoist_stores || not is_store ->
                          (* hoist the whole check to the preheader; the
                             in-loop stripped address (if any) becomes a
                             cheap mask of the invariant pointer *)
                          let ph = f.f_blocks.(Lazy.force preheader) in
                          let phr = fresh_reg f in
                          (* the preheader check is NEW work at a fresh
                             site; the original site's per-iteration
                             executions are recorded by a zero-cost
                             covered marker left in the loop body *)
                          ph.b_instrs <-
                            ph.b_instrs
                            @ [ Iintrin { dst = Some phr; name;
                                          args = [ p'; Imm size ];
                                          site = fresh_site md } ];
                          stats :=
                            { !stats with hoisted = !stats.hoisted + 1 };
                          Iintrin
                            { dst = None; name = telemetry_covered;
                              args = []; site }
                          :: (match dst with
                              | Some d when spec.produces_addr ->
                                [ Imov { dst = d; src = Reg phr } ]
                              | Some d -> [ Imov { dst = d; src = p } ]
                              | None -> [])
                        | _ -> begin
                         (* monotonic? p resolves to base + iv*es + off *)
                         match Scev.affine_of defs_map invariant p with
                         | Some (base, elem_size, ir, field_off) ->
                              (match Scev.induction_of f l defs_map ir with
                               | Some ind ->
                                 let bound =
                                   Scev.static_bound f l defs_map ind.iv
                                 in
                                 (match ind.start, bound with
                                  | Some start, Some n
                                    when Scev.endpoint_offsets ~start
                                           ~bound:n ~step:ind.step
                                           ~elem_size ~off:field_off
                                         <> None ->
                                    (* endpoint grouping; applicability
                                       (trip count > 0, no endpoint
                                       overflow) established through the
                                       same guarded helper the verifier
                                       re-derives with *)
                                    let last =
                                      match
                                        Scev.last_index ~start ~bound:n
                                          ~step:ind.step
                                      with
                                      | Some v -> v
                                      | None -> assert false
                                    in
                                    let ph =
                                      f.f_blocks.(Lazy.force preheader)
                                    in
                                    let endpoint idx_val =
                                      let r1 = fresh_reg f in
                                      let r2 = fresh_reg f in
                                      let rc = fresh_reg f in
                                      [ Igep { dst = r1; base;
                                               idx = Some (Imm idx_val);
                                               info = Gindex
                                                   { elem_size;
                                                     count = None } };
                                        Igep { dst = r2; base = Reg r1;
                                               idx = Some (Imm field_off);
                                               info = Gindex
                                                   { elem_size = 1;
                                                     count = None } };
                                        Iintrin
                                          { dst = Some rc; name;
                                            args = [ Reg r2; Imm size ];
                                            site = fresh_site md } ]
                                    in
                                    ph.b_instrs <-
                                      ph.b_instrs @ endpoint start
                                      @ endpoint last;
                                    stats :=
                                      { !stats with
                                        endpoints = !stats.endpoints + 1 };
                                    Iintrin
                                      { dst = None;
                                        name = telemetry_covered;
                                        args = []; site }
                                    :: (match dst with
                                        | Some d when spec.produces_addr ->
                                          [ Ibin { op = And; dst = d; a = p;
                                                   b = Imm spec.strip_mask } ]
                                        | Some d ->
                                          [ Imov { dst = d; src = p } ]
                                        | None -> [])
                                  | _ ->
                                    (* the bound is not statically
                                       determined: section II.F.1 only
                                       applies with a static max access
                                       range, so keep per-iteration
                                       checks *)
                                    ignore site;
                                    [ i ])
                               | None -> [ i ])
                         | None -> [ i ]
                       end)
                     | i -> [ i ])
                  b.b_instrs)
           l.Cfg.body
       end)
    all_loops;
  !stats

(* --- certified elision from abstract interpretation ----------------------- *)

type absint_stats = { elided : int; downgraded : int; facts : int }

(* The whole-module pass consuming [Tir.Absint]: a check whose pointer
   provably stays inside a live, non-escaping object is removed (Welide,
   both halves proved) or renamed to its spatial-only variant
   (Wdowngrade, temporal half proved) -- each carrying a
   [Tir.Witness.t] that Verify independently replays on the result.
   Must run LAST among the check optimizations: the earlier passes key
   on the original check names.

   Elision soundness is an exact-behavior argument against this VM:
   a proven-in-bounds access to a live object passes its check by
   definition, and the degenerate pointers the proofs cannot see behave
   identically with or without the check (a NULL from an injected OOM
   is untagged, and untagged pointers resolve to metadata entry 0,
   which every check passes -- the raw access then faults the same
   way either side of the elision). *)
let absint (md : modul) (spec : spec) : absint_stats =
  match spec.absint with
  | None -> { elided = 0; downgraded = 0; facts = 0 }
  | Some model ->
    let pure = Tir.Analysis.pure_callees md ~is_hazard:(is_hazard spec) in
    let ctx = Tir.Absint.make_ctx model ~pure md in
    let elided = ref 0 and downgraded = ref 0 and facts = ref 0 in
    iter_funcs md (fun f ->
        if not f.f_external then begin
          let su = Tir.Absint.analyze ctx f in
          facts := !facts + su.Tir.Absint.su_facts;
          Array.iter
            (fun b ->
               b.b_instrs <-
                 List.concat_map
                   (fun i ->
                      match i with
                      | Iintrin
                          { dst; name; args = [ Reg p; Imm size ]; site }
                        when List.mem_assoc name
                            model.Tir.Absint.am_checks ->
                        (match Hashtbl.find_opt su.Tir.Absint.su_sites site
                         with
                         | None -> [ i ]
                         | Some st ->
                           (match Tir.Absint.regval st p with
                            | Tir.Absint.Vptr { obj; lo; hi } ->
                              let o = su.Tir.Absint.su_objs.(obj) in
                              let freed =
                                Tir.Absint.Int_set.mem obj
                                  st.Tir.Absint.s_freed
                              in
                              if o.Tir.Absint.o_escapes || freed then [ i ]
                              else begin
                                let witness kind =
                                  { Tir.Witness.w_site = site;
                                    w_func = f.f_name; w_kind = kind;
                                    w_reg = p; w_dst = dst; w_size = size;
                                    w_obj = o.Tir.Absint.o_desc;
                                    w_lo = lo; w_hi = hi;
                                    w_objsize = o.Tir.Absint.o_size;
                                    w_temporal = true; w_escapes = false }
                                in
                                if
                                  Tir.Absint.in_bounds ~lo ~hi ~size
                                    ~objsize:o.Tir.Absint.o_size
                                then begin
                                  incr elided;
                                  md.m_witnesses <-
                                    witness Tir.Witness.Welide
                                    :: md.m_witnesses;
                                  Iintrin
                                    { dst = None; name = telemetry_elided;
                                      args = []; site }
                                  :: (match dst with
                                      | Some d ->
                                        [ Ibin { op = And; dst = d;
                                                 a = Reg p;
                                                 b = Imm spec.strip_mask } ]
                                      | None -> [])
                                end
                                else
                                  match
                                    List.assoc name
                                      model.Tir.Absint.am_checks
                                  with
                                  | Some spatial ->
                                    incr downgraded;
                                    md.m_witnesses <-
                                      witness Tir.Witness.Wdowngrade
                                      :: md.m_witnesses;
                                    [ Iintrin
                                        { dst; name = spatial;
                                          args = [ Reg p; Imm size ];
                                          site } ]
                                  | None -> [ i ]
                              end
                            | _ -> [ i ]))
                      | _ -> [ i ])
                   b.b_instrs)
            f.f_blocks
        end);
    { elided = !elided; downgraded = !downgraded; facts = !facts }

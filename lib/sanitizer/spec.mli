(** The common sanitizer interface: an instrumentation pass over Tir
    plus a fresh-per-run VM runtime. *)

exception Unsupported of string
(** A SoftBound-style "compilation error": the tool cannot handle a
    construct in the program, so the case is excluded from its evaluated
    subset (as the paper does for SoftBound+CETS). *)

type t = {
  name : string;
  instrument : Tir.Ir.modul -> unit;
      (** inserts checks/metadata in the linked module in place; may
          raise [Unsupported]; must leave the module verifiable *)
  optimize : Tir.Ir.modul -> unit;
      (** the check-optimization phase (section II.F), separated so the
          driver can run [Tir.Verify] both before and after it;
          identity for tools without check optimizations *)
  verify : Tir.Verify.spec option;
      (** how [Tir.Verify] certifies this tool's output; [None] skips
          the coverage half (well-formedness is always checked) *)
  fresh_runtime : unit -> Vm.Runtime.t;
  default_policy : Vm.Report.policy;
      (** what the driver does with findings unless its [?policy]
          argument overrides it; [Halt] for every stock sanitizer *)
}

val none : t
(** The uninstrumented baseline: plain `clang -O2`. *)

val is_alloc_family : string -> bool
(** malloc/free/calloc/realloc: the callees sanitizers rewrite or wrap. *)

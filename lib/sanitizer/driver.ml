(* End-to-end driver: MiniC source -> checked AST -> Tir -> promoted IR
   -> sanitizer instrumentation -> VM run.

   Each sanitizer still gets its own module to mutate (the moral
   equivalent of recompiling with a different -fsanitize= flag), but the
   front end runs once per source: [build] parses/checks/lowers/promotes
   through a compile cache and hands every sanitizer a deep clone
   ([Tir.Ir.clone]) of the pristine module.  The cache is keyed by
   (source, optimize) and guarded by a mutex so parallel harness runs
   (Harness.Pool) share it safely. *)

type run_result = {
  outcome : Vm.Machine.outcome;
  cycles : int;
  resident : int;          (* bytes: all touched pages *)
  program_resident : int;  (* bytes: program-region pages only *)
  output : string;
  heap_allocs : int;
  instrumented_size : int; (* static instruction count after the pass *)
  reports : Vm.Report.t list;  (* sink contents, submission order *)
  suppressed : int;            (* findings deduplicated or over the cap *)
  telemetry : (string * int) list; (* runtime gauges, sorted by key *)
  snapshot : Telemetry.Snapshot.t; (* full telemetry: sites, counters,
                                      gauges, event ring *)
  site_labels : (int * string) list; (* site id -> IR origin, sorted *)
}

(* Parse, check and lower a source file; [optimize] runs the -O2 model
   (slot promotion).  Raises [Minic.Sema.Error] or [Tir.Lower.Error].
   Always runs the front end; callers that can tolerate a shared
   pristine module go through [compile_cached] instead.

   Fuel accounting burns the produced module's size *after* the front
   end ran, which keeps the burn a pure function of the source: a cache
   hit in [compile_cached] burns exactly the same amount, so fuel
   "timeouts" cannot depend on which worker warmed the cache first. *)
let compile ?(optimize = true) ?fuel (src : string) : Tir.Ir.modul =
  let checked = Minic.Sema.parse_and_check src in
  let md = Tir.Lower.lower checked in
  if optimize then ignore (Tir.Promote.run md) else Tir.Analysis.run md;
  Tir.Fuel.burn fuel (Tir.Ir.module_size md);
  md

(* The compile cache, sharded by key hash: one (mutex, table) pair per
   shard, so a server-shaped load -- many domains compiling many small
   distinct sources concurrently -- spreads its lock traffic over
   [shard_count] locks instead of serializing on one.  Pristine modules
   are inserted once and never mutated afterwards; every consumer
   receives a deep clone.  Concurrent readers of an
   immutable-after-insert module are safe, so each lock only covers its
   own table. *)
let shard_count = 16  (* power of two: shard_of masks the key hash *)

type shard = {
  s_lock : Mutex.t;
  s_cache : (bool * string, Tir.Ir.modul) Hashtbl.t;
}

let shards : shard array =
  Array.init shard_count (fun _ ->
      { s_lock = Mutex.create (); s_cache = Hashtbl.create 64 })

(* Safety valve per shard for pathological workloads (the harness
   compiles a few thousand distinct sources at most). *)
let shard_capacity = 2_048

let shard_of key = shards.(Hashtbl.hash key land (shard_count - 1))

let clear_compile_cache () =
  Array.iter
    (fun sh ->
       Mutex.lock sh.s_lock;
       Hashtbl.reset sh.s_cache;
       Mutex.unlock sh.s_lock)
    shards

let compile_cached ~optimize ?fuel (src : string) : Tir.Ir.modul =
  let key = (optimize, src) in
  let sh = shard_of key in
  let cached =
    Mutex.lock sh.s_lock;
    let r = Hashtbl.find_opt sh.s_cache key in
    Mutex.unlock sh.s_lock;
    r
  in
  let pristine =
    match cached with
    | Some md ->
      (* burn what [compile] would have burned: fuel exhaustion must be
         cache-state independent or "timeouts" would differ across -j
         and across resume boundaries *)
      Tir.Fuel.burn fuel (Tir.Ir.module_size md);
      md
    | None ->
      (* compiled outside the lock: front-end errors must propagate to
         this caller, and compilation is deterministic so a racing
         duplicate insert is harmless (last write wins, same value) *)
      let md = compile ~optimize ?fuel src in
      Mutex.lock sh.s_lock;
      if Hashtbl.length sh.s_cache >= shard_capacity then
        Hashtbl.reset sh.s_cache;
      Hashtbl.replace sh.s_cache key md;
      Mutex.unlock sh.s_lock;
      md
  in
  Tir.Ir.clone pristine

(* --- the static verification gate ----------------------------------------- *)

type verify_mode = Off | Warn | Strict

(* Strict by default: every build in tests and the harness is certified.
   The bench flips this to [Warn] (report, don't fail) so a verifier
   regression cannot silently void a measurement run, and [Off] is an
   escape hatch for debugging the verifier itself. *)
let verify_mode : verify_mode ref = ref Strict

exception
  Verifier_reject of { tool : string; stage : string; errors : string list }

let () =
  Printexc.register_printer (function
      | Verifier_reject { tool; stage; errors } ->
        Some
          (Printf.sprintf "Verifier_reject(%s, %s): %s" tool stage
             (String.concat "; " errors))
      | _ -> None)

(* Instrument, then optimize, with [Tir.Verify] run on both sides and the
   covered-obligation count required non-shrinking across the
   optimization (translation validation of the section II.F passes). *)
let instrument_verified ?fuel (san : Spec.t) (md : Tir.Ir.modul) : unit =
  match !verify_mode with
  | Off ->
    san.Spec.instrument md;
    Tir.Fuel.burn fuel (Tir.Ir.module_size md);
    san.Spec.optimize md
  | (Warn | Strict) as mode ->
    let gate stage errors =
      match errors with
      | [] -> ()
      | errs ->
        (match mode with
         | Strict ->
           raise
             (Verifier_reject { tool = san.Spec.name; stage; errors = errs })
         | _ ->
           List.iter
             (fun m ->
                Printf.eprintf "verify(%s/%s): %s\n%!" san.Spec.name stage m)
             errs)
    in
    let spec = san.Spec.verify in
    san.Spec.instrument md;
    Tir.Fuel.burn fuel (Tir.Ir.module_size md);
    let pre = Tir.Verify.check ?spec ?fuel md in
    gate "preopt" (List.map Tir.Verify.error_to_string pre.Tir.Verify.r_errors);
    san.Spec.optimize md;
    let post = Tir.Verify.check ?spec ?fuel md in
    gate "postopt"
      (List.map Tir.Verify.error_to_string post.Tir.Verify.r_errors);
    if post.Tir.Verify.r_covered < pre.Tir.Verify.r_covered then
      gate "postopt"
        [ Printf.sprintf
            "coverage shrank across optimization: %d covered before, %d after"
            pre.Tir.Verify.r_covered post.Tir.Verify.r_covered ]

(* Compiles under a sanitizer.  May raise [Spec.Unsupported] or, with
   the gate on, [Verifier_reject]; with [fuel] given, [Tir.Fuel.Exhausted]. *)
let build (san : Spec.t) ?(optimize = true) ?fuel (src : string)
  : Tir.Ir.modul =
  let md = compile_cached ~optimize ?fuel src in
  instrument_verified ?fuel san md;
  md

(* Multi-translation-unit build: compiles each unit, links them
   (LTO model), then instruments the whole program.  Units flagged
   [`Uninstrumented] model precompiled legacy libraries: their code runs
   but the sanitizer leaves it alone, and calls into it get the
   boundary treatment of paper section II.E. *)
let build_link (san : Spec.t) ?(optimize = true)
    (units : (string * [ `Instrumented | `Uninstrumented ]) list) :
  Tir.Ir.modul =
  match units with
  | [] -> invalid_arg "build_link: no units"
  | (first_src, first_kind) :: rest ->
    let primary = compile_cached ~optimize first_src in
    (match first_kind with
     | `Instrumented -> ()
     | `Uninstrumented -> invalid_arg "build_link: main unit must be instrumented");
    List.iter
      (fun (src, kind) ->
         let md = compile_cached ~optimize src in
         Tir.Link.merge
           ~mark_external:(match kind with
               | `Uninstrumented -> true
               | `Instrumented -> false)
           ~primary md)
      rest;
    instrument_verified san primary;
    primary

(* The process-wide backend default, consulted whenever a caller does
   not pick one explicitly.  This ref is a CLI-STARTUP-ONLY convenience:
   it may be assigned once, before any Harness.Pool domain exists, and
   never after -- a mid-flight write races against concurrent server
   requests that selected a different backend.  Every in-tree tool now
   threads [~backend] explicitly (bench, the fuzzer, the serve daemon),
   so nothing in this repository mutates it anymore. *)
let default_backend : Vm.Machine.backend ref = ref Vm.Machine.Interp

(* Runs an instrumented module.  [lines]/[packets] feed the dummy input
   server; [budget] bounds the run in cycles.  [policy] overrides the
   sanitizer's default finding policy; [fault] threads a fault injector
   into the run.  [backend] (default [!default_backend]) selects the
   interpreter or the threaded-code jit; [fuel] meters jit compilation. *)
let run_module (san : Spec.t) ?(lines = []) ?(packets = []) ?(externs = [])
    ?(budget = Vm.State.default_budget) ?(seed = 0x5EED) ?policy ?fault
    ?backend ?fuel (md : Tir.Ir.modul) : run_result =
  let policy =
    match policy with Some p -> p | None -> san.Spec.default_policy
  in
  let st = Vm.State.create ~cycle_budget:budget ~seed ~policy ?fault () in
  List.iter (Vm.Input.provide_line st.Vm.State.input) lines;
  List.iter (Vm.Input.provide_packet st.Vm.State.input) packets;
  let rt = san.Spec.fresh_runtime () in
  let m = Vm.Machine.create ~st ~rt md in
  List.iter (fun (name, fn) -> Vm.Machine.register_extern m name fn) externs;
  let backend =
    match backend with Some b -> b | None -> !default_backend
  in
  let outcome = Vm.Machine.run ~backend ?fuel m in
  let fl = st.Vm.State.fault in
  if fl.Vm.Fault.oom_injected > 0 then
    Vm.State.set_stat st "injected_oom" fl.Vm.Fault.oom_injected;
  if fl.Vm.Fault.tagflips_injected > 0 then
    Vm.State.set_stat st "injected_tagflips" fl.Vm.Fault.tagflips_injected;
  (* allocator gauges are plain fields (no hot-path telemetry calls);
     publish them into the snapshot here, after the run *)
  let al = st.Vm.State.alloc in
  Vm.State.set_stat st "alloc_peak_live" al.Vm.Alloc.peak_live;
  Vm.State.set_stat st "alloc_recycles" al.Vm.Alloc.recycles;
  Vm.State.set_stat st "alloc_live_exit" al.Vm.Alloc.live;
  let snapshot = Telemetry.Snapshot.capture st.Vm.State.telem in
  {
    outcome;
    cycles = st.Vm.State.cycles;
    resident = Vm.Memory.resident_bytes st.Vm.State.mem;
    program_resident = Vm.Memory.program_bytes st.Vm.State.mem;
    output = Buffer.contents st.Vm.State.output;
    heap_allocs = st.Vm.State.heap_allocs;
    instrumented_size = Tir.Ir.module_size md;
    reports = Vm.Report.sink_reports st.Vm.State.sink;
    suppressed = Vm.Report.sink_suppressed st.Vm.State.sink;
    telemetry = snapshot.Telemetry.Snapshot.gauges;
    snapshot;
    site_labels = Tir.Ir.site_origins md;
  }

let run (san : Spec.t) ?lines ?packets ?externs ?budget ?seed ?policy ?fault
    ?fuel ?backend ?(optimize = true) (src : string) : run_result =
  (* bridge a [Fault.Fuel n] injection into pipeline fuel: the injector
     carries the budget so the CLI/campaign fault surface ("fuel:N")
     reaches compile and verify without a second plumbing path *)
  let fuel =
    match fuel, fault with
    | (Some _ as f), _ | f, None -> f
    | None, Some fl ->
      (match fl.Vm.Fault.fuel_budget with
       | Some b -> Some (Tir.Fuel.make ~phase:"compile" ~budget:b)
       | None -> None)
  in
  run_module san ?lines ?packets ?externs ?budget ?seed ?policy ?fault
    ?backend ?fuel
    (build san ~optimize ?fuel src)

(* CECSan's instantiation of the shared check optimizer (section II.F).
   Unlike redzone-based tools, CECSan can hoist checks on stores as well
   as loads, because a store cannot corrupt the disjoint metadata
   table. *)

(* Abstract-interpretation model of the CECSan intrinsics for the
   certified-elision pass (DESIGN.md section 16).  Eliding a fused check
   whose pointer provably stays inside a live, non-escaping object is
   exact-behavior-preserving even under OOM: a failed allocation returns
   the null pointer, whose tag indexes metadata entry 0 = (0, va_limit),
   so the check would have passed and the raw access faults identically
   with or without it. *)
let model : Tir.Absint.model = {
  Tir.Absint.am_checks =
    [ ("__cecsan_check_load", Some "__cecsan_check_load_spatial");
      ("__cecsan_check_store", Some "__cecsan_check_store_spatial");
      ("__cecsan_check_load_spatial", None);
      ("__cecsan_check_store_spatial", None) ];
  am_check_alias = true;   (* check dst = stripped alias of the pointer *)
  am_allocs =
    [ ("__cecsan_malloc", Tir.Absint.Sarg 0);
      ("__cecsan_calloc", Tir.Absint.Sprod (0, 1));
      ("__cecsan_realloc", Tir.Absint.Sarg 1) ];
  am_frees = [ "__cecsan_free"; "__cecsan_realloc"; "__cecsan_stack_release" ];
  am_aliases = [ "__cecsan_stack_make"; "__cecsan_extcall_strip" ];
  am_opaque = [ "__cecsan_sub_make"; "__cecsan_sub_release" ];
  am_call_allocs = [];
  am_call_frees = [];
  am_gpt_load = Some "__cecsan_gpt_load";
  am_global_make = Some "__cecsan_global_make";
  am_strip_mask = Some Vm.Layout46.addr_mask;
  am_slots = true;
}

let spec : Sanitizer.Checkopt.spec = {
  check_load = "__cecsan_check_load";
  check_store = "__cecsan_check_store";
  produces_addr = true;
  strip_mask = Vm.Layout46.addr_mask;
  may_hoist_stores = true;
  hazard_intrinsics =
    [ "__cecsan_free"; "__cecsan_realloc"; "__cecsan_stack_release";
      "__cecsan_sub_release"; "__cecsan_sub_make"; "__cecsan_malloc";
      "__cecsan_calloc"; "__cecsan_stack_make"; "__cecsan_global_make" ];
  extcall_strip = Some "__cecsan_extcall_strip";
  absint = Some model;
}

(* The purity closure both optimizer passes and the verifier share:
   callees that provably cannot touch sanitizer metadata. *)
let purity (md : Tir.Ir.modul) : string -> bool =
  let is_hazard n = List.mem n spec.hazard_intrinsics in
  Tir.Analysis.pure_callees md ~is_hazard

let redundant ?(pure = fun _ -> false) (_md : Tir.Ir.modul)
    (f : Tir.Ir.func) : unit =
  ignore (Sanitizer.Checkopt.redundant spec ~pure f)

let loops ?(pure = fun _ -> false) (md : Tir.Ir.modul) (config : Config.t)
    (f : Tir.Ir.func) : unit =
  ignore
    (Sanitizer.Checkopt.loops spec ~check_step:config.Config.check_step ~pure
       md f)

(* Whole-module certified elision; must run after the per-function
   passes above (they key on the original check names). *)
let absint (md : Tir.Ir.modul) : Sanitizer.Checkopt.absint_stats =
  Sanitizer.Checkopt.absint md spec

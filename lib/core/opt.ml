(* CECSan's instantiation of the shared check optimizer (section II.F).
   Unlike redzone-based tools, CECSan can hoist checks on stores as well
   as loads, because a store cannot corrupt the disjoint metadata
   table. *)

let spec : Sanitizer.Checkopt.spec = {
  check_load = "__cecsan_check_load";
  check_store = "__cecsan_check_store";
  produces_addr = true;
  strip_mask = Vm.Layout46.addr_mask;
  may_hoist_stores = true;
  hazard_intrinsics =
    [ "__cecsan_free"; "__cecsan_realloc"; "__cecsan_stack_release";
      "__cecsan_sub_release"; "__cecsan_sub_make"; "__cecsan_malloc";
      "__cecsan_calloc"; "__cecsan_stack_make"; "__cecsan_global_make" ];
  extcall_strip = Some "__cecsan_extcall_strip";
}

let redundant (_md : Tir.Ir.modul) (f : Tir.Ir.func) : unit =
  ignore (Sanitizer.Checkopt.redundant spec f)

let loops (md : Tir.Ir.modul) (config : Config.t) (f : Tir.Ir.func) : unit =
  ignore
    (Sanitizer.Checkopt.loops spec ~check_step:config.Config.check_step md f)

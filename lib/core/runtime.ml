(* The CECSan runtime library: intrinsic implementations (Algorithms 1
   and 2, metadata management) and the libc interceptors.

   Crucially there is NO custom allocator here: allocation goes through
   [Vm.Heap] (the default allocator), and CECSan only wraps it with
   metadata bookkeeping -- the compatibility property the paper claims
   over ASan. *)

module L = Vm.Layout46

let name = "CECSan"

type t = {
  mutable table : Meta_table.t option;
  gpt : (int, int) Hashtbl.t;         (* global slot -> tagged pointer *)
  mutable reports_sub_object : int;
  chain_overflow : bool;              (* the section V.1 extension *)
  (* telemetry, published as gauges by [at_exit] *)
  mutable entry0_hits : int;          (* checks on untagged/foreign ptrs *)
  mutable sub_temporaries : int;      (* narrowed entries materialized *)
}

let get_table rt (st : Vm.State.t) =
  match rt.table with
  | Some t -> t
  | None ->
    (* the runtime's load-time constructor: mmap + init the table *)
    let t = Meta_table.create ~chain_mode:rt.chain_overflow st in
    rt.table <- Some t;
    t

(* --- Algorithm 1: optimized pointer dereference check ------------------- *)

let classify_oob ~write tbl idx _raw =
  if idx <> 0 && Meta_table.low tbl idx = Meta_table.invalid_low then
    Vm.Report.Use_after_free
  else if write then Vm.Report.Oob_write
  else Vm.Report.Oob_read
[@@inline]

let check_deref rt st ~write ~size ?(site = -1) ?(cost = Costs.check) ptr =
  let tbl = get_table rt st in
  Vm.State.tick st cost;
  let idx = L.tag_of ptr in
  if idx = 0 then rt.entry0_hits <- rt.entry0_hits + 1;
  let raw = L.strip ptr in
  let lo = Meta_table.low tbl idx in
  let hi = Meta_table.high tbl idx in
  (* Algorithm 1: OR the two differences; a set sign bit means either the
     pointer is below the low bound (which INVALID forces after free) or
     the access end is above the high bound. *)
  if (raw - lo) lor (hi - (raw + size)) < 0 then begin
    (* the section V.1 extension: the slow path searches the index's
       overflow chain before reporting *)
    match Meta_table.chain_covers tbl idx ~raw ~size with
    | Some links -> Vm.State.tick st (Costs.chain_link * links)
    | None ->
      (* under Recover the access proceeds on the stripped pointer,
         exactly as the uninstrumented program would *)
      Vm.State.report st ~by:name ~addr:raw ~site
        ~detail:(Printf.sprintf "access of %d bytes, entry %d" size idx)
        (classify_oob ~write tbl idx raw)
  end;
  raw

(* A range check used by the interceptors: validates [raw, raw+len). *)
let check_range rt st ~write ptr len =
  let tbl = get_table rt st in
  Vm.State.tick st Costs.range_check;
  let idx = L.tag_of ptr in
  let raw = L.strip ptr in
  if len > 0 then begin
    let lo = Meta_table.low tbl idx in
    let hi = Meta_table.high tbl idx in
    if (raw - lo) lor (hi - (raw + len)) < 0 then begin
      match Meta_table.chain_covers tbl idx ~raw ~size:len with
      | Some links -> Vm.State.tick st (Costs.chain_link * links)
      | None ->
        Vm.State.report st ~by:name ~addr:raw
          ~detail:(Printf.sprintf "range of %d bytes, entry %d" len idx)
          (classify_oob ~write tbl idx raw)
    end
  end;
  raw

(* --- allocation family ---------------------------------------------------- *)

let cecsan_malloc rt st size =
  let tbl = get_table rt st in
  Vm.State.tick st Costs.malloc_extra;
  let base = Vm.Heap.malloc st size in
  (* injected OOM: NULL carries no metadata *)
  if base = 0 then 0 else Meta_table.alloc tbl ~base ~size

(* Algorithm 2: pointer deallocation check. *)
let cecsan_free rt st ptr =
  let tbl = get_table rt st in
  Vm.State.tick st Costs.free_extra;
  if ptr = 0 then ()  (* free(NULL) *)
  else begin
    let idx = L.tag_of ptr in
    let raw = L.strip ptr in
    if idx = 0 then
      (* a foreign pointer from uninstrumented code: pass through *)
      Vm.Heap.free st raw
    else begin
      let lo = Meta_table.low tbl idx in
      if lo <> raw then begin
        (* slow path of the section V.1 extension: the object may live in
           this index's overflow chain *)
        if Meta_table.chain_release tbl idx ~raw then begin
          Vm.State.tick st Costs.chain_link;
          Vm.Heap.free st raw
        end
        else if lo = Meta_table.invalid_low then
          (* a recovering run treats the bad free as a no-op *)
          Vm.State.report st ~by:name ~addr:raw Vm.Report.Double_free
            ~detail:"deallocation of a dangling pointer"
        else
          Vm.State.report st ~by:name ~addr:raw Vm.Report.Invalid_free
            ~detail:"pointer is not the base of a live object"
      end
      else begin
        (* freeing a tracked non-heap object through free() *)
        if raw < L.heap_base || raw >= L.heap_limit then
          Vm.State.report st ~by:name ~addr:raw Vm.Report.Invalid_free
            ~detail:"free() of a non-heap object"
        else begin
          Meta_table.release tbl idx;
          Vm.Heap.free st raw
        end
      end
    end
  end

let cecsan_realloc rt st ptr size =
  if ptr = 0 then cecsan_malloc rt st size
  else begin
    let tbl = get_table rt st in
    let idx = L.tag_of ptr in
    let raw = L.strip ptr in
    let disposition =
      if idx = 0 then
        match Vm.Heap.usable_size st raw with
        | Some s -> `Entry s
        | None ->
          Vm.Report.trap ~addr:raw Vm.Report.Heap_corruption
            ~detail:"realloc(): invalid pointer"
      else begin
        let lo = Meta_table.low tbl idx in
        if lo = raw then `Entry (Meta_table.high tbl idx - lo)
        else
          (* the section V.1 slow path: the object may live in this
             index's overflow chain *)
          match Meta_table.chain_find tbl idx ~raw with
          | Some (e, links) when e.Meta_table.c_lo = raw ->
            Vm.State.tick st (Costs.chain_link * links);
            `Chained (e.Meta_table.c_hi - raw)
          | _ ->
            (if lo = Meta_table.invalid_low then
               Vm.State.report st ~by:name ~addr:raw Vm.Report.Double_free
                 ~detail:"realloc() of a dangling pointer"
             else
               Vm.State.report st ~by:name ~addr:raw Vm.Report.Invalid_free
                 ~detail:"realloc() of a non-base pointer");
            (* recovered: the old block is not trustworthy -- serve a
               fresh allocation and leave it alone *)
            `Fresh
      end
    in
    match disposition with
    | `Fresh -> cecsan_malloc rt st size
    | (`Entry old_size | `Chained old_size) as d ->
      let fresh = cecsan_malloc rt st size in
      if fresh = 0 then 0  (* injected OOM: the old block survives *)
      else begin
        let fraw = L.strip fresh in
        Vm.Memory.copy st.Vm.State.mem ~src:raw ~dst:fraw
          ~len:(min old_size size);
        Vm.State.tick st (Vm.Cost.mem_op (min old_size size));
        (match d with
         | `Chained _ -> ignore (Meta_table.chain_release tbl idx ~raw)
         | `Entry _ -> if idx <> 0 then Meta_table.release tbl idx);
        Vm.Heap.free st raw;
        fresh
      end
  end

(* --- stack, globals, sub-objects ----------------------------------------- *)

let stack_make rt st addr size =
  Vm.State.tick st Costs.stack_make;
  Meta_table.alloc (get_table rt st) ~base:addr ~size

let stack_release rt st tagged =
  Vm.State.tick st Costs.stack_release;
  let tbl = get_table rt st in
  let idx = L.tag_of tagged in
  (* only release if the entry still describes this object (the program
     may have -- illegally but detectably -- freed it via free()) *)
  if idx <> 0 then begin
    if Meta_table.low tbl idx = L.strip tagged then
      Meta_table.release tbl idx
    else ignore (Meta_table.chain_release tbl idx ~raw:(L.strip tagged))
  end

let global_make rt st ~slot addr size =
  let tagged = Meta_table.alloc (get_table rt st) ~base:addr ~size in
  Hashtbl.replace rt.gpt slot tagged;
  (* the GPT itself is ordinary memory (residency counts) *)
  Vm.Memory.store st.Vm.State.mem (L.aux_base + (slot * 8)) 8 tagged;
  tagged

let gpt_load rt st slot =
  Vm.State.tick st Costs.gpt_load;
  match Hashtbl.find_opt rt.gpt slot with
  | Some tagged -> tagged
  | None -> Vm.Memory.load st.Vm.State.mem (L.aux_base + (slot * 8)) 8

(* Sub-object narrowing (section II.D): validate the field range against
   the parent entry, then mint a temporary narrowed entry. *)
let sub_make rt st ptr fsize =
  let tbl = get_table rt st in
  Vm.State.tick st Costs.sub_make;
  let idx = L.tag_of ptr in
  let raw = L.strip ptr in
  let lo = Meta_table.low tbl idx in
  let hi = Meta_table.high tbl idx in
  if (raw - lo) lor (hi - (raw + fsize)) < 0 then begin
    match Meta_table.chain_covers tbl idx ~raw ~size:fsize with
    | Some links -> Vm.State.tick st (Costs.chain_link * links)
    | None ->
      (* under Recover the narrowed entry is minted anyway so the field
         keeps working like any other pointer *)
      if idx <> 0 && lo = Meta_table.invalid_low then
        Vm.State.report st ~by:name ~addr:raw Vm.Report.Use_after_free
          ~detail:"field access through dangling pointer"
      else
        Vm.State.report st ~by:name ~addr:raw Vm.Report.Oob_read
          ~detail:"field address outside parent object"
  end;
  rt.sub_temporaries <- rt.sub_temporaries + 1;
  Meta_table.alloc tbl ~base:raw ~size:fsize

let sub_release rt st tagged =
  Vm.State.tick st Costs.sub_release;
  stack_release rt st tagged  (* same invalidation discipline *)

(* External-call boundary (section II.E): check then strip. *)
let extcall_strip rt st ptr =
  Vm.State.tick st Costs.extcall;
  if ptr = 0 then 0
  else begin
    let tbl = get_table rt st in
    let idx = L.tag_of ptr in
    let raw = L.strip ptr in
    let lo = Meta_table.low tbl idx in
    if idx <> 0 && lo = Meta_table.invalid_low then
      Vm.State.report st ~by:name ~addr:raw Vm.Report.Use_after_free
        ~detail:"dangling pointer passed to external code";
    Telemetry.record st.Vm.State.telem Telemetry.Strip raw idx;
    raw
  end

(* Re-apply a stripped tag to a returned pointer argument. *)
let retag st ~original result =
  Vm.State.tick st Costs.retag;
  if result = 0 then 0 else L.with_tag result (L.tag_of original)

(* --- interceptors --------------------------------------------------------- *)

(* strlen bounded by the object's high bound: running off the end of an
   unterminated buffer is reported instead of silently scanned. *)
let bounded_strlen rt st ptr ~elem =
  let tbl = get_table rt st in
  let idx = L.tag_of ptr in
  let raw = L.strip ptr in
  let lo = Meta_table.low tbl idx in
  let hi0 = Meta_table.high tbl idx in
  let hi =
    if idx = 0 || (raw >= lo && raw < hi0) then hi0
    else
      (* a chained object's bounds live in the index's overflow chain,
         not the primary entry *)
      match Meta_table.chain_find tbl idx ~raw with
      | Some (e, links) ->
        Vm.State.tick st (Costs.chain_link * links);
        e.Meta_table.c_hi
      | None ->
        if lo = Meta_table.invalid_low then begin
          Vm.State.report st ~by:name ~addr:raw Vm.Report.Use_after_free
            ~detail:"string read through dangling pointer";
          (* recovered: scan on, bounded only by the residency check *)
          L.va_limit
        end
        else hi0
  in
  (* report the overrun once, then keep scanning under [check_mapped]
     like the uninstrumented program would *)
  let rec go ~reported k =
    let a = raw + (k * elem) in
    let reported =
      if (not reported) && a + elem > hi then begin
        Vm.State.report st ~by:name ~addr:a Vm.Report.Oob_read
          ~detail:"unterminated string: scan reached object end";
        true
      end
      else reported
    in
    Vm.State.check_mapped st a elem;
    if Vm.Memory.load st.Vm.State.mem a elem = 0 then k
    else go ~reported (k + 1)
  in
  go ~reported:false 0

(* The interceptor table.  CECSan's engineering-effort claim is coverage:
   including the wide-character functions most sanitizers overlook. *)
let interceptors rt : string -> Vm.Runtime.interceptor option =
  let strip = L.strip in
  let two_range ~dlen ~slen st ~raw args =
    (* dst = arg0 (write dlen), src = arg1 (read slen) *)
    ignore (check_range rt st ~write:true args.(0) dlen);
    ignore (check_range rt st ~write:false args.(1) slen);
    let res = raw (Array.map strip args) in
    retag st ~original:args.(0) res
  in
  function
  | "memcpy" | "memmove" ->
    Some (fun st ~raw args ->
        let n = args.(2) in
        two_range ~dlen:n ~slen:n st ~raw args)
  | "memset" ->
    Some (fun st ~raw args ->
        ignore (check_range rt st ~write:true args.(0) args.(2));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "memcmp" ->
    Some (fun st ~raw args ->
        ignore (check_range rt st ~write:false args.(0) args.(2));
        ignore (check_range rt st ~write:false args.(1) args.(2));
        raw (Array.map strip args))
  | "strcpy" ->
    Some (fun st ~raw args ->
        let n = bounded_strlen rt st args.(1) ~elem:1 in
        two_range ~dlen:(n + 1) ~slen:(n + 1) st ~raw args)
  | "strncpy" ->
    Some (fun st ~raw args ->
        let n = args.(2) in
        ignore (check_range rt st ~write:true args.(0) n);
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "strcat" ->
    Some (fun st ~raw args ->
        let dlen = bounded_strlen rt st args.(0) ~elem:1 in
        let slen = bounded_strlen rt st args.(1) ~elem:1 in
        ignore (check_range rt st ~write:true args.(0) (dlen + slen + 1));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "strncat" ->
    Some (fun st ~raw args ->
        let dlen = bounded_strlen rt st args.(0) ~elem:1 in
        let slen = min (bounded_strlen rt st args.(1) ~elem:1) args.(2) in
        ignore (check_range rt st ~write:true args.(0) (dlen + slen + 1));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "strlen" ->
    Some (fun st ~raw args ->
        let n = bounded_strlen rt st args.(0) ~elem:1 in
        ignore (raw (Array.map strip args));
        n)
  | "strcmp" | "strncmp" ->
    Some (fun st ~raw args ->
        ignore (bounded_strlen rt st args.(0) ~elem:1);
        ignore (bounded_strlen rt st args.(1) ~elem:1);
        raw (Array.map strip args))
  | "strchr" ->
    Some (fun st ~raw args ->
        ignore (bounded_strlen rt st args.(0) ~elem:1);
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "strdup" ->
    Some (fun st ~raw:_ args ->
        let n = bounded_strlen rt st args.(0) ~elem:1 in
        let p = cecsan_malloc rt st (n + 1) in
        Vm.Memory.copy st.Vm.State.mem ~src:(strip args.(0))
          ~dst:(strip p) ~len:(n + 1);
        Vm.State.tick st (Vm.Cost.str_op n);
        p)
  | "atoi" ->
    Some (fun st ~raw args ->
        ignore (bounded_strlen rt st args.(0) ~elem:1);
        raw (Array.map strip args))
  (* the wide-character family: the checks "previously overlooked by most
     sanitizers" that let CECSan catch more of CWE122 *)
  | "wcslen" ->
    Some (fun st ~raw args ->
        let n = bounded_strlen rt st args.(0) ~elem:4 in
        ignore (raw (Array.map strip args));
        n)
  | "wcscpy" ->
    Some (fun st ~raw args ->
        let n = bounded_strlen rt st args.(1) ~elem:4 in
        two_range ~dlen:((n + 1) * 4) ~slen:((n + 1) * 4) st ~raw args)
  | "wcsncpy" ->
    Some (fun st ~raw args ->
        let n = args.(2) in
        ignore (check_range rt st ~write:true args.(0) (n * 4));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "wcscat" ->
    Some (fun st ~raw args ->
        let dlen = bounded_strlen rt st args.(0) ~elem:4 in
        let slen = bounded_strlen rt st args.(1) ~elem:4 in
        ignore
          (check_range rt st ~write:true args.(0) ((dlen + slen + 1) * 4));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "wcscmp" ->
    Some (fun st ~raw args ->
        ignore (bounded_strlen rt st args.(0) ~elem:4);
        ignore (bounded_strlen rt st args.(1) ~elem:4);
        raw (Array.map strip args))
  | "puts" ->
    Some (fun st ~raw args ->
        ignore (bounded_strlen rt st args.(0) ~elem:1);
        raw (Array.map strip args))
  | "printf" ->
    Some (fun st ~raw args ->
        (* check and strip the format and every %s argument *)
        ignore (bounded_strlen rt st args.(0) ~elem:1);
        let fmt = Vm.Memory.read_string st.Vm.State.mem (strip args.(0)) in
        let stripped = Array.copy args in
        stripped.(0) <- strip args.(0);
        let argi = ref 1 in
        String.iteri
          (fun i c ->
             if c = '%' && i + 1 < String.length fmt then begin
               match fmt.[i + 1] with
               | 's' ->
                 if !argi < Array.length stripped then begin
                   ignore (bounded_strlen rt st stripped.(!argi) ~elem:1);
                   stripped.(!argi) <- strip stripped.(!argi)
                 end;
                 incr argi
               | '%' -> ()
               | _ -> incr argi
             end)
          fmt;
        raw stripped)
  | "fgets" ->
    Some (fun st ~raw args ->
        ignore (check_range rt st ~write:true args.(0) args.(1));
        let res = raw (Array.map strip args) in
        retag st ~original:args.(0) res)
  | "recv" ->
    Some (fun st ~raw args ->
        ignore (check_range rt st ~write:true args.(1) args.(2));
        raw (Array.map strip args))
  | _ -> None

(* --- assembling the Vm.Runtime ------------------------------------------- *)

let intrinsic_table rt : (string * Vm.Runtime.intrinsic) list =
  [
    (* args.(last) is always the site id appended by the machine *)
    "__cecsan_check_load",
    (fun st a -> check_deref rt st ~write:false ~size:a.(1) ~site:a.(2) a.(0));
    "__cecsan_check_store",
    (fun st a -> check_deref rt st ~write:true ~size:a.(1) ~site:a.(2) a.(0));
    (* spatial-only downgrades (DESIGN.md 16): detection-identical to the
       fused check -- same Algorithm 1 over the same entry -- at the lower
       cost the statically-certified temporal half buys *)
    "__cecsan_check_load_spatial",
    (fun st a ->
       check_deref rt st ~write:false ~size:a.(1) ~site:a.(2)
         ~cost:Costs.check_spatial a.(0));
    "__cecsan_check_store_spatial",
    (fun st a ->
       check_deref rt st ~write:true ~size:a.(1) ~site:a.(2)
         ~cost:Costs.check_spatial a.(0));
    "__cecsan_malloc", (fun st a -> cecsan_malloc rt st a.(0));
    "__cecsan_free", (fun st a -> cecsan_free rt st a.(0); 0);
    "__cecsan_calloc",
    (fun st a ->
       let n = a.(0) * a.(1) in
       let p = cecsan_malloc rt st n in
       Vm.Memory.fill st.Vm.State.mem ~dst:(L.strip p) ~len:n 0;
       Vm.State.tick st (Vm.Cost.mem_op n);
       p);
    "__cecsan_realloc", (fun st a -> cecsan_realloc rt st a.(0) a.(1));
    "__cecsan_stack_make", (fun st a -> stack_make rt st a.(0) a.(1));
    "__cecsan_stack_release", (fun st a -> stack_release rt st a.(0); 0);
    "__cecsan_global_make",
    (fun st a -> global_make rt st ~slot:a.(2) a.(0) a.(1));
    "__cecsan_gpt_load", (fun st a -> gpt_load rt st a.(0));
    "__cecsan_sub_make", (fun st a -> sub_make rt st a.(0) a.(1));
    "__cecsan_sub_release", (fun st a -> sub_release rt st a.(0); 0);
    "__cecsan_extcall_strip", (fun st a -> extcall_strip rt st a.(0));
    "__cecsan_retag", (fun st a -> retag st ~original:a.(1) a.(0));
  ]

let stats rt =
  match rt.table with
  | None -> (0, 0)
  | Some t -> (t.Meta_table.peak_live, t.Meta_table.total_allocated)

let create ?(chain_overflow = false) () : t * Vm.Runtime.t =
  let rt = { table = None; gpt = Hashtbl.create 17; reports_sub_object = 0;
             chain_overflow; entry0_hits = 0; sub_temporaries = 0 } in
  let vrt = {
    Vm.Runtime.rt_name = name;
    intrinsics = Hashtbl.create 32;
    malloc = None;          (* the point: no custom allocator *)
    free_ = None;
    intercept = interceptors rt;
    usable_size = None;
    tbi_bits = 0;           (* x86-64: no TBI; checks strip explicitly *)
    at_exit =
      (fun st ->
         (* publish the table's degradation telemetry so the driver and
            [--stats] can see coverage lost to exhaustion/chaining *)
         if rt.entry0_hits > 0 then
           Vm.State.set_stat st "entry0_hits" rt.entry0_hits;
         if rt.sub_temporaries > 0 then
           Vm.State.set_stat st "sub_temporaries" rt.sub_temporaries;
         match rt.table with
         | None -> ()
         | Some t ->
           Vm.State.set_stat st "meta_live" t.Meta_table.live;
           Vm.State.set_stat st "meta_recycled" t.Meta_table.recycled;
           Vm.State.set_stat st "meta_peak_live" t.Meta_table.peak_live;
           Vm.State.set_stat st "meta_total_allocated"
             t.Meta_table.total_allocated;
           Vm.State.set_stat st "exhausted_fallbacks"
             t.Meta_table.exhausted_fallbacks;
           Vm.State.set_stat st "chained" t.Meta_table.chain_total;
           Vm.State.set_stat st "chain_live" t.Meta_table.chained;
           Vm.State.set_stat st "chain_lookups" t.Meta_table.chain_lookups;
           Vm.State.set_stat st "chain_links_walked"
             t.Meta_table.chain_links_walked);
  } in
  List.iter (fun (n, f) -> Hashtbl.replace vrt.Vm.Runtime.intrinsics n f)
    (intrinsic_table rt);
  (rt, vrt)

(* Cycle costs of the CECSan runtime operations: what the inlined
   instruction sequences of the real implementation cost on x86-64.
   A dereference check is a dependent table load plus the fused
   two-sided compare of Algorithm 1. *)

let check = 24            (* dependent, often-cold table load + fused compare + strip *)
let check_filtered = 2    (* monotonic grouped check, filtered iteration *)
let check_spatial = 16    (* temporal half proven statically: the entry cannot
                             be invalidated before this site, so the table load
                             stays warm/hoistable; compare + strip remain *)
let malloc_extra = 12     (* entry allocation in the metadata table *)
let free_extra = 10       (* Algorithm 2 + entry invalidation *)
let stack_make = 13
let stack_release = 6
let sub_make = 13
let sub_release = 5
let gpt_load = 4
let extcall = 4           (* check + strip at an external call boundary *)
let range_check = 14      (* interceptor: one range against one entry *)
let retag = 2
let chain_link = 4        (* walking one overflow-chain link (section V.1) *)

(* The compact, reusable metadata table -- the core data structure of the
   paper (section II.B, Figure 2).

   The table is a linear array of 24-byte entries (low bound, high bound,
   nextID) living in *simulated memory* at [Layout46.meta_base], exactly
   like the mmap'd table of the real runtime: entries only become
   resident when touched, which is why the paper's memory overhead is a
   few percent even though the table reserves 2^17 * 24 bytes.

   Free-list encoding (Figure 2): [nextID] of a freed entry holds the
   *offset* from the entry to the next allocation frontier; the global
   index GMI points at the most recently freed entry, so freed slots are
   reused LIFO:

     allocate:  i = GMI;  GMI = i + 1 + nextID[i];  nextID[i] = 0
     free(k):   nextID[k] = GMI - k - 1;  lo[k] = INVALID;  hi[k] = 0;
                GMI = k

   Entry 0 is reserved for untagged/foreign pointers: (0, VA_MAX), so
   every check against it passes -- uninstrumented code's pointers are
   usable as-is (section II.E). *)

let entry_bytes = 24
let invalid_low = Vm.Layout46.va_limit  (* "a very high value" *)

(* The section V.1 overflow extension: once the table is exhausted,
   several objects can share one index; the extra objects live in
   per-index chains searched after the primary entry misses. *)
type chain_entry = { c_lo : int; c_hi : int }

type t = {
  st : Vm.State.t;
  mutable gmi : int;
  mutable live : int;               (* currently live entries *)
  mutable peak_live : int;
  mutable total_allocated : int;
  mutable recycled : int;            (* entries re-served off the free list *)
  mutable exhausted_fallbacks : int; (* allocations served untagged *)
  mutable chain_mode : bool;         (* section V.1 extension enabled *)
  chains : (int, chain_entry list ref) Hashtbl.t;
  mutable chained : int;             (* live chained objects *)
  mutable chain_total : int;         (* objects ever chained *)
  mutable chain_cursor : int;        (* round-robin shared index *)
  mutable chain_lookups : int;       (* slow-path chain searches *)
  mutable chain_links_walked : int;  (* total links traversed *)
}

(* The table size this run honors: the architectural 2^17 unless the
   fault injector shrank it (never below entry 0 plus one real slot). *)
let effective_limit t =
  max 2
    (Vm.Fault.effective_table_limit t.st.Vm.State.fault
       ~default:Vm.Layout46.tag_limit)

let entry_addr i = Vm.Layout46.meta_base + (i * entry_bytes)

let low t i = Vm.Memory.load t.st.Vm.State.mem (entry_addr i) 8
let high t i = Vm.Memory.load t.st.Vm.State.mem (entry_addr i + 8) 8
let next_id t i = Vm.Memory.load t.st.Vm.State.mem (entry_addr i + 16) 8

let set_low t i v = Vm.Memory.store t.st.Vm.State.mem (entry_addr i) 8 v
let set_high t i v = Vm.Memory.store t.st.Vm.State.mem (entry_addr i + 8) 8 v
let set_next_id t i v =
  Vm.Memory.store t.st.Vm.State.mem (entry_addr i + 16) 8 v

(* The constructor the runtime library registers: initializes entry 0 and
   GMI (paper section III: "the constructor... allocates and initializes
   a metadata table through mmap before program starts"). *)
let create ?(chain_mode = false) (st : Vm.State.t) : t =
  let t = { st; gmi = 1; live = 0; peak_live = 0; total_allocated = 0;
            recycled = 0; exhausted_fallbacks = 0; chain_mode;
            chains = Hashtbl.create 16; chained = 0; chain_total = 0;
            chain_cursor = 1;
            chain_lookups = 0; chain_links_walked = 0 } in
  set_low t 0 0;
  set_high t 0 Vm.Layout46.va_limit;
  set_next_id t 0 0;
  t

(* Creates an entry for object [base, base+size) and returns the tagged
   pointer.  On table exhaustion, falls back to the reserved entry 0
   (untagged, unprotected) -- the degradation discussed in section V.1. *)
let alloc t ~base ~size : int =
  let limit = effective_limit t in
  if t.gmi >= limit then begin
    if t.chain_mode then begin
      (* share an index round-robin; the object's bounds live in the
         index's chain *)
      let i = 1 + (t.chain_cursor mod (limit - 1)) in
      t.chain_cursor <- t.chain_cursor + 1;
      let l =
        match Hashtbl.find_opt t.chains i with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.replace t.chains i l;
          l
      in
      l := { c_lo = base; c_hi = base + size } :: !l;
      t.chained <- t.chained + 1;
      t.chain_total <- t.chain_total + 1;
      t.total_allocated <- t.total_allocated + 1;
      Vm.Layout46.with_tag base i
    end
    else begin
      (* the entry-0 degradation still serves an allocation: count it,
         or the stats under-count exactly when degradation kicks in *)
      t.exhausted_fallbacks <- t.exhausted_fallbacks + 1;
      t.total_allocated <- t.total_allocated + 1;
      base
    end
  end
  else begin
    let i = t.gmi in
    let off = next_id t i in
    (* a released entry carries [invalid_low]; fresh table memory is 0 --
       so this probe (on a page [next_id] just touched) detects free-list
       recycling with no residency cost *)
    if low t i = invalid_low then t.recycled <- t.recycled + 1;
    set_low t i base;
    set_high t i (base + size);
    set_next_id t i 0;
    t.gmi <- i + 1 + off;
    t.live <- t.live + 1;
    if t.live > t.peak_live then t.peak_live <- t.live;
    t.total_allocated <- t.total_allocated + 1;
    Vm.Layout46.with_tag base i
  end

(* Does some chain element of index [i] cover [raw, raw+size)?  Returns
   the number of links walked (the extension's runtime cost) or None. *)
let chain_covers t i ~raw ~size : int option =
  if not t.chain_mode then None
  else
    match Hashtbl.find_opt t.chains i with
    | None -> None
    | Some l ->
      t.chain_lookups <- t.chain_lookups + 1;
      let rec go k = function
        | [] ->
          t.chain_links_walked <- t.chain_links_walked + k - 1;
          None
        | e :: rest ->
          if raw >= e.c_lo && raw + size <= e.c_hi then begin
            t.chain_links_walked <- t.chain_links_walked + k;
            Some k
          end
          else go (k + 1) rest
      in
      go 1 !l

(* The chain element of index [i] containing [raw], plus the links
   walked to reach it (used by interceptors/realloc, which need the
   element's own bounds rather than a yes/no cover answer). *)
let chain_find t i ~raw : (chain_entry * int) option =
  if not t.chain_mode then None
  else
    match Hashtbl.find_opt t.chains i with
    | None -> None
    | Some l ->
      t.chain_lookups <- t.chain_lookups + 1;
      let rec go k = function
        | [] ->
          t.chain_links_walked <- t.chain_links_walked + k - 1;
          None
        | e :: rest ->
          if raw >= e.c_lo && raw < e.c_hi then begin
            t.chain_links_walked <- t.chain_links_walked + k;
            Some (e, k)
          end
          else go (k + 1) rest
      in
      go 1 !l

(* Removes the chain element of index [i] whose base is [raw]; true on
   success (used by free). *)
let chain_release t i ~raw : bool =
  if not t.chain_mode then false
  else
    match Hashtbl.find_opt t.chains i with
    | None -> false
    | Some l ->
      t.chain_lookups <- t.chain_lookups + 1;
      let found = ref false in
      let walked = ref 0 in
      l :=
        List.filter
          (fun e ->
             if not !found then incr walked;
             if (not !found) && e.c_lo = raw then begin
               found := true;
               false
             end
             else true)
          !l;
      t.chain_links_walked <- t.chain_links_walked + !walked;
      if !found then begin
        t.chained <- t.chained - 1;
        (* a drained chain must not pin its (empty) list forever *)
        if !l = [] then Hashtbl.remove t.chains i
      end;
      !found

(* Invalidates entry [i] and pushes it on the free list. *)
let release t i =
  if i <> 0 then begin
    set_next_id t i (t.gmi - i - 1);
    set_low t i invalid_low;
    set_high t i 0;
    t.gmi <- i;
    t.live <- t.live - 1
  end

(** CECSan compile-time instrumentation, run over the fully linked module
    (the LTO model of the paper: external functions are known).

    Phases: safety-flag downgrade for accesses rooted at protected
    objects, Global Pointer Table rewriting, stack object protection,
    allocation-family rewriting, sub-object narrowing, tag stripping at
    external calls, dereference-check insertion, and the section II.F
    optimizations. *)

val is_alloc_family : string -> bool

val instrument : ?config:Config.t -> Tir.Ir.modul -> unit
(** Check/metadata insertion phases only (no check optimization). *)

val optimize : ?config:Config.t -> Tir.Ir.modul -> unit
(** The section II.F check optimizations (redundant elimination, loop
    hoisting/grouping), gated by the config's [opt_*] switches. *)

val run : ?config:Config.t -> Tir.Ir.modul -> unit
(** [instrument] then [optimize]: the full pass in one step. *)

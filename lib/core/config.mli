(** CECSan configuration: feature and optimization toggles used by the
    ablation experiments. *)

type t = {
  subobject : bool;       (** sub-object bound narrowing (section II.D) *)
  protect_stack : bool;   (** stack object protection (section II.C.3) *)
  protect_globals : bool; (** Global Pointer Table (section II.C.3) *)
  opt_redundant : bool;   (** redundant check elimination (II.F) *)
  opt_loop : bool;        (** loop-invariant hoisting + monotonic
                              grouping (II.F.1) *)
  opt_typeinfo : bool;    (** statically-safe check removal (II.F.2) *)
  opt_absint : bool;      (** certified elision from whole-program
                              abstract interpretation (DESIGN.md 16) *)
  check_step : int;       (** grouping factor of II.F.1 (paper: 5) *)
  chain_overflow : bool;
      (** the section V.1 future-work extension: on metadata-table
          exhaustion, chain conflicting metadata off shared indices
          instead of degrading to unprotected entry-0 pointers *)
  policy : Vm.Report.policy;
      (** what a failed check does: [Halt] (the default) raises on the
          first finding; [Recover] records deduplicated findings and
          keeps the program running *)
}

val default : t
(** The full system, as evaluated in the paper. *)

val no_opts : t
(** All II.F optimizations disabled (ablation). *)

val no_subobject : t
(** Object-granularity only: what ASan/PACMem-class tools see. *)

val with_chain : t
(** [default] plus the overflow-chain extension of section V.1. *)

val recover : t
(** [default] with a [Recover] policy at [Vm.Report.default_max_reports]. *)

val to_string : t -> string

(** Cycle costs of the CECSan runtime operations: what the inlined
    instruction sequences of the real implementation cost on x86-64.
    The dereference check is a dependent (often cache-cold) table load
    plus the fused two-sided compare of Algorithm 1. *)

val check : int
val check_filtered : int
val check_spatial : int
  (* spatial-only downgraded check (DESIGN.md 16): same fused compare,
     but the statically-proven temporal half keeps the entry load warm *)
val malloc_extra : int
val free_extra : int
val stack_make : int
val stack_release : int
val sub_make : int
val sub_release : int
val gpt_load : int
val extcall : int
val range_check : int
val retag : int
val chain_link : int   (* walking one overflow-chain link (section V.1) *)

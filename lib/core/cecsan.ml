(* CECSan: the public facade.

   Usage:
     let san = Cecsan.sanitizer () in
     let result = Sanitizer.Driver.run san source in
     ...

   [sanitizer ~config ()] builds a [Sanitizer.Spec.t] that instruments at
   link time and supplies the runtime (metadata table, Algorithms 1-2,
   interceptors). *)

module Config = Config
module Meta_table = Meta_table
module Runtime = Runtime
module Instrument = Instrument
module Subobject = Subobject
module Opt = Opt
module Costs = Costs

let sanitizer ?(config = Config.default) () : Sanitizer.Spec.t =
  {
    Sanitizer.Spec.name = "CECSan";
    instrument = (fun md -> Instrument.instrument ~config md);
    optimize = (fun md -> Instrument.optimize ~config md);
    verify = Some Opt.spec;
    fresh_runtime =
      (fun () ->
         snd
           (Runtime.create
              ~chain_overflow:config.Config.chain_overflow ()));
    default_policy = config.Config.policy;
  }

(* Named variants used by the ablation benchmarks. *)
let variants : (string * Sanitizer.Spec.t) list =
  [
    "CECSan", sanitizer ();
    "CECSan-noopt", sanitizer ~config:Config.no_opts ();
    "CECSan-nosubobj", sanitizer ~config:Config.no_subobject ();
    "CECSan-noloopopt",
    sanitizer ~config:{ Config.default with opt_loop = false } ();
    "CECSan-notypeinfo",
    sanitizer ~config:{ Config.default with opt_typeinfo = false } ();
    "CECSan-noredundant",
    sanitizer ~config:{ Config.default with opt_redundant = false } ();
    "CECSan-chain", sanitizer ~config:Config.with_chain ();
  ]

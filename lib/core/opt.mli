(** CECSan's instantiation of the shared check optimizer (section II.F).
    Unlike redzone tools, CECSan hoists checks on stores as well as
    loads: a store cannot corrupt the disjoint metadata table. *)

val spec : Sanitizer.Checkopt.spec

val model : Tir.Absint.model
(** Abstract-interpretation model of the CECSan intrinsics, also
    carried inside [spec.absint]. *)

val purity : Tir.Ir.modul -> string -> bool
(** Memoized [Tir.Analysis.pure_callees] closure over [spec]'s hazard
    set; share one closure across the passes of a pipeline run. *)

val redundant : ?pure:(string -> bool) -> Tir.Ir.modul -> Tir.Ir.func -> unit
val loops :
  ?pure:(string -> bool) -> Tir.Ir.modul -> Config.t -> Tir.Ir.func -> unit

val absint : Tir.Ir.modul -> Sanitizer.Checkopt.absint_stats
(** Certified check elision over the whole module (DESIGN.md section
    16); run after {!redundant} and {!loops}. *)

(* CECSan configuration: feature and optimization toggles.

   The defaults are the paper's full system; the ablation benchmarks in
   bench/main.ml flip individual switches (DESIGN.md experiment index). *)

type t = {
  subobject : bool;       (* section II.D: sub-object bound narrowing *)
  protect_stack : bool;   (* section II.C.3 *)
  protect_globals : bool; (* section II.C.3: the GPT *)
  opt_redundant : bool;   (* section II.F: redundant check elimination *)
  opt_loop : bool;        (* section II.F.1: invariant + monotonic checks *)
  opt_typeinfo : bool;    (* section II.F.2: statically-safe check removal *)
  opt_absint : bool;      (* DESIGN.md 16: certified elision via Tir.Absint *)
  check_step : int;       (* monotonic check grouping factor (paper: 5) *)
  (* section V.1 future work: on table exhaustion, chain conflicting
     metadata off shared indices instead of degrading to unprotected *)
  chain_overflow : bool;
  (* what a failed check does: [Halt] raises on the first finding,
     [Recover] records findings and keeps the program running *)
  policy : Vm.Report.policy;
}

let default = {
  subobject = true;
  protect_stack = true;
  protect_globals = true;
  opt_redundant = true;
  opt_loop = true;
  opt_typeinfo = true;
  opt_absint = true;
  check_step = 5;
  chain_overflow = false;
  policy = Vm.Report.Halt;
}

let no_opts = {
  default with
  opt_redundant = false;
  opt_loop = false;
  opt_typeinfo = false;
  opt_absint = false;
}

let no_subobject = { default with subobject = false }

(* the section V.1 extension enabled *)
let with_chain = { default with chain_overflow = true }

(* keep running past findings, with the standard report cap *)
let recover =
  { default with
    policy = Vm.Report.Recover
        { max_reports = Vm.Report.default_max_reports } }

let to_string c =
  Printf.sprintf
    "subobject=%b stack=%b globals=%b redundant=%b loop=%b typeinfo=%b      absint=%b step=%d chain=%b policy=%s"
    c.subobject c.protect_stack c.protect_globals c.opt_redundant c.opt_loop
    c.opt_typeinfo c.opt_absint c.check_step c.chain_overflow
    (match c.policy with
     | Vm.Report.Halt -> "halt"
     | Vm.Report.Recover { max_reports } ->
       Printf.sprintf "recover:%d" max_reports)

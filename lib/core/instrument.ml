(* CECSan compile-time instrumentation (run at "LTO time", i.e. over the
   fully linked module so external functions are known).

   Phases, in order:
     1. downgrade [safe] flags of accesses rooted at unsafe objects
        (their addresses will be tagged, so they must go through checks);
     2. GPT rewrite: accesses to unsafe globals load a tagged pointer
        from the Global Pointer Table (section II.C.3);
     3. stack protection: metadata for unsafe stack slots in prologues,
        released in epilogues;
     4. allocation-family rewrite: malloc/free/calloc/realloc become
        CECSan intrinsics that tag/validate (section II.B);
     5. sub-object narrowing (section II.D);
     6. tag stripping at calls to external, uninstrumented user functions
        (section II.E; libc builtins are handled by interceptors instead);
     7. dereference check insertion (Algorithm 1 call sites);
     8. optimizations (section II.F) -- in Opt.
*)

open Tir.Ir

let is_alloc_family = Instrument_util.is_alloc_family

(* --- phase 1: downgrade safety of unsafe-rooted accesses ------------------ *)

let downgrade_safe_flags (md : modul) (f : func) : unit =
  let unsafe_slot = Array.make (List.length f.f_slots) false in
  List.iter (fun s -> unsafe_slot.(s.s_id) <- s.s_unsafe) f.f_slots;
  let unsafe_glob : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun g -> if g.g_unsafe then Hashtbl.replace unsafe_glob g.g_name ())
    md.m_globals;
  Array.iter
    (fun b ->
       let rooted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
       let opnd_rooted = function
         | Reg r -> Hashtbl.mem rooted r
         | Glob g -> Hashtbl.mem unsafe_glob g
         | Imm _ -> false
       in
       b.b_instrs <-
         List.map
           (fun i ->
              let i' =
                match i with
                | Iload ({ addr; safe = true; _ } as l) when opnd_rooted addr
                  -> Iload { l with safe = false }
                | Istore ({ addr; safe = true; _ } as s) when opnd_rooted addr
                  -> Istore { s with safe = false }
                | i -> i
              in
              (match i' with
               | Islot { dst; slot } when unsafe_slot.(slot) ->
                 Hashtbl.replace rooted dst ()
               | Igep { dst; base; _ } when opnd_rooted base ->
                 Hashtbl.replace rooted dst ()
               | _ ->
                 (match defs i' with
                  | Some d -> Hashtbl.remove rooted d
                  | None -> ()));
              i')
           b.b_instrs)
    f.f_blocks

(* --- phase 2: the Global Pointer Table ------------------------------------ *)

let gpt_slots (md : modul) : (string * global * int) list =
  let k = ref (-1) in
  List.filter_map
    (fun g ->
       if g.g_unsafe then begin
         incr k;
         Some (g.g_name, g, !k)
       end
       else None)
    md.m_globals

let rewrite_globals (md : modul) (slots : (string * global * int) list)
    (f : func) : unit =
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, _, k) -> Hashtbl.replace slot_of n k) slots;
  let rewrite_block b =
    b.b_instrs <-
      List.concat_map
        (fun i ->
           let prefix = ref [] in
           let fix o =
             match o with
             | Glob g ->
               (match Hashtbl.find_opt slot_of g with
                | Some k ->
                  let r = fresh_reg f in
                  prefix :=
                    Iintrin { dst = Some r; name = "__cecsan_gpt_load";
                              args = [ Imm k ]; site = fresh_site md }
                    :: !prefix;
                  Reg r
                | None -> o)
             | Reg _ | Imm _ -> o
           in
           let i' =
             match i with
             | Imov c -> Imov { c with src = fix c.src }
             | Ibin c -> Ibin { c with a = fix c.a; b = fix c.b }
             | Icmp c -> Icmp { c with a = fix c.a; b = fix c.b }
             | Isext c -> Isext { c with src = fix c.src }
             | Iload c -> Iload { c with addr = fix c.addr }
             | Istore c -> Istore { c with addr = fix c.addr; src = fix c.src }
             | Islot _ -> i
             | Igep c ->
               Igep { c with base = fix c.base; idx = Option.map fix c.idx }
             | Icall c -> Icall { c with args = List.map fix c.args }
             | Iintrin c -> Iintrin { c with args = List.map fix c.args }
           in
           List.rev (i' :: !prefix))
        b.b_instrs;
    b.b_term <-
      (match b.b_term with
       | Tcbr (Glob g, x, y) when Hashtbl.mem slot_of g ->
         (* a branch on a global's address is always true; keep simple *)
         Tcbr (Imm 1, x, y)
       | t -> t)
  in
  Array.iter rewrite_block f.f_blocks

let insert_gpt_init (md : modul) (slots : (string * global * int) list) : unit =
  match find_func md "main" with
  | None -> ()
  | Some main ->
    let init =
      List.concat_map
        (fun (name, g, k) ->
           [ Iintrin { dst = None; name = "__cecsan_global_make";
                       args = [ Glob name; Imm g.g_size; Imm k ];
                       site = fresh_site md } ])
        slots
    in
    Tir.Rewrite.insert_prologue main init

(* --- phase 3: stack protection -------------------------------------------- *)

let protect_stack (md : modul) (f : func) : unit =
  let unsafe = List.filter (fun s -> s.s_unsafe) f.f_slots in
  if unsafe <> [] then begin
    let tag_reg : (int, int) Hashtbl.t = Hashtbl.create 4 in
    List.iter (fun s -> Hashtbl.replace tag_reg s.s_id (fresh_reg f)) unsafe;
    (* replace existing slot-address instructions by the tagged pointer *)
    Tir.Rewrite.map_instrs
      (function
        | Islot { dst; slot } when Hashtbl.mem tag_reg slot ->
          [ Imov { dst; src = Reg (Hashtbl.find tag_reg slot) } ]
        | i -> [ i ])
      f;
    let prologue =
      List.concat_map
        (fun s ->
           let a = fresh_reg f in
           [ Islot { dst = a; slot = s.s_id };
             Iintrin { dst = Some (Hashtbl.find tag_reg s.s_id);
                       name = "__cecsan_stack_make";
                       args = [ Reg a; Imm s.s_size ];
                       site = fresh_site md } ])
        unsafe
    in
    Tir.Rewrite.insert_prologue f prologue;
    Tir.Rewrite.insert_before_rets f (fun () ->
        List.map
          (fun s ->
             Iintrin { dst = None; name = "__cecsan_stack_release";
                       args = [ Reg (Hashtbl.find tag_reg s.s_id) ];
                       site = fresh_site md })
          unsafe)
  end

(* --- phase 4: allocation family ------------------------------------------- *)

let rewrite_allocs (md : modul) (f : func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Icall { dst; callee; args } when is_alloc_family callee ->
        [ Iintrin { dst; name = "__cecsan_" ^ callee; args;
                    site = fresh_site md } ]
      | i -> [ i ])
    f

(* --- phase 6: external user calls ------------------------------------------ *)

let strip_external_calls (md : modul) (f : func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Icall { dst; callee; args } as i ->
        (match find_func md callee with
         | Some { f_external = true; f_sig_ptrs; _ } ->
           let prefix = ref [] in
           let args' =
             List.mapi
               (fun k a ->
                  let is_ptr =
                    match List.nth_opt f_sig_ptrs k with
                    | Some b -> b
                    | None -> false
                  in
                  if is_ptr then begin
                    let r = fresh_reg f in
                    prefix :=
                      Iintrin { dst = Some r;
                                name = "__cecsan_extcall_strip";
                                args = [ a ]; site = fresh_site md }
                      :: !prefix;
                    Reg r
                  end
                  else a)
               args
           in
           List.rev !prefix @ [ Icall { dst; callee; args = args' } ]
         | _ -> [ i ])
      | i -> [ i ])
    f

(* --- phase 7: dereference checks ------------------------------------------- *)

let insert_checks (md : modul) (cfg : Config.t) (f : func) : unit =
  let should_check safe = (not safe) || not cfg.Config.opt_typeinfo in
  Tir.Rewrite.map_instrs
    (function
      | Iload ({ addr; size; safe; _ } as l) when should_check safe ->
        let r = fresh_reg f in
        [ Iintrin { dst = Some r; name = "__cecsan_check_load";
                    args = [ addr; Imm size ]; site = fresh_site md };
          Iload { l with addr = Reg r } ]
      | Istore ({ addr; size; safe; _ } as s) when should_check safe ->
        let r = fresh_reg f in
        [ Iintrin { dst = Some r; name = "__cecsan_check_store";
                    args = [ addr; Imm size ]; site = fresh_site md };
          Istore { s with addr = Reg r } ]
      | i -> [ i ])
    f

(* --- driver ----------------------------------------------------------------- *)

(* Check/metadata insertion only; [optimize] is the separate section
   II.F phase so the driver can verify coverage on both sides of it. *)
let instrument ?(config = Config.default) (md : modul) : unit =
  (* LTO view: safety analyses over the final linked module *)
  Tir.Analysis.run md;
  let slots = if config.Config.protect_globals then gpt_slots md else [] in
  iter_funcs md (fun f ->
      if not f.f_external then begin
        downgrade_safe_flags md f;
        rewrite_globals md slots f;
        if config.Config.protect_stack then protect_stack md f;
        rewrite_allocs md f;
        if config.Config.subobject then ignore (Subobject.narrow md f);
        strip_external_calls md f;
        insert_checks md config f
      end);
  insert_gpt_init md slots

let optimize ?(config = Config.default) (md : modul) : unit =
  let pure = Opt.purity md in
  if config.Config.opt_redundant then
    iter_funcs md (fun f -> if not f.f_external then Opt.redundant ~pure md f);
  if config.Config.opt_loop then
    iter_funcs md (fun f ->
        if not f.f_external then Opt.loops ~pure md config f);
  (* certified elision last: the passes above key on the original check
     names, and every rewrite here leaves a replayable witness *)
  if config.Config.opt_absint then ignore (Opt.absint md)

let run ?(config = Config.default) (md : modul) : unit =
  instrument ~config md;
  optimize ~config md

(** The compact, reusable metadata table (paper section II.B, Figure 2).

    A linear array of [(low bound, high bound, nextID)] entries living in
    simulated memory, indexed by the 17 tag bits of a pointer.  Freed
    entries form an in-table free list threaded through [nextID] and are
    reused LIFO.  Entry 0 is reserved for untagged/foreign pointers and
    always passes checks. *)

val entry_bytes : int
(** Size of one entry: 24 bytes (8 low + 8 high + 8 nextID). *)

val invalid_low : int
(** The "very high value" written to a freed entry's low bound; it forces
    every subsequent Algorithm-1 check against that entry to fail. *)

type chain_entry = { c_lo : int; c_hi : int }
(** One overflow-chained object (the section V.1 extension). *)

type t = {
  st : Vm.State.t;
  mutable gmi : int;  (** the Global Metadata Index of the paper *)
  mutable live : int;
  mutable peak_live : int;
  mutable total_allocated : int;
  mutable recycled : int;
      (** entries re-served off the in-table free list *)
  mutable exhausted_fallbacks : int;
      (** allocations served untagged because the table was full
          (paper section V.1) *)
  mutable chain_mode : bool;
  chains : (int, chain_entry list ref) Hashtbl.t;
  mutable chained : int;      (** live chained objects *)
  mutable chain_total : int;  (** objects ever chained *)
  mutable chain_cursor : int;
  mutable chain_lookups : int;
      (** slow-path chain searches (lookup + release) *)
  mutable chain_links_walked : int;
      (** total links traversed across all chain searches *)
}

val create : ?chain_mode:bool -> Vm.State.t -> t
(** The runtime constructor: initializes entry 0 to [(0, VA_MAX)] and
    GMI to 1.  Corresponds to the load-time constructor of section III.
    With [chain_mode], table exhaustion chains metadata off shared
    indices instead of degrading to unprotected pointers. *)

val low : t -> int -> int
(** [low t i] reads entry [i]'s low bound. *)

val high : t -> int -> int
(** [high t i] reads entry [i]'s high bound. *)

val next_id : t -> int -> int
(** [next_id t i] reads entry [i]'s free-list offset field. *)

val set_low : t -> int -> int -> unit
val set_high : t -> int -> int -> unit
val set_next_id : t -> int -> int -> unit

val alloc : t -> base:int -> size:int -> int
(** [alloc t ~base ~size] creates an entry for the object
    [base, base+size) and returns the TAGGED pointer (index embedded in
    bits 46..62).  On table exhaustion the raw pointer is returned
    untagged (entry 0 semantics) and [exhausted_fallbacks] is bumped. *)

val chain_covers : t -> int -> raw:int -> size:int -> int option
(** Does some overflow-chain element of index [i] cover the access?
    Returns the number of links walked (the extension's cost). *)

val chain_find : t -> int -> raw:int -> (chain_entry * int) option
(** The chain element containing [raw] plus the links walked to reach
    it; callers that need the element's bounds (strlen, realloc) use
    this instead of {!chain_covers}. *)

val chain_release : t -> int -> raw:int -> bool
(** Removes the chain element whose base is [raw]; true on success. *)

val release : t -> int -> unit
(** [release t i] invalidates entry [i] (low := INVALID, high := 0) and
    pushes it on the free list.  Releasing entry 0 is a no-op. *)

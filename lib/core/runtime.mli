(** The CECSan runtime library: metadata management, the fused
    spatial+temporal checks of Algorithms 1 and 2, the libc interceptors
    (including the wide-character family), and the external-call
    boundary handling of section II.E.

    There is deliberately NO custom allocator here: allocation goes
    through the default [Vm.Heap], with CECSan only adding metadata --
    the compatibility property the paper claims over ASan. *)

val name : string

type t = {
  mutable table : Meta_table.t option;
      (** created lazily on first use: the load-time constructor *)
  gpt : (int, int) Hashtbl.t;
      (** the Global Pointer Table: slot index -> tagged pointer *)
  mutable reports_sub_object : int;
  chain_overflow : bool;
      (** the section V.1 overflow-chain extension *)
  mutable entry0_hits : int;
      (** Algorithm-1 checks that resolved to the reserved entry 0
          (untagged/foreign pointers); published as a gauge at exit *)
  mutable sub_temporaries : int;
      (** narrowed sub-object entries materialized (section II.D) *)
}

val get_table : t -> Vm.State.t -> Meta_table.t

val check_deref :
  t -> Vm.State.t -> write:bool -> size:int -> ?site:int -> ?cost:int ->
  int -> int
(** Algorithm 1: the optimized dereference check.  Returns the STRIPPED
    address for the access.  A spatial or temporal violation (a freed
    entry's INVALID low bound makes the same fused compare fail) goes to
    the run's sink: it raises [Vm.Report.Bug] under [Halt] and records
    then proceeds with the stripped access under [Recover].  [cost]
    (default [Costs.check]) is the cycle charge; the spatial-only
    downgraded intrinsics pass [Costs.check_spatial] -- detection is
    identical, only the charge differs. *)

val check_range : t -> Vm.State.t -> write:bool -> int -> int -> int
(** [check_range t st ~write ptr len] validates [ptr, ptr+len) against
    the pointer's entry; used by the libc interceptors. *)

val cecsan_malloc : t -> Vm.State.t -> int -> int
(** Default-allocator malloc plus metadata creation; returns the tagged
    pointer. *)

val cecsan_free : t -> Vm.State.t -> int -> unit
(** Algorithm 2: validates that the pointer is the live base of a heap
    object (catching double/invalid frees), invalidates the entry, then
    frees through the default allocator. *)

val cecsan_realloc : t -> Vm.State.t -> int -> int -> int

val stack_make : t -> Vm.State.t -> int -> int -> int
(** Prologue half of stack protection: registers an unsafe stack object
    and returns its tagged address. *)

val stack_release : t -> Vm.State.t -> int -> unit
(** Epilogue half: releases the entry if it still describes the object. *)

val global_make : t -> Vm.State.t -> slot:int -> int -> int -> int
(** Registers an unsafe global and stores its tagged pointer in the GPT. *)

val gpt_load : t -> Vm.State.t -> int -> int
(** Loads a tagged global pointer from the GPT (not itself checked, per
    the paper: all GPT accesses are compiler-generated). *)

val sub_make : t -> Vm.State.t -> int -> int -> int
(** Section II.D: validates a field address against its parent entry and
    mints a temporary narrowed entry for the field. *)

val sub_release : t -> Vm.State.t -> int -> unit

val extcall_strip : t -> Vm.State.t -> int -> int
(** Section II.E: checks (temporal) and strips a pointer crossing into
    external, uninstrumented code. *)

val retag : Vm.State.t -> original:int -> int -> int
(** Re-applies [original]'s tag to a pointer returned by a libc function
    that returns one of its pointer arguments. *)

val interceptors : t -> string -> Vm.Runtime.interceptor option
(** The checking wrappers around libc builtins; coverage includes
    wcscpy/wcsncpy/wcscat/wcslen/wcscmp, which most sanitizers omit. *)

val stats : t -> int * int
(** [(peak live entries, total entries ever allocated)]. *)

val create : ?chain_overflow:bool -> unit -> t * Vm.Runtime.t
(** Fresh per-run runtime state plus its VM-facing interface. *)

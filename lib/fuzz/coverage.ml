(* Fuzz.Coverage: per-program site bitmaps, the greybox feedback signal.

   The telemetry layer already counts, per stable Tir check-site id, how
   many times the site's check EXECUTED, was ELIDED, or was COVERED by a
   hoisted/endpoint check (DESIGN.md section 12).  A program's coverage
   is the SET of (leg, site, kind) triples whose counter is nonzero —
   plus an INSTRUMENTED bit per site that exists at all, derived from
   the full site-row view ([Telemetry.Snapshot.sites_full]) so a program
   that merely instruments a previously-unseen site shape still reads as
   novel.

   Site ids are per-program (every module mints ids from 0), so the
   bitmap is an AFL-style abstraction: bit (leg, 12, Elided) means "some
   program shape got site index 12 elided under that pipeline leg", not
   one fixed source location.  That coarseness is exactly what makes the
   bitmap a stable, bounded feedback signal across a campaign of
   distinct programs.

   Determinism: a bitmap is a [Set.Make(Int)] over packed keys, so union
   is commutative and serialization (sorted csv of keys) is
   byte-identical for equal bitmaps regardless of merge order or job
   count. *)

type kind = Instrumented | Executed | Elided | Covered

let kind_name = function
  | Instrumented -> "instrumented"
  | Executed -> "executed"
  | Elided -> "elided"
  | Covered -> "covered"

let all_kinds = [ Instrumented; Executed; Elided; Covered ]

let kind_index = function
  | Instrumented -> 0
  | Executed -> 1
  | Elided -> 2
  | Covered -> 3

(* keys pack (site, leg, kind) into one int: site * 64 + leg * 4 + kind.
   Legs are pipeline legs of the oracle (CECSan-O2 / -O0 / -noabsint,
   then extra baselines), capped at 16. *)
let max_legs = 16

let key ~leg ~site kind =
  if leg < 0 || leg >= max_legs then invalid_arg "Coverage.key: leg";
  if site < 0 then invalid_arg "Coverage.key: site";
  (site * (max_legs * 4)) + (leg * 4) + kind_index kind

let key_site k = k / (max_legs * 4)
let key_leg k = k mod (max_legs * 4) / 4

let key_kind k =
  match k mod 4 with
  | 0 -> Instrumented
  | 1 -> Executed
  | 2 -> Elided
  | _ -> Covered

module S = Set.Make (Int)

type t = S.t

let empty = S.empty
let cardinal = S.cardinal
let union = S.union
let is_subset a b = S.subset a b
let equal = S.equal

let of_keys ks = List.fold_left (fun acc k -> S.add k acc) S.empty ks

(* bits in [t] the accumulator lacks: the admission test *)
let novel t ~acc = not (S.subset t acc)
let novel_count t ~acc = S.cardinal (S.diff t acc)

(* distinct site ids carrying any bit: the "sites reached" statistic *)
let sites t =
  S.fold (fun k acc -> S.add (key_site k) acc) t S.empty |> S.cardinal

(* One pipeline leg's contribution, from the FULL site-row view (all-zero
   rows included): every listed site gets its Instrumented bit, nonzero
   counters get their kind bits. *)
let of_rows ~leg rows =
  List.fold_left
    (fun acc (r : Telemetry.Snapshot.site_row) ->
       let site = r.Telemetry.Snapshot.s_site in
       let acc = S.add (key ~leg ~site Instrumented) acc in
       let acc =
         if r.s_executed > 0 then S.add (key ~leg ~site Executed) acc
         else acc
       in
       let acc =
         if r.s_elided > 0 then S.add (key ~leg ~site Elided) acc else acc
       in
       if r.s_covered > 0 then S.add (key ~leg ~site Covered) acc else acc)
    S.empty rows

(* --- serialization --------------------------------------------------------- *)

(* Sorted csv of packed keys; "-" for the empty bitmap.  Byte-exact
   round trip: [of_string (to_string t) = Some t] and equal bitmaps
   print identically (set order is canonical). *)
let to_string t =
  match S.elements t with
  | [] -> "-"
  | ks -> String.concat "," (List.map string_of_int ks)

let of_string s =
  if String.equal s "-" then Some S.empty
  else
    try
      Some
        (List.fold_left
           (fun acc f ->
              match int_of_string_opt f with
              | Some k when k >= 0 -> S.add k acc
              | _ -> raise Exit)
           S.empty
           (String.split_on_char ',' s))
    with Exit -> None

(* Human summary for reports: totals per kind. *)
let render fmt t =
  let count kind =
    S.fold (fun k n -> if key_kind k = kind then n + 1 else n) t 0
  in
  Format.fprintf fmt "bits=%d sites=%d (%s)" (S.cardinal t) (sites t)
    (String.concat ", "
       (List.map
          (fun k -> Printf.sprintf "%s %d" (kind_name k) (count k))
          all_kinds))

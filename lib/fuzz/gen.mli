(** Seeded generator of well-defined MiniC programs (loops, structs,
    heap/stack/global objects, pointer arithmetic, realloc/free chains,
    extern calls), with a bug-injection mode that plants exactly one
    labeled memory-safety defect and returns its machine-readable
    ground truth. *)

type bug_class =
  | Spatial_heap
  | Spatial_stack
  | Spatial_global
  | Subobject        (** overflow inside one allocation (field -> field) *)
  | Uaf
  | Double_free
  | Invalid_free     (** interior or stack pointer through free() *)

val all_classes : bug_class list
val class_name : bug_class -> string
val class_of_name : string -> bug_class option

type plan = {
  cls : bug_class;
  far : bool;        (** OOB stride jumps well past any redzone *)
  write : bool;      (** flawed access is a write *)
  granule16 : bool;  (** victim byte size is a multiple of 16 *)
}

type program = {
  src : string;            (** MiniC source *)
  plan : plan option;      (** [None] for a clean program *)
  tape : int array;        (** full decision tape; replaying regenerates *)
}

val generate : ?inject:bool -> ?fuel:Tir.Fuel.t -> Tape.t -> program
(** Clean programs are deterministic, fully initialized and
    allocator-layout independent: every sanitizer must reproduce the
    uninstrumented stdout and exit code.  With [inject:true], exactly
    one defect from [plan] is planted as the program's last action.
    [fuel] burns one step per emitted statement (may raise
    [Tir.Fuel.Exhausted]). *)

val line_count : string -> int

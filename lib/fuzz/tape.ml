(* The generator's decision tape.

   Every random choice the program generator makes goes through [draw],
   which records the chosen value.  A fresh tape draws from a private
   splitmix PRNG (the same constants as [Vm.State.next_rand], so the
   whole repository shares one PRNG family); a replayed tape serves the
   prerecorded values instead and falls back to 0 once they run out.

   That replay totality is the contract the shrinker relies on: ANY int
   array is a valid tape.  Deleting a chunk or zeroing an entry yields a
   different but well-formed program, so delta debugging over the tape
   is delta debugging over generator decisions -- structure-aware
   shrinking without a grammar-specific shrinker (the Hypothesis /
   choice-sequence approach). *)

type t = {
  pre : int array;          (* replay prefix; [||] for a fresh tape *)
  mutable pos : int;        (* draws made so far *)
  mutable rng : int;        (* splitmix state, used past the prefix *)
  from_rng : bool;          (* fresh tape: exhausted prefix -> PRNG *)
  mutable recorded_rev : int list;
}

(* splitmix constants truncated to OCaml's 63-bit int, as in Vm.State *)
let splitmix z0 =
  let z = (z0 + 0x1E3779B97F4A7C15) land max_int in
  let r = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let r = (r lxor (r lsr 27)) * 0x14D049BB133111EB land max_int in
  (z, (r lxor (r lsr 31)) land max_int)

(* Splits a seed stream: [mix seed i] is the i-th child seed.  The
   campaign derives one independent seed per program index, so a run is
   reproducible per-seed at any job count. *)
let mix seed i =
  let z, a = splitmix (seed lxor (i * 0x1E3779B97F4A7C15 land max_int)) in
  let _, b = splitmix z in
  (a lxor (b lsr 17)) land max_int

let fresh ~seed =
  { pre = [||]; pos = 0; rng = seed; from_rng = true; recorded_rev = [] }

let replay choices =
  { pre = Array.copy choices; pos = 0; rng = 0; from_rng = false;
    recorded_rev = [] }

(* [draw t bound]: a value in [0, bound).  Records the reduced value, so
   recorded tapes replay exactly and shrunk values stay small. *)
let draw t bound =
  if bound <= 0 then invalid_arg "Tape.draw: bound must be positive";
  let raw =
    if t.pos < Array.length t.pre then t.pre.(t.pos)
    else if t.from_rng then begin
      let z, v = splitmix t.rng in
      t.rng <- z;
      v
    end
    else 0
  in
  let v = raw mod bound in
  t.pos <- t.pos + 1;
  t.recorded_rev <- v :: t.recorded_rev;
  v

let bool t = draw t 2 = 1

(* Full-range non-negative draw: the mutation engine uses the tape
   machinery as its deterministic PRNG and wants raw splitmix output
   for havoc values, not a bounded choice.  Recorded like any draw. *)
let rand t = draw t max_int

(* inclusive range *)
let range t lo hi =
  if hi < lo then invalid_arg "Tape.range";
  lo + draw t (hi - lo + 1)

let pick t = function
  | [] -> invalid_arg "Tape.pick: empty list"
  | xs -> List.nth xs (draw t (List.length xs))

let recorded t = Array.of_list (List.rev t.recorded_rev)

let to_string tape =
  String.concat "," (List.map string_of_int (Array.to_list tape))

let of_string s =
  try
    if String.trim s = "" then Some [||]
    else
      Some
        (Array.of_list
           (List.map
              (fun x -> int_of_string (String.trim x))
              (String.split_on_char ',' s)))
  with Failure _ -> None

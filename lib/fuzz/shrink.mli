(** Deterministic delta debugging over a generator decision tape. *)

val minimize :
  ?budget:int -> ?fuel:Tir.Fuel.t -> still_fails:(int array -> bool) ->
  int array -> int array
(** [minimize ~still_fails tape] returns a tape no longer than [tape]
    on which [still_fails] still holds (or [tape] itself if the
    predicate does not hold on it).  Deterministic: fixed pass order
    (chunk deletion by halving sizes, then zero/halve/decrement each
    value), bounded by [budget] predicate evaluations (default 2000).
    [fuel] burns one step per evaluation and raises
    [Tir.Fuel.Exhausted] when a campaign-level watchdog trips. *)

(** Per-program site bitmaps: the coverage-feedback signal of the guided
    fuzzer.  A bitmap is the set of (pipeline leg, stable Tir site id,
    kind) triples a program lit up, where kind is instrumented /
    executed / elided / covered, derived from the full site-row view
    ([Telemetry.Snapshot.sites_full]).  Bitmaps are canonical sets:
    union is order-independent and serialization is byte-identical for
    equal bitmaps, which is what keeps guided-campaign coverage state
    byte-for-byte reproducible at any job count. *)

type kind = Instrumented | Executed | Elided | Covered

val kind_name : kind -> string
val all_kinds : kind list

val max_legs : int
(** Packing bound on the pipeline-leg index (16). *)

val key : leg:int -> site:int -> kind -> int
(** Packs one coverage bit.  Raises [Invalid_argument] on a negative
    site or a leg outside [0, max_legs). *)

val key_site : int -> int
val key_leg : int -> int
val key_kind : int -> kind

type t

val empty : t
val cardinal : t -> int
val union : t -> t -> t
val is_subset : t -> t -> bool
val equal : t -> t -> bool

val novel : t -> acc:t -> bool
(** [novel t ~acc]: [t] carries at least one bit [acc] lacks — the
    corpus-admission test. *)

val novel_count : t -> acc:t -> int

val sites : t -> int
(** Distinct site ids carrying any bit ("sites reached"). *)

val of_keys : int list -> t
(** A bitmap from raw packed keys; used for synthetic marker bits
    (e.g. the .mc corpus' planted-plan markers) in reserved site
    space. *)

val of_rows : leg:int -> Telemetry.Snapshot.site_row list -> t
(** One pipeline leg's bitmap from its FULL site-row view: every listed
    site contributes its [Instrumented] bit, nonzero counters their
    kind bits. *)

val to_string : t -> string
(** Sorted csv of packed keys ("-" when empty); canonical, so equal
    bitmaps serialize byte-identically. *)

val of_string : string -> t option
(** Inverse of {!to_string}. *)

val render : Format.formatter -> t -> unit

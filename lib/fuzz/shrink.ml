(* Fuzz.Shrink: deterministic delta debugging over a decision tape.

   Because any int array is a valid tape (Tape.replay is total), a
   failing case can be minimized purely structurally: delete chunks of
   decisions, zero entries, and halve values, keeping each mutation only
   if the caller's predicate says the SAME failure still occurs.  The
   pass order is fixed and there is no randomness, so a given
   (tape, predicate) pair always shrinks to the same minimum. *)

let minimize ?(budget = 2000) ?fuel ~(still_fails : int array -> bool)
    (tape : int array) : int array =
  let evals = ref 0 in
  let try_ best cand =
    if !evals >= budget || Array.length cand >= Array.length best then None
    else begin
      incr evals;
      Tir.Fuel.burn fuel 1;
      if still_fails cand then Some cand else None
    end
  in
  (* value-level passes don't change the length *)
  let try_value cand =
    if !evals >= budget then None
    else begin
      incr evals;
      Tir.Fuel.burn fuel 1;
      if still_fails cand then Some cand else None
    end
  in
  let delete_chunks best =
    let best = ref best in
    let size = ref (max 1 (Array.length !best / 2)) in
    while !size >= 1 do
      let start = ref 0 in
      while !start < Array.length !best do
        let n = Array.length !best in
        let len = min !size (n - !start) in
        let cand =
          Array.append (Array.sub !best 0 !start)
            (Array.sub !best (!start + len) (n - !start - len))
        in
        (match try_ !best cand with
         | Some c -> best := c (* same start now covers the next chunk *)
         | None -> start := !start + !size)
      done;
      size := !size / 2
    done;
    !best
  in
  let lower_values best =
    let best = ref best in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      Array.iteri
        (fun i v ->
           if v > 0 then begin
             let attempt nv =
               let cand = Array.copy !best in
               cand.(i) <- nv;
               match try_value cand with
               | Some c ->
                 best := c;
                 continue_ := true;
                 true
               | None -> false
             in
             (* biggest first: 0, then halving, then decrement *)
             if not (attempt 0) then
               if v > 1 then (if not (attempt (v / 2)) then ignore (attempt (v - 1)))
               else ()
           end)
        !best
    done;
    !best
  in
  let rec fixpoint best =
    let next = lower_values (delete_chunks best) in
    if Array.length next < Array.length best || next <> best then
      if !evals >= budget then next else fixpoint next
    else best
  in
  if still_fails tape then fixpoint tape else tape

(* Fuzz.Campaign: seeded differential campaigns over Harness.Pool,
   supervised and resumable.

   Program i of a campaign gets the independent seed
   [Tape.mix campaign_seed i] (odd indices carry a planted bug), so the
   grid is embarrassingly parallel and the verdict stream is identical
   at any job count: Pool.map_results keeps submission order, and
   shrinking of the (rare) failures happens sequentially afterwards.

   Supervision (this file's robustness layer):

   - every per-program task runs under [Harness.Supervise.run]: a task
     that dies -- injected crash, fuel exhaustion, stack overflow --
     is retried under the deterministic count-based policy and then
     QUARANTINED (one ledger entry) instead of aborting the campaign;
   - the campaign proceeds in shards of [shard_size] programs; after
     each shard the full campaign state (rows, quarantine, counters,
     merged telemetry) is written to an atomic checkpoint
     (temp-file + rename), so a SIGKILL costs at most one shard;
   - [resume:true] restores the checkpoint and continues from the
     first unfinished shard.  Everything the final ledgers derive from
     is persisted in the checkpoint, so a killed-and-resumed campaign
     produces byte-identical mismatch/quarantine ledgers to an
     uninterrupted one, at any -j.

   Checkpoint schema v1 (line-based, documented in DESIGN.md s.13):

     cecsan-campaign-checkpoint v1
     seed <hex>
     n <int>
     shard_size <int>
     tools <csv|->
     faults <csv|->
     shards_done <int>
     resumed_shards <int>
     retries <int>
     row index=<int> seed=<hex> plan=<cls:far:write:g16|-> failures=<csv|->
     ...
     quarantine task=<int> seed=<hex> attempts=<int> class=<s> phase=<s> detail=<%S>
     ...
     snapshot <Telemetry.Snapshot.to_json line>
     end *)

let sp = Printf.sprintf

type row = {
  index : int;
  seed : int;
  plan : Gen.plan option;
  failures : string list;      (* Oracle.failure_name labels *)
}

type shrunk = {
  s_row : row;
  s_failures : Oracle.failure list;
  s_src : string;
  s_tape : int array;
  s_lines : int;
}

(* One coverage-over-time sample, recorded after each guided shard. *)
type cov_row = {
  cr_shard : int;
  cr_phase : string;           (* "gen" or "mutate" *)
  cr_bits : int;               (* accumulated bitmap cardinality *)
  cr_sites : int;              (* distinct site ids in the bitmap *)
  cr_corpus : int;             (* corpus size after the shard *)
}

type summary = {
  campaign_seed : int;
  n : int;
  tool_names : string list;
  fault_specs : Vm.Fault.spec list;
  rows : row list;
  shrunk : shrunk list;
  quarantine : Harness.Supervise.entry list;  (* submission order *)
  retries : int;          (* re-attempts made across all tasks *)
  fuel_exhausted : int;   (* quarantined with class "fuel" *)
  resumed_shards : int;   (* shards restored from a checkpoint *)
  (* CECSan(-O2) telemetry over the whole grid, merged in submission
     order: identical at any job count *)
  snapshot : Telemetry.Snapshot.t;
  (* guided-mode state: empty/zero for a blind campaign *)
  guided : bool;
  mutate_only : bool;
  coverage : Coverage.t;   (* accumulated bitmap, submission order *)
  corpus : Corpus.t;
  cov_rows : cov_row list; (* one per shard, oldest first *)
  gen_programs : int;      (* programs run in generation shards *)
  mut_programs : int;      (* programs run in mutation shards *)
  gen_admitted : int;      (* corpus admissions from generation *)
  mut_admitted : int;      (* corpus admissions from mutation *)
  clean : int;
  buggy : int;
  false_positives : int;
  false_negatives : int;
  divergences : int;
  opt_unsound : int;
  misclassified : int;
  gen_invalid : int;
}

let inject_of_index i = i land 1 = 1

let tools_of_names names = List.filter_map Oracle.baseline_of_name names

(* The pipeline-fuel budget carried by a [Fuel n] fault spec, if any. *)
let fuel_budget_of_specs specs =
  List.fold_left
    (fun acc s -> match s with Vm.Fault.Fuel b -> Some b | _ -> acc)
    None specs

(* One self-contained job: everything derived from (campaign_seed, i).
   With fault specs given, program i gets its own injector seeded from
   its derived seed, threaded into every oracle run; a [Fuel b] spec
   additionally puts the generator under a fresh [b]-step budget (the
   compile/verify phases get theirs inside Driver.run, bridged from the
   injector). *)
let run_one ~tool_names ~fault_specs ~campaign_seed ?backend i
  : row * Telemetry.Snapshot.t =
  let tools = tools_of_names tool_names in
  let seed = Tape.mix campaign_seed i in
  let fault =
    match fault_specs with
    | [] -> None
    | specs -> Some (Vm.Fault.of_specs ~seed specs)
  in
  let gen_fuel =
    Option.map
      (fun b -> Tir.Fuel.make ~phase:"gen" ~budget:b)
      (fuel_budget_of_specs fault_specs)
  in
  let p =
    Gen.generate ~inject:(inject_of_index i) ?fuel:gen_fuel
      (Tape.fresh ~seed)
  in
  let fs, snap = Oracle.evaluate_full ~tools ?fault ?backend p in
  ( { index = i; seed; plan = p.Gen.plan;
      failures = List.map Oracle.failure_name fs },
    snap )

(* --- guided jobs ----------------------------------------------------------- *)

type phase = Gen_phase | Mut_phase

let phase_name = function Gen_phase -> "gen" | Mut_phase -> "mutate"

(* One guided job's result: the blind row plus everything the
   sequential admission loop needs. *)
type gres = {
  g_row : row;
  g_snap : Telemetry.Snapshot.t;
  g_cov : Coverage.t;
  g_phase : string;            (* "gen" or "mutate:<op>" *)
  g_tape : int array;          (* normalized (recorded) decision tape *)
}

(* The guided counterpart of [run_one].  A generation-phase job is
   byte-identical to the blind job at the same index (same derived
   seed, same parity-planted bug); a mutation-phase job derives its
   whole schedule -- base pick, partner pick, operator, operator
   randomness -- from the same per-program seed over the corpus
   snapshot taken at shard start, so it is a pure function of
   (campaign_seed, i, corpus-at-shard-start) and independent of pool
   interleaving.  [Mut_phase] requires a nonempty corpus. *)
let run_one_guided ~tool_names ~fault_specs ~campaign_seed ?backend
    ~phase ~corpus i : gres =
  let tools = tools_of_names tool_names in
  let seed = Tape.mix campaign_seed i in
  let fault =
    match fault_specs with
    | [] -> None
    | specs -> Some (Vm.Fault.of_specs ~seed specs)
  in
  let gen_fuel =
    Option.map
      (fun b -> Tir.Fuel.make ~phase:"gen" ~budget:b)
      (fuel_budget_of_specs fault_specs)
  in
  let inject = inject_of_index i in
  let g_phase, p =
    match phase with
    | Gen_phase ->
      "gen", Gen.generate ~inject ?fuel:gen_fuel (Tape.fresh ~seed)
    | Mut_phase ->
      let size = Corpus.size corpus in
      if size = 0 then invalid_arg "Campaign: mutation over empty corpus";
      let rng = Tape.fresh ~seed in
      let favored = Corpus.favored corpus in
      let base =
        (List.nth favored (Tape.draw rng (List.length favored))).Corpus.e_tape
      in
      let partner = Corpus.nth_tape corpus (Tape.draw rng size) in
      let op, tape = Mutate.mutate ~rng ~partner base in
      ( sp "mutate:%s" (Mutate.op_name op),
        Gen.generate ~inject ?fuel:gen_fuel (Tape.replay tape) )
  in
  (* the snapshot merged into the campaign stays the CECSan(-O2) one,
     exactly as in blind mode *)
  let fs, snap, cov = Oracle.evaluate_cov ~tools ?fault ?backend p in
  { g_row = { index = i; seed; plan = p.Gen.plan;
              failures = List.map Oracle.failure_name fs };
    g_snap = snap; g_cov = cov; g_phase; g_tape = p.Gen.tape }

(* Shrinks a failing case: the minimized tape must regenerate a program
   that still exhibits every one of the original failure labels.  The
   row's fault injector (if any) threads into every candidate
   evaluation, and [fuel] bounds the whole minimization. *)
let shrink_failure ~tool_names ?fault ?fuel ?backend ~inject
    (p : Gen.program) (failures : Oracle.failure list) : shrunk option =
  let tools = tools_of_names tool_names in
  let wanted = List.map Oracle.failure_name failures in
  let evaluate_tape tape =
    let p' = Gen.generate ~inject (Tape.replay tape) in
    (p', Oracle.evaluate ~tools ?fault ?backend p')
  in
  let still_fails tape =
    let _, fs = evaluate_tape tape in
    let names = List.map Oracle.failure_name fs in
    List.for_all (fun w -> List.mem w names) wanted
  in
  if not (still_fails p.Gen.tape) then None
  else
    let best = Shrink.minimize ?fuel ~still_fails p.Gen.tape in
    let p_min, fs_min = evaluate_tape best in
    Some
      { s_row = { index = -1; seed = 0; plan = p_min.Gen.plan;
                  failures = List.map Oracle.failure_name fs_min };
        s_failures = fs_min;
        s_src = p_min.Gen.src;
        s_tape = best;
        s_lines = Gen.line_count p_min.Gen.src }

let count_kind rows pred =
  List.fold_left
    (fun acc r -> acc + List.length (List.filter pred r)) 0
    (List.map (fun r -> r.failures) rows)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* --- checkpoint serialization (schema v1) -------------------------------- *)

let checkpoint_file = "campaign.v1.ckpt"
let checkpoint_magic = "cecsan-campaign-checkpoint v1"

(* Mid-campaign state: everything the final summary and ledgers derive
   from.  Rows and quarantine entries are kept in submission order. *)
type ckpt = {
  ck_seed : int;
  ck_n : int;
  ck_shard_size : int;
  ck_tools : string list;
  ck_faults : string list;           (* Fault.spec_to_string forms *)
  ck_shards_done : int;
  ck_resumed_shards : int;
  ck_retries : int;
  ck_rows : row list;
  ck_quarantine : Harness.Supervise.entry list;
  ck_snapshot : Telemetry.Snapshot.t;
  (* guided extension (schema-v1-compatible: the extra lines appear
     only in guided checkpoints, and a blind checkpoint's bytes are
     unchanged) *)
  ck_guided : bool;
  ck_mutate_only : bool;
  ck_coverage : Coverage.t;
  ck_corpus : Corpus.t;  (* embedded: checkpoint + corpus commit atomically *)
  ck_cov_rows : cov_row list;
  ck_gen_programs : int;
  ck_mut_programs : int;
  ck_gen_admitted : int;
  ck_mut_admitted : int;
}

let csv_or_dash = function [] -> "-" | xs -> String.concat "," xs
let csv_of_dash = function "-" -> [] | s -> String.split_on_char ',' s

let plan_to_field = function
  | None -> "-"
  | Some (p : Gen.plan) ->
    sp "%s:%d:%d:%d" (Gen.class_name p.Gen.cls)
      (Bool.to_int p.Gen.far) (Bool.to_int p.Gen.write)
      (Bool.to_int p.Gen.granule16)

let plan_of_field = function
  | "-" -> Ok None
  | s ->
    (match String.split_on_char ':' s with
     | [ cls; far; write; g16 ] ->
       (match Gen.class_of_name cls, far, write, g16 with
        | Some cls, ("0" | "1"), ("0" | "1"), ("0" | "1") ->
          Ok (Some { Gen.cls; far = String.equal far "1";
                     write = String.equal write "1";
                     granule16 = String.equal g16 "1" })
        | _ -> Error (sp "bad plan field %S" s))
     | _ -> Error (sp "bad plan field %S" s))

let row_to_line r =
  sp "row index=%d seed=%x plan=%s failures=%s" r.index r.seed
    (plan_to_field r.plan) (csv_or_dash r.failures)

let cov_row_to_line c =
  sp "covrow shard=%d phase=%s bits=%d sites=%d corpus=%d" c.cr_shard
    c.cr_phase c.cr_bits c.cr_sites c.cr_corpus

let cov_row_of_line line : cov_row option =
  match
    Scanf.sscanf line "covrow shard=%d phase=%s bits=%d sites=%d corpus=%d"
      (fun s p b st c -> (s, p, b, st, c))
  with
  | cr_shard, cr_phase, cr_bits, cr_sites, cr_corpus ->
    Some { cr_shard; cr_phase; cr_bits; cr_sites; cr_corpus }
  | exception _ -> None

let row_of_line line : row option =
  match
    Scanf.sscanf line "row index=%d seed=%x plan=%s failures=%s"
      (fun index seed plan failures -> (index, seed, plan, failures))
  with
  | index, seed, plan, failures ->
    (match plan_of_field plan with
     | Ok plan -> Some { index; seed; plan; failures = csv_of_dash failures }
     | Error _ -> None)
  | exception _ -> None

let write_checkpoint ~dir (ck : ckpt) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir checkpoint_file in
  (* Jsonio's tmp+rename guarantees a reader never observes a torn
     checkpoint *)
  Harness.Jsonio.with_file ~path (fun oc ->
      let line fmt =
        Printf.ksprintf (fun s -> output_string oc (s ^ "\n")) fmt
      in
      line "%s" checkpoint_magic;
      line "seed %x" ck.ck_seed;
      line "n %d" ck.ck_n;
      line "shard_size %d" ck.ck_shard_size;
      line "tools %s" (csv_or_dash ck.ck_tools);
      line "faults %s" (csv_or_dash ck.ck_faults);
      line "shards_done %d" ck.ck_shards_done;
      line "resumed_shards %d" ck.ck_resumed_shards;
      line "retries %d" ck.ck_retries;
      if ck.ck_guided then begin
        line "guided mutate_only=%d gen=%d mut=%d gen_adm=%d mut_adm=%d"
          (Bool.to_int ck.ck_mutate_only) ck.ck_gen_programs
          ck.ck_mut_programs ck.ck_gen_admitted ck.ck_mut_admitted;
        line "bitmap %s" (Coverage.to_string ck.ck_coverage);
        List.iter (fun c -> line "%s" (cov_row_to_line c)) ck.ck_cov_rows;
        List.iter
          (fun e -> line "corpus %s" (Corpus.entry_to_line e))
          (Corpus.entries ck.ck_corpus)
      end;
      List.iter (fun r -> line "%s" (row_to_line r)) ck.ck_rows;
      List.iter
        (fun e -> line "quarantine %s" (Harness.Supervise.entry_to_line e))
        ck.ck_quarantine;
      line "snapshot %s" (Telemetry.Snapshot.to_json ck.ck_snapshot);
      line "end")

(* [None] on a missing or unparseable file (a fresh start is always a
   correct recovery); the caller validates configuration agreement. *)
let read_checkpoint ~dir : ckpt option =
  let path = Filename.concat dir checkpoint_file in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do lines := input_line ic :: !lines done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let exception Bad in
    let scan1 line fmt =
      match Scanf.sscanf line fmt (fun v -> v) with
      | v -> v
      | exception _ -> raise Bad
    in
    match lines with
    | magic :: seed_l :: n_l :: ss_l :: tools_l :: faults_l :: sd_l
      :: rs_l :: rt_l :: rest ->
      (try
         if not (String.equal magic checkpoint_magic) then raise Bad;
         let ck_seed = scan1 seed_l "seed %x" in
         let ck_n = scan1 n_l "n %d" in
         let ck_shard_size = scan1 ss_l "shard_size %d" in
         let ck_tools = csv_of_dash (scan1 tools_l "tools %s") in
         let ck_faults = csv_of_dash (scan1 faults_l "faults %s") in
         let ck_shards_done = scan1 sd_l "shards_done %d" in
         let ck_resumed_shards = scan1 rs_l "resumed_shards %d" in
         let ck_retries = scan1 rt_l "retries %d" in
         let rows = ref [] and quarantine = ref [] in
         let snapshot = ref None in
         let guided = ref None in
         let bitmap = ref Coverage.empty in
         let cov_rows = ref [] in
         let corpus_entries = ref [] in
         let finished = ref false in
         List.iter
           (fun line ->
              if !finished then ()
              else if String.equal line "end" then finished := true
              else if has_prefix ~prefix:"row " line then
                match row_of_line line with
                | Some r -> rows := r :: !rows
                | None -> raise Bad
              else if has_prefix ~prefix:"guided " line then
                (match
                   Scanf.sscanf line
                     "guided mutate_only=%d gen=%d mut=%d gen_adm=%d \
                      mut_adm=%d"
                     (fun m g mu ga ma -> (m, g, mu, ga, ma))
                 with
                 | m, g, mu, ga, ma -> guided := Some (m = 1, g, mu, ga, ma)
                 | exception _ -> raise Bad)
              else if has_prefix ~prefix:"bitmap " line then
                (match
                   Coverage.of_string
                     (String.sub line 7 (String.length line - 7))
                 with
                 | Some c -> bitmap := c
                 | None -> raise Bad)
              else if has_prefix ~prefix:"covrow " line then
                (match cov_row_of_line line with
                 | Some c -> cov_rows := c :: !cov_rows
                 | None -> raise Bad)
              else if has_prefix ~prefix:"corpus " line then
                (match
                   Corpus.entry_of_line
                     (String.sub line 7 (String.length line - 7))
                 with
                 | Some e -> corpus_entries := e :: !corpus_entries
                 | None -> raise Bad)
              else if has_prefix ~prefix:"quarantine " line then
                match
                  Harness.Supervise.entry_of_line
                    (String.sub line 11 (String.length line - 11))
                with
                | Some e -> quarantine := e :: !quarantine
                | None -> raise Bad
              else if has_prefix ~prefix:"snapshot " line then
                match
                  Telemetry.Snapshot.of_json
                    (String.sub line 9 (String.length line - 9))
                with
                | Some s -> snapshot := Some s
                | None -> raise Bad
              else raise Bad)
           rest;
         if not !finished then raise Bad;
         match !snapshot with
         | None -> None
         | Some ck_snapshot ->
           let ck_guided, ck_mutate_only, ck_gen_programs,
               ck_mut_programs, ck_gen_admitted, ck_mut_admitted =
             match !guided with
             | None -> (false, false, 0, 0, 0, 0)
             | Some (m, g, mu, ga, ma) -> (true, m, g, mu, ga, ma)
           in
           Some
             { ck_seed; ck_n; ck_shard_size; ck_tools; ck_faults;
               ck_shards_done; ck_resumed_shards; ck_retries;
               ck_rows = List.rev !rows;
               ck_quarantine = List.rev !quarantine; ck_snapshot;
               ck_guided; ck_mutate_only; ck_coverage = !bitmap;
               ck_corpus = Corpus.of_entries (List.rev !corpus_entries);
               ck_cov_rows = List.rev !cov_rows;
               ck_gen_programs; ck_mut_programs; ck_gen_admitted;
               ck_mut_admitted }
       with Bad -> None)
    | _ -> None
  end

(* --- the campaign driver -------------------------------------------------- *)

let fuel_exhausted_count quarantine =
  List.length
    (List.filter
       (fun e -> String.equal e.Harness.Supervise.q_class "fuel")
       quarantine)

let run ?pool ?(tool_names = []) ?(max_shrink = 5) ?(faults = [])
    ?(policy = Harness.Supervise.default_policy) ?checkpoint
    ?(resume = false) ?(shard_size = 256) ?stop_after_shards ?backend
    ?(guided = false) ?(mutate_only = false) ~seed ~n () : summary =
  let shard_size = max 1 shard_size in
  let mutate_only = guided && mutate_only in
  let fault_strings = List.map Vm.Fault.spec_to_string faults in
  (* restore: a missing/corrupt checkpoint is a fresh start; a
     checkpoint for a DIFFERENT campaign is a caller error.  The guided
     corpus is embedded in the checkpoint, so corpus and campaign state
     restore from one atomic file. *)
  let restored =
    if not resume then None
    else
      match checkpoint with
      | None -> invalid_arg "Campaign.run: resume requires a checkpoint dir"
      | Some dir ->
        (match read_checkpoint ~dir with
         | None -> None
         | Some ck ->
           if
             ck.ck_seed <> seed || ck.ck_n <> n
             || ck.ck_shard_size <> shard_size
             || ck.ck_tools <> tool_names
             || ck.ck_faults <> fault_strings
             || ck.ck_guided <> guided
             || ck.ck_mutate_only <> mutate_only
           then
             invalid_arg
               (sp
                  "Campaign.run: checkpoint in %s is for a different \
                   campaign (seed/n/shard_size/tools/faults/guided \
                   mismatch)"
                  dir)
           else Some ck)
  in
  let rows_rev = ref [] in
  let quarantine_rev = ref [] in
  let snapshot = ref Telemetry.Snapshot.empty in
  let retries = ref 0 in
  let shards_done = ref 0 in
  let resumed_shards = ref 0 in
  let coverage = ref Coverage.empty in
  let corpus = ref Corpus.empty in
  let cov_rows_rev = ref [] in
  let gen_programs = ref 0 and mut_programs = ref 0 in
  let gen_admitted = ref 0 and mut_admitted = ref 0 in
  (match restored with
   | None -> ()
   | Some ck ->
     rows_rev := List.rev ck.ck_rows;
     quarantine_rev := List.rev ck.ck_quarantine;
     snapshot := ck.ck_snapshot;
     retries := ck.ck_retries;
     shards_done := ck.ck_shards_done;
     coverage := ck.ck_coverage;
     corpus := ck.ck_corpus;
     cov_rows_rev := List.rev ck.ck_cov_rows;
     gen_programs := ck.ck_gen_programs;
     mut_programs := ck.ck_mut_programs;
     gen_admitted := ck.ck_gen_admitted;
     mut_admitted := ck.ck_mut_admitted;
     (* every shard we did NOT recompute this process counts as resumed *)
     resumed_shards := ck.ck_resumed_shards + ck.ck_shards_done);
  let total_shards = (n + shard_size - 1) / shard_size in
  let save () =
    match checkpoint with
    | None -> ()
    | Some dir ->
      (* the standalone corpus file is a derived artifact (for CI cmp
         and external consumers); resume reads the embedded copy, so a
         crash between the two atomic writes cannot desynchronize the
         restored state *)
      if guided then ignore (Corpus.save ~dir !corpus);
      write_checkpoint ~dir
        { ck_seed = seed; ck_n = n; ck_shard_size = shard_size;
          ck_tools = tool_names; ck_faults = fault_strings;
          ck_shards_done = !shards_done;
          ck_resumed_shards = !resumed_shards; ck_retries = !retries;
          ck_rows = List.rev !rows_rev;
          ck_quarantine = List.rev !quarantine_rev;
          ck_snapshot = !snapshot;
          ck_guided = guided; ck_mutate_only = mutate_only;
          ck_coverage = !coverage; ck_corpus = !corpus;
          ck_cov_rows = List.rev !cov_rows_rev;
          ck_gen_programs = !gen_programs;
          ck_mut_programs = !mut_programs;
          ck_gen_admitted = !gen_admitted;
          ck_mut_admitted = !mut_admitted }
  in
  let process_shard sidx =
    let lo = sidx * shard_size in
    let hi = min n (lo + shard_size) in
    let indices = List.init (hi - lo) (fun k -> lo + k) in
    let outcomes =
      Harness.Pool.maybe_map_results pool
        (fun i ->
           Harness.Supervise.run ~policy ~task:i ~seed:(Tape.mix seed i)
             (fun ~attempt:_ ->
                run_one ~tool_names ~fault_specs:faults ~campaign_seed:seed
                  ?backend i))
        indices
    in
    List.iter2
      (fun i outcome ->
         match outcome with
         | Ok { Harness.Supervise.result = Ok (row, snap); retries = r } ->
           rows_rev := row :: !rows_rev;
           snapshot := Telemetry.Snapshot.merge !snapshot snap;
           retries := !retries + r
         | Ok { result = Error entry; retries = r } ->
           quarantine_rev := entry :: !quarantine_rev;
           retries := !retries + r
         | Error e ->
           (* escaped the supervisor itself (should not happen); treat
              it as a zero-retry quarantine rather than dying *)
           let cls, phase = Harness.Supervise.classify e in
           quarantine_rev :=
             { Harness.Supervise.q_task = i; q_seed = Tape.mix seed i;
               q_class = cls; q_phase = phase; q_attempts = 1;
               q_detail = Printexc.to_string e }
             :: !quarantine_rev)
      indices outcomes;
    incr shards_done;
    save ()
  in
  (* Guided shards alternate generation (even) and mutation (odd);
     mutation needs a nonempty corpus to draw from, so early shards
     fall back to generation, and [mutate_only] makes every shard after
     the first admission a mutation shard.  The corpus snapshot is
     taken once at shard start, so every job in the shard is a pure
     function of (seed, index, snapshot) regardless of -j; admission
     and accounting happen sequentially in submission order. *)
  let process_shard_guided sidx =
    let lo = sidx * shard_size in
    let hi = min n (lo + shard_size) in
    let indices = List.init (hi - lo) (fun k -> lo + k) in
    let corpus_snapshot = !corpus in
    let phase =
      if Corpus.size corpus_snapshot = 0 then Gen_phase
      else if mutate_only then Mut_phase
      else if sidx land 1 = 0 then Gen_phase
      else Mut_phase
    in
    let outcomes =
      Harness.Pool.maybe_map_results pool
        (fun i ->
           Harness.Supervise.run ~policy ~task:i ~seed:(Tape.mix seed i)
             (fun ~attempt:_ ->
                run_one_guided ~tool_names ~fault_specs:faults
                  ~campaign_seed:seed ?backend ~phase
                  ~corpus:corpus_snapshot i))
        indices
    in
    List.iter2
      (fun i outcome ->
         match outcome with
         | Ok { Harness.Supervise.result = Ok g; retries = r } ->
           rows_rev := g.g_row :: !rows_rev;
           snapshot := Telemetry.Snapshot.merge !snapshot g.g_snap;
           retries := !retries + r;
           coverage := Coverage.union !coverage g.g_cov;
           (match phase with
            | Gen_phase -> incr gen_programs
            | Mut_phase -> incr mut_programs);
           let corpus', admitted =
             Corpus.admit !corpus ~seed:g.g_row.seed ~phase:g.g_phase
               ~tape:g.g_tape ~cov:g.g_cov
           in
           corpus := corpus';
           if admitted then
             (match phase with
              | Gen_phase -> incr gen_admitted
              | Mut_phase -> incr mut_admitted)
         | Ok { result = Error entry; retries = r } ->
           quarantine_rev := entry :: !quarantine_rev;
           retries := !retries + r
         | Error e ->
           let cls, phase' = Harness.Supervise.classify e in
           quarantine_rev :=
             { Harness.Supervise.q_task = i; q_seed = Tape.mix seed i;
               q_class = cls; q_phase = phase'; q_attempts = 1;
               q_detail = Printexc.to_string e }
             :: !quarantine_rev)
      indices outcomes;
    cov_rows_rev :=
      { cr_shard = sidx; cr_phase = phase_name phase;
        cr_bits = Coverage.cardinal !coverage;
        cr_sites = Coverage.sites !coverage;
        cr_corpus = Corpus.size !corpus }
      :: !cov_rows_rev;
    incr shards_done;
    save ()
  in
  let process_shard = if guided then process_shard_guided else process_shard in
  let last_shard =
    match stop_after_shards with
    | None -> total_shards
    | Some k -> min total_shards (!shards_done + max 0 k)
  in
  while !shards_done < last_shard do
    process_shard !shards_done
  done;
  let rows = List.rev !rows_rev in
  (* shrink only once every shard is in (a partial [stop_after_shards]
     run is checkpoint fodder, not a report); failing rows are
     regenerated from their seeds, so a resumed campaign shrinks
     exactly what an uninterrupted one would *)
  let shrunk =
    (* guided rows from mutation shards are not regenerable from their
       seeds alone (the tape came from the corpus), so guided
       campaigns report failures through the ledger unshrunk *)
    if guided || !shards_done < total_shards then []
    else begin
      let failing = List.filter (fun r -> r.failures <> []) rows in
      let failing =
        List.filteri (fun i _ -> i < max_shrink) failing
      in
      List.filter_map
        (fun r ->
           let inject = inject_of_index r.index in
           let task () =
             let fault =
               match faults with
               | [] -> None
               | specs -> Some (Vm.Fault.of_specs ~seed:r.seed specs)
             in
             let fuel =
               Option.map
                 (fun b -> Tir.Fuel.make ~phase:"shrink" ~budget:b)
                 (fuel_budget_of_specs faults)
             in
             let p =
               Gen.generate ~inject (Tape.fresh ~seed:r.seed)
             in
             let fs = Oracle.evaluate ~tools:(tools_of_names tool_names)
                 ?fault ?backend p in
             match
               shrink_failure ~tool_names ?fault ?fuel ?backend ~inject p fs
             with
             | Some s ->
               Some { s with s_row = { s.s_row with index = r.index;
                                       seed = r.seed } }
             | None ->
               (* non-reproducible from its own tape: report unshrunk *)
               Some { s_row = r; s_failures = fs; s_src = p.Gen.src;
                      s_tape = p.Gen.tape;
                      s_lines = Gen.line_count p.Gen.src }
           in
           match
             Harness.Supervise.run ~policy ~task:r.index ~seed:r.seed
               (fun ~attempt:_ -> task ())
           with
           | { Harness.Supervise.result = Ok sh; retries = r' } ->
             retries := !retries + r';
             sh
           | { result = Error entry; retries = r' } ->
             retries := !retries + r';
             quarantine_rev := entry :: !quarantine_rev;
             None)
        failing
    end
  in
  (* shrink-phase quarantines were pushed onto the same ledger, after
     the campaign's own entries *)
  let quarantine = List.rev !quarantine_rev in
  let fuel_exhausted = fuel_exhausted_count quarantine in
  let snapshot =
    (* supervise counters ride the snapshot only when nonzero, so a
       fault-free campaign's telemetry is unchanged *)
    let extra =
      List.filter
        (fun (_, v) -> v > 0)
        [ "supervise_fuel_exhausted", fuel_exhausted;
          "supervise_quarantined", List.length quarantine;
          "supervise_resumed_shards", !resumed_shards;
          "supervise_retries", !retries ]
    in
    if extra = [] then !snapshot
    else
      Telemetry.Snapshot.merge !snapshot
        { Telemetry.Snapshot.empty with counters = extra }
  in
  {
    campaign_seed = seed;
    n;
    tool_names;
    fault_specs = faults;
    rows;
    shrunk;
    quarantine;
    retries = !retries;
    fuel_exhausted;
    resumed_shards = !resumed_shards;
    snapshot;
    guided;
    mutate_only;
    coverage = !coverage;
    corpus = !corpus;
    cov_rows = List.rev !cov_rows_rev;
    gen_programs = !gen_programs;
    mut_programs = !mut_programs;
    gen_admitted = !gen_admitted;
    mut_admitted = !mut_admitted;
    clean = List.length (List.filter (fun r -> r.plan = None) rows);
    buggy = List.length (List.filter (fun r -> r.plan <> None) rows);
    false_positives = count_kind rows (has_prefix ~prefix:"false-positive");
    false_negatives = count_kind rows (has_prefix ~prefix:"false-negative");
    divergences = count_kind rows (has_prefix ~prefix:"divergence");
    opt_unsound = count_kind rows (has_prefix ~prefix:"opt-unsound");
    misclassified = count_kind rows (has_prefix ~prefix:"misclassified");
    gen_invalid = count_kind rows (has_prefix ~prefix:"gen-invalid");
  }

let passed s =
  s.false_positives = 0 && s.false_negatives = 0 && s.divergences = 0
  && s.opt_unsound = 0 && s.misclassified = 0 && s.gen_invalid = 0

(* The blind baseline at the same program budget: the bitmap a plain
   generation-only grid reaches.  Each program is the exact blind
   program at its index, so this is the control arm of the
   guided-beats-blind inequality. *)
let blind_coverage ?pool ?(tool_names = []) ?backend ~seed ~n ()
  : Coverage.t =
  let covs =
    Harness.Pool.maybe_map_results pool
      (fun i ->
         (run_one_guided ~tool_names ~fault_specs:[] ~campaign_seed:seed
            ?backend ~phase:Gen_phase ~corpus:Corpus.empty i)
           .g_cov)
      (List.init n Fun.id)
  in
  List.fold_left
    (fun acc r ->
       match r with Ok c -> Coverage.union acc c | Error _ -> acc)
    Coverage.empty covs

(* The BENCH_fuzzcov.json artifact (schema cecsan-bench-fuzzcov/1):
   every field derives from submission-order state -- no wall clock,
   no job count -- so the artifact is byte-identical at any -j and
   across kill-and-resume. *)
let fuzzcov_json ~blind (s : summary) : string =
  let mismatches =
    List.length (List.filter (fun r -> r.failures <> []) s.rows)
  in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (sp "{\"schema\":\"cecsan-bench-fuzzcov/1\",\"seed\":\"0x%x\",\
         \"n\":%d,\"mutate_only\":%b,"
       s.campaign_seed s.n s.mutate_only);
  Buffer.add_string b
    (sp "\"guided\":{\"bits\":%d,\"sites\":%d,\"corpus\":%d,\
         \"mismatches\":%d,"
       (Coverage.cardinal s.coverage)
       (Coverage.sites s.coverage)
       (Corpus.size s.corpus) mismatches);
  Buffer.add_string b
    (sp "\"phases\":{\"gen\":{\"programs\":%d,\"admitted\":%d},\
         \"mutate\":{\"programs\":%d,\"admitted\":%d}}},"
       s.gen_programs s.gen_admitted s.mut_programs s.mut_admitted);
  Buffer.add_string b
    (sp "\"blind\":{\"bits\":%d,\"sites\":%d},"
       (Coverage.cardinal blind)
       (Coverage.sites blind));
  Buffer.add_string b "\"rows\":[";
  List.iteri
    (fun i c ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (sp "{\"shard\":%d,\"phase\":\"%s\",\"bits\":%d,\"sites\":%d,\
              \"corpus\":%d}"
            c.cr_shard c.cr_phase c.cr_bits c.cr_sites c.cr_corpus))
    s.cov_rows;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- final ledgers -------------------------------------------------------- *)

(* The two files the durability contract is judged on: every line
   derives only from fields the checkpoint persists (index, seed, plan,
   failure labels, quarantine entries), so an interrupted-and-resumed
   campaign reproduces them byte for byte. *)
let mismatch_ledger_lines (s : summary) =
  List.filter_map
    (fun r ->
       if r.failures = [] then None
       else
         Some
           (sp "index=%d seed=%x plan=%s failures=%s" r.index r.seed
              (plan_to_field r.plan) (csv_or_dash r.failures)))
    s.rows

let quarantine_ledger_lines (s : summary) =
  List.map Harness.Supervise.entry_to_line s.quarantine

let write_ledgers ~dir (s : summary) : string * string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name lines =
    let path = Filename.concat dir name in
    Harness.Jsonio.write_lines ~path lines;
    path
  in
  ( write "mismatch.ledger" (mismatch_ledger_lines s),
    write "quarantine.ledger" (quarantine_ledger_lines s) )

(* --- rendering ----------------------------------------------------------- *)

let class_histogram rows =
  List.fold_left
    (fun acc r ->
       match r.plan with
       | None -> acc
       | Some p ->
         let k = Gen.class_name p.Gen.cls in
         (k, 1 + Option.value (List.assoc_opt k acc) ~default:0)
         :: List.remove_assoc k acc)
    [] rows
  |> List.sort compare

(* The header carries everything needed to replay the campaign from the
   log alone: seed, size, job count, tool lineup, fault specs. *)
let render fmt ~jobs (s : summary) =
  Format.fprintf fmt
    "Fuzz campaign: seed=0x%x n=%d jobs=%d tools=cecsan%s%s@."
    s.campaign_seed s.n jobs
    (match s.tool_names with
     | [] -> ""
     | ts -> "," ^ String.concat "," ts)
    (match s.fault_specs with
     | [] -> ""
     | fs ->
       " faults=" ^ String.concat "," (List.map Vm.Fault.spec_to_string fs));
  Format.fprintf fmt "  programs: %d clean + %d bug-injected@." s.clean
    s.buggy;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "    planted %-16s %4d@." k v)
    (class_histogram s.rows);
  Format.fprintf fmt "  false positives   : %d@." s.false_positives;
  Format.fprintf fmt "  false negatives   : %d@." s.false_negatives;
  Format.fprintf fmt "  divergences       : %d@." s.divergences;
  Format.fprintf fmt "  optimizer-unsound : %d@." s.opt_unsound;
  Format.fprintf fmt "  misclassified     : %d@." s.misclassified;
  Format.fprintf fmt "  generator-invalid : %d@." s.gen_invalid;
  Format.fprintf fmt "  quarantined       : %d@."
    (List.length s.quarantine);
  Format.fprintf fmt "  retries           : %d@." s.retries;
  if s.fuel_exhausted > 0 then
    Format.fprintf fmt "  fuel-exhausted    : %d@." s.fuel_exhausted;
  if s.resumed_shards > 0 then
    Format.fprintf fmt "  resumed shards    : %d@." s.resumed_shards;
  if s.guided then begin
    Format.fprintf fmt "  coverage          : %d bits over %d sites@."
      (Coverage.cardinal s.coverage)
      (Coverage.sites s.coverage);
    Format.fprintf fmt
      "  corpus            : %d entries (%d gen + %d mutate admissions)@."
      (Corpus.size s.corpus) s.gen_admitted s.mut_admitted;
    Format.fprintf fmt
      "  phases            : %d generation + %d mutation programs@."
      s.gen_programs s.mut_programs
  end;
  if s.quarantine <> [] then begin
    Format.fprintf fmt "@.  QUARANTINE:@.";
    Harness.Supervise.render fmt s.quarantine
  end;
  List.iter
    (fun sh ->
       Format.fprintf fmt
         "@.  FAILURE (program %d, seed 0x%x, shrunk to %d lines):@."
         sh.s_row.index sh.s_row.seed sh.s_lines;
       List.iter
         (fun f ->
            Format.fprintf fmt "    %s: %s@." (Oracle.failure_name f)
              (Oracle.failure_detail f))
         sh.s_failures;
       Format.fprintf fmt "    tape: %s@." (Tape.to_string sh.s_tape);
       List.iter
         (fun l -> Format.fprintf fmt "    | %s@." l)
         (String.split_on_char '\n' sh.s_src))
    s.shrunk;
  Format.fprintf fmt "@.  RESULT: %s@."
    (if passed s then "PASS" else "FAIL")

(* --- resilience degradation table ----------------------------------------- *)

type resilience_row = {
  rs_scenario : string;
  rs_n : int;
  rs_completed : int;      (* programs that produced a verdict *)
  rs_quarantined : int;
  rs_retries : int;
  rs_fuel : int;
  rs_pass : bool;          (* oracle verdicts clean on the survivors *)
}

(* The supervised counterpart of the Harness.Faults grid: each scenario
   runs the same seeded campaign under one injected harness-fault
   class, and the table shows how much of the grid survives. *)
let resilience ?pool ?(n = 240) ?backend ~seed () : resilience_row list =
  (* Calibrated against the generator: most programs allocate only a
     handful of times and compile in well under 2000 fuel steps, so
     crash:3 / fuel:600 kill a slice of the grid, crash:1 / fuel:400
     kill most of it, and fuel:2000 is a watchdog that never fires. *)
  let scenarios =
    [ "none", [];
      "crash:3", [ Vm.Fault.Crash 3 ];
      "crash:1", [ Vm.Fault.Crash 1 ];
      "fuel:2000", [ Vm.Fault.Fuel 2_000 ];
      "fuel:400", [ Vm.Fault.Fuel 400 ] ]
  in
  List.map
    (fun (name, faults) ->
       let s = run ?pool ~faults ~max_shrink:0 ?backend ~seed ~n () in
       { rs_scenario = name;
         rs_n = n;
         rs_completed = List.length s.rows;
         rs_quarantined = List.length s.quarantine;
         rs_retries = s.retries;
         rs_fuel = s.fuel_exhausted;
         rs_pass = passed s })
    scenarios

let render_resilience fmt (rows : resilience_row list) =
  Format.fprintf fmt "Resilience: supervised campaign under injected harness faults@.";
  Format.fprintf fmt "  %-14s %9s %10s %12s %8s %6s %s@." "scenario"
    "programs" "completed" "quarantined" "retries" "fuel" "verdict";
  List.iter
    (fun r ->
       Format.fprintf fmt "  %-14s %9d %10d %12d %8d %6d %s@."
         r.rs_scenario r.rs_n r.rs_completed r.rs_quarantined r.rs_retries
         r.rs_fuel
         (if r.rs_pass then "PASS" else "FAIL"))
    rows

let resilience_json (rows : resilience_row list) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"rows\":[";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (sp
            "{\"scenario\":\"%s\",\"n\":%d,\"completed\":%d,\
             \"quarantined\":%d,\"retries\":%d,\"fuel_exhausted\":%d,\
             \"pass\":%b}"
            r.rs_scenario r.rs_n r.rs_completed r.rs_quarantined
            r.rs_retries r.rs_fuel r.rs_pass))
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- repro / corpus files ------------------------------------------------ *)

let repro_contents ~seed ~inject ~(failures : Oracle.failure list)
    ~(tape : int array) (src : string) =
  String.concat "\n"
    ([ "/* cecsan-fuzz repro";
       sp "   seed: 0x%x" seed;
       sp "   inject: %b" inject;
     ]
     @ List.map
       (fun f -> sp "   failure: %s (%s)" (Oracle.failure_name f)
           (Oracle.failure_detail f))
       failures
     @ [ sp "   tape: %s" (Tape.to_string tape); "*/"; src; "" ])

let corpus_contents ~cls ~seed ~(tape : int array) (src : string) =
  String.concat "\n"
    [ "/* cecsan-fuzz corpus entry";
      sp "   class: %s" (Gen.class_name cls);
      sp "   seed: 0x%x" seed;
      sp "   tape: %s" (Tape.to_string tape);
      "   expect: detected by CECSan under Halt and Recover"; "*/"; src;
      "" ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let mkdir_p dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Writes shrunk failure repros; returns the paths. *)
let write_repros ~dir (s : summary) : string list =
  if s.shrunk = [] then []
  else begin
    mkdir_p dir;
    List.map
      (fun sh ->
         let path =
           Filename.concat dir
             (sp "repro_%04d_%s.mc" sh.s_row.index
                (match sh.s_failures with
                 | f :: _ ->
                   String.map
                     (function ':' -> '_' | c -> c)
                     (Oracle.failure_name f)
                 | [] -> "unknown"))
         in
         write_file path
           (repro_contents ~seed:sh.s_row.seed
              ~inject:(inject_of_index sh.s_row.index)
              ~failures:sh.s_failures ~tape:sh.s_tape sh.s_src);
         path)
      s.shrunk
  end

let detect_same_class ?backend cls tape =
  let p = Gen.generate ~inject:true (Tape.replay tape) in
  match p.Gen.plan with
  | Some pl when pl.Gen.cls = cls ->
    (match
       Oracle.run_tool (Cecsan.sanitizer ()) ?backend ~optimize:true
         p.Gen.src
     with
     | tr ->
       tr.Oracle.detected
       && (match tr.Oracle.first_kind with
           | Some k -> Oracle.kind_ok cls k
           | None -> false)
     | exception Oracle.Compile_error _ -> false)
  | _ -> false

(* [detect_same_class] with the whole planted shape pinned: corpus
   shrinking preserves class AND far/write/granule16, so each entry
   stays a faithful witness of its plan-shape marker. *)
let detect_same_plan ?backend (pl0 : Gen.plan) tape =
  let p = Gen.generate ~inject:true (Tape.replay tape) in
  match p.Gen.plan with
  | Some pl when pl = pl0 ->
    (match
       Oracle.run_tool (Cecsan.sanitizer ()) ?backend ~optimize:true
         p.Gen.src
     with
     | tr ->
       tr.Oracle.detected
       && (match tr.Oracle.first_kind with
           | Some k -> Oracle.kind_ok pl.Gen.cls k
           | None -> false)
     | exception Oracle.Compile_error _ -> false)
  | _ -> false

(* One marker bit per planted-plan shape (class x far x write x
   granule16), in reserved site space far above any real Tir site id.
   Folding it into the .mc corpus' signature makes the set-cover pass
   keep at least one witness of every detected bug shape alongside raw
   coverage breadth (the AFL "coverage + crash signature" dedup key). *)
let plan_marker_base = 4096

let plan_marker (pl : Gen.plan) : Coverage.t =
  let cls_index =
    let rec go i = function
      | [] -> 0
      | c :: _ when c = pl.Gen.cls -> i
      | _ :: rest -> go (i + 1) rest
    in
    go 0 Gen.all_classes
  in
  let code =
    (cls_index * 8) + (Bool.to_int pl.Gen.far * 4)
    + (Bool.to_int pl.Gen.write * 2) + Bool.to_int pl.Gen.granule16
  in
  Coverage.of_keys
    [ Coverage.key ~leg:0 ~site:(plan_marker_base + code)
        Coverage.Instrumented ]

(* A bug-planted tape's signature for the .mc corpus' set-cover pass:
   the bitmap over the three CECSan legs plus the plan-shape marker. *)
let corpus_coverage_of_tape ?backend tape : Coverage.t =
  let p = Gen.generate ~inject:true (Tape.replay tape) in
  let marker =
    match p.Gen.plan with
    | Some pl -> plan_marker pl
    | None -> Coverage.empty
  in
  match Oracle.evaluate_cov ~tools:[] ?backend p with
  | _, _, cov -> Coverage.union cov marker
  | exception _ -> marker

(* Seeds a regression corpus: bug-injected programs that CECSan
   detects, each shrunk to the smallest tape on which the SAME class is
   still planted and still detected (with the right kind), admitted on
   coverage novelty and finally reduced to the greedy set cover -- so
   the written corpus is a fixed point of [Corpus.minimize].
   Deterministic in [seed]; writes at most [count] entries. *)
let write_corpus ~dir ~seed ~count ?backend () : string list =
  mkdir_p dir;
  let rec collect i corp =
    if Corpus.size corp >= count || i > 10_000 then corp
    else
      let pseed = Tape.mix seed i in
      let p = Gen.generate ~inject:true (Tape.fresh ~seed:pseed) in
      match p.Gen.plan with
      | Some pl
        when detect_same_class ?backend pl.Gen.cls p.Gen.tape
             && Coverage.novel
                  (corpus_coverage_of_tape ?backend p.Gen.tape)
                  ~acc:(Corpus.accumulated corp) ->
        let tape =
          Shrink.minimize ~still_fails:(detect_same_plan ?backend pl)
            p.Gen.tape
        in
        let corp', _ =
          Corpus.admit corp ~seed:pseed ~phase:"gen" ~tape
            ~cov:(corpus_coverage_of_tape ?backend tape)
        in
        collect (i + 1) corp'
      | _ -> collect (i + 1) corp
  in
  let corp = Corpus.minimize (collect 1 Corpus.empty) in
  List.mapi
    (fun k (e : Corpus.entry) ->
       let p = Gen.generate ~inject:true (Tape.replay e.Corpus.e_tape) in
       let cls =
         match p.Gen.plan with
         | Some pl -> pl.Gen.cls
         | None -> assert false (* shrink preserved detection *)
       in
       let path =
         Filename.concat dir (sp "%02d_%s.mc" k (Gen.class_name cls))
       in
       write_file path
         (corpus_contents ~cls ~seed:e.Corpus.e_seed ~tape:e.Corpus.e_tape
            p.Gen.src);
       path)
    (Corpus.entries corp)

(* --- committed-corpus minimality check ------------------------------------- *)

let tape_of_corpus_file path : int array option =
  let ic = open_in path in
  let found = ref None in
  (try
     while !found = None do
       let line = input_line ic in
       let prefix = "   tape: " in
       if has_prefix ~prefix line then
         found :=
           Tape.of_string
             (String.sub line (String.length prefix)
                (String.length line - String.length prefix))
     done
   with End_of_file -> ());
  close_in ic;
  !found

(* [Ok []] iff the committed .mc corpus in [dir] is already a fixed
   point of the set-cover pass: rebuilding each entry's bitmap from its
   tape header and minimizing drops nothing.  [Ok files] names the
   redundant entries. *)
let check_corpus_minimal ~dir ?backend () : (string list, string) result =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".mc")
    |> List.sort compare
  in
  if files = [] then Error (sp "no .mc corpus entries in %s" dir)
  else
    let rec build k files acc =
      match files with
      | [] -> Ok (List.rev acc)
      | f :: rest ->
        (match tape_of_corpus_file (Filename.concat dir f) with
         | None -> Error (sp "%s: no parseable tape header" f)
         | Some tape ->
           build (k + 1) rest
             ({ Corpus.e_id = k; e_seed = 0; e_phase = "gen";
                e_tape = tape;
                e_cov = corpus_coverage_of_tape ?backend tape }
              :: acc))
    in
    match build 0 files [] with
    | Error e -> Error e
    | Ok entries ->
      let kept =
        List.map
          (fun (e : Corpus.entry) -> e.Corpus.e_id)
          (Corpus.entries (Corpus.minimize (Corpus.of_entries entries)))
      in
      Ok (List.filteri (fun k _ -> not (List.mem k kept)) files)

(* Fuzz.Campaign: seeded differential campaigns over Harness.Pool.

   Program i of a campaign gets the independent seed
   [Tape.mix campaign_seed i] (odd indices carry a planted bug), so the
   grid is embarrassingly parallel and the verdict stream is identical
   at any job count: Pool.map keeps submission order, and shrinking of
   the (rare) failures happens sequentially afterwards. *)

let sp = Printf.sprintf

type row = {
  index : int;
  seed : int;
  plan : Gen.plan option;
  failures : string list;      (* Oracle.failure_name labels *)
}

type shrunk = {
  s_row : row;
  s_failures : Oracle.failure list;
  s_src : string;
  s_tape : int array;
  s_lines : int;
}

type summary = {
  campaign_seed : int;
  n : int;
  tool_names : string list;
  rows : row list;
  shrunk : shrunk list;
  (* CECSan(-O2) telemetry over the whole grid, merged in submission
     order: identical at any job count *)
  snapshot : Telemetry.Snapshot.t;
  clean : int;
  buggy : int;
  false_positives : int;
  false_negatives : int;
  divergences : int;
  opt_unsound : int;
  misclassified : int;
  gen_invalid : int;
}

let inject_of_index i = i land 1 = 1

let tools_of_names names = List.filter_map Oracle.baseline_of_name names

(* One self-contained job: everything derived from (campaign_seed, i). *)
let run_one ~tool_names ~campaign_seed i =
  let tools = tools_of_names tool_names in
  let seed = Tape.mix campaign_seed i in
  let p = Gen.generate ~inject:(inject_of_index i) (Tape.fresh ~seed) in
  let fs, snap = Oracle.evaluate_full ~tools p in
  (p, { index = i; seed; plan = p.Gen.plan; failures = List.map Oracle.failure_name fs },
   fs, snap)

(* Shrinks a failing case: the minimized tape must regenerate a program
   that still exhibits every one of the original failure labels. *)
let shrink_failure ~tool_names ~inject (p : Gen.program)
    (failures : Oracle.failure list) : shrunk option =
  let tools = tools_of_names tool_names in
  let wanted = List.map Oracle.failure_name failures in
  let evaluate_tape tape =
    let p' = Gen.generate ~inject (Tape.replay tape) in
    (p', Oracle.evaluate ~tools p')
  in
  let still_fails tape =
    let _, fs = evaluate_tape tape in
    let names = List.map Oracle.failure_name fs in
    List.for_all (fun w -> List.mem w names) wanted
  in
  if not (still_fails p.Gen.tape) then None
  else
    let best = Shrink.minimize ~still_fails p.Gen.tape in
    let p_min, fs_min = evaluate_tape best in
    Some
      { s_row = { index = -1; seed = 0; plan = p_min.Gen.plan;
                  failures = List.map Oracle.failure_name fs_min };
        s_failures = fs_min;
        s_src = p_min.Gen.src;
        s_tape = best;
        s_lines = Gen.line_count p_min.Gen.src }

let count_kind rows pred =
  List.fold_left
    (fun acc r -> acc + List.length (List.filter pred r)) 0
    (List.map (fun r -> r.failures) rows)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let run ?pool ?(tool_names = []) ?(max_shrink = 5) ~seed ~n () : summary =
  let indices = List.init n (fun i -> i) in
  let results =
    Harness.Pool.maybe_map pool
      (run_one ~tool_names ~campaign_seed:seed)
      indices
  in
  let rows = List.map (fun (_, r, _, _) -> r) results in
  let snapshot =
    Telemetry.Snapshot.merge_all (List.map (fun (_, _, _, s) -> s) results)
  in
  let failing =
    List.filter (fun (_, r, _, _) -> r.failures <> []) results
  in
  let shrunk =
    List.filteri (fun i _ -> i < max_shrink) failing
    |> List.filter_map (fun (p, r, fs, _) ->
        match
          shrink_failure ~tool_names ~inject:(inject_of_index r.index) p fs
        with
        | Some s -> Some { s with s_row = { s.s_row with index = r.index;
                                            seed = r.seed } }
        | None ->
          (* non-reproducible from its own tape: report unshrunk *)
          Some { s_row = r; s_failures = fs; s_src = p.Gen.src;
                 s_tape = p.Gen.tape;
                 s_lines = Gen.line_count p.Gen.src })
  in
  {
    campaign_seed = seed;
    n;
    tool_names;
    rows;
    shrunk;
    snapshot;
    clean = List.length (List.filter (fun r -> r.plan = None) rows);
    buggy = List.length (List.filter (fun r -> r.plan <> None) rows);
    false_positives = count_kind rows (has_prefix ~prefix:"false-positive");
    false_negatives = count_kind rows (has_prefix ~prefix:"false-negative");
    divergences = count_kind rows (has_prefix ~prefix:"divergence");
    opt_unsound = count_kind rows (has_prefix ~prefix:"opt-unsound");
    misclassified = count_kind rows (has_prefix ~prefix:"misclassified");
    gen_invalid = count_kind rows (has_prefix ~prefix:"gen-invalid");
  }

let passed s =
  s.false_positives = 0 && s.false_negatives = 0 && s.divergences = 0
  && s.opt_unsound = 0 && s.misclassified = 0 && s.gen_invalid = 0

(* --- rendering ----------------------------------------------------------- *)

let class_histogram rows =
  List.fold_left
    (fun acc r ->
       match r.plan with
       | None -> acc
       | Some p ->
         let k = Gen.class_name p.Gen.cls in
         (k, 1 + Option.value (List.assoc_opt k acc) ~default:0)
         :: List.remove_assoc k acc)
    [] rows
  |> List.sort compare

(* The header carries everything needed to replay the campaign from the
   log alone: seed, size, job count, tool lineup. *)
let render fmt ~jobs (s : summary) =
  Format.fprintf fmt
    "Fuzz campaign: seed=0x%x n=%d jobs=%d tools=cecsan%s@."
    s.campaign_seed s.n jobs
    (match s.tool_names with
     | [] -> ""
     | ts -> "," ^ String.concat "," ts);
  Format.fprintf fmt "  programs: %d clean + %d bug-injected@." s.clean
    s.buggy;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "    planted %-16s %4d@." k v)
    (class_histogram s.rows);
  Format.fprintf fmt "  false positives   : %d@." s.false_positives;
  Format.fprintf fmt "  false negatives   : %d@." s.false_negatives;
  Format.fprintf fmt "  divergences       : %d@." s.divergences;
  Format.fprintf fmt "  optimizer-unsound : %d@." s.opt_unsound;
  Format.fprintf fmt "  misclassified     : %d@." s.misclassified;
  Format.fprintf fmt "  generator-invalid : %d@." s.gen_invalid;
  List.iter
    (fun sh ->
       Format.fprintf fmt
         "@.  FAILURE (program %d, seed 0x%x, shrunk to %d lines):@."
         sh.s_row.index sh.s_row.seed sh.s_lines;
       List.iter
         (fun f ->
            Format.fprintf fmt "    %s: %s@." (Oracle.failure_name f)
              (Oracle.failure_detail f))
         sh.s_failures;
       Format.fprintf fmt "    tape: %s@." (Tape.to_string sh.s_tape);
       List.iter
         (fun l -> Format.fprintf fmt "    | %s@." l)
         (String.split_on_char '\n' sh.s_src))
    s.shrunk;
  Format.fprintf fmt "@.  RESULT: %s@."
    (if passed s then "PASS" else "FAIL")

(* --- repro / corpus files ------------------------------------------------ *)

let repro_contents ~seed ~inject ~(failures : Oracle.failure list)
    ~(tape : int array) (src : string) =
  String.concat "\n"
    ([ "/* cecsan-fuzz repro";
       sp "   seed: 0x%x" seed;
       sp "   inject: %b" inject;
     ]
     @ List.map
       (fun f -> sp "   failure: %s (%s)" (Oracle.failure_name f)
           (Oracle.failure_detail f))
       failures
     @ [ sp "   tape: %s" (Tape.to_string tape); "*/"; src; "" ])

let corpus_contents ~cls ~seed ~(tape : int array) (src : string) =
  String.concat "\n"
    [ "/* cecsan-fuzz corpus entry";
      sp "   class: %s" (Gen.class_name cls);
      sp "   seed: 0x%x" seed;
      sp "   tape: %s" (Tape.to_string tape);
      "   expect: detected by CECSan under Halt and Recover"; "*/"; src;
      "" ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let mkdir_p dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Writes shrunk failure repros; returns the paths. *)
let write_repros ~dir (s : summary) : string list =
  if s.shrunk = [] then []
  else begin
    mkdir_p dir;
    List.map
      (fun sh ->
         let path =
           Filename.concat dir
             (sp "repro_%04d_%s.mc" sh.s_row.index
                (match sh.s_failures with
                 | f :: _ ->
                   String.map
                     (function ':' -> '_' | c -> c)
                     (Oracle.failure_name f)
                 | [] -> "unknown"))
         in
         write_file path
           (repro_contents ~seed:sh.s_row.seed
              ~inject:(inject_of_index sh.s_row.index)
              ~failures:sh.s_failures ~tape:sh.s_tape sh.s_src);
         path)
      s.shrunk
  end

(* Seeds a regression corpus: the first [count] bug-injected programs
   that CECSan detects, each shrunk to the smallest tape on which the
   SAME class is still planted and still detected (with the right
   kind).  Deterministic in [seed]. *)
let write_corpus ~dir ~seed ~count () : string list =
  mkdir_p dir;
  let detect_same_class cls tape =
    let p = Gen.generate ~inject:true (Tape.replay tape) in
    match p.Gen.plan with
    | Some pl when pl.Gen.cls = cls ->
      (match
         Oracle.run_tool (Cecsan.sanitizer ()) ~optimize:true p.Gen.src
       with
       | tr ->
         tr.Oracle.detected
         && (match tr.Oracle.first_kind with
             | Some k -> Oracle.kind_ok cls k
             | None -> false)
       | exception Oracle.Compile_error _ -> false)
    | _ -> false
  in
  let rec go i collected paths =
    if collected >= count || i > 10_000 then List.rev paths
    else
      let pseed = Tape.mix seed i in
      let p = Gen.generate ~inject:true (Tape.fresh ~seed:pseed) in
      match p.Gen.plan with
      | Some pl when detect_same_class pl.Gen.cls p.Gen.tape ->
        let tape =
          Shrink.minimize ~still_fails:(detect_same_class pl.Gen.cls)
            p.Gen.tape
        in
        let p_min = Gen.generate ~inject:true (Tape.replay tape) in
        let path =
          Filename.concat dir
            (sp "%02d_%s.mc" collected (Gen.class_name pl.Gen.cls))
        in
        write_file path
          (corpus_contents ~cls:pl.Gen.cls ~seed:pseed ~tape p_min.Gen.src);
        go (i + 1) (collected + 1) (path :: paths)
      | _ -> go (i + 1) collected paths
  in
  go 1 0 []

(* Fuzz.Campaign: seeded differential campaigns over Harness.Pool,
   supervised and resumable.

   Program i of a campaign gets the independent seed
   [Tape.mix campaign_seed i] (odd indices carry a planted bug), so the
   grid is embarrassingly parallel and the verdict stream is identical
   at any job count: Pool.map_results keeps submission order, and
   shrinking of the (rare) failures happens sequentially afterwards.

   Supervision (this file's robustness layer):

   - every per-program task runs under [Harness.Supervise.run]: a task
     that dies -- injected crash, fuel exhaustion, stack overflow --
     is retried under the deterministic count-based policy and then
     QUARANTINED (one ledger entry) instead of aborting the campaign;
   - the campaign proceeds in shards of [shard_size] programs; after
     each shard the full campaign state (rows, quarantine, counters,
     merged telemetry) is written to an atomic checkpoint
     (temp-file + rename), so a SIGKILL costs at most one shard;
   - [resume:true] restores the checkpoint and continues from the
     first unfinished shard.  Everything the final ledgers derive from
     is persisted in the checkpoint, so a killed-and-resumed campaign
     produces byte-identical mismatch/quarantine ledgers to an
     uninterrupted one, at any -j.

   Checkpoint schema v1 (line-based, documented in DESIGN.md s.13):

     cecsan-campaign-checkpoint v1
     seed <hex>
     n <int>
     shard_size <int>
     tools <csv|->
     faults <csv|->
     shards_done <int>
     resumed_shards <int>
     retries <int>
     row index=<int> seed=<hex> plan=<cls:far:write:g16|-> failures=<csv|->
     ...
     quarantine task=<int> seed=<hex> attempts=<int> class=<s> phase=<s> detail=<%S>
     ...
     snapshot <Telemetry.Snapshot.to_json line>
     end *)

let sp = Printf.sprintf

type row = {
  index : int;
  seed : int;
  plan : Gen.plan option;
  failures : string list;      (* Oracle.failure_name labels *)
}

type shrunk = {
  s_row : row;
  s_failures : Oracle.failure list;
  s_src : string;
  s_tape : int array;
  s_lines : int;
}

type summary = {
  campaign_seed : int;
  n : int;
  tool_names : string list;
  fault_specs : Vm.Fault.spec list;
  rows : row list;
  shrunk : shrunk list;
  quarantine : Harness.Supervise.entry list;  (* submission order *)
  retries : int;          (* re-attempts made across all tasks *)
  fuel_exhausted : int;   (* quarantined with class "fuel" *)
  resumed_shards : int;   (* shards restored from a checkpoint *)
  (* CECSan(-O2) telemetry over the whole grid, merged in submission
     order: identical at any job count *)
  snapshot : Telemetry.Snapshot.t;
  clean : int;
  buggy : int;
  false_positives : int;
  false_negatives : int;
  divergences : int;
  opt_unsound : int;
  misclassified : int;
  gen_invalid : int;
}

let inject_of_index i = i land 1 = 1

let tools_of_names names = List.filter_map Oracle.baseline_of_name names

(* The pipeline-fuel budget carried by a [Fuel n] fault spec, if any. *)
let fuel_budget_of_specs specs =
  List.fold_left
    (fun acc s -> match s with Vm.Fault.Fuel b -> Some b | _ -> acc)
    None specs

(* One self-contained job: everything derived from (campaign_seed, i).
   With fault specs given, program i gets its own injector seeded from
   its derived seed, threaded into every oracle run; a [Fuel b] spec
   additionally puts the generator under a fresh [b]-step budget (the
   compile/verify phases get theirs inside Driver.run, bridged from the
   injector). *)
let run_one ~tool_names ~fault_specs ~campaign_seed ?backend i
  : row * Telemetry.Snapshot.t =
  let tools = tools_of_names tool_names in
  let seed = Tape.mix campaign_seed i in
  let fault =
    match fault_specs with
    | [] -> None
    | specs -> Some (Vm.Fault.of_specs ~seed specs)
  in
  let gen_fuel =
    Option.map
      (fun b -> Tir.Fuel.make ~phase:"gen" ~budget:b)
      (fuel_budget_of_specs fault_specs)
  in
  let p =
    Gen.generate ~inject:(inject_of_index i) ?fuel:gen_fuel
      (Tape.fresh ~seed)
  in
  let fs, snap = Oracle.evaluate_full ~tools ?fault ?backend p in
  ( { index = i; seed; plan = p.Gen.plan;
      failures = List.map Oracle.failure_name fs },
    snap )

(* Shrinks a failing case: the minimized tape must regenerate a program
   that still exhibits every one of the original failure labels.  The
   row's fault injector (if any) threads into every candidate
   evaluation, and [fuel] bounds the whole minimization. *)
let shrink_failure ~tool_names ?fault ?fuel ?backend ~inject
    (p : Gen.program) (failures : Oracle.failure list) : shrunk option =
  let tools = tools_of_names tool_names in
  let wanted = List.map Oracle.failure_name failures in
  let evaluate_tape tape =
    let p' = Gen.generate ~inject (Tape.replay tape) in
    (p', Oracle.evaluate ~tools ?fault ?backend p')
  in
  let still_fails tape =
    let _, fs = evaluate_tape tape in
    let names = List.map Oracle.failure_name fs in
    List.for_all (fun w -> List.mem w names) wanted
  in
  if not (still_fails p.Gen.tape) then None
  else
    let best = Shrink.minimize ?fuel ~still_fails p.Gen.tape in
    let p_min, fs_min = evaluate_tape best in
    Some
      { s_row = { index = -1; seed = 0; plan = p_min.Gen.plan;
                  failures = List.map Oracle.failure_name fs_min };
        s_failures = fs_min;
        s_src = p_min.Gen.src;
        s_tape = best;
        s_lines = Gen.line_count p_min.Gen.src }

let count_kind rows pred =
  List.fold_left
    (fun acc r -> acc + List.length (List.filter pred r)) 0
    (List.map (fun r -> r.failures) rows)

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* --- checkpoint serialization (schema v1) -------------------------------- *)

let checkpoint_file = "campaign.v1.ckpt"
let checkpoint_magic = "cecsan-campaign-checkpoint v1"

(* Mid-campaign state: everything the final summary and ledgers derive
   from.  Rows and quarantine entries are kept in submission order. *)
type ckpt = {
  ck_seed : int;
  ck_n : int;
  ck_shard_size : int;
  ck_tools : string list;
  ck_faults : string list;           (* Fault.spec_to_string forms *)
  ck_shards_done : int;
  ck_resumed_shards : int;
  ck_retries : int;
  ck_rows : row list;
  ck_quarantine : Harness.Supervise.entry list;
  ck_snapshot : Telemetry.Snapshot.t;
}

let csv_or_dash = function [] -> "-" | xs -> String.concat "," xs
let csv_of_dash = function "-" -> [] | s -> String.split_on_char ',' s

let plan_to_field = function
  | None -> "-"
  | Some (p : Gen.plan) ->
    sp "%s:%d:%d:%d" (Gen.class_name p.Gen.cls)
      (Bool.to_int p.Gen.far) (Bool.to_int p.Gen.write)
      (Bool.to_int p.Gen.granule16)

let plan_of_field = function
  | "-" -> Ok None
  | s ->
    (match String.split_on_char ':' s with
     | [ cls; far; write; g16 ] ->
       (match Gen.class_of_name cls, far, write, g16 with
        | Some cls, ("0" | "1"), ("0" | "1"), ("0" | "1") ->
          Ok (Some { Gen.cls; far = String.equal far "1";
                     write = String.equal write "1";
                     granule16 = String.equal g16 "1" })
        | _ -> Error (sp "bad plan field %S" s))
     | _ -> Error (sp "bad plan field %S" s))

let row_to_line r =
  sp "row index=%d seed=%x plan=%s failures=%s" r.index r.seed
    (plan_to_field r.plan) (csv_or_dash r.failures)

let row_of_line line : row option =
  match
    Scanf.sscanf line "row index=%d seed=%x plan=%s failures=%s"
      (fun index seed plan failures -> (index, seed, plan, failures))
  with
  | index, seed, plan, failures ->
    (match plan_of_field plan with
     | Ok plan -> Some { index; seed; plan; failures = csv_of_dash failures }
     | Error _ -> None)
  | exception _ -> None

let write_checkpoint ~dir (ck : ckpt) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir checkpoint_file in
  (* Jsonio's tmp+rename guarantees a reader never observes a torn
     checkpoint *)
  Harness.Jsonio.with_file ~path (fun oc ->
      let line fmt =
        Printf.ksprintf (fun s -> output_string oc (s ^ "\n")) fmt
      in
      line "%s" checkpoint_magic;
      line "seed %x" ck.ck_seed;
      line "n %d" ck.ck_n;
      line "shard_size %d" ck.ck_shard_size;
      line "tools %s" (csv_or_dash ck.ck_tools);
      line "faults %s" (csv_or_dash ck.ck_faults);
      line "shards_done %d" ck.ck_shards_done;
      line "resumed_shards %d" ck.ck_resumed_shards;
      line "retries %d" ck.ck_retries;
      List.iter (fun r -> line "%s" (row_to_line r)) ck.ck_rows;
      List.iter
        (fun e -> line "quarantine %s" (Harness.Supervise.entry_to_line e))
        ck.ck_quarantine;
      line "snapshot %s" (Telemetry.Snapshot.to_json ck.ck_snapshot);
      line "end")

(* [None] on a missing or unparseable file (a fresh start is always a
   correct recovery); the caller validates configuration agreement. *)
let read_checkpoint ~dir : ckpt option =
  let path = Filename.concat dir checkpoint_file in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do lines := input_line ic :: !lines done
     with End_of_file -> ());
    close_in ic;
    let lines = List.rev !lines in
    let exception Bad in
    let scan1 line fmt =
      match Scanf.sscanf line fmt (fun v -> v) with
      | v -> v
      | exception _ -> raise Bad
    in
    match lines with
    | magic :: seed_l :: n_l :: ss_l :: tools_l :: faults_l :: sd_l
      :: rs_l :: rt_l :: rest ->
      (try
         if not (String.equal magic checkpoint_magic) then raise Bad;
         let ck_seed = scan1 seed_l "seed %x" in
         let ck_n = scan1 n_l "n %d" in
         let ck_shard_size = scan1 ss_l "shard_size %d" in
         let ck_tools = csv_of_dash (scan1 tools_l "tools %s") in
         let ck_faults = csv_of_dash (scan1 faults_l "faults %s") in
         let ck_shards_done = scan1 sd_l "shards_done %d" in
         let ck_resumed_shards = scan1 rs_l "resumed_shards %d" in
         let ck_retries = scan1 rt_l "retries %d" in
         let rows = ref [] and quarantine = ref [] in
         let snapshot = ref None in
         let finished = ref false in
         List.iter
           (fun line ->
              if !finished then ()
              else if String.equal line "end" then finished := true
              else if has_prefix ~prefix:"row " line then
                match row_of_line line with
                | Some r -> rows := r :: !rows
                | None -> raise Bad
              else if has_prefix ~prefix:"quarantine " line then
                match
                  Harness.Supervise.entry_of_line
                    (String.sub line 11 (String.length line - 11))
                with
                | Some e -> quarantine := e :: !quarantine
                | None -> raise Bad
              else if has_prefix ~prefix:"snapshot " line then
                match
                  Telemetry.Snapshot.of_json
                    (String.sub line 9 (String.length line - 9))
                with
                | Some s -> snapshot := Some s
                | None -> raise Bad
              else raise Bad)
           rest;
         if not !finished then raise Bad;
         match !snapshot with
         | None -> None
         | Some ck_snapshot ->
           Some
             { ck_seed; ck_n; ck_shard_size; ck_tools; ck_faults;
               ck_shards_done; ck_resumed_shards; ck_retries;
               ck_rows = List.rev !rows;
               ck_quarantine = List.rev !quarantine; ck_snapshot }
       with Bad -> None)
    | _ -> None
  end

(* --- the campaign driver -------------------------------------------------- *)

let fuel_exhausted_count quarantine =
  List.length
    (List.filter
       (fun e -> String.equal e.Harness.Supervise.q_class "fuel")
       quarantine)

let run ?pool ?(tool_names = []) ?(max_shrink = 5) ?(faults = [])
    ?(policy = Harness.Supervise.default_policy) ?checkpoint
    ?(resume = false) ?(shard_size = 256) ?stop_after_shards ?backend
    ~seed ~n () : summary =
  let shard_size = max 1 shard_size in
  let fault_strings = List.map Vm.Fault.spec_to_string faults in
  (* restore: a missing/corrupt checkpoint is a fresh start; a
     checkpoint for a DIFFERENT campaign is a caller error *)
  let restored =
    if not resume then None
    else
      match checkpoint with
      | None -> invalid_arg "Campaign.run: resume requires a checkpoint dir"
      | Some dir ->
        (match read_checkpoint ~dir with
         | None -> None
         | Some ck ->
           if
             ck.ck_seed <> seed || ck.ck_n <> n
             || ck.ck_shard_size <> shard_size
             || ck.ck_tools <> tool_names
             || ck.ck_faults <> fault_strings
           then
             invalid_arg
               (sp
                  "Campaign.run: checkpoint in %s is for a different \
                   campaign (seed/n/shard_size/tools/faults mismatch)"
                  dir)
           else Some ck)
  in
  let rows_rev = ref [] in
  let quarantine_rev = ref [] in
  let snapshot = ref Telemetry.Snapshot.empty in
  let retries = ref 0 in
  let shards_done = ref 0 in
  let resumed_shards = ref 0 in
  (match restored with
   | None -> ()
   | Some ck ->
     rows_rev := List.rev ck.ck_rows;
     quarantine_rev := List.rev ck.ck_quarantine;
     snapshot := ck.ck_snapshot;
     retries := ck.ck_retries;
     shards_done := ck.ck_shards_done;
     (* every shard we did NOT recompute this process counts as resumed *)
     resumed_shards := ck.ck_resumed_shards + ck.ck_shards_done);
  let total_shards = (n + shard_size - 1) / shard_size in
  let save () =
    match checkpoint with
    | None -> ()
    | Some dir ->
      write_checkpoint ~dir
        { ck_seed = seed; ck_n = n; ck_shard_size = shard_size;
          ck_tools = tool_names; ck_faults = fault_strings;
          ck_shards_done = !shards_done;
          ck_resumed_shards = !resumed_shards; ck_retries = !retries;
          ck_rows = List.rev !rows_rev;
          ck_quarantine = List.rev !quarantine_rev;
          ck_snapshot = !snapshot }
  in
  let process_shard sidx =
    let lo = sidx * shard_size in
    let hi = min n (lo + shard_size) in
    let indices = List.init (hi - lo) (fun k -> lo + k) in
    let outcomes =
      Harness.Pool.maybe_map_results pool
        (fun i ->
           Harness.Supervise.run ~policy ~task:i ~seed:(Tape.mix seed i)
             (fun ~attempt:_ ->
                run_one ~tool_names ~fault_specs:faults ~campaign_seed:seed
                  ?backend i))
        indices
    in
    List.iter2
      (fun i outcome ->
         match outcome with
         | Ok { Harness.Supervise.result = Ok (row, snap); retries = r } ->
           rows_rev := row :: !rows_rev;
           snapshot := Telemetry.Snapshot.merge !snapshot snap;
           retries := !retries + r
         | Ok { result = Error entry; retries = r } ->
           quarantine_rev := entry :: !quarantine_rev;
           retries := !retries + r
         | Error e ->
           (* escaped the supervisor itself (should not happen); treat
              it as a zero-retry quarantine rather than dying *)
           let cls, phase = Harness.Supervise.classify e in
           quarantine_rev :=
             { Harness.Supervise.q_task = i; q_seed = Tape.mix seed i;
               q_class = cls; q_phase = phase; q_attempts = 1;
               q_detail = Printexc.to_string e }
             :: !quarantine_rev)
      indices outcomes;
    incr shards_done;
    save ()
  in
  let last_shard =
    match stop_after_shards with
    | None -> total_shards
    | Some k -> min total_shards (!shards_done + max 0 k)
  in
  while !shards_done < last_shard do
    process_shard !shards_done
  done;
  let rows = List.rev !rows_rev in
  (* shrink only once every shard is in (a partial [stop_after_shards]
     run is checkpoint fodder, not a report); failing rows are
     regenerated from their seeds, so a resumed campaign shrinks
     exactly what an uninterrupted one would *)
  let shrunk =
    if !shards_done < total_shards then []
    else begin
      let failing = List.filter (fun r -> r.failures <> []) rows in
      let failing =
        List.filteri (fun i _ -> i < max_shrink) failing
      in
      List.filter_map
        (fun r ->
           let inject = inject_of_index r.index in
           let task () =
             let fault =
               match faults with
               | [] -> None
               | specs -> Some (Vm.Fault.of_specs ~seed:r.seed specs)
             in
             let fuel =
               Option.map
                 (fun b -> Tir.Fuel.make ~phase:"shrink" ~budget:b)
                 (fuel_budget_of_specs faults)
             in
             let p =
               Gen.generate ~inject (Tape.fresh ~seed:r.seed)
             in
             let fs = Oracle.evaluate ~tools:(tools_of_names tool_names)
                 ?fault ?backend p in
             match
               shrink_failure ~tool_names ?fault ?fuel ?backend ~inject p fs
             with
             | Some s ->
               Some { s with s_row = { s.s_row with index = r.index;
                                       seed = r.seed } }
             | None ->
               (* non-reproducible from its own tape: report unshrunk *)
               Some { s_row = r; s_failures = fs; s_src = p.Gen.src;
                      s_tape = p.Gen.tape;
                      s_lines = Gen.line_count p.Gen.src }
           in
           match
             Harness.Supervise.run ~policy ~task:r.index ~seed:r.seed
               (fun ~attempt:_ -> task ())
           with
           | { Harness.Supervise.result = Ok sh; retries = r' } ->
             retries := !retries + r';
             sh
           | { result = Error entry; retries = r' } ->
             retries := !retries + r';
             quarantine_rev := entry :: !quarantine_rev;
             None)
        failing
    end
  in
  (* shrink-phase quarantines were pushed onto the same ledger, after
     the campaign's own entries *)
  let quarantine = List.rev !quarantine_rev in
  let fuel_exhausted = fuel_exhausted_count quarantine in
  let snapshot =
    (* supervise counters ride the snapshot only when nonzero, so a
       fault-free campaign's telemetry is unchanged *)
    let extra =
      List.filter
        (fun (_, v) -> v > 0)
        [ "supervise_fuel_exhausted", fuel_exhausted;
          "supervise_quarantined", List.length quarantine;
          "supervise_resumed_shards", !resumed_shards;
          "supervise_retries", !retries ]
    in
    if extra = [] then !snapshot
    else
      Telemetry.Snapshot.merge !snapshot
        { Telemetry.Snapshot.empty with counters = extra }
  in
  {
    campaign_seed = seed;
    n;
    tool_names;
    fault_specs = faults;
    rows;
    shrunk;
    quarantine;
    retries = !retries;
    fuel_exhausted;
    resumed_shards = !resumed_shards;
    snapshot;
    clean = List.length (List.filter (fun r -> r.plan = None) rows);
    buggy = List.length (List.filter (fun r -> r.plan <> None) rows);
    false_positives = count_kind rows (has_prefix ~prefix:"false-positive");
    false_negatives = count_kind rows (has_prefix ~prefix:"false-negative");
    divergences = count_kind rows (has_prefix ~prefix:"divergence");
    opt_unsound = count_kind rows (has_prefix ~prefix:"opt-unsound");
    misclassified = count_kind rows (has_prefix ~prefix:"misclassified");
    gen_invalid = count_kind rows (has_prefix ~prefix:"gen-invalid");
  }

let passed s =
  s.false_positives = 0 && s.false_negatives = 0 && s.divergences = 0
  && s.opt_unsound = 0 && s.misclassified = 0 && s.gen_invalid = 0

(* --- final ledgers -------------------------------------------------------- *)

(* The two files the durability contract is judged on: every line
   derives only from fields the checkpoint persists (index, seed, plan,
   failure labels, quarantine entries), so an interrupted-and-resumed
   campaign reproduces them byte for byte. *)
let mismatch_ledger_lines (s : summary) =
  List.filter_map
    (fun r ->
       if r.failures = [] then None
       else
         Some
           (sp "index=%d seed=%x plan=%s failures=%s" r.index r.seed
              (plan_to_field r.plan) (csv_or_dash r.failures)))
    s.rows

let quarantine_ledger_lines (s : summary) =
  List.map Harness.Supervise.entry_to_line s.quarantine

let write_ledgers ~dir (s : summary) : string * string =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name lines =
    let path = Filename.concat dir name in
    Harness.Jsonio.write_lines ~path lines;
    path
  in
  ( write "mismatch.ledger" (mismatch_ledger_lines s),
    write "quarantine.ledger" (quarantine_ledger_lines s) )

(* --- rendering ----------------------------------------------------------- *)

let class_histogram rows =
  List.fold_left
    (fun acc r ->
       match r.plan with
       | None -> acc
       | Some p ->
         let k = Gen.class_name p.Gen.cls in
         (k, 1 + Option.value (List.assoc_opt k acc) ~default:0)
         :: List.remove_assoc k acc)
    [] rows
  |> List.sort compare

(* The header carries everything needed to replay the campaign from the
   log alone: seed, size, job count, tool lineup, fault specs. *)
let render fmt ~jobs (s : summary) =
  Format.fprintf fmt
    "Fuzz campaign: seed=0x%x n=%d jobs=%d tools=cecsan%s%s@."
    s.campaign_seed s.n jobs
    (match s.tool_names with
     | [] -> ""
     | ts -> "," ^ String.concat "," ts)
    (match s.fault_specs with
     | [] -> ""
     | fs ->
       " faults=" ^ String.concat "," (List.map Vm.Fault.spec_to_string fs));
  Format.fprintf fmt "  programs: %d clean + %d bug-injected@." s.clean
    s.buggy;
  List.iter
    (fun (k, v) -> Format.fprintf fmt "    planted %-16s %4d@." k v)
    (class_histogram s.rows);
  Format.fprintf fmt "  false positives   : %d@." s.false_positives;
  Format.fprintf fmt "  false negatives   : %d@." s.false_negatives;
  Format.fprintf fmt "  divergences       : %d@." s.divergences;
  Format.fprintf fmt "  optimizer-unsound : %d@." s.opt_unsound;
  Format.fprintf fmt "  misclassified     : %d@." s.misclassified;
  Format.fprintf fmt "  generator-invalid : %d@." s.gen_invalid;
  Format.fprintf fmt "  quarantined       : %d@."
    (List.length s.quarantine);
  Format.fprintf fmt "  retries           : %d@." s.retries;
  if s.fuel_exhausted > 0 then
    Format.fprintf fmt "  fuel-exhausted    : %d@." s.fuel_exhausted;
  if s.resumed_shards > 0 then
    Format.fprintf fmt "  resumed shards    : %d@." s.resumed_shards;
  if s.quarantine <> [] then begin
    Format.fprintf fmt "@.  QUARANTINE:@.";
    Harness.Supervise.render fmt s.quarantine
  end;
  List.iter
    (fun sh ->
       Format.fprintf fmt
         "@.  FAILURE (program %d, seed 0x%x, shrunk to %d lines):@."
         sh.s_row.index sh.s_row.seed sh.s_lines;
       List.iter
         (fun f ->
            Format.fprintf fmt "    %s: %s@." (Oracle.failure_name f)
              (Oracle.failure_detail f))
         sh.s_failures;
       Format.fprintf fmt "    tape: %s@." (Tape.to_string sh.s_tape);
       List.iter
         (fun l -> Format.fprintf fmt "    | %s@." l)
         (String.split_on_char '\n' sh.s_src))
    s.shrunk;
  Format.fprintf fmt "@.  RESULT: %s@."
    (if passed s then "PASS" else "FAIL")

(* --- resilience degradation table ----------------------------------------- *)

type resilience_row = {
  rs_scenario : string;
  rs_n : int;
  rs_completed : int;      (* programs that produced a verdict *)
  rs_quarantined : int;
  rs_retries : int;
  rs_fuel : int;
  rs_pass : bool;          (* oracle verdicts clean on the survivors *)
}

(* The supervised counterpart of the Harness.Faults grid: each scenario
   runs the same seeded campaign under one injected harness-fault
   class, and the table shows how much of the grid survives. *)
let resilience ?pool ?(n = 240) ?backend ~seed () : resilience_row list =
  (* Calibrated against the generator: most programs allocate only a
     handful of times and compile in well under 2000 fuel steps, so
     crash:3 / fuel:600 kill a slice of the grid, crash:1 / fuel:400
     kill most of it, and fuel:2000 is a watchdog that never fires. *)
  let scenarios =
    [ "none", [];
      "crash:3", [ Vm.Fault.Crash 3 ];
      "crash:1", [ Vm.Fault.Crash 1 ];
      "fuel:2000", [ Vm.Fault.Fuel 2_000 ];
      "fuel:400", [ Vm.Fault.Fuel 400 ] ]
  in
  List.map
    (fun (name, faults) ->
       let s = run ?pool ~faults ~max_shrink:0 ?backend ~seed ~n () in
       { rs_scenario = name;
         rs_n = n;
         rs_completed = List.length s.rows;
         rs_quarantined = List.length s.quarantine;
         rs_retries = s.retries;
         rs_fuel = s.fuel_exhausted;
         rs_pass = passed s })
    scenarios

let render_resilience fmt (rows : resilience_row list) =
  Format.fprintf fmt "Resilience: supervised campaign under injected harness faults@.";
  Format.fprintf fmt "  %-14s %9s %10s %12s %8s %6s %s@." "scenario"
    "programs" "completed" "quarantined" "retries" "fuel" "verdict";
  List.iter
    (fun r ->
       Format.fprintf fmt "  %-14s %9d %10d %12d %8d %6d %s@."
         r.rs_scenario r.rs_n r.rs_completed r.rs_quarantined r.rs_retries
         r.rs_fuel
         (if r.rs_pass then "PASS" else "FAIL"))
    rows

let resilience_json (rows : resilience_row list) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"rows\":[";
  List.iteri
    (fun i r ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (sp
            "{\"scenario\":\"%s\",\"n\":%d,\"completed\":%d,\
             \"quarantined\":%d,\"retries\":%d,\"fuel_exhausted\":%d,\
             \"pass\":%b}"
            r.rs_scenario r.rs_n r.rs_completed r.rs_quarantined
            r.rs_retries r.rs_fuel r.rs_pass))
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b

(* --- repro / corpus files ------------------------------------------------ *)

let repro_contents ~seed ~inject ~(failures : Oracle.failure list)
    ~(tape : int array) (src : string) =
  String.concat "\n"
    ([ "/* cecsan-fuzz repro";
       sp "   seed: 0x%x" seed;
       sp "   inject: %b" inject;
     ]
     @ List.map
       (fun f -> sp "   failure: %s (%s)" (Oracle.failure_name f)
           (Oracle.failure_detail f))
       failures
     @ [ sp "   tape: %s" (Tape.to_string tape); "*/"; src; "" ])

let corpus_contents ~cls ~seed ~(tape : int array) (src : string) =
  String.concat "\n"
    [ "/* cecsan-fuzz corpus entry";
      sp "   class: %s" (Gen.class_name cls);
      sp "   seed: 0x%x" seed;
      sp "   tape: %s" (Tape.to_string tape);
      "   expect: detected by CECSan under Halt and Recover"; "*/"; src;
      "" ]

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let mkdir_p dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

(* Writes shrunk failure repros; returns the paths. *)
let write_repros ~dir (s : summary) : string list =
  if s.shrunk = [] then []
  else begin
    mkdir_p dir;
    List.map
      (fun sh ->
         let path =
           Filename.concat dir
             (sp "repro_%04d_%s.mc" sh.s_row.index
                (match sh.s_failures with
                 | f :: _ ->
                   String.map
                     (function ':' -> '_' | c -> c)
                     (Oracle.failure_name f)
                 | [] -> "unknown"))
         in
         write_file path
           (repro_contents ~seed:sh.s_row.seed
              ~inject:(inject_of_index sh.s_row.index)
              ~failures:sh.s_failures ~tape:sh.s_tape sh.s_src);
         path)
      s.shrunk
  end

(* Seeds a regression corpus: the first [count] bug-injected programs
   that CECSan detects, each shrunk to the smallest tape on which the
   SAME class is still planted and still detected (with the right
   kind).  Deterministic in [seed]. *)
let write_corpus ~dir ~seed ~count ?backend () : string list =
  mkdir_p dir;
  let detect_same_class cls tape =
    let p = Gen.generate ~inject:true (Tape.replay tape) in
    match p.Gen.plan with
    | Some pl when pl.Gen.cls = cls ->
      (match
         Oracle.run_tool (Cecsan.sanitizer ()) ?backend ~optimize:true
           p.Gen.src
       with
       | tr ->
         tr.Oracle.detected
         && (match tr.Oracle.first_kind with
             | Some k -> Oracle.kind_ok cls k
             | None -> false)
       | exception Oracle.Compile_error _ -> false)
    | _ -> false
  in
  let rec go i collected paths =
    if collected >= count || i > 10_000 then List.rev paths
    else
      let pseed = Tape.mix seed i in
      let p = Gen.generate ~inject:true (Tape.fresh ~seed:pseed) in
      match p.Gen.plan with
      | Some pl when detect_same_class pl.Gen.cls p.Gen.tape ->
        let tape =
          Shrink.minimize ~still_fails:(detect_same_class pl.Gen.cls)
            p.Gen.tape
        in
        let p_min = Gen.generate ~inject:true (Tape.replay tape) in
        let path =
          Filename.concat dir
            (sp "%02d_%s.mc" collected (Gen.class_name pl.Gen.cls))
        in
        write_file path
          (corpus_contents ~cls:pl.Gen.cls ~seed:pseed ~tape p_min.Gen.src);
        go (i + 1) (collected + 1) (path :: paths)
      | _ -> go (i + 1) collected paths
  in
  go 1 0 []

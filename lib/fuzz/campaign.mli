(** Seeded differential campaigns over [Harness.Pool]: per-program
    derived seeds, submission-order deterministic verdicts (identical at
    any job count), shrunk failure repros, and corpus seeding.

    Supervised execution (DESIGN.md section 13): every per-program task
    runs under [Harness.Supervise]; tasks that die (injected crash,
    fuel exhaustion, stack overflow) are retried deterministically and
    then quarantined instead of aborting.  The campaign proceeds in
    shards with an atomic checkpoint after each, and [resume] restores
    mid-campaign state so a killed-and-resumed run produces
    byte-identical final ledgers to an uninterrupted one. *)

type row = {
  index : int;
  seed : int;                 (** per-program derived seed *)
  plan : Gen.plan option;
  failures : string list;     (** [Oracle.failure_name] labels *)
}

type shrunk = {
  s_row : row;
  s_failures : Oracle.failure list;
  s_src : string;             (** minimized repro source *)
  s_tape : int array;
  s_lines : int;
}

type cov_row = {
  cr_shard : int;
  cr_phase : string;          (** ["gen"] or ["mutate"] *)
  cr_bits : int;              (** accumulated bitmap cardinality *)
  cr_sites : int;             (** distinct site ids in the bitmap *)
  cr_corpus : int;            (** corpus size after the shard *)
}
(** One coverage-over-time sample, recorded after each guided shard. *)

type summary = {
  campaign_seed : int;
  n : int;
  tool_names : string list;
  fault_specs : Vm.Fault.spec list;
  rows : row list;            (** programs that produced a verdict *)
  shrunk : shrunk list;
  quarantine : Harness.Supervise.entry list;
      (** tasks that kept dying, in submission order (shrink-phase
          entries last) *)
  retries : int;              (** re-attempts made across all tasks *)
  fuel_exhausted : int;       (** quarantined with class ["fuel"] *)
  resumed_shards : int;       (** shards restored from a checkpoint *)
  snapshot : Telemetry.Snapshot.t;
      (** CECSan(-O2) telemetry merged over the grid in submission
          order: identical at any job count.  Supervise counters
          ([supervise_retries], [supervise_quarantined],
          [supervise_fuel_exhausted], [supervise_resumed_shards]) are
          merged in only when nonzero. *)
  guided : bool;
  mutate_only : bool;
  coverage : Coverage.t;
      (** accumulated bitmap, unioned in submission order (empty for a
          blind campaign) *)
  corpus : Corpus.t;
  cov_rows : cov_row list;    (** one per guided shard, oldest first *)
  gen_programs : int;         (** programs run in generation shards *)
  mut_programs : int;         (** programs run in mutation shards *)
  gen_admitted : int;         (** corpus admissions from generation *)
  mut_admitted : int;         (** corpus admissions from mutation *)
  clean : int;
  buggy : int;
  false_positives : int;
  false_negatives : int;
  divergences : int;
  opt_unsound : int;
  misclassified : int;
  gen_invalid : int;
}

val inject_of_index : int -> bool
(** Odd program indices carry a planted bug. *)

val checkpoint_file : string
(** ["campaign.v1.ckpt"], the file [run ~checkpoint:dir] maintains. *)

val run :
  ?pool:Harness.Pool.t -> ?tool_names:string list -> ?max_shrink:int ->
  ?faults:Vm.Fault.spec list -> ?policy:Harness.Supervise.policy ->
  ?checkpoint:string -> ?resume:bool -> ?shard_size:int ->
  ?stop_after_shards:int -> ?backend:Vm.Machine.backend ->
  ?guided:bool -> ?mutate_only:bool -> seed:int ->
  n:int -> unit -> summary
(** Runs the campaign in shards of [shard_size] (default 256) programs;
    shrinks up to [max_shrink] failures (default 5) sequentially after
    the last shard.

    [faults] injects one [Vm.Fault] spec set into every program's runs
    (each derives its own seeded injector); [Crash]/[Fuel] specs kill
    tasks, which the [policy] (default [Supervise.default_policy])
    retries and then quarantines.

    [checkpoint] names a directory to keep an atomic
    {!checkpoint_file} in, rewritten after every shard; [resume]
    (requires [checkpoint]) restores it and continues from the first
    unfinished shard.  A missing or unreadable checkpoint is a fresh
    start; a checkpoint whose seed/n/shard_size/tools/faults disagree
    with the arguments raises [Invalid_argument].

    [stop_after_shards] processes at most that many further shards and
    returns (shrink skipped) -- the deterministic stand-in for getting
    killed mid-campaign in tests.

    [backend] threads into every run of the grid (explicitly, never via
    the [Driver.default_backend] ref); verdicts, ledgers and snapshots
    are bit-for-bit identical on either backend.

    [guided] turns on coverage feedback (DESIGN.md section 17): each
    program's runs additionally produce a [Coverage] bitmap, shards
    alternate generation (even) and mutation (odd, tapes drawn from the
    corpus snapshot at shard start and mutated via [Mutate]), and
    coverage-novel tapes are admitted to the corpus sequentially in
    submission order.  [mutate_only] (implies [guided]) makes every
    shard after the first admission a mutation shard.  The corpus is
    embedded in the checkpoint (plus a derived standalone
    [Corpus.corpus_file] in the same directory), so kill-and-resume
    reproduces corpus, bitmap and ledgers byte for byte at any -j.
    Guided campaigns skip the shrink phase (mutation rows are not
    regenerable from their seeds alone). *)

val passed : summary -> bool
(** Oracle verdicts only; quarantined tasks are reported, not failed. *)

val blind_coverage :
  ?pool:Harness.Pool.t -> ?tool_names:string list ->
  ?backend:Vm.Machine.backend -> seed:int -> n:int -> unit -> Coverage.t
(** The control arm of the guided-beats-blind inequality: the bitmap a
    plain generation-only grid of [n] programs reaches (program [i] is
    exactly the blind campaign's program [i]). *)

val fuzzcov_json : blind:Coverage.t -> summary -> string
(** The BENCH_fuzzcov.json artifact (schema [cecsan-bench-fuzzcov/1]):
    guided bits/sites/corpus/mismatches, per-phase counts,
    coverage-over-time rows, and the blind baseline -- no wall clock,
    byte-identical at any -j and across kill-and-resume. *)

val render : Format.formatter -> jobs:int -> summary -> unit
(** The header line carries seed, n, jobs, tools and fault specs, so
    any campaign is reproducible from the log alone. *)

val mismatch_ledger_lines : summary -> string list
val quarantine_ledger_lines : summary -> string list

val write_ledgers : dir:string -> summary -> string * string
(** Writes [mismatch.ledger] and [quarantine.ledger] (atomically) into
    [dir] and returns their paths.  Every line derives only from
    checkpoint-persisted fields, so interrupted-and-resumed campaigns
    reproduce both files byte for byte at any job count. *)

type resilience_row = {
  rs_scenario : string;
  rs_n : int;
  rs_completed : int;
  rs_quarantined : int;
  rs_retries : int;
  rs_fuel : int;
  rs_pass : bool;
}

val resilience : ?pool:Harness.Pool.t -> ?n:int ->
  ?backend:Vm.Machine.backend -> seed:int -> unit -> resilience_row list
(** The degradation table behind [bench --resilience]: the same seeded
    campaign (default 240 programs) under none / crash / fuel injection
    scenarios, showing how much of the grid survives supervision. *)

val render_resilience : Format.formatter -> resilience_row list -> unit

val resilience_json : resilience_row list -> string
(** Deterministic single-line JSON for the BENCH_resilience.json
    artifact. *)

val shrink_failure :
  tool_names:string list -> ?fault:Vm.Fault.t -> ?fuel:Tir.Fuel.t ->
  ?backend:Vm.Machine.backend -> inject:bool -> Gen.program ->
  Oracle.failure list -> shrunk option
(** Minimizes one failing case; [None] if its own tape does not
    reproduce the failure.  [fault] threads into every candidate
    evaluation; [fuel] bounds the whole minimization. *)

val repro_contents :
  seed:int -> inject:bool -> failures:Oracle.failure list ->
  tape:int array -> string -> string

val write_repros : dir:string -> summary -> string list
(** Writes each shrunk failure as a standalone [.mc] file; returns the
    paths. *)

val write_corpus :
  dir:string -> seed:int -> count:int -> ?backend:Vm.Machine.backend ->
  unit -> string list
(** Seeds a regression corpus: detected bug-injected programs, each
    shrunk while CECSan still detects the same class, admitted on
    coverage novelty, and reduced to the greedy set cover -- the
    written corpus is a fixed point of [Corpus.minimize].  Writes at
    most [count] entries. *)

val check_corpus_minimal :
  dir:string -> ?backend:Vm.Machine.backend -> unit ->
  (string list, string) result
(** [Ok []] iff the committed .mc corpus in [dir] is set-cover minimal
    (each entry's bitmap rebuilt from its tape header; minimizing drops
    nothing); [Ok files] names the redundant entries, [Error] an
    unreadable corpus. *)

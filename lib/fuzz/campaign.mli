(** Seeded differential campaigns over [Harness.Pool]: per-program
    derived seeds, submission-order deterministic verdicts (identical at
    any job count), shrunk failure repros, and corpus seeding. *)

type row = {
  index : int;
  seed : int;                 (** per-program derived seed *)
  plan : Gen.plan option;
  failures : string list;     (** [Oracle.failure_name] labels *)
}

type shrunk = {
  s_row : row;
  s_failures : Oracle.failure list;
  s_src : string;             (** minimized repro source *)
  s_tape : int array;
  s_lines : int;
}

type summary = {
  campaign_seed : int;
  n : int;
  tool_names : string list;
  rows : row list;
  shrunk : shrunk list;
  snapshot : Telemetry.Snapshot.t;
      (** CECSan(-O2) telemetry merged over the grid in submission
          order: identical at any job count *)
  clean : int;
  buggy : int;
  false_positives : int;
  false_negatives : int;
  divergences : int;
  opt_unsound : int;
  misclassified : int;
  gen_invalid : int;
}

val inject_of_index : int -> bool
(** Odd program indices carry a planted bug. *)

val run :
  ?pool:Harness.Pool.t -> ?tool_names:string list -> ?max_shrink:int ->
  seed:int -> n:int -> unit -> summary
(** Runs the campaign; shrinks up to [max_shrink] failures (default 5)
    sequentially after the parallel phase. *)

val passed : summary -> bool

val render : Format.formatter -> jobs:int -> summary -> unit
(** The header line carries seed, n, jobs and tools, so any campaign is
    reproducible from the log alone. *)

val shrink_failure :
  tool_names:string list -> inject:bool -> Gen.program ->
  Oracle.failure list -> shrunk option
(** Minimizes one failing case; [None] if its own tape does not
    reproduce the failure. *)

val repro_contents :
  seed:int -> inject:bool -> failures:Oracle.failure list ->
  tape:int array -> string -> string

val write_repros : dir:string -> summary -> string list
(** Writes each shrunk failure as a standalone [.mc] file; returns the
    paths. *)

val write_corpus : dir:string -> seed:int -> count:int -> unit -> string list
(** Seeds a regression corpus with the first [count] detected
    bug-injected programs, each shrunk while CECSan still detects the
    same class. *)

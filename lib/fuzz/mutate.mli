(** Tape mutation engine over the "any int array is a valid tape"
    contract: splice, havoc, interesting-value substitution,
    truncate/extend, and crossover between corpus tapes.  Randomness
    comes from a caller-seeded [Tape.t] PRNG, so a mutation schedule is
    a pure function of its seed — deterministic and independent of pool
    interleaving.  Every produced entry is non-negative (a negative
    entry would replay as a negative draw). *)

type op = Splice | Havoc | Interesting | Truncate | Extend | Crossover

val all_ops : op list
val op_name : op -> string
val op_of_name : string -> op option

val interesting : int array
(** Substitution values aimed at the generator's draw sites (small
    selector indices, boundary counts, large mod-stressing values). *)

val apply : op -> rng:Tape.t -> ?partner:int array -> int array -> int array
(** Applies one operator.  [partner] (default: the tape itself) feeds
    splice and crossover. *)

val mutate : rng:Tape.t -> ?partner:int array -> int array -> op * int array
(** Draws an operator from [rng], applies it, and returns both. *)

(* Fuzz.Gen: a seeded generator of well-defined MiniC programs, with an
   optional bug-injection mode that plants exactly one labeled
   memory-safety defect.

   Clean programs are deterministic and allocator-layout independent by
   construction, so every sanitizer must reproduce the uninstrumented
   run byte for byte (stdout + exit code):

   - every object is fully initialized at creation (memset / fill loop /
     calloc), so no read ever observes recycled allocator contents;
   - no pointer VALUE ever reaches stdout or the exit code, only data,
     so redzone allocators (ASan) and tagged pointers (HWASan) cannot
     perturb the output;
   - all loops have constant bounds, so termination is structural and
     the run fits any sane cycle budget.

   Bug injection appends one flawed action at the end of the program.
   The ground truth -- class, far/adjacent, victim size alignment -- is
   machine-readable in [plan], which is what the oracle's capability
   matrix keys on (DESIGN.md section 3 / section 10). *)

let sp = Printf.sprintf

type bug_class =
  | Spatial_heap
  | Spatial_stack
  | Spatial_global
  | Subobject
  | Uaf
  | Double_free
  | Invalid_free

let all_classes =
  [ Spatial_heap; Spatial_stack; Spatial_global; Subobject; Uaf;
    Double_free; Invalid_free ]

let class_name = function
  | Spatial_heap -> "spatial-heap"
  | Spatial_stack -> "spatial-stack"
  | Spatial_global -> "spatial-global"
  | Subobject -> "subobject"
  | Uaf -> "uaf"
  | Double_free -> "double-free"
  | Invalid_free -> "invalid-free"

let class_of_name s =
  List.find_opt (fun c -> String.equal (class_name c) s) all_classes

type plan = {
  cls : bug_class;
  far : bool;        (* the OOB stride jumps well past any redzone *)
  write : bool;      (* the flawed access is a write (else a read) *)
  granule16 : bool;  (* victim byte size is a multiple of 16 *)
}

type program = {
  src : string;
  plan : plan option;
  tape : int array;
}

(* --- the scene: objects the generated program owns ----------------------- *)

type region = Heap | Stack | Global

type obj = {
  name : string;
  elem : string;            (* "char" | "int" | "long" *)
  esize : int;
  mutable count : int;      (* elements *)
  region : region;
  mutable freed : bool;
}

let generate ?(inject = false) ?fuel (t : Tape.t) : program =
  (* The plan is drawn FIRST so a shrunk tape prefix keeps the class
     stable for as long as possible. *)
  let plan =
    if inject then
      Some
        {
          cls = Tape.pick t all_classes;
          far = Tape.bool t;
          write = Tape.bool t;
          granule16 = false (* filled in once the victim is chosen *);
        }
    else None
  in
  let globals = ref [] in
  let body = ref [] in
  (* one fuel step per emitted statement: generation cost is a property
     of the program being built, not of the machine building it *)
  let emit s =
    Tir.Fuel.burn fuel 1;
    body := s :: !body
  in
  let objs : obj list ref = ref [] in
  let next_id = ref 0 in
  let fresh p =
    let n = sp "%s%d" p !next_id in
    incr next_id;
    n
  in
  let add o = objs := !objs @ [ o ] in
  let live region =
    List.filter (fun o -> o.region = region && not o.freed) !objs
  in
  let live_elem region elem =
    List.filter (fun o -> String.equal o.elem elem) (live region)
  in
  (* --- object constructors (always fully initialized) --- *)
  let mk_global () =
    let count = 4 + (4 * Tape.draw t 7) in
    let name = fresh "g" in
    globals := !globals @ [ sp "int %s[%d];" name count ];
    (* globals are zero-initialized by the loader: already defined *)
    add { name; elem = "int"; esize = 4; count; region = Global;
          freed = false }
  in
  let mk_stack () =
    let name = fresh "s" in
    if Tape.bool t then begin
      let count = 8 + Tape.draw t 25 in
      emit (sp "char %s[%d];" name count);
      emit (sp "memset(%s, %d, %d);" name (65 + Tape.draw t 26) count);
      add { name; elem = "char"; esize = 1; count; region = Stack;
            freed = false }
    end
    else begin
      let count = 4 + Tape.draw t 13 in
      let i = fresh "i" in
      emit (sp "int %s[%d];" name count);
      emit (sp "for (int %s = 0; %s < %d; %s++) %s[%s] = %s + %d;" i i count
              i name i i (Tape.draw t 50));
      add { name; elem = "int"; esize = 4; count; region = Stack;
            freed = false }
    end
  in
  let mk_heap () =
    let name = fresh "h" in
    match Tape.draw t 3 with
    | 0 ->
      let count = 8 + Tape.draw t 25 in
      emit (sp "char *%s = (char*)malloc(%d);" name count);
      emit (sp "memset(%s, %d, %d);" name (65 + Tape.draw t 26) count);
      add { name; elem = "char"; esize = 1; count; region = Heap;
            freed = false }
    | 1 ->
      let count = 4 + Tape.draw t 13 in
      let i = fresh "i" in
      emit (sp "int *%s = (int*)malloc(%d * sizeof(int));" name count);
      emit (sp "for (int %s = 0; %s < %d; %s++) %s[%s] = %s * %d;" i i count
              i name i i (1 + Tape.draw t 9));
      add { name; elem = "int"; esize = 4; count; region = Heap;
            freed = false }
    | _ ->
      let count = 4 + Tape.draw t 13 in
      emit (sp "long *%s = (long*)calloc(%d, sizeof(long));" name count);
      add { name; elem = "long"; esize = 8; count; region = Heap;
            freed = false }
  in
  (* --- the fixed prologue: one of each region, so every bug class has
     a victim no matter what the action draws do --- *)
  mk_global ();
  emit "int sum = 0;";
  let heap0 =
    let count = 8 + Tape.draw t 25 in
    let name = fresh "h" in
    emit (sp "char *%s = (char*)malloc(%d);" name count);
    emit (sp "memset(%s, %d, %d);" name (65 + Tape.draw t 26) count);
    let o =
      { name; elem = "char"; esize = 1; count; region = Heap; freed = false }
    in
    add o;
    o
  in
  ignore heap0;
  let stack0 =
    let count = 8 + Tape.draw t 25 in
    let name = fresh "s" in
    emit (sp "char %s[%d];" name count);
    emit (sp "memset(%s, %d, %d);" name (65 + Tape.draw t 26) count);
    let o =
      { name; elem = "char"; esize = 1; count; region = Stack;
        freed = false }
    in
    add o;
    o
  in
  (* --- random actions --- *)
  let pick_live () =
    match live Heap @ live Stack @ live Global with
    | [] -> None
    | xs -> Some (Tape.pick t xs)
  in
  let cast_of o = if String.equal o.elem "int" then "" else "(int)" in
  let action () =
    match Tape.draw t 12 with
    | 0 -> mk_heap ()
    | 1 -> mk_stack ()
    | 2 -> mk_global ()
    | 3 ->
      (* fill loop *)
      (match pick_live () with
       | None -> ()
       | Some o ->
         let i = fresh "i" in
         emit (sp "for (int %s = 0; %s < %d; %s++) %s[%s] = %s %% %d;" i i
                 o.count i o.name i i (2 + Tape.draw t 120)))
    | 4 ->
      (* in-bounds point write *)
      (match pick_live () with
       | None -> ()
       | Some o ->
         emit (sp "%s[%d] = %d;" o.name (Tape.draw t o.count)
                 (Tape.draw t 100)))
    | 5 ->
      (* checksum read loop *)
      (match pick_live () with
       | None -> ()
       | Some o ->
         let i = fresh "i" in
         emit (sp "for (int %s = 0; %s < %d; %s++) sum = sum + %s%s[%s];" i i
                 o.count i (cast_of o) o.name i))
    | 6 ->
      (* pointer-arithmetic read, heap pointers only *)
      (match live Heap with
       | [] -> ()
       | xs ->
         let o = Tape.pick t xs in
         emit (sp "sum = sum + %s*(%s + %d);" (cast_of o) o.name
                 (Tape.draw t o.count)))
    | 7 ->
      (* memcpy between two distinct same-element objects *)
      (let candidates = live_elem Heap "char" @ live_elem Stack "char" in
       match candidates with
       | a :: _ :: _ ->
         let b = Tape.pick t (List.filter (fun o -> o != a) candidates) in
         let len = 1 + Tape.draw t (min a.count b.count) in
         emit (sp "memcpy(%s, %s, %d);" a.name b.name len)
       | _ -> ())
    | 8 ->
      (* realloc-grow a heap char object, then define the new tail *)
      (match live_elem Heap "char" with
       | [] -> ()
       | xs ->
         let o = Tape.pick t xs in
         let grow = 8 + Tape.draw t 17 in
         emit (sp "%s = (char*)realloc(%s, %d);" o.name o.name
                 (o.count + grow));
         emit (sp "memset(%s + %d, %d, %d);" o.name o.count
                 (97 + Tape.draw t 26) grow);
         o.count <- o.count + grow)
    | 9 ->
      (* free a heap object, keeping at least one alive for the plan *)
      (match live Heap with
       | (_ :: _ :: _) as xs ->
         let o = Tape.pick t xs in
         emit (sp "free(%s);" o.name);
         o.freed <- true
       | _ -> ())
    | 10 ->
      (* extern call: tag stripping at the boundary *)
      (match live_elem Heap "char" @ live_elem Stack "char" with
       | [] -> emit (sp "sum = sum + ext_note(sum & %d);" (Tape.draw t 64))
       | xs ->
         let o = Tape.pick t xs in
         emit (sp "sum = sum + ext_sum(%s, %d);" o.name o.count))
    | _ ->
      (* struct locals and a data-dependent branch *)
      if Tape.bool t then begin
        let m = fresh "m" in
        emit (sp "struct Mix %s;" m);
        emit (sp "memset(%s.tag, %d, 16);" m (65 + Tape.draw t 26));
        emit (sp "%s.a = %d; %s.b = %d;" m (Tape.draw t 100) m
                (Tape.draw t 100));
        emit (sp "sum = sum + %s.tag[%d] + (int)%s.a;" m (Tape.draw t 16) m)
      end
      else
        emit (sp "if ((sum & %d) == 0) { sum = sum + %d; } else { sum = sum - %d; }"
                (1 + Tape.draw t 7) (Tape.draw t 50) (Tape.draw t 50))
  in
  let n_actions = Tape.draw t 9 in
  for _ = 1 to n_actions do action () done;
  (* --- bug injection ------------------------------------------------ *)
  let plan =
    match plan with
    | None -> None
    | Some p ->
      let heap_victim () =
        match live Heap with
        | [] -> assert false (* the prologue object is never freed last *)
        | xs -> Tape.pick t xs
      in
      let oob o (p : plan) =
        let off =
          if p.far then o.count + ((72 + o.esize - 1) / o.esize)
          else o.count
        in
        if p.write then emit (sp "%s[%d] = %d;" o.name off (Tape.draw t 100))
        else emit (sp "sum = sum + %s%s[%d];" (cast_of o) o.name off);
        { p with granule16 = o.count * o.esize mod 16 = 0 }
      in
      Some
        (match p.cls with
         | Spatial_heap -> oob (heap_victim ()) p
         | Spatial_stack ->
           let o =
             match live Stack with [] -> stack0 | xs -> Tape.pick t xs
           in
           oob o p
         | Spatial_global -> oob (Tape.pick t (live Global)) p
         | Subobject ->
           (* memcpy past a field but inside the allocation: the class
              only CECSan's narrowing catches *)
           emit "struct Mix bugs;";
           emit "char bugsrc[32];";
           emit (sp "memset(bugsrc, %d, 32);" (65 + Tape.draw t 26));
           emit (sp "bugs.a = %d;" (Tape.draw t 100));
           emit "memcpy(bugs.tag, bugsrc, sizeof(struct Mix));";
           emit "sum = sum + bugs.tag[0] + (int)bugs.a;";
           { p with far = false; write = true; granule16 = true }
         | Uaf ->
           let o = heap_victim () in
           emit (sp "free(%s);" o.name);
           o.freed <- true;
           if p.write then emit (sp "%s[0] = %d;" o.name (Tape.draw t 100))
           else emit (sp "sum = sum + %s%s[0];" (cast_of o) o.name);
           { p with far = false; granule16 = o.count * o.esize mod 16 = 0 }
         | Double_free ->
           let o = heap_victim () in
           emit (sp "free(%s);" o.name);
           emit (sp "free(%s);" o.name);
           o.freed <- true;
           { p with far = false; write = false; granule16 = true }
         | Invalid_free ->
           if Tape.bool t then begin
             let o = heap_victim () in
             emit (sp "free(%s + %d);" o.name (1 + Tape.draw t (o.count - 1)))
           end
           else begin
             let o =
               match live Stack with [] -> stack0 | xs -> Tape.pick t xs
             in
             emit (sp "free(%s);" o.name)
           end;
           { p with far = false; write = false; granule16 = true })
  in
  (* clean programs release every surviving heap object before exit:
     leak-freedom is part of the oracle contract (the VM's live
     allocation count must return to zero), and the frees exercise
     Algorithm 2 on every run *)
  if plan = None then
    List.iter
      (fun o ->
         if o.region = Heap && not o.freed then begin
           emit (sp "free(%s);" o.name);
           o.freed <- true
         end)
      !objs;
  emit "printf(\"S:%d\\n\", sum & 65535);";
  emit "return sum & 63;";
  let header =
    [ "struct Mix { char tag[16]; long a; long b; };";
      "extern int ext_sum(char *p, int n);";
      "extern int ext_note(int x);" ]
    @ !globals
  in
  let src =
    String.concat "\n"
      (header
       @ [ "int main() {" ]
       @ List.rev_map (fun s -> "  " ^ s) !body
       @ [ "}" ])
  in
  { src; plan; tape = Tape.recorded t }

let line_count src =
  List.length (String.split_on_char '\n' src)

(** The generator's decision tape: a seeded splitmix PRNG whose every
    draw is recorded, and which can replay an arbitrary int array (with
    0-defaults past the end).  Any int array is a valid tape, which is
    what makes delta debugging over it ([Shrink]) sound. *)

type t

val mix : int -> int -> int
(** [mix seed i] splits a campaign seed into the [i]-th independent
    per-program seed. *)

val fresh : seed:int -> t
(** Draws come from the PRNG; all are recorded. *)

val replay : int array -> t
(** Draws come from the array ([mod bound]); 0 once it runs out. *)

val draw : t -> int -> int
(** [draw t bound] is uniform-ish in [0, bound). *)

val bool : t -> bool

val rand : t -> int
(** Full-range non-negative draw ([draw t max_int]); the deterministic
    PRNG surface the mutation engine ([Mutate]) is seeded through. *)

val range : t -> int -> int -> int
(** [range t lo hi] inclusive. *)

val pick : t -> 'a list -> 'a

val recorded : t -> int array
(** Every decision made so far, in draw order; [replay (recorded t)]
    reproduces the same draw sequence. *)

val to_string : int array -> string
(** Comma-separated, for repro headers. *)

val of_string : string -> int array option

(* Fuzz.Mutate: the tape mutation engine.

   Every operator maps (tape, optional partner tape) to a new int
   array.  Because Tape.replay is total — any int array is a valid tape,
   out-of-range values are reduced mod the draw bound and exhausted
   tapes fall back to 0 — mutation needs no grammar awareness: each
   operator is pure array surgery, and Gen turns whatever comes out into
   a type-checking, terminating MiniC program.

   Randomness comes from a caller-provided [Tape.t] used as a recorded
   splitmix PRNG (the whole repository's one PRNG family), so a mutation
   schedule is a pure function of its seed: the guided campaign seeds
   one engine per program index via [Tape.mix], making schedules
   deterministic and independent of pool interleaving.

   All produced values are non-negative: [Tape.draw]'s reduction is a
   plain [mod], so a negative entry would replay as a negative choice
   and crash the generator.  The operators only ever write draws from
   [Tape.draw]/[Tape.rand] or the interesting-value list, all >= 0. *)

type op = Splice | Havoc | Interesting | Truncate | Extend | Crossover

let all_ops = [ Splice; Havoc; Interesting; Truncate; Extend; Crossover ]

let op_name = function
  | Splice -> "splice"
  | Havoc -> "havoc"
  | Interesting -> "interesting"
  | Truncate -> "truncate"
  | Extend -> "extend"
  | Crossover -> "crossover"

let op_of_name s = List.find_opt (fun o -> String.equal (op_name o) s) all_ops

(* Values that matter to the generator's draw sites: small choice
   indices (action selectors draw mod 12, class selectors mod 7), the
   boundary counts, and a couple of large values that stress the mod
   reduction. *)
let interesting =
  [| 0; 1; 2; 3; 4; 5; 6; 7; 8; 11; 12; 15; 16; 24; 25; 31; 63; 100; 255;
     1023; 65535 |]

(* a nonempty working copy: operators index freely into the base *)
let base_of tape = if Array.length tape = 0 then [| 0 |] else Array.copy tape

let splice rng ~partner tape =
  let a = base_of tape in
  let b = base_of partner in
  let len = 1 + Tape.draw rng (Array.length b) in
  let src = Tape.draw rng (max 1 (Array.length b - len + 1)) in
  let dst = Tape.draw rng (Array.length a) in
  let n = min len (Array.length a - dst) in
  Array.blit b src a dst n;
  a

let havoc rng tape =
  let a = base_of tape in
  let hits = 1 + Tape.draw rng (max 1 (Array.length a / 4)) in
  for _ = 1 to hits do
    let i = Tape.draw rng (Array.length a) in
    a.(i) <- (if Tape.bool rng then Tape.draw rng 32 else Tape.rand rng)
  done;
  a

let interesting_sub rng tape =
  let a = base_of tape in
  let hits = 1 + Tape.draw rng 4 in
  for _ = 1 to hits do
    let i = Tape.draw rng (Array.length a) in
    a.(i) <- interesting.(Tape.draw rng (Array.length interesting))
  done;
  a

let truncate rng tape =
  let a = base_of tape in
  let keep = 1 + Tape.draw rng (Array.length a) in
  Array.sub a 0 keep

let extend rng tape =
  let a = base_of tape in
  let extra = 1 + Tape.draw rng 24 in
  Array.append a (Array.init extra (fun _ -> Tape.draw rng 32))

let crossover rng ~partner tape =
  let a = base_of tape in
  let b = base_of partner in
  let cut_a = Tape.draw rng (Array.length a + 1) in
  let cut_b = Tape.draw rng (Array.length b + 1) in
  Array.append (Array.sub a 0 cut_a)
    (Array.sub b cut_b (Array.length b - cut_b))

let apply op ~rng ?partner tape =
  let partner = match partner with Some p -> p | None -> tape in
  match op with
  | Splice -> splice rng ~partner tape
  | Havoc -> havoc rng tape
  | Interesting -> interesting_sub rng tape
  | Truncate -> truncate rng tape
  | Extend -> extend rng tape
  | Crossover -> crossover rng ~partner tape

(* Draw an operator, then apply it.  Partner-less engines degrade
   splice/crossover to self-splice (still productive: it reorders
   decision runs). *)
let mutate ~rng ?partner tape =
  let op = List.nth all_ops (Tape.draw rng (List.length all_ops)) in
  (op, apply op ~rng ?partner tape)

(** Coverage-keyed tape corpus: a tape is admitted iff its bitmap
    lights a (leg, site, kind) bit the accumulated bitmap lacks, so the
    accumulated bitmap always equals the union of the entries' bitmaps.
    Admission runs sequentially in submission order, which keeps the
    corpus byte-identical at any pool job count.  The on-disk format is
    line-based, written atomically via [Harness.Jsonio], and round-trips
    byte for byte. *)

type entry = {
  e_id : int;            (** admission index, stable across [minimize] *)
  e_seed : int;          (** the engine seed the tape came from *)
  e_phase : string;      (** ["gen"] or ["mutate:<op>"]; no spaces *)
  e_tape : int array;
  e_cov : Coverage.t;    (** the entry's own bitmap *)
}

type t

val empty : t

val size : t -> int

val entries : t -> entry list
(** In admission order. *)

val accumulated : t -> Coverage.t
(** Union of the entries' bitmaps. *)

val nth_tape : t -> int -> int array
(** [nth_tape c i] is entry [i]'s tape (admission order);
    [Invalid_argument] out of range. *)

val admit :
  t -> seed:int -> phase:string -> tape:int array -> cov:Coverage.t ->
  t * bool
(** [admit c ~seed ~phase ~tape ~cov] returns the possibly-grown corpus
    and whether the tape was admitted (its bitmap was novel against the
    accumulated bitmap).  Call in submission order only. *)

val favored : t -> entry list
(** AFL-style favored set: the top quarter of entries (at least one)
    ranked by distinct sites, bitmap cardinality, then recency.
    Mutation bases are drawn from here. *)

val minimize : t -> t
(** Greedy set cover: keeps the entry with the most still-uncovered
    bits (ties to the lowest admission id) until the accumulated bitmap
    is fully covered.  Deterministic, idempotent, coverage-preserving;
    entry ids survive. *)

val corpus_file : string
(** ["corpus.v1.ckpt"], written next to [campaign.v1.ckpt]. *)

val of_entries : entry list -> t
(** Rebuilds corpus state from entries in admission order (accumulated
    bitmap and next id are derived, never stored). *)

val entry_to_line : entry -> string
val entry_of_line : string -> entry option
(** One-entry (de)serialization, used by the campaign checkpoint to
    embed the corpus so checkpoint + corpus commit atomically. *)

val to_lines : t -> string list
val of_lines : string list -> t option

val save : dir:string -> t -> string
(** Atomic (tmp + rename); creates [dir]; returns the path written. *)

val load : dir:string -> t option
(** [None] on a missing or unparseable file — a fresh corpus is always
    a correct recovery. *)

val render : Format.formatter -> t -> unit

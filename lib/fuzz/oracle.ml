(* Fuzz.Oracle: the differential verdict machinery.

   Each generated program runs uninstrumented (the ground truth) and
   under CECSan in Halt and Recover modes with the optimizer on and off,
   plus any selected baselines.  The verdict rules mirror DESIGN.md
   section 3's capability matrix:

   - false positive: a clean program drew a report from any tool;
   - divergence: on a clean program, an instrumented run's stdout or
     exit code differs from the uninstrumented run (clean programs are
     allocator-layout independent by construction, so any difference is
     an instrumentation bug);
   - false negative: a planted bug was missed by a sanitizer whose
     capability matrix row says it MUST catch that class (the matrix
     below encodes only the unambiguous cells; "tag-collision chance"
     style cells are never required);
   - misclassified: CECSan caught the planted bug but reported the
     wrong kind (only CECSan is held to kind accuracy);
   - optimizer unsoundness: CECSan detects with the optimizer on but
     not off, or vice versa. *)

let sp = Printf.sprintf

(* Extern implementations registered for every run (generated programs
   may call these; they model precompiled legacy code).  [effective]
   applies the TBI address mask so HWASan-tagged pointers translate the
   way real hardware would; CECSan strips tags in software before the
   call, which is exactly the boundary behavior under test. *)
let externs =
  [
    ( "ext_sum",
      fun (st : Vm.State.t) (args : int array) ->
        let a = Vm.State.effective st args.(0) in
        let n = args.(1) in
        let s = ref 0 in
        for i = 0 to n - 1 do
          s := !s + Vm.Memory.load_byte st.Vm.State.mem (a + i)
        done;
        !s land 0xffff );
    ("ext_note", fun _ args -> ((args.(0) * 3) + 1) land 0xff);
  ]

type tool_run = {
  tool : string;
  detected : bool;          (* a report was produced (Bug / sink entry) *)
  outcome : string;         (* compact outcome class, for messages *)
  out_text : string;
  exit_code : int option;
  excluded : bool;          (* Spec.Unsupported: outside the tool's set *)
  first_kind : Vm.Report.bug_kind option;
  snapshot : Telemetry.Snapshot.t;  (* the run's telemetry, for deltas *)
  sites : int list;         (* every instrumented site id, reached or not *)
}

type failure =
  | Gen_invalid of string   (* generator emitted a non-clean/ill program *)
  | False_positive of { tool : string; detail : string }
  | False_negative of { tool : string; cls : Gen.bug_class }
  | Misclassified of { tool : string; expected : Gen.bug_class;
                       got : string }
  | Divergence of { tool : string; detail : string }
  | Opt_unsound of { detail : string }
  | Verifier_reject of { tool : string; detail : string }
    (* Tir.Verify refused the tool's instrumented/optimized output *)

(* Stable constructor+tool label: shrinking preserves the failure class,
   and campaign summaries histogram on it. *)
let failure_name = function
  | Gen_invalid _ -> "gen-invalid"
  | False_positive { tool; _ } -> sp "false-positive:%s" tool
  | False_negative { tool; cls } ->
    sp "false-negative:%s:%s" tool (Gen.class_name cls)
  | Misclassified { tool; expected; _ } ->
    sp "misclassified:%s:%s" tool (Gen.class_name expected)
  | Divergence { tool; _ } -> sp "divergence:%s" tool
  | Opt_unsound _ -> "opt-unsound"
  | Verifier_reject { tool; _ } -> sp "verifier-reject:%s" tool

let failure_detail = function
  | Gen_invalid d -> d
  | False_positive { detail; _ } -> detail
  | False_negative { cls; _ } ->
    sp "planted %s not reported" (Gen.class_name cls)
  | Misclassified { expected; got; _ } ->
    sp "planted %s reported as %s" (Gen.class_name expected) got
  | Divergence { detail; _ } -> detail
  | Opt_unsound { detail } -> detail
  | Verifier_reject { detail; _ } -> detail

(* --- the must-catch capability matrix (conservative cells only) ---------- *)

(* [must_catch ~tool plan]: true only where DESIGN.md section 3 has an
   unambiguous checkmark for this mechanism.  Far strides are required
   of bounds-based tools only; HWASan granule padding, quarantine
   eviction etc. make the redzone/tag tools "may" on everything
   spatial that is not adjacent. *)
let must_catch ~tool (p : Gen.plan) =
  match tool with
  | "CECSan" | "CECSan-noopt" | "CECSan-chain" | "CECSan-noabsint" -> true
  | "CECSan-nosubobj" -> p.cls <> Gen.Subobject
  | "ASan" | "ASan--" ->
    (match p.cls with
     | Gen.Spatial_heap | Gen.Spatial_stack | Gen.Spatial_global ->
       not p.far  (* adjacent bytes land in the redzone *)
     | Gen.Subobject -> false
     | Gen.Uaf -> true   (* immediate reuse: quarantine still holds it *)
     | Gen.Double_free -> true
     | Gen.Invalid_free -> false (* "mostly" per the paper: not required *))
  | "HWASan" ->
    (match p.cls with
     | Gen.Uaf -> true   (* freed memory is retagged immediately *)
     | Gen.Double_free -> true
     | _ -> false        (* granule padding / tag collisions / no free
                            check: nothing else is guaranteed *))
  | "PACMem" | "CryptSan" ->
    (match p.cls with
     | Gen.Spatial_heap -> not p.far
     | Gen.Uaf | Gen.Double_free | Gen.Invalid_free -> true
     | _ -> false)
  | "SoftBound+CETS" | "SoftBound" ->
    (match p.cls with
     | Gen.Spatial_heap -> not p.far
     | Gen.Uaf | Gen.Double_free -> true
     | _ -> false)
  | _ -> false

let kind_ok (cls : Gen.bug_class) (k : Vm.Report.bug_kind) =
  match cls, k with
  | (Gen.Spatial_heap | Gen.Spatial_stack | Gen.Spatial_global),
    (Vm.Report.Oob_read | Vm.Report.Oob_write) -> true
  | Gen.Subobject,
    (Vm.Report.Sub_object_overflow | Vm.Report.Oob_read
    | Vm.Report.Oob_write) -> true
  | Gen.Uaf, Vm.Report.Use_after_free -> true
  | Gen.Double_free, Vm.Report.Double_free -> true
  | Gen.Invalid_free, Vm.Report.Invalid_free -> true
  | _ -> false

(* --- running one tool ---------------------------------------------------- *)

exception Compile_error of string

let run_tool (san : Sanitizer.Spec.t) ?policy ?fault ?backend ~optimize
    (src : string) : tool_run =
  let tool = san.Sanitizer.Spec.name in
  match
    Sanitizer.Driver.run san ~externs ?policy ?fault ?backend ~optimize src
  with
  | r ->
    let detected =
      Vm.Machine.outcome_is_bug r.Sanitizer.Driver.outcome
      || r.Sanitizer.Driver.reports <> []
    in
    let outcome, exit_code =
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit c -> (sp "exit:%d" c, Some c)
      | Vm.Machine.Completed_with_bugs { code; _ } ->
        (sp "recovered-exit:%d" code, Some code)
      | Vm.Machine.Bug b ->
        (sp "bug:%s" (Vm.Report.kind_to_string b.Vm.Report.r_kind), None)
      | Vm.Machine.Fault t ->
        (sp "fault:%s" (Vm.Report.trap_kind_to_string t.Vm.Report.t_kind),
         None)
    in
    let first_kind =
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Bug b -> Some b.Vm.Report.r_kind
      | _ ->
        (match r.Sanitizer.Driver.reports with
         | b :: _ -> Some b.Vm.Report.r_kind
         | [] -> None)
    in
    { tool; detected; outcome; out_text = r.Sanitizer.Driver.output;
      exit_code; excluded = false; first_kind;
      snapshot = r.Sanitizer.Driver.snapshot;
      sites = List.map fst r.Sanitizer.Driver.site_labels }
  | exception Sanitizer.Spec.Unsupported _ ->
    { tool; detected = false; outcome = "excluded"; out_text = "";
      exit_code = None; excluded = true; first_kind = None;
      snapshot = Telemetry.Snapshot.empty; sites = [] }
  | exception Minic.Sema.Error (m, l) ->
    raise (Compile_error (sp "line %d: %s" l m))
  | exception Tir.Lower.Error m -> raise (Compile_error m)

(* --- the full verdict ---------------------------------------------------- *)

let recover_policy =
  Vm.Report.Recover { max_reports = Vm.Report.default_max_reports }

(* Baselines selectable for a campaign, by CLI name. *)
let baseline_of_name = function
  | "asan" -> Some (Baselines.Asan.sanitizer ())
  | "asan--" -> Some (Baselines.Asan_minus.sanitizer ())
  | "hwasan" -> Some (Baselines.Hwasan.sanitizer ())
  | "softbound" -> Some (Baselines.Softbound_cets.sanitizer ())
  | "pacmem" -> Some (Baselines.Pacmem.sanitizer ())
  | "cryptsan" -> Some (Baselines.Cryptsan.sanitizer ())
  | _ -> None

(* The guided fuzzer's feedback signal: one bitmap leg per instrumented
   CECSan pipeline variant (O2 / O0 / noabsint — the legs whose
   elide/cover split actually differs), then one per extra baseline, in
   lineup order.  Each leg derives from the FULL site-row view
   ([Telemetry.Snapshot.sites_full]) so instrumented-but-unreached
   sites stay distinguishable from uninstrumented ones. *)
let coverage_of_runs (runs : tool_run list) : Coverage.t =
  List.fold_left
    (fun (acc, leg) tr ->
       if leg >= Coverage.max_legs then (acc, leg)
       else
         ( Coverage.union acc
             (Coverage.of_rows ~leg
                (Telemetry.Snapshot.sites_full ~sites:tr.sites tr.snapshot)),
           leg + 1 ))
    (Coverage.empty, 0) runs
  |> fst

(* Like [evaluate], but also returns the CECSan(-O2) run's telemetry
   snapshot so campaigns can aggregate per-site profiles across the
   whole grid (merged in submission order, deterministic at any -j),
   and the program's coverage bitmap for guided campaigns. *)
let evaluate_cov ?(tools = []) ?fault ?backend (p : Gen.program) :
  failure list * Telemetry.Snapshot.t * Coverage.t =
  match
    let cec () = Cecsan.sanitizer () in
    (* the injector, when given, threads into every run uniformly --
       including the uninstrumented reference -- so a crash/fuel fault
       kills the whole task rather than biasing one tool's verdict *)
    let ref_run =
      run_tool Sanitizer.Spec.none ?fault ?backend ~optimize:true p.Gen.src
    in
    let cec_on =
      run_tool (cec ()) ?fault ?backend ~optimize:true p.Gen.src
    in
    let cec_off =
      { (run_tool (cec ()) ?fault ?backend ~optimize:false p.Gen.src) with
        tool = "CECSan-O0" }
    in
    let cec_rec =
      { (run_tool (cec ()) ?fault ?backend ~policy:recover_policy
           ~optimize:true p.Gen.src)
        with tool = "CECSan-recover" }
    in
    (* certified elision must be invisible: same detections, same
       telemetry law, never more cycles than the absint-off pipeline *)
    let cec_noabs =
      { (run_tool
           (Cecsan.sanitizer
              ~config:
                { Cecsan.Config.default with Cecsan.Config.opt_absint = false }
              ())
           ?fault ?backend ~optimize:true p.Gen.src)
        with tool = "CECSan-noabsint" }
    in
    let extras =
      List.map
        (fun san -> run_tool san ?fault ?backend ~optimize:true p.Gen.src)
        tools
    in
    (ref_run, cec_on, cec_off, cec_rec, cec_noabs, extras)
  with
  | exception Compile_error m ->
    ( [ Gen_invalid (sp "does not compile: %s" m) ],
      Telemetry.Snapshot.empty, Coverage.empty )
  | exception Sanitizer.Driver.Verifier_reject { tool; stage; errors } ->
    (* static certification failed: a first-class verdict on its own,
       and the runs behind it never happened *)
    ( [ Verifier_reject
          { tool;
            detail =
              sp "%s: %s" stage
                (match errors with e :: _ -> e | [] -> "rejected") } ],
      Telemetry.Snapshot.empty, Coverage.empty )
  | ref_run, cec_on, cec_off, cec_rec, cec_noabs, extras ->
    let failures = ref [] in
    let flag f = failures := f :: !failures in
    (match p.Gen.plan with
     | None ->
       (* clean program: the reference must exit, everyone must agree *)
       (match ref_run.exit_code with
        | None ->
          flag (Gen_invalid (sp "clean program did not exit cleanly (%s)"
                               ref_run.outcome))
        | Some _ ->
          List.iter
            (fun tr ->
               if tr.excluded then ()
               else if tr.detected then
                 flag (False_positive
                         { tool = tr.tool;
                           detail = sp "clean program reported as %s"
                               tr.outcome })
               else if
                 tr.exit_code <> ref_run.exit_code
                 || not (String.equal tr.out_text ref_run.out_text)
               then
                 (* the telemetry delta against the reference run says
                    WHERE the instrumented run went off the rails (an
                    extra check failure, table drift, lost allocations) *)
                 flag (Divergence
                         { tool = tr.tool;
                           detail =
                             sp "expected %s %S, got %s %S; %s"
                               ref_run.outcome ref_run.out_text tr.outcome
                               tr.out_text
                               (Telemetry.Snapshot.delta_summary
                                  ref_run.snapshot tr.snapshot) }))
            (cec_on :: cec_off :: cec_rec :: cec_noabs :: extras))
     | Some plan ->
       let check_tool ~matrix_tool tr =
         if (not tr.excluded) && must_catch ~tool:matrix_tool plan
         && not tr.detected
         then flag (False_negative { tool = tr.tool; cls = plan.Gen.cls })
       in
       check_tool ~matrix_tool:"CECSan" cec_on;
       check_tool ~matrix_tool:"CECSan" cec_off;
       check_tool ~matrix_tool:"CECSan" cec_rec;
       check_tool ~matrix_tool:"CECSan" cec_noabs;
       List.iter (fun tr -> check_tool ~matrix_tool:tr.tool tr) extras;
       if cec_on.detected <> cec_off.detected then
         flag (Opt_unsound
                 { detail =
                     sp "opt-on %s vs opt-off %s; %s" cec_on.outcome
                       cec_off.outcome
                       (Telemetry.Snapshot.delta_summary cec_off.snapshot
                          cec_on.snapshot) });
       if cec_on.detected <> cec_noabs.detected then
         flag (Opt_unsound
                 { detail =
                     sp "absint-on %s vs absint-off %s; %s" cec_on.outcome
                       cec_noabs.outcome
                       (Telemetry.Snapshot.delta_summary cec_noabs.snapshot
                          cec_on.snapshot) });
       (match cec_on.first_kind with
        | Some k when not (kind_ok plan.Gen.cls k) ->
          flag (Misclassified
                  { tool = cec_on.tool; expected = plan.Gen.cls;
                    got = Vm.Report.kind_to_string k })
        | _ -> ()));
    ( List.rev !failures, cec_on.snapshot,
      coverage_of_runs (cec_on :: cec_off :: cec_noabs :: extras) )

let evaluate_full ?tools ?fault ?backend (p : Gen.program) :
  failure list * Telemetry.Snapshot.t =
  let fs, snap, _ = evaluate_cov ?tools ?fault ?backend p in
  (fs, snap)

let evaluate ?tools ?fault ?backend (p : Gen.program) : failure list =
  fst (evaluate_full ?tools ?fault ?backend p)

(** Differential oracle: runs a generated program uninstrumented and
    under CECSan (Halt/Recover, optimizer on/off) plus selected
    baselines, and classifies disagreements against the DESIGN.md
    section 3 capability matrix. *)

val externs : (string * (Vm.State.t -> int array -> int)) list
(** The extern functions generated programs may call (tag-stripping
    boundary models); registered for every oracle run. *)

type tool_run = {
  tool : string;
  detected : bool;
  outcome : string;
  out_text : string;
  exit_code : int option;
  excluded : bool;
  first_kind : Vm.Report.bug_kind option;
  snapshot : Telemetry.Snapshot.t;
      (** the run's telemetry, used for mismatch deltas *)
  sites : int list;
      (** every instrumented site id, reached or not — the universe
          [Telemetry.Snapshot.sites_full] inflates coverage against *)
}

type failure =
  | Gen_invalid of string
  | False_positive of { tool : string; detail : string }
  | False_negative of { tool : string; cls : Gen.bug_class }
  | Misclassified of { tool : string; expected : Gen.bug_class;
                       got : string }
  | Divergence of { tool : string; detail : string }
  | Opt_unsound of { detail : string }
  | Verifier_reject of { tool : string; detail : string }
      (** [Tir.Verify] refused the tool's instrumented/optimized output *)

val failure_name : failure -> string
(** Stable constructor+tool label; shrinking preserves it. *)

val failure_detail : failure -> string

val must_catch : tool:string -> Gen.plan -> bool
(** The conservative capability matrix: true only where DESIGN.md
    section 3 has an unambiguous checkmark. *)

val kind_ok : Gen.bug_class -> Vm.Report.bug_kind -> bool

exception Compile_error of string

val run_tool :
  Sanitizer.Spec.t -> ?policy:Vm.Report.policy -> ?fault:Vm.Fault.t ->
  ?backend:Vm.Machine.backend -> optimize:bool -> string -> tool_run

val baseline_of_name : string -> Sanitizer.Spec.t option
(** CLI names: asan, asan--, hwasan, softbound, pacmem, cryptsan. *)

val evaluate :
  ?tools:Sanitizer.Spec.t list -> ?fault:Vm.Fault.t ->
  ?backend:Vm.Machine.backend -> Gen.program -> failure list
(** Empty list = the program passes every oracle rule.  [backend]
    threads into every run (verdicts are backend-independent). *)

val evaluate_full :
  ?tools:Sanitizer.Spec.t list -> ?fault:Vm.Fault.t ->
  ?backend:Vm.Machine.backend -> Gen.program ->
  failure list * Telemetry.Snapshot.t
(** [evaluate] plus the CECSan(-O2) run's telemetry snapshot, for
    campaign-level aggregation (merged in submission order).  [fault]
    threads one injector spec into every run uniformly (each run clones
    it), including the uninstrumented reference; injected
    crash/fuel-exhaustion exceptions escape to the supervision layer. *)

val coverage_of_runs : tool_run list -> Coverage.t
(** Union of one bitmap leg per run, in list order, each derived from
    the run's full site-row view (all-zero rows included). *)

val evaluate_cov :
  ?tools:Sanitizer.Spec.t list -> ?fault:Vm.Fault.t ->
  ?backend:Vm.Machine.backend -> Gen.program ->
  failure list * Telemetry.Snapshot.t * Coverage.t
(** [evaluate_full] plus the program's coverage bitmap: legs 0/1/2 are
    CECSan O2 / O0 / noabsint, then one leg per extra baseline in
    lineup order (capped at [Coverage.max_legs]).  Compile errors and
    verifier rejections yield [Coverage.empty]. *)

(* Fuzz.Corpus: the coverage-keyed tape corpus of a guided campaign.

   Admission is novelty-keyed: a tape enters iff its bitmap carries at
   least one (leg, site, kind) bit the accumulated bitmap lacks, so the
   corpus only ever grows the campaign's coverage frontier and the
   accumulated bitmap is always exactly the union of the entries'
   bitmaps.  Admission decisions are made sequentially in submission
   order (the pool hands results back in submission order), which is
   what keeps the corpus byte-identical at any job count.

   [minimize] is the classic greedy set cover over the same bitmap:
   repeatedly keep the entry covering the most still-uncovered bits
   (ties to the lowest admission id), until the full bitmap is covered.
   The pass is deterministic and idempotent — rerunning it over its own
   output picks the same entries in the same order — and
   coverage-preserving by construction.

   The on-disk format is line-based like the campaign checkpoint it
   composes with, written atomically via Harness.Jsonio:

     cecsan-corpus v1
     entry id=<int> seed=<hex> phase=<s> tape=<csv|-> cov=<csv|->
     ...
     end

   Loading a saved corpus and saving it again reproduces the file byte
   for byte. *)

let sp = Printf.sprintf

type entry = {
  e_id : int;            (* admission index, stable across minimize *)
  e_seed : int;          (* the engine seed the tape came from *)
  e_phase : string;      (* "gen" or "mutate:<op>"; no spaces *)
  e_tape : int array;
  e_cov : Coverage.t;    (* the entry's own bitmap *)
}

type t = {
  entries : entry list;  (* admission order *)
  acc : Coverage.t;      (* union of the entries' bitmaps *)
  next_id : int;
}

let empty = { entries = []; acc = Coverage.empty; next_id = 0 }

let size c = List.length c.entries
let entries c = c.entries
let accumulated c = c.acc

let nth_tape c i =
  match List.nth_opt c.entries i with
  | Some e -> e.e_tape
  | None -> invalid_arg "Corpus.nth_tape"

(* [admit] in submission order only: the pair is the new corpus and
   whether the tape was admitted (i.e. lit a bit [acc] lacked). *)
let admit c ~seed ~phase ~tape ~cov =
  if not (Coverage.novel cov ~acc:c.acc) then (c, false)
  else
    let e =
      { e_id = c.next_id; e_seed = seed; e_phase = phase; e_tape = tape;
        e_cov = cov }
    in
    ( { entries = c.entries @ [ e ];
        acc = Coverage.union c.acc cov;
        next_id = c.next_id + 1 },
      true )

(* AFL-style favored scheduling: the top quarter of entries ranked by
   distinct sites, then bitmap cardinality, then recency (higher id
   first).  Mutation bases drawn from here keep the engine working on
   the deepest programs instead of uniformly re-mutating shallow ones.
   Deterministic: the ranking is a pure function of the corpus. *)
let favored c : entry list =
  let ranked =
    List.sort
      (fun a b ->
         match compare (Coverage.sites b.e_cov) (Coverage.sites a.e_cov) with
         | 0 ->
           (match
              compare (Coverage.cardinal b.e_cov) (Coverage.cardinal a.e_cov)
            with
            | 0 -> compare b.e_id a.e_id
            | c -> c)
         | c -> c)
      c.entries
  in
  let keep = max 1 (List.length ranked / 4) in
  List.filteri (fun i _ -> i < keep) ranked

(* --- greedy set-cover minimization ----------------------------------------- *)

let minimize c =
  let target =
    List.fold_left
      (fun acc e -> Coverage.union acc e.e_cov)
      Coverage.empty c.entries
  in
  let rec go covered remaining kept =
    if Coverage.is_subset target covered then kept
    else
      let best =
        List.fold_left
          (fun best e ->
             let gain = Coverage.novel_count e.e_cov ~acc:covered in
             match best with
             | Some (_, bg) when bg >= gain -> best  (* ties: lowest id *)
             | _ when gain = 0 -> best
             | _ -> Some (e, gain))
          None remaining
      in
      match best with
      | None -> kept  (* nothing gains: target unreachable (empty set) *)
      | Some (e, _) ->
        go
          (Coverage.union covered e.e_cov)
          (List.filter (fun e' -> e'.e_id <> e.e_id) remaining)
          (e :: kept)
  in
  let kept = go Coverage.empty c.entries [] in
  let entries =
    List.sort (fun a b -> compare a.e_id b.e_id) kept
  in
  { entries; acc = target; next_id = c.next_id }

(* --- serialization --------------------------------------------------------- *)

let corpus_file = "corpus.v1.ckpt"
let magic = "cecsan-corpus v1"

let csv_or_dash tape =
  if Array.length tape = 0 then "-" else Tape.to_string tape

let tape_of_field = function
  | "-" -> Some [||]
  | s -> Tape.of_string s

let entry_to_line e =
  sp "entry id=%d seed=%x phase=%s tape=%s cov=%s" e.e_id e.e_seed e.e_phase
    (csv_or_dash e.e_tape) (Coverage.to_string e.e_cov)

let entry_of_line line =
  match
    Scanf.sscanf line "entry id=%d seed=%x phase=%s tape=%s cov=%s"
      (fun id seed phase tape cov -> (id, seed, phase, tape, cov))
  with
  | id, seed, phase, tape, cov ->
    (match tape_of_field tape, Coverage.of_string cov with
     | Some e_tape, Some e_cov ->
       Some { e_id = id; e_seed = seed; e_phase = phase; e_tape; e_cov }
     | _ -> None)
  | exception _ -> None

(* Rebuilds corpus state from entries (in admission order): the
   accumulated bitmap and next id are derived, never stored. *)
let of_entries entries =
  let acc =
    List.fold_left
      (fun acc e -> Coverage.union acc e.e_cov)
      Coverage.empty entries
  in
  let next_id = List.fold_left (fun m e -> max m (e.e_id + 1)) 0 entries in
  { entries; acc; next_id }

let to_lines c =
  (magic :: List.map entry_to_line c.entries) @ [ "end" ]

let of_lines lines : t option =
  match lines with
  | m :: rest when String.equal m magic ->
    let exception Bad in
    (try
       let entries = ref [] in
       let finished = ref false in
       List.iter
         (fun line ->
            if !finished then ()
            else if String.equal line "end" then finished := true
            else
              match entry_of_line line with
              | Some e -> entries := e :: !entries
              | None -> raise Bad)
         rest;
       if not !finished then raise Bad;
       Some (of_entries (List.rev !entries))
     with Bad -> None)
  | _ -> None

let save ~dir c =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir corpus_file in
  Harness.Jsonio.write_lines ~path (to_lines c);
  path

(* [None] on a missing or unparseable file: a fresh corpus is always a
   correct recovery, exactly like the campaign checkpoint. *)
let load ~dir : t option =
  let path = Filename.concat dir corpus_file in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let lines = ref [] in
    (try
       while true do lines := input_line ic :: !lines done
     with End_of_file -> ());
    close_in ic;
    of_lines (List.rev !lines)
  end

let render fmt c =
  Format.fprintf fmt "corpus: %d entries, " (size c);
  Coverage.render fmt c.acc;
  Format.fprintf fmt "@.";
  List.iter
    (fun e ->
       Format.fprintf fmt "  #%d seed=0x%x %s (%d draws, %d bits)@." e.e_id
         e.e_seed e.e_phase (Array.length e.e_tape)
         (Coverage.cardinal e.e_cov))
    c.entries

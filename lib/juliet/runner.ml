(* Evaluation harness for Table II: run every case's bad and good version
   under every sanitizer, with each tool's evaluated subset reproduced:

   - CECSan and ASan run all cases (the dummy-server framework feeds the
     external-input variants);
   - PACMem excludes the socket-input variants (evaluated on 11531 of
     15752 in its paper);
   - CryptSan and HWASan exclude all external-input variants (5364);
   - SoftBound/CETS loses every case its prototype cannot compile
     ([Sanitizer.Spec.Unsupported], e.g. anything with wchar_t).

   Detection = the sanitizer produced a report on the bad version.  A
   crash without a report (segfault, allocator abort) does NOT count --
   which is exactly how HWASan scores 0% on invalid frees. *)

open Case

type verdict =
  | Detected
  | Missed          (* ran to completion or crashed without a report *)
  | Excluded        (* outside the tool's evaluated subset *)

type case_result = {
  case : t;
  verdict : verdict;
  good_fp : bool;   (* the good version produced a (false) report *)
}

type tool_results = {
  tool : string;
  results : case_result list;
  evaluated : int;
}

let excluded_by tool (c : t) =
  match tool with
  | "PACMem" -> needs_socket c.flow
  | "CryptSan" | "HWASan" -> needs_socket c.flow || needs_fgets c.flow
  | _ -> false

let run_one ?backend (san : Sanitizer.Spec.t) (c : t) : case_result =
  if excluded_by san.Sanitizer.Spec.name c then
    { case = c; verdict = Excluded; good_fp = false }
  else
    match
      let bad =
        Sanitizer.Driver.run san ~lines:c.lines ~packets:c.packets
          ~budget:50_000_000 ?backend c.bad_src
      in
      let good =
        Sanitizer.Driver.run san ~lines:c.lines ~packets:c.packets
          ~budget:50_000_000 ?backend c.good_src
      in
      (bad, good)
    with
    | bad, good ->
      let verdict =
        match bad.Sanitizer.Driver.outcome with
        | Vm.Machine.Bug _ | Vm.Machine.Completed_with_bugs _ -> Detected
        | Vm.Machine.Exit _ | Vm.Machine.Fault _ -> Missed
      in
      let good_fp =
        match good.Sanitizer.Driver.outcome with
        | Vm.Machine.Bug _ | Vm.Machine.Completed_with_bugs _ -> true
        | Vm.Machine.Exit _ | Vm.Machine.Fault _ -> false
      in
      { case = c; verdict; good_fp }
    | exception Sanitizer.Spec.Unsupported _ ->
      { case = c; verdict = Excluded; good_fp = false }

(* [map] lets the harness substitute a parallel map (Harness.Pool) for
   the case loop; cases are independent and results keep submission
   order, so the default List.map and any order-preserving parallel map
   produce identical tables. *)
let run_tool ?(map = List.map) ?backend (san : Sanitizer.Spec.t)
    (cases : t list) : tool_results =
  let results = map (run_one ?backend san) cases in
  let evaluated =
    List.length (List.filter (fun r -> r.verdict <> Excluded) results)
  in
  { tool = san.Sanitizer.Spec.name; results; evaluated }

(* Detection rate (percent) for one CWE, over the tool's subset. *)
let rate (tr : tool_results) (cwe : cwe) : float option =
  let of_cwe =
    List.filter
      (fun r -> r.case.cwe = cwe && r.verdict <> Excluded)
      tr.results
  in
  match of_cwe with
  | [] -> None
  | _ ->
    let detected =
      List.length (List.filter (fun r -> r.verdict = Detected) of_cwe)
    in
    Some (100.0 *. float_of_int detected /. float_of_int (List.length of_cwe))

let false_positives (tr : tool_results) : int =
  List.length
    (List.filter (fun r -> r.good_fp && r.verdict <> Excluded) tr.results)

(* Misses grouped by mechanism family, for diagnostics / EXPERIMENTS.md. *)
let misses_by_family (tr : tool_results) : (string * int) list =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
       if r.verdict = Missed then
         Hashtbl.replace tbl r.case.fam_name
           (1 + Option.value (Hashtbl.find_opt tbl r.case.fam_name)
              ~default:0))
    tr.results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

(* The sanitizer lineup of Table II. *)
let lineup () : Sanitizer.Spec.t list =
  [
    Cecsan.sanitizer ();
    Baselines.Pacmem.sanitizer ();
    Baselines.Cryptsan.sanitizer ();
    Baselines.Hwasan.sanitizer ();
    Baselines.Asan.sanitizer ();
    Baselines.Softbound_cets.sanitizer ();
  ]

(** The Table II evaluation harness: every case's bad and good version
    under every sanitizer, with per-tool evaluated subsets.

    Detection means the sanitizer REPORTED; a crash without a report
    counts as a miss (which is how HWASan scores 0% on invalid frees). *)

type verdict =
  | Detected
  | Missed
  | Excluded  (** outside the tool's evaluated subset *)

type case_result = {
  case : Case.t;
  verdict : verdict;
  good_fp : bool;  (** the good version produced a (false) report *)
}

type tool_results = {
  tool : string;
  results : case_result list;
  evaluated : int;
}

val excluded_by : string -> Case.t -> bool
(** Subset rules: PACMem skips socket-input cases; CryptSan and HWASan
    skip all external-input cases; other exclusions arise from
    [Sanitizer.Spec.Unsupported] at build time. *)

val run_one :
  ?backend:Vm.Machine.backend -> Sanitizer.Spec.t -> Case.t ->
  case_result

val run_tool :
  ?map:((Case.t -> case_result) -> Case.t list -> case_result list) ->
  ?backend:Vm.Machine.backend -> Sanitizer.Spec.t -> Case.t list ->
  tool_results
(** [map] (default [List.map]) runs the per-case loop; the harness
    passes an order-preserving parallel map ([Harness.Pool.map]), which
    yields identical results because cases are independent.  [backend]
    threads into every run (verdicts are backend-invariant). *)

val rate : tool_results -> Case.cwe -> float option
(** Detection percentage over the tool's evaluated subset of that CWE. *)

val false_positives : tool_results -> int

val misses_by_family : tool_results -> (string * int) list
(** Missed cases grouped by mechanism family, most-missed first. *)

val lineup : unit -> Sanitizer.Spec.t list
(** The Table II column order: CECSan, PACMem, CryptSan, HWASan, ASan,
    SoftBound/CETS. *)

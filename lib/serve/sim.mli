(** Deterministic load simulator for the service ([bench --serve-sim]).

    N synthetic requests -- mixed ops, sanitizers, backends, optimize
    flags, all drawn from a seeded tape -- are executed through
    {!Engine.process}, and their latency is computed under a simulated
    clock: arrivals come from a seeded integer inter-arrival process,
    service time is each request's deterministic cost-model cycle count,
    and a FIFO queue feeds [sc_workers] {e simulated} servers.  Real
    pool parallelism ([-j]) only speeds up gathering the service times;
    every number in the report, and the BENCH_serve.json bytes, are
    identical at any job count. *)

type cfg = {
  sc_seed : int;
  sc_requests : int;
  sc_workers : int;
      (** simulated servers in the queue model -- fixed, NOT the real
          [-j] (default 4) *)
  sc_batch : int;   (** requests per pool slot (default 16) *)
  sc_backend : Vm.Machine.backend option;
      (** [Some b] overrides the per-request backend mix *)
}

val default_cfg : seed:int -> requests:int -> cfg

type latency = {
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_p999 : int;
  l_max : int;
  l_mean : int;  (** integer mean (floor) *)
}

type report = {
  sr_cfg : cfg;
  sr_aggregate : Engine.aggregate;
  sr_latency : latency;       (** sojourn time, simulated ticks *)
  sr_makespan : int;          (** last departure tick *)
  sr_throughput : int;        (** requests per 1e6 simulated ticks *)
}

val gen_requests : seed:int -> int -> Protocol.request list
(** The synthetic mix: mostly [analyze] of small generated programs,
    some [fuzz], occasional [bench] kernels; request [i] derives its
    whole shape from [Tape.mix seed i]. *)

val run : ?pool:Harness.Pool.t -> cfg -> report

val render : Format.formatter -> report -> unit

val to_json : report -> string
(** Single-line [cecsan-bench-serve/1] JSON (integers only, fixed key
    order): byte-identical across reruns and job counts. *)

val write_json : path:string -> report -> unit
(** Atomic ({!Harness.Jsonio}) BENCH_serve.json emission. *)

(** The service's execution core: runs decoded requests on
    [Harness.Pool], batching consecutive requests per pool slot, and
    folds every run's telemetry into one deterministic aggregate.

    Determinism contract (pinned by the test suite and CI): for a given
    request list, [process] returns identical rows -- responses, service
    cycles and telemetry snapshots -- at any job count and any batch
    size; only wall clock moves.  The aggregate merges rows in
    submission order, so its JSON is byte-identical too. *)

type row = {
  r_request : Protocol.request;
  r_response : Protocol.response;
  r_cycles : int;
      (** the run's deterministic cost-model cycles (the simulator's
          service time); 0 for error responses *)
  r_snapshot : Telemetry.Snapshot.t;
}

val sanitizer_of_name : string -> Sanitizer.Spec.t option
(** ["cecsan"], ["none"], plus every [Fuzz.Oracle.baseline_of_name]
    baseline (asan, asan--, hwasan, softbound, pacmem, cryptsan). *)

val kernel_of_name : string -> Workloads.Spec2006.t option
(** SPEC2006- and SPEC2017-like kernels, by [w_name]. *)

val execute : ?backend:Vm.Machine.backend -> Protocol.request -> row
(** Runs one request.  The request's own [backend] wins over [backend]
    (the engine default).  Compile/run failures (sema, lowering,
    [Spec.Unsupported], verifier rejection, fuel exhaustion, unknown
    sanitizer/kernel) become error responses -- the daemon never dies on
    a bad request. *)

val process :
  ?pool:Harness.Pool.t -> ?batch:int -> ?backend:Vm.Machine.backend ->
  Protocol.request list -> row list
(** Splits the submission-order request list into chunks of [batch]
    (default 16) consecutive requests, fans the chunks out on the pool
    (each chunk runs sequentially inside one slot), and reassembles rows
    in submission order. *)

(** {1 Session aggregate} *)

type aggregate = {
  agg_requests : int;
  agg_ok : int;
  agg_errors : int;
  agg_detected : int;
  agg_by_op : (string * int) list;  (** op name -> count, sorted *)
  agg_cycles : int;                 (** total service cycles *)
  agg_snapshot : Telemetry.Snapshot.t;
      (** per-request snapshots merged in submission order *)
}

val empty_aggregate : aggregate

val absorb : aggregate -> row -> aggregate

val aggregate_rows : aggregate -> row list -> aggregate
(** Folds in submission order; [aggregate_rows empty_aggregate] builds
    the whole-session aggregate. *)

val aggregate_json : aggregate -> Protocol.value
(** Deterministic object (fixed key order, sorted [by_op], the merged
    snapshot embedded as a JSON object). *)

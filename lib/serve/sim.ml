(* Deterministic load simulator (bench --serve-sim).

   The trick that makes latency reproducible at any -j: nothing in the
   queue model reads a real clock.  Arrival ticks come from a seeded
   tape, service ticks from each request's cost-model cycle count, and
   the queue itself is an integer fold over a fixed number of SIMULATED
   servers (sc_workers), chosen independently of how many real domains
   gathered the service times.  -j changes wall clock only. *)

type cfg = {
  sc_seed : int;
  sc_requests : int;
  sc_workers : int;
  sc_batch : int;
  sc_backend : Vm.Machine.backend option;
}

let default_cfg ~seed ~requests =
  {
    sc_seed = seed;
    sc_requests = requests;
    sc_workers = 4;
    sc_batch = 16;
    sc_backend = None;
  }

type latency = {
  l_p50 : int;
  l_p90 : int;
  l_p99 : int;
  l_p999 : int;
  l_max : int;
  l_mean : int;
}

type report = {
  sr_cfg : cfg;
  sr_aggregate : Engine.aggregate;
  sr_latency : latency;
  sr_makespan : int;
  sr_throughput : int;
}

(* --- synthetic request mix ------------------------------------------------- *)

let bench_kernels = [ "429.mcf"; "462.libquantum"; "470.lbm"; "619.lbm_s" ]
let bench_sans = [ "cecsan"; "asan--"; "none" ]
let analyze_sans = [ "cecsan"; "asan"; "hwasan"; "none" ]

let gen_request ~seed i : Protocol.request =
  let t = Fuzz.Tape.fresh ~seed:(Fuzz.Tape.mix seed i) in
  let backend =
    match Fuzz.Tape.draw t 3 with
    | 0 -> None
    | 1 -> Some Vm.Machine.Interp
    | _ -> Some Vm.Machine.Jit
  in
  let op =
    match Fuzz.Tape.draw t 64 with
    | 0 ->
      (* rare: a full SPEC-like kernel (the service's heavy tail) *)
      Protocol.Bench
        {
          kernel = Fuzz.Tape.pick t bench_kernels;
          sanitizer = Fuzz.Tape.pick t bench_sans;
        }
    | d when d <= 12 ->
      Protocol.Fuzz
        { fz_seed = Fuzz.Tape.draw t 1_000_000; inject = Fuzz.Tape.bool t }
    | _ ->
      let inject = Fuzz.Tape.bool t in
      let p = Fuzz.Gen.generate ~inject t in
      Protocol.Analyze
        {
          source = p.Fuzz.Gen.src;
          sanitizer = Fuzz.Tape.pick t analyze_sans;
          optimize = Fuzz.Tape.bool t;
        }
  in
  { Protocol.id = i; op; backend }

let gen_requests ~seed n : Protocol.request list =
  List.init n (gen_request ~seed)

(* --- the queue model ------------------------------------------------------- *)

(* Service time: cost-model cycles scaled down to ticks; error rows
   (cycles = 0) still occupy a server for one tick.  The scale is picked
   so the default mix keeps the 4 simulated servers near critical load
   (mean service ~= 40 ticks vs mean inter-arrival ~= 11 ticks): the
   tail percentiles then measure real queueing, not pure saturation. *)
let service_ticks (r : Engine.row) : int = 1 + (r.Engine.r_cycles / 10_000)

let arrival_ticks ~seed n : int list =
  let t = Fuzz.Tape.fresh ~seed:(Fuzz.Tape.mix seed 0x5E21E) in
  let clock = ref 0 in
  List.init n (fun _ ->
      clock := !clock + 1 + Fuzz.Tape.draw t 20;
      !clock)

(* FIFO over [workers] simulated servers: each request takes the
   earliest-free server (lowest index on ties).  Returns (latencies in
   submission order, makespan). *)
let simulate ~workers (arrivals : int list) (services : int list) :
  int list * int =
  if workers < 1 then invalid_arg "Serve.Sim.simulate: workers < 1";
  let free = Array.make workers 0 in
  let makespan = ref 0 in
  let latencies =
    List.map2
      (fun arrival service ->
         let best = ref 0 in
         Array.iteri (fun i t -> if t < free.(!best) then best := i) free;
         let start = max arrival free.(!best) in
         let finish = start + service in
         free.(!best) <- finish;
         if finish > !makespan then makespan := finish;
         finish - arrival)
      arrivals services
  in
  (latencies, !makespan)

let latency_of (xs : int list) : latency =
  {
    l_p50 = Harness.Stats.p50 xs;
    l_p90 = Harness.Stats.p90 xs;
    l_p99 = Harness.Stats.p99 xs;
    l_p999 = Harness.Stats.p999 xs;
    l_max = List.fold_left max 0 xs;
    l_mean =
      (match xs with
       | [] -> 0
       | _ -> List.fold_left ( + ) 0 xs / List.length xs);
  }

let run ?pool (cfg : cfg) : report =
  let reqs = gen_requests ~seed:cfg.sc_seed cfg.sc_requests in
  let rows =
    Engine.process ?pool ~batch:cfg.sc_batch ?backend:cfg.sc_backend reqs
  in
  let aggregate = Engine.aggregate_rows Engine.empty_aggregate rows in
  let arrivals = arrival_ticks ~seed:cfg.sc_seed cfg.sc_requests in
  let services = List.map service_ticks rows in
  let latencies, makespan =
    simulate ~workers:cfg.sc_workers arrivals services
  in
  {
    sr_cfg = cfg;
    sr_aggregate = aggregate;
    sr_latency = latency_of latencies;
    sr_makespan = makespan;
    sr_throughput =
      (if makespan = 0 then 0 else cfg.sc_requests * 1_000_000 / makespan);
  }

(* --- rendering / artifact -------------------------------------------------- *)

let render fmt (r : report) =
  let c = r.sr_cfg and a = r.sr_aggregate and l = r.sr_latency in
  Fmt.pf fmt
    "SERVE SIMULATION: %d requests [seed=0x%x, %d simulated workers, \
     batch %d]@."
    c.sc_requests c.sc_seed c.sc_workers c.sc_batch;
  Fmt.pf fmt "%s@." (String.make 72 '-');
  Fmt.pf fmt "  requests: %d ok, %d errors, %d detected@." a.Engine.agg_ok
    a.Engine.agg_errors a.Engine.agg_detected;
  List.iter
    (fun (op, n) -> Fmt.pf fmt "    %-8s %6d@." op n)
    a.Engine.agg_by_op;
  Fmt.pf fmt "  service:  %d total cost-model cycles@." a.Engine.agg_cycles;
  Fmt.pf fmt "  makespan: %d ticks  (throughput %d req / 1e6 ticks)@."
    r.sr_makespan r.sr_throughput;
  Fmt.pf fmt
    "  latency (ticks): p50 %d  p90 %d  p99 %d  p99.9 %d  max %d  mean %d@."
    l.l_p50 l.l_p90 l.l_p99 l.l_p999 l.l_max l.l_mean;
  Fmt.pf fmt "%s@." (String.make 72 '-')

let to_json (r : report) : string =
  let c = r.sr_cfg and l = r.sr_latency in
  Protocol.to_string
    (Protocol.Obj
       [ ("schema", Protocol.Str "cecsan-bench-serve/1");
         ("seed", Protocol.Int c.sc_seed);
         ("requests", Protocol.Int c.sc_requests);
         ("sim_workers", Protocol.Int c.sc_workers);
         ("batch", Protocol.Int c.sc_batch);
         ("backend",
          (match c.sc_backend with
           | None -> Protocol.Str "mixed"
           | Some b -> Protocol.Str (Protocol.backend_name b)));
         ("aggregate", Engine.aggregate_json r.sr_aggregate);
         ("latency_ticks",
          Protocol.Obj
            [ ("p50", Protocol.Int l.l_p50);
              ("p90", Protocol.Int l.l_p90);
              ("p99", Protocol.Int l.l_p99);
              ("p999", Protocol.Int l.l_p999);
              ("max", Protocol.Int l.l_max);
              ("mean", Protocol.Int l.l_mean) ]);
         ("makespan_ticks", Protocol.Int r.sr_makespan);
         ("throughput_per_mticks", Protocol.Int r.sr_throughput) ])

let write_json ~path (r : report) =
  Harness.Jsonio.write ~path (to_json r ^ "\n")

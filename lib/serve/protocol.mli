(** Wire protocol of the analysis service: line-delimited JSON, one
    value per line, with a deterministic printer (fixed key order,
    integers only) so equal messages are byte-identical.

    The JSON model is the integer subset the stack already emits
    everywhere else (telemetry snapshots, bench artifacts): no floats,
    no unicode escapes beyond the ASCII control range. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of value list
  | Obj of (string * value) list  (** printed in the order given *)

val to_string : value -> string
(** Single-line rendering; strings escape quotes, backslashes and
    control characters.
    Object keys print in the order stored, so codecs keep a fixed field
    order and equal messages render byte-identically. *)

val parse : string -> (value, string) result
(** Strict parser for the subset {!to_string} emits (plus surrounding
    whitespace); rejects floats, trailing garbage and duplicate-free
    constraints are NOT enforced (last key wins on lookup). *)

val member : string -> value -> value option
(** First binding of the key in an [Obj]. *)

(** {1 Requests} *)

type op =
  | Analyze of { source : string; sanitizer : string; optimize : bool }
      (** compile + run one MiniC source under one sanitizer *)
  | Fuzz of { fz_seed : int; inject : bool }
      (** generate the seeded program and run it under CECSan(-O2) *)
  | Bench of { kernel : string; sanitizer : string }
      (** run one SPEC-like kernel under one sanitizer *)

type request = {
  id : int;                            (** echoed in the response *)
  op : op;
  backend : Vm.Machine.backend option;
      (** [None]: the engine's default backend *)
}

val encode_request : request -> value
val decode_request : value -> (request, string) result

(** {1 Responses} *)

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_outcome : string;   (** rendered [Vm.Machine.outcome]; [""] on error *)
  rs_detected : bool;    (** the sanitizer reported at least one bug *)
  rs_cycles : int;       (** deterministic cost-model cycles (0 on error) *)
  rs_reports : int;      (** findings recorded by a [Recover] sink *)
  rs_error : string;     (** error class + detail; [""] when ok *)
}

val encode_response : response -> value
val decode_response : value -> (response, string) result

(** {1 Stream framing} *)

type line =
  | Request of request
  | Flush      (** process everything queued, in submission order *)
  | Snapshot   (** flush, then emit the session aggregate *)
  | Shutdown   (** flush, respond, stop *)

val decode_line : string -> (line, string) result
(** One wire line: a request object, or a control object whose [op] is
    [flush], [snapshot] or [shutdown].  A blank line decodes to
    [Flush]. *)

val backend_name : Vm.Machine.backend -> string
val backend_of_name : string -> Vm.Machine.backend option

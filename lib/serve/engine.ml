(* The service execution core.

   One request = one seeded, cost-model-deterministic Driver run, so a
   row's response, service cycles and telemetry depend only on the
   request itself -- which is what lets [process] batch chunks across
   pool domains and still promise byte-identical output at any -j.

   Every failure mode of the pipeline (sema error, lowering error,
   unsupported construct, verifier rejection, fuel exhaustion, unknown
   names) is caught here and turned into an error response: a malformed
   or hostile request costs its submitter an error line, never the
   daemon. *)

type row = {
  r_request : Protocol.request;
  r_response : Protocol.response;
  r_cycles : int;
  r_snapshot : Telemetry.Snapshot.t;
}

let analyze_budget = 50_000_000

let sanitizer_of_name (name : string) : Sanitizer.Spec.t option =
  match name with
  | "cecsan" -> Some (Cecsan.sanitizer ())
  | "none" -> Some Sanitizer.Spec.none
  | _ -> Fuzz.Oracle.baseline_of_name name

let kernel_of_name (name : string) : Workloads.Spec2006.t option =
  List.find_opt
    (fun (w : Workloads.Spec2006.t) ->
       String.equal w.Workloads.Spec2006.w_name name)
    (Workloads.Spec2006.all @ Workloads.Spec2017.all)

let outcome_string (o : Vm.Machine.outcome) : string =
  Format.asprintf "%a" Vm.Machine.pp_outcome o

let detected (o : Vm.Machine.outcome) : bool =
  match o with
  | Vm.Machine.Bug _ | Vm.Machine.Completed_with_bugs _ -> true
  | Vm.Machine.Exit _ | Vm.Machine.Fault _ -> false

(* Exception -> stable "class: detail" error string.  The class prefix
   is what tests and operators key on; the detail is best-effort. *)
let error_string = function
  | Minic.Sema.Error (m, line) ->
    Printf.sprintf "sema: %s (line %d)" m line
  | Minic.Parser.Error (m, line) ->
    Printf.sprintf "parse: %s (line %d)" m line
  | Minic.Lexer.Error (m, line) ->
    Printf.sprintf "lex: %s (line %d)" m line
  | Tir.Lower.Error m -> "lower: " ^ m
  | Sanitizer.Spec.Unsupported m -> "unsupported: " ^ m
  | Sanitizer.Driver.Verifier_reject { tool; stage; _ } ->
    Printf.sprintf "verifier-reject: %s (%s)" tool stage
  | Tir.Fuel.Exhausted { phase; budget } ->
    Printf.sprintf "fuel: %s (budget %d)" phase budget
  | Fuzz.Oracle.Compile_error m -> "compile: " ^ m
  | Failure m -> "failure: " ^ m
  | Invalid_argument m -> "invalid: " ^ m
  | e -> "exn: " ^ Printexc.to_string e

let ok_row (req : Protocol.request) (r : Sanitizer.Driver.run_result) : row =
  {
    r_request = req;
    r_response =
      {
        Protocol.rs_id = req.Protocol.id;
        rs_ok = true;
        rs_outcome = outcome_string r.Sanitizer.Driver.outcome;
        rs_detected = detected r.Sanitizer.Driver.outcome;
        rs_cycles = r.Sanitizer.Driver.cycles;
        rs_reports = List.length r.Sanitizer.Driver.reports;
        rs_error = "";
      };
    r_cycles = r.Sanitizer.Driver.cycles;
    r_snapshot = r.Sanitizer.Driver.snapshot;
  }

let error_row (req : Protocol.request) (msg : string) : row =
  {
    r_request = req;
    r_response =
      {
        Protocol.rs_id = req.Protocol.id;
        rs_ok = false;
        rs_outcome = "";
        rs_detected = false;
        rs_cycles = 0;
        rs_reports = 0;
        rs_error = msg;
      };
    r_cycles = 0;
    r_snapshot = Telemetry.Snapshot.empty;
  }

let execute ?backend (req : Protocol.request) : row =
  (* per-request backend wins; the engine default covers the rest *)
  let backend =
    match req.Protocol.backend with Some b -> Some b | None -> backend
  in
  match
    match req.Protocol.op with
    | Protocol.Analyze { source; sanitizer; optimize } ->
      (match sanitizer_of_name sanitizer with
       | None -> error_row req ("unknown-sanitizer: " ^ sanitizer)
       | Some san ->
         ok_row req
           (Sanitizer.Driver.run san ~externs:Fuzz.Oracle.externs
              ~budget:analyze_budget ?backend ~optimize source))
    | Protocol.Fuzz { fz_seed; inject } ->
      let p = Fuzz.Gen.generate ~inject (Fuzz.Tape.fresh ~seed:fz_seed) in
      ok_row req
        (Sanitizer.Driver.run (Cecsan.sanitizer ())
           ~externs:Fuzz.Oracle.externs ~budget:analyze_budget ?backend
           ~optimize:true p.Fuzz.Gen.src)
    | Protocol.Bench { kernel; sanitizer } ->
      (match (kernel_of_name kernel, sanitizer_of_name sanitizer) with
       | None, _ -> error_row req ("unknown-kernel: " ^ kernel)
       | _, None -> error_row req ("unknown-sanitizer: " ^ sanitizer)
       | Some w, Some san ->
         ok_row req
           (Sanitizer.Driver.run san ~budget:Harness.Overhead.default_budget
              ?backend w.Workloads.Spec2006.w_source))
  with
  | r -> r
  | exception e -> error_row req (error_string e)

(* Chunk the submission-order list into runs of [batch] consecutive
   requests.  Chunking preserves order, so concat of per-chunk results
   is the sequential result. *)
let chunk (batch : int) (xs : 'a list) : 'a list list =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if k = batch then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (k + 1) rest
  in
  go [] [] 0 xs

let process ?pool ?(batch = 16) ?backend (reqs : Protocol.request list) :
  row list =
  if batch < 1 then invalid_arg "Serve.Engine.process: batch < 1";
  Harness.Pool.maybe_map pool
    (List.map (execute ?backend))
    (chunk batch reqs)
  |> List.concat

(* --- session aggregate ----------------------------------------------------- *)

type aggregate = {
  agg_requests : int;
  agg_ok : int;
  agg_errors : int;
  agg_detected : int;
  agg_by_op : (string * int) list;
  agg_cycles : int;
  agg_snapshot : Telemetry.Snapshot.t;
}

let empty_aggregate =
  {
    agg_requests = 0;
    agg_ok = 0;
    agg_errors = 0;
    agg_detected = 0;
    agg_by_op = [];
    agg_cycles = 0;
    agg_snapshot = Telemetry.Snapshot.empty;
  }

let op_name = function
  | Protocol.Analyze _ -> "analyze"
  | Protocol.Fuzz _ -> "fuzz"
  | Protocol.Bench _ -> "bench"

let bump_assoc key xs =
  let found = ref false in
  let xs =
    List.map
      (fun (k, v) ->
         if String.equal k key then begin
           found := true;
           (k, v + 1)
         end
         else (k, v))
      xs
  in
  if !found then xs
  else List.sort (fun (a, _) (b, _) -> compare a b) ((key, 1) :: xs)

let absorb (a : aggregate) (r : row) : aggregate =
  {
    agg_requests = a.agg_requests + 1;
    agg_ok = a.agg_ok + (if r.r_response.Protocol.rs_ok then 1 else 0);
    agg_errors =
      a.agg_errors + (if r.r_response.Protocol.rs_ok then 0 else 1);
    agg_detected =
      a.agg_detected
      + (if r.r_response.Protocol.rs_detected then 1 else 0);
    agg_by_op = bump_assoc (op_name r.r_request.Protocol.op) a.agg_by_op;
    agg_cycles = a.agg_cycles + r.r_cycles;
    agg_snapshot = Telemetry.Snapshot.merge a.agg_snapshot r.r_snapshot;
  }

let aggregate_rows (a : aggregate) (rows : row list) : aggregate =
  List.fold_left absorb a rows

let aggregate_json (a : aggregate) : Protocol.value =
  let snapshot_value =
    (* Snapshot.to_json emits the integer JSON subset Protocol parses;
       embedding the parsed value keeps the aggregate one well-formed
       object instead of a string-encoded blob. *)
    match Protocol.parse (Telemetry.Snapshot.to_json a.agg_snapshot) with
    | Ok v -> v
    | Error _ -> Protocol.Str (Telemetry.Snapshot.to_json a.agg_snapshot)
  in
  Protocol.Obj
    [ ("requests", Protocol.Int a.agg_requests);
      ("ok", Protocol.Int a.agg_ok);
      ("errors", Protocol.Int a.agg_errors);
      ("detected", Protocol.Int a.agg_detected);
      ("by_op",
       Protocol.Obj
         (List.map (fun (k, v) -> (k, Protocol.Int v)) a.agg_by_op));
      ("service_cycles", Protocol.Int a.agg_cycles);
      ("snapshot", snapshot_value) ]

(* Line-delimited JSON framing for the analysis service.

   Hand-rolled on purpose: the container has no JSON package, the
   protocol only needs the integer subset every other artifact in this
   repo already uses, and a strict ~100-line parser is easier to keep
   deterministic than a dependency.  The printer emits object keys in
   the order stored and escapes only what it must, so equal messages are
   byte-identical -- the property the -j1-vs-j4 determinism checks pin. *)

type value =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of value list
  | Obj of (string * value) list

(* --- printer --------------------------------------------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\t' -> Buffer.add_string buf "\\t"
       | '\r' -> Buffer.add_string buf "\\r"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Str s -> escape_string buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_string buf ", ";
         emit buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string buf ", ";
         escape_string buf k;
         Buffer.add_string buf ": ";
         emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  emit buf v;
  Buffer.contents buf

(* --- parser ---------------------------------------------------------------- *)

exception Bad of string

let parse (s : string) : (value, string) result =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail m = raise (Bad (Printf.sprintf "%s at offset %d" m !pos)) in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.equal (String.sub s !pos l) word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char buf '"'; advance ()
         | Some '\\' -> Buffer.add_char buf '\\'; advance ()
         | Some '/' -> Buffer.add_char buf '/'; advance ()
         | Some 'n' -> Buffer.add_char buf '\n'; advance ()
         | Some 't' -> Buffer.add_char buf '\t'; advance ()
         | Some 'r' -> Buffer.add_char buf '\r'; advance ()
         | Some 'b' -> Buffer.add_char buf '\b'; advance ()
         | Some 'f' -> Buffer.add_char buf '\012'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "truncated \\u escape";
           let hex = String.sub s !pos 4 in
           (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 0x100 ->
              Buffer.add_char buf (Char.chr code);
              pos := !pos + 4
            | Some _ -> fail "\\u escape beyond latin-1"
            | None -> fail "bad \\u escape")
         | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while
      !pos < n && (match s.[!pos] with '0' .. '9' -> true | _ -> false)
    do
      advance ()
    done;
    (match peek () with
     | Some ('.' | 'e' | 'E') -> fail "floats are not part of the protocol"
     | _ -> ());
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some ('-' | '0' .. '9') -> Int (parse_int ())
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

(* --- request / response codecs --------------------------------------------- *)

type op =
  | Analyze of { source : string; sanitizer : string; optimize : bool }
  | Fuzz of { fz_seed : int; inject : bool }
  | Bench of { kernel : string; sanitizer : string }

type request = {
  id : int;
  op : op;
  backend : Vm.Machine.backend option;
}

let backend_name = function
  | Vm.Machine.Interp -> "interp"
  | Vm.Machine.Jit -> "jit"

let backend_of_name = function
  | "interp" -> Some Vm.Machine.Interp
  | "jit" -> Some Vm.Machine.Jit
  | _ -> None

let encode_request (r : request) : value =
  let backend_field =
    match r.backend with
    | None -> []
    | Some b -> [ ("backend", Str (backend_name b)) ]
  in
  let op_fields =
    match r.op with
    | Analyze { source; sanitizer; optimize } ->
      [ ("op", Str "analyze"); ("source", Str source);
        ("sanitizer", Str sanitizer); ("optimize", Bool optimize) ]
    | Fuzz { fz_seed; inject } ->
      [ ("op", Str "fuzz"); ("seed", Int fz_seed); ("inject", Bool inject) ]
    | Bench { kernel; sanitizer } ->
      [ ("op", Str "bench"); ("kernel", Str kernel);
        ("sanitizer", Str sanitizer) ]
  in
  Obj ((("id", Int r.id) :: op_fields) @ backend_field)

let get_str key v =
  match member key v with
  | Some (Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S: expected a string" key)
  | None -> Error (Printf.sprintf "%S: missing" key)

let get_int key v =
  match member key v with
  | Some (Int i) -> Ok i
  | Some _ -> Error (Printf.sprintf "%S: expected an integer" key)
  | None -> Error (Printf.sprintf "%S: missing" key)

let get_bool ?default key v =
  match (member key v, default) with
  | Some (Bool b), _ -> Ok b
  | Some _, _ -> Error (Printf.sprintf "%S: expected a boolean" key)
  | None, Some d -> Ok d
  | None, None -> Error (Printf.sprintf "%S: missing" key)

let ( let* ) = Result.bind

let decode_request (v : value) : (request, string) result =
  let* id = get_int "id" v in
  let* opname = get_str "op" v in
  let* backend =
    match member "backend" v with
    | None | Some Null -> Ok None
    | Some (Str s) ->
      (match backend_of_name s with
       | Some b -> Ok (Some b)
       | None -> Error (Printf.sprintf "backend %S: expected interp|jit" s))
    | Some _ -> Error "\"backend\": expected a string"
  in
  let* op =
    match opname with
    | "analyze" ->
      let* source = get_str "source" v in
      let* sanitizer = get_str "sanitizer" v in
      let* optimize = get_bool ~default:true "optimize" v in
      Ok (Analyze { source; sanitizer; optimize })
    | "fuzz" ->
      let* fz_seed = get_int "seed" v in
      let* inject = get_bool ~default:false "inject" v in
      Ok (Fuzz { fz_seed; inject })
    | "bench" ->
      let* kernel = get_str "kernel" v in
      let* sanitizer = get_str "sanitizer" v in
      Ok (Bench { kernel; sanitizer })
    | other -> Error (Printf.sprintf "op %S: unknown request op" other)
  in
  Ok { id; op; backend }

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_outcome : string;
  rs_detected : bool;
  rs_cycles : int;
  rs_reports : int;
  rs_error : string;
}

let encode_response (r : response) : value =
  Obj
    [ ("id", Int r.rs_id);
      ("status", Str (if r.rs_ok then "ok" else "error"));
      ("outcome", Str r.rs_outcome);
      ("detected", Bool r.rs_detected);
      ("cycles", Int r.rs_cycles);
      ("reports", Int r.rs_reports);
      ("error", Str r.rs_error) ]

let decode_response (v : value) : (response, string) result =
  let* rs_id = get_int "id" v in
  let* status = get_str "status" v in
  let* rs_outcome = get_str "outcome" v in
  let* rs_detected = get_bool "detected" v in
  let* rs_cycles = get_int "cycles" v in
  let* rs_reports = get_int "reports" v in
  let* rs_error = get_str "error" v in
  match status with
  | "ok" | "error" ->
    Ok { rs_id; rs_ok = String.equal status "ok"; rs_outcome; rs_detected;
         rs_cycles; rs_reports; rs_error }
  | other -> Error (Printf.sprintf "status %S: expected ok|error" other)

(* --- stream framing -------------------------------------------------------- *)

type line =
  | Request of request
  | Flush
  | Snapshot
  | Shutdown

let decode_line (raw : string) : (line, string) result =
  if String.trim raw = "" then Ok Flush
  else
    let* v = parse raw in
    let* opname = get_str "op" v in
    match opname with
    | "flush" -> Ok Flush
    | "snapshot" -> Ok Snapshot
    | "shutdown" -> Ok Shutdown
    | _ ->
      let* r = decode_request v in
      Ok (Request r)

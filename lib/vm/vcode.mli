(** The load-time-resolved form of a Tir module, shared by the
    interpreter ({!Machine}) and the threaded-code backend ({!Jit}).

    Resolution pre-computes everything that does not depend on the
    executing machine: global addresses ([Glob] -> [Imm]), direct-call
    targets, per-block cycle costs, frame layouts, and a dense slot id
    per intrinsic call site.  Runtime closures are deliberately kept out
    of the resolved form -- each {!Machine.t} maps [islot]s to its own
    runtime's implementations -- which is what makes one resolution
    reusable across machines and sanitizer runtimes. *)

open Tir.Ir

type vinstr =
  | Vplain of instr  (** operands pre-resolved *)
  | Vcall of { dst : int option; target : vtarget; args : opnd array }
  | Vintrin of {
      dst : int option;
      islot : int;  (** index into the machine's intrinsic table *)
      name : string;
      args : opnd array;  (** site id appended as [Imm] *)
      site : int;
    }
  | Vtelem of { kind : int; site : int }
      (** Checkopt telemetry marker, 0 = elided / 1 = covered: executed
          natively at zero cycle cost *)

and vtarget = Vdirect of loaded_func | Vnamed of string

and loaded_func = {
  lf : func;
  mutable code : vinstr array array;
  mutable terms : term array;
  mutable costs : int array;
      (** per-block cycle cost (telemetry markers excluded) *)
  frame_size : int;
  slot_off : int array;
}

type t = {
  md : modul;
  funcs : (string, loaded_func) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  globals_end : int;
  intrin_names : string array;  (** islot -> intrinsic name *)
}

val max_call_depth : int
(** Recursion bound enforced identically by both backends. *)

val align_up : int -> int -> int

val resolve : modul -> t
(** One full resolution pass; prefer {!resolve_cached}. *)

val resolve_cached : modul -> t
(** Memoized on the module itself ([Tir.Ir.m_vcache]): repeated runs of
    the same compiled [Tir.Ir] resolve exactly once.  [Tir.Ir.clone]
    resets the memo, and mutating passes call [Tir.Ir.clear_vcache], so
    a hit always describes the module as it will execute. *)

val resolutions : int ref
(** Process-wide count of full resolutions, for cache regression
    tests. *)

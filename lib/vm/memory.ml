(* Sparse paged memory with residency accounting.

   Pages are materialized on first touch (like anonymous mmap), and the
   number of distinct pages ever touched is the run's resident set --
   which is how the paper's memory-overhead numbers arise: CECSan's
   metadata table *reserves* 3 MiB but only the entries actually written
   become resident, while ASan's redzones, shadow and quarantine all get
   touched and stay resident.

   The memory does NOT enforce region validity itself; [Machine] checks
   that program accesses fall into mapped program regions.  Sanitizer
   structures (shadow, tag and metadata areas) bypass that check but
   still count toward residency. *)

type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable resident_pages : int;
  (* residency split for reporting: program vs sanitizer areas *)
  mutable sanitizer_pages : int;
  (* last-page cache: consecutive accesses to the same 4 KiB page (the
     overwhelmingly common case -- stack frames, string scans, stencil
     rows) skip the page hashtable.

     Staleness invariant: the cache holds the SAME bytes object as the
     hashtable entry, and nothing in the VM ever removes or replaces a
     page once materialized -- free/realloc recycle address ranges
     without touching the page table, and fault injection (table:N)
     only narrows the metadata table's logical entry limit.  So the
     cache can be stale in page-number only (after another page is
     touched), never in content.  Any future operation that removes or
     swaps a pages entry MUST call [invalidate_cache] or the next
     same-page access reads freed backing store. *)
  mutable last_pn : int;
  mutable last_page : bytes;
}

let invalidate_cache mem =
  mem.last_pn <- min_int;
  mem.last_page <- Bytes.empty

let create () =
  { pages = Hashtbl.create 1024; resident_pages = 0; sanitizer_pages = 0;
    last_pn = min_int; last_page = Bytes.empty }

let page_slow mem a pn =
  match Hashtbl.find_opt mem.pages pn with
  | Some p ->
    mem.last_pn <- pn;
    mem.last_page <- p;
    p
  | None ->
    let p = Bytes.make Layout46.page_size '\000' in
    Hashtbl.replace mem.pages pn p;
    mem.resident_pages <- mem.resident_pages + 1;
    if a >= Layout46.shadow_base then
      mem.sanitizer_pages <- mem.sanitizer_pages + 1;
    mem.last_pn <- pn;
    mem.last_page <- p;
    p

let page mem a =
  let pn = Layout46.page_of a in
  if pn = mem.last_pn then mem.last_page else page_slow mem a pn

let load_byte mem a =
  Char.code (Bytes.get (page mem a) (a land (Layout46.page_size - 1)))

let store_byte mem a v =
  Bytes.set (page mem a) (a land (Layout46.page_size - 1))
    (Char.unsafe_chr (v land 0xff))

(* Little-endian load of [size] (1, 2, 4 or 8) bytes.  8-byte loads read
   the stored 63-bit word (byte 7 carries bits 56..62). *)
let load mem a size =
  let off = a land (Layout46.page_size - 1) in
  if off + size <= Layout46.page_size then begin
    let p = page mem a in
    match size with
    | 1 -> Char.code (Bytes.get p off)
    | 2 -> Char.code (Bytes.get p off)
           lor (Char.code (Bytes.get p (off + 1)) lsl 8)
    | 4 ->
      Char.code (Bytes.get p off)
      lor (Char.code (Bytes.get p (off + 1)) lsl 8)
      lor (Char.code (Bytes.get p (off + 2)) lsl 16)
      lor (Char.code (Bytes.get p (off + 3)) lsl 24)
    | 8 ->
      let lo = Int64.of_int32 (Bytes.get_int32_le p off) in
      let lo = Int64.logand lo 0xFFFF_FFFFL in
      let hi = Int64.of_int32 (Bytes.get_int32_le p (off + 4)) in
      Int64.to_int (Int64.logor lo (Int64.shift_left hi 32))
    | _ ->
      let v = ref 0 in
      for k = size - 1 downto 0 do
        v := (!v lsl 8) lor Char.code (Bytes.get p (off + k))
      done;
      !v
  end
  else begin
    (* page-straddling access: byte by byte *)
    let v = ref 0 in
    for k = size - 1 downto 0 do
      v := (!v lsl 8) lor load_byte mem (a + k)
    done;
    !v
  end

let store mem a size v =
  let off = a land (Layout46.page_size - 1) in
  if off + size <= Layout46.page_size then begin
    let p = page mem a in
    match size with
    | 1 -> Bytes.set p off (Char.unsafe_chr (v land 0xff))
    | 2 ->
      Bytes.set p off (Char.unsafe_chr (v land 0xff));
      Bytes.set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))
    | 4 -> Bytes.set_int32_le p off (Int32.of_int (v land 0xFFFF_FFFF))
    | 8 ->
      Bytes.set_int32_le p off (Int32.of_int (v land 0xFFFF_FFFF));
      Bytes.set_int32_le p (off + 4) (Int32.of_int ((v asr 32) land 0x7FFF_FFFF))
    | _ ->
      for k = 0 to size - 1 do
        store_byte mem (a + k) ((v asr (8 * k)) land 0xff)
      done
  end
  else
    for k = 0 to size - 1 do
      store_byte mem (a + k) ((v asr (8 * k)) land 0xff)
    done

(* Bulk operations used by the libc builtins.  All of them work in
   page-sized chunks (Bytes.blit/Bytes.fill per materialized page)
   rather than byte-at-a-time: a memcpy otherwise pays two page probes
   per byte, which dominates copy-heavy workloads on both backends.
   Chunking touches exactly the pages the byte loop would have, so
   residency accounting is unchanged. *)

let page_end_room a = Layout46.page_size - (a land (Layout46.page_size - 1))

let blit_from_bytes mem (src : bytes) (dst : int) (len : int) =
  let k = ref 0 in
  while !k < len do
    let a = dst + !k in
    let chunk = min (len - !k) (page_end_room a) in
    Bytes.blit src !k (page mem a) (a land (Layout46.page_size - 1)) chunk;
    k := !k + chunk
  done

let copy mem ~src ~dst ~len =
  (* memmove semantics: chunks advance away from the overlap (forward
     when dst precedes src, backward otherwise), and Bytes.blit is
     itself overlap-safe when a chunk's source and destination share a
     page *)
  if dst < src then begin
    let k = ref 0 in
    while !k < len do
      let s = src + !k and d = dst + !k in
      let chunk = min (len - !k) (min (page_end_room s) (page_end_room d)) in
      Bytes.blit (page mem s) (s land (Layout46.page_size - 1))
        (page mem d) (d land (Layout46.page_size - 1)) chunk;
      k := !k + chunk
    done
  end
  else if dst > src then begin
    let k = ref len in
    while !k > 0 do
      (* the chunk ends at offset !k; it may not extend below the start
         of either the source or destination page *)
      let s_end = src + !k and d_end = dst + !k in
      let room a = ((a - 1) land (Layout46.page_size - 1)) + 1 in
      let chunk = min !k (min (room s_end) (room d_end)) in
      let s = s_end - chunk and d = d_end - chunk in
      Bytes.blit (page mem s) (s land (Layout46.page_size - 1))
        (page mem d) (d land (Layout46.page_size - 1)) chunk;
      k := !k - chunk
    done
  end
  else begin
    (* degenerate self-copy: still materialize the pages the byte loop
       would have touched (residency is observable) *)
    let k = ref 0 in
    while !k < len do
      let a = dst + !k in
      let chunk = min (len - !k) (page_end_room a) in
      ignore (page mem a : bytes);
      k := !k + chunk
    done
  end

let fill mem ~dst ~len v =
  let c = Char.unsafe_chr (v land 0xff) in
  let k = ref 0 in
  while !k < len do
    let a = dst + !k in
    let chunk = min (len - !k) (page_end_room a) in
    Bytes.fill (page mem a) (a land (Layout46.page_size - 1)) chunk c;
    k := !k + chunk
  done

(* C-string helpers: read until NUL; bounded by [max] to avoid infinite
   scans over zero pages. *)
let strlen mem a =
  (* page-chunked NUL scan; equivalent to the byte loop: the length is
     returned iff the first NUL sits at an index <= the cap, and the
     trap fires otherwise *)
  let cap = 1 lsl 24 in
  let rec go k =
    let addr = a + k in
    let off = addr land (Layout46.page_size - 1) in
    let avail = Layout46.page_size - off in
    match Bytes.index_from_opt (page mem addr) off '\000' with
    | Some i ->
      let n = k + (i - off) in
      if n > cap then
        Report.trap ~addr:a Report.Segfault ~detail:"unterminated string"
      else n
    | None ->
      if k + avail > cap then
        Report.trap ~addr:a Report.Segfault ~detail:"unterminated string"
      else go (k + avail)
  in
  go 0

let read_len mem a n =
  if n <= 0 then ""
  else begin
    let out = Bytes.create n in
    let k = ref 0 in
    while !k < n do
      let addr = a + !k in
      let off = addr land (Layout46.page_size - 1) in
      let chunk = min (n - !k) (Layout46.page_size - off) in
      Bytes.blit (page mem addr) off out !k chunk;
      k := !k + chunk
    done;
    Bytes.unsafe_to_string out
  end

let read_string mem a = read_len mem a (strlen mem a)

let write_string mem a s =
  let n = String.length s in
  let k = ref 0 in
  while !k < n do
    let addr = a + !k in
    let off = addr land (Layout46.page_size - 1) in
    let chunk = min (n - !k) (Layout46.page_size - off) in
    Bytes.blit_string s !k (page mem addr) off chunk;
    k := !k + chunk
  done;
  store_byte mem (a + n) 0

(* wide strings: 4-byte elements *)
let wcslen mem a =
  let rec go k =
    if k > 1 lsl 22 then
      Report.trap ~addr:a Report.Segfault ~detail:"unterminated wide string"
    else if load mem (a + (4 * k)) 4 = 0 then k
    else go (k + 1)
  in
  go 0

let resident_bytes mem = mem.resident_pages * Layout46.page_size
let program_bytes mem =
  (mem.resident_pages - mem.sanitizer_pages) * Layout46.page_size
let sanitizer_bytes mem = mem.sanitizer_pages * Layout46.page_size

(* Sparse paged memory with residency accounting.

   Pages are materialized on first touch (like anonymous mmap), and the
   number of distinct pages ever touched is the run's resident set --
   which is how the paper's memory-overhead numbers arise: CECSan's
   metadata table *reserves* 3 MiB but only the entries actually written
   become resident, while ASan's redzones, shadow and quarantine all get
   touched and stay resident.

   The memory does NOT enforce region validity itself; [Machine] checks
   that program accesses fall into mapped program regions.  Sanitizer
   structures (shadow, tag and metadata areas) bypass that check but
   still count toward residency. *)

type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable resident_pages : int;
  (* residency split for reporting: program vs sanitizer areas *)
  mutable sanitizer_pages : int;
  (* last-page cache: consecutive accesses to the same 4 KiB page (the
     overwhelmingly common case -- stack frames, string scans, stencil
     rows) skip the page hashtable.

     Staleness invariant: the cache holds the SAME bytes object as the
     hashtable entry, and nothing in the VM ever removes or replaces a
     page once materialized -- free/realloc recycle address ranges
     without touching the page table, and fault injection (table:N)
     only narrows the metadata table's logical entry limit.  So the
     cache can be stale in page-number only (after another page is
     touched), never in content.  Any future operation that removes or
     swaps a pages entry MUST call [invalidate_cache] or the next
     same-page access reads freed backing store. *)
  mutable last_pn : int;
  mutable last_page : bytes;
}

let invalidate_cache mem =
  mem.last_pn <- min_int;
  mem.last_page <- Bytes.empty

let create () =
  { pages = Hashtbl.create 1024; resident_pages = 0; sanitizer_pages = 0;
    last_pn = min_int; last_page = Bytes.empty }

let page_slow mem a pn =
  match Hashtbl.find_opt mem.pages pn with
  | Some p ->
    mem.last_pn <- pn;
    mem.last_page <- p;
    p
  | None ->
    let p = Bytes.make Layout46.page_size '\000' in
    Hashtbl.replace mem.pages pn p;
    mem.resident_pages <- mem.resident_pages + 1;
    if a >= Layout46.shadow_base then
      mem.sanitizer_pages <- mem.sanitizer_pages + 1;
    mem.last_pn <- pn;
    mem.last_page <- p;
    p

let page mem a =
  let pn = Layout46.page_of a in
  if pn = mem.last_pn then mem.last_page else page_slow mem a pn

let load_byte mem a =
  Char.code (Bytes.get (page mem a) (a land (Layout46.page_size - 1)))

let store_byte mem a v =
  Bytes.set (page mem a) (a land (Layout46.page_size - 1))
    (Char.unsafe_chr (v land 0xff))

(* Little-endian load of [size] (1, 2, 4 or 8) bytes.  8-byte loads read
   the stored 63-bit word (byte 7 carries bits 56..62). *)
let load mem a size =
  let off = a land (Layout46.page_size - 1) in
  if off + size <= Layout46.page_size then begin
    let p = page mem a in
    match size with
    | 1 -> Char.code (Bytes.get p off)
    | 2 -> Char.code (Bytes.get p off)
           lor (Char.code (Bytes.get p (off + 1)) lsl 8)
    | 4 ->
      Char.code (Bytes.get p off)
      lor (Char.code (Bytes.get p (off + 1)) lsl 8)
      lor (Char.code (Bytes.get p (off + 2)) lsl 16)
      lor (Char.code (Bytes.get p (off + 3)) lsl 24)
    | 8 ->
      let lo = Int64.of_int32 (Bytes.get_int32_le p off) in
      let lo = Int64.logand lo 0xFFFF_FFFFL in
      let hi = Int64.of_int32 (Bytes.get_int32_le p (off + 4)) in
      Int64.to_int (Int64.logor lo (Int64.shift_left hi 32))
    | _ ->
      let v = ref 0 in
      for k = size - 1 downto 0 do
        v := (!v lsl 8) lor Char.code (Bytes.get p (off + k))
      done;
      !v
  end
  else begin
    (* page-straddling access: byte by byte *)
    let v = ref 0 in
    for k = size - 1 downto 0 do
      v := (!v lsl 8) lor load_byte mem (a + k)
    done;
    !v
  end

let store mem a size v =
  let off = a land (Layout46.page_size - 1) in
  if off + size <= Layout46.page_size then begin
    let p = page mem a in
    match size with
    | 1 -> Bytes.set p off (Char.unsafe_chr (v land 0xff))
    | 2 ->
      Bytes.set p off (Char.unsafe_chr (v land 0xff));
      Bytes.set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))
    | 4 -> Bytes.set_int32_le p off (Int32.of_int (v land 0xFFFF_FFFF))
    | 8 ->
      Bytes.set_int32_le p off (Int32.of_int (v land 0xFFFF_FFFF));
      Bytes.set_int32_le p (off + 4) (Int32.of_int ((v asr 32) land 0x7FFF_FFFF))
    | _ ->
      for k = 0 to size - 1 do
        store_byte mem (a + k) ((v asr (8 * k)) land 0xff)
      done
  end
  else
    for k = 0 to size - 1 do
      store_byte mem (a + k) ((v asr (8 * k)) land 0xff)
    done

(* Bulk operations used by the libc builtins. *)

let blit_from_bytes mem (src : bytes) (dst : int) (len : int) =
  for k = 0 to len - 1 do
    store_byte mem (dst + k) (Char.code (Bytes.get src k))
  done

let copy mem ~src ~dst ~len =
  if dst < src then
    for k = 0 to len - 1 do
      store_byte mem (dst + k) (load_byte mem (src + k))
    done
  else
    for k = len - 1 downto 0 do
      store_byte mem (dst + k) (load_byte mem (src + k))
    done

let fill mem ~dst ~len v =
  for k = 0 to len - 1 do
    store_byte mem (dst + k) v
  done

(* C-string helpers: read until NUL; bounded by [max] to avoid infinite
   scans over zero pages. *)
let strlen mem a =
  let rec go k =
    if k > 1 lsl 24 then
      Report.trap ~addr:a Report.Segfault ~detail:"unterminated string"
    else if load_byte mem (a + k) = 0 then k
    else go (k + 1)
  in
  go 0

let read_string mem a =
  let n = strlen mem a in
  String.init n (fun k -> Char.chr (load_byte mem (a + k)))

let write_string mem a s =
  String.iteri (fun k c -> store_byte mem (a + k) (Char.code c)) s;
  store_byte mem (a + String.length s) 0

(* wide strings: 4-byte elements *)
let wcslen mem a =
  let rec go k =
    if k > 1 lsl 22 then
      Report.trap ~addr:a Report.Segfault ~detail:"unterminated wide string"
    else if load mem (a + (4 * k)) 4 = 0 then k
    else go (k + 1)
  in
  go 0

let resident_bytes mem = mem.resident_pages * Layout46.page_size
let program_bytes mem =
  (mem.resident_pages - mem.sanitizer_pages) * Layout46.page_size
let sanitizer_bytes mem = mem.sanitizer_pages * Layout46.page_size

(* Mutable machine state shared by the interpreter, the libc builtins and
   the sanitizer runtimes. *)

type t = {
  mem : Memory.t;
  alloc : Alloc.t;
  input : Input.t;
  output : Buffer.t;
  mutable cycles : int;
  mutable cycle_budget : int;
  mutable sp : int;                    (* stack pointer, grows down *)
  mutable globals_end : int;           (* end of the globals region *)
  mutable rng : int;                   (* rand() state, seeded *)
  mutable heap_frees : int;            (* statistics *)
  mutable heap_allocs : int;
  (* effective-address mask: all-ones normally; HWASan sets it to model
     ARM top-byte-ignore so that tagged pointers translate transparently *)
  mutable addr_mask : int;
  (* per-site counters for sanitizer intrinsics (monotonic check grouping) *)
  site_state : (int, int) Hashtbl.t;
  (* the per-run diagnostic sink: Halt (raise, historical) or Recover *)
  sink : Report.sink;
  (* deterministic fault injector consulted by allocators and the
     metadata table; inert unless faults were requested.  Always a
     private clone of the injector passed to [create], so shared
     injector values never race or accumulate across runs *)
  fault : Fault.t;
  (* always-on runtime telemetry: per-check-site counters, named
     counters/gauges (surfaced by the driver and --stats), event ring *)
  telem : Telemetry.t;
}

exception Exited of int

(* The one authoritative default cycle budget: the driver, the overhead
   harness and the CLI all inherit it instead of repeating the literal. *)
let default_budget = 2_000_000_000

let create ?(cycle_budget = default_budget) ?(seed = 0x5EED)
    ?(policy = Report.Halt) ?fault () =
  let mem = Memory.create () in
  {
    mem;
    alloc = Alloc.create mem;
    input = Input.create ();
    output = Buffer.create 256;
    cycles = 0;
    cycle_budget;
    sp = Layout46.stack_top;
    globals_end = Layout46.globals_base;
    rng = seed;
    heap_frees = 0;
    heap_allocs = 0;
    addr_mask = -1;
    site_state = Hashtbl.create 64;
    sink = Report.make_sink ~policy ();
    fault = (match fault with Some f -> Fault.clone f | None -> Fault.none ());
    telem = Telemetry.create ();
  }

(* Submits a sanitizer finding through the run's sink.  Under [Halt]
   this raises like [Report.bug] always did; under [Recover] it records
   and returns, and the caller must repair the operation and continue. *)
let report st ?addr ?site ?detail ~by kind =
  Telemetry.record st.telem Telemetry.Check_fail
    (match site with Some s -> s | None -> -1)
    (match addr with Some a -> a | None -> 0);
  Report.submit st.sink ?addr ?site ?detail ~by kind

let recovering st = Report.recovering st.sink

let set_stat st key v = Telemetry.set_gauge st.telem key v

let stat st key = Telemetry.gauge st.telem key

let tick st c =
  st.cycles <- st.cycles + c;
  if st.cycles > st.cycle_budget then
    Report.trap Report.Out_of_cycles
      ~detail:(Printf.sprintf "budget %d" st.cycle_budget)

(* splitmix-style deterministic PRNG for rand() and sanitizer tag draws;
   constants truncated to OCaml's 63-bit int range *)
let next_rand st =
  let z = (st.rng + 0x1E3779B97F4A7C15) land max_int in
  st.rng <- z;
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  (z lxor (z lsr 31)) land max_int

(* Validates that a *program* access ([addr], [size] bytes) falls in a
   mapped region.  Sanitizer areas are not legal program targets. *)
let check_mapped st addr size =
  let a = addr land st.addr_mask in
  let last = a + size - 1 in
  if a < Layout46.null_guard then
    Report.trap ~addr:a
      (if a >= 0 && a < Layout46.null_guard then Report.Null_deref
       else Report.Segfault)
  else if a >= Layout46.globals_base && last < st.globals_end then ()
  else if a >= Layout46.heap_base && last < st.alloc.Alloc.brk then ()
  (* the whole stack region stays mapped, like a real stack: accesses to
     retired frames (dangling stack pointers) do not segfault *)
  else if a >= Layout46.stack_limit && last < Layout46.stack_top then ()
  else Report.trap ~addr:a Report.Segfault

let effective st addr = addr land st.addr_mask

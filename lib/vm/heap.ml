(* Default allocation entry points with cost accounting.  Sanitizer
   runtimes that do NOT replace the allocator (CECSan) call these from
   their own intrinsics; the machine calls them when no runtime hook is
   installed. *)

let malloc (st : State.t) size =
  if Fault.should_oom st.fault then 0  (* injected allocator OOM: NULL *)
  else begin
    State.tick st (Cost.malloc size);
    st.heap_allocs <- st.heap_allocs + 1;
    let p = Alloc.malloc st.alloc size in
    Telemetry.record st.telem Telemetry.Alloc p size;
    p
  end

let free (st : State.t) p =
  State.tick st Cost.free_base;
  st.heap_frees <- st.heap_frees + 1;
  Telemetry.record st.telem Telemetry.Free p 0;
  Alloc.free st.alloc p

let usable_size (st : State.t) p = Alloc.block_size st.alloc p

(** The threaded-code backend: compiles each basic block of a resolved
    module once into a chain of pre-specialized closures, eliminating
    the interpreter's instruction-dispatch inner loop while replicating
    its semantics exactly -- outcomes, diagnostics, cycle accounting,
    fault injection and telemetry are all tick-for-tick identical (the
    differential suite in test_jit.ml enforces this). *)

type ctx = {
  st : State.t;
  itab : Runtime.intrinsic option array;
      (** the machine's islot -> implementation table (shared with the
          interpreter, so late-registration memoization benefits both) *)
  named : string -> int array -> int;
      (** the machine's by-name call path: allocation family, libc with
          interception/TBI, registered externs *)
  reresolve : int -> Runtime.intrinsic option;
      (** re-resolves an intrinsic slot against the machine's runtime,
          memoizing into [itab] *)
  mutable depth : int;
}
(** Per-run context; compiled code receives it through the environment
    threaded at execution time, so a compiled program captures no
    per-run state and is reusable across machines and runtimes. *)

type prog
(** A compiled program. *)

type jfunc
(** A compiled function. *)

val compile : Vcode.t -> prog
(** One full compilation pass; prefer {!compile_cached}. *)

val compile_cached : ?fuel:Tir.Fuel.t -> Vcode.t -> prog
(** Memoized on the module ([Tir.Ir.m_vcache]), alongside the resolved
    form it was compiled from.  Burns [Tir.Ir.module_size] fuel
    UNCONDITIONALLY -- cache hits and misses are indistinguishable to
    the fuel watchdog. *)

val find_func : prog -> string -> jfunc option

val exec_jfunc : ctx -> jfunc -> int array -> int
(** Calls a compiled function under the interpreter's exact call
    protocol (depth/frame accounting, stack-exhaustion trap, restore on
    normal and exceptional exit). *)

val compilations : int ref
(** Process-wide count of full compilations, for cache regression
    tests. *)

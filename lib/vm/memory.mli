(** Sparse paged memory with residency accounting.

    Pages materialize on first touch, mmap-style, and the count of
    distinct pages ever touched is the run's resident set -- the basis
    of the memory-overhead numbers in Tables IV/V.  Accesses above
    [Layout46.shadow_base] are attributed to sanitizer structures. *)

type t = {
  pages : (int, bytes) Hashtbl.t;
  mutable resident_pages : int;
  mutable sanitizer_pages : int;
  mutable last_pn : int;    (** last-page cache: page number ... *)
  mutable last_page : bytes;  (** ... and its backing store *)
}

val create : unit -> t

val invalidate_cache : t -> unit
(** Drops the last-page cache.  Today no VM operation removes or
    replaces a materialized page (free/realloc recycle address ranges;
    fault-injected table shrink only narrows the metadata table's
    logical limit), so the cache can never hold dangling backing store;
    any future page-table mutation that breaks that invariant must call
    this first. *)

val page : t -> int -> bytes
(** The 4 KiB page backing address [a], materialized on first touch and
    left in the last-page cache.  Exposed for the jit's inlined access
    fast path; the returned bytes are always [Layout46.page_size] long. *)

val load_byte : t -> int -> int
val store_byte : t -> int -> int -> unit

val load : t -> int -> int -> int
(** [load mem a size] little-endian load of 1/2/4/8 bytes. *)

val store : t -> int -> int -> int -> unit
(** [store mem a size v]. *)

val blit_from_bytes : t -> bytes -> int -> int -> unit
(** [blit_from_bytes mem src dst len] loads an image (e.g. a global's
    initializer) into simulated memory. *)

val copy : t -> src:int -> dst:int -> len:int -> unit
(** Overlap-safe (memmove semantics). *)

val fill : t -> dst:int -> len:int -> int -> unit

val strlen : t -> int -> int
(** Unchecked C-string scan, capped to avoid unbounded walks. *)

val read_string : t -> int -> string

val read_len : t -> int -> int -> string
(** [read_len mem a n] extracts [n] raw bytes starting at [a]
    (page-chunked; no NUL scan, no mapping check). *)

val write_string : t -> int -> string -> unit
val wcslen : t -> int -> int

val resident_bytes : t -> int
(** All touched pages, in bytes. *)

val program_bytes : t -> int
(** Touched pages outside the sanitizer areas. *)

val sanitizer_bytes : t -> int

(** Bug reports (produced by sanitizers) and hardware/libc-level traps
    (produced by the simulated machine itself).  The distinction carries
    the evaluation semantics: a run that merely crashes has NOT been
    "detected" by a sanitizer. *)

type bug_kind =
  | Oob_read
  | Oob_write
  | Use_after_free
  | Double_free
  | Invalid_free
  | Sub_object_overflow
  | Other of string

type t = {
  r_kind : bug_kind;
  r_addr : int;     (** faulting address, stripped *)
  r_site : int;     (** instrumentation site id, -1 if unknown *)
  r_by : string;    (** reporting sanitizer *)
  r_detail : string;
}

type trap_kind =
  | Segfault
  | Null_deref
  | Stack_exhausted
  | Heap_corruption   (** glibc-style allocator abort *)
  | Div_by_zero
  | Out_of_cycles
  | Unresolved_external of string

type trap = { t_kind : trap_kind; t_addr : int; t_detail : string }

exception Bug of t
exception Trap of trap

val bug : ?addr:int -> ?site:int -> ?detail:string -> by:string ->
  bug_kind -> 'a
(** Raises [Bug]. *)

val trap : ?addr:int -> ?detail:string -> trap_kind -> 'a
(** Raises [Trap]. *)

(** {1 The per-run diagnostic sink}

    [Halt] reproduces the historical raise-on-first-finding behavior and
    is the default.  [Recover] records findings (deduplicated by
    kind+address+site, capped at [max_reports]) and returns to the
    caller, which must repair the failed operation and continue — the
    moral equivalent of ASan's [halt_on_error=0]. *)

type policy = Halt | Recover of { max_reports : int }

type sink = {
  mutable policy : policy;
  mutable recorded_rev : t list;   (** newest first; use [sink_reports] *)
  seen : (string, unit) Hashtbl.t;
  mutable n_recorded : int;
  mutable suppressed : int;        (** deduplicated or over the cap *)
}

val default_max_reports : int

val make_sink : ?policy:policy -> unit -> sink

val submit : sink -> ?addr:int -> ?site:int -> ?detail:string ->
  by:string -> bug_kind -> unit
(** Under [Halt]: raises [Bug].  Under [Recover]: records or suppresses
    the finding and returns. *)

val sink_reports : sink -> t list
(** Recorded reports in submission order. *)

val sink_recorded : sink -> int
val sink_suppressed : sink -> int
val recovering : sink -> bool

val kind_to_string : bug_kind -> string
val trap_kind_to_string : trap_kind -> string
val pp : Format.formatter -> t -> unit
val pp_trap : Format.formatter -> trap -> unit

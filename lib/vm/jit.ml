(* The threaded-code backend.

   [compile] translates each basic block of a resolved module
   ({!Vcode.t}) ONCE into a chain of pre-specialized OCaml closures:
   every instruction becomes a [step] closure with its successor
   captured, so executing a block is a run of direct calls with no
   instruction dispatch.  Beyond removing the interpreter's
   match-on-vinstr inner loop, compilation specializes everything it
   can see statically:

   - operands: constants fold into the closure, register indices
     statically within the frame's register file compile to unchecked
     array accesses, and the common ALU/compare shapes (reg op reg,
     reg op imm) become single closures with no operand-evaluator
     indirection;
   - memory: loads and stores inline the whole fast path -- the cycle
     tick, tag masking, the mapped-region check, the last-page-cache
     probe and the little-endian byte assembly -- per static size
     class, falling back to the shared State/Memory routines on the
     slow paths (possibly-unmapped address, page straddle, unusual
     size);
   - control: a compare feeding the block's conditional branch fuses
     into one closure (the compare result is still written to its
     register, observably identical);
   - calls/intrinsics: argument vectors are built by arity-specialized
     closures, direct callees bind to their compiled function at
     compile time.

   Equivalence with the interpreter is a hard invariant, enforced by
   the differential suite in test_jit.ml.  The deterministic cycle
   accounting is replicated tick-for-tick:

   - block entry ticks the precomputed block cost (telemetry markers
     excluded) before any instruction effect;
   - calls tick [Cost.call - 1] BEFORE argument evaluation;
   - loads/stores tick [Cost.load - 1]/[Cost.store - 1], then compute
     the effective (tag-masked) address, then check the mapping, then
     touch memory -- loads of pointer width pass through the
     fault-injection filter exactly as in the interpreter;
   - a conditional branch ticks 1 before evaluating its condition;
   - telemetry markers run at zero cycles, and the per-site executed
     counter is bumped after argument evaluation but before intrinsic
     dispatch, so failing checks still count.

   Compiled closures capture NO per-run state: machine state, the
   intrinsic table and the by-name call path all arrive through the
   [env] threaded at execution time.  That is what makes a compiled
   program cacheable on the module ([Tir.Ir.m_vcache]) and reusable
   across machines and sanitizer runtimes, exactly like the resolved
   form it was compiled from. *)

open Tir.Ir

(* Per-run context: everything a compiled program needs from the
   executing machine.  [named] is the machine's by-name slow path
   (allocation family, libc with interception/TBI, registered externs);
   [reresolve] re-resolves a late-registered intrinsic slot, memoizing
   into the machine's table. *)
type ctx = {
  st : State.t;
  itab : Runtime.intrinsic option array;
  named : string -> int array -> int;
  reresolve : int -> Runtime.intrinsic option;
  mutable depth : int;
}

(* Per-frame environment: one per VM call, threaded through every step
   of the callee's code. *)
type env = {
  c : ctx;
  regs : int array;
  fb : int;  (* frame base, for stack-slot addressing *)
  mutable ret : int;
}

type step = env -> unit

type jfunc = {
  jlf : Vcode.loaded_func;
  nregs : int;  (* register-file size (>= 1), = Array.length regs *)
  params : int list;
  mutable entry : step;  (* block 0; patched once all blocks compile *)
  mutable spare : int array option;
    (* retired register file, reused (re-zeroed) by the next call to
       this function.  Large register files otherwise cost a major-heap
       allocation on every call.  Nothing escapes a call with a
       reference to its register file, so reuse after return is safe;
       recursive activations simply allocate when the spare is taken. *)
}

type prog = { vc : Vcode.t; jfuncs : (string, jfunc) Hashtbl.t }

let align_down n a = n / a * a

let dead_step : step = fun _ -> assert false

(* The call protocol, byte-for-byte the interpreter's exec_func: depth
   and frame accounting, the stack-exhaustion trap (which restores
   depth/sp first), parameter passing, and restoration on both normal
   and exceptional exit. *)
let exec_jfunc (c : ctx) (jf : jfunc) (args : int array) : int =
  let st = c.st in
  c.depth <- c.depth + 1;
  let saved_sp = st.State.sp in
  let frame_base = align_down (st.State.sp - jf.jlf.Vcode.frame_size) 16 in
  if frame_base < Layout46.stack_limit || c.depth > Vcode.max_call_depth
  then begin
    c.depth <- c.depth - 1;
    st.State.sp <- saved_sp;
    Report.trap ~addr:frame_base Report.Stack_exhausted
  end;
  st.State.sp <- frame_base;
  let regs =
    match jf.spare with
    | Some r ->
      jf.spare <- None;
      Array.fill r 0 jf.nregs 0;
      r
    | None -> Array.make jf.nregs 0
  in
  let env = { c; regs; fb = frame_base; ret = 0 } in
  List.iteri
    (fun i r -> if i < Array.length args then env.regs.(r) <- args.(i))
    jf.params;
  (try jf.entry env
   with e ->
     c.depth <- c.depth - 1;
     st.State.sp <- saved_sp;
     raise e);
  c.depth <- c.depth - 1;
  st.State.sp <- saved_sp;
  jf.spare <- Some regs;
  env.ret

let call_m1 = Cost.call - 1
let load_m1 = Cost.load - 1
let store_m1 = Cost.store - 1
let page_mask = Layout46.page_size - 1

(* Cold out-of-budget path shared by the inlined ticks below; the
   diagnostic is State.tick's, byte for byte. *)
let out_of_cycles st =
  Report.trap Report.Out_of_cycles
    ~detail:(Printf.sprintf "budget %d" st.State.cycle_budget)

let sign_extend v size =
  let bits = size * 8 in
  let v = v land ((1 lsl bits) - 1) in
  if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let zero_extend v size = v land ((1 lsl (size * 8)) - 1)

(* The mapped-region acceptance of State.check_mapped, inlined.  Every
   region base sits above the null guard, so an address this accepts is
   exactly one check_mapped accepts; on rejection the shared routine is
   called for the identical trap (and, defensively, execution proceeds
   if it somehow accepts). *)
let chk st a size =
  let last = a + size - 1 in
  if
    not
      ((a >= Layout46.heap_base && last < st.State.alloc.Alloc.brk)
       || (a >= Layout46.stack_limit && last < Layout46.stack_top)
       || (a >= Layout46.globals_base && last < st.State.globals_end))
  then State.check_mapped st a size

(* Raw sized accesses over the last-page cache; callers have checked the
   mapping (so [a] is nonnegative and the unsafe byte accesses stay
   within the page, which is always [Layout46.page_size] long).  Byte
   assembly is exactly Memory.load/store's little-endian semantics --
   an 8-byte load reassembles the stored 63-bit word (byte 7 carries
   bits 56..62), and both paths are mod-2^63 arithmetic throughout. *)
let ld1 st a =
  let mem = st.State.mem in
  let p =
    if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
    else Memory.page mem a
  in
  Char.code (Bytes.unsafe_get p (a land page_mask))

let ld2 st a =
  let off = a land page_mask in
  if off + 2 <= Layout46.page_size then begin
    let mem = st.State.mem in
    let p =
      if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
      else Memory.page mem a
    in
    Char.code (Bytes.unsafe_get p off)
    lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
  end
  else Memory.load st.State.mem a 2

let ld4 st a =
  let off = a land page_mask in
  if off + 4 <= Layout46.page_size then begin
    let mem = st.State.mem in
    let p =
      if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
      else Memory.page mem a
    in
    Char.code (Bytes.unsafe_get p off)
    lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
    lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
    lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
  end
  else Memory.load st.State.mem a 4

(* includes the interpreter's pointer-width fault-injection filter; the
   filter's stateful branch must run whenever injection is armed *)
let ld8 st a =
  let off = a land page_mask in
  let v =
    if off + 8 <= Layout46.page_size then begin
      let mem = st.State.mem in
      let p =
        if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
        else Memory.page mem a
      in
      Char.code (Bytes.unsafe_get p off)
      lor (Char.code (Bytes.unsafe_get p (off + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get p (off + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get p (off + 3)) lsl 24)
      lor (Char.code (Bytes.unsafe_get p (off + 4)) lsl 32)
      lor (Char.code (Bytes.unsafe_get p (off + 5)) lsl 40)
      lor (Char.code (Bytes.unsafe_get p (off + 6)) lsl 48)
      lor (Char.code (Bytes.unsafe_get p (off + 7)) lsl 56)
    end
    else Memory.load st.State.mem a 8
  in
  match st.State.fault.Fault.tagflip_every with
  | None -> v
  | Some _ -> Fault.corrupt_load st.State.fault v

let sto1 st a v =
  let mem = st.State.mem in
  let p =
    if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
    else Memory.page mem a
  in
  Bytes.unsafe_set p (a land page_mask) (Char.unsafe_chr (v land 0xff))

let sto2 st a v =
  let off = a land page_mask in
  if off + 2 <= Layout46.page_size then begin
    let mem = st.State.mem in
    let p =
      if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
      else Memory.page mem a
    in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v lsr 8) land 0xff))
  end
  else Memory.store st.State.mem a 2 v

let sto4 st a v =
  let off = a land page_mask in
  if off + 4 <= Layout46.page_size then begin
    let mem = st.State.mem in
    let p =
      if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
      else Memory.page mem a
    in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v asr 24) land 0xff))
  end
  else Memory.store st.State.mem a 4 v

(* byte 7 keeps only bits 56..62: the memory holds 63-bit words *)
let sto8 st a v =
  let off = a land page_mask in
  if off + 8 <= Layout46.page_size then begin
    let mem = st.State.mem in
    let p =
      if Layout46.page_of a = mem.Memory.last_pn then mem.Memory.last_page
      else Memory.page mem a
    in
    Bytes.unsafe_set p off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set p (off + 1) (Char.unsafe_chr ((v asr 8) land 0xff));
    Bytes.unsafe_set p (off + 2) (Char.unsafe_chr ((v asr 16) land 0xff));
    Bytes.unsafe_set p (off + 3) (Char.unsafe_chr ((v asr 24) land 0xff));
    Bytes.unsafe_set p (off + 4) (Char.unsafe_chr ((v asr 32) land 0xff));
    Bytes.unsafe_set p (off + 5) (Char.unsafe_chr ((v asr 40) land 0xff));
    Bytes.unsafe_set p (off + 6) (Char.unsafe_chr ((v asr 48) land 0xff));
    Bytes.unsafe_set p (off + 7) (Char.unsafe_chr ((v asr 56) land 0x7f))
  end
  else Memory.store st.State.mem a 8 v

let compile_func (jfuncs : (string, jfunc) Hashtbl.t) (jf : jfunc) : unit =
  let lf = jf.jlf in
  let cap = jf.nregs in
  (* a register index statically within the frame's register file needs
     no bounds check; anything else keeps the interpreter's behaviour on
     malformed IR (a checked access that raises) *)
  let fast r = r >= 0 && r < cap in
  (* generic operand evaluators (the specialized shapes below bypass
     them): constants become constant closures, and a global still
     unresolved after {!Vcode.resolve} is unknown by construction -- it
     compiles to the interpreter's execution-time trap *)
  let ev : opnd -> env -> int = function
    | Imm v -> fun _ -> v
    | Reg r when fast r -> fun env -> Array.unsafe_get env.regs r
    | Reg r -> fun env -> env.regs.(r)
    | Glob g ->
      fun _ -> Report.trap Report.Segfault ~detail:("unknown global " ^ g)
  in
  let set : int -> env -> int -> unit = fun d ->
    if fast d then fun env v -> Array.unsafe_set env.regs d v
    else fun env v -> env.regs.(d) <- v
  in
  (* arity-specialized argument-vector builders for calls/intrinsics *)
  let mk_argv (evs : (env -> int) array) : env -> int array =
    match evs with
    | [||] -> fun _ -> [||]
    | [| e0 |] -> fun env -> [| e0 env |]
    | [| e0; e1 |] -> fun env -> [| e0 env; e1 env |]
    | [| e0; e1; e2 |] -> fun env -> [| e0 env; e1 env; e2 env |]
    | [| e0; e1; e2; e3 |] -> fun env -> [| e0 env; e1 env; e2 env; e3 env |]
    | evs -> fun env -> Array.map (fun e -> e env) evs
  in
  let nblocks = Array.length lf.Vcode.code in
  (* forwarding cells let branches reference blocks not yet compiled
     (loops); they are patched below once every block has a step.  The
     one-load indirection per taken branch is the classic threaded-code
     trampoline. *)
  let cells = Array.init nblocks (fun _ -> ref dead_step) in
  let goto b : step =
    let cell = cells.(b) in
    fun env -> !cell env
  in
  (* interpreter-equivalent slow paths for loads/stores the fast arms
     below do not cover (unusual size, unchecked destination register) *)
  let generic_load dst addr size signed (next : step) : step =
    let ea = ev addr in
    let set = set dst in
    fun env ->
      let st = env.c.st in
      State.tick st load_m1;
      let a = State.effective st (ea env) in
      State.check_mapped st a size;
      let v = Memory.load st.State.mem a size in
      let v = if size >= 8 then Fault.corrupt_load st.State.fault v else v in
      set env
        (if size >= 8 then v
         else if signed then sign_extend v size
         else zero_extend v size);
      next env
  in
  let generic_store addr src size (next : step) : step =
    let ea = ev addr in
    let es = ev src in
    fun env ->
      let st = env.c.st in
      State.tick st store_m1;
      let a = State.effective st (ea env) in
      State.check_mapped st a size;
      Memory.store st.State.mem a size (es env);
      next env
  in
  let compile_instr (vi : Vcode.vinstr) (next : step) : step =
    match vi with
    | Vcode.Vtelem { kind; site } ->
      if kind = 0 then
        (fun env ->
           Telemetry.bump_elided env.c.st.State.telem site;
           next env)
      else
        (fun env ->
           Telemetry.bump_covered env.c.st.State.telem site;
           next env)
    | Vcode.Vcall { dst; target; args } ->
      let argv = mk_argv (Array.map ev args) in
      let invoke : env -> int array -> int =
        match target with
        | Vcode.Vdirect clf ->
          (* every Vdirect target is a module function, so its compiled
             form is in the table by construction *)
          let cjf = Hashtbl.find jfuncs clf.Vcode.lf.f_name in
          fun env a -> exec_jfunc env.c cjf a
        | Vcode.Vnamed callee -> fun env a -> env.c.named callee a
      in
      (match dst with
       | Some d ->
         let set = set d in
         fun env ->
           let st = env.c.st in
           st.State.cycles <- st.State.cycles + call_m1;
           if st.State.cycles > st.State.cycle_budget then out_of_cycles st;
           let a = argv env in
           set env (invoke env a);
           next env
       | None ->
         fun env ->
           let st = env.c.st in
           st.State.cycles <- st.State.cycles + call_m1;
           if st.State.cycles > st.State.cycle_budget then out_of_cycles st;
           let a = argv env in
           ignore (invoke env a : int);
           next env)
    | Vcode.Vintrin { dst; islot; name; args; site } ->
      let argv = mk_argv (Array.map ev args) in
      let dispatch env a =
        match env.c.itab.(islot) with
        | Some fn -> fn env.c.st a
        | None ->
          (* registered after load? re-resolve once, else trap *)
          (match env.c.reresolve islot with
           | Some fn -> fn env.c.st a
           | None ->
             Report.trap (Report.Unresolved_external ("intrinsic " ^ name)))
      in
      (match dst with
       | Some d ->
         let set = set d in
         fun env ->
           let a = argv env in
           (* executed bump BEFORE dispatch, so failing checks count *)
           Telemetry.bump_executed env.c.st.State.telem site;
           set env (dispatch env a);
           next env
       | None ->
         fun env ->
           let a = argv env in
           Telemetry.bump_executed env.c.st.State.telem site;
           ignore (dispatch env a : int);
           next env)
    | Vcode.Vplain i ->
      (match i with
       | Imov { dst = d; src } when fast d ->
         (match src with
          | Imm v ->
            fun env -> Array.unsafe_set env.regs d v; next env
          | Reg s when fast s ->
            fun env ->
              let regs = env.regs in
              Array.unsafe_set regs d (Array.unsafe_get regs s);
              next env
          | src ->
            let e = ev src in
            fun env -> Array.unsafe_set env.regs d (e env); next env)
       | Imov { dst; src } ->
         let e = ev src in
         fun env -> env.regs.(dst) <- e env; next env
       | Ibin { op; dst = d; a; b } when fast d ->
         (* the hot ALU shapes compile to closures with no operand
            indirection at all *)
         let module A = Array in
         (match op, a, b with
          | Add, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x + A.unsafe_get r y); next env
          | Add, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x + y); next env
          | Add, Imm x, Reg y when fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (x + A.unsafe_get r y); next env
          | Sub, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x - A.unsafe_get r y); next env
          | Sub, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x - y); next env
          | Sub, Imm x, Reg y when fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (x - A.unsafe_get r y); next env
          | Mul, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x * A.unsafe_get r y); next env
          | Mul, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x * y); next env
          | Mul, Imm x, Reg y when fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (x * A.unsafe_get r y); next env
          | And, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x land A.unsafe_get r y);
              next env
          | And, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x land y); next env
          | Or, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x lor A.unsafe_get r y);
              next env
          | Or, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x lor y); next env
          | Xor, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x lxor A.unsafe_get r y);
              next env
          | Xor, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x lxor y); next env
          | Shl, Reg x, Imm y when fast x ->
            let y = y land 63 in
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x lsl y); next env
          | Shr, Reg x, Imm y when fast x ->
            let y = y land 63 in
            fun env -> let r = env.regs in
              A.unsafe_set r d (A.unsafe_get r x asr y); next env
          | _ ->
            let ax = ev a and bx = ev b in
            (match op with
             | Add -> fun env ->
                 A.unsafe_set env.regs d (ax env + bx env); next env
             | Sub -> fun env ->
                 A.unsafe_set env.regs d (ax env - bx env); next env
             | Mul -> fun env ->
                 A.unsafe_set env.regs d (ax env * bx env); next env
             | Div ->
               fun env ->
                 let x = ax env and y = bx env in
                 if y = 0 then Report.trap Report.Div_by_zero;
                 A.unsafe_set env.regs d (x / y);
                 next env
             | Mod ->
               fun env ->
                 let x = ax env and y = bx env in
                 if y = 0 then Report.trap Report.Div_by_zero;
                 A.unsafe_set env.regs d (x mod y);
                 next env
             | Shl -> fun env ->
                 A.unsafe_set env.regs d (ax env lsl (bx env land 63));
                 next env
             | Shr -> fun env ->
                 A.unsafe_set env.regs d (ax env asr (bx env land 63));
                 next env
             | And -> fun env ->
                 A.unsafe_set env.regs d (ax env land bx env); next env
             | Or -> fun env ->
                 A.unsafe_set env.regs d (ax env lor bx env); next env
             | Xor -> fun env ->
                 A.unsafe_set env.regs d (ax env lxor bx env); next env))
       | Ibin { op; dst; a; b } ->
         let ax = ev a and bx = ev b in
         let f : int -> int -> int =
           match op with
           | Add -> ( + )
           | Sub -> ( - )
           | Mul -> ( * )
           | Div ->
             fun x y ->
               if y = 0 then Report.trap Report.Div_by_zero else x / y
           | Mod ->
             fun x y ->
               if y = 0 then Report.trap Report.Div_by_zero else x mod y
           | Shl -> fun x y -> x lsl (y land 63)
           | Shr -> fun x y -> x asr (y land 63)
           | And -> ( land )
           | Or -> ( lor )
           | Xor -> ( lxor )
         in
         fun env -> env.regs.(dst) <- f (ax env) (bx env); next env
       | Icmp { op; dst = d; a; b } when fast d ->
         let module A = Array in
         (match op, a, b with
          | Eq, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x = A.unsafe_get r y then 1 else 0);
              next env
          | Eq, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x = y then 1 else 0);
              next env
          | Ne, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x <> A.unsafe_get r y then 1 else 0);
              next env
          | Ne, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x <> y then 1 else 0);
              next env
          | Lt, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x < A.unsafe_get r y then 1 else 0);
              next env
          | Lt, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x < y then 1 else 0);
              next env
          | Le, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x <= A.unsafe_get r y then 1 else 0);
              next env
          | Le, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x <= y then 1 else 0);
              next env
          | Gt, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x > A.unsafe_get r y then 1 else 0);
              next env
          | Gt, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x > y then 1 else 0);
              next env
          | Ge, Reg x, Reg y when fast x && fast y ->
            fun env -> let r = env.regs in
              A.unsafe_set r d
                (if A.unsafe_get r x >= A.unsafe_get r y then 1 else 0);
              next env
          | Ge, Reg x, Imm y when fast x ->
            fun env -> let r = env.regs in
              A.unsafe_set r d (if A.unsafe_get r x >= y then 1 else 0);
              next env
          | _ ->
            let ax = ev a and bx = ev b in
            let f : int -> int -> bool =
              match op with
              | Eq -> ( = )
              | Ne -> ( <> )
              | Lt -> ( < )
              | Le -> ( <= )
              | Gt -> ( > )
              | Ge -> ( >= )
            in
            fun env ->
              A.unsafe_set env.regs d (if f (ax env) (bx env) then 1 else 0);
              next env)
       | Icmp { op; dst; a; b } ->
         let ax = ev a and bx = ev b in
         let f : int -> int -> bool =
           match op with
           | Eq -> ( = )
           | Ne -> ( <> )
           | Lt -> ( < )
           | Le -> ( <= )
           | Gt -> ( > )
           | Ge -> ( >= )
         in
         fun env ->
           env.regs.(dst) <- (if f (ax env) (bx env) then 1 else 0);
           next env
       | Isext { dst; src; bytes } ->
         let set = set dst in
         let e = ev src in
         if bytes >= 8 then (fun env -> set env (e env); next env)
         else begin
           let bits = bytes * 8 in
           let mask = (1 lsl bits) - 1 in
           let sbit = 1 lsl (bits - 1) in
           let wrap = 1 lsl bits in
           fun env ->
             let v = e env land mask in
             set env (if v land sbit <> 0 then v - wrap else v);
             next env
         end
       | Iload { dst = d; addr; size; signed; _ } when fast d ->
         let ea = ev addr in
         (match size, signed with
          | 1, false ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 1;
              Array.unsafe_set env.regs d (ld1 st a);
              next env
          | 1, true ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 1;
              let v = ld1 st a in
              Array.unsafe_set env.regs d
                (if v land 0x80 <> 0 then v - 0x100 else v);
              next env
          | 2, false ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 2;
              Array.unsafe_set env.regs d (ld2 st a);
              next env
          | 2, true ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 2;
              let v = ld2 st a in
              Array.unsafe_set env.regs d
                (if v land 0x8000 <> 0 then v - 0x10000 else v);
              next env
          | 4, false ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 4;
              Array.unsafe_set env.regs d (ld4 st a);
              next env
          | 4, true ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 4;
              let v = ld4 st a in
              Array.unsafe_set env.regs d
                (if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v);
              next env
          | 8, _ ->
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + load_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 8;
              Array.unsafe_set env.regs d (ld8 st a);
              next env
          | _ -> generic_load d addr size signed next)
       | Iload { dst; addr; size; signed; _ } ->
         generic_load dst addr size signed next
       | Istore { addr; src; size; _ } ->
         (match size with
          | 1 ->
            let ea = ev addr in
            let es = ev src in
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + store_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 1;
              sto1 st a (es env);
              next env
          | 2 ->
            let ea = ev addr in
            let es = ev src in
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + store_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 2;
              sto2 st a (es env);
              next env
          | 4 ->
            let ea = ev addr in
            let es = ev src in
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + store_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 4;
              sto4 st a (es env);
              next env
          | 8 ->
            let ea = ev addr in
            let es = ev src in
            fun env ->
              let st = env.c.st in
              st.State.cycles <- st.State.cycles + store_m1;
              if st.State.cycles > st.State.cycle_budget then
                out_of_cycles st;
              let a = ea env land st.State.addr_mask in
              chk st a 8;
              sto8 st a (es env);
              next env
          | _ -> generic_store addr src size next)
       | Islot { dst; slot } ->
         let off = lf.Vcode.slot_off.(slot) in
         if fast dst then
           (fun env ->
              Array.unsafe_set env.regs dst (env.fb + off);
              next env)
         else (fun env -> env.regs.(dst) <- env.fb + off; next env)
       | Igep { dst = d; base; idx; info } when fast d ->
         let module A = Array in
         (match info, idx with
          | Gfield { off; _ }, _ ->
            (match base with
             | Reg x when fast x ->
               fun env -> let r = env.regs in
                 A.unsafe_set r d (A.unsafe_get r x + off); next env
             | base ->
               let eb = ev base in
               fun env -> A.unsafe_set env.regs d (eb env + off); next env)
          | Gindex { elem_size; _ }, Some ix ->
            (match base, ix with
             | Reg x, Reg y when fast x && fast y ->
               fun env -> let r = env.regs in
                 A.unsafe_set r d
                   (A.unsafe_get r x + (A.unsafe_get r y * elem_size));
                 next env
             | base, ix ->
               let eb = ev base and ei = ev ix in
               fun env ->
                 A.unsafe_set env.regs d (eb env + (ei env * elem_size));
                 next env)
          | Gindex _, None ->
            let eb = ev base in
            fun env -> A.unsafe_set env.regs d (eb env); next env)
       | Igep { dst; base; idx; info } ->
         let eb = ev base in
         (match info, idx with
          | Gfield { off; _ }, _ ->
            fun env -> env.regs.(dst) <- eb env + off; next env
          | Gindex { elem_size; _ }, Some ix ->
            let ei = ev ix in
            fun env ->
              env.regs.(dst) <- eb env + (ei env * elem_size);
              next env
          | Gindex _, None ->
            fun env -> env.regs.(dst) <- eb env; next env)
       | Icall _ | Iintrin _ ->
         (* Vcode.resolve lowers every call/intrinsic to
            Vcall/Vintrin/Vtelem; a plain one cannot reach the backend *)
         assert false)
  in
  let compile_term (t : term) : step =
    match t with
    | Tret None -> fun env -> env.ret <- 0
    | Tret (Some o) ->
      let e = ev o in
      fun env -> env.ret <- e env
    | Tbr b -> goto b
    | Tcbr (c, bt, bf) ->
      let ec = ev c in
      let gt = goto bt and gf = goto bf in
      fun env ->
        let st = env.c.st in
        st.State.cycles <- st.State.cycles + 1;
        if st.State.cycles > st.State.cycle_budget then out_of_cycles st;
        if ec env <> 0 then gt env else gf env
  in
  (* A compare feeding the block's conditional branch fuses into one
     closure.  Observably identical to compare-then-branch: the result
     is still written to its register first, and the interpreter also
     ticks the branch only after the compare wrote its register. *)
  let fused op d a b bt bf : step =
    let gt = goto bt and gf = goto bf in
    let module A = Array in
    let cmp : env -> bool =
      match op, a, b with
      | Eq, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x = A.unsafe_get r y
      | Eq, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x = y
      | Ne, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x <> A.unsafe_get r y
      | Ne, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x <> y
      | Lt, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x < A.unsafe_get r y
      | Lt, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x < y
      | Le, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x <= A.unsafe_get r y
      | Le, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x <= y
      | Gt, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x > A.unsafe_get r y
      | Gt, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x > y
      | Ge, Reg x, Reg y when fast x && fast y ->
        fun env -> let r = env.regs in A.unsafe_get r x >= A.unsafe_get r y
      | Ge, Reg x, Imm y when fast x ->
        fun env -> A.unsafe_get env.regs x >= y
      | _ ->
        let ax = ev a and bx = ev b in
        (match op with
         | Eq -> fun env -> ax env = bx env
         | Ne -> fun env -> ax env <> bx env
         | Lt -> fun env -> ax env < bx env
         | Le -> fun env -> ax env <= bx env
         | Gt -> fun env -> ax env > bx env
         | Ge -> fun env -> ax env >= bx env)
    in
    fun env ->
      let c = cmp env in
      A.unsafe_set env.regs d (if c then 1 else 0);
      let st = env.c.st in
      st.State.cycles <- st.State.cycles + 1;
      if st.State.cycles > st.State.cycle_budget then out_of_cycles st;
      if c then gt env else gf env
  in
  for b = 0 to nblocks - 1 do
    let code = lf.Vcode.code.(b) in
    let n = Array.length code in
    let term = lf.Vcode.terms.(b) in
    (* detect the compare/branch fusion; [upto] instructions remain to
       compile ahead of the (possibly fused) tail *)
    let tail, upto =
      match term with
      | Tcbr (Reg c, bt, bf) when n > 0 && fast c ->
        (match code.(n - 1) with
         | Vcode.Vplain (Icmp { op; dst; a; b = cb }) when dst = c ->
           fused op c a cb bt bf, n - 1
         | _ -> compile_term term, n)
      | _ -> compile_term term, n
    in
    let body = ref tail in
    for i = upto - 1 downto 0 do
      body := compile_instr code.(i) !body
    done;
    let body = !body in
    (* block entry: tick the precomputed cost (telemetry markers are
       free), then fall into the instruction chain *)
    let cost = lf.Vcode.costs.(b) in
    cells.(b) :=
      (fun env ->
         let st = env.c.st in
         st.State.cycles <- st.State.cycles + cost;
         if st.State.cycles > st.State.cycle_budget then out_of_cycles st;
         body env)
  done;
  jf.entry <- !(cells.(0))

(* Test instrumentation: how many full compilations have run in this
   process.  The cache regression tests pin that repeated runs of one
   module bump this exactly once. *)
let compilations = ref 0

let compile (vc : Vcode.t) : prog =
  incr compilations;
  let jfuncs = Hashtbl.create 17 in
  (* two phases, like Vcode.resolve: create every function's record
     first so direct calls can bind, then compile the bodies *)
  Hashtbl.iter
    (fun name lf ->
       Hashtbl.replace jfuncs name
         { jlf = lf; nregs = max lf.Vcode.lf.f_nregs 1;
           params = lf.Vcode.lf.f_params; entry = dead_step;
           spare = None })
    vc.Vcode.funcs;
  Hashtbl.iter (fun _ jf -> compile_func jfuncs jf) jfuncs;
  { vc; jfuncs }

type Tir.Ir.vm_cache += Cached of prog

let compile_cached ?fuel (vc : Vcode.t) : prog =
  (* fuel burn FIRST and unconditionally: a cache hit must be
     indistinguishable from a miss to the fuel watchdog *)
  Tir.Fuel.burn fuel (Tir.Ir.module_size vc.Vcode.md);
  let md = vc.Vcode.md in
  let rec find = function
    | Cached p :: rest -> if p.vc == vc then Some p else find rest
    | _ :: rest -> find rest
    | [] -> None
  in
  match find md.m_vcache with
  | Some p -> p
  | None ->
    let p = compile vc in
    md.m_vcache <- Cached p :: md.m_vcache;
    p

let find_func (p : prog) (name : string) : jfunc option =
  Hashtbl.find_opt p.jfuncs name

(* Bug reports and hardware-level traps.

   A [Report] is what a *sanitizer* produces when one of its checks
   fires.  A [Trap] is what the simulated hardware/libc produces on its
   own (segfault on an unmapped address, glibc heap-corruption abort,
   stack exhaustion): a run can end in a trap even without any sanitizer,
   which is exactly the difference between "the bug crashed the process"
   and "the bug was detected and diagnosed". *)

type bug_kind =
  | Oob_read
  | Oob_write
  | Use_after_free
  | Double_free
  | Invalid_free
  | Sub_object_overflow   (* intra-object: only CECSan-class tools *)
  | Other of string

type t = {
  r_kind : bug_kind;
  r_addr : int;            (* faulting address (stripped) *)
  r_site : int;            (* instrumentation site id, -1 if unknown *)
  r_by : string;           (* reporting sanitizer *)
  r_detail : string;
}

type trap_kind =
  | Segfault               (* unmapped or wild address *)
  | Null_deref
  | Stack_exhausted
  | Heap_corruption        (* glibc-style abort in the default allocator *)
  | Div_by_zero
  | Out_of_cycles          (* budget exceeded: treated as a hang *)
  | Unresolved_external of string

type trap = { t_kind : trap_kind; t_addr : int; t_detail : string }

exception Bug of t
exception Trap of trap

let bug ?(addr = 0) ?(site = -1) ?(detail = "") ~by kind =
  raise
    (Bug { r_kind = kind; r_addr = addr; r_site = site; r_by = by;
           r_detail = detail })

let trap ?(addr = 0) ?(detail = "") kind =
  raise (Trap { t_kind = kind; t_addr = addr; t_detail = detail })

(* --- the per-run diagnostic sink ----------------------------------------

   [Halt] is the historical behavior: the first finding raises and the
   run ends.  [Recover] is the production-deployment mode (ASan's
   halt_on_error=0): a failed check records a structured report and the
   caller repairs the operation (strip and proceed, no-op the free) so
   execution continues.  Reports are deduplicated by kind+address+site,
   hard-capped at [max_reports], and every submission that is not
   recorded bumps the overflow counter. *)

type policy = Halt | Recover of { max_reports : int }

type sink = {
  mutable policy : policy;
  mutable recorded_rev : t list;        (* newest first *)
  seen : (string, unit) Hashtbl.t;      (* dedup keys *)
  mutable n_recorded : int;
  mutable suppressed : int;             (* deduped or over the cap *)
}

let default_max_reports = 64

let make_sink ?(policy = Halt) () =
  { policy; recorded_rev = []; seen = Hashtbl.create 16; n_recorded = 0;
    suppressed = 0 }

let sink_reports s = List.rev s.recorded_rev
let sink_recorded s = s.n_recorded
let sink_suppressed s = s.suppressed
let recovering s = match s.policy with Halt -> false | Recover _ -> true

let kind_to_string = function
  | Oob_read -> "out-of-bounds-read"
  | Oob_write -> "out-of-bounds-write"
  | Use_after_free -> "use-after-free"
  | Double_free -> "double-free"
  | Invalid_free -> "invalid-free"
  | Sub_object_overflow -> "sub-object-overflow"
  | Other s -> s

(* Submits a finding to the sink.  Under [Halt] this raises [Bug]
   exactly like [bug]; under [Recover] it records (or suppresses) and
   returns, and the caller is responsible for continuing safely. *)
let submit sink ?(addr = 0) ?(site = -1) ?(detail = "") ~by kind =
  let r =
    { r_kind = kind; r_addr = addr; r_site = site; r_by = by;
      r_detail = detail }
  in
  match sink.policy with
  | Halt -> raise (Bug r)
  | Recover { max_reports } ->
    let key =
      Printf.sprintf "%s|%x|%d" (kind_to_string kind) addr site
    in
    if Hashtbl.mem sink.seen key then
      sink.suppressed <- sink.suppressed + 1
    else begin
      Hashtbl.replace sink.seen key ();
      if sink.n_recorded >= max_reports then
        sink.suppressed <- sink.suppressed + 1
      else begin
        sink.recorded_rev <- r :: sink.recorded_rev;
        sink.n_recorded <- sink.n_recorded + 1
      end
    end

let trap_kind_to_string = function
  | Segfault -> "SIGSEGV"
  | Null_deref -> "SIGSEGV (null dereference)"
  | Stack_exhausted -> "stack exhausted"
  | Heap_corruption -> "glibc abort (heap corruption)"
  | Div_by_zero -> "SIGFPE"
  | Out_of_cycles -> "cycle budget exceeded"
  | Unresolved_external f -> "unresolved external " ^ f

let pp fmt r =
  Fmt.pf fmt "%s: %s at 0x%x%s" r.r_by (kind_to_string r.r_kind) r.r_addr
    (if String.equal r.r_detail "" then "" else " (" ^ r.r_detail ^ ")")

let pp_trap fmt t =
  Fmt.pf fmt "%s at 0x%x%s" (trap_kind_to_string t.t_kind) t.t_addr
    (if String.equal t.t_detail "" then "" else " (" ^ t.t_detail ^ ")")

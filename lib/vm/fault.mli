(** Deterministic, seedable fault injection, threaded through [State.t]
    so allocators, the metadata table and the interpreter all consult
    the same budgets.  Inert (every probe answers "no fault") unless
    faults were requested. *)

type spec =
  | Oom of int      (** malloc returns NULL after N allocations *)
  | Table of int    (** shrink the effective metadata table to N entries *)
  | Tagflip of int  (** flip a tag bit on every N-th tagged load *)
  | Crash of int    (** raise {!Injected_crash} after N allocations *)
  | Fuel of int     (** give the pipeline a step budget of N *)

exception Injected_crash of { after : int }
(** A hard task death injected by [Crash n]; escapes [Machine.run] so
    the supervision layer (not the VM) has to deal with it. *)

type t = {
  mutable oom_after : int option;
  mutable table_limit : int option;
  mutable tagflip_every : int option;
  mutable crash_after : int option;
  mutable fuel_budget : int option;
  mutable mallocs_seen : int;
  mutable tagged_loads_seen : int;
  mutable oom_injected : int;       (** telemetry: NULLs actually served *)
  mutable tagflips_injected : int;  (** telemetry: bits actually flipped *)
  mutable rng : int;
}

val none : unit -> t
(** An inert injector (the default in [State.create]). *)

val of_specs : ?seed:int -> spec list -> t

val apply : t -> spec -> unit

val clone : t -> t
(** Same configuration and seed, zeroed budget/telemetry counters.
    [State.create] clones its injector so runs sharing one [t] never
    race on or accumulate each other's counters. *)

val active : t -> bool

val parse : string -> (spec, string) result
(** Parses the CLI surface: ["oom:N"], ["table:N"], ["tagflip:N"],
    ["crash:N"], ["fuel:N"]. *)

val spec_to_string : spec -> string

val should_oom : t -> bool
(** Consulted once per allocation; true means serve NULL.  Also hosts
    the [Crash n] probe: raises {!Injected_crash} once [n] allocations
    have been seen. *)

val effective_table_limit : t -> default:int -> int
(** The metadata-table size this run should honor. *)

val corrupt_load : t -> int -> int
(** Passes a pointer-sized loaded value through the corruption model. *)

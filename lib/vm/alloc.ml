(* The default ("libc") heap allocator.

   CECSan's compatibility claim is that it needs NO custom allocator --
   so this allocator is shared by the uninstrumented baseline run and by
   CECSan, while ASan installs its own redzone allocator instead.

   Design: segregated free lists over a bump region, 16-byte granules, a
   16-byte header in simulated memory before each payload carrying the
   block size and a magic word.  Keeping the header in simulated memory
   matters: underflows really corrupt it, invalid frees really read
   garbage, and glibc-style "invalid pointer"/"double free" aborts arise
   mechanically. *)

type t = {
  mem : Memory.t;
  mutable brk : int;
  free_lists : (int, int list ref) Hashtbl.t;  (* rounded size -> blocks *)
  mutable live : int;           (* live allocation count *)
  mutable total_allocated : int;
  (* telemetry gauges, published post-run by the driver *)
  mutable peak_live : int;      (* high-water mark of [live] *)
  mutable recycles : int;       (* allocations served from a free list *)
}

let header_size = 16
let magic_alloc = 0x51AB51AB51AB
let magic_free = 0x0F2EE0F2EE0F

let create mem = {
  mem;
  brk = Layout46.heap_base;
  free_lists = Hashtbl.create 64;
  live = 0;
  total_allocated = 0;
  peak_live = 0;
  recycles = 0;
}

let round_size n =
  let n = max n 16 in
  if n <= 4096 then (n + 15) land lnot 15
  else (n + 4095) land lnot 4095

(* Allocates [size] bytes; returns the payload address.  Raises a trap
   when the simulated heap is exhausted. *)
let malloc t size =
  if size < 0 then Report.trap Report.Heap_corruption ~detail:"negative size";
  let rsize = round_size size in
  let payload =
    match Hashtbl.find_opt t.free_lists rsize with
    | Some ({ contents = p :: rest } as l) ->
      l := rest;
      t.recycles <- t.recycles + 1;
      p
    | Some { contents = [] } | None ->
      let p = t.brk + header_size in
      t.brk <- t.brk + header_size + rsize;
      if t.brk >= Layout46.heap_limit then
        Report.trap Report.Heap_corruption ~detail:"out of simulated heap";
      p
  in
  Memory.store t.mem (payload - 16) 8 rsize;
  Memory.store t.mem (payload - 8) 8 magic_alloc;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  t.total_allocated <- t.total_allocated + rsize;
  payload

(* Size of a live block, or None if the header looks corrupt. *)
let block_size t payload =
  if payload < Layout46.heap_base + header_size || payload >= t.brk then None
  else if Memory.load t.mem (payload - 8) 8 <> magic_alloc then None
  else Some (Memory.load t.mem (payload - 16) 8)

let free t payload =
  if payload = 0 then ()  (* free(NULL) is a no-op *)
  else begin
    if payload < Layout46.heap_base + header_size || payload >= t.brk then
      Report.trap ~addr:payload Report.Heap_corruption
        ~detail:"free(): invalid pointer";
    let magic = Memory.load t.mem (payload - 8) 8 in
    if magic = magic_free then
      Report.trap ~addr:payload Report.Heap_corruption
        ~detail:"free(): double free detected";
    if magic <> magic_alloc then
      Report.trap ~addr:payload Report.Heap_corruption
        ~detail:"free(): invalid pointer (corrupt header)";
    let rsize = Memory.load t.mem (payload - 16) 8 in
    Memory.store t.mem (payload - 8) 8 magic_free;
    let l =
      match Hashtbl.find_opt t.free_lists rsize with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.free_lists rsize l;
        l
    in
    l := payload :: !l;
    t.live <- t.live - 1
  end

(* Vcode: the load-time-resolved form of a Tir module, shared by the
   interpreter (Vm.Machine) and the threaded-code backend (Vm.Jit).

   Resolution turns per-execution hashtable lookups into load-time work:

   - [Glob] operands whose symbol is known become [Imm] addresses
     (globals have fixed addresses once placed);
   - direct-call targets are resolved to the callee's [loaded_func]
     ([Vdirect]) -- only genuinely external callees keep the by-name
     slow path ([Vnamed]);
   - intrinsic call sites are assigned a dense slot id ([islot]); the
     per-MACHINE table mapping slots to the runtime's implementations is
     built by Machine.create.  Keeping runtime closures out of the
     resolved form is what makes it shareable: one resolution serves
     every run, under any sanitizer runtime.

   Unknown globals stay lazy so they still trap at execution time (not
   at load time), as before.

   The resolved form is memoized on the module itself
   ([Tir.Ir.m_vcache]), so repeated runs of the same compiled [Tir.Ir]
   never re-pay resolution.  [Tir.Ir.clone] resets the slot, and the
   sanitizer gate / linker clear it before mutating -- a cached vcode
   therefore always describes the module as it will execute. *)

open Tir.Ir

type vinstr =
  | Vplain of instr                    (* operands pre-resolved *)
  | Vcall of { dst : int option; target : vtarget; args : opnd array }
  | Vintrin of {
      dst : int option;
      islot : int;       (* index into the machine's intrinsic table *)
      name : string;
      args : opnd array; (* site id appended as [Imm] *)
      site : int;
    }
  (* a Checkopt telemetry marker: executed natively (no runtime dispatch,
     zero cycles), bumps the per-site elided/covered counter *)
  | Vtelem of { kind : int; site : int }  (* 0 = elided, 1 = covered *)

and vtarget = Vdirect of loaded_func | Vnamed of string

and loaded_func = {
  lf : func;
  mutable code : vinstr array array;   (* per block; filled by [resolve] *)
  mutable terms : term array;
  (* per-block cycle cost: instruction count EXCLUDING telemetry markers,
     precomputed so markers are free in the deterministic cost model *)
  mutable costs : int array;
  frame_size : int;
  slot_off : int array;
}

type t = {
  md : modul;
  funcs : (string, loaded_func) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  globals_end : int;
  intrin_names : string array;   (* islot -> intrinsic name *)
}

(* One authoritative recursion bound for both backends. *)
let max_call_depth = 6000

let align_up n a = (n + a - 1) / a * a

(* Functions are "loaded" in two phases.  [load_func] computes the frame
   layout and registers the function; [resolve] then pre-resolves the
   code once every function and global address is known. *)
let load_func (f : func) : loaded_func =
  let nslots = List.length f.f_slots in
  let slot_off = Array.make nslots 0 in
  let off = ref 0 in
  List.iter
    (fun s ->
       off := align_up !off (max s.s_align 1);
       slot_off.(s.s_id) <- !off;
       off := !off + s.s_size)
    f.f_slots;
  {
    lf = f;
    code = [||];
    costs = [||];
    terms = Array.map (fun b -> b.b_term) f.f_blocks;
    (* a minimum frame models the saved ra/fp pair *)
    frame_size = align_up (max !off 32) 16;
    slot_off;
  }

let resolve_opnd globals (o : opnd) : opnd =
  match o with
  | Glob g ->
    (match Hashtbl.find_opt globals g with
     | Some a -> Imm a
     | None -> o)  (* unknown global: traps at execution, as before *)
  | Reg _ | Imm _ -> o

let resolve_instr funcs globals islot (i : instr) : vinstr =
  let r = resolve_opnd globals in
  match i with
  | Icall { dst; callee; args } ->
    let args = Array.of_list (List.map r args) in
    let target =
      match Hashtbl.find_opt funcs callee with
      | Some lf -> Vdirect lf
      | None -> Vnamed callee
    in
    Vcall { dst; target; args }
  | Iintrin { name; site; _ } when Tir.Ir.is_telemetry_marker name ->
    Vtelem
      { kind = (if String.equal name Tir.Ir.telemetry_elided then 0 else 1);
        site }
  | Iintrin { dst; name; args; site } ->
    let args = Array.of_list (List.map r args @ [ Imm site ]) in
    Vintrin { dst; islot = islot name; name; args; site }
  | Imov { dst; src } -> Vplain (Imov { dst; src = r src })
  | Ibin { op; dst; a; b } -> Vplain (Ibin { op; dst; a = r a; b = r b })
  | Icmp { op; dst; a; b } -> Vplain (Icmp { op; dst; a = r a; b = r b })
  | Isext { dst; src; bytes } -> Vplain (Isext { dst; src = r src; bytes })
  | Iload { dst; addr; size; signed; safe } ->
    Vplain (Iload { dst; addr = r addr; size; signed; safe })
  | Istore { addr; src; size; safe } ->
    Vplain (Istore { addr = r addr; src = r src; size; safe })
  | Islot _ -> Vplain i
  | Igep { dst; base; idx; info } ->
    Vplain (Igep { dst; base = r base; idx = Option.map r idx; info })

let resolve_term globals = function
  | Tret (Some o) -> Tret (Some (resolve_opnd globals o))
  | Tcbr (o, a, b) -> Tcbr (resolve_opnd globals o, a, b)
  | (Tret None | Tbr _) as t -> t

(* Test instrumentation: how many full resolutions have run in this
   process.  The cache regression tests pin that repeated runs of one
   module bump this exactly once. *)
let resolutions = ref 0

let resolve (md : modul) : t =
  incr resolutions;
  (* globals placement: fixed addresses from the globals base, in
     declaration order -- a pure function of the module *)
  let globals = Hashtbl.create 17 in
  let cursor = ref Layout46.globals_base in
  List.iter
    (fun g ->
       cursor := align_up !cursor (max g.g_align 8);
       Hashtbl.replace globals g.g_name !cursor;
       cursor := !cursor + g.g_size)
    md.m_globals;
  let globals_end = align_up !cursor Layout46.page_size in
  let funcs = Hashtbl.create 17 in
  iter_funcs md (fun f ->
      if Array.length f.f_blocks > 0 then
        Hashtbl.replace funcs f.f_name (load_func f));
  (* phase 2: every function and global address is known -- resolve.
     Iterate in the module's deterministic order so islot assignment is
     reproducible. *)
  let intrins = ref [] in
  let n_islots = ref 0 in
  let islot name =
    let i = !n_islots in
    incr n_islots;
    intrins := name :: !intrins;
    i
  in
  iter_funcs md (fun f ->
      match Hashtbl.find_opt funcs f.f_name with
      | None -> ()
      | Some lf ->
        lf.code <-
          Array.map
            (fun b ->
               Array.of_list
                 (List.map (resolve_instr funcs globals islot) b.b_instrs))
            lf.lf.f_blocks;
        lf.costs <-
          Array.map
            (fun code ->
               Array.fold_left
                 (fun n i -> match i with Vtelem _ -> n | _ -> n + 1)
                 0 code)
            lf.code;
        lf.terms <- Array.map (resolve_term globals) lf.terms);
  {
    md;
    funcs;
    globals;
    globals_end;
    intrin_names = Array.of_list (List.rev !intrins);
  }

type Tir.Ir.vm_cache += Cached of t

let resolve_cached (md : modul) : t =
  let rec find = function
    | Cached v :: _ -> Some v
    | _ :: rest -> find rest
    | [] -> None
  in
  match find md.m_vcache with
  | Some v -> v
  | None ->
    let v = resolve md in
    md.m_vcache <- Cached v :: md.m_vcache;
    v

(* The machine: executes a Tir module under a sanitizer runtime with
   the deterministic cost model, through one of two backends sharing
   the same resolved code ({!Vcode}):

   - [Interp], the reference interpreter (this file's exec_func);
   - [Jit], the threaded-code backend ({!Jit}), required to be
     observably identical instruction for instruction.

   Module resolution is cached on the Ir itself (Vcode.resolve_cached),
   so creating many machines over one compiled module -- or running one
   module many times -- pays resolution once.  What cannot be shared is
   the runtime binding: intrinsic implementations belong to this
   machine's runtime, so each machine materializes its own [itab]
   mapping the resolved code's intrinsic slots to implementations. *)

open Tir.Ir

type outcome =
  | Exit of int
  (* the run finished under a Recover sink with at least one recorded
     report: the program's own exit code plus the ordered findings *)
  | Completed_with_bugs of {
      code : int;
      reports : Report.t list;
      suppressed : int;
    }
  | Bug of Report.t
  | Fault of Report.trap

type backend = Interp | Jit

type t = {
  st : State.t;
  md : modul;
  rt : Runtime.t;
  vc : Vcode.t;
  itab : Runtime.intrinsic option array;
  mutable ctx : Libc.ctx;
  externs : (string, State.t -> int array -> int) Hashtbl.t;
  mutable depth : int;
}

let align_down n a = n / a * a

(* Loads globals into the globals region and binds the resolved code to
   this runtime. *)
let create ?(st = State.create ()) ?(rt = Runtime.none) (md : modul) : t =
  st.State.addr_mask <-
    (if rt.Runtime.tbi_bits > 0 then (1 lsl (63 - rt.Runtime.tbi_bits)) - 1
     else -1);
  let vc = Vcode.resolve_cached md in
  (* global placement is part of the resolved code; the initializer
     images are per-machine state and are blitted fresh *)
  List.iter
    (fun g ->
       match Hashtbl.find_opt vc.Vcode.globals g.g_name with
       | Some addr ->
         Memory.blit_from_bytes st.State.mem g.g_image addr g.g_size
       | None -> ())
    md.m_globals;
  st.State.globals_end <- vc.Vcode.globals_end;
  let itab =
    Array.map (fun name -> Runtime.find_intrinsic rt name)
      vc.Vcode.intrin_names
  in
  let m =
    { st; md; rt; vc; itab;
      ctx = { Libc.st; malloc = (fun _ -> 0); free = ignore;
              usable = (fun _ -> None) };
      externs = Hashtbl.create 4; depth = 0 }
  in
  let eff_malloc size =
    match rt.Runtime.malloc with
    | Some f -> f st size
    | None -> Heap.malloc st size
  in
  let eff_free p =
    match rt.Runtime.free_ with
    | Some f -> f st p
    | None -> Heap.free st p
  in
  let eff_usable p =
    match rt.Runtime.usable_size with
    | Some f -> f st p
    | None -> Heap.usable_size st p
  in
  m.ctx <- { Libc.st; malloc = eff_malloc; free = eff_free;
             usable = eff_usable };
  m

let register_extern m name fn = Hashtbl.replace m.externs name fn

let global_addr m name =
  match Hashtbl.find_opt m.vc.Vcode.globals name with
  | Some a -> a
  | None -> Report.trap Report.Segfault ~detail:("unknown global " ^ name)

let sign_extend v size =
  let bits = size * 8 in
  let v = v land ((1 lsl bits) - 1) in
  if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let zero_extend v size = v land ((1 lsl (size * 8)) - 1)

(* allocation-family builtins get special routing through the effective
   allocator so that both runtime replacement (ASan) and instrumentation
   rewriting (CECSan) compose with calloc/realloc/strdup *)
let run_alloc_family m name (args : int array) : int option =
  let st = m.st in
  match name with
  | "malloc" -> Some (m.ctx.Libc.malloc args.(0))
  | "free" ->
    m.ctx.Libc.free args.(0);
    Some 0
  | "calloc" ->
    let n = args.(0) * args.(1) in
    let p = m.ctx.Libc.malloc n in
    Memory.fill st.State.mem ~dst:(State.effective st p) ~len:n 0;
    State.tick st (Cost.mem_op n);
    Some p
  | "realloc" ->
    let old = args.(0) and size = args.(1) in
    if old = 0 then Some (m.ctx.Libc.malloc size)
    else begin
      let old_size =
        match m.ctx.Libc.usable old with
        | Some s -> s
        | None ->
          Report.trap ~addr:old Report.Heap_corruption
            ~detail:"realloc(): invalid pointer"
      in
      let p = m.ctx.Libc.malloc size in
      Memory.copy st.State.mem ~src:(State.effective st old)
        ~dst:(State.effective st p) ~len:(min old_size size);
      State.tick st (Cost.mem_op (min old_size size));
      m.ctx.Libc.free old;
      Some p
    end
  | _ -> None

let max_call_depth = Vcode.max_call_depth

(* Top-byte-ignore emulation at the libc boundary: when the runtime asks
   for TBI, pointer arguments are masked before the raw builtin runs (the
   MMU would ignore the tag bits), and for builtins returning one of
   their pointer arguments the caller's tagged value is restored, offset
   included -- which is exactly how a tagged pointer survives a round
   trip through uninstrumented libc on ARM. *)
let tbi_wrap m (callee : string) (raw_fn : int array -> int)
    (args : int array) : int =
  if m.rt.Runtime.tbi_bits = 0 then raw_fn args
  else begin
    let mask = m.st.State.addr_mask in
    let sig_params =
      match Minic.Builtins.find callee with
      | Some s -> s.Minic.Builtins.params
      | None -> []
    in
    let is_ptr i v =
      match List.nth_opt sig_params i with
      | Some t -> Minic.Ast.is_pointer t
      | None -> v land lnot mask <> 0  (* varargs: mask if tagged *)
    in
    let masked = Array.mapi (fun i v -> if is_ptr i v then v land mask else v)
        args
    in
    let res = raw_fn masked in
    match Minic.Builtins.returns_pointer_arg callee with
    | Some k when res <> 0 && k < Array.length args ->
      args.(k) + (res - masked.(k))
    | _ -> res
  end

let rec exec_call m (callee : string) (args : int array) : int =
  match Hashtbl.find_opt m.vc.Vcode.funcs callee with
  | Some lf -> exec_func m lf args
  | None -> exec_named m callee args

(* The by-name slow path: the allocation family, libc builtins (with
   interception and TBI), registered externs.  Pre-resolution guarantees
   [Vnamed] callees are never module functions, so the funcs lookup is
   skipped. *)
and exec_named m (callee : string) (args : int array) : int =
  let st = m.st in
  match run_alloc_family m callee args with
  | Some v -> v
  | None ->
    (match Libc.find callee with
     | Some raw_fn ->
       (match m.rt.Runtime.intercept callee with
        | Some wrapper ->
          let raw args = tbi_wrap m callee (fun a -> raw_fn m.ctx a) args in
          wrapper st ~raw args
        | None ->
          (* no interceptor and no TBI: call straight through without
             building the wrapper closures *)
          if m.rt.Runtime.tbi_bits = 0 then raw_fn m.ctx args
          else tbi_wrap m callee (fun a -> raw_fn m.ctx a) args)
     | None ->
       (match Hashtbl.find_opt m.externs callee with
        | Some fn -> fn st args
        | None -> Report.trap (Report.Unresolved_external callee)))

and exec_func m (lf : Vcode.loaded_func) (args : int array) : int =
  let st = m.st in
  m.depth <- m.depth + 1;
  let saved_sp = st.State.sp in
  let frame_base = align_down (st.State.sp - lf.Vcode.frame_size) 16 in
  if frame_base < Layout46.stack_limit || m.depth > max_call_depth then begin
    m.depth <- m.depth - 1;
    st.State.sp <- saved_sp;
    Report.trap ~addr:frame_base Report.Stack_exhausted
  end;
  st.State.sp <- frame_base;
  let regs = Array.make (max lf.Vcode.lf.f_nregs 1) 0 in
  List.iteri
    (fun i r -> if i < Array.length args then regs.(r) <- args.(i))
    lf.Vcode.lf.f_params;
  let ev = function
    | Reg r -> regs.(r)
    | Imm v -> v
    | Glob g -> global_addr m g
  in
  let result = ref 0 in
  let finished = ref false in
  let block = ref 0 in
  (try
     while not !finished do
       let code = lf.Vcode.code.(!block) in
       let n = Array.length code in
       (* baseline: one cycle per instruction; telemetry markers are
          excluded from the precomputed per-block cost *)
       State.tick st lf.Vcode.costs.(!block);
       for pc = 0 to n - 1 do
         match Array.unsafe_get code pc with
         | Vcode.Vtelem { kind; site } ->
           if kind = 0 then Telemetry.bump_elided st.State.telem site
           else Telemetry.bump_covered st.State.telem site
         | Vcode.Vcall { dst; target; args } ->
           State.tick st (Cost.call - 1);
           let argv = Array.map ev args in
           let v =
             match target with
             | Vcode.Vdirect lf -> exec_func m lf argv
             | Vcode.Vnamed callee -> exec_named m callee argv
           in
           (match dst with Some d -> regs.(d) <- v | None -> ())
         | Vcode.Vintrin { dst; islot; name; args; site = _ } ->
           let argv = Array.map ev args in  (* site id is the last arg *)
           (* executed bump BEFORE dispatch, so failing checks count *)
           Telemetry.bump_executed st.State.telem
             argv.(Array.length argv - 1);
           (match m.itab.(islot) with
            | Some fn ->
              let v = fn st argv in
              (match dst with Some d -> regs.(d) <- v | None -> ())
            | None ->
              (* registered after load? re-resolve once, else trap *)
              (match Runtime.find_intrinsic m.rt name with
               | Some fn ->
                 m.itab.(islot) <- Some fn;
                 let v = fn st argv in
                 (match dst with Some d -> regs.(d) <- v | None -> ())
               | None ->
                 Report.trap
                   (Report.Unresolved_external ("intrinsic " ^ name))))
         | Vcode.Vplain i ->
         match i with
         | Imov { dst; src } -> regs.(dst) <- ev src
         | Ibin { op; dst; a; b } ->
           let x = ev a and y = ev b in
           regs.(dst) <-
             (match op with
              | Add -> x + y
              | Sub -> x - y
              | Mul -> x * y
              | Div ->
                if y = 0 then Report.trap Report.Div_by_zero else x / y
              | Mod ->
                if y = 0 then Report.trap Report.Div_by_zero else x mod y
              | Shl -> x lsl (y land 63)
              | Shr -> x asr (y land 63)
              | And -> x land y
              | Or -> x lor y
              | Xor -> x lxor y)
         | Icmp { op; dst; a; b } ->
           let x = ev a and y = ev b in
           regs.(dst) <-
             (match op with
              | Eq -> if x = y then 1 else 0
              | Ne -> if x <> y then 1 else 0
              | Lt -> if x < y then 1 else 0
              | Le -> if x <= y then 1 else 0
              | Gt -> if x > y then 1 else 0
              | Ge -> if x >= y then 1 else 0)
         | Isext { dst; src; bytes } ->
           let v = ev src in
           regs.(dst) <- (if bytes >= 8 then v else sign_extend v bytes)
         | Iload { dst; addr; size; signed; _ } ->
           State.tick st (Cost.load - 1);
           let a = State.effective st (ev addr) in
           State.check_mapped st a size;
           let v = Memory.load st.State.mem a size in
           (* fault injection: pointer-sized loads of tagged values may
              come back with a flipped tag bit *)
           let v = if size >= 8 then Fault.corrupt_load st.State.fault v
             else v in
           regs.(dst) <-
             (if size >= 8 then v
              else if signed then sign_extend v size
              else zero_extend v size)
         | Istore { addr; src; size; _ } ->
           State.tick st (Cost.store - 1);
           let a = State.effective st (ev addr) in
           State.check_mapped st a size;
           Memory.store st.State.mem a size (ev src)
         | Islot { dst; slot } ->
           regs.(dst) <- frame_base + lf.Vcode.slot_off.(slot)
         | Igep { dst; base; idx; info } ->
           let b = ev base in
           regs.(dst) <-
             (match info, idx with
              | Gfield { off; _ }, _ -> b + off
              | Gindex { elem_size; _ }, Some i -> b + (ev i * elem_size)
              | Gindex _, None -> b)
         | Icall { dst; callee; args } ->
           State.tick st (Cost.call - 1);
           let argv = Array.of_list (List.map ev args) in
           let v = exec_call m callee argv in
           (match dst with Some d -> regs.(d) <- v | None -> ())
         | Iintrin { dst; name; args; site } ->
           let argv = Array.of_list (List.map ev args) in
           Telemetry.bump_executed st.State.telem site;
           (match Runtime.find_intrinsic m.rt name with
            | Some fn ->
              (* intrinsics receive the site id as a trailing argument *)
              let v =
                fn st
                  (Array.append argv [| site |])
              in
              (match dst with Some d -> regs.(d) <- v | None -> ())
            | None ->
              Report.trap (Report.Unresolved_external ("intrinsic " ^ name)))
       done;
       (match lf.Vcode.terms.(!block) with
        | Tret v ->
          result := (match v with Some o -> ev o | None -> 0);
          finished := true
        | Tbr b -> block := b
        | Tcbr (c, bt, bf) ->
          State.tick st 1;
          block := (if ev c <> 0 then bt else bf))
     done
   with e ->
     m.depth <- m.depth - 1;
     st.State.sp <- saved_sp;
     raise e);
  m.depth <- m.depth - 1;
  st.State.sp <- saved_sp;
  !result

(* Runs [entry] (default main) under the selected backend.  All ways a
   run can end are funneled into the [outcome] type.  A clean exit under
   a Recover sink that recorded findings becomes [Completed_with_bugs].
   [fuel] meters jit compilation (interpretation needs none); a
   [Tir.Fuel.Exhausted] escape is a supervision event, not an outcome,
   and propagates. *)
let run ?(entry = "main") ?(backend = Interp) ?fuel (m : t) : outcome =
  let finish code =
    m.rt.Runtime.at_exit m.st;
    let sink = m.st.State.sink in
    if Report.sink_recorded sink > 0 then
      Completed_with_bugs
        { code; reports = Report.sink_reports sink;
          suppressed = Report.sink_suppressed sink }
    else Exit code
  in
  let no_entry () =
    Fault { t_kind = Unresolved_external entry; t_addr = 0;
            t_detail = "no entry point" }
  in
  match
    match backend with
    | Interp ->
      (match Hashtbl.find_opt m.vc.Vcode.funcs entry with
       | None -> no_entry ()
       | Some lf -> finish (exec_func m lf [||]))
    | Jit ->
      let prog = Jit.compile_cached ?fuel m.vc in
      (match Jit.find_func prog entry with
       | None -> no_entry ()
       | Some jf ->
         let c =
           { Jit.st = m.st; itab = m.itab;
             named = (fun callee args -> exec_named m callee args);
             reresolve =
               (fun islot ->
                  match
                    Runtime.find_intrinsic m.rt
                      m.vc.Vcode.intrin_names.(islot)
                  with
                  | Some fn ->
                    m.itab.(islot) <- Some fn;
                    Some fn
                  | None -> None);
             depth = 0 }
         in
         finish (Jit.exec_jfunc c jf [||]))
  with
  | outcome -> outcome
  | exception State.Exited code -> finish code
  | exception Report.Bug r -> Bug r
  | exception Report.Trap t -> Fault t

let pp_outcome fmt = function
  | Exit c -> Fmt.pf fmt "exit %d" c
  | Completed_with_bugs { code; reports; suppressed } ->
    Fmt.pf fmt "exit %d with %d recovered report%s%s" code
      (List.length reports)
      (if List.length reports = 1 then "" else "s")
      (if suppressed = 0 then ""
       else Printf.sprintf " (+%d suppressed)" suppressed)
  | Bug r -> Fmt.pf fmt "BUG %a" Report.pp r
  | Fault t -> Fmt.pf fmt "FAULT %a" Report.pp_trap t

(* Convenience wrapper used throughout tests and the harness: compile a
   MiniC source and run it under a runtime. *)
let outcome_is_bug = function
  | Bug _ | Completed_with_bugs _ -> true
  | Exit _ | Fault _ -> false

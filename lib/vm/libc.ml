(* Implementations of the libc builtins (the "uninstrumented external
   code" of the paper).  They operate on raw, untagged addresses: a
   tagged pointer that reaches them unstripped faults at translation,
   exactly like handing a tagged pointer to real libc on x86-64.

   Every builtin charges cycles according to [Cost] and validates that
   the ranges it touches are mapped (an unmapped access is a segfault,
   not a silent success) -- but it performs NO bounds checking relative
   to objects: overflows inside mapped memory proceed silently unless a
   sanitizer intercepts the call. *)

type ctx = {
  st : State.t;
  malloc : int -> int;       (* effective allocator (may be replaced) *)
  free : int -> unit;
  usable : int -> int option;
}

let bad_args name =
  Report.trap Report.Heap_corruption ~detail:("bad arguments to " ^ name)

let arg args i = if i < Array.length args then args.(i) else 0

let check ctx a len =
  if len > 0 then begin
    State.check_mapped ctx.st a 1;
    State.check_mapped ctx.st (a + len - 1) 1
  end

let mem ctx = ctx.st.State.mem

(* Scans a C string, validating as it goes.  Page-chunked: when a whole
   chunk provably sits inside one mapped region, no byte of it can
   fault and the NUL scan runs directly over the page; otherwise the
   original byte-at-a-time loop runs for that chunk, preserving the
   exact per-byte trap (address included).  The length cap is
   byte-loop-equivalent: the length is returned iff the first NUL sits
   at an index the byte loop would still have loaded. *)
let checked_strlen ctx a =
  let st = ctx.st in
  let cap = (1 lsl 24) + 1 in
  let unterminated () =
    Report.trap ~addr:a Report.Segfault ~detail:"unterminated string"
  in
  let rec go k =
    let addr = a + k in
    let m = addr land st.State.addr_mask in
    let off = addr land (Layout46.page_size - 1) in
    let avail = Layout46.page_size - off in
    let last = m + avail - 1 in
    if
      (m >= Layout46.heap_base && last < st.State.alloc.Alloc.brk)
      || (m >= Layout46.stack_limit && last < Layout46.stack_top)
      || (m >= Layout46.globals_base && last < st.State.globals_end)
    then
      match
        Bytes.index_from_opt (Memory.page st.State.mem addr) off '\000'
      with
      | Some i ->
        let n = k + (i - off) in
        if n > cap then unterminated () else n
      | None -> if k + avail > cap then unterminated () else go (k + avail)
    else begin
      State.check_mapped st addr 1;
      if Memory.load_byte st.State.mem addr = 0 then k
      else if k > 1 lsl 24 then unterminated ()
      else go (k + 1)
    end
  in
  go 0

let checked_wcslen ctx a =
  let rec go k =
    State.check_mapped ctx.st (a + (4 * k)) 4;
    if Memory.load (mem ctx) (a + (4 * k)) 4 = 0 then k
    else if k > 1 lsl 22 then
      Report.trap ~addr:a Report.Segfault ~detail:"unterminated wide string"
    else go (k + 1)
  in
  go 0

let read_cstring ctx a =
  let n = checked_strlen ctx a in
  Memory.read_len (mem ctx) a n

(* --- the builtin table --------------------------------------------------- *)

let fn_memcpy ctx args =
  let dst = arg args 0 and src = arg args 1 and len = arg args 2 in
  if len < 0 then bad_args "memcpy";
  check ctx dst len;
  check ctx src len;
  Memory.copy (mem ctx) ~src ~dst ~len;
  State.tick ctx.st (Cost.mem_op len);
  dst

let fn_memmove = fn_memcpy  (* Memory.copy already handles overlap *)

let fn_memset ctx args =
  let dst = arg args 0 and c = arg args 1 and len = arg args 2 in
  if len < 0 then bad_args "memset";
  check ctx dst len;
  Memory.fill (mem ctx) ~dst ~len c;
  State.tick ctx.st (Cost.mem_op len);
  dst

let fn_memcmp ctx args =
  let a = arg args 0 and b = arg args 1 and len = arg args 2 in
  check ctx a len;
  check ctx b len;
  State.tick ctx.st (Cost.mem_op len);
  (* page-chunked compare: each chunk touches exactly the two pages the
     byte loop's next load_byte pair would have materialized *)
  let m = mem ctx in
  let rec go k =
    if k >= len then 0
    else begin
      let pa = a + k and pb = b + k in
      let oa = pa land (Layout46.page_size - 1) in
      let ob = pb land (Layout46.page_size - 1) in
      let chunk =
        min (len - k)
          (min (Layout46.page_size - oa) (Layout46.page_size - ob))
      in
      let ba = Memory.page m pa in
      let bb = Memory.page m pb in
      let rec scan j =
        if j >= chunk then go (k + chunk)
        else
          let x = Char.code (Bytes.unsafe_get ba (oa + j)) in
          let y = Char.code (Bytes.unsafe_get bb (ob + j)) in
          if x <> y then compare x y else scan (j + 1)
      in
      scan 0
    end
  in
  go 0

let fn_strlen ctx args =
  let a = arg args 0 in
  let n = checked_strlen ctx a in
  State.tick ctx.st (Cost.str_op n);
  n

let fn_strcpy ctx args =
  let dst = arg args 0 and src = arg args 1 in
  let n = checked_strlen ctx src in
  check ctx dst (n + 1);
  Memory.copy (mem ctx) ~src ~dst ~len:(n + 1);
  State.tick ctx.st (Cost.str_op n);
  dst

let fn_strncpy ctx args =
  let dst = arg args 0 and src = arg args 1 and n = arg args 2 in
  if n < 0 then bad_args "strncpy";
  check ctx dst n;
  let len = checked_strlen ctx src in
  let copy = min len n in
  Memory.copy (mem ctx) ~src ~dst ~len:copy;
  if copy < n then Memory.fill (mem ctx) ~dst:(dst + copy) ~len:(n - copy) 0;
  State.tick ctx.st (Cost.str_op n);
  dst

let fn_strcat ctx args =
  let dst = arg args 0 and src = arg args 1 in
  let dlen = checked_strlen ctx dst in
  let slen = checked_strlen ctx src in
  check ctx (dst + dlen) (slen + 1);
  Memory.copy (mem ctx) ~src ~dst:(dst + dlen) ~len:(slen + 1);
  State.tick ctx.st (Cost.str_op (dlen + slen));
  dst

let fn_strncat ctx args =
  let dst = arg args 0 and src = arg args 1 and n = arg args 2 in
  let dlen = checked_strlen ctx dst in
  let slen = min (checked_strlen ctx src) n in
  check ctx (dst + dlen) (slen + 1);
  Memory.copy (mem ctx) ~src ~dst:(dst + dlen) ~len:slen;
  Memory.store_byte (mem ctx) (dst + dlen + slen) 0;
  State.tick ctx.st (Cost.str_op (dlen + slen));
  dst

let fn_strcmp ctx args =
  let a = read_cstring ctx (arg args 0) in
  let b = read_cstring ctx (arg args 1) in
  State.tick ctx.st (Cost.str_op (min (String.length a) (String.length b)));
  compare (String.compare a b) 0

let fn_strncmp ctx args =
  let n = arg args 2 in
  let cut s = if String.length s > n then String.sub s 0 n else s in
  let a = cut (read_cstring ctx (arg args 0)) in
  let b = cut (read_cstring ctx (arg args 1)) in
  State.tick ctx.st (Cost.str_op n);
  compare (String.compare a b) 0

let fn_strchr ctx args =
  let a = arg args 0 and c = arg args 1 land 0xff in
  let n = checked_strlen ctx a in
  State.tick ctx.st (Cost.str_op n);
  (* scan bytes 0..n (terminator included), page-chunked; all of them
     were just validated and materialized by checked_strlen *)
  let m = mem ctx in
  let total = n + 1 in
  let rec go k =
    if k >= total then 0
    else begin
      let addr = a + k in
      let off = addr land (Layout46.page_size - 1) in
      let chunk = min (total - k) (Layout46.page_size - off) in
      let p = Memory.page m addr in
      let rec scan j =
        if j >= chunk then go (k + chunk)
        else if Char.code (Bytes.unsafe_get p (off + j)) = c then a + k + j
        else scan (j + 1)
      in
      scan 0
    end
  in
  go 0

let fn_strdup ctx args =
  let s = read_cstring ctx (arg args 0) in
  let p = ctx.malloc (String.length s + 1) in
  (* the allocator may hand back a tagged pointer; write through the
     effective (translated) address *)
  Memory.write_string (mem ctx) (State.effective ctx.st p) s;
  State.tick ctx.st (Cost.str_op (String.length s));
  p

let fn_atoi ctx args =
  let s = read_cstring ctx (arg args 0) in
  State.tick ctx.st (Cost.str_op (String.length s));
  let s = String.trim s in
  let rec digits i acc neg =
    if i >= String.length s then (if neg then -acc else acc)
    else
      match s.[i] with
      | '0' .. '9' ->
        digits (i + 1) ((acc * 10) + (Char.code s.[i] - Char.code '0')) neg
      | _ -> if neg then -acc else acc
  in
  (match s with
   | "" -> 0
   | _ when s.[0] = '-' -> digits 1 0 true
   | _ when s.[0] = '+' -> digits 1 0 false
   | _ -> digits 0 0 false)

(* wide-char family: 4-byte units *)

let fn_wcslen ctx args =
  let n = checked_wcslen ctx (arg args 0) in
  State.tick ctx.st (Cost.str_op (n * 4));
  n

let fn_wcscpy ctx args =
  let dst = arg args 0 and src = arg args 1 in
  let n = checked_wcslen ctx src in
  check ctx dst ((n + 1) * 4);
  Memory.copy (mem ctx) ~src ~dst ~len:((n + 1) * 4);
  State.tick ctx.st (Cost.str_op (n * 4));
  dst

let fn_wcsncpy ctx args =
  let dst = arg args 0 and src = arg args 1 and n = arg args 2 in
  if n < 0 then bad_args "wcsncpy";
  check ctx dst (n * 4);
  let len = checked_wcslen ctx src in
  let cp = min len n in
  Memory.copy (mem ctx) ~src ~dst ~len:(cp * 4);
  if cp < n then
    Memory.fill (mem ctx) ~dst:(dst + (cp * 4)) ~len:((n - cp) * 4) 0;
  State.tick ctx.st (Cost.str_op (n * 4));
  dst

let fn_wcscat ctx args =
  let dst = arg args 0 and src = arg args 1 in
  let dlen = checked_wcslen ctx dst in
  let slen = checked_wcslen ctx src in
  check ctx (dst + (dlen * 4)) ((slen + 1) * 4);
  Memory.copy (mem ctx) ~src ~dst:(dst + (dlen * 4)) ~len:((slen + 1) * 4);
  State.tick ctx.st (Cost.str_op ((dlen + slen) * 4));
  dst

let fn_wcscmp ctx args =
  let a = arg args 0 and b = arg args 1 in
  let la = checked_wcslen ctx a and lb = checked_wcslen ctx b in
  State.tick ctx.st (Cost.str_op (4 * min la lb));
  let rec go k =
    let x = Memory.load (mem ctx) (a + (4 * k)) 4 in
    let y = Memory.load (mem ctx) (b + (4 * k)) 4 in
    if x <> y then compare x y else if x = 0 then 0 else go (k + 1)
  in
  go 0

(* io *)

let fn_printf ctx args =
  let fmtaddr = arg args 0 in
  let f = read_cstring ctx fmtaddr in
  let buf = ctx.st.State.output in
  let argi = ref 1 in
  let next () =
    let v = arg args !argi in
    incr argi;
    v
  in
  let n = String.length f in
  let i = ref 0 in
  while !i < n do
    let c = f.[!i] in
    if c <> '%' || !i = n - 1 then begin
      Buffer.add_char buf c;
      incr i
    end
    else begin
      (* skip width/length modifiers *)
      let j = ref (!i + 1) in
      while !j < n
            && (match f.[!j] with
                | '0' .. '9' | '-' | '+' | '.' | 'l' | 'z' | 'h' -> true
                | _ -> false)
      do
        incr j
      done;
      (if !j < n then
         match f.[!j] with
         | 'd' | 'i' | 'u' -> Buffer.add_string buf (string_of_int (next ()))
         | 'x' -> Buffer.add_string buf (Printf.sprintf "%x" (next ()))
         | 'p' -> Buffer.add_string buf (Printf.sprintf "0x%x" (next ()))
         | 'c' -> Buffer.add_char buf (Char.chr (next () land 0xff))
         | 's' -> Buffer.add_string buf (read_cstring ctx (next ()))
         | '%' -> Buffer.add_char buf '%'
         | c -> Buffer.add_char buf c);
      i := !j + 1
    end
  done;
  State.tick ctx.st (Cost.str_op (String.length f));
  String.length f

let fn_puts ctx args =
  let s = read_cstring ctx (arg args 0) in
  Buffer.add_string ctx.st.State.output s;
  Buffer.add_char ctx.st.State.output '\n';
  State.tick ctx.st (Cost.str_op (String.length s));
  String.length s + 1

let fn_putchar ctx args =
  Buffer.add_char ctx.st.State.output (Char.chr (arg args 0 land 0xff));
  State.tick ctx.st Cost.builtin_base;
  arg args 0

let fn_getchar ctx _args =
  State.tick ctx.st Cost.builtin_base;
  Input.getchar ctx.st.State.input

let fn_fgets ctx args =
  let buf = arg args 0 and max = arg args 1 in
  State.tick ctx.st (Cost.str_op (Stdlib.max max 0));
  match Input.fgets ctx.st.State.input ~max with
  | None -> 0  (* NULL: EOF *)
  | Some line ->
    check ctx buf (String.length line + 1);
    Memory.write_string (mem ctx) buf line;
    buf

let fn_socket ctx _args =
  State.tick ctx.st Cost.builtin_base;
  3  (* a connected socket fd served by the dummy server *)

let fn_recv ctx args =
  let buf = arg args 1 and max = arg args 2 in
  if max < 0 then bad_args "recv";
  let data = Input.recv ctx.st.State.input ~max in
  check ctx buf (String.length data);
  Memory.blit_from_bytes (mem ctx) (Bytes.unsafe_of_string data) buf
    (String.length data);
  State.tick ctx.st (Cost.mem_op max);
  String.length data

(* misc *)

let fn_rand ctx _args =
  State.tick ctx.st Cost.builtin_base;
  State.next_rand ctx.st land 0x3FFF_FFFF

let fn_srand ctx args =
  ctx.st.State.rng <- arg args 0;
  State.tick ctx.st Cost.builtin_base;
  0

let fn_abs ctx args =
  State.tick ctx.st Cost.alu;
  abs (arg args 0)

let fn_exit ctx args =
  ignore ctx;
  raise (State.Exited (arg args 0))

let fn_abort ctx _args =
  ignore ctx;
  Report.trap Report.Heap_corruption ~detail:"abort() called"

let fn_time ctx _args =
  (* deterministic: pseudo-time derived from the cycle counter *)
  State.tick ctx.st Cost.builtin_base;
  1_700_000_000 + (ctx.st.State.cycles / 1_000_000)

let table : (string * (ctx -> int array -> int)) list =
  [
    "memcpy", fn_memcpy; "memmove", fn_memmove; "memset", fn_memset;
    "memcmp", fn_memcmp;
    "strlen", fn_strlen; "strcpy", fn_strcpy; "strncpy", fn_strncpy;
    "strcat", fn_strcat; "strncat", fn_strncat; "strcmp", fn_strcmp;
    "strncmp", fn_strncmp; "strchr", fn_strchr; "strdup", fn_strdup;
    "atoi", fn_atoi;
    "wcslen", fn_wcslen; "wcscpy", fn_wcscpy; "wcsncpy", fn_wcsncpy;
    "wcscat", fn_wcscat; "wcscmp", fn_wcscmp;
    "printf", fn_printf; "puts", fn_puts; "putchar", fn_putchar;
    "getchar", fn_getchar; "fgets", fn_fgets; "socket", fn_socket;
    "recv", fn_recv;
    "rand", fn_rand; "srand", fn_srand; "abs", fn_abs; "exit", fn_exit;
    "abort", fn_abort; "time", fn_time;
  ]

(* hashed: [find] runs on every named call, and a linear scan over the
   table was a measurable per-call floor on string-heavy kernels *)
let tbl : (string, ctx -> int array -> int) Hashtbl.t =
  let h = Hashtbl.create (2 * List.length table) in
  List.iter (fun (k, v) -> Hashtbl.replace h k v) table;
  h

let find name = Hashtbl.find_opt tbl name

(** Mutable machine state shared by the interpreter, the libc builtins
    and the sanitizer runtimes. *)

type t = {
  mem : Memory.t;
  alloc : Alloc.t;
  input : Input.t;        (** the dummy input server *)
  output : Buffer.t;      (** captured stdout *)
  mutable cycles : int;   (** the deterministic cost-model clock *)
  mutable cycle_budget : int;
  mutable sp : int;
  mutable globals_end : int;
  mutable rng : int;
  mutable heap_frees : int;
  mutable heap_allocs : int;
  mutable addr_mask : int;
      (** effective-address mask; HWASan narrows it to emulate ARM
          top-byte-ignore *)
  site_state : (int, int) Hashtbl.t;
      (** per-instrumentation-site counters for runtimes *)
  sink : Report.sink;
      (** the per-run diagnostic sink (Halt by default) *)
  fault : Fault.t;
      (** the run's fault injector — a private clone of the one passed
          to [create]; inert unless faults were requested *)
  telem : Telemetry.t;
      (** always-on runtime telemetry: per-check-site counters, named
          counters/gauges ([--stats]), bounded event ring *)
}

exception Exited of int
(** Raised by the [exit] builtin. *)

val default_budget : int
(** The default cycle budget (2e9), shared by [create], the driver and
    the overhead harness. *)

val create : ?cycle_budget:int -> ?seed:int -> ?policy:Report.policy ->
  ?fault:Fault.t -> unit -> t

val report : t -> ?addr:int -> ?site:int -> ?detail:string -> by:string ->
  Report.bug_kind -> unit
(** Submits a finding through the run's sink: raises under [Halt],
    records and returns under [Recover] (the caller must then repair the
    operation and continue). *)

val recovering : t -> bool
(** True when the sink's policy is [Recover]. *)

val set_stat : t -> string -> int -> unit
val stat : t -> string -> int

val tick : t -> int -> unit
(** Advances the clock; raises [Report.Trap Out_of_cycles] past the
    budget. *)

val next_rand : t -> int
(** Deterministic splitmix PRNG (rand(), HWASan tag draws). *)

val check_mapped : t -> int -> int -> unit
(** Validates that a program access falls in a mapped region (globals,
    heap, stack); raises [Report.Trap Segfault]/[Null_deref] otherwise. *)

val effective : t -> int -> int
(** Applies the TBI mask. *)

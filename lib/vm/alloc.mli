(** The default ("libc") heap allocator: segregated free lists over a
    bump region, with a 16-byte header (size + magic) kept IN simulated
    memory -- so underflows really corrupt it and invalid frees really
    trip the glibc-style aborts.

    CECSan's compatibility claim is that it needs no replacement for
    this allocator; ASan installs its own instead. *)

type t = {
  mem : Memory.t;
  mutable brk : int;                          (** heap frontier *)
  free_lists : (int, int list ref) Hashtbl.t; (** rounded size -> blocks *)
  mutable live : int;
  mutable total_allocated : int;
  mutable peak_live : int;  (** high-water mark of [live] *)
  mutable recycles : int;   (** allocations served from a free list *)
}

val header_size : int
val magic_alloc : int
val magic_free : int

val create : Memory.t -> t

val round_size : int -> int
(** 16-byte granules up to 4 KiB, then page-rounded. *)

val malloc : t -> int -> int
(** Returns the payload address; traps when the simulated heap is
    exhausted. *)

val block_size : t -> int -> int option
(** Size of a live block, or [None] if the header looks corrupt. *)

val free : t -> int -> unit
(** Validates the header magic: frees of invalid pointers and double
    frees raise the glibc-style [Heap_corruption] trap.  [free t 0] is a
    no-op. *)

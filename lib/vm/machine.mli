(** The interpreter: executes a Tir module under a sanitizer runtime
    with the deterministic cost model. *)

type outcome =
  | Exit of int            (** normal termination *)
  | Completed_with_bugs of {
      code : int;
      reports : Report.t list;   (** in submission order *)
      suppressed : int;
    }  (** finished under a [Recover] sink with recorded findings *)
  | Bug of Report.t        (** a sanitizer reported a violation *)
  | Fault of Report.trap   (** the machine/libc crashed on its own *)

type loaded_func

type t = {
  st : State.t;
  md : Tir.Ir.modul;
  rt : Runtime.t;
  funcs : (string, loaded_func) Hashtbl.t;
  globals : (string, int) Hashtbl.t;
  mutable ctx : Libc.ctx;
  externs : (string, State.t -> int array -> int) Hashtbl.t;
  mutable depth : int;
}

val create : ?st:State.t -> ?rt:Runtime.t -> Tir.Ir.modul -> t
(** Loads globals into the simulated globals region and snapshots the
    functions.  Applies the runtime's TBI configuration. *)

val register_extern : t -> string -> (State.t -> int array -> int) -> unit
(** Provides an OCaml implementation for an [extern] function with no
    body in any linked unit (a library the program was linked against at
    run time). *)

val global_addr : t -> string -> int

val exec_call : t -> string -> int array -> int
(** Calls a function by name: module functions, the allocation family
    (routed through runtime hooks), libc builtins (with interception and
    TBI handling), or registered externs. *)

val run : ?entry:string -> t -> outcome
(** Runs [entry] (default ["main"]); all terminations funnel into
    [outcome]. *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_is_bug : outcome -> bool

(** The machine: executes a Tir module under a sanitizer runtime with
    the deterministic cost model, through one of two observably
    identical backends sharing the same resolved code ({!Vcode}). *)

type outcome =
  | Exit of int            (** normal termination *)
  | Completed_with_bugs of {
      code : int;
      reports : Report.t list;   (** in submission order *)
      suppressed : int;
    }  (** finished under a [Recover] sink with recorded findings *)
  | Bug of Report.t        (** a sanitizer reported a violation *)
  | Fault of Report.trap   (** the machine/libc crashed on its own *)

type backend =
  | Interp  (** the reference interpreter *)
  | Jit     (** the threaded-code backend ({!Jit}) *)

type t = {
  st : State.t;
  md : Tir.Ir.modul;
  rt : Runtime.t;
  vc : Vcode.t;  (** resolved code, cached on [md] across machines *)
  itab : Runtime.intrinsic option array;
      (** this machine's intrinsic-slot bindings (runtime-specific) *)
  mutable ctx : Libc.ctx;
  externs : (string, State.t -> int array -> int) Hashtbl.t;
  mutable depth : int;
}

val create : ?st:State.t -> ?rt:Runtime.t -> Tir.Ir.modul -> t
(** Loads globals into the simulated globals region and binds the
    module's resolved code (resolved at most once per module, see
    {!Vcode.resolve_cached}) to the runtime.  Applies the runtime's TBI
    configuration. *)

val register_extern : t -> string -> (State.t -> int array -> int) -> unit
(** Provides an OCaml implementation for an [extern] function with no
    body in any linked unit (a library the program was linked against at
    run time). *)

val global_addr : t -> string -> int

val exec_call : t -> string -> int array -> int
(** Calls a function by name: module functions, the allocation family
    (routed through runtime hooks), libc builtins (with interception and
    TBI handling), or registered externs. *)

val run : ?entry:string -> ?backend:backend -> ?fuel:Tir.Fuel.t -> t -> outcome
(** Runs [entry] (default ["main"]) under [backend] (default [Interp]);
    all terminations funnel into [outcome].  [fuel] meters jit
    compilation (burned identically on compile-cache hits and misses);
    [Tir.Fuel.Exhausted] is a supervision event and propagates. *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_is_bug : outcome -> bool

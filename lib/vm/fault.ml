(* Deterministic, seedable fault injection.

   One injector instance is threaded through [State.t] so every layer
   (allocators, metadata table, interpreter) consults the same budget
   counters.  Three fault classes, each modelling a resource edge the
   paper's section V.1 degradation story has to survive:

   - [Oom n]:     malloc returns NULL after the first [n] allocations
                  (allocator pressure; programs must see NULL, not die);
   - [Table n]:   the effective metadata-table size shrinks to [n]
                  entries, forcing the entry-0 fallback or the
                  chain_overflow extension orders of magnitude earlier
                  than the real 2^17 limit;
   - [Tagflip n]: every [n]-th pointer-sized load of a tagged value gets
                  one tag bit flipped (bit-rot / transient corruption);
                  the next check through it fails, which exercises the
                  recoverable-reporting path.

   Two further classes target the *harness* rather than the guest
   program -- they model a pipeline task dying mid-flight, which is
   what the supervision layer (Harness.Supervise) must quarantine:

   - [Crash n]: raise [Injected_crash] out of the VM after the first
                [n] allocations (a hard task death the pool must
                survive);
   - [Fuel n]:  hand the pipeline a step budget of [n]; phases burn
                Tir.Fuel and raise [Tir.Fuel.Exhausted] when it runs
                out (a deterministic "timeout").

   All draws come from a private splitmix PRNG seeded at construction,
   so a given (seed, program) pair replays bit-for-bit. *)

type spec =
  | Oom of int
  | Table of int
  | Tagflip of int
  | Crash of int
  | Fuel of int

exception Injected_crash of { after : int }

let () =
  Printexc.register_printer (function
      | Injected_crash { after } ->
        Some (Printf.sprintf "Fault.Injected_crash(after %d allocations)" after)
      | _ -> None)

type t = {
  mutable oom_after : int option;       (* allocations before NULL *)
  mutable table_limit : int option;     (* effective metadata entries *)
  mutable tagflip_every : int option;   (* period of corrupted loads *)
  mutable crash_after : int option;     (* allocations before task death *)
  mutable fuel_budget : int option;     (* pipeline step budget *)
  (* deterministic budget counters *)
  mutable mallocs_seen : int;
  mutable tagged_loads_seen : int;
  (* telemetry: how many faults actually fired *)
  mutable oom_injected : int;
  mutable tagflips_injected : int;
  mutable rng : int;
}

let none () = {
  oom_after = None;
  table_limit = None;
  tagflip_every = None;
  crash_after = None;
  fuel_budget = None;
  mallocs_seen = 0;
  tagged_loads_seen = 0;
  oom_injected = 0;
  tagflips_injected = 0;
  rng = 0x5EED;
}

let apply t = function
  | Oom n -> t.oom_after <- Some (max n 0)
  | Table n -> t.table_limit <- Some (max n 2)  (* entry 0 + one slot *)
  | Tagflip n -> t.tagflip_every <- Some (max n 1)
  | Crash n -> t.crash_after <- Some (max n 0)
  | Fuel n -> t.fuel_budget <- Some (max n 0)

let of_specs ?(seed = 0x5EED) specs =
  let t = none () in
  t.rng <- seed;
  List.iter (apply t) specs;
  t

(* A fresh injector with the same configuration and seed but zeroed
   budget/telemetry counters.  [State.create] clones the injector it is
   handed so that runs sharing one [Fault.t] value (repeated runs, pool
   workers) never race on or accumulate each other's counters. *)
let clone t = {
  oom_after = t.oom_after;
  table_limit = t.table_limit;
  tagflip_every = t.tagflip_every;
  crash_after = t.crash_after;
  fuel_budget = t.fuel_budget;
  mallocs_seen = 0;
  tagged_loads_seen = 0;
  oom_injected = 0;
  tagflips_injected = 0;
  rng = t.rng;
}

let active t =
  t.oom_after <> None || t.table_limit <> None || t.tagflip_every <> None
  || t.crash_after <> None || t.fuel_budget <> None

(* "oom:N" | "table:N" | "tagflip:N" | "crash:N" | "fuel:N" — the CLI
   surface. *)
let parse s : (spec, string) result =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad fault spec %S (want kind:N)" s)
  | Some i ->
    let kind = String.sub s 0 i in
    let num = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt num with
     | None -> Error (Printf.sprintf "bad fault count in %S" s)
     | Some n ->
       (match kind with
        | "oom" -> Ok (Oom n)
        | "table" -> Ok (Table n)
        | "tagflip" -> Ok (Tagflip n)
        | "crash" -> Ok (Crash n)
        | "fuel" -> Ok (Fuel n)
        | _ -> Error (Printf.sprintf "unknown fault kind %S" kind)))

let spec_to_string = function
  | Oom n -> Printf.sprintf "oom:%d" n
  | Table n -> Printf.sprintf "table:%d" n
  | Tagflip n -> Printf.sprintf "tagflip:%d" n
  | Crash n -> Printf.sprintf "crash:%d" n
  | Fuel n -> Printf.sprintf "fuel:%d" n

(* same splitmix constants as [State.next_rand], private stream *)
let next_rand t =
  let z = (t.rng + 0x1E3779B97F4A7C15) land max_int in
  t.rng <- z;
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 land max_int in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB land max_int in
  (z lxor (z lsr 31)) land max_int

(* Should this allocation fail?  Counts every call so the budget is a
   property of the run, not of the allocator that happens to serve it.
   The crash probe lives here too: every allocator already consults
   [should_oom], so [Crash n] kills the task at exactly the (n+1)-th
   allocation regardless of which allocator serves it. *)
let should_oom t =
  (match t.crash_after, t.oom_after with
   | None, None -> ()
   | _ -> t.mallocs_seen <- t.mallocs_seen + 1);
  (match t.crash_after with
   | Some n when t.mallocs_seen > n -> raise (Injected_crash { after = n })
   | _ -> ());
  match t.oom_after with
  | None -> false
  | Some n ->
    if t.mallocs_seen > n then begin
      t.oom_injected <- t.oom_injected + 1;
      true
    end
    else false

let effective_table_limit t ~default =
  match t.table_limit with
  | None -> default
  | Some n -> min n default

(* Passes a pointer-sized loaded value through the corruption model:
   values that carry a tag are counted, and every [tagflip_every]-th one
   comes back with a random tag bit flipped. *)
let corrupt_load t v =
  match t.tagflip_every with
  | None -> v
  | Some period ->
    if v lsr Layout46.tag_shift land (Layout46.tag_limit - 1) = 0 then v
    else begin
      t.tagged_loads_seen <- t.tagged_loads_seen + 1;
      if t.tagged_loads_seen mod period = 0 then begin
        t.tagflips_injected <- t.tagflips_injected + 1;
        v lxor (1 lsl (Layout46.tag_shift + (next_rand t mod Layout46.tag_bits)))
      end
      else v
    end

(* ASan-- ("Debloating Address Sanitizer", USENIX Security 2022): the
   same runtime as ASan, with compile-time check debloating:

   - redundant checks within a block are removed;
   - loop-invariant checks are hoisted -- but ONLY for loads: a hoisted
     store check can be invalidated by the store itself overwriting a
     redzone, the asymmetry the paper uses to motivate CECSan's ability
     to hoist both (section II.F.1);
   - statically in-bounds accesses (the [safe] flag) are not checked. *)

let name = "ASan--"

let spec : Sanitizer.Checkopt.spec = {
  check_load = "__asan_check_load";
  check_store = "__asan_check_store";
  produces_addr = false;
  strip_mask = -1;
  may_hoist_stores = false;
  hazard_intrinsics = [ "__asan_poison"; "__asan_unpoison" ];
  extcall_strip = None;
}

(* Unlike plain ASan, skip instrumenting accesses proven in-bounds. *)
let insert_checks_elided (md : Tir.Ir.modul) (f : Tir.Ir.func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Tir.Ir.Iload { addr; size; safe = false; _ } as i ->
        [ Tir.Ir.Iintrin { dst = None; name = "__asan_check_load";
                           args = [ addr; Tir.Ir.Imm size ];
                           site = Tir.Ir.fresh_site md };
          i ]
      | Tir.Ir.Istore { addr; size; safe = false; _ } as i ->
        [ Tir.Ir.Iintrin { dst = None; name = "__asan_check_store";
                           args = [ addr; Tir.Ir.Imm size ];
                           site = Tir.Ir.fresh_site md };
          i ]
      | i -> [ i ])
    f

let instrument (md : Tir.Ir.modul) : unit =
  Tir.Analysis.run md;
  Tir.Ir.iter_funcs md (fun f ->
      if not f.Tir.Ir.f_external then begin
        Asan.protect_stack md f;
        insert_checks_elided md f
      end);
  let init = Asan.protect_globals md in
  match Tir.Ir.find_func md "main" with
  | Some main -> Tir.Rewrite.insert_prologue main init
  | None -> ()

let optimize (md : Tir.Ir.modul) : unit =
  Tir.Ir.iter_funcs md (fun f ->
      if not f.Tir.Ir.f_external then begin
        ignore (Sanitizer.Checkopt.redundant spec f);
        ignore (Sanitizer.Checkopt.loops spec md f)
      end)

let sanitizer () : Sanitizer.Spec.t =
  {
    Sanitizer.Spec.name;
    instrument;
    optimize;
    verify = Some spec;
    fresh_runtime = (fun () -> Asan.fresh_runtime ());
    default_policy = Vm.Report.Halt;
  }

(* ASan-- ("Debloating Address Sanitizer", USENIX Security 2022): the
   same runtime as ASan, with compile-time check debloating:

   - redundant checks within a block are removed;
   - loop-invariant checks are hoisted -- but ONLY for loads: a hoisted
     store check can be invalidated by the store itself overwriting a
     redzone, the asymmetry the paper uses to motivate CECSan's ability
     to hoist both (section II.F.1);
   - statically in-bounds accesses (the [safe] flag) are not checked. *)

let name = "ASan--"

(* ASan-- also feeds the certified-elision pass: allocation is plain
   calls into the intercepted allocator, poison/unpoison moves shadow
   state we do not model (opaque), and there is no spatial-only check
   variant -- only full elision.  Eliding a proven-in-bounds access to a
   live non-escaping object is exact-behavior-preserving: the shadow for
   such an object is unpoisoned over exactly its payload bytes, so the
   elided check could only ever have passed. *)
let model : Tir.Absint.model = {
  Tir.Absint.am_checks =
    [ ("__asan_check_load", None); ("__asan_check_store", None) ];
  am_check_alias = false;
  am_allocs = [];
  am_frees = [];
  am_aliases = [];
  am_opaque = [ "__asan_poison"; "__asan_unpoison" ];
  am_call_allocs =
    [ ("malloc", Tir.Absint.Sarg 0); ("calloc", Tir.Absint.Sprod (0, 1));
      ("realloc", Tir.Absint.Sarg 1) ];
  am_call_frees = [ "free"; "realloc" ];
  am_gpt_load = None;
  am_global_make = None;
  am_strip_mask = Some (-1);
  am_slots = false;  (* protect_stack renumbers slots; play safe *)
}

let spec : Sanitizer.Checkopt.spec = {
  check_load = "__asan_check_load";
  check_store = "__asan_check_store";
  produces_addr = false;
  strip_mask = -1;
  may_hoist_stores = false;
  hazard_intrinsics = [ "__asan_poison"; "__asan_unpoison" ];
  extcall_strip = None;
  absint = Some model;
}

(* Unlike plain ASan, skip instrumenting accesses proven in-bounds. *)
let insert_checks_elided (md : Tir.Ir.modul) (f : Tir.Ir.func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Tir.Ir.Iload { addr; size; safe = false; _ } as i ->
        [ Tir.Ir.Iintrin { dst = None; name = "__asan_check_load";
                           args = [ addr; Tir.Ir.Imm size ];
                           site = Tir.Ir.fresh_site md };
          i ]
      | Tir.Ir.Istore { addr; size; safe = false; _ } as i ->
        [ Tir.Ir.Iintrin { dst = None; name = "__asan_check_store";
                           args = [ addr; Tir.Ir.Imm size ];
                           site = Tir.Ir.fresh_site md };
          i ]
      | i -> [ i ])
    f

let instrument (md : Tir.Ir.modul) : unit =
  Tir.Analysis.run md;
  Tir.Ir.iter_funcs md (fun f ->
      if not f.Tir.Ir.f_external then begin
        Asan.protect_stack md f;
        insert_checks_elided md f
      end);
  let init = Asan.protect_globals md in
  match Tir.Ir.find_func md "main" with
  | Some main -> Tir.Rewrite.insert_prologue main init
  | None -> ()

let optimize (md : Tir.Ir.modul) : unit =
  let is_hazard n = List.mem n spec.hazard_intrinsics in
  let pure = Tir.Analysis.pure_callees md ~is_hazard in
  Tir.Ir.iter_funcs md (fun f ->
      if not f.Tir.Ir.f_external then begin
        ignore (Sanitizer.Checkopt.redundant spec ~pure f);
        ignore (Sanitizer.Checkopt.loops spec ~pure md f)
      end);
  ignore (Sanitizer.Checkopt.absint md spec)

let sanitizer () : Sanitizer.Spec.t =
  {
    Sanitizer.Spec.name;
    instrument;
    optimize;
    verify = Some spec;
    fresh_runtime = (fun () -> Asan.fresh_runtime ());
    default_policy = Vm.Report.Halt;
  }

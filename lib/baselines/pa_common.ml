(* Shared machinery for the two ARM-Pointer-Authentication baselines,
   PACMem (CCS 2022) and CryptSan (SAC 2023).

   Both seal a metadata identifier into the free upper bits of each
   pointer and validate object-granularity bounds + liveness at every
   dereference.  They differ in how identifiers are managed (PACMem
   recycles table slots through a free list; CryptSan mints monotonically
   increasing ids and keeps per-object salts) -- and they share the two
   structural blind spots the paper's Table II shows: no sub-object
   narrowing and no wide-character interceptors. *)

open Tir.Ir

type entry = {
  e_base : int;
  e_bound : int;
  e_salt : int;      (* per-allocation auth value *)
  e_alive : bool;
}

type policy = {
  p_name : string;
  p_prefix : string;               (* intrinsic namespace, e.g. "__pacmem" *)
  p_tag_bits : int;                (* id field width *)
  p_reuse : bool;                  (* recycle freed ids (PACMem) *)
  p_check_cost : int;
}

type t = {
  pol : policy;
  entries : (int, entry) Hashtbl.t;
  mutable next_id : int;
  mutable free_ids : int list;
  mutable salt_src : int;
}

let create pol = {
  pol;
  entries = Hashtbl.create 256;
  next_id = 1;
  free_ids = [];
  salt_src = 0x5A17;
}

let tag_shift = Vm.Layout46.tag_shift

let tag_of rt p = (p lsr tag_shift) land ((1 lsl rt.pol.p_tag_bits) - 1)
let strip p = Vm.Layout46.strip p
let seal _rt p id = strip p lor (id lsl tag_shift)

let fresh_id rt =
  match rt.free_ids with
  | id :: rest when rt.pol.p_reuse ->
    rt.free_ids <- rest;
    id
  | _ ->
    let id = rt.next_id in
    rt.next_id <-
      (if id + 1 >= 1 lsl rt.pol.p_tag_bits then 1 else id + 1);
    id

let register rt base size =
  let id = fresh_id rt in
  rt.salt_src <- rt.salt_src + 0x9E37;
  Hashtbl.replace rt.entries id
    { e_base = base; e_bound = base + size; e_salt = rt.salt_src;
      e_alive = true };
  seal rt base id

let retire rt id =
  (match Hashtbl.find_opt rt.entries id with
   | Some e -> Hashtbl.replace rt.entries id { e with e_alive = false }
   | None -> ());
  if rt.pol.p_reuse then rt.free_ids <- id :: rt.free_ids

let auth rt (st : Vm.State.t) ~write p size =
  Vm.State.tick st rt.pol.p_check_cost;
  let id = tag_of rt p in
  let raw = strip p in
  if id = 0 then raw  (* foreign/untagged pointer: used as-is *)
  else
    match Hashtbl.find_opt rt.entries id with
    | None ->
      (* under Recover the access proceeds on the stripped pointer *)
      Vm.State.report st ~by:rt.pol.p_name ~addr:raw
        (Vm.Report.Other "authentication-failure")
        ~detail:"pointer authentication failed (no metadata)";
      raw
    | Some e ->
      if not e.e_alive then
        Vm.State.report st ~by:rt.pol.p_name ~addr:raw
          Vm.Report.Use_after_free
          ~detail:"authentication failed: object retired"
      else if raw < e.e_base || raw + size > e.e_bound then
        Vm.State.report st ~by:rt.pol.p_name ~addr:raw
          ~detail:
            (Printf.sprintf "bounds [0x%x,0x%x)" e.e_base e.e_bound)
          (if write then Vm.Report.Oob_write else Vm.Report.Oob_read);
      raw

let pa_malloc rt (st : Vm.State.t) size =
  let p = Vm.Heap.malloc st size in
  Vm.State.tick st 14;
  if p = 0 then 0  (* injected OOM: NULL carries no metadata *)
  else register rt p size

let pa_free rt (st : Vm.State.t) p =
  Vm.State.tick st 10;
  if p = 0 then ()
  else begin
    let id = tag_of rt p in
    let raw = strip p in
    if id = 0 then Vm.Heap.free st raw
    else
      match Hashtbl.find_opt rt.entries id with
      | None ->
        Vm.State.report st ~by:rt.pol.p_name ~addr:raw
          Vm.Report.Invalid_free ~detail:"free: authentication failed"
      | Some e ->
        let verdict =
          if not e.e_alive then
            Some (Vm.Report.Double_free, "free of retired object")
          else if raw <> e.e_base then
            Some (Vm.Report.Invalid_free, "free of non-base pointer")
          else if raw < Vm.Layout46.heap_base
               || raw >= Vm.Layout46.heap_limit then
            Some (Vm.Report.Invalid_free, "free of non-heap object")
          else None
        in
        (match verdict with
         | Some (kind, detail) ->
           (* a recovering run treats the bad free as a no-op *)
           Vm.State.report st ~by:rt.pol.p_name ~addr:raw kind ~detail
         | None ->
           retire rt id;
           Vm.Heap.free st raw)
  end

(* --- instrumentation (object granularity only; no sub-object pass) ---------- *)

let instrument (pol : policy) (md : modul) : unit =
  let pre = pol.p_prefix in
  Tir.Analysis.run md;
  (* unsafe globals load sealed pointers from a per-tool pointer table *)
  let slots =
    let k = ref (-1) in
    List.filter_map
      (fun g ->
         if g.g_unsafe then begin
           incr k;
           Some (g.g_name, g, !k)
         end
         else None)
      md.m_globals
  in
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, _, k) -> Hashtbl.replace slot_of n k) slots;
  iter_funcs md (fun f ->
      if not f.f_external then begin
        (* downgrade safety of accesses rooted at protected objects: the
           addresses will be sealed *)
        let unsafe_slot = Array.make (List.length f.f_slots) false in
        List.iter (fun s -> unsafe_slot.(s.s_id) <- s.s_unsafe) f.f_slots;
        Array.iter
          (fun b ->
             let rooted : (int, unit) Hashtbl.t = Hashtbl.create 8 in
             let opnd_rooted = function
               | Reg r -> Hashtbl.mem rooted r
               | Glob g -> Hashtbl.mem slot_of g
               | Imm _ -> false
             in
             b.b_instrs <-
               List.map
                 (fun i ->
                    let i' =
                      match i with
                      | Iload ({ addr; safe = true; _ } as l)
                        when opnd_rooted addr ->
                        Iload { l with safe = false }
                      | Istore ({ addr; safe = true; _ } as s)
                        when opnd_rooted addr ->
                        Istore { s with safe = false }
                      | i -> i
                    in
                    (match i' with
                     | Islot { dst; slot } when unsafe_slot.(slot) ->
                       Hashtbl.replace rooted dst ()
                     | Igep { dst; base; _ } when opnd_rooted base ->
                       Hashtbl.replace rooted dst ()
                     | _ ->
                       (match defs i' with
                        | Some d -> Hashtbl.remove rooted d
                        | None -> ()));
                    i')
                 b.b_instrs)
          f.f_blocks;
        (* global pointer loads *)
        Array.iter
          (fun b ->
             b.b_instrs <-
               List.concat_map
                 (fun i ->
                    let prefix = ref [] in
                    let fix o =
                      match o with
                      | Glob g when Hashtbl.mem slot_of g ->
                        let r = fresh_reg f in
                        prefix :=
                          Iintrin { dst = Some r; name = pre ^ "_gpt_load";
                                    args = [ Imm (Hashtbl.find slot_of g) ];
                                    site = fresh_site md }
                          :: !prefix;
                        Reg r
                      | o -> o
                    in
                    let i' =
                      match i with
                      | Imov c -> Imov { c with src = fix c.src }
                      | Ibin c -> Ibin { c with a = fix c.a; b = fix c.b }
                      | Icmp c -> Icmp { c with a = fix c.a; b = fix c.b }
                      | Isext c -> Isext { c with src = fix c.src }
                      | Iload c -> Iload { c with addr = fix c.addr }
                      | Istore c ->
                        Istore { c with addr = fix c.addr; src = fix c.src }
                      | Islot _ -> i
                      | Igep c ->
                        Igep { c with base = fix c.base;
                                      idx = Option.map fix c.idx }
                      | Icall c ->
                        Icall { c with args = List.map fix c.args }
                      | Iintrin c ->
                        Iintrin { c with args = List.map fix c.args }
                    in
                    List.rev (i' :: !prefix))
                 b.b_instrs)
          f.f_blocks;
        (* stack sealing *)
        let unsafe = List.filter (fun s -> s.s_unsafe) f.f_slots in
        if unsafe <> [] then begin
          let tag_reg : (int, int) Hashtbl.t = Hashtbl.create 4 in
          List.iter (fun s -> Hashtbl.replace tag_reg s.s_id (fresh_reg f))
            unsafe;
          Tir.Rewrite.map_instrs
            (function
              | Islot { dst; slot } when Hashtbl.mem tag_reg slot ->
                [ Imov { dst; src = Reg (Hashtbl.find tag_reg slot) } ]
              | i -> [ i ])
            f;
          let prologue =
            List.concat_map
              (fun s ->
                 let a = fresh_reg f in
                 [ Islot { dst = a; slot = s.s_id };
                   Iintrin { dst = Some (Hashtbl.find tag_reg s.s_id);
                             name = pre ^ "_stack_seal";
                             args = [ Reg a; Imm s.s_size ];
                             site = fresh_site md } ])
              unsafe
          in
          Tir.Rewrite.insert_prologue f prologue;
          Tir.Rewrite.insert_before_rets f (fun () ->
              List.map
                (fun s ->
                   Iintrin { dst = None; name = pre ^ "_stack_retire";
                             args = [ Reg (Hashtbl.find tag_reg s.s_id) ];
                             site = fresh_site md })
                unsafe)
        end;
        (* allocation family *)
        Tir.Rewrite.map_instrs
          (function
            | Icall { dst; callee; args }
              when Sanitizer.Spec.is_alloc_family callee ->
              [ Iintrin { dst; name = pre ^ "_" ^ callee; args;
                          site = fresh_site md } ]
            | i -> [ i ])
          f;
        (* strip sealed pointers at external user calls *)
        Tir.Rewrite.map_instrs
          (function
            | Icall { dst; callee; args } as i ->
              (match find_func md callee with
               | Some { f_external = true; f_sig_ptrs; _ } ->
                 let prefix = ref [] in
                 let args' =
                   List.mapi
                     (fun k a ->
                        if (match List.nth_opt f_sig_ptrs k with
                            | Some b -> b
                            | None -> false)
                        then begin
                          let r = fresh_reg f in
                          prefix :=
                            Iintrin { dst = Some r; name = pre ^ "_strip";
                                      args = [ a ]; site = fresh_site md }
                            :: !prefix;
                          Reg r
                        end
                        else a)
                     args
                 in
                 List.rev !prefix @ [ Icall { dst; callee; args = args' } ]
               | _ -> [ i ])
            | i -> [ i ])
          f;
        (* dereference authentication *)
        Tir.Rewrite.map_instrs
          (function
            | Iload ({ addr; size; safe; _ } as l) when not safe ->
              let r = fresh_reg f in
              [ Iintrin { dst = Some r; name = pre ^ "_auth_load";
                          args = [ addr; Imm size ]; site = fresh_site md };
                Iload { l with addr = Reg r } ]
            | Istore ({ addr; size; safe; _ } as s) when not safe ->
              let r = fresh_reg f in
              [ Iintrin { dst = Some r; name = pre ^ "_auth_store";
                          args = [ addr; Imm size ]; site = fresh_site md };
                Istore { s with addr = Reg r } ]
            | i -> [ i ])
          f
      end);
  match find_func md "main" with
  | None -> ()
  | Some main ->
    let init =
      List.concat_map
        (fun (gname, g, k) ->
           [ Iintrin { dst = None; name = pre ^ "_global_seal";
                       args = [ Glob gname; Imm g.g_size; Imm k ];
                       site = fresh_site md } ])
        slots
    in
    Tir.Rewrite.insert_prologue main init

(* --- interceptors: narrow family only (NO wide characters) -------------------- *)

let interceptors rt : string -> Vm.Runtime.interceptor option =
  let st_check st ~write p len =
    if len > 0 then ignore (auth rt st ~write p len)
  in
  let strip_all args = Array.map strip args in
  function
  | "memcpy" | "memmove" ->
    Some (fun st ~raw args ->
        st_check st ~write:true args.(0) args.(2);
        st_check st ~write:false args.(1) args.(2);
        let res = raw (strip_all args) in
        if res = 0 then 0 else args.(0))
  | "memset" ->
    Some (fun st ~raw args ->
        st_check st ~write:true args.(0) args.(2);
        ignore (raw (strip_all args));
        args.(0))
  | "memcmp" ->
    Some (fun st ~raw args ->
        st_check st ~write:false args.(0) args.(2);
        st_check st ~write:false args.(1) args.(2);
        raw (strip_all args))
  | "strcpy" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem (strip args.(1)) in
        st_check st ~write:true args.(0) (n + 1);
        st_check st ~write:false args.(1) (n + 1);
        ignore (raw (strip_all args));
        args.(0))
  | "strncpy" ->
    Some (fun st ~raw args ->
        st_check st ~write:true args.(0) args.(2);
        ignore (raw (strip_all args));
        args.(0))
  | "strcat" ->
    Some (fun st ~raw args ->
        let d = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        let s = Vm.Memory.strlen st.Vm.State.mem (strip args.(1)) in
        st_check st ~write:true args.(0) (d + s + 1);
        ignore (raw (strip_all args));
        args.(0))
  | "strlen" | "atoi" | "puts" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        st_check st ~write:false args.(0) (n + 1);
        raw (strip_all args))
  | "strcmp" | "strncmp" ->
    Some (fun st ~raw args ->
        let a = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        let b = Vm.Memory.strlen st.Vm.State.mem (strip args.(1)) in
        st_check st ~write:false args.(0) (a + 1);
        st_check st ~write:false args.(1) (b + 1);
        raw (strip_all args))
  | "printf" ->
    Some (fun st ~raw args ->
        Vm.State.tick st 3;
        raw (strip_all args))
  | "strchr" ->
    Some (fun _st ~raw args ->
        let res = raw (strip_all args) in
        if res = 0 then 0 else args.(0) + (res - strip args.(0)))
  | "fgets" ->
    Some (fun st ~raw args ->
        st_check st ~write:true args.(0) args.(1);
        let res = raw (strip_all args) in
        if res = 0 then 0 else args.(0))
  | "recv" ->
    Some (fun st ~raw args ->
        st_check st ~write:true args.(1) args.(2);
        raw (strip_all args))
  | "strdup" ->
    Some (fun st ~raw:_ args ->
        let src = strip args.(0) in
        let n = Vm.Memory.strlen st.Vm.State.mem src in
        st_check st ~write:false args.(0) (n + 1);
        let p = pa_malloc rt st (n + 1) in
        Vm.Memory.copy st.Vm.State.mem ~src ~dst:(strip p) ~len:(n + 1);
        p)
  (* wcscpy / wcsncpy / wcscat ... run raw: the blind spot *)
  | _ -> None

(* --- runtime assembly ----------------------------------------------------------- *)

let fresh_runtime (pol : policy) () : Vm.Runtime.t =
  let rt = create pol in
  let gpt : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let pre = pol.p_prefix in
  let vrt = {
    Vm.Runtime.rt_name = pol.p_name;
    intrinsics = Hashtbl.create 24;
    malloc = None;
    free_ = None;
    intercept = interceptors rt;
    usable_size = None;
    tbi_bits = 0;
    at_exit = (fun _ -> ());
  } in
  let reg n f = Hashtbl.replace vrt.Vm.Runtime.intrinsics n f in
  reg (pre ^ "_auth_load") (fun st a -> auth rt st ~write:false a.(0) a.(1));
  reg (pre ^ "_auth_store") (fun st a -> auth rt st ~write:true a.(0) a.(1));
  reg (pre ^ "_malloc") (fun st a -> pa_malloc rt st a.(0));
  reg (pre ^ "_free") (fun st a -> pa_free rt st a.(0); 0);
  reg (pre ^ "_calloc") (fun st a ->
      let n = a.(0) * a.(1) in
      let p = pa_malloc rt st n in
      Vm.Memory.fill st.Vm.State.mem ~dst:(strip p) ~len:n 0;
      Vm.State.tick st (Vm.Cost.mem_op n);
      p);
  reg (pre ^ "_realloc") (fun st a ->
      let old = a.(0) and size = a.(1) in
      if old = 0 then pa_malloc rt st size
      else begin
        let id = tag_of rt old in
        let raw = strip old in
        let old_size =
          if id = 0 then
            match Vm.Heap.usable_size st raw with
            | Some s -> Some s
            | None ->
              Vm.Report.trap ~addr:raw Vm.Report.Heap_corruption
                ~detail:"realloc(): invalid pointer"
          else
            match Hashtbl.find_opt rt.entries id with
            | Some e when e.e_alive && e.e_base = raw ->
              Some (e.e_bound - e.e_base)
            | Some { e_alive = false; _ } ->
              Vm.State.report st ~by:pol.p_name ~addr:raw
                Vm.Report.Double_free ~detail:"realloc of retired object";
              None
            | _ ->
              Vm.State.report st ~by:pol.p_name ~addr:raw
                Vm.Report.Invalid_free
                ~detail:"realloc authentication failed";
              None
        in
        match old_size with
        | None ->
          (* recovered: serve a fresh block, leave the old one alone *)
          pa_malloc rt st size
        | Some old_size ->
          let p = pa_malloc rt st size in
          if p = 0 then 0  (* injected OOM: the old block survives *)
          else begin
            Vm.Memory.copy st.Vm.State.mem ~src:raw ~dst:(strip p)
              ~len:(min old_size size);
            (if id <> 0 then retire rt id);
            Vm.Heap.free st raw;
            p
          end
      end);
  reg (pre ^ "_stack_seal") (fun st a ->
      Vm.State.tick st 9;
      register rt a.(0) a.(1));
  reg (pre ^ "_stack_retire") (fun st a ->
      Vm.State.tick st 5;
      let id = tag_of rt a.(0) in
      (match Hashtbl.find_opt rt.entries id with
       | Some e when e.e_alive && e.e_base = strip a.(0) -> retire rt id
       | _ -> ());
      0);
  reg (pre ^ "_global_seal") (fun st a ->
      let sealed = register rt a.(0) a.(1) in
      Hashtbl.replace gpt a.(2) sealed;
      Vm.State.tick st 8;
      0);
  reg (pre ^ "_gpt_load") (fun st a ->
      Vm.State.tick st 2;
      match Hashtbl.find_opt gpt a.(0) with
      | Some v -> v
      | None -> 0);
  reg (pre ^ "_strip") (fun st a ->
      Vm.State.tick st 2;
      strip a.(0));
  vrt

(* No check optimization; the auth intrinsics produce the stripped
   address, and every pointer reaching uninstrumented code must route
   through the strip intrinsic. *)
let verify_spec (pol : policy) : Tir.Verify.spec =
  let pre = pol.p_prefix in
  {
    check_load = pre ^ "_auth_load";
    check_store = pre ^ "_auth_store";
    produces_addr = true;
    strip_mask = Vm.Layout46.addr_mask;
    may_hoist_stores = true;
    hazard_intrinsics =
      [ pre ^ "_malloc"; pre ^ "_free"; pre ^ "_calloc"; pre ^ "_realloc";
        pre ^ "_stack_seal"; pre ^ "_stack_retire"; pre ^ "_global_seal" ];
    extcall_strip = Some (pre ^ "_strip");
    absint = None;
  }

let sanitizer (pol : policy) : Sanitizer.Spec.t =
  {
    Sanitizer.Spec.name = pol.p_name;
    instrument = instrument pol;
    optimize = (fun _ -> ());
    verify = Some (verify_spec pol);
    fresh_runtime = fresh_runtime pol;
    default_policy = Vm.Report.Halt;
  }

(* HWASan: hardware-assisted memory tagging (MTE-style, 8-bit tags on
   16-byte granules), relying on top-byte-ignore for compatibility.

   Mechanics that produce its Table II misses, all structural:
   - 16-byte granules: an overflow inside the padding of the last
     granule carries the right tag and is missed;
   - 8-bit tags: a far out-of-bounds access is missed with probability
     1/255 (tag collision, deterministic here via the seeded PRNG);
   - no libc interceptors at all -- TBI makes tagged pointers "just
     work" in uninstrumented libc, so an overflow or use-after-free
     through memcpy/strcpy/wcsncpy is never checked (half of the
     CWE416 misses in the paper's data);
   - free() only verifies the pointer's tag against memory, and an
     interior pointer carries the SAME tag as the base -- so invalid
     frees pass the tag check and proceed into the allocator: CWE761
     detection is 0%. *)

open Tir.Ir

let name = "HWASan"

(* tag field: bits 54..61 (8 bits); the VM masks them via tbi_bits *)
let tag_shift = 54
let granule = 16

let tag_of p = (p lsr tag_shift) land 0xff
let with_tag p t = p land lnot (0xff lsl tag_shift) lor (t lsl tag_shift)
let strip p = p land ((1 lsl tag_shift) - 1)

type t = {
  mutable last_tag : int;
  blocks : (int, int) Hashtbl.t;  (* payload -> rounded size *)
}

let tag_addr a = Vm.Layout46.tags_base + (a / granule)

let get_tag (st : Vm.State.t) a =
  Vm.Memory.load_byte st.Vm.State.mem (tag_addr a)

let set_granules (st : Vm.State.t) addr len t =
  let g0 = addr / granule and g1 = (addr + len - 1) / granule in
  for g = g0 to g1 do
    Vm.Memory.store_byte st.Vm.State.mem (Vm.Layout46.tags_base + g) t
  done

let random_tag rt st =
  let t = 1 + (Vm.State.next_rand st mod 255) in
  rt.last_tag <- t;
  t

(* --- allocator wrapper ------------------------------------------------------ *)

let hw_malloc rt (st : Vm.State.t) size =
  (* sizes round to the granule so whole granules carry one tag *)
  let rounded = (max size 1 + granule - 1) / granule * granule in
  let p = Vm.Heap.malloc st rounded in
  if p = 0 then 0  (* injected OOM: NULL carries no tag *)
  else begin
    let t = random_tag rt st in
    set_granules st p rounded t;
    Hashtbl.replace rt.blocks p rounded;
    Vm.State.tick st (10 + (rounded / granule));
    with_tag p t
  end

let hw_free rt (st : Vm.State.t) ptr =
  if ptr = 0 then ()
  else begin
    let raw = strip ptr in
    let t = tag_of ptr in
    (* the only validation: pointer tag vs memory tag; a recovering
       run treats the mismatched free as a no-op *)
    if t <> 0 && get_tag st raw <> t then
      Vm.State.report st ~by:name ~addr:raw Vm.Report.Use_after_free
        ~detail:"free(): pointer tag does not match memory tag"
    else (match Hashtbl.find_opt rt.blocks raw with
     | Some rounded ->
       (* retag freed memory so stale pointers mismatch (until reuse) *)
       set_granules st raw rounded (random_tag rt st);
       Hashtbl.remove rt.blocks raw;
       Vm.State.tick st (5 + (rounded / granule));
       Vm.Heap.free st raw
     | None ->
       (* interior or foreign pointer with a matching tag: falls through
          to the allocator, like the real runtime -- this is why CWE761
          is at 0% *)
       Vm.Heap.free st raw)
  end

let hw_usable rt (st : Vm.State.t) p =
  let raw = strip p in
  match Hashtbl.find_opt rt.blocks raw with
  | Some s -> Some s
  | None ->
    (* realloc of freed memory: the retagged granules no longer match *)
    if tag_of p <> 0 && get_tag st raw <> tag_of p then begin
      Vm.State.report st ~by:name ~addr:raw Vm.Report.Use_after_free
        ~detail:"realloc(): pointer tag does not match memory tag";
      (* recovered: hand realloc an empty old block *)
      Some 0
    end
    else None

(* --- checks ------------------------------------------------------------------ *)

let check (st : Vm.State.t) ~write addr size =
  Vm.State.tick st 4;
  let raw = strip addr in
  let pt = tag_of addr in
  let mt = get_tag st raw in
  if pt <> mt then
    Vm.State.report st ~by:name ~addr:raw
      ~detail:
        (Printf.sprintf "tag mismatch: ptr 0x%02x vs mem 0x%02x (%s of %d)"
           pt mt (if write then "store" else "load") size)
      (Vm.Report.Other "tag-mismatch");
  (* a multi-granule access must match every granule *)
  if size > granule - (raw mod granule) then begin
    let last = raw + size - 1 in
    if get_tag st last <> pt then
      Vm.State.report st ~by:name ~addr:last
        ~detail:"tag mismatch on access tail"
        (Vm.Report.Other "tag-mismatch")
  end

(* --- instrumentation ---------------------------------------------------------- *)

let insert_checks (md : modul) (f : func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Iload { addr; size; _ } as i ->
        [ Iintrin { dst = None; name = "__hwasan_check_load";
                    args = [ addr; Imm size ]; site = fresh_site md };
          i ]
      | Istore { addr; size; _ } as i ->
        [ Iintrin { dst = None; name = "__hwasan_check_store";
                    args = [ addr; Imm size ]; site = fresh_site md };
          i ]
      | i -> [ i ])
    f

(* Stack tagging: unsafe slots are padded to the granule, tagged in the
   prologue and retagged to 0 in the epilogue; the slot address
   instruction yields the tagged pointer. *)
let protect_stack (md : modul) (f : func) : unit =
  let unsafe = List.filter (fun s -> s.s_unsafe) f.f_slots in
  if unsafe <> [] then begin
    (* round unsafe slots to whole granules and align them *)
    f.f_slots <-
      List.map
        (fun s ->
           if s.s_unsafe then
             { s with
               s_size = (s.s_size + granule - 1) / granule * granule;
               s_align = max s.s_align granule }
           else s)
        f.f_slots;
    let tag_reg : (int, int) Hashtbl.t = Hashtbl.create 4 in
    List.iter (fun s -> Hashtbl.replace tag_reg s.s_id (fresh_reg f)) unsafe;
    Tir.Rewrite.map_instrs
      (function
        | Islot { dst; slot } when Hashtbl.mem tag_reg slot ->
          [ Imov { dst; src = Reg (Hashtbl.find tag_reg slot) } ]
        | i -> [ i ])
      f;
    let sizes : (int, int) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun s ->
         if s.s_unsafe then
           Hashtbl.replace sizes s.s_id
             ((s.s_size + granule - 1) / granule * granule))
      f.f_slots;
    let prologue =
      List.concat_map
        (fun s ->
           let a = fresh_reg f in
           [ Islot { dst = a; slot = s.s_id };
             Iintrin { dst = Some (Hashtbl.find tag_reg s.s_id);
                       name = "__hwasan_tag_stack";
                       args = [ Reg a; Imm (Hashtbl.find sizes s.s_id) ];
                       site = fresh_site md } ])
        unsafe
    in
    Tir.Rewrite.insert_prologue f prologue;
    Tir.Rewrite.insert_before_rets f (fun () ->
        List.map
          (fun s ->
             Iintrin { dst = None; name = "__hwasan_untag_stack";
                       args = [ Reg (Hashtbl.find tag_reg s.s_id);
                                Imm (Hashtbl.find sizes s.s_id) ];
                       site = fresh_site md })
          unsafe)
  end

(* Global tagging: unsafe globals are tagged at startup; references load
   the tagged address through an intrinsic (modelling the tagged-global
   relocations of the real toolchain). *)
let protect_globals (md : modul) : unit =
  let slots =
    let k = ref (-1) in
    List.filter_map
      (fun g ->
         if g.g_unsafe then begin
           incr k;
           Some (g.g_name, g, !k)
         end
         else None)
      md.m_globals
  in
  let slot_of : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (n, _, k) -> Hashtbl.replace slot_of n k) slots;
  iter_funcs md (fun f ->
      if not f.f_external then
        Array.iter
          (fun b ->
             b.b_instrs <-
               List.concat_map
                 (fun i ->
                    let prefix = ref [] in
                    let fix o =
                      match o with
                      | Glob g when Hashtbl.mem slot_of g ->
                        let r = fresh_reg f in
                        prefix :=
                          Iintrin { dst = Some r;
                                    name = "__hwasan_global_addr";
                                    args = [ Imm (Hashtbl.find slot_of g) ];
                                    site = fresh_site md }
                          :: !prefix;
                        Reg r
                      | o -> o
                    in
                    let i' =
                      match i with
                      | Imov c -> Imov { c with src = fix c.src }
                      | Ibin c -> Ibin { c with a = fix c.a; b = fix c.b }
                      | Icmp c -> Icmp { c with a = fix c.a; b = fix c.b }
                      | Isext c -> Isext { c with src = fix c.src }
                      | Iload c -> Iload { c with addr = fix c.addr }
                      | Istore c ->
                        Istore { c with addr = fix c.addr; src = fix c.src }
                      | Islot _ -> i
                      | Igep c ->
                        Igep { c with base = fix c.base;
                                      idx = Option.map fix c.idx }
                      | Icall c -> Icall { c with args = List.map fix c.args }
                      | Iintrin c ->
                        Iintrin { c with args = List.map fix c.args }
                    in
                    List.rev (i' :: !prefix))
                 b.b_instrs)
          f.f_blocks);
  match find_func md "main" with
  | None -> ()
  | Some main ->
    let init =
      List.concat_map
        (fun (gname, g, k) ->
           [ Iintrin { dst = None; name = "__hwasan_tag_global";
                       args = [ Glob gname; Imm g.g_size; Imm k ];
                       site = fresh_site md } ])
        slots
    in
    Tir.Rewrite.insert_prologue main init

(* Unsafe globals must own their granules exclusively: align to the
   granule and pad the size, or tagging would clobber a neighbor. *)
let granule_align_globals (md : modul) : unit =
  md.m_globals <-
    List.map
      (fun g ->
         if g.g_unsafe then begin
           let size = (g.g_size + granule - 1) / granule * granule in
           let image = Bytes.make size '\000' in
           Bytes.blit g.g_image 0 image 0 g.g_size;
           { g with g_size = size; g_align = max g.g_align granule;
                    g_image = image }
         end
         else g)
      md.m_globals

let instrument (md : modul) : unit =
  Tir.Analysis.run md;
  granule_align_globals md;
  protect_globals md;
  iter_funcs md (fun f ->
      if not f.f_external then begin
        protect_stack md f;
        insert_checks md f
      end)

(* --- read-side interceptors ----------------------------------------------------
   The runtime ships checking wrappers for the common READ-oriented
   string functions (strlen and friends): those scans would otherwise
   silently cross granule boundaries inside raw libc.  The write-side
   functions (memcpy, strcpy, the wide family) rely on TBI alone and run raw --
   overflows and use-after-free routed through them go unseen, which is
   the mechanistic source of the CWE416/121/122 misses. *)

let check_granules st ~write ptr len =
  Vm.State.tick st (4 + (max len 0 / granule));
  if len > 0 then begin
    let pt = tag_of ptr in
    let raw = strip ptr in
    let g0 = raw / granule and g1 = (raw + len - 1) / granule in
    (try
       for g = g0 to g1 do
         if Vm.Memory.load_byte st.Vm.State.mem (Vm.Layout46.tags_base + g)
            <> pt
         then begin
           Vm.State.report st ~by:name ~addr:(g * granule)
             ~detail:
               (Printf.sprintf "range tag mismatch (%s of %d)"
                  (if write then "write" else "read") len)
             (Vm.Report.Other "tag-mismatch");
           (* one recovered report per range is enough *)
           raise Exit
         end
       done
     with Exit -> ())
  end

let interceptors : string -> Vm.Runtime.interceptor option = function
  | "strlen" | "atoi" | "puts" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        check_granules st ~write:false args.(0) (n + 1);
        raw args)
  | "strcmp" ->
    Some (fun st ~raw args ->
        let a = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        let b = Vm.Memory.strlen st.Vm.State.mem (strip args.(1)) in
        check_granules st ~write:false args.(0) (a + 1);
        check_granules st ~write:false args.(1) (b + 1);
        raw args)
  | "strncmp" ->
    Some (fun st ~raw args ->
        check_granules st ~write:false args.(0)
          (min args.(2)
             (Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) + 1));
        raw args)
  | "strchr" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem (strip args.(0)) in
        check_granules st ~write:false args.(0) (n + 1);
        raw args)
  | "memcmp" ->
    Some (fun st ~raw args ->
        check_granules st ~write:false args.(0) args.(2);
        check_granules st ~write:false args.(1) args.(2);
        raw args)
  | _ -> None

(* --- runtime ------------------------------------------------------------------ *)

let fresh_runtime () : Vm.Runtime.t =
  let rt = { last_tag = 0; blocks = Hashtbl.create 64 } in
  let globals : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let vrt = {
    Vm.Runtime.rt_name = name;
    intrinsics = Hashtbl.create 16;
    malloc = Some (hw_malloc rt);
    free_ = Some (hw_free rt);
    intercept = interceptors;
    usable_size = Some (hw_usable rt);
    tbi_bits = 63 - tag_shift;
    at_exit = (fun _ -> ());
  } in
  let reg n f = Hashtbl.replace vrt.Vm.Runtime.intrinsics n f in
  reg "__hwasan_check_load" (fun st a -> check st ~write:false a.(0) a.(1); 0);
  reg "__hwasan_check_store" (fun st a -> check st ~write:true a.(0) a.(1); 0);
  reg "__hwasan_tag_stack" (fun st a ->
      let t = random_tag rt st in
      set_granules st a.(0) a.(1) t;
      Vm.State.tick st (4 + (a.(1) / granule));
      with_tag a.(0) t);
  reg "__hwasan_untag_stack" (fun st a ->
      set_granules st (strip a.(0)) a.(1) 0;
      Vm.State.tick st (2 + (a.(1) / granule));
      0);
  reg "__hwasan_tag_global" (fun st a ->
      let t = random_tag rt st in
      set_granules st a.(0) (max a.(1) 1) t;
      Hashtbl.replace globals a.(2) (with_tag a.(0) t);
      0);
  reg "__hwasan_global_addr" (fun st a ->
      Vm.State.tick st 2;
      match Hashtbl.find_opt globals a.(0) with
      | Some tagged -> tagged
      | None -> 0);
  vrt

(* No check optimization; tag/untag operations are the metadata hazards. *)
let verify_spec : Tir.Verify.spec = {
  check_load = "__hwasan_check_load";
  check_store = "__hwasan_check_store";
  produces_addr = false;
  strip_mask = -1;
  may_hoist_stores = false;
  hazard_intrinsics =
    [ "__hwasan_tag_stack"; "__hwasan_untag_stack"; "__hwasan_tag_global" ];
  extcall_strip = None;
  absint = None;
}

let sanitizer () : Sanitizer.Spec.t =
  { Sanitizer.Spec.name; instrument; optimize = (fun _ -> ());
    verify = Some verify_spec; fresh_runtime;
    default_policy = Vm.Report.Halt }

(* AddressSanitizer: the redzone/shadow-memory baseline.

   Faithful to the real tool's architecture:
   - a CUSTOM allocator replaces libc malloc (the compatibility cost the
     paper holds against ASan): chunks are laid out contiguously as
     [left redzone | payload | right redzone], redzones poisoned in
     shadow, freed chunks quarantined FIFO up to a byte cap before the
     memory can be reused;
   - every load/store is preceded by a shadow check;
   - stack arrays get in-frame redzones, globals get trailing redzone
     globals;
   - interceptors cover the narrow string/memory functions -- but not
     the wide-character family, which is one mechanistic source of its
     false negatives in Table II (the others: sub-object overflows stay
     inside the allocation; far out-of-bounds strides jump clean over
     the redzone into the next chunk's payload; quarantine eviction
     allows use-after-free memory to be reused). *)

open Tir.Ir

let name = "ASan"

let rz_left = 16
let rz_right size = if size <= 64 then 16 else 32

(* quarantine cap, scaled for our MiniC workloads the way 256 MiB is
   scaled to desktop programs *)
let default_quarantine_cap = 1 lsl 21 (* 2 MiB *)

type t = {
  blocks : (int, int) Hashtbl.t;         (* live payload -> size *)
  freed : (int, int) Hashtbl.t;          (* quarantined payload -> size *)
  quarantine : (int * int) Queue.t;      (* payload, chunk total *)
  mutable quarantine_bytes : int;
  quarantine_cap : int;
  free_lists : (int, int list ref) Hashtbl.t;  (* chunk total -> chunks *)
}

let align_up n a = (n + a - 1) / a * a

let chunk_total size = rz_left + align_up size 8 + rz_right size

(* --- the replacement allocator -------------------------------------------- *)

let asan_malloc rt (st : Vm.State.t) size =
  if size < 0 then
    Vm.Report.trap Vm.Report.Heap_corruption ~detail:"negative size";
  (* the custom allocator bypasses Vm.Heap, so it probes the injector
     itself to share the run's OOM budget *)
  if Vm.Fault.should_oom st.Vm.State.fault then 0 else begin
  let total = chunk_total size in
  let chunk =
    match Hashtbl.find_opt rt.free_lists total with
    | Some ({ contents = c :: rest } as l) ->
      l := rest;
      c
    | Some { contents = [] } | None ->
      let c = align_up st.alloc.Vm.Alloc.brk 16 in
      st.alloc.Vm.Alloc.brk <- c + total;
      if st.alloc.Vm.Alloc.brk >= Vm.Layout46.heap_limit then
        Vm.Report.trap Vm.Report.Heap_corruption
          ~detail:"out of simulated heap";
      c
  in
  let payload = chunk + rz_left in
  Shadow.poison st chunk rz_left Shadow.heap_left;
  Shadow.unpoison st payload size;
  let tail = payload + align_up size 8 in
  Shadow.poison st tail (chunk + total - tail) Shadow.heap_right;
  Hashtbl.replace rt.blocks payload size;
  st.heap_allocs <- st.heap_allocs + 1;
  (* malloc cost plus redzone poisoning, proportional to redzone bytes *)
  Vm.State.tick st (Vm.Cost.malloc size + ((total - size) / 8) + 55);
  payload
  end

let asan_free rt (st : Vm.State.t) payload =
  if payload = 0 then ()
  else if Hashtbl.mem rt.freed payload then
    (* a recovering run treats the bad free as a no-op *)
    Vm.State.report st ~by:name ~addr:payload Vm.Report.Double_free
      ~detail:"attempting double-free"
  else
    match Hashtbl.find_opt rt.blocks payload with
    | None ->
      Vm.State.report st ~by:name ~addr:payload Vm.Report.Invalid_free
        ~detail:"attempting free on address which was not malloc()-ed"
    | Some size ->
      Hashtbl.remove rt.blocks payload;
      Hashtbl.replace rt.freed payload size;
      Shadow.poison st payload (align_up (max size 1) 8) Shadow.heap_freed;
      let total = chunk_total size in
      Queue.push (payload, total) rt.quarantine;
      rt.quarantine_bytes <- rt.quarantine_bytes + total;
      st.heap_frees <- st.heap_frees + 1;
      Vm.State.tick st (Vm.Cost.free_base + (size / 8) + 40);
      (* evict oldest quarantine entries over the cap: their chunks
         become reusable, and a stale pointer into them goes undetected
         from then on *)
      while rt.quarantine_bytes > rt.quarantine_cap do
        let q, qt = Queue.pop rt.quarantine in
        Hashtbl.remove rt.freed q;
        rt.quarantine_bytes <- rt.quarantine_bytes - qt;
        let l =
          match Hashtbl.find_opt rt.free_lists qt with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.replace rt.free_lists qt l;
            l
        in
        l := (q - rz_left) :: !l
      done

let usable_size rt (st : Vm.State.t) payload =
  (* realloc of a quarantined block is a detected double-free/UAF *)
  if Hashtbl.mem rt.freed payload then begin
    Vm.State.report st ~by:name ~addr:payload Vm.Report.Double_free
      ~detail:"attempting realloc on freed memory";
    (* recovered: hand realloc an empty old block *)
    Some 0
  end
  else Hashtbl.find_opt rt.blocks payload

(* --- checks ----------------------------------------------------------------- *)

let check rt (st : Vm.State.t) ~write addr size =
  ignore rt;
  Vm.State.tick st 8;
  if not (Shadow.access_ok st addr size) then begin
    let code = Shadow.get st addr in
    let code =
      if code <> 0 then code else Shadow.get st ((addr lor 7) + 1)
    in
    Vm.State.report st ~by:name ~addr
      ~detail:(Printf.sprintf "shadow byte 0x%02x, %d-byte access" code size)
      (Shadow.classify code ~write)
  end

let check_region rt (st : Vm.State.t) ~write addr len =
  ignore rt;
  Vm.State.tick st (8 + (max len 0 / 8));
  if len > 0 then
    match Shadow.range_bad st addr len with
    | None -> ()
    | Some bad ->
      let code = Shadow.get st bad in
      Vm.State.report st ~by:name ~addr:bad
        ~detail:(Printf.sprintf "region of %d bytes" len)
        (Shadow.classify code ~write)

(* shadow-checked strlen used by the string interceptors *)
let checked_strlen rt st a =
  let rec go k =
    check rt st ~write:false (a + k) 1;
    if Vm.Memory.load_byte st.Vm.State.mem (a + k) = 0 then k
    else if k > 1 lsl 24 then
      Vm.Report.trap ~addr:a Vm.Report.Segfault ~detail:"unterminated string"
    else go (k + 1)
  in
  go 0

(* --- instrumentation --------------------------------------------------------- *)

(* Inserts in-frame redzones around unsafe stack slots and returns the
   poison/unpoison intrinsics for prologue and epilogue. *)
let protect_stack (md : modul) (f : func) : unit =
  let unsafe = List.filter (fun s -> s.s_unsafe) f.f_slots in
  if unsafe <> [] then begin
    (* rebuild the slot list with redzone slots; renumber and remap *)
    let remap : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let next = ref 0 in
    let out = ref [] in
    let rz_of : (int * (int * int)) list ref = ref [] in
    (* payload slot -> (rzL slot, rzR slot) *)
    List.iter
      (fun s ->
         if s.s_unsafe then begin
           let mk nm size =
             let id = !next in
             incr next;
             out := { s_id = id; s_name = nm; s_size = size; s_align = 8;
                      s_ty = Minic.Ast.Tarr (Minic.Ast.Tchar, size);
                      s_unsafe = false }
                    :: !out;
             id
           in
           let l = mk (s.s_name ^ "__rzL") 32 in
           let id = !next in
           incr next;
           Hashtbl.replace remap s.s_id id;
           out := { s with s_id = id; s_align = max s.s_align 8 } :: !out;
           let r = mk (s.s_name ^ "__rzR") 32 in
           rz_of := (id, (l, r)) :: !rz_of
         end
         else begin
           let id = !next in
           incr next;
           Hashtbl.replace remap s.s_id id;
           out := { s with s_id = id } :: !out
         end)
      f.f_slots;
    f.f_slots <- List.rev !out;
    Tir.Rewrite.map_instrs
      (function
        | Islot { dst; slot } -> [ Islot { dst; slot = Hashtbl.find remap slot } ]
        | i -> [ i ])
      f;
    let sized : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun s -> Hashtbl.replace sized s.s_id s.s_size) f.f_slots;
    let poison_code slot len code =
      let a = fresh_reg f in
      [ Islot { dst = a; slot };
        Iintrin { dst = None; name = "__asan_poison";
                  args = [ Reg a; Imm len; Imm code ];
                  site = fresh_site md } ]
    in
    let unpoison_slot slot len =
      let a = fresh_reg f in
      [ Islot { dst = a; slot };
        Iintrin { dst = None; name = "__asan_unpoison";
                  args = [ Reg a; Imm len ]; site = fresh_site md } ]
    in
    let prologue =
      List.concat_map
        (fun (payload, (l, r)) ->
           poison_code l 32 Shadow.stack_red
           @ poison_code r 32 Shadow.stack_red
           @ unpoison_slot payload (Hashtbl.find sized payload))
        !rz_of
    in
    Tir.Rewrite.insert_prologue f prologue;
    let rz_list = !rz_of in
    Tir.Rewrite.insert_before_rets f (fun () ->
        List.concat_map
          (fun (payload, (l, r)) ->
             unpoison_slot l 32 @ unpoison_slot r 32
             @ unpoison_slot payload
                 (align_up (Hashtbl.find sized payload) 8))
          rz_list)
  end

(* Appends a redzone global after every unsafe global and returns the
   main-entry poison code. *)
let protect_globals (md : modul) : instr list =
  let init = ref [] in
  let with_rz =
    List.concat_map
      (fun g ->
         if g.g_unsafe then begin
           let rz_name = g.g_name ^ "__asan_rz" in
           init :=
             Iintrin { dst = None; name = "__asan_poison";
                       args = [ Glob rz_name; Imm 32; Imm Shadow.global_red ];
                       site = fresh_site md }
             :: !init;
           [ g;
             { g_name = rz_name; g_size = 32; g_align = 8;
               g_image = Bytes.make 32 '\000';
               g_ty = Minic.Ast.Tarr (Minic.Ast.Tchar, 32);
               g_internal = true; g_unsafe = false } ]
         end
         else [ g ])
      md.m_globals
  in
  md.m_globals <- with_rz;
  !init

let insert_checks (md : modul) (f : func) : unit =
  Tir.Rewrite.map_instrs
    (function
      | Iload { addr; size; _ } as i ->
        [ Iintrin { dst = None; name = "__asan_check_load";
                    args = [ addr; Imm size ]; site = fresh_site md };
          i ]
      | Istore { addr; size; _ } as i ->
        [ Iintrin { dst = None; name = "__asan_check_store";
                    args = [ addr; Imm size ]; site = fresh_site md };
          i ]
      | i -> [ i ])
    f

let instrument (md : modul) : unit =
  Tir.Analysis.run md;
  iter_funcs md (fun f ->
      if not f.f_external then begin
        protect_stack md f;
        insert_checks md f
      end);
  let init = protect_globals md in
  match find_func md "main" with
  | Some main -> Tir.Rewrite.insert_prologue main init
  | None -> ()

(* --- interceptors: narrow family only ---------------------------------------- *)

let interceptors rt : string -> Vm.Runtime.interceptor option = function
  | "memcpy" | "memmove" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:false args.(1) args.(2);
        check_region rt st ~write:true args.(0) args.(2);
        raw args)
  | "memset" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:true args.(0) args.(2);
        raw args)
  | "memcmp" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:false args.(0) args.(2);
        check_region rt st ~write:false args.(1) args.(2);
        raw args)
  | "strcpy" ->
    Some (fun st ~raw args ->
        let n = checked_strlen rt st args.(1) in
        check_region rt st ~write:true args.(0) (n + 1);
        raw args)
  | "strncpy" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:true args.(0) args.(2);
        raw args)
  | "strcat" ->
    Some (fun st ~raw args ->
        let d = checked_strlen rt st args.(0) in
        let s = checked_strlen rt st args.(1) in
        check_region rt st ~write:true args.(0) (d + s + 1);
        raw args)
  | "strncat" ->
    Some (fun st ~raw args ->
        let d = checked_strlen rt st args.(0) in
        let s = min (checked_strlen rt st args.(1)) args.(2) in
        check_region rt st ~write:true args.(0) (d + s + 1);
        raw args)
  | "strlen" ->
    Some (fun st ~raw args ->
        let n = checked_strlen rt st args.(0) in
        ignore (raw args);
        n)
  | "strcmp" | "strncmp" | "atoi" | "puts" ->
    Some (fun st ~raw args ->
        ignore (checked_strlen rt st args.(0));
        raw args)
  | "strchr" ->
    Some (fun st ~raw args ->
        ignore (checked_strlen rt st args.(0));
        raw args)
  | "fgets" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:true args.(0) args.(1);
        raw args)
  | "recv" ->
    Some (fun st ~raw args ->
        check_region rt st ~write:true args.(1) args.(2);
        raw args)
  (* NO wide-character interceptors: wcscpy/wcsncpy/wcscat run raw *)
  | _ -> None

(* --- assembly ----------------------------------------------------------------- *)

let fresh_runtime ?(quarantine_cap = default_quarantine_cap) () :
  Vm.Runtime.t =
  let rt = {
    blocks = Hashtbl.create 64;
    freed = Hashtbl.create 64;
    quarantine = Queue.create ();
    quarantine_bytes = 0;
    quarantine_cap;
    free_lists = Hashtbl.create 16;
  } in
  let vrt = {
    Vm.Runtime.rt_name = name;
    intrinsics = Hashtbl.create 16;
    malloc = Some (asan_malloc rt);
    free_ = Some (asan_free rt);
    intercept = interceptors rt;
    usable_size = Some (usable_size rt);
    tbi_bits = 0;
    at_exit = (fun _ -> ());
  } in
  let reg n f = Hashtbl.replace vrt.Vm.Runtime.intrinsics n f in
  reg "__asan_check_load" (fun st a ->
      check rt st ~write:false a.(0) a.(1);
      0);
  reg "__asan_check_store" (fun st a ->
      check rt st ~write:true a.(0) a.(1);
      0);
  reg "__asan_poison" (fun st a ->
      Vm.State.tick st (2 + (a.(1) / 8));
      Shadow.poison st a.(0) a.(1) a.(2);
      0);
  reg "__asan_unpoison" (fun st a ->
      Vm.State.tick st (2 + (a.(1) / 8));
      Shadow.unpoison st a.(0) a.(1);
      0);
  vrt

(* ASan performs no check optimization; the verifier spec still lets
   Tir.Verify prove every unsafe access sits behind its shadow check. *)
let verify_spec : Tir.Verify.spec = {
  check_load = "__asan_check_load";
  check_store = "__asan_check_store";
  produces_addr = false;
  strip_mask = -1;
  may_hoist_stores = false;
  hazard_intrinsics = [ "__asan_poison"; "__asan_unpoison" ];
  extcall_strip = None;
  absint = None;
}

let sanitizer ?quarantine_cap () : Sanitizer.Spec.t =
  {
    Sanitizer.Spec.name;
    instrument;
    optimize = (fun _ -> ());
    verify = Some verify_spec;
    fresh_runtime = (fun () -> fresh_runtime ?quarantine_cap ());
    default_policy = Vm.Report.Halt;
  }

(* SoftBound + CETS: per-pointer bounds (spatial) plus key/lock
   identifiers (temporal).

   Metadata model: every pointer VALUE carries (base, bound, key, lock)
   in a disjoint map; metadata is created at allocation sites, propagated
   through pointer arithmetic (instrumented geps) and through memory (a
   second map keyed by the address a pointer is stored at).  This is the
   compiler-propagated shadow state of the real system, value-keyed
   because our IR is interpreted.

   The released prototype's well-known warts are reproduced
   mechanistically, because the paper's Table II hinges on them:
   - wide-character support is missing: any program touching wchar_t
     fails to "compile" ([Sanitizer.Spec.Unsupported]), which is how the
     evaluated subset shrinks to 3970 of 15752;
   - several libc wrappers are missing (strchr, strdup, fgets, recv,
     strncat): pointers returned by those come back with NULL bounds and
     the next dereference through them FALSELY reports -- the prototype's
     high false-positive rate;
   - sub-object bounds narrowing is claimed but not functional: field
     geps inherit the whole object's bounds, so sub-object overflows are
     missed. *)

open Tir.Ir

let name = "SoftBound/CETS"

type meta = { base : int; bound : int; key : int; lock : int }

type t = {
  (* pointer value -> metadata *)
  vmeta : (int, meta) Hashtbl.t;
  (* address where a pointer is stored -> metadata *)
  smeta : (int, meta) Hashtbl.t;
  (* lock id -> current key; freed locks get a new key *)
  locks : (int, int) Hashtbl.t;
  mutable next_lock : int;
  mutable next_key : int;
}

let null_meta = { base = 0; bound = 0; key = 0; lock = 0 }

let fresh_lock rt =
  let l = rt.next_lock in
  rt.next_lock <- l + 1;
  let k = rt.next_key in
  rt.next_key <- k + 1;
  Hashtbl.replace rt.locks l k;
  (l, k)

let revoke rt l =
  let k = rt.next_key in
  rt.next_key <- k + 1;
  Hashtbl.replace rt.locks l k

let meta_of rt v =
  match Hashtbl.find_opt rt.vmeta v with
  | Some m -> m
  | None -> null_meta

let set_meta rt v m = if v <> 0 then Hashtbl.replace rt.vmeta v m

(* --- runtime operations ------------------------------------------------------ *)

let sb_create rt ?(temporal = true) base size =
  let lock, key = if temporal then fresh_lock rt else (0, 0) in
  set_meta rt base { base; bound = base + size; key; lock }

let sb_check rt (st : Vm.State.t) ~write v size =
  Vm.State.tick st 8;
  let m = meta_of rt v in
  if m.lock <> 0 then begin
    match Hashtbl.find_opt rt.locks m.lock with
    | Some k when k = m.key -> ()
    | _ ->
      Vm.State.report st ~by:name ~addr:v Vm.Report.Use_after_free
        ~detail:"key/lock mismatch"
  end;
  if v < m.base || v + size > m.bound then
    Vm.State.report st ~by:name ~addr:v
      ~detail:
        (Printf.sprintf "bounds [0x%x,0x%x), access of %d" m.base m.bound
           size)
      (if write then Vm.Report.Oob_write else Vm.Report.Oob_read)

let sb_malloc rt (st : Vm.State.t) size =
  let p = Vm.Heap.malloc st size in
  Vm.State.tick st 15;
  sb_create rt p size;
  p

let sb_free rt (st : Vm.State.t) p =
  Vm.State.tick st 12;
  if p = 0 then ()
  else begin
    let m = meta_of rt p in
    let verdict =
      if m.bound = 0 then
        Some (Vm.Report.Invalid_free, "free of pointer without metadata")
      else if
        m.lock <> 0
        && (match Hashtbl.find_opt rt.locks m.lock with
            | Some k when k = m.key -> false
            | _ -> true)
      then Some (Vm.Report.Double_free, "free through dangling pointer")
      else if p <> m.base then
        Some (Vm.Report.Invalid_free, "free of non-base pointer")
      else if p < Vm.Layout46.heap_base || p >= Vm.Layout46.heap_limit then
        Some (Vm.Report.Invalid_free, "free of non-heap object")
      else None
    in
    match verdict with
    | Some (kind, detail) ->
      (* a recovering run treats the bad free as a no-op *)
      Vm.State.report st ~by:name ~addr:p kind ~detail
    | None ->
      if m.lock <> 0 then revoke rt m.lock;
      Vm.Heap.free st p
  end

(* --- instrumentation ----------------------------------------------------------- *)

(* The compile-error surface of the released prototype. *)
let check_supported (md : modul) : unit =
  let fail msg = raise (Sanitizer.Spec.Unsupported msg) in
  let rec has_wchar : Minic.Ast.ty -> bool = function
    | Minic.Ast.Twchar -> true
    | Tptr t | Tarr (t, _) -> has_wchar t
    | Tvoid | Tchar | Tshort | Tint | Tlong | Tstruct _ | Tfun _ -> false
  in
  iter_funcs md (fun f ->
      List.iter
        (fun s -> if has_wchar s.s_ty then fail "wchar_t is not supported")
        f.f_slots;
      Array.iter
        (fun b ->
           List.iter
             (function
               | Icall { callee; _ }
                 when (match callee with
                     | "wcscpy" | "wcsncpy" | "wcslen" | "wcscat"
                     | "wcscmp" -> true
                     | _ -> false) ->
                 fail ("missing prototype for " ^ callee)
               | _ -> ())
             b.b_instrs)
        f.f_blocks);
  List.iter
    (fun g -> if has_wchar g.g_ty then fail "wchar_t global not supported")
    md.m_globals

(* functions that RETURN a pointer but have no wrapper: the result gets
   no metadata, and later dereferences false-positive *)
let unwrapped_ptr_return = function
  | "strchr" | "strdup" | "fgets" -> true
  | _ -> false

let instrument (md : modul) : unit =
  check_supported md;
  Tir.Analysis.run md;
  iter_funcs md (fun f ->
      if not f.f_external then begin
        (* allocation family *)
        Tir.Rewrite.map_instrs
          (function
            | Icall { dst; callee; args }
              when Sanitizer.Spec.is_alloc_family callee ->
              [ Iintrin { dst; name = "__sb_" ^ callee; args;
                          site = fresh_site md } ]
            | i -> [ i ])
          f;
        (* metadata propagation and checks *)
        Tir.Rewrite.map_instrs
          (function
            | Igep { dst; base; _ } as i ->
              (* propagate pointer metadata through arithmetic *)
              [ i;
                Iintrin { dst = None; name = "__sb_copy_meta";
                          args = [ Reg dst; base ]; site = fresh_site md } ]
            | Iload { dst; addr; size; safe; _ } as i ->
              let check =
                if safe then []
                else
                  [ Iintrin { dst = None; name = "__sb_check_load";
                              args = [ addr; Imm size ];
                              site = fresh_site md } ]
              in
              if size = 8 then
                (* a pointer may be loaded: fetch its in-memory metadata *)
                check
                @ [ i;
                    Iintrin { dst = None; name = "__sb_load_meta";
                              args = [ addr; Reg dst ];
                              site = fresh_site md } ]
              else check @ [ i ]
            | Istore { addr; src; size; safe; _ } as i ->
              let check =
                if safe then []
                else
                  [ Iintrin { dst = None; name = "__sb_check_store";
                              args = [ addr; Imm size ];
                              site = fresh_site md } ]
              in
              if size = 8 then
                check
                @ [ i;
                    Iintrin { dst = None; name = "__sb_store_meta";
                              args = [ addr; src ]; site = fresh_site md } ]
              else check @ [ i ]
            | i -> [ i ])
          f;
        (* stack objects *)
        let unsafe = List.filter (fun s -> s.s_unsafe) f.f_slots in
        if unsafe <> [] then begin
          let prologue =
            List.concat_map
              (fun s ->
                 let a = fresh_reg f in
                 [ Islot { dst = a; slot = s.s_id };
                   Iintrin { dst = None; name = "__sb_stack_create";
                             args = [ Reg a; Imm s.s_size ];
                             site = fresh_site md } ])
              unsafe
          in
          Tir.Rewrite.insert_prologue f prologue;
          Tir.Rewrite.insert_before_rets f (fun () ->
              List.concat_map
                (fun s ->
                   let a = fresh_reg f in
                   [ Islot { dst = a; slot = s.s_id };
                     Iintrin { dst = None; name = "__sb_stack_destroy";
                               args = [ Reg a ]; site = fresh_site md } ])
                unsafe)
        end
      end);
  (* globals get whole-program metadata at startup *)
  match find_func md "main" with
  | None -> ()
  | Some main ->
    let init =
      List.concat_map
        (fun g ->
           if g.g_unsafe then
             [ Iintrin { dst = None; name = "__sb_global_create";
                         args = [ Glob g.g_name; Imm g.g_size ];
                         site = fresh_site md } ]
           else [])
        md.m_globals
    in
    Tir.Rewrite.insert_prologue main init

(* --- interceptors: the wrapped subset ------------------------------------------ *)

let interceptors rt : string -> Vm.Runtime.interceptor option = function
  | "memcpy" | "memmove" ->
    Some (fun st ~raw args ->
        sb_check rt st ~write:true args.(0) args.(2);
        sb_check rt st ~write:false args.(1) args.(2);
        raw args)
  | "memset" ->
    Some (fun st ~raw args ->
        sb_check rt st ~write:true args.(0) args.(2);
        raw args)
  | "strcpy" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem args.(1) in
        sb_check rt st ~write:true args.(0) (n + 1);
        sb_check rt st ~write:false args.(1) (n + 1);
        raw args)
  | "strncpy" ->
    Some (fun st ~raw args ->
        sb_check rt st ~write:true args.(0) args.(2);
        raw args)
  | "strcat" ->
    Some (fun st ~raw args ->
        let d = Vm.Memory.strlen st.Vm.State.mem args.(0) in
        let s = Vm.Memory.strlen st.Vm.State.mem args.(1) in
        sb_check rt st ~write:true args.(0) (d + s + 1);
        raw args)
  | "strlen" | "puts" | "atoi" ->
    Some (fun st ~raw args ->
        let n = Vm.Memory.strlen st.Vm.State.mem args.(0) in
        sb_check rt st ~write:false args.(0) (n + 1);
        raw args)
  | "strcmp" | "strncmp" ->
    Some (fun st ~raw args ->
        let a = Vm.Memory.strlen st.Vm.State.mem args.(0) in
        let b = Vm.Memory.strlen st.Vm.State.mem args.(1) in
        sb_check rt st ~write:false args.(0) (a + 1);
        sb_check rt st ~write:false args.(1) (b + 1);
        raw args)
  | "memcmp" ->
    Some (fun st ~raw args ->
        sb_check rt st ~write:false args.(0) args.(2);
        sb_check rt st ~write:false args.(1) args.(2);
        raw args)
  | "printf" ->
    Some (fun st ~raw args ->
        Vm.State.tick st 4;
        raw args)
  | name when unwrapped_ptr_return name ->
    Some (fun st ~raw args ->
        (* no wrapper: the call itself works, but the returned pointer
           gets NULL bounds -> later dereference reports spuriously *)
        let res = raw args in
        Vm.State.tick st 2;
        if res <> 0 then Hashtbl.replace rt.vmeta res null_meta;
        res)
  | _ -> None

(* --- runtime assembly ------------------------------------------------------------ *)

let fresh_runtime () : Vm.Runtime.t =
  let rt = {
    vmeta = Hashtbl.create 256;
    smeta = Hashtbl.create 256;
    locks = Hashtbl.create 64;
    next_lock = 1;
    next_key = 1;
  } in
  let vrt = {
    Vm.Runtime.rt_name = name;
    intrinsics = Hashtbl.create 16;
    malloc = None;
    free_ = None;
    intercept = interceptors rt;
    usable_size = None;
    tbi_bits = 0;
    at_exit = (fun _ -> ());
  } in
  let reg n f = Hashtbl.replace vrt.Vm.Runtime.intrinsics n f in
  reg "__sb_malloc" (fun st a -> sb_malloc rt st a.(0));
  reg "__sb_free" (fun st a -> sb_free rt st a.(0); 0);
  reg "__sb_calloc" (fun st a ->
      let n = a.(0) * a.(1) in
      let p = sb_malloc rt st n in
      Vm.Memory.fill st.Vm.State.mem ~dst:p ~len:n 0;
      Vm.State.tick st (Vm.Cost.mem_op n);
      p);
  reg "__sb_realloc" (fun st a ->
      let old = a.(0) and size = a.(1) in
      if old = 0 then sb_malloc rt st size
      else begin
        let m = meta_of rt old in
        let dangling =
          m.lock <> 0
          && (match Hashtbl.find_opt rt.locks m.lock with
              | Some k when k = m.key -> false
              | _ -> true)
        in
        if dangling then begin
          Vm.State.report st ~by:name ~addr:old Vm.Report.Double_free
            ~detail:"realloc through dangling pointer";
          (* recovered: serve a fresh block, leave the old one alone *)
          sb_malloc rt st size
        end
        else begin
          let old_size = if m.bound > m.base then m.bound - m.base else 0 in
          let p = sb_malloc rt st size in
          if p = 0 then 0  (* injected OOM: the old block survives *)
          else begin
            Vm.Memory.copy st.Vm.State.mem ~src:old ~dst:p
              ~len:(min old_size size);
            if m.lock <> 0 then revoke rt m.lock;
            Vm.Heap.free st old;
            p
          end
        end
      end);
  reg "__sb_check_load" (fun st a ->
      sb_check rt st ~write:false a.(0) a.(1);
      0);
  reg "__sb_check_store" (fun st a ->
      sb_check rt st ~write:true a.(0) a.(1);
      0);
  reg "__sb_copy_meta" (fun st a ->
      Vm.State.tick st 3;
      (match Hashtbl.find_opt rt.vmeta a.(1) with
       | Some m -> set_meta rt a.(0) m
       | None -> if a.(0) <> 0 then Hashtbl.remove rt.vmeta a.(0));
      0);
  reg "__sb_load_meta" (fun st a ->
      Vm.State.tick st 6;
      (match Hashtbl.find_opt rt.smeta a.(0) with
       | Some m -> set_meta rt a.(1) m
       | None -> ());
      0);
  reg "__sb_store_meta" (fun st a ->
      Vm.State.tick st 6;
      (match Hashtbl.find_opt rt.vmeta a.(1) with
       | Some m -> Hashtbl.replace rt.smeta a.(0) m
       | None -> Hashtbl.remove rt.smeta a.(0));
      0);
  reg "__sb_stack_create" (fun st a ->
      Vm.State.tick st 10;
      sb_create rt a.(0) a.(1);
      0);
  reg "__sb_stack_destroy" (fun st a ->
      Vm.State.tick st 6;
      let m = meta_of rt a.(0) in
      if m.lock <> 0 && m.base = a.(0) then revoke rt m.lock;
      0);
  reg "__sb_global_create" (fun st a ->
      Vm.State.tick st 8;
      sb_create rt ~temporal:false a.(0) a.(1);
      0);
  vrt

(* No check optimization; allocation/lifetime intrinsics invalidate the
   disjoint metadata a previous check relied on. *)
let verify_spec : Tir.Verify.spec = {
  check_load = "__sb_check_load";
  check_store = "__sb_check_store";
  produces_addr = false;
  strip_mask = -1;
  may_hoist_stores = false;
  hazard_intrinsics =
    [ "__sb_malloc"; "__sb_free"; "__sb_calloc"; "__sb_realloc";
      "__sb_stack_create"; "__sb_stack_destroy"; "__sb_global_create" ];
  extcall_strip = None;
  absint = None;
}

let sanitizer () : Sanitizer.Spec.t =
  { Sanitizer.Spec.name; instrument; optimize = (fun _ -> ());
    verify = Some verify_spec; fresh_runtime;
    default_policy = Vm.Report.Halt }

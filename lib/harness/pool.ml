(* A fixed-size pool of OCaml 5 domains with a shared work queue.

   The evaluation grid is embarrassingly parallel: every Driver.run is
   seeded and cost-model deterministic, and no two runs share mutable
   state (each gets its own Vm.State; the driver's compile cache is
   mutex-guarded and hands out clones).  So the pool only has to fan
   independent jobs out across cores and reassemble results in
   submission order -- parallel output is then bit-for-bit identical to
   sequential output by construction.

   [map]/[map_results] block the submitting thread until every task
   finished.  Tasks must not themselves call [map] on the same pool (a
   worker waiting on workers can deadlock a full queue); the guard bit
   [mapping] turns that mistake into an immediate [Invalid_argument]
   rather than a hang.  The harness only ever parallelizes the
   outermost loop of each experiment. *)

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  lock : Mutex.t;
  work_ready : Condition.t;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
  mutable mapping : bool;   (* a map is in flight on this pool *)
}

let env_var = "CECSAN_JOBS"

(* CECSAN_JOBS resolution: unset/empty -> 1; 0 -> one worker per
   recommended domain; anything else non-positive or non-numeric is
   rejected with a one-line stderr warning naming the value, then runs
   with 1 (sequential by construction, so CI and tests stay
   reproducible rather than dying over an environment typo). *)
let default_jobs () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> 1
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some 0 -> Domain.recommended_domain_count ()
     | Some n when n > 0 -> n
     | Some _ | None ->
       Printf.eprintf "warning: %s=%s is not a valid job count; running with -j 1\n%!"
         env_var s;
       1)

let worker pool () =
  let rec loop () =
    Mutex.lock pool.lock;
    while Queue.is_empty pool.queue && not pool.shutting_down do
      Condition.wait pool.work_ready pool.lock
    done;
    match Queue.take_opt pool.queue with
    | Some task ->
      Mutex.unlock pool.lock;
      task ();
      loop ()
    | None ->
      (* empty queue + shutting_down *)
      Mutex.unlock pool.lock
  in
  loop ()

let create ~jobs =
  if jobs < 0 then
    invalid_arg (Printf.sprintf "Pool.create: negative job count %d" jobs);
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    { jobs; queue = Queue.create (); lock = Mutex.create ();
      work_ready = Condition.create (); shutting_down = false;
      domains = []; mapping = false }
  in
  (* jobs = 1 runs everything on the submitter: no domains at all *)
  if jobs > 1 then
    pool.domains <-
      List.init (jobs - 1) (fun _ -> Domain.spawn (worker pool));
  pool

(* Idempotent and safe to call from [Fun.protect] after a submitter-side
   exception: the domain list is taken (and emptied) under the lock, so
   a second call -- or a concurrent one -- finds [] and joins nothing
   instead of double-joining. *)
let shutdown pool =
  Mutex.lock pool.lock;
  pool.shutting_down <- true;
  let domains = pool.domains in
  pool.domains <- [];
  Condition.broadcast pool.work_ready;
  Mutex.unlock pool.lock;
  List.iter Domain.join domains

let with_pool ~jobs f =
  let pool = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Deterministic parallel map, total version: item i's result (or
   exception) goes to slot i, and the caller gets all n slots.  The
   sequential path wraps each call the same way, so [map_results] never
   aborts mid-list at any job count -- that is the property the
   supervision layer builds quarantine on. *)
let map_results (pool : t) (f : 'a -> 'b) (xs : 'a list)
  : ('b, exn) result list =
  let items = Array.of_list xs in
  let n = Array.length items in
  let seq () =
    List.map (fun x -> try Ok (f x) with e -> Error e) xs
  in
  if n = 0 then []
  else begin
    Mutex.lock pool.lock;
    if pool.mapping then begin
      Mutex.unlock pool.lock;
      invalid_arg
        "Pool.map: nested/concurrent map on the same pool (a worker \
         waiting on workers deadlocks; parallelize only the outermost \
         loop)"
    end;
    pool.mapping <- true;
    Mutex.unlock pool.lock;
    Fun.protect
      ~finally:(fun () ->
          Mutex.lock pool.lock;
          pool.mapping <- false;
          Mutex.unlock pool.lock)
      (fun () ->
         if pool.jobs <= 1 || n <= 1 then seq ()
         else begin
           let results : ('b, exn) result option array = Array.make n None in
           let remaining = Atomic.make n in
           let all_done = Condition.create () in
           let run i =
             let r = try Ok (f items.(i)) with e -> Error e in
             results.(i) <- Some r;
             if Atomic.fetch_and_add remaining (-1) = 1 then begin
               (* last task: wake the submitter *)
               Mutex.lock pool.lock;
               Condition.broadcast all_done;
               Mutex.unlock pool.lock
             end
           in
           Mutex.lock pool.lock;
           for i = 0 to n - 1 do
             Queue.add (fun () -> run i) pool.queue
           done;
           Condition.broadcast pool.work_ready;
           Mutex.unlock pool.lock;
           (* the submitter works the queue too, so jobs=N means N active
              domains, and a pool is never idle while its owner waits *)
           let rec drain () =
             Mutex.lock pool.lock;
             let task = Queue.take_opt pool.queue in
             Mutex.unlock pool.lock;
             match task with
             | Some task -> task (); drain ()
             | None -> ()
           in
           drain ();
           Mutex.lock pool.lock;
           while Atomic.get remaining > 0 do
             Condition.wait all_done pool.lock
           done;
           Mutex.unlock pool.lock;
           Array.to_list
             (Array.map
                (function Some r -> r | None -> assert false)
                results)
         end)
  end

(* Exception-propagating map on top of [map_results]: every task still
   runs to completion, then the lowest-index exception (the one a
   sequential run would have surfaced first) is re-raised. *)
let map (pool : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let rec unwrap = function
    | [] -> []
    | Ok v :: tl -> v :: unwrap tl
    | Error e :: _ -> raise e
  in
  unwrap (map_results pool f xs)

(* The harness entry points all take [?pool]; [None] means sequential. *)
let maybe_map (pool : t option) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  match pool with Some p when p.jobs > 1 -> map p f xs | _ -> List.map f xs

let maybe_map_results (pool : t option) (f : 'a -> 'b) (xs : 'a list)
  : ('b, exn) result list =
  match pool with
  | Some p -> map_results p f xs
  | None -> List.map (fun x -> try Ok (f x) with e -> Error e) xs

(* Harness.Supervise: crash quarantine for pool tasks.

   Every campaign/grid task runs inside [run]: exceptions that escape
   the task -- including asynchronous-looking ones such as
   [Stack_overflow] and [Out_of_memory], plus the injected fault
   classes [Vm.Fault.Injected_crash] and [Tir.Fuel.Exhausted] -- are
   caught, classified, retried under a deterministic count-based policy
   and, once the budget is spent, converted into a quarantine ledger
   entry instead of aborting the whole run.

   Determinism: the retry policy is seeded and count-based -- no wall
   clock, no randomized backoff.  A task that fails deterministically
   fails the same way on every attempt, so the ledger produced at -j1
   is byte-identical to the one produced at -j4 or after a
   checkpoint/resume.  The [attempt] index is passed to the task so a
   retry can (deterministically) vary its derived seed if it wants
   to. *)

type entry = {
  q_task : int;        (* task id within its campaign/grid *)
  q_seed : int;        (* the task's derived seed *)
  q_class : string;    (* exception class, from [classify] *)
  q_phase : string;    (* pipeline phase the failure escaped from *)
  q_attempts : int;    (* attempts made before quarantining *)
  q_detail : string;   (* printable exception payload *)
}

type policy = {
  max_retries : int;   (* extra attempts after the first failure *)
  retry_seed : int;    (* folded into attempt-varying derived seeds *)
}

let default_policy = { max_retries = 1; retry_seed = 0x5EED }

(* Exception -> (class, phase).  The phase is "run" unless the
   exception itself carries one (fuel exhaustion names the pipeline
   stage whose budget tripped). *)
let classify : exn -> string * string = function
  | Vm.Fault.Injected_crash _ -> "crash", "run"
  | Tir.Fuel.Exhausted { phase; _ } -> "fuel", phase
  | Stack_overflow -> "stack-overflow", "run"
  | Out_of_memory -> "out-of-memory", "run"
  | Failure _ -> "failure", "run"
  | _ -> "exn", "run"

type 'a outcome = {
  result : ('a, entry) result;
  retries : int;       (* re-attempts actually made (0 on first-try success) *)
}

let run ?(policy = default_policy) ~task ~seed (f : attempt:int -> 'a)
  : 'a outcome =
  let attempts = 1 + max policy.max_retries 0 in
  let rec go attempt =
    match f ~attempt with
    | v -> { result = Ok v; retries = attempt }
    | exception e ->
      if attempt + 1 < attempts then go (attempt + 1)
      else
        let cls, phase = classify e in
        let entry =
          { q_task = task; q_seed = seed; q_class = cls; q_phase = phase;
            q_attempts = attempt + 1; q_detail = Printexc.to_string e }
        in
        { result = Error entry; retries = attempt }
  in
  go 0

(* --- ledger serialization -------------------------------------------------- *)

(* One line per entry; [%S] on the detail keeps the line single-line
   and round-trippable through [Scanf].  This is the quarantine half of
   the checkpoint schema (DESIGN.md section 13). *)
let entry_to_line e =
  Printf.sprintf "task=%d seed=%x attempts=%d class=%s phase=%s detail=%S"
    e.q_task e.q_seed e.q_attempts e.q_class e.q_phase e.q_detail

let entry_of_line line : entry option =
  match
    Scanf.sscanf line "task=%d seed=%x attempts=%d class=%s phase=%s detail=%S"
      (fun q_task q_seed q_attempts q_class q_phase q_detail ->
         { q_task; q_seed; q_class; q_phase; q_attempts; q_detail })
  with
  | e -> Some e
  | exception _ -> None

let render fmt (entries : entry list) =
  if entries = [] then
    Format.fprintf fmt "  (no quarantined tasks)@."
  else begin
    Format.fprintf fmt "  %6s %16s %8s %-14s %-8s %s@." "task" "seed"
      "attempts" "class" "phase" "detail";
    List.iter
      (fun e ->
         Format.fprintf fmt "  %6d %16x %8d %-14s %-8s %s@." e.q_task
           e.q_seed e.q_attempts e.q_class e.q_phase e.q_detail)
      entries
  end

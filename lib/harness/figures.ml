(* Runnable reproductions of the paper's figures.

   Figures 1 and 2 are architecture/code diagrams: Figure 1 is the
   pipeline itself (see README and examples/quickstart.ml) and Figure 2
   is implemented verbatim by [Cecsan.Meta_table].  Figures 3 and 4 are
   code examples with observable behavior, demonstrated here. *)

(* Figure 3 of the paper, verbatim modulo MiniC syntax. *)
let fig3_source = {|
struct CharVoid {
  char charFirst[16];
  void *voidSecond;
  void *voidThird;
};

int main() {
  struct CharVoid structCharVoid;
  structCharVoid.voidSecond = (void*)0x434543;   /* "CEC" */
  structCharVoid.voidThird = (void*)0x53414e;    /* "SAN" */
  char source[32];
  memset(source, 'A', 32);
  /* the sizeof is taken on the WHOLE struct: memcpy overruns
     charFirst[16] into voidSecond/voidThird */
  memcpy(structCharVoid.charFirst, source, sizeof(structCharVoid));
  printf("voidSecond=%p", structCharVoid.voidSecond);
  return 0;
}
|}

let fig3 ?backend fmt () =
  Fmt.pf fmt "FIGURE 3: sub-object overflow (memcpy with sizeof(struct))@.";
  Fmt.pf fmt "%s@." (String.make 72 '-');
  List.iter
    (fun (san : Sanitizer.Spec.t) ->
       let r = Sanitizer.Driver.run san ?backend fig3_source in
       Fmt.pf fmt "  %-16s -> %a@." san.Sanitizer.Spec.name
         Vm.Machine.pp_outcome r.Sanitizer.Driver.outcome)
    [
      Cecsan.sanitizer ();
      Baselines.Asan.sanitizer ();
      Baselines.Hwasan.sanitizer ();
      Baselines.Pacmem.sanitizer ();
    ];
  Fmt.pf fmt
    "  (only CECSan narrows the field pointer to charFirst[16]; the \
     others see one 32-byte object)@."

(* Figure 4(a): monotonic loop checks grouped via the statically known
   limit; 4(b): statically in-bounds accesses not instrumented. *)
let fig4_source = {|
int buf_good[16];

int process(int *data) {
  int sum = 0;
  /* fig 4(a): monotonic accesses with a statically-determined limit */
  for (int i = 0; i < 16; i++) {
    sum += data[i];
  }
  /* fig 4(b): constant in-bounds index: statically safe */
  sum += buf_good[15];
  return sum;
}

int main() {
  int data[16];
  for (int i = 0; i < 16; i++) data[i] = i;
  buf_good[15] = 100;
  return process(data) & 0xff;
}
|}

let count_checks md =
  Tir.Ir.count_intrins md (fun n ->
      String.length n >= 14
      && String.equal (String.sub n 0 14) "__cecsan_check")

let fig4 ?backend fmt () =
  Fmt.pf fmt "FIGURE 4: check optimization (section II.F)@.";
  Fmt.pf fmt "%s@." (String.make 72 '-');
  let run_with config =
    let san = Cecsan.sanitizer ~config () in
    let md = Sanitizer.Driver.build san fig4_source in
    let r = Sanitizer.Driver.run_module san ?backend md in
    (count_checks md, r.Sanitizer.Driver.cycles, r.Sanitizer.Driver.outcome)
  in
  let c0, cy0, o0 = run_with Cecsan.Config.no_opts in
  let c1, cy1, o1 = run_with Cecsan.Config.default in
  Fmt.pf fmt "  without optimizations: %2d static check sites, %6d cycles \
              (%a)@." c0 cy0 Vm.Machine.pp_outcome o0;
  Fmt.pf fmt "  with optimizations:    %2d static check sites, %6d cycles \
              (%a)@." c1 cy1 Vm.Machine.pp_outcome o1;
  Fmt.pf fmt
    "  the 16-iteration loop collapses to two endpoint checks in the \
     preheader,@.";
  Fmt.pf fmt
    "  and buf_good[15] (constant, in bounds) is not instrumented at \
     all.@.";
  (* and the safety net: the same optimized build still catches the bad
     variant *)
  let bad =
    Sanitizer.Driver.run (Cecsan.sanitizer ()) ?backend
      {|
int main() {
  int *data = (int*)malloc(16 * sizeof(int));
  int sum = 0;
  for (int i = 0; i < 20; i++) {  /* overruns data[16] */
    data[i] = i;
    sum += data[i];
  }
  free(data);
  return sum;
}
|}
  in
  Fmt.pf fmt "  (safety preserved: overrunning variant -> %a)@."
    Vm.Machine.pp_outcome bad.Sanitizer.Driver.outcome

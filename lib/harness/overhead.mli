(** Runtime and memory overhead measurement (Tables IV and V):
    deterministic cycle-count and resident-page ratios against the
    uninstrumented run. *)

type measurement = {
  m_tool : string;
  m_runtime_pct : float;
  m_memory_pct : float;
  m_cycles : int;
  m_resident : int;
  m_snapshot : Telemetry.Snapshot.t;
      (** the instrumented run's full telemetry *)
  m_labels : (int * string) list;
      (** site id -> IR origin, for the hot-site report *)
}

type row = {
  r_workload : string;
  r_base_cycles : int;
  r_base_resident : int;
  r_measurements : measurement list;
  r_correct : bool;  (** every run returned the expected checksum *)
}

val default_budget : int
(** The shared cycle budget ([Vm.State.default_budget]) bounding both
    the baseline and every sanitizer run; override per call with
    [?budget]. *)

val run_workload :
  ?budget:int -> ?backend:Vm.Machine.backend -> Sanitizer.Spec.t list ->
  Workloads.Spec2006.t -> row

val perf_lineup : unit -> Sanitizer.Spec.t list
(** ASan, ASan--, CECSan: the Table IV/V columns. *)

val measure :
  ?budget:int -> ?pool:Pool.t -> ?backend:Vm.Machine.backend ->
  Workloads.Spec2006.t list -> row list
(** One row per workload; [pool] fans the rows out across domains
    (deterministic: identical to the sequential result); [backend]
    threads into every run (cycle counts are backend-invariant, only
    wall clock moves). *)

val column : row list -> string -> (measurement -> float) -> float list

val aggregates : row list -> string -> (float * float) * (float * float)
(** [((runtime avg, runtime geomean), (memory avg, memory geomean))]. *)

(** Atomic file emission for benchmark and campaign artifacts
    (tmp + same-directory rename, so readers never see a torn file). *)

val with_file : path:string -> (out_channel -> unit) -> unit
(** [with_file ~path emit] opens [path ^ ".tmp"], hands the channel to
    [emit], then renames over [path].  On exception the temp file is
    removed and [path] is left untouched. *)

val write : path:string -> string -> unit
(** [write ~path contents] atomically replaces [path] with [contents]. *)

val write_lines : path:string -> string list -> unit
(** Each line is written with a trailing newline. *)

(* Runtime and memory overhead measurement (Tables IV and V).

   Each workload runs uninstrumented and under each sanitizer; runtime
   overhead is the cycle-count ratio, memory overhead the resident-page
   ratio -- both deterministic, so the tables reproduce bit-for-bit. *)

type measurement = {
  m_tool : string;
  m_runtime_pct : float;
  m_memory_pct : float;
  m_cycles : int;
  m_resident : int;
  m_snapshot : Telemetry.Snapshot.t;      (* the run's telemetry *)
  m_labels : (int * string) list;         (* site id -> IR origin *)
}

type row = {
  r_workload : string;
  r_base_cycles : int;
  r_base_resident : int;
  r_measurements : measurement list;
  r_correct : bool;   (* all runs returned the expected checksum *)
}

(* One shared, overridable budget: the same parameter bounds the
   baseline run and every sanitizer run of a row (previously a duplicated
   literal), and defaults to the VM-wide constant. *)
let default_budget = Vm.State.default_budget

let run_workload ?(budget = default_budget) ?backend
    (sans : Sanitizer.Spec.t list) (w : Workloads.Spec2006.t) : row =
  let base =
    Sanitizer.Driver.run Sanitizer.Spec.none ~budget ?backend w.w_source
  in
  let base_ok =
    match base.Sanitizer.Driver.outcome with
    | Vm.Machine.Exit c -> c = w.w_expected
    | _ -> false
  in
  let correct = ref base_ok in
  let measurements =
    List.map
      (fun san ->
         let r = Sanitizer.Driver.run san ~budget ?backend w.w_source in
         (match r.Sanitizer.Driver.outcome with
          | Vm.Machine.Exit c when c = w.w_expected -> ()
          | _ -> correct := false);
         {
           m_tool = san.Sanitizer.Spec.name;
           m_runtime_pct =
             Stats.percent_overhead ~base:base.Sanitizer.Driver.cycles
               ~measured:r.Sanitizer.Driver.cycles;
           m_memory_pct =
             Stats.percent_overhead ~base:base.Sanitizer.Driver.resident
               ~measured:r.Sanitizer.Driver.resident;
           m_cycles = r.Sanitizer.Driver.cycles;
           m_resident = r.Sanitizer.Driver.resident;
           m_snapshot = r.Sanitizer.Driver.snapshot;
           m_labels = r.Sanitizer.Driver.site_labels;
         })
      sans
  in
  {
    r_workload = w.Workloads.Spec2006.w_name;
    r_base_cycles = base.Sanitizer.Driver.cycles;
    r_base_resident = base.Sanitizer.Driver.resident;
    r_measurements = measurements;
    r_correct = !correct;
  }

(* The Table IV / V lineup. *)
let perf_lineup () : Sanitizer.Spec.t list =
  [
    Baselines.Asan.sanitizer ();
    Baselines.Asan_minus.sanitizer ();
    Cecsan.sanitizer ();
  ]

(* Rows are independent (each re-derives its own baseline), so the pool
   fans them out one workload per job. *)
let measure ?budget ?pool ?backend (workloads : Workloads.Spec2006.t list) :
  row list =
  Pool.maybe_map pool
    (run_workload ?budget ?backend (perf_lineup ()))
    workloads

(* Column extraction + aggregate rows. *)
let column (rows : row list) (tool : string) (f : measurement -> float) :
  float list =
  List.map
    (fun r ->
       let m = List.find (fun m -> String.equal m.m_tool tool)
           r.r_measurements
       in
       f m)
    rows

let aggregates (rows : row list) (tool : string) :
  (float * float) * (float * float) =
  let rt = column rows tool (fun m -> m.m_runtime_pct) in
  let mem = column rows tool (fun m -> m.m_memory_pct) in
  ( (Stats.average rt, Stats.geomean_overhead rt),
    (Stats.average mem, Stats.geomean_overhead mem) )

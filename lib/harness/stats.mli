(** Aggregates for the performance tables. *)

val average : float list -> float

val geomean_overhead : float list -> float
(** Geometric mean of overhead percentages, computed over the slowdown
    factors (1 + x/100) as SPEC-style geomeans are. *)

val percent_overhead : base:int -> measured:int -> float

(** {1 Exact-rank percentiles}

    Nearest-rank definition: the [q]-th percentile of [n] samples is the
    value at sorted index [ceil (q/100 * n)] (1-based) — an actual
    sample, never an interpolation, so percentile tables over integer
    latencies are deterministic and byte-stable across platforms. *)

val rank : q:float -> int -> int
(** [rank ~q n] is the 1-based nearest-rank index into [n] sorted
    samples, clamped to [\[1, n\]]; [0] when [n = 0]. *)

val percentile_int : q:float -> int list -> int
(** Exact-rank [q]-th percentile of an (unsorted) integer sample;
    [0] on the empty list.  The single-element list returns that
    element for every [q]. *)

val p50 : int list -> int
val p90 : int list -> int
val p99 : int list -> int
val p999 : int list -> int
(** [p999] is the 99.9th percentile (the serving-tail convention). *)

(** Runnable reproductions of the paper's figures (3 and 4; Figures 1-2
    are the pipeline itself and [Cecsan.Meta_table] respectively). *)

val fig3_source : string
(** Figure 3 of the paper, verbatim modulo MiniC syntax. *)

val fig3 :
  ?backend:Vm.Machine.backend -> Format.formatter -> unit -> unit
(** Runs Figure 3 under CECSan and the object-granularity baselines. *)

val fig4_source : string

val count_checks : Tir.Ir.modul -> int

val fig4 :
  ?backend:Vm.Machine.backend -> Format.formatter -> unit -> unit
(** Demonstrates the section II.F optimizations: static sites, dynamic
    cycles, and detection preservation. *)

(* Atomic artifact emission, shared by every machine-readable output
   (BENCH_resilience.json, BENCH_perf.json, campaign checkpoints and
   ledgers).  Writing goes to a same-directory temp file which is then
   renamed over the target: rename is atomic on POSIX, so a concurrent
   reader -- or a reader after a SIGKILL mid-write -- never observes a
   torn file, only the previous complete one (or none). *)

let with_file ~path emit =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  match emit oc with
  | () ->
    close_out oc;
    Sys.rename tmp path
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write ~path contents = with_file ~path (fun oc -> output_string oc contents)

let write_lines ~path lines =
  with_file ~path (fun oc ->
      List.iter (fun l -> output_string oc (l ^ "\n")) lines)

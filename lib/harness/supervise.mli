(** Crash quarantine for pool tasks: catch and classify escaped
    exceptions (including [Stack_overflow]/[Out_of_memory] and the
    injected [Vm.Fault.Injected_crash]/[Tir.Fuel.Exhausted] classes),
    retry under a deterministic count-based policy, and convert
    exhausted tasks into quarantine ledger entries instead of aborting
    the campaign.  No wall clock anywhere, so ledgers are byte-identical
    at any [-j] and across checkpoint/resume. *)

type entry = {
  q_task : int;        (** task id within its campaign/grid *)
  q_seed : int;        (** the task's derived seed *)
  q_class : string;    (** exception class, from {!classify} *)
  q_phase : string;    (** pipeline phase the failure escaped from *)
  q_attempts : int;    (** attempts made before quarantining *)
  q_detail : string;   (** printable exception payload *)
}

type policy = {
  max_retries : int;   (** extra attempts after the first failure *)
  retry_seed : int;    (** folded into attempt-varying derived seeds *)
}

val default_policy : policy
(** [{ max_retries = 1; retry_seed = 0x5EED }]. *)

val classify : exn -> string * string
(** Exception to (class, phase): ["crash"], ["fuel"] (phase = the
    exhausted stage), ["stack-overflow"], ["out-of-memory"],
    ["failure"], or ["exn"]. *)

type 'a outcome = {
  result : ('a, entry) result;
  retries : int;       (** re-attempts actually made *)
}

val run :
  ?policy:policy -> task:int -> seed:int -> (attempt:int -> 'a) ->
  'a outcome
(** Runs [f ~attempt:0], retrying with increasing [attempt] up to
    [policy.max_retries] times on any exception; on exhaustion returns
    the classified quarantine [entry] instead of raising. *)

val entry_to_line : entry -> string
(** One-line ledger serialization (the quarantine half of the
    checkpoint schema, DESIGN.md section 13). *)

val entry_of_line : string -> entry option
(** Inverse of {!entry_to_line}; [None] on malformed lines. *)

val render : Format.formatter -> entry list -> unit
(** Human-readable quarantine table. *)

(* Aggregates used by the performance tables: arithmetic mean and
   geometric mean of overhead percentages, matching how the paper
   reports "Average" and "Geometric Mean" rows. *)

let average (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Geometric mean of overhead percentages: computed over the slowdown
   factors (1 + x/100), reported back as a percentage, which is the
   standard way SPEC-style geomeans of overheads are formed. *)
let geomean_overhead (xs : float list) : float =
  match xs with
  | [] -> 0.0
  | _ ->
    let logs =
      List.map (fun x -> log (max (1.0 +. (x /. 100.0)) 1e-9)) xs
    in
    ((exp (average logs)) -. 1.0) *. 100.0

let percent_overhead ~base ~measured =
  if base <= 0 then 0.0
  else (float_of_int measured /. float_of_int base -. 1.0) *. 100.0

(* Exact-rank (nearest-rank) percentiles over integer samples, the
   serving-latency convention: the reported value is an actual sample
   at 1-based sorted index ceil(q/100 * n), so a latency table is a
   pure function of the multiset and byte-stable everywhere. *)

let rank ~q n =
  if n <= 0 then 0
  else
    (* the epsilon keeps exact products exact: 99.9/100 * 1000 lands a
       hair above 999.0 in binary and would otherwise ceil to 1000 *)
    let r =
      int_of_float (ceil ((q *. float_of_int n /. 100.0) -. 1e-9))
    in
    max 1 (min n r)

let percentile_int ~q (xs : int list) : int =
  match xs with
  | [] -> 0
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    a.(rank ~q (Array.length a) - 1)

let p50 xs = percentile_int ~q:50.0 xs
let p90 xs = percentile_int ~q:90.0 xs
let p99 xs = percentile_int ~q:99.0 xs
let p999 xs = percentile_int ~q:99.9 xs

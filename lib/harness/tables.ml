(* Paper-style table rendering: one function per table/figure of the
   evaluation section (DESIGN.md experiment index).  All output goes to a
   formatter so both bench/main.exe and tests can capture it. *)

let rule fmt width = Fmt.pf fmt "%s@." (String.make width '-')

(* --- Table I: description of the generated Juliet-style suite ------------- *)

let table1 fmt () =
  Fmt.pf fmt "TABLE I: Description of the generated Juliet-style suite@.";
  Fmt.pf fmt "(paper counts divided by 16; same per-CWE proportions)@.";
  rule fmt 66;
  Fmt.pf fmt "%-10s %-28s %10s %10s@." "CWE" "Vulnerability Type" "Samples"
    "(paper)";
  rule fmt 66;
  let paper =
    [ "CWE121", 4896; "CWE122", 3777; "CWE124", 1440; "CWE126", 2004;
      "CWE127", 2000; "CWE415", 818; "CWE416", 393; "CWE761", 424 ]
  in
  let total = ref 0 in
  List.iter
    (fun (name, descr, n) ->
       total := !total + n;
       Fmt.pf fmt "%-10s %-28s %10d %10d@." name descr n
         (List.assoc name paper))
    (Juliet.Suite.table1 ());
  rule fmt 66;
  Fmt.pf fmt "%-10s %-28s %10d %10d@." "Total" "-" !total 15752

(* --- Table II: detection-rate comparison ----------------------------------- *)

type table2_data = {
  t2_tools : Juliet.Runner.tool_results list;
}

(* Tools run one after another; the pool parallelizes each tool's case
   loop (985 independent bad+good runs per tool). *)
let run_table2 ?pool ?(cases = Juliet.Suite.all ()) ?backend () :
  table2_data =
  { t2_tools =
      List.map
        (fun san ->
           Juliet.Runner.run_tool ~map:(Pool.maybe_map pool) ?backend san
             cases)
        (Juliet.Runner.lineup ()) }

let paper_table2 =
  (* CECSan, PACMem, CryptSan, HWASan, ASan, SoftBound/CETS *)
  [ "CWE121", [ 100.0; 98.82; 98.5; 82.9; 83.74; 77.7 ];
    "CWE122", [ 100.0; 99.01; 97.4; 94.6; 83.92; 73.7 ];
    "CWE124", [ 100.0; 100.0; 100.0; 81.9; 80.18; 82.5 ];
    "CWE126", [ 100.0; 100.0; 100.0; 99.7; 82.89; 96.5 ];
    "CWE127", [ 100.0; 100.0; 100.0; 75.9; 91.01; 78.4 ];
    "CWE415", [ 100.0; 100.0; 100.0; 100.0; 100.0; 100.0 ];
    "CWE416", [ 100.0; 100.0; 100.0; 50.9; 90.41; 51.3 ];
    "CWE761", [ 100.0; 100.0; 100.0; 0.0; 91.56; 100.0 ] ]

let table2 fmt (d : table2_data) =
  Fmt.pf fmt "TABLE II: Comparison of memory violation detection@.";
  Fmt.pf fmt
    "(measured on this suite; 'paper' rows from the publication)@.";
  rule fmt 100;
  Fmt.pf fmt "%-16s" "Name (#cases)";
  List.iter
    (fun tr ->
       Fmt.pf fmt "%13s" (Printf.sprintf "%s(%d)" tr.Juliet.Runner.tool
                            tr.Juliet.Runner.evaluated))
    d.t2_tools;
  Fmt.pf fmt "@.";
  rule fmt 100;
  List.iter
    (fun (cwe, _) ->
       Fmt.pf fmt "%-16s" (Juliet.Case.cwe_name cwe);
       List.iter
         (fun tr ->
            match Juliet.Runner.rate tr cwe with
            | Some r -> Fmt.pf fmt "%12.1f%%" r
            | None -> Fmt.pf fmt "%13s" "-")
         d.t2_tools;
       Fmt.pf fmt "@.";
       Fmt.pf fmt "%-16s" "  (paper)";
       List.iter (fun p -> Fmt.pf fmt "%12.1f%%" p)
         (List.assoc (Juliet.Case.cwe_name cwe) paper_table2);
       Fmt.pf fmt "@.")
    Juliet.Suite.targets;
  rule fmt 100;
  Fmt.pf fmt "False positives on good versions: %a@."
    Fmt.(list ~sep:(any ", ") string)
    (List.map
       (fun tr ->
          Printf.sprintf "%s=%d" tr.Juliet.Runner.tool
            (Juliet.Runner.false_positives tr))
       d.t2_tools)

(* --- Table III: Linux Flaw Project ------------------------------------------ *)

let table3 ?backend fmt () =
  Fmt.pf fmt "TABLE III: Vulnerability detection on Linux-Flaw models@.";
  rule fmt 72;
  Fmt.pf fmt "%-16s %-24s %-12s %-10s@." "CVE" "Type" "Detected?"
    "Good run";
  rule fmt 72;
  let cecsan = Cecsan.sanitizer () in
  List.iter
    (fun (m : Workloads.Linux_flaws.t) ->
       let detected, clean =
         Workloads.Linux_flaws.evaluate ?backend cecsan m
       in
       Fmt.pf fmt "%-16s %-24s %-12s %-10s@." m.cve m.kind
         (if detected then "yes" else "NO (!)")
         (if clean then "clean" else "FP (!)"))
    Workloads.Linux_flaws.all;
  rule fmt 72

(* --- Tables IV and V: performance -------------------------------------------- *)

let perf_table fmt ~title ~per_bench (rows : Overhead.row list) =
  Fmt.pf fmt "%s@." title;
  rule fmt 92;
  if per_bench then begin
    Fmt.pf fmt "%-16s | %25s | %25s@." ""
      "Runtime Overhead" "Memory Overhead";
    Fmt.pf fmt "%-16s | %7s %8s %8s | %7s %8s %8s@." "Benchmark" "ASan"
      "ASan--" "CECSan" "ASan" "ASan--" "CECSan";
    rule fmt 92;
    List.iter
      (fun (r : Overhead.row) ->
         let g tool f =
           let m =
             List.find
               (fun (m : Overhead.measurement) -> String.equal m.m_tool tool)
               r.r_measurements
           in
           f m
         in
         Fmt.pf fmt "%-16s | %6.1f%% %7.1f%% %7.1f%% | %6.1f%% %7.1f%% %7.1f%%%s@."
           r.r_workload
           (g "ASan" (fun m -> m.m_runtime_pct))
           (g "ASan--" (fun m -> m.m_runtime_pct))
           (g "CECSan" (fun m -> m.m_runtime_pct))
           (g "ASan" (fun m -> m.m_memory_pct))
           (g "ASan--" (fun m -> m.m_memory_pct))
           (g "CECSan" (fun m -> m.m_memory_pct))
           (if r.r_correct then "" else "  [CHECKSUM MISMATCH]"))
      rows;
    rule fmt 92
  end;
  List.iter
    (fun tool ->
       let (rta, rtg), (mea, meg) = Overhead.aggregates rows tool in
       Fmt.pf fmt
         "%-8s runtime: average %6.1f%%  geomean %6.1f%%   memory: \
          average %7.1f%%  geomean %6.1f%%@."
         tool rta rtg mea meg)
    [ "ASan"; "ASan--"; "CECSan" ];
  rule fmt 92

let table4 fmt (rows : Overhead.row list) =
  perf_table fmt
    ~title:
      "TABLE IV: Performance overhead comparison on SPEC2006-like kernels\n\
       (paper averages: runtime ASan 109.4% / ASan-- 109.3% / CECSan \
       189.7%; memory ASan 160.9% / CECSan 2.69%)"
    ~per_bench:true rows

let table5 fmt (rows : Overhead.row list) =
  perf_table fmt
    ~title:
      "TABLE V: Performance overhead comparison on SPEC2017-like kernels\n\
       (paper: runtime ASan 110.2% / CECSan 187.5% avg; memory ASan \
       1260.0% avg, 204.3% geomean / CECSan 5.1% avg, 3.9% geomean)"
    ~per_bench:true rows

(* --- Ablation: contribution of each optimization (section II.F) ------------- *)

let ablation ?pool ?backend fmt (workloads : Workloads.Spec2006.t list) =
  Fmt.pf fmt "ABLATION: CECSan optimizations (section II.F) on the \
              SPEC2006-like kernels@.";
  rule fmt 76;
  Fmt.pf fmt "%-20s %12s %16s@." "Configuration" "runtime avg"
    "vs full CECSan";
  rule fmt 76;
  (* the uninstrumented baseline is configuration-independent: measure
     it once per workload instead of once per (configuration, workload) *)
  let bases =
    Pool.maybe_map pool
      (fun (w : Workloads.Spec2006.t) ->
         (Sanitizer.Driver.run Sanitizer.Spec.none
            ~budget:Overhead.default_budget ?backend w.w_source)
           .Sanitizer.Driver.cycles)
      workloads
  in
  let pairs = List.combine workloads bases in
  let measure_with (san : Sanitizer.Spec.t) =
    let rts =
      Pool.maybe_map pool
        (fun ((w : Workloads.Spec2006.t), base_cycles) ->
           let r =
             Sanitizer.Driver.run san ~budget:Overhead.default_budget
               ?backend w.w_source
           in
           Stats.percent_overhead ~base:base_cycles
             ~measured:r.Sanitizer.Driver.cycles)
        pairs
    in
    Stats.average rts
  in
  let full = measure_with (Cecsan.sanitizer ()) in
  Fmt.pf fmt "%-20s %11.1f%% %16s@." "CECSan (full)" full "-";
  List.iter
    (fun (name, config) ->
       let v = measure_with (Cecsan.sanitizer ~config ()) in
       Fmt.pf fmt "%-20s %11.1f%% %+15.1f%%@." name v (v -. full))
    [
      "no loop opt",
      { Cecsan.Config.default with Cecsan.Config.opt_loop = false };
      "no redundant elim",
      { Cecsan.Config.default with Cecsan.Config.opt_redundant = false };
      "no type-info elim",
      { Cecsan.Config.default with Cecsan.Config.opt_typeinfo = false };
      "no absint",
      { Cecsan.Config.default with Cecsan.Config.opt_absint = false };
      "no optimizations", Cecsan.Config.no_opts;
      "no sub-object", Cecsan.Config.no_subobject;
      "overflow chains on", Cecsan.Config.with_chain;
    ];
  rule fmt 76

(* The graceful-degradation table: how each sanitizer behaves when the
   run itself misbehaves.

   Every cell runs one smoke workload under the Recover policy with one
   injected fault (see Vm.Fault) and answers two questions the halt-only
   evaluation cannot: does the program still complete with the right
   answer, and how much coverage was lost doing so (entry-0 fallbacks,
   overflow chains, findings recorded along the way). *)

type cell = {
  c_status : string;   (* "ok", "ok*" (bugs recorded), exit/crash/... *)
  c_reports : int;     (* findings recorded by the sink *)
  c_suppressed : int;
  c_fallbacks : int;   (* allocations served unprotected (entry 0) *)
  c_chained : int;     (* allocations served via overflow chains *)
}

type data = {
  f_workload : string;
  f_scenarios : string list;          (* "none", "oom:N", ... *)
  f_rows : (string * cell list) list; (* sanitizer -> one cell/scenario *)
}

(* The last two scenarios fault the HARNESS rather than the guest:
   crash:25 kills the task at its 26th allocation, fuel:1000 gives the
   whole compile/verify pipeline a 1000-step budget (the perlbench
   pipeline burns ~1333, so the budget trips during compile).  Both
   escape [Driver.run] as exceptions; the supervised grid below turns
   them into "quarantined:*" cells instead of dying. *)
let scenarios =
  [ "none"; "oom:40"; "table:8"; "tagflip:97"; "crash:25"; "fuel:1000" ]

let lineup () : (string * Sanitizer.Spec.t) list =
  [
    "CECSan", Cecsan.sanitizer ();
    "CECSan-chain", Cecsan.sanitizer ~config:Cecsan.Config.with_chain ();
    "ASan", Baselines.Asan.sanitizer ();
    "HWASan", Baselines.Hwasan.sanitizer ();
    "SoftBound", Baselines.Softbound_cets.sanitizer ();
  ]

let fault_of_scenario s =
  if String.equal s "none" then Vm.Fault.none ()
  else
    match Vm.Fault.parse s with
    | Ok spec -> Vm.Fault.of_specs [ spec ]
    | Error m -> invalid_arg ("fault_of_scenario: " ^ m)

let stat telemetry key =
  match List.assoc_opt key telemetry with Some v -> v | None -> 0

let run_cell ?backend (san : Sanitizer.Spec.t)
    (w : Workloads.Spec2006.t) scenario : cell =
  let policy = Vm.Report.Recover { max_reports = 16 } in
  match
    Sanitizer.Driver.run san ~budget:200_000_000 ~policy
      ~fault:(fault_of_scenario scenario) ?backend
      w.Workloads.Spec2006.w_source
  with
  | exception Sanitizer.Spec.Unsupported _ ->
    { c_status = "excluded"; c_reports = 0; c_suppressed = 0;
      c_fallbacks = 0; c_chained = 0 }
  | r ->
    let fallbacks = stat r.Sanitizer.Driver.telemetry "exhausted_fallbacks" in
    let chained = stat r.Sanitizer.Driver.telemetry "chained" in
    let status =
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit c when c = w.Workloads.Spec2006.w_expected -> "ok"
      | Vm.Machine.Exit c -> Printf.sprintf "exit:%d" c
      | Vm.Machine.Completed_with_bugs { code; _ }
        when code = w.Workloads.Spec2006.w_expected ->
        "ok*"  (* right answer, findings recorded along the way *)
      | Vm.Machine.Completed_with_bugs { code; _ } ->
        Printf.sprintf "exit*:%d" code
      | Vm.Machine.Bug _ -> "halted"
      | Vm.Machine.Fault t ->
        (match t.Vm.Report.t_kind with
         | Vm.Report.Null_deref -> "crash:null"
         | Vm.Report.Segfault -> "crash:segv"
         | Vm.Report.Out_of_cycles -> "crash:cycles"
         | _ -> "crash")
    in
    {
      c_status = status;
      c_reports = List.length r.Sanitizer.Driver.reports;
      c_suppressed = r.Sanitizer.Driver.suppressed;
      c_fallbacks = fallbacks;
      c_chained = chained;
    }

(* Every (sanitizer, scenario) cell is independent: flatten the grid,
   fan it out via the total map, regroup by row.  A cell whose task
   died (injected crash, fuel exhaustion) renders as "quarantined:CLASS"
   instead of killing the whole table. *)
let run ?pool ?(workload = Workloads.Spec2006.perlbench) ?backend () :
  data =
  let rows = lineup () in
  let grid =
    List.concat_map
      (fun (_, san) -> List.map (fun sc -> (san, sc)) scenarios)
      rows
  in
  let cells =
    Pool.maybe_map_results pool
      (fun (san, sc) -> run_cell ?backend san workload sc)
      grid
    |> List.map (function
        | Ok c -> c
        | Error e ->
          { c_status = "quarantined:" ^ fst (Supervise.classify e);
            c_reports = 0; c_suppressed = 0; c_fallbacks = 0;
            c_chained = 0 })
  in
  let per_row = List.length scenarios in
  let f_rows =
    List.mapi
      (fun i (name, _) ->
         ( name,
           List.filteri
             (fun j _ -> j >= i * per_row && j < (i + 1) * per_row)
             cells ))
      rows
  in
  {
    f_workload = workload.Workloads.Spec2006.w_name;
    f_scenarios = scenarios;
    f_rows;
  }

let cell_to_string c =
  let deg =
    if c.c_fallbacks > 0 then Printf.sprintf " f%d" c.c_fallbacks
    else if c.c_chained > 0 then Printf.sprintf " c%d" c.c_chained
    else ""
  in
  let reps =
    if c.c_reports > 0 || c.c_suppressed > 0 then
      Printf.sprintf " r%d+%d" c.c_reports c.c_suppressed
    else ""
  in
  c.c_status ^ reps ^ deg

let render fmt (d : data) =
  let width = 18 + (22 * List.length d.f_scenarios) in
  Fmt.pf fmt "FAULT TABLE: graceful degradation on %s (recover mode)@."
    d.f_workload;
  Fmt.pf fmt
    "(ok = expected exit; * = findings recorded; rN+M = N reports, M \
     suppressed; fN = entry-0 fallbacks; cN = chained)@.";
  Fmt.pf fmt "%s@." (String.make width '-');
  Fmt.pf fmt "%-18s" "Sanitizer";
  List.iter (fun s -> Fmt.pf fmt "%22s" s) d.f_scenarios;
  Fmt.pf fmt "@.%s@." (String.make width '-');
  List.iter
    (fun (name, cells) ->
       Fmt.pf fmt "%-18s" name;
       List.iter (fun c -> Fmt.pf fmt "%22s" (cell_to_string c)) cells;
       Fmt.pf fmt "@.")
    d.f_rows;
  Fmt.pf fmt "%s@." (String.make width '-')

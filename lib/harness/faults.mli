(** The graceful-degradation table: per-sanitizer behavior under
    injected faults (allocator OOM, metadata-table exhaustion, tag
    corruption), run in recover mode over a smoke workload. *)

type cell = {
  c_status : string;
      (** ["ok"] expected exit; ["ok*"] expected exit with findings
          recorded; ["exit:N"]/["exit*:N"] wrong exit code;
          ["crash:..."] machine trap; ["excluded"] the sanitizer cannot
          compile the workload; ["quarantined:CLASS"] the task itself
          died (injected crash, fuel exhaustion) and was quarantined *)
  c_reports : int;
  c_suppressed : int;
  c_fallbacks : int;  (** allocations served unprotected via entry 0 *)
  c_chained : int;    (** allocations served via overflow chains *)
}

type data = {
  f_workload : string;
  f_scenarios : string list;
  f_rows : (string * cell list) list;
}

val scenarios : string list
(** The default scenario set: none, oom:40, table:8, tagflip:97, plus
    the harness-fault columns crash:25 and fuel:1000. *)

val lineup : unit -> (string * Sanitizer.Spec.t) list

val run_cell :
  ?backend:Vm.Machine.backend -> Sanitizer.Spec.t ->
  Workloads.Spec2006.t -> string -> cell
(** One sanitizer, one workload, one fault scenario, recover policy. *)

val run :
  ?pool:Pool.t -> ?workload:Workloads.Spec2006.t ->
  ?backend:Vm.Machine.backend -> unit -> data
(** The full lineup x scenario grid (default workload:
    [Workloads.Spec2006.perlbench]); [pool] fans the independent cells
    out across domains; [backend] threads into every cell. *)

val render : Format.formatter -> data -> unit

(** Paper-style table rendering: one entry point per table of the
    evaluation section, plus the optimization ablation. *)

val table1 : Format.formatter -> unit -> unit

type table2_data = { t2_tools : Juliet.Runner.tool_results list }

val run_table2 :
  ?pool:Pool.t -> ?cases:Juliet.Case.t list ->
  ?backend:Vm.Machine.backend -> unit -> table2_data
(** [pool] parallelizes each tool's case loop; results are identical
    to the sequential run (and to either [backend]). *)

val paper_table2 : (string * float list) list
val table2 : Format.formatter -> table2_data -> unit

val table3 :
  ?backend:Vm.Machine.backend -> Format.formatter -> unit -> unit

val table4 : Format.formatter -> Overhead.row list -> unit
val table5 : Format.formatter -> Overhead.row list -> unit

val ablation :
  ?pool:Pool.t -> ?backend:Vm.Machine.backend -> Format.formatter ->
  Workloads.Spec2006.t list -> unit

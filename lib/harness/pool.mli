(** A fixed-size pool of OCaml 5 domains with a shared work queue,
    feeding the evaluation grid (Tables II/IV/V, the ablation, the fault
    table).

    Every job is an independent, seeded, cost-model-deterministic
    [Driver.run]; [map] reassembles results in submission order, so
    parallel output is bit-for-bit identical to sequential output.  Jobs
    must not call [map] on the same pool recursively. *)

type t

val env_var : string
(** ["CECSAN_JOBS"]. *)

val default_jobs : unit -> int
(** Resolves [CECSAN_JOBS]: unset/invalid means 1 (sequential), [0]
    means [Domain.recommended_domain_count ()]. *)

val create : jobs:int -> t
(** [jobs] total workers (the submitting thread counts as one, so
    [jobs - 1] domains are spawned).  [jobs = 0] means one worker per
    recommended domain; [jobs <= 1] runs everything sequentially on the
    submitter. *)

val shutdown : t -> unit
(** Drains the workers and joins their domains.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create]/[shutdown] bracket. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with results in submission order.  If tasks
    raised, the lowest-index exception is re-raised after all tasks
    finished -- the same exception a sequential run would surface
    first. *)

val maybe_map : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map] when a pool with more than one worker is given, [List.map]
    otherwise -- the shape every harness [?pool] entry point uses. *)

(** A fixed-size pool of OCaml 5 domains with a shared work queue,
    feeding the evaluation grid (Tables II/IV/V, the ablation, the fault
    table).

    Every job is an independent, seeded, cost-model-deterministic
    [Driver.run]; [map] reassembles results in submission order, so
    parallel output is bit-for-bit identical to sequential output.  Jobs
    must not call [map] on the same pool recursively. *)

type t

val env_var : string
(** ["CECSAN_JOBS"]. *)

val default_jobs : unit -> int
(** Resolves [CECSAN_JOBS]: unset/empty means 1 (sequential), [0] means
    [Domain.recommended_domain_count ()].  Anything else non-positive or
    non-numeric prints a one-line stderr warning naming the rejected
    value and runs with 1. *)

val create : jobs:int -> t
(** [jobs] total workers (the submitting thread counts as one, so
    [jobs - 1] domains are spawned).  [jobs = 0] means one worker per
    recommended domain; [jobs = 1] runs everything sequentially on the
    submitter.  Raises [Invalid_argument] on a negative count. *)

val shutdown : t -> unit
(** Drains the workers and joins their domains.  Idempotent and safe to
    call again (or concurrently) after a submitter-side exception: the
    domain list is taken under the pool lock, so only one caller
    joins. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create]/[shutdown] bracket. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with results in submission order.  Every task
    runs to completion even when some raise; afterwards the
    lowest-index exception, if any, is re-raised -- the same exception
    a sequential run would surface first. *)

val map_results : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** Total version of [map]: slot i holds [Ok] or the task's escaped
    exception, never aborting the rest of the list.  This is the path
    the supervision layer builds quarantine on.  A nested or concurrent
    [map]/[map_results] on the same pool raises [Invalid_argument]
    immediately instead of deadlocking. *)

val maybe_map : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map] when a pool with more than one worker is given, [List.map]
    otherwise -- the shape every harness [?pool] entry point uses. *)

val maybe_map_results :
  t option -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map_results] with the same [?pool] convention; the sequential path
    wraps each call identically, so the result shape is job-count
    independent. *)

(* Always-on, near-zero-overhead runtime telemetry.

   One [t] lives on every [Vm.State.t].  Three families of data:

   - per-check-site counters, keyed by the stable site ids assigned at
     instrumentation time ([Tir.Ir.fresh_site]): how many times the site's
     check EXECUTED, how many times an execution was ELIDED by the
     redundant-check eliminator, and how many times it was COVERED by a
     hoisted or endpoint-grouped check.  The conservation law the test
     suite enforces is, per site:

       executed(O0) = executed(O2) + elided(O2) + covered(O2)

     i.e. the optimizer may move or remove work but never lose count of
     it;

   - named counters (monotonic sums, merged by addition) and gauges
     (point-in-time levels such as high-water marks, merged by max);

   - a bounded ring buffer of events (alloc / free / check-fail / strip)
     with a compile-time capacity; once full, new events overwrite the
     oldest and the drop counter records the loss.

   The library is dependency-free so every layer (VM, sanitizer
   runtimes, harness, fuzzer) can thread it without cycles.  All
   serialization is deterministic: sorted keys, submission-order
   events. *)

(* --- events ---------------------------------------------------------------- *)

type event_kind = Alloc | Free | Check_fail | Strip

(* [ev_a]/[ev_b] are kind-specific payloads:
   Alloc (addr, size) | Free (addr, 0) | Check_fail (site, addr)
   | Strip (addr, tag) *)
type event = { ev_kind : event_kind; ev_a : int; ev_b : int }

let event_kind_name = function
  | Alloc -> "alloc"
  | Free -> "free"
  | Check_fail -> "check-fail"
  | Strip -> "strip"

(* Compile-time ring capacity.  Small on purpose: the buffer answers
   "what happened just before the interesting moment", not "everything
   that happened". *)
let ring_capacity = 256

(* --- the live telemetry record -------------------------------------------- *)

type t = {
  (* per-site counters, indexed by site id; grown on demand *)
  mutable executed : int array;
  mutable elided : int array;
  mutable covered : int array;
  counters : (string, int) Hashtbl.t;
  gauges : (string, int) Hashtbl.t;
  ring : event array;
  mutable ring_start : int;   (* index of the oldest event *)
  mutable ring_len : int;
  mutable dropped : int;
}

let dummy_event = { ev_kind = Alloc; ev_a = 0; ev_b = 0 }

let create () = {
  executed = [||];
  elided = [||];
  covered = [||];
  counters = Hashtbl.create 16;
  gauges = Hashtbl.create 16;
  ring = Array.make ring_capacity dummy_event;
  ring_start = 0;
  ring_len = 0;
  dropped = 0;
}

(* --- per-site counters ----------------------------------------------------- *)

let grow arr site =
  let n = Array.length arr in
  let n' = max (site + 1) (max 64 (2 * n)) in
  let arr' = Array.make n' 0 in
  Array.blit arr 0 arr' 0 n;
  arr'

let bump_executed t site =
  if site >= 0 then begin
    if site >= Array.length t.executed then t.executed <- grow t.executed site;
    Array.unsafe_set t.executed site (Array.unsafe_get t.executed site + 1)
  end

let bump_elided t site =
  if site >= 0 then begin
    if site >= Array.length t.elided then t.elided <- grow t.elided site;
    Array.unsafe_set t.elided site (Array.unsafe_get t.elided site + 1)
  end

let bump_covered t site =
  if site >= 0 then begin
    if site >= Array.length t.covered then t.covered <- grow t.covered site;
    Array.unsafe_set t.covered site (Array.unsafe_get t.covered site + 1)
  end

let site_get arr site = if site < Array.length arr then arr.(site) else 0

let executed t site = site_get t.executed site
let elided t site = site_get t.elided site
let covered t site = site_get t.covered site

(* --- named counters and gauges --------------------------------------------- *)

let add_counter t key n =
  match Hashtbl.find_opt t.counters key with
  | Some v -> Hashtbl.replace t.counters key (v + n)
  | None -> Hashtbl.replace t.counters key n

let incr_counter t key = add_counter t key 1

let counter t key =
  match Hashtbl.find_opt t.counters key with Some v -> v | None -> 0

let set_gauge t key v = Hashtbl.replace t.gauges key v

(* A gauge that only ever rises (high-water marks). *)
let raise_gauge t key v =
  match Hashtbl.find_opt t.gauges key with
  | Some v0 when v0 >= v -> ()
  | _ -> Hashtbl.replace t.gauges key v

let gauge t key =
  match Hashtbl.find_opt t.gauges key with Some v -> v | None -> 0

(* --- the event ring -------------------------------------------------------- *)

let record t kind a b =
  let ev = { ev_kind = kind; ev_a = a; ev_b = b } in
  if t.ring_len < ring_capacity then begin
    t.ring.((t.ring_start + t.ring_len) mod ring_capacity) <- ev;
    t.ring_len <- t.ring_len + 1
  end
  else begin
    (* full: overwrite the oldest and account for the loss *)
    t.ring.(t.ring_start) <- ev;
    t.ring_start <- (t.ring_start + 1) mod ring_capacity;
    t.dropped <- t.dropped + 1
  end

let events t =
  List.init t.ring_len (fun i ->
      t.ring.((t.ring_start + i) mod ring_capacity))

(* --- snapshots ------------------------------------------------------------- *)

type live = t

module Snapshot = struct
  type site_row = {
    s_site : int;
    s_executed : int;
    s_elided : int;
    s_covered : int;
  }

  type nonrec t = {
    sites : site_row list;          (* sorted by site id, nonzero rows *)
    counters : (string * int) list; (* sorted by key *)
    gauges : (string * int) list;   (* sorted by key *)
    events : event list;            (* oldest first *)
    dropped : int;
  }

  let empty =
    { sites = []; counters = []; gauges = []; events = []; dropped = 0 }

  let sorted_assoc tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let capture (t : live) =
    let n =
      max (Array.length t.executed)
        (max (Array.length t.elided) (Array.length t.covered))
    in
    let sites = ref [] in
    for site = n - 1 downto 0 do
      let e = site_get t.executed site in
      let el = site_get t.elided site in
      let c = site_get t.covered site in
      if e <> 0 || el <> 0 || c <> 0 then
        sites :=
          { s_site = site; s_executed = e; s_elided = el; s_covered = c }
          :: !sites
    done;
    {
      sites = !sites;
      counters = sorted_assoc t.counters;
      gauges = sorted_assoc t.gauges;
      events = events t;
      dropped = t.dropped;
    }

  (* Merge in submission order: [a] happened-before [b].  Per-site and
     named counters add; gauges take the max (a high-water mark across
     runs is the highest of the runs); event streams concatenate, with
     overflow past the ring capacity counted as dropped -- exactly what
     one ring observing both runs would have kept. *)
  let merge a b =
    let merge_sites =
      let rec go xs ys =
        match xs, ys with
        | [], rest | rest, [] -> rest
        | x :: xs', y :: ys' ->
          if x.s_site < y.s_site then x :: go xs' ys
          else if y.s_site < x.s_site then y :: go xs ys'
          else
            { s_site = x.s_site;
              s_executed = x.s_executed + y.s_executed;
              s_elided = x.s_elided + y.s_elided;
              s_covered = x.s_covered + y.s_covered }
            :: go xs' ys'
      in
      go a.sites b.sites
    in
    let merge_assoc ~combine xs ys =
      let rec go xs ys =
        match xs, ys with
        | [], rest | rest, [] -> rest
        | ((kx, vx) as x) :: xs', ((ky, vy) as y) :: ys' ->
          let c = String.compare kx ky in
          if c < 0 then x :: go xs' ys
          else if c > 0 then y :: go xs ys'
          else (kx, combine vx vy) :: go xs' ys'
      in
      go xs ys
    in
    let evs = a.events @ b.events in
    let total = List.length evs in
    let over = max 0 (total - ring_capacity) in
    let rec drop n l =
      if n <= 0 then l
      else match l with [] -> [] | _ :: tl -> drop (n - 1) tl
    in
    {
      sites = merge_sites;
      counters = merge_assoc ~combine:( + ) a.counters b.counters;
      gauges = merge_assoc ~combine:max a.gauges b.gauges;
      events = drop over evs;
      dropped = a.dropped + b.dropped + over;
    }

  let merge_all = List.fold_left merge empty

  (* The snapshot (and its pinned JSON) omit all-zero site rows, which
     makes "instrumented but never reached" indistinguishable from "not
     instrumented at all".  Coverage consumers need that distinction, so
     [sites_full] re-inflates the row list against the instrumented-site
     universe the caller got from [Tir.Ir.site_origins]: one row per
     known site (zeros where the snapshot has none), plus any nonzero
     rows for sites outside the given universe, sorted by site id. *)
  let sites_full ~sites (s : t) : site_row list =
    let known = List.sort_uniq compare sites in
    let rec go known rows =
      match known, rows with
      | [], rest -> rest
      | k :: known', [] ->
        { s_site = k; s_executed = 0; s_elided = 0; s_covered = 0 }
        :: go known' []
      | k :: known', r :: rows' ->
        if r.s_site < k then r :: go known rows'
        else if r.s_site > k then
          { s_site = k; s_executed = 0; s_elided = 0; s_covered = 0 }
          :: go known' rows
        else r :: go known' rows'
    in
    go known s.sites

  (* --- deterministic JSON ------------------------------------------------- *)

  (* Hand-rolled writer: keys are sorted, integers only, no floats, no
     hash-order leakage -- the output is byte-identical for equal
     snapshots by construction. *)
  let json_escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
         match c with
         | '"' -> Buffer.add_string b "\\\""
         | '\\' -> Buffer.add_string b "\\\\"
         | '\n' -> Buffer.add_string b "\\n"
         | c when Char.code c < 0x20 ->
           Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
         | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let to_json (s : t) : string =
    let b = Buffer.create 1024 in
    let sep = ref false in
    let comma () = if !sep then Buffer.add_char b ',' else sep := true in
    Buffer.add_string b "{\"sites\":[";
    List.iter
      (fun r ->
         comma ();
         Buffer.add_string b
           (Printf.sprintf
              "{\"site\":%d,\"executed\":%d,\"elided\":%d,\"covered\":%d}"
              r.s_site r.s_executed r.s_elided r.s_covered))
      s.sites;
    Buffer.add_string b "],\"counters\":{";
    sep := false;
    List.iter
      (fun (k, v) ->
         comma ();
         Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
      s.counters;
    Buffer.add_string b "},\"gauges\":{";
    sep := false;
    List.iter
      (fun (k, v) ->
         comma ();
         Buffer.add_string b (Printf.sprintf "\"%s\":%d" (json_escape k) v))
      s.gauges;
    Buffer.add_string b (Printf.sprintf "},\"dropped\":%d,\"events\":[" s.dropped);
    sep := false;
    List.iter
      (fun ev ->
         comma ();
         Buffer.add_string b
           (Printf.sprintf "{\"kind\":\"%s\",\"a\":%d,\"b\":%d}"
              (event_kind_name ev.ev_kind) ev.ev_a ev.ev_b))
      s.events;
    Buffer.add_string b "]}";
    Buffer.contents b

  (* Strict parser for [to_json]'s own output -- used by the campaign
     checkpoint to restore a snapshot across a process restart.  It
     accepts exactly the fixed key order the writer emits (which is the
     only producer), so [of_json (to_json s) = Some s] and anything else
     is [None] rather than a guess. *)
  let of_json (src : string) : t option =
    let pos = ref 0 in
    let len = String.length src in
    let exception Bad in
    let peek () = if !pos < len then src.[!pos] else raise Bad in
    let advance () = incr pos in
    let expect c = if peek () <> c then raise Bad else advance () in
    let lit s = String.iter expect s in
    let int () =
      let start = !pos in
      if peek () = '-' then advance ();
      while !pos < len && (match src.[!pos] with '0' .. '9' -> true | _ -> false)
      do advance () done;
      if !pos = start then raise Bad;
      match int_of_string_opt (String.sub src start (!pos - start)) with
      | Some n -> n
      | None -> raise Bad
    in
    let str () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'u' ->
             advance ();
             if !pos + 4 > len then raise Bad;
             let hex = String.sub src !pos 4 in
             pos := !pos + 4;
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x100 -> Buffer.add_char b (Char.chr code)
              | _ -> raise Bad)
           | _ -> raise Bad);
          go ()
        | c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    (* comma-separated sequence ending at [stop] *)
    let seq stop item =
      let acc = ref [] in
      if peek () = stop then advance ()
      else begin
        let rec go () =
          acc := item () :: !acc;
          match peek () with
          | ',' -> advance (); go ()
          | c when c = stop -> advance ()
          | _ -> raise Bad
        in
        go ()
      end;
      List.rev !acc
    in
    let kv () =
      let k = str () in
      expect ':';
      let v = int () in
      (k, v)
    in
    try
      lit "{\"sites\":[";
      let sites =
        seq ']' (fun () ->
            lit "{\"site\":";
            let s_site = int () in
            lit ",\"executed\":";
            let s_executed = int () in
            lit ",\"elided\":";
            let s_elided = int () in
            lit ",\"covered\":";
            let s_covered = int () in
            expect '}';
            { s_site; s_executed; s_elided; s_covered })
      in
      lit ",\"counters\":{";
      let counters = seq '}' kv in
      lit ",\"gauges\":{";
      let gauges = seq '}' kv in
      lit ",\"dropped\":";
      let dropped = int () in
      lit ",\"events\":[";
      let events =
        seq ']' (fun () ->
            lit "{\"kind\":";
            let kind =
              match str () with
              | "alloc" -> Alloc
              | "free" -> Free
              | "check-fail" -> Check_fail
              | "strip" -> Strip
              | _ -> raise Bad
            in
            lit ",\"a\":";
            let a = int () in
            lit ",\"b\":";
            let b = int () in
            expect '}';
            { ev_kind = kind; ev_a = a; ev_b = b })
      in
      lit "}";
      if !pos <> len then raise Bad;
      Some { sites; counters; gauges; events; dropped }
    with Bad -> None

  (* --- the human --profile report ----------------------------------------- *)

  (* Top-N hottest check sites.  [label] maps a site id to its origin
     ("func.bN[i] intrinsic", from [Tir.Ir.site_origins]); sites the
     caller cannot label print as "site N". *)
  let report ?(top = 10) ~label fmt (s : t) =
    let rows =
      List.stable_sort
        (fun a b -> compare b.s_executed a.s_executed)
        s.sites
    in
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: tl -> x :: take (n - 1) tl
    in
    let rows = take top rows in
    Format.fprintf fmt "  %8s %8s %8s  %s@." "executed" "elided" "covered"
      "site";
    List.iter
      (fun r ->
         let name =
           match label r.s_site with
           | Some l -> l
           | None -> Printf.sprintf "site %d" r.s_site
         in
         Format.fprintf fmt "  %8d %8d %8d  %s@." r.s_executed r.s_elided
           r.s_covered name)
      rows;
    if rows = [] then Format.fprintf fmt "  (no check sites executed)@."

  (* Compact difference summary, for attaching to fuzz repros: the
     counters/gauges/site totals where the two snapshots disagree. *)
  let delta_summary ?(limit = 6) a b : string =
    let diffs = ref [] in
    let note k va vb =
      if va <> vb then diffs := Printf.sprintf "%s %d->%d" k va vb :: !diffs
    in
    let keys xs ys =
      List.sort_uniq String.compare (List.map fst xs @ List.map fst ys)
    in
    let get xs k = match List.assoc_opt k xs with Some v -> v | None -> 0 in
    List.iter (fun k -> note k (get a.counters k) (get b.counters k))
      (keys a.counters b.counters);
    List.iter
      (fun k ->
         note ("gauge:" ^ k) (get a.gauges k) (get b.gauges k))
      (keys a.gauges b.gauges);
    let tot f s = List.fold_left (fun acc r -> acc + f r) 0 s.sites in
    note "sites:executed" (tot (fun r -> r.s_executed) a)
      (tot (fun r -> r.s_executed) b);
    note "sites:elided" (tot (fun r -> r.s_elided) a)
      (tot (fun r -> r.s_elided) b);
    note "sites:covered" (tot (fun r -> r.s_covered) a)
      (tot (fun r -> r.s_covered) b);
    let ds = List.rev !diffs in
    let n = List.length ds in
    let rec take k = function
      | [] -> []
      | _ when k <= 0 -> []
      | x :: tl -> x :: take (k - 1) tl
    in
    if ds = [] then "telemetry: no counter drift"
    else
      Printf.sprintf "telemetry drift: %s%s"
        (String.concat ", " (take limit ds))
        (if n > limit then Printf.sprintf " (+%d more)" (n - limit) else "")
end

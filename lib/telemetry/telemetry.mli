(** Always-on, near-zero-overhead runtime telemetry.

    One {!t} lives on every [Vm.State.t].  Per-check-site counters are
    keyed by the stable site ids minted at instrumentation time
    ([Tir.Ir.fresh_site]); named counters merge by addition, gauges
    (high-water marks) by max; a bounded event ring records the most
    recent alloc / free / check-fail / strip events with a drop counter
    once full.  Snapshots serialize to deterministic JSON (sorted keys,
    integers only) so equal telemetry is byte-identical JSON. *)

type event_kind = Alloc | Free | Check_fail | Strip

type event = { ev_kind : event_kind; ev_a : int; ev_b : int }
(** Kind-specific payloads: [Alloc (addr, size)], [Free (addr, 0)],
    [Check_fail (site, addr)], [Strip (addr, tag)]. *)

val event_kind_name : event_kind -> string

val ring_capacity : int
(** Compile-time capacity of the event ring. *)

type t

type live = t
(** Alias usable inside {!Snapshot}, where [t] is shadowed. *)

val create : unit -> t

(** {1 Per-site counters}

    The conservation law enforced by the test suite, per site:
    [executed(O0) = executed(O2) + elided(O2) + covered(O2)]. *)

val bump_executed : t -> int -> unit
val bump_elided : t -> int -> unit
val bump_covered : t -> int -> unit
val executed : t -> int -> int
val elided : t -> int -> int
val covered : t -> int -> int

(** {1 Named counters and gauges} *)

val add_counter : t -> string -> int -> unit
val incr_counter : t -> string -> unit
val counter : t -> string -> int
val set_gauge : t -> string -> int -> unit

val raise_gauge : t -> string -> int -> unit
(** Set the gauge to [max current v] — for high-water marks. *)

val gauge : t -> string -> int

(** {1 Event ring} *)

val record : t -> event_kind -> int -> int -> unit
val events : t -> event list
(** Oldest first. *)

module Snapshot : sig
  type site_row = {
    s_site : int;
    s_executed : int;
    s_elided : int;
    s_covered : int;
  }

  type t = {
    sites : site_row list;  (** sorted by site id; all-zero rows omitted *)
    counters : (string * int) list;  (** sorted by key *)
    gauges : (string * int) list;  (** sorted by key *)
    events : event list;  (** oldest first *)
    dropped : int;
  }

  val empty : t

  val capture : live -> t

  val merge : t -> t -> t
  (** [merge a b] with [a] happened-before [b]: sites/counters add,
      gauges max, event streams concatenate with overflow past
      {!ring_capacity} counted as dropped. *)

  val merge_all : t list -> t

  val sites_full : sites:int list -> t -> site_row list
  (** The snapshot's site rows re-inflated against the full
      instrumented-site universe [sites] (from [Tir.Ir.site_origins]):
      one row per listed site, all-zero where the snapshot omitted it,
      plus any nonzero rows outside the list; sorted by site id.  The
      pinned JSON is unchanged — this is the coverage-side view that
      keeps "instrumented but unreached" distinguishable from "not
      instrumented". *)

  val to_json : t -> string
  (** Deterministic single-line JSON: equal snapshots produce
      byte-identical strings. *)

  val of_json : string -> t option
  (** Strict inverse of {!to_json} (accepts exactly the writer's fixed
      key order): [of_json (to_json s) = Some s].  Used by campaign
      checkpoints to restore a snapshot across a restart. *)

  val report :
    ?top:int -> label:(int -> string option) -> Format.formatter -> t -> unit
  (** Human report of the [top] (default 10) hottest check sites;
      [label] maps site ids to origin strings from
      [Tir.Ir.site_origins]. *)

  val delta_summary : ?limit:int -> t -> t -> string
  (** Compact "what moved between these two snapshots" line for fuzz
      repro reports. *)
end

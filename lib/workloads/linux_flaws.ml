(* Linux Flaw Project models (Table III).

   Ten MiniC programs reproducing the *mechanism* of each CVE the paper
   evaluated: same bug class, same code shape (a parser or decoder
   mishandling crafted input from the dummy server), scaled down.  Each
   model is triggered by its input, so the harness can also run the
   benign input and check the program is otherwise healthy. *)

type t = {
  cve : string;
  kind : string;             (* the paper's Table III "Type" column *)
  source : string;
  bad_lines : string list;   (* crafted stdin *)
  bad_packets : string list;
  good_lines : string list;  (* benign stdin *)
  good_packets : string list;
}

let flaw ?(bad_lines = []) ?(bad_packets = []) ?(good_lines = [])
    ?(good_packets = []) cve kind source =
  { cve; kind; source; bad_lines; bad_packets; good_lines; good_packets }

let all : t list =
  [
    (* mdnsd / libdns-style record parser copying a name field of
       attacker-controlled length into a fixed stack buffer *)
    flaw "CVE-2006-2362" "stack-buffer-overflow"
      ~bad_lines:
        [ "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA" ]
      ~good_lines:[ "short-name" ]
      {|
int main() {
  char record[128];
  char name[24];
  if (fgets(record, 128, 0) == NULL) return 1;
  /* BUG: no length validation before the copy */
  strcpy(name, record);
  return (int)strlen(name) & 0x7f;
}
|};
    (* samba send_mailslot-style: sprintf of two names into a fixed
       heap buffer *)
    flaw "CVE-2007-6015" "heap-buffer-overflow"
      ~bad_packets:
        [ "BROWSER-ELECTION-FRAME-WITH-A-VERY-LONG-MAILSLOT-NAME-FIELD" ]
      ~good_packets:[ "BROWSE" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char packet[96];
  long n = recv(fd, packet, 95, 0);
  if (n <= 0) return 1;
  packet[n] = 0;
  char *dgram = (char*)malloc(32);
  strcpy(dgram, "\\MAILSLOT\\");
  /* BUG: concatenation unbounded by the 32-byte dgram buffer */
  strcat(dgram, packet);
  int r = (int)strlen(dgram) & 0x7f;
  free(dgram);
  return r;
}
|};
    (* wxWidgets/libtiff-like image decoder: height*width product trusted
       from the header while the row loop trusts height alone *)
    flaw "CVE-2009-2285" "heap-buffer-overflow"
      ~bad_packets:[ "\x10\x04" ] ~good_packets:[ "\x04\x04" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char hdr[4];
  if (recv(fd, hdr, 2, 0) != 2) return 1;
  int rows = hdr[0];
  int cols = hdr[1];
  /* the buffer is sized from a FIXED default... */
  char *image = (char*)malloc(4 * 4);
  /* ...but decoded with the header's dimensions */
  for (int y = 0; y < rows; y++) {
    for (int x = 0; x < cols; x++) {
      image[y * cols + x] = (char)(y + x);
    }
  }
  int r = image[0];
  free(image);
  return r;
}
|};
    (* gif2tiff-style LZW decoder writing past the end of the code table *)
    flaw "CVE-2013-4243" "heap-buffer-overflow"
      ~bad_packets:[ "\x08\x08\x08\x08\x08\x08\x08\x08" ]
      ~good_packets:[ "\x01\x02" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char codes[16];
  long n = recv(fd, codes, 16, 0);
  char *table = (char*)malloc(32);
  int next = 0;
  for (long i = 0; i < n; i++) {
    int code = codes[i] & 0x7f;
    /* BUG: 'next' grows with input codes, never bounded by 32 */
    for (int k = 0; k <= code % 9; k++) {
      table[next] = (char)code;
      next++;
    }
  }
  int r = table[0];
  free(table);
  return r & 0x7f;
}
|};
    (* python socket.recvfrom_into: recv size larger than the buffer *)
    flaw "CVE-2014-1912" "heap-buffer-overflow"
      ~bad_packets:[ "\x40"; String.make 64 'P' ]
      ~good_packets:[ "\x08"; "pkt" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char hdr[2];
  if (recv(fd, hdr, 1, 0) != 1) return 1;
  int nbytes = hdr[0];
  char *buf = (char*)malloc(16);
  /* BUG: recvfrom_into trusts the caller-supplied size, not the
     buffer's: nbytes can exceed the 16-byte buffer */
  long n = recv(fd, buf, nbytes, 0);
  int r = (int)n + buf[0];
  free(buf);
  return r & 0x7f;
}
|};
    (* bmp2tiff-style: negative/huge sample count wraps the copy length *)
    flaw "CVE-2015-8668" "heap-buffer-overflow"
      ~bad_packets:[ "\x30" ] ~good_packets:[ "\x08" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char hdr[2];
  if (recv(fd, hdr, 1, 0) != 1) return 1;
  int samples = hdr[0];
  char *raster = (char*)malloc(16);
  char scanline[64];
  memset(scanline, 7, 64);
  /* BUG: header-controlled length used for the copy into raster[16] */
  memcpy(raster, scanline, samples);
  int r = raster[0];
  free(raster);
  return r;
}
|};
    (* lame-style: ID3 genre string copied through an unchecked index *)
    flaw "CVE-2015-9101" "heap-buffer-overflow"
      ~bad_lines:[ "GENRE-NAME-MUCH-LONGER-THAN-THE-TAG-FIELD-ALLOWS-HERE" ]
      ~good_lines:[ "Jazz" ]
      {|
struct Id3Tag {
  char genre[16];
  int year;
  char comment[64];
};

int main() {
  char line[96];
  if (fgets(line, 96, 0) == NULL) return 1;
  struct Id3Tag *tag = (struct Id3Tag*)malloc(sizeof(struct Id3Tag));
  tag->year = 1999;
  int i = 0;
  /* BUG: bounded by the input, not by the 16-byte genre field:
     a sub-object overflow inside the tag allocation */
  while (line[i] != 0) {
    tag->genre[i] = line[i];
    i++;
  }
  int r = tag->year & 0x7f;
  free(tag);
  return r;
}
|};
    (* libtiff PixarLog-style: stack scanline buffer overflow from a
       header-controlled stride *)
    flaw "CVE-2016-10095" "stack-buffer-overflow"
      ~bad_packets:[ "\x28" ] ~good_packets:[ "\x08" ]
      {|
int main() {
  int fd = socket(2, 1, 0);
  char hdr[2];
  if (recv(fd, hdr, 1, 0) != 1) return 1;
  int stride = hdr[0];
  char scan[16];
  /* BUG: stride from the file header indexes a fixed stack buffer */
  for (int i = 0; i < stride; i++) {
    scan[i] = (char)i;
  }
  return scan[0];
}
|};
    (* libzip-style: the archive entry is freed on error but the name
       pointer is used afterwards *)
    flaw "CVE-2017-12858" "heap-use-after-free"
      ~bad_lines:[ "corrupt" ] ~good_lines:[ "archive.zip" ]
      {|
struct ZipEntry {
  char name[32];
  int compressed;
};

int main() {
  char line[64];
  if (fgets(line, 64, 0) == NULL) return 1;
  struct ZipEntry *entry = (struct ZipEntry*)malloc(sizeof(struct ZipEntry));
  strcpy(entry->name, line);
  entry->compressed = 1;
  int error = strcmp(line, "corrupt") == 0;
  if (error) {
    /* cleanup path frees the entry... */
    free(entry);
  }
  /* ...but the caller still reads it on the error path */
  int r = entry->name[0];
  if (!error) free(entry);
  return r & 0x7f;
}
|};
    (* cxxfilt-style: unbounded recursion on nested mangled names *)
    flaw "CVE-2018-9138" "stack-overflow"
      ~bad_lines:[ String.make 4000 'F' ] ~good_lines:[ "FFF" ]
      {|
char input[4100];

static int demangle(int depth) {
  char component[4096];   /* per-level demangling scratch */
  component[0] = input[depth];
  if (input[depth] == 'F') {
    /* BUG: recursion depth tracks the input with no limit */
    return demangle(depth + 1) + (component[0] == 'F');
  }
  return 0;
}

int main() {
  if (fgets(input, 4100, 0) == NULL) return 1;
  return demangle(0) & 0x7f;
}
|};
  ]

(* Runs one model under a sanitizer; returns (bad detected, good clean).
   Stack exhaustion traps count as detected: the runtime's guard page
   catches them and produces a diagnosable crash, as in the paper. *)
let evaluate ?backend (san : Sanitizer.Spec.t) (m : t) : bool * bool =
  let bad =
    Sanitizer.Driver.run san ~lines:m.bad_lines ~packets:m.bad_packets
      ~budget:100_000_000 ?backend m.source
  in
  let good =
    Sanitizer.Driver.run san ~lines:m.good_lines ~packets:m.good_packets
      ~budget:100_000_000 ?backend m.source
  in
  let detected =
    match bad.Sanitizer.Driver.outcome with
    | Vm.Machine.Bug _ | Vm.Machine.Completed_with_bugs _ -> true
    | Vm.Machine.Fault { t_kind = Vm.Report.Stack_exhausted; _ } -> true
    | Vm.Machine.Exit _ | Vm.Machine.Fault _ -> false
  in
  let clean =
    match good.Sanitizer.Driver.outcome with
    | Vm.Machine.Exit _ -> true
    | Vm.Machine.Bug _ | Vm.Machine.Completed_with_bugs _
    | Vm.Machine.Fault _ -> false
  in
  (detected, clean)

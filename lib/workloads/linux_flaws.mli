(** Linux Flaw Project models (Table III): ten MiniC programs
    reproducing each CVE's mechanism, triggered by crafted dummy-server
    input. *)

type t = {
  cve : string;
  kind : string;            (** the Table III "Type" column *)
  source : string;
  bad_lines : string list;
  bad_packets : string list;
  good_lines : string list;
  good_packets : string list;
}

val all : t list

val evaluate :
  ?backend:Vm.Machine.backend -> Sanitizer.Spec.t -> t -> bool * bool
(** [(bad input detected, benign input clean)].  A stack-exhaustion trap
    counts as detected (the runtime's guard page diagnoses it);
    [backend] threads into both runs. *)

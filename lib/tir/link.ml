(* Link-time module merging.

   CECSan instruments during LTO precisely because that is the moment
   when truly-external functions become distinguishable from
   merely-in-another-translation-unit functions (paper section II.E).
   [merge] combines a secondary module into a primary one:

   - functions defined in the secondary resolve the primary's extern
     stubs; when [mark_external] is set the resolved bodies keep their
     uninstrumented status -- this is how a "precompiled legacy library"
     with real code enters the pipeline;
   - the secondary's internal globals (string literals) are renamed to
     avoid collisions, with all references rewritten;
   - struct layouts must agree across units. *)

open Ir

exception Link_error of string

let err fmt = Fmt.kstr (fun m -> raise (Link_error m)) fmt

let rename_globals (suffix : string) (md : modul) : unit =
  let renames : (string, string) Hashtbl.t = Hashtbl.create 8 in
  md.m_globals <-
    List.map
      (fun g ->
         if g.g_internal then begin
           let fresh = g.g_name ^ suffix in
           Hashtbl.replace renames g.g_name fresh;
           { g with g_name = fresh }
         end
         else g)
      md.m_globals;
  let fix = function
    | Glob name as o ->
      (match Hashtbl.find_opt renames name with
       | Some fresh -> Glob fresh
       | None -> o)
    | o -> o
  in
  iter_funcs md (fun f ->
      Array.iter
        (fun b ->
           b.b_instrs <-
             List.map
               (fun i ->
                  match i with
                  | Imov c -> Imov { c with src = fix c.src }
                  | Ibin c -> Ibin { c with a = fix c.a; b = fix c.b }
                  | Icmp c -> Icmp { c with a = fix c.a; b = fix c.b }
                  | Isext c -> Isext { c with src = fix c.src }
                  | Iload c -> Iload { c with addr = fix c.addr }
                  | Istore c ->
                    Istore { c with addr = fix c.addr; src = fix c.src }
                  | Islot _ as i -> i
                  | Igep c ->
                    Igep { c with base = fix c.base;
                                  idx = Option.map fix c.idx }
                  | Icall c -> Icall { c with args = List.map fix c.args }
                  | Iintrin c ->
                    Iintrin { c with args = List.map fix c.args })
               b.b_instrs)
        f.f_blocks)

let check_struct_compat (a : Minic.Layout.env) (b : Minic.Layout.env) : unit =
  Hashtbl.iter
    (fun name (lb : Minic.Layout.struct_layout) ->
       match Hashtbl.find_opt a name with
       | None -> ()
       | Some la ->
         if la.Minic.Layout.s_size <> lb.Minic.Layout.s_size
         || List.length la.Minic.Layout.s_fields
            <> List.length lb.Minic.Layout.s_fields
         then err "struct %s has incompatible layouts across units" name)
    b

(* Merges [secondary] into [primary] (mutating the primary).  With
   [mark_external], every function body from the secondary is flagged as
   uninstrumented legacy code. *)
let merge ?(mark_external = false) ~(primary : modul) (secondary : modul) :
  unit =
  clear_vcache primary;
  check_struct_compat primary.m_layouts secondary.m_layouts;
  Hashtbl.iter
    (fun name l ->
       if not (Hashtbl.mem primary.m_layouts name) then
         Hashtbl.replace primary.m_layouts name l)
    secondary.m_layouts;
  let suffix = Printf.sprintf ".u%d" (Hashtbl.hash secondary land 0xffff) in
  rename_globals suffix secondary;
  (* globals: internal ones were renamed; named globals must be unique *)
  List.iter
    (fun g ->
       if not g.g_internal && find_global primary g.g_name <> None then
         err "duplicate global %s across units" g.g_name)
    secondary.m_globals;
  primary.m_globals <- primary.m_globals @ secondary.m_globals;
  (* functions: secondary definitions resolve primary extern stubs *)
  iter_funcs secondary (fun f ->
      let has_body = Array.length f.f_blocks > 0 in
      let f =
        if mark_external && has_body then
          { f with f_external = true }
        else f
      in
      match find_func primary f.f_name with
      | None -> Hashtbl.replace primary.m_funcs f.f_name f
      | Some existing ->
        let existing_has_body = Array.length existing.f_blocks > 0 in
        (match existing_has_body, has_body with
         | true, true -> err "duplicate definition of %s" f.f_name
         | true, false -> ()  (* secondary only declared it *)
         | false, true -> Hashtbl.replace primary.m_funcs f.f_name f
         | false, false -> ()));
  primary.m_next_site <-
    max primary.m_next_site secondary.m_next_site

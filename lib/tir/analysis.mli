(** Static analyses shared by the optimizer and the sanitizers: stack
    slot safety (the paper's safe/unsafe stack object distinction),
    global safety, and register-use maps. *)

module Int_set : Set.S with type elt = int

val compute_slot_safety : Ir.func -> unit
(** Marks [s_unsafe] on every slot whose address escapes or is variably
    indexed. *)

val compute_global_safety : Ir.modul -> unit
(** Marks [g_unsafe] on arrays/structs and on globals whose address is
    used beyond direct scalar access. *)

val blocks_using : Ir.func -> (int, Int_set.t) Hashtbl.t
(** For each register, the set of block ids where it appears as a use
    (needed by sub-object narrowing to prove block-locality). *)

val metadata_neutral_builtins : string list
(** Builtins that neither allocate/free nor write through pointer
    arguments: calls to them cannot disturb sanitizer metadata. *)

val pure_callees :
  Ir.modul -> is_hazard:(string -> bool) -> string -> bool
(** Memoized interprocedural metadata purity: [pure name] is true when
    calling [name] cannot touch sanitizer metadata (no hazard intrinsic
    reachable, only metadata-neutral builtins called).  External stubs,
    the allocator family and recursive cycles are conservatively
    impure.  Shared by Checkopt and Verify so both reason from the same
    closure. *)

val run : Ir.modul -> unit
(** Slot safety for every defined function plus global safety. *)

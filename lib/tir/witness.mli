(** Machine-checkable elision certificates.

    Checkopt's absint phase attaches one witness per elided or
    downgraded check; [Verify] replays each against an independent
    abstract-interpretation run and rejects the build in Strict mode if
    any fact cannot be re-derived. *)

type kind =
  | Welide      (** check removed outright *)
  | Wdowngrade  (** check renamed to its spatial-only variant *)

type t = {
  w_site : int;
  w_func : string;
  w_kind : kind;
  w_reg : int;
  w_dst : int option;
  w_size : int;
  w_obj : string;
  w_lo : int;
  w_hi : int;
  w_objsize : int;
  w_temporal : bool;
  w_escapes : bool;
}

val kind_to_string : kind -> string
val pp : Format.formatter -> t -> unit

(* Lowering from the checked MiniC AST to Tir.

   Conventions:
   - every local variable gets a stack [slot]; scalar slots whose address
     never escapes are later promoted to registers by [Promote] (the -O2
     model);
   - the [safe] flag on loads/stores marks accesses that are statically
     provably in bounds of their *named* object (constant index into a
     directly named array, direct scalar access).  Sanitizers with a
     type-info optimization may elide checks on safe accesses (paper
     section II.F.2);
   - string literals are interned as internal globals;
   - struct assignment lowers to memcpy. *)

open Ir
module Ast = Minic.Ast
module Layout = Minic.Layout

exception Error of string

let err fmt = Fmt.kstr (fun m -> raise (Error m)) fmt

type local = { l_slot : int; l_ty : Ast.ty }

type env = {
  md : modul;
  checked : Minic.Sema.checked;
  f : func;
  mutable blocks : block list;          (* reverse order of creation *)
  mutable nblocks : int;
  mutable cur : block;
  mutable cur_rev : instr list;         (* current block, reversed *)
  mutable sealed : bool;                (* current block already terminated *)
  mutable scopes : (string * local) list list;
  mutable breaks : int list;
  mutable continues : int list;
  mutable strings : (string * string) list ref;  (* key -> global name *)
}

let layouts env = env.checked.Minic.Sema.layouts
let size_of env t = Layout.size_of (layouts env) t
let decay = Minic.Sema.decay

(* --- block management --------------------------------------------------- *)

let flush_cur env =
  env.cur.b_instrs <- List.rev env.cur_rev

let new_block env =
  let b = { b_id = env.nblocks; b_instrs = []; b_term = Tret None } in
  env.nblocks <- env.nblocks + 1;
  env.blocks <- b :: env.blocks;
  b

let switch_to env b =
  flush_cur env;
  env.cur <- b;
  env.cur_rev <- List.rev b.b_instrs;
  env.sealed <- false

let emit env i = if not env.sealed then env.cur_rev <- i :: env.cur_rev

let terminate env t =
  if not env.sealed then begin
    env.cur.b_term <- t;
    env.sealed <- true
  end

let reg env = fresh_reg env.f

(* --- scopes -------------------------------------------------------------- *)

let push_scope env = env.scopes <- [] :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let add_local env name l =
  match env.scopes with
  | top :: rest -> env.scopes <- ((name, l) :: top) :: rest
  | [] -> assert false

let lookup_local env name =
  let rec go = function
    | [] -> None
    | sc :: rest ->
      (match List.assoc_opt name sc with Some l -> Some l | None -> go rest)
  in
  go env.scopes

(* --- string literal interning ------------------------------------------- *)

let intern_bytes env ~wide image =
  let key = (if wide then "W" else "N") ^ image in
  match List.assoc_opt key !(env.strings) with
  | Some name -> name
  | None ->
    let name = Printf.sprintf ".str.%d" (List.length !(env.strings)) in
    let size = String.length image in
    let elem = if wide then Ast.Twchar else Ast.Tchar in
    let n = size / (if wide then 4 else 1) in
    env.md.m_globals <-
      { g_name = name; g_size = size; g_align = (if wide then 4 else 1);
        g_image = Bytes.of_string image; g_ty = Ast.Tarr (elem, n);
        g_internal = true; g_unsafe = true }
      :: env.md.m_globals;
    env.strings := (key, name) :: !(env.strings);
    name

let intern_string env s =
  intern_bytes env ~wide:false (s ^ "\000")

let intern_wstring env (a : int array) =
  let b = Buffer.create ((Array.length a + 1) * 4) in
  Array.iter
    (fun cp ->
       for k = 0 to 3 do
         Buffer.add_char b (Char.chr ((cp lsr (8 * k)) land 0xff))
       done)
    a;
  Buffer.add_string b "\000\000\000\000";
  intern_bytes env ~wide:true (Buffer.contents b)

(* --- static safety ------------------------------------------------------ *)

(* Is this lvalue's address statically within a directly named complete
   object?  Used to set the [safe] flag (paper: "statically proven
   in-bound with respect to its base object"). *)
let rec rooted_static env (e : Ast.expr) =
  match e.Ast.e with
  | Ident name ->
    (match lookup_local env name with
     | Some _ -> true
     | None -> Hashtbl.mem env.checked.Minic.Sema.globals name)
  | Field (a, _) -> rooted_static env a
  | Index (a, i) ->
    (match a.Ast.ety, i.Ast.e with
     | Tarr (_, n), Int (k, _) -> k >= 0 && k < n && rooted_static env a
     | _ -> false)
  | _ -> false

let scalar_size _env t =
  match decay t with
  | Ast.Tchar -> 1, true
  | Tshort -> 2, true
  | Tint | Twchar -> 4, true
  | Tlong -> 8, false
  | Tptr _ -> 8, false
  | t -> err "not a scalar type: %s" (Ast.ty_to_string t)

(* --- expressions --------------------------------------------------------- *)

let rec rval env (e : Ast.expr) : opnd =
  match e.Ast.e with
  | Int (v, _) -> Imm v
  | Str s -> Glob (intern_string env s)
  | Wstr a -> Glob (intern_wstring env a)
  | Ident name ->
    (match e.Ast.ety with
     | Tarr _ | Tstruct _ -> fst (lval env e)   (* decay to address *)
     | Tfun _ -> err "function pointers are not supported (%s)" name
     | _ ->
       let addr, safe = lval env e in
       let size, signed = scalar_size env e.Ast.ety in
       let dst = reg env in
       emit env (Iload { dst; addr; size; signed; safe });
       Reg dst)
  | Bin (op, a, b) -> lower_bin env op a b
  | Un (op, a) ->
    let v = rval env a in
    let dst = reg env in
    (match op with
     | Neg -> emit env (Ibin { op = Sub; dst; a = Imm 0; b = v })
     | Bnot -> emit env (Ibin { op = Xor; dst; a = v; b = Imm (-1) })
     | Lnot -> emit env (Icmp { op = Eq; dst; a = v; b = Imm 0 }));
    Reg dst
  | Addr a -> fst (lval env a)
  | Deref _ | Index _ | Field (_, _) | Arrow (_, _) ->
    (match e.Ast.ety with
     | Tarr _ | Tstruct _ -> fst (lval env e)
     | _ ->
       let addr, safe = lval env e in
       let size, signed = scalar_size env e.Ast.ety in
       let dst = reg env in
       emit env (Iload { dst; addr; size; signed; safe });
       Reg dst)
  | Assign (lhs, rhs) ->
    (match lhs.Ast.ety with
     | Tstruct _ ->
       let src = rval env rhs in
       let dst, _ = lval env lhs in
       let size = size_of env lhs.Ast.ety in
       emit env (Icall { dst = None; callee = "memcpy";
                         args = [ dst; src; Imm size ] });
       dst
     | _ ->
       let v = rval env rhs in
       let addr, safe = lval env lhs in
       let size, _ = scalar_size env lhs.Ast.ety in
       emit env (Istore { addr; src = v; size; safe });
       v)
  | Op_assign (op, lhs, rhs) ->
    let v = rval env rhs in
    let addr, safe = lval env lhs in
    let size, signed = scalar_size env lhs.Ast.ety in
    let old = reg env in
    emit env (Iload { dst = old; addr; size; signed; safe });
    let res =
      match decay lhs.Ast.ety, op with
      | Tptr t, (Add | Sub) ->
        let elem_size = size_of env t in
        let idx =
          if op = Ast.Add then v
          else begin
            let neg = reg env in
            emit env (Ibin { op = Sub; dst = neg; a = Imm 0; b = v });
            Reg neg
          end
        in
        let dst = reg env in
        emit env (Igep { dst; base = Reg old; idx = Some idx;
                         info = Gindex { elem_size; count = None } });
        Reg dst
      | _ ->
        let dst = reg env in
        emit env (Ibin { op = lower_arith op; dst; a = Reg old; b = v });
        Reg dst
    in
    emit env (Istore { addr; src = res; size; safe });
    res
  | Inc_dec { pre; inc; arg } ->
    let addr, safe = lval env arg in
    let size, signed = scalar_size env arg.Ast.ety in
    let old = reg env in
    emit env (Iload { dst = old; addr; size; signed; safe });
    let nv = reg env in
    (match decay arg.Ast.ety with
     | Tptr t ->
       let elem_size = size_of env t in
       emit env (Igep { dst = nv; base = Reg old;
                        idx = Some (Imm (if inc then 1 else -1));
                        info = Gindex { elem_size; count = None } })
     | _ ->
       emit env (Ibin { op = (if inc then Add else Sub); dst = nv;
                        a = Reg old; b = Imm 1 }));
    emit env (Istore { addr; src = Reg nv; size; safe });
    if pre then Reg nv else Reg old
  | Call (name, args) ->
    let argv = List.map (rval env) args in
    let void_ret =
      match Hashtbl.find_opt env.checked.Minic.Sema.funcs name with
      | Some (Tfun (Tvoid, _, _)) -> true
      | Some _ -> false
      | None ->
        (match Minic.Builtins.find name with
         | Some { ret = Tvoid; _ } -> true
         | _ -> false)
    in
    if void_ret then begin
      emit env (Icall { dst = None; callee = name; args = argv });
      Imm 0
    end else begin
      let dst = reg env in
      emit env (Icall { dst = Some dst; callee = name; args = argv });
      Reg dst
    end
  | Cast (t, a) ->
    let v = rval env a in
    (match t with
     | Tchar | Tshort | Tint | Twchar ->
       let bytes = size_of env t in
       let dst = reg env in
       emit env (Isext { dst; src = v; bytes });
       Reg dst
     | _ -> v)
  | Sizeof_ty t -> Imm (size_of env t)
  | Sizeof_expr a -> Imm (size_of env a.Ast.ety)
  | Cond (c, a, b) ->
    let cv = rval env c in
    let bt = new_block env and bf = new_block env and bj = new_block env in
    let dst = reg env in
    terminate env (Tcbr (cv, bt.b_id, bf.b_id));
    switch_to env bt;
    let va = rval env a in
    emit env (Imov { dst; src = va });
    terminate env (Tbr bj.b_id);
    switch_to env bf;
    let vb = rval env b in
    emit env (Imov { dst; src = vb });
    terminate env (Tbr bj.b_id);
    switch_to env bj;
    Reg dst
  | Comma (a, b) ->
    ignore (rval env a);
    rval env b

and lower_arith : Ast.binop -> binop = function
  | Add -> Add | Sub -> Sub | Mul -> Mul | Div -> Div | Mod -> Mod
  | Shl -> Shl | Shr -> Shr | Band -> And | Bor -> Or | Bxor -> Xor
  | Eq | Ne | Lt | Le | Gt | Ge | Land | Lor -> assert false

and lower_bin env op a b =
  let ta = decay a.Ast.ety and tb = decay b.Ast.ety in
  match op with
  | Land | Lor ->
    (* short-circuit evaluation *)
    let dst = reg env in
    let b2 = new_block env and bj = new_block env in
    let va = rval env a in
    let nva = reg env in
    emit env (Icmp { op = Ne; dst = nva; a = va; b = Imm 0 });
    emit env (Imov { dst; src = Reg nva });
    (match op with
     | Land -> terminate env (Tcbr (Reg nva, b2.b_id, bj.b_id))
     | _ -> terminate env (Tcbr (Reg nva, bj.b_id, b2.b_id)));
    switch_to env b2;
    let vb = rval env b in
    let nvb = reg env in
    emit env (Icmp { op = Ne; dst = nvb; a = vb; b = Imm 0 });
    emit env (Imov { dst; src = Reg nvb });
    terminate env (Tbr bj.b_id);
    switch_to env bj;
    Reg dst
  | Eq | Ne | Lt | Le | Gt | Ge ->
    let va = rval env a in
    let vb = rval env b in
    let dst = reg env in
    let cop = match op with
      | Eq -> Eq | Ne -> Ne | Lt -> Lt | Le -> Le | Gt -> Gt | Ge -> Ge
      | _ -> assert false
    in
    emit env (Icmp { op = cop; dst; a = va; b = vb });
    Reg dst
  | Add when Ast.is_pointer ta || Ast.is_pointer tb ->
    let (pe, ie) = if Ast.is_pointer ta then (a, b) else (b, a) in
    let elem = match decay pe.Ast.ety with
      | Tptr t -> t
      | _ -> assert false
    in
    let base = rval env pe in
    let idx = rval env ie in
    let dst = reg env in
    emit env (Igep { dst; base; idx = Some idx;
                     info = Gindex { elem_size = size_of env elem;
                                     count = None } });
    Reg dst
  | Sub when Ast.is_pointer ta && Ast.is_pointer tb ->
    let va = rval env a in
    let vb = rval env b in
    let elem = match ta with Tptr t -> t | _ -> assert false in
    let d = reg env in
    emit env (Ibin { op = Sub; dst = d; a = va; b = vb });
    let es = size_of env elem in
    if es = 1 then Reg d
    else begin
      let q = reg env in
      emit env (Ibin { op = Div; dst = q; a = Reg d; b = Imm es });
      Reg q
    end
  | Sub when Ast.is_pointer ta ->
    let base = rval env a in
    let v = rval env b in
    let neg = reg env in
    emit env (Ibin { op = Sub; dst = neg; a = Imm 0; b = v });
    let elem = match ta with Tptr t -> t | _ -> assert false in
    let dst = reg env in
    emit env (Igep { dst; base; idx = Some (Reg neg);
                     info = Gindex { elem_size = size_of env elem;
                                     count = None } });
    Reg dst
  | _ ->
    let va = rval env a in
    let vb = rval env b in
    let dst = reg env in
    emit env (Ibin { op = lower_arith op; dst; a = va; b = vb });
    Reg dst

(* Address of an lvalue; the bool is the static-safety flag. *)
and lval env (e : Ast.expr) : opnd * bool =
  match e.Ast.e with
  | Ident name ->
    (match lookup_local env name with
     | Some l ->
       let dst = reg env in
       emit env (Islot { dst; slot = l.l_slot });
       let safe =
         match l.l_ty with
         | Tarr _ | Tstruct _ -> rooted_static env e
         | _ -> true
       in
       (Reg dst, safe)
     | None ->
       if Hashtbl.mem env.checked.Minic.Sema.globals name then
         (Glob name, true)
       else err "lvalue: unknown identifier %s" name)
  | Deref a -> (rval env a, false)
  | Index (a, i) ->
    let base, count =
      match a.Ast.ety with
      | Tarr (_, n) -> fst (lval env a), Some n
      | _ -> rval env a, None
    in
    let elem =
      match decay a.Ast.ety with
      | Tptr t -> t
      | t -> err "index on non-pointer %s" (Ast.ty_to_string t)
    in
    let idx = rval env i in
    let dst = reg env in
    emit env (Igep { dst; base; idx = Some idx;
                     info = Gindex { elem_size = size_of env elem; count } });
    (Reg dst, rooted_static env e)
  | Field (a, fname) ->
    let sname =
      match a.Ast.ety with
      | Tstruct s -> s
      | t -> err "field access on %s" (Ast.ty_to_string t)
    in
    let base, _ = lval env a in
    let f = Layout.field (layouts env) sname fname in
    let dst = reg env in
    emit env (Igep { dst; base; idx = None;
                     info = Gfield { off = f.Layout.f_off;
                                     fsize = f.Layout.f_size;
                                     fname; sname } });
    (Reg dst, rooted_static env e)
  | Arrow (a, fname) ->
    let sname =
      match decay a.Ast.ety with
      | Tptr (Tstruct s) -> s
      | t -> err "-> on %s" (Ast.ty_to_string t)
    in
    let base = rval env a in
    let f = Layout.field (layouts env) sname fname in
    let dst = reg env in
    emit env (Igep { dst; base; idx = None;
                     info = Gfield { off = f.Layout.f_off;
                                     fsize = f.Layout.f_size;
                                     fname; sname } });
    (Reg dst, false)
  | Cast (_, a) -> lval env a
  | Comma (a, b) ->
    ignore (rval env a);
    lval env b
  | _ -> err "expression is not an lvalue"

(* --- initializers -------------------------------------------------------- *)

(* Emits stores initializing the object at [addr+off] of type [ty].
   Initializer stores are compiler generated and statically in bounds,
   hence [safe = true]. *)
let rec lower_init env (addr : opnd) off (ty : Ast.ty) (init : Ast.init) =
  let field_addr off =
    if off = 0 then addr
    else begin
      (* plain byte-offset address computation, not a field access: the
         sub-object pass must not narrow initializer stores *)
      let dst = reg env in
      emit env (Igep { dst; base = addr; idx = Some (Imm off);
                       info = Gindex { elem_size = 1; count = None } });
      Reg dst
    end
  in
  match ty, init with
  | Ast.Tarr (Tchar, n), Init_expr { e = Str s; _ } ->
    let g = intern_string env s in
    let len = String.length s + 1 in
    emit env (Icall { dst = None; callee = "memcpy";
                      args = [ field_addr off; Glob g; Imm (min len n) ] });
    if n > len then
      emit env (Icall { dst = None; callee = "memset";
                        args = [ field_addr (off + len); Imm 0;
                                 Imm (n - len) ] })
  | Tarr (Twchar, n), Init_expr { e = Wstr a; _ } ->
    let g = intern_wstring env a in
    let len = (Array.length a + 1) * 4 in
    emit env (Icall { dst = None; callee = "memcpy";
                      args = [ field_addr off; Glob g; Imm (min len (n * 4)) ] });
    if n * 4 > len then
      emit env (Icall { dst = None; callee = "memset";
                        args = [ field_addr (off + len); Imm 0;
                                 Imm ((n * 4) - len) ] })
  | Tarr (elt, n), Init_list items ->
    let esize = size_of env elt in
    List.iteri (fun i item -> lower_init env addr (off + (i * esize)) elt item)
      items;
    let covered = List.length items in
    if covered < n then
      emit env (Icall { dst = None; callee = "memset";
                        args = [ field_addr (off + (covered * esize)); Imm 0;
                                 Imm ((n - covered) * esize) ] })
  | Tstruct s, Init_list items ->
    let l = Layout.struct_layout (layouts env) s in
    List.iteri
      (fun i item ->
         let f = List.nth l.Layout.s_fields i in
         lower_init env addr (off + f.Layout.f_off) f.Layout.f_ty item)
      items
  | _, Init_expr e ->
    let v = rval env e in
    let size, _ = scalar_size env ty in
    emit env (Istore { addr = field_addr off; src = v; size; safe = true })
  | _, Init_list _ -> err "brace initializer for scalar"

(* --- statements ---------------------------------------------------------- *)

let align_of_ty env t = Layout.align_of (layouts env) t

let rec lower_stmt env (s : Ast.stmt) =
  match s with
  | Sexpr e -> ignore (rval env e)
  | Sdecl (ty, name, init) ->
    let slot =
      { s_id = List.length env.f.f_slots; s_name = name;
        s_size = size_of env ty; s_align = align_of_ty env ty;
        s_ty = ty; s_unsafe = false }
    in
    env.f.f_slots <- env.f.f_slots @ [ slot ];
    add_local env name { l_slot = slot.s_id; l_ty = ty };
    (match init with
     | None -> ()
     | Some init ->
       let a = reg env in
       emit env (Islot { dst = a; slot = slot.s_id });
       lower_init env (Reg a) 0 ty init)
  | Sif (c, then_, else_) ->
    let cv = rval env c in
    let bt = new_block env in
    let bf = new_block env in
    let bj = new_block env in
    terminate env (Tcbr (cv, bt.b_id, bf.b_id));
    switch_to env bt;
    lower_block env then_;
    terminate env (Tbr bj.b_id);
    switch_to env bf;
    lower_block env else_;
    terminate env (Tbr bj.b_id);
    switch_to env bj
  | Swhile (c, body) ->
    let bh = new_block env in
    let bb = new_block env in
    let bx = new_block env in
    terminate env (Tbr bh.b_id);
    switch_to env bh;
    let cv = rval env c in
    terminate env (Tcbr (cv, bb.b_id, bx.b_id));
    switch_to env bb;
    env.breaks <- bx.b_id :: env.breaks;
    env.continues <- bh.b_id :: env.continues;
    lower_block env body;
    env.breaks <- List.tl env.breaks;
    env.continues <- List.tl env.continues;
    terminate env (Tbr bh.b_id);
    switch_to env bx
  | Sdo (body, c) ->
    let bb = new_block env in
    let bc = new_block env in
    let bx = new_block env in
    terminate env (Tbr bb.b_id);
    switch_to env bb;
    env.breaks <- bx.b_id :: env.breaks;
    env.continues <- bc.b_id :: env.continues;
    lower_block env body;
    env.breaks <- List.tl env.breaks;
    env.continues <- List.tl env.continues;
    terminate env (Tbr bc.b_id);
    switch_to env bc;
    let cv = rval env c in
    terminate env (Tcbr (cv, bb.b_id, bx.b_id));
    switch_to env bx
  | Sfor (init, cond, step, body) ->
    push_scope env;
    List.iter (lower_stmt env) init;
    let bh = new_block env in
    let bb = new_block env in
    let bs = new_block env in
    let bx = new_block env in
    terminate env (Tbr bh.b_id);
    switch_to env bh;
    (match cond with
     | None -> terminate env (Tbr bb.b_id)
     | Some c ->
       let cv = rval env c in
       terminate env (Tcbr (cv, bb.b_id, bx.b_id)));
    switch_to env bb;
    env.breaks <- bx.b_id :: env.breaks;
    env.continues <- bs.b_id :: env.continues;
    lower_block env body;
    env.breaks <- List.tl env.breaks;
    env.continues <- List.tl env.continues;
    terminate env (Tbr bs.b_id);
    switch_to env bs;
    Option.iter (fun e -> ignore (rval env e)) step;
    terminate env (Tbr bh.b_id);
    switch_to env bx;
    pop_scope env
  | Sreturn None -> seal_with_ret env None
  | Sreturn (Some e) ->
    let v = rval env e in
    seal_with_ret env (Some v)
  | Sbreak ->
    (match env.breaks with
     | tgt :: _ ->
       terminate env (Tbr tgt);
       switch_to env (new_block env)
     | [] -> err "break outside of loop")
  | Scontinue ->
    (match env.continues with
     | tgt :: _ ->
       terminate env (Tbr tgt);
       switch_to env (new_block env)
     | [] -> err "continue outside of loop")
  | Sblock body -> lower_block env body

and seal_with_ret env v =
  terminate env (Tret v);
  (* subsequent statements in the block are unreachable; park them in a
     fresh dead block *)
  switch_to env (new_block env)

and lower_block env body =
  push_scope env;
  List.iter (lower_stmt env) body;
  pop_scope env

(* --- constant evaluation for global initializers ------------------------- *)

let rec const_eval env (e : Ast.expr) : int =
  match e.Ast.e with
  | Int (v, _) -> v
  | Sizeof_ty t -> size_of env t
  | Sizeof_expr a -> size_of env a.Ast.ety
  | Un (Neg, a) -> -const_eval env a
  | Un (Bnot, a) -> lnot (const_eval env a)
  | Un (Lnot, a) -> if const_eval env a = 0 then 1 else 0
  | Bin (op, a, b) ->
    let x = const_eval env a and y = const_eval env b in
    (match op with
     | Add -> x + y | Sub -> x - y | Mul -> x * y
     | Div -> if y = 0 then err "division by zero in constant" else x / y
     | Mod -> if y = 0 then err "division by zero in constant" else x mod y
     | Shl -> x lsl y | Shr -> x asr y
     | Band -> x land y | Bor -> x lor y | Bxor -> x lxor y
     | Eq -> if x = y then 1 else 0
     | Ne -> if x <> y then 1 else 0
     | Lt -> if x < y then 1 else 0
     | Le -> if x <= y then 1 else 0
     | Gt -> if x > y then 1 else 0
     | Ge -> if x >= y then 1 else 0
     | Land -> if x <> 0 && y <> 0 then 1 else 0
     | Lor -> if x <> 0 || y <> 0 then 1 else 0)
  | Cast (t, a) ->
    let v = const_eval env a in
    let bytes = size_of env t in
    if bytes >= 8 then v
    else begin
      let bits = bytes * 8 in
      let m = (1 lsl bits) - 1 in
      let v = v land m in
      if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v
    end
  | _ -> err "unsupported constant expression in global initializer"

let store_le image off v bytes =
  for k = 0 to bytes - 1 do
    Bytes.set image (off + k) (Char.chr ((v asr (8 * k)) land 0xff))
  done

let rec build_image env image off (ty : Ast.ty) (init : Ast.init) =
  match ty, init with
  | Ast.Tarr (Tchar, n), Init_expr { e = Str s; _ } ->
    String.iteri
      (fun i c -> if i < n then Bytes.set image (off + i) c)
      s
  | Tarr (Twchar, n), Init_expr { e = Wstr a; _ } ->
    Array.iteri
      (fun i cp -> if i < n then store_le image (off + (i * 4)) cp 4)
      a
  | Tarr (elt, _), Init_list items ->
    let esize = size_of env elt in
    List.iteri
      (fun i item -> build_image env image (off + (i * esize)) elt item)
      items
  | Tstruct s, Init_list items ->
    let l = Layout.struct_layout (layouts env) s in
    List.iteri
      (fun i item ->
         let f = List.nth l.Layout.s_fields i in
         build_image env image (off + f.Layout.f_off) f.Layout.f_ty item)
      items
  | _, Init_expr e ->
    let v = const_eval env e in
    let size, _ = scalar_size env ty in
    store_le image off v size
  | _, Init_list _ -> err "brace initializer for scalar global"

(* --- functions and module ------------------------------------------------ *)

let lower_func md checked strings (fd : Ast.func) =
  let body = match fd.Ast.fbody with Some b -> b | None -> assert false in
  let f =
    { f_name = fd.Ast.fname;
      f_params = List.mapi (fun i _ -> i) fd.Ast.fparams;
      f_nregs = List.length fd.Ast.fparams;
      f_slots = [];
      f_blocks = [||];
      f_external = false;
      f_ret_void = Ast.ty_equal fd.Ast.fret Tvoid;
      f_sig_ptrs =
        List.map
          (fun (t, _) -> Ast.is_pointer (Minic.Sema.decay t))
          fd.Ast.fparams;
      f_ret_ptr = Ast.is_pointer (Minic.Sema.decay fd.Ast.fret) }
  in
  let entry = { b_id = 0; b_instrs = []; b_term = Tret None } in
  let env =
    { md; checked; f; blocks = [ entry ]; nblocks = 1; cur = entry;
      cur_rev = []; sealed = false; scopes = [ [] ]; breaks = [];
      continues = []; strings }
  in
  (* parameters are spilled to slots so that & works on them; Promote
     moves the non-escaping ones back to registers *)
  List.iteri
    (fun i (pty, pname) ->
       let pty = match pty with Ast.Tarr (t, _) -> Ast.Tptr t | t -> t in
       let slot =
         { s_id = List.length env.f.f_slots; s_name = pname;
           s_size = Layout.size_of checked.Minic.Sema.layouts pty;
           s_align = Layout.align_of checked.Minic.Sema.layouts pty;
           s_ty = pty; s_unsafe = false }
       in
       env.f.f_slots <- env.f.f_slots @ [ slot ];
       add_local env pname { l_slot = slot.s_id; l_ty = pty };
       let a = reg env in
       emit env (Islot { dst = a; slot = slot.s_id });
       let size, _ = scalar_size env pty in
       emit env (Istore { addr = Reg a; src = Reg i; size; safe = true }))
    fd.Ast.fparams;
  lower_block env body;
  (* fall-off-the-end: return 0 from main, plain return elsewhere *)
  if not env.sealed then
    terminate env
      (if String.equal fd.Ast.fname "main" then Tret (Some (Imm 0))
       else Tret (if f.f_ret_void then None else Some (Imm 0)));
  flush_cur env;
  let blocks = Array.make env.nblocks entry in
  List.iter (fun b -> blocks.(b.b_id) <- b) env.blocks;
  f.f_blocks <- blocks;
  f

(* Lowers a checked program to a module.  [extern] declarations become
   external (uninstrumented) function stubs resolved at link/run time. *)
let lower (checked : Minic.Sema.checked) : modul =
  let md =
    { m_globals = []; m_funcs = Hashtbl.create 17;
      m_layouts = checked.Minic.Sema.layouts; m_next_site = 0;
      m_witnesses = []; m_vcache = [] }
  in
  let strings = ref [] in
  List.iter
    (function
      | Ast.Dglobal g ->
        let size = Layout.size_of checked.Minic.Sema.layouts g.Ast.gty in
        let image = Bytes.make size '\000' in
        let env =
          { md; checked;
            f = { f_name = "<global-init>"; f_params = []; f_nregs = 0;
                  f_slots = []; f_blocks = [||]; f_external = false;
                  f_ret_void = true; f_sig_ptrs = []; f_ret_ptr = false };
            blocks = []; nblocks = 0;
            cur = { b_id = 0; b_instrs = []; b_term = Tret None };
            cur_rev = []; sealed = true; scopes = [ [] ]; breaks = [];
            continues = []; strings }
        in
        Option.iter (build_image env image 0 g.Ast.gty) g.Ast.ginit;
        md.m_globals <-
          { g_name = g.Ast.gname; g_size = size;
            g_align = Layout.align_of checked.Minic.Sema.layouts g.Ast.gty;
            g_image = image; g_ty = g.Ast.gty; g_internal = false;
            g_unsafe = false }
          :: md.m_globals
      | Dfunc fd ->
        (match fd.Ast.fbody with
         | Some _ ->
           let f = lower_func md checked strings fd in
           Hashtbl.replace md.m_funcs f.f_name f
         | None ->
           if not (Minic.Builtins.is_builtin fd.Ast.fname) then
             Hashtbl.replace md.m_funcs fd.Ast.fname
               { f_name = fd.Ast.fname;
                 f_params =
                   List.mapi (fun i _ -> i) fd.Ast.fparams;
                 f_nregs = List.length fd.Ast.fparams;
                 f_slots = []; f_blocks = [||]; f_external = true;
                 f_ret_void = Ast.ty_equal fd.Ast.fret Tvoid;
                 f_sig_ptrs =
                   List.map
                     (fun (t, _) -> Ast.is_pointer (Minic.Sema.decay t))
                     fd.Ast.fparams;
                 f_ret_ptr = Ast.is_pointer (Minic.Sema.decay fd.Ast.fret) })
      | Dstruct _ -> ())
    checked.Minic.Sema.prog;
  md.m_globals <- List.rev md.m_globals;
  md

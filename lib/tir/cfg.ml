(* Control-flow analyses: predecessors, reverse postorder, dominators and
   natural loops (with preheader creation).  These power the
   loop-oriented check optimizations of the paper's section II.F. *)

open Ir

type t = {
  preds : int list array;
  succs : int list array;
  rpo : int array;          (* reverse postorder of reachable blocks *)
  rpo_index : int array;    (* block -> position in rpo, -1 if unreachable *)
}

let build (f : func) : t =
  let n = Array.length f.f_blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
       succs.(i) <- successors b.b_term;
       List.iter (fun s -> preds.(s) <- i :: preds.(s)) succs.(i))
    f.f_blocks;
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { preds; succs; rpo; rpo_index }

(* Cooper-Harvey-Kennedy iterative dominators.  [idom.(b)] is the
   immediate dominator of [b]; entry's idom is itself; unreachable
   blocks get -1. *)
let dominators (cfg : t) : int array =
  let n = Array.length cfg.preds in
  let idom = Array.make n (-1) in
  if Array.length cfg.rpo > 0 then begin
    let entry = cfg.rpo.(0) in
    idom.(entry) <- entry;
    let rec intersect a b =
      if a = b then a
      else if cfg.rpo_index.(a) > cfg.rpo_index.(b) then
        intersect idom.(a) b
      else intersect a idom.(b)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
           if b <> entry then begin
             let processed =
               List.filter (fun p -> idom.(p) <> -1) cfg.preds.(b)
             in
             match processed with
             | [] -> ()
             | first :: rest ->
               let d = List.fold_left intersect first rest in
               if idom.(b) <> d then begin
                 idom.(b) <- d;
                 changed := true
               end
           end)
        cfg.rpo
    done
  end;
  idom

let dominates (idom : int array) a b =
  (* does a dominate b? *)
  let rec go b = if b = a then true else if idom.(b) = b || idom.(b) = -1 then false else go idom.(b) in
  if idom.(b) = -1 then false else go b

type loop = {
  header : int;
  body : int list;            (* block ids, including the header *)
  latches : int list;         (* sources of back edges *)
}

(* Natural loops from back edges (n -> h where h dominates n). *)
let loops (f : func) (cfg : t) (idom : int array) : loop list =
  let back_edges = ref [] in
  Array.iteri
    (fun b _ ->
       if idom.(b) <> -1 then
         List.iter
           (fun s -> if dominates idom s b then back_edges := (b, s) :: !back_edges)
           cfg.succs.(b))
    f.f_blocks;
  (* group by header *)
  let by_header : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (latch, h) ->
       match Hashtbl.find_opt by_header h with
       | Some l -> l := latch :: !l
       | None -> Hashtbl.replace by_header h (ref [ latch ]))
    !back_edges;
  Hashtbl.fold
    (fun header latches acc ->
       (* body: header plus everything that reaches a latch without
          passing through the header *)
       let in_body = Hashtbl.create 8 in
       Hashtbl.replace in_body header ();
       let rec pull b =
         if not (Hashtbl.mem in_body b) then begin
           Hashtbl.replace in_body b ();
           List.iter pull cfg.preds.(b)
         end
       in
       List.iter pull !latches;
       let body = Hashtbl.fold (fun b () acc -> b :: acc) in_body [] in
       { header; body = List.sort compare body; latches = !latches } :: acc)
    by_header []
  |> List.sort (fun a b -> compare a.header b.header)

(* Ensures the loop has a dedicated preheader: a block whose only
   successor is the header, receiving every entry edge.  Returns its id
   together with a [t] that is valid for the (possibly mutated)
   function.  When a block is appended and edges redirected, the
   returned [t] is rebuilt from scratch; callers working over several
   loops must thread it through (the previous [int]-returning version
   silently left callers holding stale [preds]/[succs]/[rpo] arrays). *)
let make_preheader (f : func) (cfg : t) (l : loop) : int * t =
  let outside_preds =
    List.filter (fun p -> not (List.mem p l.body)) cfg.preds.(l.header)
  in
  match outside_preds with
  | [ p ] when (match f.f_blocks.(p).b_term with
      | Tbr h -> h = l.header
      | Tret _ | Tcbr _ -> false) ->
    (p, cfg)  (* already a dedicated straight-line preheader *)
  | _ ->
    let ph = Rewrite.append_block f in
    ph.b_term <- Tbr l.header;
    List.iter
      (fun p ->
         let redirect b = if b = l.header then ph.b_id else b in
         let blk = f.f_blocks.(p) in
         blk.b_term <-
           (match blk.b_term with
            | Tbr b -> Tbr (redirect b)
            | Tcbr (c, a, b) -> Tcbr (c, redirect a, redirect b)
            | Tret _ as t -> t))
      outside_preds;
    (ph.b_id, build f)

(* Registers defined anywhere inside the loop body. *)
let regs_defined_in (f : func) (l : loop) : (int, unit) Hashtbl.t =
  let defined = Hashtbl.create 16 in
  List.iter
    (fun b ->
       List.iter
         (fun i ->
            match defs i with
            | Some d -> Hashtbl.replace defined d ()
            | None -> ())
         f.f_blocks.(b).b_instrs)
    l.body;
  defined

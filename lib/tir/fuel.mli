(** Deterministic step budgets for pipeline phases (compile, verify,
    generate, shrink).  A fuel value is a plain countdown with no wall
    clock behind it, so exhaustion is byte-identical across machines and
    job counts; [None] (the default everywhere a phase takes
    [?fuel]) burns nothing and never trips. *)

type t = {
  phase : string;          (** label carried into {!Exhausted} *)
  budget : int;
  mutable remaining : int;
}

exception Exhausted of { phase : string; budget : int }

val make : phase:string -> budget:int -> t

val remaining : t -> int

val burn : t option -> int -> unit
(** [burn (Some t) cost] subtracts [cost]; raises {!Exhausted} once the
    budget is gone.  [burn None _] is a no-op. *)

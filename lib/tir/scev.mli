(** Mini scalar evolution and constant propagation over single-definition
    registers, shared by the section II.F check optimizer
    (Sanitizer.Checkopt) and the static verifier (Tir.Verify), so the
    verifier re-derives the optimizer's reasoning from the same
    primitives without trusting its transformations. *)

type defs = (int, Ir.instr option) Hashtbl.t
(** reg -> its single defining instruction; multiply-defined regs map to
    [None] (and absent regs are parameters / VM-zero-initialized). *)

val single_defs : Ir.func -> defs

val canon : ?strip_mask:int -> defs -> int -> int
(** Resolve a register through value-preserving moves and >= 4-byte
    sign extensions.  With [strip_mask], additionally resolve through
    [r land mask] (tag stripping preserves the addressed object). *)

val const_of : defs -> int -> int option
(** Compile-time constant value of a register, through [canon]. *)

val add_no_ov : int -> int -> int option
(** [a + b], or [None] if the native addition wrapped. *)

val sub_no_ov : int -> int -> int option
(** [a - b], or [None] if the native subtraction wrapped. *)

val mul_no_ov : int -> int -> int option
(** [a * b], or [None] if the product is not representable ([min_int]
    factors are rejected outright). *)

val last_index : start:int -> bound:int -> step:int -> int option
(** Last induction value in [start, bound) with stride [step]; [None]
    on a non-positive stride, zero-trip-count loop, or overflow. *)

val endpoint_offsets :
  start:int -> bound:int -> step:int -> elem_size:int -> off:int ->
  (int * int) option
(** First/last byte offsets of [iv*elem_size + off] over the loop range;
    the single endpoint-arithmetic routine shared by Checkopt and
    Verify, [None] whenever any step would overflow. *)

type induction = { iv : int; start : int option; step : int }

val induction_of : Ir.func -> Cfg.loop -> defs -> int -> induction option
(** Recognizes [iv = iv + step] as the only real in-loop definition of
    [iv]; [start] is the unique constant definition outside the loop. *)

val static_bound : Ir.func -> Cfg.loop -> defs -> int -> int option
(** Static trip bound from the header's [iv < N] / [iv <= N-1] exit. *)

val affine_of :
  ?strip_mask:int ->
  defs ->
  (Ir.opnd -> Ir.opnd option) ->
  Ir.opnd ->
  (Ir.opnd * int * int * int) option
(** Resolve an address to [base + iv*elem_size + off]; [invariant]
    filters/canonicalizes the base operand.  Returns
    [(base, elem_size, iv_reg, off)]. *)

(** Mini scalar evolution and constant propagation over single-definition
    registers, shared by the section II.F check optimizer
    (Sanitizer.Checkopt) and the static verifier (Tir.Verify), so the
    verifier re-derives the optimizer's reasoning from the same
    primitives without trusting its transformations. *)

type defs = (int, Ir.instr option) Hashtbl.t
(** reg -> its single defining instruction; multiply-defined regs map to
    [None] (and absent regs are parameters / VM-zero-initialized). *)

val single_defs : Ir.func -> defs

val canon : ?strip_mask:int -> defs -> int -> int
(** Resolve a register through value-preserving moves and >= 4-byte
    sign extensions.  With [strip_mask], additionally resolve through
    [r land mask] (tag stripping preserves the addressed object). *)

val const_of : defs -> int -> int option
(** Compile-time constant value of a register, through [canon]. *)

type induction = { iv : int; start : int option; step : int }

val induction_of : Ir.func -> Cfg.loop -> defs -> int -> induction option
(** Recognizes [iv = iv + step] as the only real in-loop definition of
    [iv]; [start] is the unique constant definition outside the loop. *)

val static_bound : Ir.func -> Cfg.loop -> defs -> int -> int option
(** Static trip bound from the header's [iv < N] / [iv <= N-1] exit. *)

val affine_of :
  ?strip_mask:int ->
  defs ->
  (Ir.opnd -> Ir.opnd option) ->
  Ir.opnd ->
  (Ir.opnd * int * int * int) option
(** Resolve an address to [base + iv*elem_size + off]; [invariant]
    filters/canonicalizes the base operand.  Returns
    [(base, elem_size, iv_reg, off)]. *)

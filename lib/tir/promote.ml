(* Mem2reg-lite: promotes safe scalar stack slots to registers.

   This models compiling at -O2, where scalar locals live in registers:
   without it every `i++` would be a (checkable) memory access and the
   sanitizer overhead comparison against the paper would be meaningless.

   A slot is promotable when the safety analysis proved it safe (no
   escapes, no indexing) and it is scalar-sized.  Because the IR is not
   SSA, promotion is a simple rewrite: a dedicated register holds the
   current value; loads become moves, stores become moves-with-truncation
   ([Isext] keeps the C narrowing semantics of char/short/int slots). *)

open Ir

let scalar_slot (s : slot) =
  match s.s_ty with
  | Minic.Ast.Tarr _ | Tstruct _ -> false
  | _ -> s.s_size <= 8

let promote_func (f : func) : int =
  let promotable =
    List.filter (fun s -> (not s.s_unsafe) && scalar_slot s) f.f_slots
  in
  if promotable = [] then 0
  else begin
    (* a dedicated register per promoted slot *)
    let value_reg : (int, int) Hashtbl.t = Hashtbl.create 8 in
    List.iter (fun s -> Hashtbl.replace value_reg s.s_id (fresh_reg f))
      promotable;
    Array.iter
      (fun b ->
         (* reg -> promoted slot id, for Islot results in this block *)
         let rooted : (int, int) Hashtbl.t = Hashtbl.create 8 in
         let rewritten =
           List.filter_map
             (fun i ->
                match i with
                | Islot { dst; slot } when Hashtbl.mem value_reg slot ->
                  Hashtbl.replace rooted dst slot;
                  None
                | Iload { dst; addr = Reg r; _ } when Hashtbl.mem rooted r ->
                  let s = Hashtbl.find rooted r in
                  Some (Imov { dst; src = Reg (Hashtbl.find value_reg s) })
                | Istore { addr = Reg r; src; size; _ }
                  when Hashtbl.mem rooted r ->
                  let s = Hashtbl.find rooted r in
                  let vr = Hashtbl.find value_reg s in
                  if size >= 8 then Some (Imov { dst = vr; src })
                  else Some (Isext { dst = vr; src; bytes = size })
                | i -> Some i)
             b.b_instrs
         in
         b.b_instrs <- rewritten)
      f.f_blocks;
    (* compact the remaining slots and renumber Islot references *)
    let keep =
      List.filter (fun s -> not (Hashtbl.mem value_reg s.s_id)) f.f_slots
    in
    let renum : (int, int) Hashtbl.t = Hashtbl.create 8 in
    let keep =
      List.mapi
        (fun i s ->
           Hashtbl.replace renum s.s_id i;
           { s with s_id = i })
        keep
    in
    Array.iter
      (fun b ->
         b.b_instrs <-
           List.map
             (function
               | Islot { dst; slot } ->
                 Islot { dst; slot = Hashtbl.find renum slot }
               | i -> i)
             b.b_instrs)
      f.f_blocks;
    f.f_slots <- keep;
    List.length promotable
  end

(* Runs safety analysis then promotion on every defined function.
   Returns the number of slots promoted (for tests/statistics). *)
let run (m : modul) : int =
  clear_vcache m;  (* promotion rewrites code the VM may have cached *)
  Analysis.run m;
  let n = ref 0 in
  iter_funcs m (fun f -> if not f.f_external then n := !n + promote_func f);
  (* promotion changed access patterns; recompute safety for consumers *)
  Analysis.run m;
  !n

(* Tir.Witness: machine-checkable elision certificates.

   Every check that Checkopt's absint phase elides or downgrades carries
   one of these records -- the exact abstract facts the optimizer used.
   Tir.Verify replays each witness against its own independent run of
   Tir.Absint on the *post-optimization* IR: the claimed facts must be
   re-derivable (the derived interval must be contained in the claimed
   one, the object must be live and non-escaping, the claimed bounds
   must imply in-bounds access).  A witness that cannot be re-proved is
   a build error in Strict mode, so the optimizer can never silently
   drop coverage (DESIGN.md section 16). *)

type kind =
  | Welide      (* check removed outright: spatial + temporal both proved *)
  | Wdowngrade  (* temporal half proved; check renamed to its spatial-only
                   variant at the same site *)

type t = {
  w_site : int;          (* telemetry site id of the (ex-)check *)
  w_func : string;       (* enclosing function, for replay scoping *)
  w_kind : kind;
  w_reg : int;           (* register holding the checked pointer *)
  w_dst : int option;    (* the check's destination register, if any *)
  w_size : int;          (* access size in bytes *)
  w_obj : string;        (* abstract object descriptor, e.g. "slot:a" *)
  w_lo : int;            (* claimed offset interval of [w_reg] inside *)
  w_hi : int;            (*   the object: lo <= off <= hi *)
  w_objsize : int;       (* claimed object size in bytes *)
  w_temporal : bool;     (* claimed: no free of the object reaches here *)
  w_escapes : bool;      (* claimed escape status (must be false) *)
}

let kind_to_string = function
  | Welide -> "elide"
  | Wdowngrade -> "downgrade"

let pp fmt w =
  Fmt.pf fmt "site %d in %s: %s r%d size %d obj %s off [%d,%d] objsize %d%s%s"
    w.w_site w.w_func (kind_to_string w.w_kind) w.w_reg w.w_size w.w_obj
    w.w_lo w.w_hi w.w_objsize
    (if w.w_temporal then " temporal-safe" else "")
    (if w.w_escapes then " ESCAPES" else "")

(* Tir.Absint: flow-sensitive abstract interpretation for certified
   check elision (DESIGN.md section 16).

   The interpreter is parameterized by a [model] describing one
   sanitizer's intrinsics, so CECSan and the redzone baselines share
   the machinery.  Analysis of a function proceeds in three phases:

   1. object discovery: every stack slot, allocator intrinsic site,
      modeled allocator call and referenced global becomes an abstract
      object with a descriptor that is stable across Checkopt's own
      rewrites (so the optimizer's run and the verifier's independent
      replay name the same objects);
   2. derivation closure + escape: a flow-insensitive fixpoint maps
      each register to the set of objects it may derive from; objects
      stored as values, passed to defined functions or unclassified
      intrinsics, or returned, escape;
   3. flow fixpoint: interval/pointer values and the freed-set are
      propagated block by block in reverse postorder, widening after a
      bounded number of joins so termination needs no assumptions.

   Soundness notes bound to this VM (not real hardware):

   - OCaml/VM integer arithmetic wraps silently, so interval addition
     and multiplication go to Vtop whenever a corner overflows;
   - pointer-offset arithmetic saturates to the full range instead:
     a full-range offset can never satisfy {!in_bounds}, so a wrapped
     offset can never justify an elision, while the object identity is
     retained for spatial-only downgrades (which run the same check
     semantics and therefore cannot regress detection);
   - a free whose argument is imprecise releases every escaped object
     plus everything derivable from the argument register -- a
     non-escaping object's address cannot reach a free site any other
     way, because reaching one without a store or call *is* escape. *)

open Ir

module Int_map = Map.Make (Int)
module Int_set = Set.Make (Int)

type size_rule = Sarg of int | Sprod of int * int

type model = {
  am_checks : (string * string option) list;
  am_check_alias : bool;
  am_allocs : (string * size_rule) list;
  am_frees : string list;
  am_aliases : string list;
  am_opaque : string list;
  am_call_allocs : (string * size_rule) list;
  am_call_frees : string list;
  am_gpt_load : string option;
  am_global_make : string option;
  am_strip_mask : int option;
  am_slots : bool;
}

type aval =
  | Vtop
  | Vint of int * int
  | Vptr of { obj : int; lo : int; hi : int }

type obj = {
  o_id : int;
  o_desc : string;
  o_size : int;
  mutable o_escapes : bool;
}

type state = {
  s_regs : aval Int_map.t;
  s_freed : Int_set.t;
}

type summary = {
  su_func : string;
  su_objs : obj array;
  su_block_in : state option array;
  su_sites : (int, state) Hashtbl.t;
  su_facts : int;
}

type ctx = {
  cx_model : model;
  cx_pure : string -> bool;
  cx_defined : (string, unit) Hashtbl.t;
  cx_gpt : (int, string) Hashtbl.t;
  cx_globsize : (string, int) Hashtbl.t;
}

let make_ctx (model : model) ~(pure : string -> bool) (md : modul) : ctx =
  let gpt : (int, string) Hashtbl.t = Hashtbl.create 17 in
  (match model.am_global_make with
   | None -> ()
   | Some gm ->
     iter_funcs md (fun f ->
         Array.iter
           (fun b ->
              List.iter
                (fun i ->
                   match i with
                   | Iintrin { name; args = Glob g :: _ :: Imm k :: _; _ }
                     when String.equal name gm ->
                     Hashtbl.replace gpt k g
                   | _ -> ())
                b.b_instrs)
           f.f_blocks));
  let globsize = Hashtbl.create 17 in
  List.iter (fun g -> Hashtbl.replace globsize g.g_name g.g_size) md.m_globals;
  let defined = Hashtbl.create 17 in
  Hashtbl.iter (fun name _ -> Hashtbl.replace defined name ()) md.m_funcs;
  { cx_model = model; cx_pure = pure; cx_defined = defined;
    cx_gpt = gpt; cx_globsize = globsize }

(* --- lattice ------------------------------------------------------------ *)

let regval (st : state) (r : int) : aval =
  match Int_map.find_opt r st.s_regs with Some v -> v | None -> Vtop

(* Canonical form: Vtop is never stored, so map equality means state
   equality. *)
let set_val (st : state) (r : int) (v : aval) : state =
  { st with
    s_regs =
      (match v with
       | Vtop -> Int_map.remove r st.s_regs
       | _ -> Int_map.add r v st.s_regs) }

let join_val a b =
  if a = b then a
  else
    match a, b with
    | Vint (l1, h1), Vint (l2, h2) -> Vint (min l1 l2, max h1 h2)
    | Vptr p, Vptr q when p.obj = q.obj ->
      Vptr { obj = p.obj; lo = min p.lo q.lo; hi = max p.hi q.hi }
    | _ -> Vtop

let join_state a b =
  { s_regs =
      Int_map.merge
        (fun _ x y ->
           match x, y with
           | Some vx, Some vy ->
             (match join_val vx vy with Vtop -> None | v -> Some v)
           | _ -> None)
        a.s_regs b.s_regs;
    s_freed = Int_set.union a.s_freed b.s_freed }

let val_leq a b =
  match a, b with
  | _, Vtop -> true
  | Vtop, _ -> false
  | Vint (l1, h1), Vint (l2, h2) -> l2 <= l1 && h1 <= h2
  | Vptr p, Vptr q -> p.obj = q.obj && q.lo <= p.lo && p.hi <= q.hi
  | _ -> false

(* a [= b: since missing bindings are Vtop, only b's bindings matter. *)
let state_leq a b =
  Int_set.subset a.s_freed b.s_freed
  && Int_map.for_all (fun r vb -> val_leq (regval a r) vb) b.s_regs

let widen_val old v =
  if val_leq v old then old
  else
    match old, v with
    | Vptr p, Vptr q when p.obj = q.obj ->
      Vptr { obj = p.obj; lo = min_int; hi = max_int }
    | _ -> Vtop

(* [v] is always [join old incoming], so its bindings are a subset of
   [old]'s; the freed-set is finite and needs no widening. *)
let widen_state old v =
  { s_regs =
      Int_map.merge
        (fun _ o n ->
           match o, n with
           | Some ov, Some nv ->
             (match widen_val ov nv with Vtop -> None | w -> Some w)
           | _ -> None)
        old.s_regs v.s_regs;
    s_freed = v.s_freed }

(* --- arithmetic --------------------------------------------------------- *)

(* Integer intervals: the VM wraps silently, so a wrapped corner makes
   the whole interval meaningless -> Vtop. *)
let int_add (l1, h1) (l2, h2) =
  match Scev.add_no_ov l1 l2, Scev.add_no_ov h1 h2 with
  | Some l, Some h -> Vint (l, h)
  | _ -> Vtop

let int_sub (l1, h1) (l2, h2) =
  match Scev.sub_no_ov l1 h2, Scev.sub_no_ov h1 l2 with
  | Some l, Some h -> Vint (l, h)
  | _ -> Vtop

let int_mul (l1, h1) (l2, h2) =
  match
    Scev.mul_no_ov l1 l2, Scev.mul_no_ov l1 h2,
    Scev.mul_no_ov h1 l2, Scev.mul_no_ov h1 h2
  with
  | Some a, Some b, Some c, Some d ->
    Vint (min (min a b) (min c d), max (max a b) (max c d))
  | _ -> Vtop

(* Pointer offsets saturate to the full range on overflow: the object
   identity survives (for downgrades) while {!in_bounds} can never hold
   on a saturated bound, so no elision can rest on wrapped math. *)
let shift_ptr ~obj ~lo ~hi (dl, dh) =
  match Scev.add_no_ov lo dl, Scev.add_no_ov hi dh with
  | Some l, Some h -> Vptr { obj; lo = l; hi = h }
  | _ -> Vptr { obj; lo = min_int; hi = max_int }

let in_bounds ~lo ~hi ~size ~objsize =
  objsize >= 0 && size >= 0 && lo >= 0
  && (match Scev.add_no_ov hi size with
      | Some e -> e <= objsize
      | None -> false)

(* --- object discovery --------------------------------------------------- *)

type fenv = {
  fe_cx : ctx;
  fe_objs : obj array;
  fe_slot_obj : (int, int) Hashtbl.t;   (* slot id -> obj *)
  fe_site_obj : (int, int) Hashtbl.t;   (* alloc intrinsic site -> obj *)
  fe_call_obj : (int * int, int) Hashtbl.t;  (* (block, ordinal) -> obj *)
  fe_glob_obj : (string, int) Hashtbl.t;
  fe_derived : Int_set.t array;         (* reg -> may-derive-from objs *)
  fe_escaped : Int_set.t;
}

let instr_opnds = function
  | Imov { src; _ } | Isext { src; _ } -> [ src ]
  | Ibin { a; b; _ } | Icmp { a; b; _ } -> [ a; b ]
  | Iload { addr; _ } -> [ addr ]
  | Istore { addr; src; _ } -> [ addr; src ]
  | Islot _ -> []
  | Igep { base; idx; _ } -> base :: Option.to_list idx
  | Icall { args; _ } | Iintrin { args; _ } -> args

let alloc_size rule args =
  let const k =
    match List.nth_opt args k with Some (Imm v) -> Some v | _ -> None
  in
  match rule with
  | Sarg k -> (match const k with Some v -> v | None -> -1)
  | Sprod (i, j) ->
    (match const i, const j with
     | Some a, Some b ->
       (match Scev.mul_no_ov a b with Some p -> p | None -> -1)
     | _ -> -1)

let discover (cx : ctx) (f : func) =
  let m = cx.cx_model in
  let objs = ref [] and nobjs = ref 0 in
  let fresh desc size escapes =
    let o = { o_id = !nobjs; o_desc = desc; o_size = size;
              o_escapes = escapes } in
    incr nobjs;
    objs := o :: !objs;
    o.o_id
  in
  let slot_obj = Hashtbl.create 8 and site_obj = Hashtbl.create 8 in
  let call_obj = Hashtbl.create 8 and glob_obj = Hashtbl.create 8 in
  let slot_by_id = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace slot_by_id s.s_id s) f.f_slots;
  (* globals always escape: their address is reachable from anywhere *)
  let ensure_glob g =
    if not (Hashtbl.mem glob_obj g) then
      let size =
        Option.value (Hashtbl.find_opt cx.cx_globsize g) ~default:(-1)
      in
      Hashtbl.replace glob_obj g (fresh ("global:" ^ g) size true)
  in
  Array.iter
    (fun b ->
       let ord = ref 0 in
       List.iter
         (fun i ->
            List.iter
              (function Glob g -> ensure_glob g | Reg _ | Imm _ -> ())
              (instr_opnds i);
            match i with
            | Islot { slot; _ } when m.am_slots ->
              if not (Hashtbl.mem slot_obj slot) then
                (match Hashtbl.find_opt slot_by_id slot with
                 | Some s ->
                   Hashtbl.replace slot_obj slot
                     (fresh (Printf.sprintf "slot:%s:%d" s.s_name s.s_id)
                        s.s_size false)
                 | None -> ())
            | Iintrin { name; args; site; _ } ->
              (match List.assoc_opt name m.am_allocs with
               | Some rule ->
                 Hashtbl.replace site_obj site
                   (fresh (Printf.sprintf "%s#%d" name site)
                      (alloc_size rule args) false)
               | None ->
                 (match m.am_gpt_load, args with
                  | Some g, Imm k :: _ when String.equal name g ->
                    (match Hashtbl.find_opt cx.cx_gpt k with
                     | Some gname -> ensure_glob gname
                     | None -> ())
                  | _ -> ()))
            | Icall { callee; args; _ } ->
              (match List.assoc_opt callee m.am_call_allocs with
               | Some rule ->
                 Hashtbl.replace call_obj (b.b_id, !ord)
                   (fresh
                      (Printf.sprintf "call:%s:b%d:%d" callee b.b_id !ord)
                      (alloc_size rule args) false);
                 incr ord
               | None -> ())
            | _ -> ())
         b.b_instrs)
    f.f_blocks;
  let arr = Array.of_list (List.rev !objs) in
  (arr, slot_obj, site_obj, call_obj, glob_obj)

(* Intrinsics with modeled (or no) metadata effect; anything else is
   treated as worst-case in both the escape pass and the transfer. *)
let classified m name =
  is_telemetry_marker name
  || List.mem_assoc name m.am_checks
  || List.mem_assoc name m.am_allocs
  || List.mem name m.am_frees
  || List.mem name m.am_aliases
  || List.mem name m.am_opaque
  || (match m.am_gpt_load with Some g -> String.equal g name | None -> false)
  || (match m.am_global_make with
      | Some g -> String.equal g name
      | None -> false)

(* --- derivation closure and escape -------------------------------------- *)

let derive_and_escape ?fuel (cx : ctx) (f : func) ~objs ~slot_obj ~site_obj
    ~call_obj ~glob_obj =
  let m = cx.cx_model in
  let nregs = max f.f_nregs 1 in
  let derived = Array.make nregs Int_set.empty in
  let changed = ref true in
  let add r s =
    if r < nregs && not (Int_set.subset s derived.(r)) then begin
      derived.(r) <- Int_set.union derived.(r) s;
      changed := true
    end
  in
  let get = function
    | Reg r when r < nregs -> derived.(r)
    | Glob g ->
      (match Hashtbl.find_opt glob_obj g with
       | Some id -> Int_set.singleton id
       | None -> Int_set.empty)
    | _ -> Int_set.empty
  in
  let arg0 args = match args with a :: _ -> get a | [] -> Int_set.empty in
  while !changed do
    changed := false;
    Fuel.burn fuel (Array.length f.f_blocks);
    Array.iter
      (fun b ->
         let ord = ref 0 in
         List.iter
           (fun i ->
              match i with
              | Islot { dst; slot } when m.am_slots ->
                (match Hashtbl.find_opt slot_obj slot with
                 | Some id -> add dst (Int_set.singleton id)
                 | None -> ())
              | Imov { dst; src } -> add dst (get src)
              | Isext { dst; src; _ } -> add dst (get src)
              | Ibin { dst; a; b = b'; _ } ->
                add dst (Int_set.union (get a) (get b'))
              | Igep { dst; base; idx; _ } ->
                add dst
                  (Int_set.union (get base)
                     (match idx with Some o -> get o | None -> Int_set.empty))
              | Iintrin { dst; name; args; site; _ } ->
                (match dst with
                 | None -> ()
                 | Some d ->
                   if List.mem_assoc name m.am_allocs then
                     (match Hashtbl.find_opt site_obj site with
                      | Some id -> add d (Int_set.singleton id)
                      | None -> ())
                   else if
                     (m.am_check_alias && List.mem_assoc name m.am_checks)
                     || List.mem name m.am_aliases
                   then add d (arg0 args)
                   else
                     match m.am_gpt_load, args with
                     | Some g, Imm k :: _ when String.equal name g ->
                       (match Hashtbl.find_opt cx.cx_gpt k with
                        | Some gname ->
                          (match Hashtbl.find_opt glob_obj gname with
                           | Some id -> add d (Int_set.singleton id)
                           | None -> ())
                        | None -> ())
                     | _ -> ())
              | Icall { dst; callee; _ } ->
                (match dst with
                 | None -> ()
                 | Some d ->
                   (match List.assoc_opt callee m.am_call_allocs with
                    | Some _ ->
                      (match Hashtbl.find_opt call_obj (b.b_id, !ord) with
                       | Some id -> add d (Int_set.singleton id)
                       | None -> ());
                      incr ord
                    | None -> ()))
              | Icmp _ | Iload _ | Istore _ | Islot _ -> ())
           b.b_instrs)
      f.f_blocks
  done;
  (* escape pass: an object escapes when its address is stored as a
     value, passed to a defined function or an unclassified intrinsic,
     handed to an undefined non-neutral callee, or returned.  Pure
     *defined* callees still escape their arguments: purity only says
     no metadata is touched inside, not that the pointer is forgotten,
     and a later impure call could free whatever was remembered. *)
  let escaped = ref Int_set.empty in
  let esc s = escaped := Int_set.union !escaped s in
  Array.iter
    (fun b ->
       List.iter
         (fun i ->
            match i with
            | Istore { src; _ } -> esc (get src)
            | Icall { callee; args; _ } ->
              if
                List.mem_assoc callee m.am_call_allocs
                || List.mem callee m.am_call_frees
                || ((not (Hashtbl.mem cx.cx_defined callee))
                    && cx.cx_pure callee)
              then ()
              else List.iter (fun a -> esc (get a)) args
            | Iintrin { name; args; _ } ->
              if classified m name then ()
              else List.iter (fun a -> esc (get a)) args
            | _ -> ())
         b.b_instrs;
       match b.b_term with
       | Tret (Some o) -> esc (get o)
       | _ -> ())
    f.f_blocks;
  Int_set.iter
    (fun id -> if id < Array.length objs then objs.(id).o_escapes <- true)
    !escaped;
  Array.iter (fun (o : obj) -> if o.o_escapes then esc (Int_set.singleton o.o_id)) objs;
  (derived, !escaped)

(* --- flow transfer ------------------------------------------------------ *)

let transfer (fe : fenv) (bid : int) (ord : int ref) (st : state)
    (i : instr) : state =
  let m = fe.fe_cx.cx_model in
  let aval = function
    | Imm v -> Vint (v, v)
    | Glob g ->
      (match Hashtbl.find_opt fe.fe_glob_obj g with
       | Some id -> Vptr { obj = id; lo = 0; hi = 0 }
       | None -> Vtop)
    | Reg r -> regval st r
  in
  let arg0_aval args = match args with a :: _ -> aval a | [] -> Vtop in
  (* free with an imprecise argument: every escaped object plus
     everything derivable from the argument may be gone *)
  let free_arg st arg =
    match arg with
    | Some a ->
      (match aval a with
       | Vptr { obj; _ } ->
         { st with s_freed = Int_set.add obj st.s_freed }
       | _ ->
         let extra =
           match a with
           | Reg r when r < Array.length fe.fe_derived -> fe.fe_derived.(r)
           | Glob g ->
             (match Hashtbl.find_opt fe.fe_glob_obj g with
              | Some id -> Int_set.singleton id
              | None -> Int_set.empty)
           | _ -> Int_set.empty
         in
         { st with
           s_freed =
             Int_set.union st.s_freed (Int_set.union fe.fe_escaped extra) })
    | None ->
      { st with s_freed = Int_set.union st.s_freed fe.fe_escaped }
  in
  match i with
  | Imov { dst; src } -> set_val st dst (aval src)
  | Isext { dst; src; bytes } ->
    let v = aval src in
    set_val st dst
      (if bytes >= 8 then v
       else
         match v with
         | Vint (l, h) ->
           let half = 1 lsl ((8 * bytes) - 1) in
           if l >= -half && h < half then v else Vtop
         | _ -> Vtop)
  | Ibin { op; dst; a; b } ->
    let va = aval a and vb = aval b in
    let v =
      match op, va, vb with
      | Add, Vptr { obj; lo; hi }, Vint (l, h)
      | Add, Vint (l, h), Vptr { obj; lo; hi } ->
        shift_ptr ~obj ~lo ~hi (l, h)
      | Add, Vint (l1, h1), Vint (l2, h2) -> int_add (l1, h1) (l2, h2)
      | Sub, Vptr { obj; lo; hi }, Vint (l, h) ->
        (match Scev.sub_no_ov lo h, Scev.sub_no_ov hi l with
         | Some l', Some h' -> Vptr { obj; lo = l'; hi = h' }
         | _ -> Vptr { obj; lo = min_int; hi = max_int })
      | Sub, Vint (l1, h1), Vint (l2, h2) -> int_sub (l1, h1) (l2, h2)
      | Mul, Vint (l1, h1), Vint (l2, h2) -> int_mul (l1, h1) (l2, h2)
      | And, Vptr p, Vint (l, h)
        when l = h && m.am_strip_mask = Some l ->
        Vptr { obj = p.obj; lo = p.lo; hi = p.hi }
      | _ -> Vtop
    in
    set_val st dst v
  | Icmp { dst; _ } -> set_val st dst (Vint (0, 1))
  | Iload { dst; _ } -> set_val st dst Vtop
  | Islot { dst; slot } ->
    (match Hashtbl.find_opt fe.fe_slot_obj slot with
     | Some id when m.am_slots ->
       set_val st dst (Vptr { obj = id; lo = 0; hi = 0 })
     | _ -> set_val st dst Vtop)
  | Igep { dst; base; idx; info } ->
    (match aval base with
     | Vptr { obj; lo; hi } ->
       let delta =
         match info, idx with
         | Gfield { off; _ }, _ -> Some (off, off)
         | Gindex { elem_size; _ }, Some ix ->
           (match aval ix with
            | Vint (l, h) ->
              (match
                 Scev.mul_no_ov l elem_size, Scev.mul_no_ov h elem_size
               with
               | Some a, Some b -> Some (min a b, max a b)
               | _ -> None)
            | _ -> None)
         | Gindex _, None -> None
       in
       set_val st dst
         (match delta with
          | Some d -> shift_ptr ~obj ~lo ~hi d
          | None -> Vptr { obj; lo = min_int; hi = max_int })
     | _ -> set_val st dst Vtop)
  | Istore _ -> st
  | Icall { dst; callee; args } ->
    let st =
      if List.mem callee m.am_call_frees then free_arg st (List.nth_opt args 0)
      else st
    in
    (match List.assoc_opt callee m.am_call_allocs with
     | Some _ ->
       let id = Hashtbl.find_opt fe.fe_call_obj (bid, !ord) in
       incr ord;
       (match dst with
        | Some d ->
          set_val st d
            (match id with
             | Some obj -> Vptr { obj; lo = 0; hi = 0 }
             | None -> Vtop)
        | None -> st)
     | None ->
       let st =
         if List.mem callee m.am_call_frees || fe.fe_cx.cx_pure callee then st
         else { st with s_freed = Int_set.union st.s_freed fe.fe_escaped }
       in
       (match dst with Some d -> set_val st d Vtop | None -> st))
  | Iintrin { dst; name; args; site; _ } ->
    if is_telemetry_marker name then st
    else if List.mem_assoc name m.am_checks then
      (match dst with
       | Some d ->
         set_val st d (if m.am_check_alias then arg0_aval args else Vtop)
       | None -> st)
    else if List.mem_assoc name m.am_allocs then begin
      (* realloc-style: the free leg applies before the fresh object *)
      let st =
        if List.mem name m.am_frees then free_arg st (List.nth_opt args 0)
        else st
      in
      match dst with
      | Some d ->
        set_val st d
          (match Hashtbl.find_opt fe.fe_site_obj site with
           | Some obj -> Vptr { obj; lo = 0; hi = 0 }
           | None -> Vtop)
      | None -> st
    end
    else if List.mem name m.am_frees then begin
      let st = free_arg st (List.nth_opt args 0) in
      match dst with Some d -> set_val st d Vtop | None -> st
    end
    else if List.mem name m.am_aliases then
      (match dst with
       | Some d -> set_val st d (arg0_aval args)
       | None -> st)
    else if
      match m.am_gpt_load with
      | Some g -> String.equal g name
      | None -> false
    then
      (match dst, args with
       | Some d, Imm k :: _ ->
         set_val st d
           (match Hashtbl.find_opt fe.fe_cx.cx_gpt k with
            | Some gname ->
              (match Hashtbl.find_opt fe.fe_glob_obj gname with
               | Some obj -> Vptr { obj; lo = 0; hi = 0 }
               | None -> Vtop)
            | None -> Vtop)
       | Some d, _ -> set_val st d Vtop
       | None, _ -> st)
    else if
      (match m.am_global_make with
       | Some g -> String.equal g name
       | None -> false)
      || List.mem name m.am_opaque
    then (match dst with Some d -> set_val st d Vtop | None -> st)
    else begin
      (* unclassified intrinsic: worst case *)
      let extra =
        List.fold_left
          (fun acc a ->
             match a with
             | Reg r when r < Array.length fe.fe_derived ->
               Int_set.union acc fe.fe_derived.(r)
             | _ -> acc)
          Int_set.empty args
      in
      let st =
        { st with
          s_freed =
            Int_set.union st.s_freed (Int_set.union fe.fe_escaped extra) }
      in
      match dst with Some d -> set_val st d Vtop | None -> st
    end

let transfer_block (fe : fenv) (b : block) (st0 : state)
    ~(record : (int -> state -> instr -> unit) option) : state =
  let ord = ref 0 in
  List.fold_left
    (fun st i ->
       (match record, i with
        | Some k, Iintrin { site; _ } when site >= 0 -> k site st i
        | _ -> ());
       transfer fe b.b_id ord st i)
    st0 b.b_instrs

(* --- driver ------------------------------------------------------------- *)

let widen_threshold = 3

let analyze ?fuel (cx : ctx) (f : func) : summary =
  let objs, slot_obj, site_obj, call_obj, glob_obj = discover cx f in
  let derived, escaped =
    derive_and_escape ?fuel cx f ~objs ~slot_obj ~site_obj ~call_obj
      ~glob_obj
  in
  let fe =
    { fe_cx = cx; fe_objs = objs; fe_slot_obj = slot_obj;
      fe_site_obj = site_obj; fe_call_obj = call_obj;
      fe_glob_obj = glob_obj; fe_derived = derived; fe_escaped = escaped }
  in
  let cfg = Cfg.build f in
  let nb = Array.length f.f_blocks in
  let in_state : state option array = Array.make nb None in
  let updates = Array.make nb 0 in
  if nb > 0 then
    in_state.(0) <- Some { s_regs = Int_map.empty; s_freed = Int_set.empty };
  let changed = ref true in
  while !changed do
    changed := false;
    Fuel.burn fuel (Array.length cfg.Cfg.rpo);
    Array.iter
      (fun bid ->
         match in_state.(bid) with
         | None -> ()
         | Some st ->
           let out = transfer_block fe f.f_blocks.(bid) st ~record:None in
           List.iter
             (fun succ ->
                match in_state.(succ) with
                | None ->
                  in_state.(succ) <- Some out;
                  changed := true
                | Some old ->
                  let j = join_state old out in
                  if not (state_leq j old) then begin
                    updates.(succ) <- updates.(succ) + 1;
                    in_state.(succ) <-
                      Some
                        (if updates.(succ) > widen_threshold then
                           widen_state old j
                         else j);
                    changed := true
                  end)
             (successors f.f_blocks.(bid).b_term))
      cfg.Cfg.rpo
  done;
  let sites : (int, state) Hashtbl.t = Hashtbl.create 32 in
  let facts = ref 0 in
  Array.iter
    (fun bid ->
       match in_state.(bid) with
       | None -> ()
       | Some st ->
         ignore
           (transfer_block fe f.f_blocks.(bid) st
              ~record:
                (Some
                   (fun site st i ->
                      Hashtbl.replace sites site st;
                      match i with
                      | Iintrin { name; args = Reg p :: _; _ }
                        when List.mem_assoc name cx.cx_model.am_checks ->
                        (match regval st p with
                         | Vptr _ -> incr facts
                         | _ -> ())
                      | _ -> ())))
         |> ignore)
    cfg.Cfg.rpo;
  { su_func = f.f_name; su_objs = objs; su_block_in = in_state;
    su_sites = sites; su_facts = !facts }

(* --- pretty printing ---------------------------------------------------- *)

let bstr v =
  if v = min_int then "-inf"
  else if v = max_int then "+inf"
  else string_of_int v

let pp_val objs fmt = function
  | Vtop -> Format.pp_print_string fmt "top"
  | Vint (l, h) ->
    if l = h then Format.fprintf fmt "int %d" l
    else Format.fprintf fmt "int [%s,%s]" (bstr l) (bstr h)
  | Vptr { obj; lo; hi } ->
    let desc =
      if obj < Array.length objs then objs.(obj).o_desc
      else Printf.sprintf "obj%d" obj
    in
    Format.fprintf fmt "ptr %s+[%s,%s]" desc (bstr lo) (bstr hi)

let pp_summary fmt (su : summary) =
  Format.fprintf fmt "function %s (%d facts)@." su.su_func su.su_facts;
  Array.iter
    (fun o ->
       Format.fprintf fmt "  obj %d: %s size %s%s@." o.o_id o.o_desc
         (if o.o_size >= 0 then string_of_int o.o_size else "?")
         (if o.o_escapes then " escapes" else ""))
    su.su_objs;
  Array.iteri
    (fun bid st ->
       match st with
       | None -> ()
       | Some st ->
         if not (Int_map.is_empty st.s_regs && Int_set.is_empty st.s_freed)
         then begin
           Format.fprintf fmt "  block %d:@." bid;
           Int_map.iter
             (fun r v ->
                Format.fprintf fmt "    r%d = %a@." r (pp_val su.su_objs) v)
             st.s_regs;
           if not (Int_set.is_empty st.s_freed) then
             Format.fprintf fmt "    freed: {%s}@."
               (String.concat ","
                  (List.map string_of_int (Int_set.elements st.s_freed)))
         end)
    su.su_block_in

(* Static analyses over Tir shared by the optimizer and the sanitizers:

   - slot safety: which stack slots need sanitizer protection (the paper:
     "the distinction between safe and unsafe objects on the stack is
     based on whether their addresses are taken or their accesses can be
     statically guaranteed to be in-bounds");
   - global safety: the same classification for globals;
   - register use maps (which blocks use a register), needed by the
     sub-object narrowing to prove a field pointer does not escape. *)

open Ir

module Int_set = Set.Make (Int)

(* A slot is SAFE when every [Islot] result is consumed only by
   - a direct full-width load/store of the slot (scalar access), or
   - a statically in-bounds gep whose result is itself only loaded/stored.
   Anything else (escaping into a call, being stored as a value, variable
   indexing, pointer arithmetic) makes it unsafe. *)
let compute_slot_safety (f : func) : unit =
  let unsafe = Array.make (List.length f.f_slots) false in
  let mark_unsafe s = unsafe.(s) <- true in
  Array.iter
    (fun b ->
       (* map reg -> slot id for Islot results, and reg -> (slot, static
          in-bounds) for geps rooted at a slot, within this block;
          conservative across blocks: any register that reaches a block
          boundary while rooted at a slot marks the slot unsafe. *)
       let slot_of : (int, int) Hashtbl.t = Hashtbl.create 8 in
       let live_at_end : (int, int) Hashtbl.t = Hashtbl.create 8 in
       let consume r = Hashtbl.remove live_at_end r in
       List.iter
         (fun i ->
            (* any use of a rooted register in a non-load/store position
               marks the slot unsafe *)
            let handle_generic_uses () =
              List.iter
                (fun r ->
                   match Hashtbl.find_opt slot_of r with
                   | Some s -> mark_unsafe s; consume r
                   | None -> ())
                (uses i)
            in
            (match i with
             | Islot { dst; slot } ->
               Hashtbl.replace slot_of dst slot;
               Hashtbl.replace live_at_end dst slot
             | Iload { addr = Reg r; _ } when Hashtbl.mem slot_of r ->
               consume r
             | Istore { addr = Reg r; src; _ } ->
               (* the address position is fine; the value position is an
                  escape *)
               (match src with
                | Reg rs ->
                  (match Hashtbl.find_opt slot_of rs with
                   | Some s -> mark_unsafe s; consume rs
                   | None -> ())
                | Imm _ | Glob _ -> ());
               if Hashtbl.mem slot_of r then consume r
             | Igep { dst; base = Reg r; idx; info } when Hashtbl.mem slot_of r
               ->
               let s = Hashtbl.find slot_of r in
               let in_bounds =
                 match info, idx with
                 | Gfield _, _ -> true
                 | Gindex { elem_size; count = Some n }, Some (Imm k) ->
                   k >= 0 && k < n && elem_size > 0
                 | Gindex _, _ -> false
               in
               if in_bounds then begin
                 (* result remains rooted at the same slot *)
                 Hashtbl.replace slot_of dst s;
                 Hashtbl.replace live_at_end dst s
               end
               else mark_unsafe s;
               consume r
             | _ ->
               handle_generic_uses ());
            (* a redefinition of a rooted register kills the rooting *)
            (match defs i with
             | Some d when (match i with Islot _ -> false
                                       | Igep { base = Reg r; _ } ->
                                         not (Hashtbl.mem slot_of r)
                                       | _ -> true) ->
               Hashtbl.remove slot_of d;
               Hashtbl.remove live_at_end d
             | _ -> ()))
         b.b_instrs;
       (* rooted registers used by the terminator escape *)
       List.iter
         (fun r ->
            match Hashtbl.find_opt slot_of r with
            | Some s -> mark_unsafe s
            | None -> ())
         (term_uses b.b_term);
       (* registers still rooted at the end of the block may flow to other
          blocks: conservatively unsafe if actually used elsewhere *)
       Hashtbl.iter
         (fun r s ->
            let used_elsewhere = ref false in
            Array.iter
              (fun b' ->
                 if b'.b_id <> b.b_id then begin
                   List.iter
                     (fun i -> if List.mem r (uses i) then used_elsewhere := true)
                     b'.b_instrs;
                   if List.mem r (term_uses b'.b_term) then
                     used_elsewhere := true
                 end)
              f.f_blocks;
            if !used_elsewhere then mark_unsafe s)
         live_at_end)
    f.f_blocks;
  List.iter (fun s -> s.s_unsafe <- unsafe.(s.s_id)) f.f_slots

(* A global is UNSAFE when it is an array/struct, or when its address is
   used in any position other than a direct scalar load/store. *)
let compute_global_safety (m : modul) : unit =
  let unsafe : (string, unit) Hashtbl.t = Hashtbl.create 17 in
  List.iter
    (fun g ->
       match g.g_ty with
       | Minic.Ast.Tarr _ | Tstruct _ -> Hashtbl.replace unsafe g.g_name ()
       | _ -> ())
    m.m_globals;
  iter_funcs m (fun f ->
      Array.iter
        (fun b ->
           List.iter
             (fun i ->
                let mark o =
                  match o with
                  | Glob name -> Hashtbl.replace unsafe name ()
                  | Reg _ | Imm _ -> ()
                in
                match i with
                | Iload { addr = Glob _; _ } -> ()
                | Istore { addr = Glob _; src; _ } -> mark src
                | Iload _ -> ()
                | Istore { src; _ } -> mark src
                | Imov { src; _ } -> mark src
                | Ibin { a; b = b'; _ } | Icmp { a; b = b'; _ } ->
                  mark a; mark b'
                | Isext { src; _ } -> mark src
                | Islot _ -> ()
                | Igep { base; idx; _ } ->
                  mark base;
                  Option.iter mark idx
                | Icall { args; _ } | Iintrin { args; _ } ->
                  List.iter mark args)
             b.b_instrs)
        f.f_blocks);
  List.iter
    (fun g -> g.g_unsafe <- Hashtbl.mem unsafe g.g_name)
    m.m_globals

(* Blocks (by id) in which register [r] appears as a use, over the whole
   function. *)
let blocks_using (f : func) : (int, Int_set.t) Hashtbl.t =
  let map : (int, Int_set.t) Hashtbl.t = Hashtbl.create 64 in
  let add r b =
    let s = Option.value (Hashtbl.find_opt map r) ~default:Int_set.empty in
    Hashtbl.replace map r (Int_set.add b s)
  in
  Array.iter
    (fun b ->
       List.iter (fun i -> List.iter (fun r -> add r b.b_id) (uses i))
         b.b_instrs;
       List.iter (fun r -> add r b.b_id) (term_uses b.b_term))
    f.f_blocks;
  map

(* --- interprocedural metadata purity ------------------------------------ *)

(* Builtins that cannot touch sanitizer metadata: they neither allocate
   nor free, and only read the memory their pointer arguments describe.
   A call to one of these leaves every tag-check fact intact -- the
   checked registers, the metadata table and any shadow state are
   exactly as before the call. *)
let metadata_neutral_builtins =
  [ "printf"; "puts"; "putchar"; "getchar"; "strlen"; "strcmp"; "strncmp";
    "memcmp"; "wcslen"; "wcscmp"; "abs"; "atoi"; "rand"; "srand" ]

(* [pure_callees m ~is_hazard] memoizes, for every callee name, whether
   a call to it can disturb sanitizer metadata.  A function is pure when
   its body (transitively) contains no hazard intrinsic and calls only
   pure things; an undefined callee is pure only when it is a
   metadata-neutral builtin (the allocator family in particular is
   not); external stubs and recursive cycles are conservatively impure.
   Both Checkopt (keeping straight-line facts live across calls) and
   Verify (accepting exactly those facts) use this same closure, so the
   optimizer cannot out-reason its certifier. *)
let pure_callees (m : modul) ~(is_hazard : string -> bool) :
  string -> bool =
  let memo : (string, bool) Hashtbl.t = Hashtbl.create 17 in
  let in_progress : (string, unit) Hashtbl.t = Hashtbl.create 7 in
  let rec pure name =
    match Hashtbl.find_opt memo name with
    | Some v -> v
    | None ->
      if Hashtbl.mem in_progress name then false
      else begin
        let v =
          match Hashtbl.find_opt m.m_funcs name with
          | None -> List.mem name metadata_neutral_builtins
          | Some f when f.f_external -> false
          | Some f ->
            Hashtbl.replace in_progress name ();
            let ok = ref true in
            Array.iter
              (fun b ->
                 List.iter
                   (fun i ->
                      match i with
                      | Iintrin { name = n; _ } ->
                        if is_hazard n then ok := false
                      | Icall { callee; _ } ->
                        if not (pure callee) then ok := false
                      | _ -> ())
                   b.b_instrs)
              f.f_blocks;
            Hashtbl.remove in_progress name;
            !ok
        in
        Hashtbl.replace memo name v;
        v
      end
  in
  pure

let run (m : modul) : unit =
  iter_funcs m (fun f -> if not f.f_external then compute_slot_safety f);
  compute_global_safety m

(** Tir.Absint: flow-sensitive abstract interpretation for certified
    check elision (DESIGN.md section 16).

    Three cooperating domains over a sanitizer-instrumented function:

    - {b value ranges}: integer registers carry intervals, pointer
      registers carry an abstract object plus a byte-offset interval;
    - {b points-to / escape}: every allocation site (stack slot,
      allocator intrinsic, modeled allocator call, global) becomes an
      abstract object; a flow-insensitive closure decides which objects
      each register may derive from and which objects escape;
    - {b temporal liveness}: the flow-sensitive freed-set tracks which
      objects a modeled free may already have released at each point.

    The sanitizer under analysis is described by a {!model} -- which
    intrinsics check, allocate, free, alias or are metadata-neutral --
    so the same interpreter serves any tool that provides one.
    [Sanitizer.Checkopt] uses the results to elide or downgrade checks
    (each with a {!Witness.t}), and [Tir.Verify] independently re-runs
    the analysis on the post-optimization IR to replay every witness. *)

module Int_map : Map.S with type key = int
module Int_set : Set.S with type elt = int

(** How a modeled allocator derives its byte size from its argument
    list: [Sarg k] reads argument [k], [Sprod (i, j)] multiplies
    arguments [i] and [j] (calloc). Non-immediate arguments or
    overflowing products yield an unknown size. *)
type size_rule = Sarg of int | Sprod of int * int

(** Metadata semantics of one sanitizer's intrinsics and runtime
    calls.  Any intrinsic not classified here is treated as worst-case:
    its arguments escape and every escaped object may be freed. *)
type model = {
  am_checks : (string * string option) list;
      (** check intrinsic name -> its spatial-only variant, if the tool
          has one ([None] = not downgradable). Spatial variants must
          themselves appear as keys mapping to [None]. *)
  am_check_alias : bool;
      (** checks return the (possibly stripped) checked pointer in
          their destination register *)
  am_allocs : (string * size_rule) list;
      (** intrinsics whose destination is a fresh object *)
  am_frees : string list;
      (** intrinsics that free the object of argument 0 (a name may
          appear in both [am_allocs] and [am_frees]: realloc) *)
  am_aliases : string list;
      (** intrinsics whose destination aliases argument 0 *)
  am_opaque : string list;
      (** metadata-neutral intrinsics; destination becomes unknown *)
  am_call_allocs : (string * size_rule) list;
      (** ordinary calls (builtin allocators) returning fresh objects *)
  am_call_frees : string list;
      (** ordinary calls freeing the object of argument 0 *)
  am_gpt_load : string option;
      (** intrinsic loading a tagged global pointer from the GPT; its
          immediate argument indexes the table built by
          [am_global_make] sites *)
  am_global_make : string option;
      (** intrinsic registering global [Glob g; size; Imm index] *)
  am_strip_mask : int option;
      (** [p land mask] preserves the pointed-to object *)
  am_slots : bool;
      (** [Islot] results point at the declared slot ([false] when the
          tool relocates slot data, e.g. redzone-padded slots) *)
}

(** Abstract value of a register. *)
type aval =
  | Vtop  (** unknown *)
  | Vint of int * int  (** integer in [lo, hi] *)
  | Vptr of { obj : int; lo : int; hi : int }
      (** pointer into object [obj] at byte offset in [lo, hi] *)

(** An abstract object.  [o_desc] is a stable descriptor (stable across
    Checkopt's own rewrites, so optimizer and verifier agree):
    "slot:<name>:<id>", "<intrinsic>#<site>", "call:<callee>:b<id>:<n>"
    or "global:<name>".  [o_size] is -1 when unknown. *)
type obj = {
  o_id : int;
  o_desc : string;
  o_size : int;
  mutable o_escapes : bool;
}

type state = {
  s_regs : aval Int_map.t;  (** missing register = [Vtop] *)
  s_freed : Int_set.t;      (** objects a free may have released *)
}

type summary = {
  su_func : string;
  su_objs : obj array;
  su_block_in : state option array;
      (** fixpoint state at each block entry; [None] = unreachable *)
  su_sites : (int, state) Hashtbl.t;
      (** state immediately before each intrinsic site *)
  su_facts : int;
      (** check sites whose pointer argument carries a [Vptr] fact *)
}

type ctx

val make_ctx : model -> pure:(string -> bool) -> Ir.modul -> ctx
(** Whole-program context: scans the module for [am_global_make] sites
    (GPT index -> global) and global sizes.  [pure] is the
    metadata-purity closure from {!Analysis.pure_callees}. *)

val analyze : ?fuel:Fuel.t -> ctx -> Ir.func -> summary
(** Run all three domains to fixpoint (widening after a bounded number
    of joins per block, so termination is unconditional). *)

val regval : state -> int -> aval

val in_bounds : lo:int -> hi:int -> size:int -> objsize:int -> bool
(** Overflow-guarded: every access of [size] bytes at an offset in
    [lo, hi] stays inside an object of [objsize] bytes.  The single
    bounds predicate shared by Checkopt's elision and Verify's witness
    replay. *)

val pp_summary : Format.formatter -> summary -> unit
(** Human-readable dump backing [cecsan_cli --dump-absint]. *)

(** Static certification of instrumented modules: an IR well-formedness
    lint plus a check-coverage dataflow that proves every unsafe access
    is covered by a sanitizer check whose statically-derived range
    contains it (translation validation for the section II.F
    optimizations).  See DESIGN.md section 11. *)

type spec = {
  check_load : string;            (** load-check intrinsic name *)
  check_store : string;           (** store-check intrinsic name *)
  produces_addr : bool;           (** check dst = stripped address *)
  strip_mask : int;               (** mask replacing an elided strip *)
  may_hoist_stores : bool;        (** store checks may leave their block *)
  hazard_intrinsics : string list;
  (** runtime calls that change metadata and kill coverage facts *)
  extcall_strip : string option;
  (** when set, pointer args of external calls must route through this
      strip intrinsic *)
  absint : Absint.model option;
  (** abstract-interpretation model of the tool's intrinsics.  When
      set, every {!Witness.t} on the module is replayed against an
      independent [Absint] run over the post-optimization IR, validated
      witnesses regenerate the elided checks' coverage facts, and every
      spatial-only (downgraded) check site must carry a valid
      downgrade certificate.  [None] rejects any witness outright. *)
}

type error = {
  e_func : string;
  e_block : int;                  (** -1 for function-level errors *)
  e_what : string;
}

type report = {
  r_errors : error list;
  r_accesses : int;               (** unsafe accesses under obligation *)
  r_covered : int;                (** accesses proven covered *)
  r_funcs : int;                  (** non-external functions examined *)
  r_witnesses : int;              (** elision witnesses successfully replayed *)
}

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val well_formed : ?fuel:Fuel.t -> Ir.modul -> error list
(** Lint only: structure, register/slot/global/callee resolution, size
    sanity, return arity, definite assignment.  [fuel] bounds the
    dataflow fixpoints; exhaustion raises {!Fuel.Exhausted}. *)

val coverage : ?fuel:Fuel.t -> spec -> Ir.modul -> report
(** Coverage dataflow only (no lint errors in the report). *)

val check : ?spec:spec -> ?fuel:Fuel.t -> Ir.modul -> report
(** [well_formed] plus, when [spec] is given, [coverage]; errors
    concatenated, counters from the coverage half.  [fuel] bounds both
    dataflow fixpoints deterministically. *)

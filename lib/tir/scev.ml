(* Mini scalar-evolution and constant-propagation toolkit, extracted
   from the section II.F check optimizer so the static verifier
   (Tir.Verify) can re-derive the optimizer's reasoning independently.

   Everything here is flow-insensitive over single-definition registers:
   a register defined exactly once in the function resolves through
   value-preserving moves/extensions; anything multiply defined is its
   own canonical representative. *)

open Ir

type defs = (int, instr option) Hashtbl.t

(* Map reg -> its single defining instruction across the function; regs
   with several defs map to None. *)
let single_defs (f : func) : defs =
  let defs_map : defs = Hashtbl.create 32 in
  Array.iter
    (fun b ->
       List.iter
         (fun i ->
            match defs i with
            | Some d ->
              if Hashtbl.mem defs_map d then Hashtbl.replace defs_map d None
              else Hashtbl.replace defs_map d (Some i)
            | None -> ())
         b.b_instrs)
    f.f_blocks;
  defs_map

(* Resolve a register through value-preserving moves/extensions.
   [strip_mask]: additionally resolve through [r' = r land mask] -- the
   verifier treats a tag-stripped pointer as an alias of the tagged one
   (same object, same accessible range). *)
let rec canon ?strip_mask (defs_map : defs) r =
  match Hashtbl.find_opt defs_map r with
  | Some (Some (Imov { src = Reg s; _ })) -> canon ?strip_mask defs_map s
  | Some (Some (Isext { src = Reg s; bytes; _ })) when bytes >= 4 ->
    canon ?strip_mask defs_map s
  | Some (Some (Ibin { op = And; a = Reg s; b = Imm m; _ }))
    when (match strip_mask with Some mask -> m = mask | None -> false) ->
    canon ?strip_mask defs_map s
  | _ -> r

(* A register whose (single) definition is a compile-time constant,
   resolved through moves/extensions: the mini constant propagation that
   lets loop bounds held in named variables count as "statically
   determined". *)
let const_of (defs_map : defs) r : int option =
  match Hashtbl.find_opt defs_map (canon defs_map r) with
  | Some (Some (Imov { src = Imm v; _ }))
  | Some (Some (Isext { src = Imm v; _ })) -> Some v
  | _ -> None

(* --- overflow-guarded endpoint arithmetic ------------------------------- *)

(* OCaml ints wrap silently; endpoint math near max_int must not.  Each
   helper returns None instead of a wrapped result, and both the
   optimizer and the verifier go through the SAME functions so neither
   can accept an endpoint the other would reject. *)

let add_no_ov a b =
  let s = a + b in
  if (b > 0 && s < a) || (b < 0 && s > a) then None else Some s

let sub_no_ov a b =
  let s = a - b in
  if (b < 0 && s < a) || (b > 0 && s > a) then None else Some s

let mul_no_ov a b =
  if a = 0 || b = 0 then Some 0
  else if a = min_int || b = min_int then None
    (* min_int products either wrap or make the [p / b] probe itself
       overflow (min_int / -1); reject them outright *)
  else
    let p = a * b in
    if p / b = a then Some p else None

(* Last induction value in [start, bound) with stride [step]:
   start + ((bound - 1 - start) / step) * step.  None on a non-positive
   stride, a zero-trip-count loop, or any intermediate overflow. *)
let last_index ~start ~bound ~step =
  if step <= 0 || bound <= start then None
  else
    match sub_no_ov bound 1 with
    | None -> None
    | Some bm1 ->
      (match sub_no_ov bm1 start with
       | None -> None
       | Some span ->
         (* span >= 0, span/step*step <= span: start + it <= bm1 and
            cannot wrap *)
         Some (start + span / step * step))

(* First/last byte offsets of the access pattern
   [iv*elem_size + off, iv in start..bound) step step].  None whenever
   the loop has no iterations or any endpoint computation overflows. *)
let endpoint_offsets ~start ~bound ~step ~elem_size ~off =
  match last_index ~start ~bound ~step with
  | None -> None
  | Some last ->
    (match mul_no_ov start elem_size, mul_no_ov last elem_size with
     | Some a, Some b ->
       (match add_no_ov a off, add_no_ov b off with
        | Some x, Some y -> Some (x, y)
        | _ -> None)
     | _ -> None)

type induction = { iv : int; start : int option; step : int }

(* The unique start value of [iv] found from definitions outside the
   loop: Some v when exactly one constant def exists, None otherwise. *)
let start_of (f : func) (l : Cfg.loop) iv : int option =
  let start = ref None in
  let multiple = ref false in
  Array.iter
    (fun b ->
       if not (List.mem b.b_id l.Cfg.body) then
         List.iter
           (fun i ->
              match defs i with
              | Some d when d = iv ->
                (match i with
                 | Imov { src = Imm v; _ } | Isext { src = Imm v; _ } ->
                   if !start = None then start := Some v else multiple := true
                 | _ -> multiple := true)
              | _ -> ())
           b.b_instrs)
    f.f_blocks;
  if !multiple then None else !start

(* Recognizes [iv = iv + step] (modulo moves/sexts) as the only real
   definition of [iv] inside the loop, with the start value found from
   the unique definition reaching the preheader. *)
let induction_of (f : func) (l : Cfg.loop) (defs_map : defs) (r : int) :
  induction option =
  let iv = canon defs_map r in
  (* collect real (non-move) defs of iv inside the loop *)
  let in_loop_defs = ref [] in
  List.iter
    (fun bid ->
       List.iter
         (fun i ->
            match defs i with
            | Some d when d = iv ->
              (match i with
               | Imov { src = Reg s; _ } when canon defs_map s = iv -> ()
               | Isext { src = Reg s; bytes; _ }
                 when bytes >= 4 && canon defs_map s = iv -> ()
               | _ -> in_loop_defs := i :: !in_loop_defs)
            | _ -> ())
         f.f_blocks.(bid).b_instrs)
    l.Cfg.body;
  match !in_loop_defs with
  | [ Ibin { op = Add; a = Reg x; b = Imm step; _ } ]
    when canon defs_map x = iv && step > 0 ->
    Some { iv; start = start_of f l iv; step }
  | [ Isext { src = Reg x; _ } ] ->
    (match Hashtbl.find_opt defs_map (canon defs_map x) with
     | Some (Some (Ibin { op = Add; a = Reg y; b = Imm step; _ }))
       when canon defs_map y = iv && step > 0 ->
       Some { iv; start = start_of f l iv; step }
     | _ -> None)
  | _ -> None

(* Static trip bound: header terminates on [iv < N] (or [iv <= N-1]). *)
let static_bound (f : func) (l : Cfg.loop) (defs_map : defs) iv : int option =
  let bound_value = function
    | Imm n -> Some n
    | Reg rn -> const_of defs_map rn
    | Glob _ -> None
  in
  match f.f_blocks.(l.Cfg.header).b_term with
  | Tcbr (Reg c, _, _) ->
    (match Hashtbl.find_opt defs_map c with
     | Some (Some (Icmp { op = Lt; a = Reg x; b; _ }))
       when canon defs_map x = iv -> bound_value b
     | Some (Some (Icmp { op = Le; a = Reg x; b; _ }))
       when canon defs_map x = iv ->
       (* iv <= max_int has no representable exclusive bound *)
       Option.bind (bound_value b) (fun n -> add_no_ov n 1)
     | _ -> None)
  | _ -> None

(* Resolve the definition chain of a checked address to an affine form
   [base + iv*elem_size + off]: either a direct indexed gep, or an
   indexed gep wrapped by a constant field offset (struct-array
   patterns like a[i].field).  [invariant] filters/canonicalizes the
   base operand (the optimizer requires it loop-invariant; the verifier
   passes a plain canonicalizer). *)
let affine_of ?strip_mask (defs_map : defs)
    (invariant : opnd -> opnd option) (p : opnd) :
  (opnd * int * int * int) option =
  match p with
  | Imm _ | Glob _ -> None
  | Reg pr ->
    let pr = canon ?strip_mask defs_map pr in
    let direct r =
      match Hashtbl.find_opt defs_map r with
      | Some (Some (Igep { base; idx = Some (Reg ir);
                           info = Gindex { elem_size; _ }; _ })) ->
        (match invariant base with
         | Some base' -> Some (base', elem_size, ir, 0)
         | None -> None)
      | _ -> None
    in
    (match direct pr with
     | Some a -> Some a
     | None ->
       (* field wrap: p = gep (gep base (iv x es)) +off *)
       (match Hashtbl.find_opt defs_map pr with
        | Some (Some (Igep { base = Reg rb; idx = None;
                             info = Gfield { off; _ }; _ })) ->
          (match direct (canon ?strip_mask defs_map rb) with
           | Some (base', es, ir, o) -> Some (base', es, ir, o + off)
           | None -> None)
        | _ -> None))

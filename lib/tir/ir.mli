(** Tir: the typed, register-based intermediate representation.

    Plays the role of LLVM IR in the paper: MiniC is lowered to it,
    sanitizer instrumentation is an IR-to-IR transform, the section II.F
    optimizations are IR passes, and the VM interprets it under the
    deterministic cost model.  Functions are arrays of basic blocks over
    an infinite, non-SSA register file; locals live in stack [slot]s
    until [Promote] (the -O2 model) moves the safe scalars into
    registers. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | And | Or | Xor

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type opnd =
  | Reg of int
  | Imm of int
  | Glob of string  (** address of a global symbol *)

(** Static information on pointer derivations, used by sub-object
    narrowing and the type-info check elision. *)
type gep_info =
  | Gfield of {
      off : int;     (** byte offset of the field *)
      fsize : int;   (** byte size of the field *)
      fname : string;
      sname : string;
    }
  | Gindex of {
      elem_size : int;
      count : int option;  (** static element count of the base, if known *)
    }

type instr =
  | Imov of { dst : int; src : opnd }
  | Ibin of { op : binop; dst : int; a : opnd; b : opnd }
  | Icmp of { op : cmpop; dst : int; a : opnd; b : opnd }
  | Isext of { dst : int; src : opnd; bytes : int }
      (** sign-extend a [bytes]-wide value to the full word (also the
          truncation used when promoted narrow slots are stored) *)
  | Iload of { dst : int; addr : opnd; size : int; signed : bool; safe : bool }
      (** [safe]: statically provably in bounds of a named object --
          sanitizers with the II.F.2 optimization may elide the check *)
  | Istore of { addr : opnd; src : opnd; size : int; safe : bool }
  | Islot of { dst : int; slot : int }  (** address of a stack slot *)
  | Igep of { dst : int; base : opnd; idx : opnd option; info : gep_info }
  | Icall of { dst : int option; callee : string; args : opnd list }
  | Iintrin of { dst : int option; name : string; args : opnd list; site : int }
      (** sanitizer runtime call; [site] keys per-site runtime state *)

type term =
  | Tret of opnd option
  | Tbr of int
  | Tcbr of opnd * int * int

type block = {
  b_id : int;
  mutable b_instrs : instr list;
  mutable b_term : term;
}

type slot = {
  s_id : int;
  s_name : string;
  s_size : int;
  s_align : int;
  s_ty : Minic.Ast.ty;
  mutable s_unsafe : bool;
      (** address-taken or variably indexed: needs protection *)
}

type func = {
  f_name : string;
  f_params : int list;  (** registers receiving the arguments *)
  mutable f_nregs : int;
  mutable f_slots : slot list;
  mutable f_blocks : block array;
  f_external : bool;    (** uninstrumented (legacy) code *)
  f_ret_void : bool;
  f_sig_ptrs : bool list;
      (** which parameters are pointers: needed at external boundaries *)
  f_ret_ptr : bool;
}

type global = {
  g_name : string;
  g_size : int;
  g_align : int;
  g_image : bytes;       (** initial contents *)
  g_ty : Minic.Ast.ty;
  g_internal : bool;     (** compiler-generated (string literals etc.) *)
  mutable g_unsafe : bool;
}

type vm_cache = ..
(** Extensible memo slot for derived forms of a module (the VM caches
    its resolved code and jit-compiled closures here, keyed by its own
    constructors).  Tir itself never reads it; {!clone} resets it. *)

type modul = {
  mutable m_globals : global list;
  m_funcs : (string, func) Hashtbl.t;
  m_layouts : Minic.Layout.env;
  mutable m_next_site : int;
  mutable m_witnesses : Witness.t list;
      (** elision certificates attached by the optimizer (Checkopt's
          absint phase); {!clone} shares the list, and [Verify] replays
          every entry in Strict mode *)
  mutable m_vcache : vm_cache list;
      (** derived-code memos; see {!vm_cache} and {!clear_vcache} *)
}

val clear_vcache : modul -> unit
(** Drops every cached derived form.  Must be called by any pass that
    mutates a module which may already have been executed (the
    sanitizer gate and the linker do). *)

val fresh_site : modul -> int
(** A unique id for a new instrumentation site. *)

val clone : modul -> modul
(** Deep copy: every mutable structure (blocks, slots, functions, global
    images, the function and layout tables) is duplicated, so rewriting
    the clone leaves the original untouched.  Immutable instructions and
    operands are shared.  Backs the driver's compile-once cache. *)

val fresh_reg : func -> int

val defs : instr -> int option
(** The register defined by an instruction, if any. *)

val uses : instr -> int list
val term_uses : term -> int list
val successors : term -> int list

val find_func : modul -> string -> func option

val iter_funcs : modul -> (func -> unit) -> unit
(** Iterates in deterministic (name-sorted) order. *)

val find_global : modul -> string -> global option

val telemetry_elided : string
(** Marker intrinsic name Checkopt leaves at a site whose check it
    removed as redundant.  Executed natively by the machine at zero
    cycle cost, bumping the site's elided counter. *)

val telemetry_covered : string
(** Marker intrinsic name Checkopt leaves at a site whose work a
    hoisted or endpoint-grouped check now performs. *)

val is_telemetry_marker : string -> bool

val func_size : func -> int
(** Instruction count (terminators included); telemetry markers are
    bookkeeping, not code, and are excluded. *)

val module_size : modul -> int

val site_origins : modul -> (int * string) list
(** Maps every intrinsic site id in the module to an origin label
    "func.bN[i] name", sorted by site id — the source positions behind
    the [--profile] hot-site report. *)

val count_intrins : modul -> (string -> bool) -> int
(** Counts intrinsic call sites whose name satisfies the predicate:
    static check counts before/after optimization. *)

(* Tir.Fuel: deterministic step budgets for pipeline phases.

   The VM already bounds *execution* with [Vm.State.cycle_budget]; every
   other pipeline stage (compile, static verification, program
   generation, tape shrinking) burns fuel instead.  Fuel is a plain
   countdown -- no wall clock anywhere -- so a "timeout" is a property
   of the work itself: a phase that exhausts its budget does so after
   exactly the same step on every run, on every machine, at any job
   count.  That is what lets the supervision layer quarantine
   fuel-exhausted tasks with byte-identical ledgers.

   Phases thread a [t option]; [None] (the default everywhere) burns
   nothing and never trips. *)

type t = {
  phase : string;
  budget : int;
  mutable remaining : int;
}

exception Exhausted of { phase : string; budget : int }

let () =
  Printexc.register_printer (function
      | Exhausted { phase; budget } ->
        Some (Printf.sprintf "Fuel.Exhausted(%s, budget %d)" phase budget)
      | _ -> None)

let make ~phase ~budget =
  let budget = max budget 0 in
  { phase; budget; remaining = budget }

let remaining t = t.remaining

(* Burns [cost] steps; raises once the budget is gone.  The check runs
   after the subtraction so a single oversized burn still trips. *)
let burn (fuel : t option) cost =
  match fuel with
  | None -> ()
  | Some t ->
    t.remaining <- t.remaining - cost;
    if t.remaining < 0 then
      raise (Exhausted { phase = t.phase; budget = t.budget })

(* Tir: the typed, register-based intermediate representation.

   The IR plays the role of LLVM IR in the paper: MiniC is lowered to it,
   sanitizer instrumentation is an IR -> IR transform, the optimizations of
   CECSan section II.F are IR passes, and the VM interprets it with a
   deterministic cost model.

   Shape: a function is an array of basic blocks over an infinite register
   file (non-SSA: registers may be redefined).  Locals live in stack
   [slot]s addressed by [Islot]; a mem2reg-style pass ([Promote]) models
   -O2 by moving non-address-taken scalars into registers. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | And | Or | Xor

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type opnd =
  | Reg of int
  | Imm of int
  | Glob of string   (* address of a global symbol *)

(* Static information attached to pointer derivations, used by the
   sub-object narrowing and the type-info check-elision of CECSan. *)
type gep_info =
  | Gfield of {
      off : int;           (* byte offset of the field *)
      fsize : int;         (* byte size of the field *)
      fname : string;
      sname : string;      (* owning struct *)
    }
  | Gindex of {
      elem_size : int;
      count : int option;  (* static element count of the base, if known *)
    }

type instr =
  | Imov of { dst : int; src : opnd }
  | Ibin of { op : binop; dst : int; a : opnd; b : opnd }
  | Icmp of { op : cmpop; dst : int; a : opnd; b : opnd }
  (* sign-extend a value of [bytes] width to the full word *)
  | Isext of { dst : int; src : opnd; bytes : int }
  | Iload of { dst : int; addr : opnd; size : int; signed : bool; safe : bool }
  | Istore of { addr : opnd; src : opnd; size : int; safe : bool }
  (* address of stack slot [slot] *)
  | Islot of { dst : int; slot : int }
  (* dst = base + off (field) / base + idx*elem_size (index) *)
  | Igep of { dst : int; base : opnd; idx : opnd option; info : gep_info }
  | Icall of { dst : int option; callee : string; args : opnd list }
  (* sanitizer runtime call; [site] is a unique id for per-site state *)
  | Iintrin of { dst : int option; name : string; args : opnd list; site : int }

type term =
  | Tret of opnd option
  | Tbr of int
  | Tcbr of opnd * int * int   (* cond, then-block, else-block *)

type block = {
  b_id : int;
  mutable b_instrs : instr list;
  mutable b_term : term;
}

type slot = {
  s_id : int;
  s_name : string;
  s_size : int;
  s_align : int;
  s_ty : Minic.Ast.ty;
  (* address-taken or variably indexed: needs sanitizer protection *)
  mutable s_unsafe : bool;
}

type func = {
  f_name : string;
  f_params : int list;           (* registers receiving the arguments *)
  mutable f_nregs : int;
  mutable f_slots : slot list;
  mutable f_blocks : block array;
  f_external : bool;             (* uninstrumented code *)
  f_ret_void : bool;
  (* which parameters are pointers, and whether the return is: needed at
     external call boundaries (tag stripping / entry-0 adoption) *)
  f_sig_ptrs : bool list;
  f_ret_ptr : bool;
}

type global = {
  g_name : string;
  g_size : int;
  g_align : int;
  g_image : bytes;               (* initial contents, g_size bytes *)
  g_ty : Minic.Ast.ty;
  g_internal : bool;             (* compiler-generated (literals, GPT) *)
  mutable g_unsafe : bool;
}

(* Downstream consumers (the VM) memoize derived forms of a module --
   resolved code, jit-compiled closures -- directly on the module so
   repeated runs of the same Ir value never re-pay the derivation.  The
   slot is an extensible variant so Tir stays ignorant of what lives in
   it; each consumer adds its own constructor and scans the (tiny) list.
   Any pass that mutates a module after it has been executed must call
   [clear_vcache] (the driver's instrument/optimize gate and the linker
   do). *)
type vm_cache = ..

type modul = {
  mutable m_globals : global list;
  m_funcs : (string, func) Hashtbl.t;
  m_layouts : Minic.Layout.env;
  mutable m_next_site : int;     (* generator for Iintrin site ids *)
  mutable m_witnesses : Witness.t list;
    (* elision certificates attached by Checkopt, replayed by Verify *)
  mutable m_vcache : vm_cache list;
}

let clear_vcache m = m.m_vcache <- []

let fresh_site m =
  let s = m.m_next_site in
  m.m_next_site <- s + 1;
  s

let fresh_reg f =
  let r = f.f_nregs in
  f.f_nregs <- r + 1;
  r

(* --- deep clone --------------------------------------------------------- *)

(* Deep-copies every mutable structure of a module so that instrumenting
   (or otherwise rewriting) the clone cannot be observed through the
   original.  Instructions, terminators and operands are immutable and
   shared; blocks, slots, functions, globals (including the initializer
   image), the function table and the layout table are copied.  This is
   what lets the driver's compile cache hand each sanitizer its own
   module without re-running the front end. *)

let clone_block b = { b_id = b.b_id; b_instrs = b.b_instrs; b_term = b.b_term }

let clone_slot s =
  { s_id = s.s_id; s_name = s.s_name; s_size = s.s_size; s_align = s.s_align;
    s_ty = s.s_ty; s_unsafe = s.s_unsafe }

let clone_func f =
  {
    f_name = f.f_name;
    f_params = f.f_params;
    f_nregs = f.f_nregs;
    f_slots = List.map clone_slot f.f_slots;
    f_blocks = Array.map clone_block f.f_blocks;
    f_external = f.f_external;
    f_ret_void = f.f_ret_void;
    f_sig_ptrs = f.f_sig_ptrs;
    f_ret_ptr = f.f_ret_ptr;
  }

let clone_global g =
  { g_name = g.g_name; g_size = g.g_size; g_align = g.g_align;
    g_image = Bytes.copy g.g_image; g_ty = g.g_ty;
    g_internal = g.g_internal; g_unsafe = g.g_unsafe }

let clone m =
  let funcs = Hashtbl.create (Hashtbl.length m.m_funcs) in
  Hashtbl.iter (fun name f -> Hashtbl.replace funcs name (clone_func f))
    m.m_funcs;
  {
    m_globals = List.map clone_global m.m_globals;
    m_funcs = funcs;
    m_layouts = Hashtbl.copy m.m_layouts;
    m_next_site = m.m_next_site;
    m_witnesses = m.m_witnesses;
    (* a clone is made to be mutated: cached derived code of the
       original must never leak into it *)
    m_vcache = [];
  }

(* --- operand / instruction utilities ----------------------------------- *)

let defs = function
  | Imov { dst; _ } | Ibin { dst; _ } | Icmp { dst; _ } | Isext { dst; _ }
  | Iload { dst; _ } | Islot { dst; _ } | Igep { dst; _ } -> Some dst
  | Icall { dst; _ } | Iintrin { dst; _ } -> dst
  | Istore _ -> None

let opnd_uses = function Reg r -> [ r ] | Imm _ | Glob _ -> []

let uses = function
  | Imov { src; _ } -> opnd_uses src
  | Ibin { a; b; _ } | Icmp { a; b; _ } -> opnd_uses a @ opnd_uses b
  | Isext { src; _ } -> opnd_uses src
  | Iload { addr; _ } -> opnd_uses addr
  | Istore { addr; src; _ } -> opnd_uses addr @ opnd_uses src
  | Islot _ -> []
  | Igep { base; idx; _ } ->
    opnd_uses base @ (match idx with Some o -> opnd_uses o | None -> [])
  | Icall { args; _ } | Iintrin { args; _ } -> List.concat_map opnd_uses args

let term_uses = function
  | Tret (Some o) | Tcbr (o, _, _) -> opnd_uses o
  | Tret None | Tbr _ -> []

let successors = function
  | Tret _ -> []
  | Tbr b -> [ b ]
  | Tcbr (_, a, b) -> if a = b then [ a ] else [ a; b ]

let find_func m name = Hashtbl.find_opt m.m_funcs name

let iter_funcs m f =
  (* deterministic order *)
  let names = Hashtbl.fold (fun k _ acc -> k :: acc) m.m_funcs [] in
  List.iter (fun n -> f (Hashtbl.find m.m_funcs n))
    (List.sort String.compare names)

let find_global m name =
  List.find_opt (fun g -> String.equal g.g_name name) m.m_globals

(* --- telemetry markers --------------------------------------------------- *)

(* Checkopt leaves a zero-operand marker intrinsic at every site whose
   check it removed ([telemetry_elided]) or whose work a hoisted/grouped
   check now performs ([telemetry_covered]).  The machine executes them
   natively at zero cycle cost, bumping the per-site telemetry counters,
   which is what makes the conservation law
   executed(O0) = executed(O2) + elided(O2) + covered(O2) checkable. *)
let telemetry_elided = "__telemetry_elided"
let telemetry_covered = "__telemetry_covered"

let telemetry_prefix = "__telemetry_"

let is_telemetry_marker name =
  String.length name >= String.length telemetry_prefix
  && String.sub name 0 (String.length telemetry_prefix) = telemetry_prefix

(* Total number of instructions in a function/module, used by tests and
   the instrumentation statistics.  Telemetry markers are bookkeeping,
   not code: they are excluded so Checkopt's size effect stays visible. *)
let func_size f =
  Array.fold_left
    (fun acc b ->
       List.fold_left
         (fun acc i ->
            match i with
            | Iintrin { name; _ } when is_telemetry_marker name -> acc
            | _ -> acc + 1)
         (acc + 1) b.b_instrs)
    0 f.f_blocks

let module_size m =
  let n = ref 0 in
  iter_funcs m (fun f -> n := !n + func_size f);
  !n

(* Maps every intrinsic site id present in the module to a stable origin
   label "func.bN[i] name" (function, block, instruction index, intrinsic
   name) for the --profile report.  Telemetry markers keep the ORIGINAL
   site's id, so after Checkopt a site may resolve to its marker -- the
   label still names the source position of the original check.  Sorted
   by site id. *)
let site_origins m : (int * string) list =
  let acc = ref [] in
  iter_funcs m (fun f ->
      Array.iter
        (fun b ->
           List.iteri
             (fun i instr ->
                match instr with
                | Iintrin { name; site; _ } when site >= 0 ->
                  acc :=
                    (site,
                     Printf.sprintf "%s.b%d[%d] %s" f.f_name b.b_id i name)
                    :: !acc
                | _ -> ())
             b.b_instrs)
        f.f_blocks);
  (* one label per site: prefer the first occurrence in program order
     (real checks come before any later duplicate) *)
  let seen = Hashtbl.create 64 in
  List.fold_left
    (fun kept (site, lbl) ->
       if Hashtbl.mem seen site then kept
       else begin
         Hashtbl.replace seen site ();
         (site, lbl) :: kept
       end)
    []
    (List.rev !acc)
  |> List.sort compare

(* Counts intrinsic instructions whose name satisfies [p]: used to report
   static check counts before/after optimization. *)
let count_intrins m p =
  let n = ref 0 in
  iter_funcs m (fun f ->
      Array.iter
        (fun b ->
           List.iter
             (function
               | Iintrin { name; _ } when p name -> incr n
               | _ -> ())
             b.b_instrs)
        f.f_blocks);
  !n

(** Control-flow analyses: predecessors/successors, reverse postorder,
    dominators (Cooper-Harvey-Kennedy) and natural loops, with preheader
    creation.  These power the loop-oriented check optimizations of the
    paper's section II.F. *)

type t = {
  preds : int list array;
  succs : int list array;
  rpo : int array;        (** reverse postorder of reachable blocks *)
  rpo_index : int array;  (** block id -> rpo position, -1 unreachable *)
}

val build : Ir.func -> t

val dominators : t -> int array
(** [idom.(b)] is [b]'s immediate dominator; the entry maps to itself;
    unreachable blocks map to -1. *)

val dominates : int array -> int -> int -> bool
(** [dominates idom a b]: does [a] dominate [b]? *)

type loop = {
  header : int;
  body : int list;    (** block ids, including the header *)
  latches : int list; (** back-edge sources *)
}

val loops : Ir.func -> t -> int array -> loop list
(** Natural loops from back edges, grouped by header, sorted by
    header id. *)

val make_preheader : Ir.func -> t -> loop -> int * t
(** Ensures a dedicated preheader (entry edges redirected into it);
    returns its block id plus a [t] valid for the mutated function.
    When a block is appended, the returned [t] is a fresh rebuild --
    callers iterating over several loops must use it instead of the
    [t] they passed in, which is stale at that point. *)

val regs_defined_in : Ir.func -> loop -> (int, unit) Hashtbl.t
(** Registers defined anywhere inside the loop body. *)

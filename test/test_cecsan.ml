(* CECSan end-to-end tests: every bug class of Table I detected, clean
   programs unaffected, Figure 3 reproduced, the metadata free list
   (Figure 2) verified by property tests, optimizations preserving both
   semantics and detection. *)

let cecsan = Cecsan.sanitizer ()

let run ?lines ?packets ?externs ?(san = cecsan) src =
  Sanitizer.Driver.run san ?lines ?packets ?externs src

let detects ?san ?lines ?packets ?externs name src pred =
  Alcotest.test_case name `Quick (fun () ->
      let r = run ?san ?lines ?packets ?externs src in
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Bug b when pred b.Vm.Report.r_kind -> ()
      | o ->
        Alcotest.failf "expected a CECSan report, got %a"
          Vm.Machine.pp_outcome o)

let clean ?san ?lines ?packets ?externs name src =
  Alcotest.test_case name `Quick (fun () ->
      let r = run ?san ?lines ?packets ?externs src in
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit _ -> ()
      | o ->
        Alcotest.failf "expected a clean exit, got %a" Vm.Machine.pp_outcome o)

let same_result ?(san = cecsan) name src =
  Alcotest.test_case name `Quick (fun () ->
      let r0 = run ~san:Sanitizer.Spec.none src in
      let r1 = run ~san src in
      match r0.Sanitizer.Driver.outcome, r1.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit a, Vm.Machine.Exit b ->
        Alcotest.(check int) "same exit code" a b;
        Alcotest.(check string) "same output" r0.Sanitizer.Driver.output
          r1.Sanitizer.Driver.output
      | a, b ->
        Alcotest.failf "runs diverged: %a vs %a" Vm.Machine.pp_outcome a
          Vm.Machine.pp_outcome b)

let is_oob = function
  | Vm.Report.Oob_read | Oob_write -> true
  | _ -> false

let is_uaf = function Vm.Report.Use_after_free -> true | _ -> false
let is_double_free = function Vm.Report.Double_free -> true | _ -> false
let is_invalid_free = function Vm.Report.Invalid_free -> true | _ -> false

(* --- heap spatial ---------------------------------------------------------- *)

let heap_tests =
  [
    detects "heap overflow write"
      "int main() { char *p = (char*)malloc(16); p[16] = 'x'; free(p); \
       return 0; }" is_oob;
    detects "heap overflow read"
      "int main() { char *p = (char*)malloc(16); char c = p[20]; free(p); \
       return c; }" is_oob;
    detects "heap underflow write"
      "int main() { char *p = (char*)malloc(16); p[-1] = 'x'; free(p); \
       return 0; }" is_oob;
    detects "heap underflow read"
      "int main() { char *p = (char*)malloc(16); char c = p[-8]; free(p); \
       return c; }" is_oob;
    detects "off-by-one loop write"
      "int main() { int *a = (int*)malloc(10 * sizeof(int)); \
       for (int i = 0; i <= 10; i++) a[i] = i; free(a); return 0; }" is_oob;
    detects "far out-of-bounds (skips any redzone)"
      "int main() { char *a = (char*)malloc(32); char *b = (char*)malloc(32); \
       a[64] = 'x'; free(a); free(b); return 0; }" is_oob;
    detects "memcpy overflow"
      "int main() { char *dst = (char*)malloc(8); char src[32]; \
       memset(src, 'a', 32); memcpy(dst, src, 32); free(dst); return 0; }"
      is_oob;
    detects "strcpy overflow"
      "int main() { char *dst = (char*)malloc(4); \
       strcpy(dst, \"much too long\"); free(dst); return 0; }" is_oob;
    detects "wcsncpy overflow (wide chars)"
      "int main() { wchar_t *dst = (wchar_t*)malloc(4 * sizeof(wchar_t)); \
       wchar_t src[16]; wcsncpy(src, L\"wwwwwwwwwwwwwww\", 16); \
       wcsncpy(dst, src, 16); free(dst); return 0; }" is_oob;
    detects "partial word straddles bound"
      "int main() { char *p = (char*)malloc(10); long *q = (long*)(p + 8); \
       long v = *q; free(p); return (int)v; }" is_oob;
    detects "overflow via pointer arithmetic chain"
      "int main() { int *p = (int*)malloc(8 * sizeof(int)); int *q = p + 4; \
       int *r = q + 6; *r = 1; free(p); return 0; }" is_oob;
    clean "in-bounds heap use"
      "int main() { char *p = (char*)malloc(16); for (int i = 0; i < 16; \
       i++) p[i] = (char)i; int s = p[15]; free(p); return s; }";
    clean "exact-fit memcpy"
      "int main() { char *d = (char*)malloc(8); char s[8]; memset(s, 1, 8); \
       memcpy(d, s, 8); free(d); return 0; }";
    clean "last byte access"
      "int main() { char *p = (char*)malloc(32); p[31] = 'z'; int v = p[31]; \
       free(p); return v; }";
  ]

(* --- temporal ---------------------------------------------------------------- *)

let temporal_tests =
  [
    detects "use after free (read)"
      "int main() { int *p = (int*)malloc(4 * sizeof(int)); p[0] = 7; \
       free(p); return p[0]; }" is_uaf;
    detects "use after free (write)"
      "int main() { char *p = (char*)malloc(8); free(p); p[0] = 'x'; \
       return 0; }" is_uaf;
    detects "UAF even after the slot is reused"
      (* the freed entry is recycled by the new allocation; the stale
         pointer's bounds no longer match, so the check still fails *)
      "int main() { char *p = (char*)malloc(24); free(p); \
       char *q = (char*)malloc(48); q[0] = 'q'; p[0] = 'x'; free(q); \
       return 0; }" (fun k -> is_uaf k || is_oob k);
    detects "double free"
      "int main() { char *p = (char*)malloc(8); free(p); free(p); \
       return 0; }" is_double_free;
    detects "invalid free (interior pointer)"
      "int main() { char *p = (char*)malloc(8); free(p + 2); return 0; }"
      is_invalid_free;
    detects "invalid free (stack pointer)"
      "int main() { char buf[8]; char *p = buf; free(p); return 0; }"
      is_invalid_free;
    detects "UAF through memcpy"
      "int main() { char *p = (char*)malloc(16); char dst[16]; free(p); \
       memcpy(dst, p, 16); return dst[0]; }" is_uaf;
    detects "dangling pointer passed to external code"
      "extern void legacy_sink(char *p);\n\
       int main() { char *p = (char*)malloc(8); free(p); legacy_sink(p); \
       return 0; }" is_uaf;
    detects "realloc of dangling pointer"
      "int main() { char *p = (char*)malloc(8); free(p); \
       p = (char*)realloc(p, 16); return 0; }" is_double_free;
    clean "free(NULL) is fine"
      "int main() { char *p = NULL; free(p); return 0; }";
    Alcotest.test_case
      "KNOWN LIMIT: same-size immediate reuse evades detection" `Quick
      (fun () ->
         (* The design's documented blind spot (paper section II.C.1
            argues this is "unlikely"): free + malloc of the SAME size
            reuses both the address (allocator LIFO) and the metadata
            entry (table LIFO), recreating bit-identical bounds.  The
            stale pointer then passes Algorithm 1.  Juliet contains no
            such pattern; we pin the behavior so a change is noticed. *)
         let r =
           run
             "int main() { char *stale = (char*)malloc(32); free(stale); \
              char *fresh = (char*)malloc(32); fresh[0] = 'f'; \
              stale[1] = 'x'; free(fresh); return 0; }"
         in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o ->
           Alcotest.failf
             "expected the documented false negative, got %a"
             Vm.Machine.pp_outcome o);
    clean "malloc/free stress with reuse"
      "int main() { for (int i = 0; i < 200; i++) { \
       char *p = (char*)malloc(16 + (i % 5) * 16); p[0] = (char)i; free(p); \
       } return 0; }";
  ]

(* --- stack and globals ------------------------------------------------------- *)

let stack_global_tests =
  [
    detects "stack buffer overflow (escaped array)"
      "void fill(char *p, int n) { for (int i = 0; i <= n; i++) p[i] = 'a'; }\n\
       int main() { char buf[16]; fill(buf, 16); return 0; }" is_oob;
    detects "stack overflow via strcpy"
      "int main() { char buf[8]; char *p = buf; \
       strcpy(p, \"definitely too long for this\"); return 0; }" is_oob;
    detects "stack underread"
      "int sum(int *a) { return a[-2]; }\n\
       int main() { int arr[4] = {1, 2, 3, 4}; return sum(arr); }" is_oob;
    detects "global buffer overflow"
      "char gbuf[12];\n\
       int main() { for (int i = 0; i < 20; i++) gbuf[i] = 'g'; return 0; }"
      is_oob;
    detects "global overflow via libc"
      "char gsmall[6];\n\
       int main() { strcpy(gsmall, \"overflowing\"); return 0; }" is_oob;
    detects "global read past end"
      "int gtab[4] = {1, 2, 3, 4};\n\
       int main() { int s = 0; for (int i = 0; i < 8; i++) s += gtab[i]; \
       return s; }" is_oob;
    detects "string literal overread"
      "int main() { char *s = \"hi\"; int sum = 0; \
       for (int i = 0; i < 10; i++) sum += s[i]; return sum; }" is_oob;
    clean "stack array used correctly"
      "void fill(char *p, int n) { for (int i = 0; i < n; i++) p[i] = 'a'; }\n\
       int main() { char buf[16]; fill(buf, 16); return buf[15]; }";
    clean "globals used correctly"
      "int gtab[8];\n\
       int main() { for (int i = 0; i < 8; i++) gtab[i] = i; \
       return gtab[7]; }";
    clean "recursion with protected frames"
      "int depth(int n, char *prev) { char buf[8]; buf[0] = (char)n; \
       if (n == 0) return prev[0]; return depth(n - 1, buf); }\n\
       int main() { char b0[8]; b0[0] = 1; return depth(40, b0); }";
  ]

(* --- sub-object (Figure 3) --------------------------------------------------- *)

let fig3_source = {|
struct CharVoid {
  char charFirst[16];
  void *voidSecond;
  void *voidThird;
};

int main() {
  struct CharVoid structCharVoid;
  structCharVoid.voidSecond = (void*)0x1122;
  /* sizeof(structCharVoid) = 32 > 16: overflows charFirst into
     voidSecond -- a sub-object overflow inside one allocation */
  char src[32];
  memset(src, 'A', 32);
  memcpy(structCharVoid.charFirst, src, sizeof(structCharVoid));
  return 0;
}
|}

let subobject_tests =
  [
    detects "Figure 3: memcpy sub-object overflow" fig3_source is_oob;
    detects "array field index overflow inside struct"
      "struct Packet { char header[8]; int crc; };\n\
       int main() { struct Packet p; p.crc = 99; \
       for (int i = 0; i < 12; i++) p.header[i] = 'h'; return p.crc; }"
      is_oob;
    detects "heap struct sub-object overflow"
      "struct Rec { char name[8]; long id; };\n\
       int main() { struct Rec *r = (struct Rec*)malloc(sizeof(struct Rec)); \
       strcpy(r->name, \"excessively-long\"); free(r); return 0; }" is_oob;
    detects "nested struct sub-object overflow"
      "struct In { char small[4]; int guard; };\n\
       struct Out { struct In in; int tail; };\n\
       int main() { struct Out o; o.tail = 1; \
       memset(o.in.small, 'x', 8); return o.tail; }" is_oob;
    clean "exact-fit field memcpy"
      "struct CharVoid { char charFirst[16]; void *voidSecond; };\n\
       int main() { struct CharVoid s; char src[16]; memset(src, 'B', 16); \
       memcpy(s.charFirst, src, sizeof(s.charFirst)); return 0; }";
    clean "in-bounds field loop"
      "struct Packet { char header[8]; int crc; };\n\
       int main() { struct Packet p; for (int i = 0; i < 8; i++) \
       p.header[i] = 'h'; p.crc = 1; return p.crc; }";
    Alcotest.test_case "object-granularity config misses Figure 3" `Quick
      (fun () ->
         (* ablation: with sub-object narrowing off, the same program is
            NOT caught -- the overflow stays inside the allocation *)
         let san =
           Cecsan.sanitizer ~config:Cecsan.Config.no_subobject ()
         in
         let r = run ~san fig3_source in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o ->
           Alcotest.failf "expected a miss without sub-object, got %a"
             Vm.Machine.pp_outcome o);
  ]

(* --- compatibility with uninstrumented code ---------------------------------- *)

let compat_tests =
  [
    clean "tagged pointers stripped before external calls"
      ~externs:
        [ ("external_observe",
           fun st args ->
             (* uninstrumented code dereferences the raw pointer: a tag
                would fault here *)
             Vm.State.check_mapped st args.(0) 1;
             Vm.Memory.load_byte st.Vm.State.mem args.(0)) ]
      "extern void external_observe(char *p);\n\
       int main() { char *p = (char*)malloc(8); p[0] = 'k'; \
       external_observe(p); free(p); return 0; }";
    clean "foreign pointers adopt entry 0"
      ~externs:
        [ ("external_make", fun st args -> Vm.Heap.malloc st args.(0)) ]
      "extern char *external_make(int n);\n\
       int main() { char *p = external_make(8); p[0] = 'x'; \
       return p[0] == 'x'; }";
    clean "fgets retags its buffer argument"
      ~lines:[ "hello" ]
      "int main() { char buf[32]; char *r = fgets(buf, 32, 0); \
       if (r == NULL) return 1; return r[0] == 'h'; }";
    clean "strchr result keeps the object tag"
      "int main() { char buf[16]; strcpy(buf, \"find-me\"); \
       char *p = strchr(buf, 'm'); if (p == NULL) return 1; *p = 'M'; \
       return buf[5] == 'M'; }";
    detects "strchr result still bounds-checked"
      "int main() { char buf[8] = \"abc\"; char *p = strchr(buf, 'b'); \
       p[10] = 'x'; return 0; }" is_oob;
  ]

(* --- semantics preservation --------------------------------------------------- *)

let preservation_tests =
  [
    same_result "string workload"
      "int main() { char buf[64]; buf[0] = 0; \
       for (int i = 0; i < 6; i++) strcat(buf, \"ab\"); \
       printf(\"%s:%d\", buf, (int)strlen(buf)); return (int)strlen(buf); }";
    same_result "heap workload"
      "int main() { int total = 0; for (int round = 0; round < 20; round++) \
       { int *a = (int*)malloc(32 * sizeof(int)); for (int i = 0; i < 32; \
       i++) a[i] = i * round; total += a[31]; free(a); } \
       return total & 255; }";
    same_result "struct workload"
      "struct V { int x; int y; };\n\
       int dot(struct V *a, struct V *b) { return a->x * b->x + a->y * \
       b->y; }\n\
       int main() { struct V u; struct V v; u.x = 3; u.y = 4; v.x = 1; \
       v.y = 2; return dot(&u, &v); }";
    same_result "sorting workload"
      "void sort(int *a, int n) { for (int i = 0; i < n; i++) \
       for (int j = 0; j + 1 < n - i; j++) if (a[j] > a[j+1]) { \
       int t = a[j]; a[j] = a[j+1]; a[j+1] = t; } }\n\
       int main() { int a[12] = {5, 2, 9, 1, 7, 3, 8, 4, 6, 0, 11, 10}; \
       sort(a, 12); return a[0] * 100 + a[11]; }";
    same_result "linked list workload"
      "struct N { int v; struct N *next; };\n\
       int main() { struct N *head = NULL; for (int i = 0; i < 30; i++) { \
       struct N *n = (struct N*)malloc(sizeof(struct N)); n->v = i; \
       n->next = head; head = n; } int s = 0; struct N *p = head; \
       while (p) { s += p->v; struct N *d = p; p = p->next; free(d); } \
       return s & 255; }";
    same_result "global state workload"
      "int hist[16];\n\
       int main() { for (int i = 0; i < 100; i++) hist[i % 16]++; \
       int best = 0; for (int i = 0; i < 16; i++) if (hist[i] > hist[best]) \
       best = i; return hist[best]; }";
  ]

(* --- optimizations ------------------------------------------------------------- *)

let opt_src_loop =
  "int main() { int a[64]; int s = 0; \
   for (int i = 0; i < 64; i++) a[i] = i; \
   for (int i = 0; i < 64; i++) s += a[i]; \
   int *p = (int*)malloc(64 * sizeof(int)); \
   for (int i = 0; i < 64; i++) p[i] = a[i]; \
   for (int i = 0; i < 64; i++) s += p[i]; \
   free(p); return s & 255; }"

let opt_tests =
  [
    Alcotest.test_case "optimizations reduce cycles" `Quick (fun () ->
        let full = run opt_src_loop in
        let slow =
          run ~san:(Cecsan.sanitizer ~config:Cecsan.Config.no_opts ())
            opt_src_loop
        in
        (match full.Sanitizer.Driver.outcome, slow.Sanitizer.Driver.outcome
         with
         | Vm.Machine.Exit a, Vm.Machine.Exit b ->
           Alcotest.(check int) "same result" a b
         | _ -> Alcotest.fail "runs failed");
        Alcotest.(check bool) "optimized is faster" true
          (full.Sanitizer.Driver.cycles < slow.Sanitizer.Driver.cycles));
    Alcotest.test_case "optimized still catches loop overflow" `Quick
      (fun () ->
         let src =
           "int main() { int *p = (int*)malloc(32 * sizeof(int)); \
            for (int i = 0; i < 40; i++) p[i] = i; free(p); return 0; }"
         in
         let r = run src in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "missed: %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "optimized catches dynamic-bound loop overflow" `Quick
      (fun () ->
         let src =
           "int over(int n) { int *p = (int*)malloc(16 * sizeof(int)); \
            int s = 0; for (int i = 0; i < n; i++) { p[i] = i; s += p[i]; } \
            free(p); return s; }\n\
            int main() { return over(atoi(\"64\")); }"
         in
         let r = run src in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "missed: %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "endpoint grouping pays off at run time" `Quick
      (fun () ->
         (* static-bound loops collapse to two endpoint checks; the run
            under full optimization must execute strictly fewer cycles
            than with the loop optimization disabled *)
         let noloop =
           run
             ~san:
               (Cecsan.sanitizer
                  ~config:
                    { Cecsan.Config.default with
                      Cecsan.Config.opt_loop = false }
                  ())
             opt_src_loop
         in
         let full = run opt_src_loop in
         (match full.Sanitizer.Driver.outcome, noloop.Sanitizer.Driver.outcome
          with
          | Vm.Machine.Exit a, Vm.Machine.Exit b ->
            Alcotest.(check int) "same result" a b
          | _ -> Alcotest.fail "runs failed");
         Alcotest.(check bool) "loop opt is faster" true
           (full.Sanitizer.Driver.cycles < noloop.Sanitizer.Driver.cycles));
  ]

(* --- metadata table properties (Figure 2) -------------------------------------- *)

let table_tests =
  let mk () =
    let st = Vm.State.create () in
    Cecsan.Meta_table.create st
  in
  [
    Alcotest.test_case "entry 0 is the catch-all" `Quick (fun () ->
        let t = mk () in
        Alcotest.(check int) "low" 0 (Cecsan.Meta_table.low t 0);
        Alcotest.(check int) "high" Vm.Layout46.va_limit
          (Cecsan.Meta_table.high t 0));
    Alcotest.test_case "alloc embeds the index" `Quick (fun () ->
        let t = mk () in
        let p = Cecsan.Meta_table.alloc t ~base:0x2000_0000 ~size:64 in
        Alcotest.(check int) "tag" 1 (Vm.Layout46.tag_of p);
        Alcotest.(check int) "raw" 0x2000_0000 (Vm.Layout46.strip p);
        Alcotest.(check int) "low" 0x2000_0000 (Cecsan.Meta_table.low t 1);
        Alcotest.(check int) "high" (0x2000_0000 + 64)
          (Cecsan.Meta_table.high t 1));
    Alcotest.test_case "release poisons the entry" `Quick (fun () ->
        let t = mk () in
        let p = Cecsan.Meta_table.alloc t ~base:0x2000_0000 ~size:64 in
        Cecsan.Meta_table.release t (Vm.Layout46.tag_of p);
        Alcotest.(check int) "low is INVALID" Cecsan.Meta_table.invalid_low
          (Cecsan.Meta_table.low t 1);
        Alcotest.(check int) "high is 0" 0 (Cecsan.Meta_table.high t 1));
    Alcotest.test_case "freed entries are reused LIFO" `Quick (fun () ->
        let t = mk () in
        let a = Cecsan.Meta_table.alloc t ~base:0x1000 ~size:8 in
        let b = Cecsan.Meta_table.alloc t ~base:0x2000 ~size:8 in
        let _c = Cecsan.Meta_table.alloc t ~base:0x3000 ~size:8 in
        Cecsan.Meta_table.release t (Vm.Layout46.tag_of b);
        Cecsan.Meta_table.release t (Vm.Layout46.tag_of a);
        let d = Cecsan.Meta_table.alloc t ~base:0x4000 ~size:8 in
        let e = Cecsan.Meta_table.alloc t ~base:0x5000 ~size:8 in
        Alcotest.(check int) "d reuses a's slot" (Vm.Layout46.tag_of a)
          (Vm.Layout46.tag_of d);
        Alcotest.(check int) "e reuses b's slot" (Vm.Layout46.tag_of b)
          (Vm.Layout46.tag_of e));
    Alcotest.test_case "interleaved alloc/release keeps LIFO order" `Quick
      (fun () ->
        let t = mk () in
        let idx p = Vm.Layout46.tag_of p in
        let a = idx (Cecsan.Meta_table.alloc t ~base:0x1000 ~size:8) in
        let b = idx (Cecsan.Meta_table.alloc t ~base:0x2000 ~size:8) in
        let c = idx (Cecsan.Meta_table.alloc t ~base:0x3000 ~size:8) in
        Cecsan.Meta_table.release t a;
        (* a's slot is the top of the free list: the very next alloc
           takes it, and the frontier is restored behind it *)
        let d = idx (Cecsan.Meta_table.alloc t ~base:0x4000 ~size:8) in
        Alcotest.(check int) "d reuses a's slot" a d;
        Cecsan.Meta_table.release t c;
        Cecsan.Meta_table.release t b;
        let e = idx (Cecsan.Meta_table.alloc t ~base:0x5000 ~size:8) in
        let f = idx (Cecsan.Meta_table.alloc t ~base:0x6000 ~size:8) in
        let g = idx (Cecsan.Meta_table.alloc t ~base:0x7000 ~size:8) in
        Alcotest.(check int) "e reuses b's slot (released last)" b e;
        Alcotest.(check int) "f reuses c's slot" c f;
        Alcotest.(check int) "g advances the frontier" 4 g);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"free list never hands out a live entry"
         ~count:200
         QCheck.(list (int_bound 2))
         (fun ops ->
            let t = mk () in
            let live = Hashtbl.create 16 in
            let stack = ref [] in
            List.iteri
              (fun k op ->
                 match op with
                 | 0 | 1 ->
                   let p =
                     Cecsan.Meta_table.alloc t ~base:(0x1000 * (k + 1))
                       ~size:16
                   in
                   let idx = Vm.Layout46.tag_of p in
                   if idx <> 0 then begin
                     if Hashtbl.mem live idx then
                       QCheck.Test.fail_report "live entry reissued";
                     Hashtbl.replace live idx ();
                     stack := idx :: !stack
                   end
                 | _ ->
                   (match !stack with
                    | idx :: rest ->
                      stack := rest;
                      Hashtbl.remove live idx;
                      Cecsan.Meta_table.release t idx
                    | [] -> ()))
              ops;
            true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"alloc/release keeps live count consistent" ~count:100
         QCheck.(small_list small_nat)
         (fun sizes ->
            let t = mk () in
            let idxs =
              List.mapi
                (fun k s ->
                   Vm.Layout46.tag_of
                     (Cecsan.Meta_table.alloc t ~base:(0x100 * (k + 1))
                        ~size:(s + 1)))
                sizes
            in
            List.iter (Cecsan.Meta_table.release t) idxs;
            t.Cecsan.Meta_table.live = 0));
  ]

(* --- metadata table exhaustion (section V.1) ---------------------------------- *)

let exhaustion_src = {|
int main() {
  /* allocate past the 2^17-entry table */
  int count = 131100;
  char **held = (char**)malloc(count * sizeof(char*));
  for (int i = 0; i < count; i++) {
    held[i] = (char*)malloc(16);
  }
  /* overflow through a pointer allocated AFTER exhaustion; the write
     lands inside the (mapped) next allocation, so the hardware stays
     silent and only metadata can catch it */
  char *victim = held[count - 10];
  victim[20] = 'X';
  return 0;
}
|}

let exhaustion_tests =
  [
    Alcotest.test_case "table-level fallback hands out untagged" `Quick
      (fun () ->
         let st = Vm.State.create () in
         let t = Cecsan.Meta_table.create st in
         for k = 1 to Vm.Layout46.tag_limit - 1 do
           ignore
             (Cecsan.Meta_table.alloc t ~base:(0x1000 + (k * 64)) ~size:32)
         done;
         let p = Cecsan.Meta_table.alloc t ~base:0xBEEF000 ~size:32 in
         Alcotest.(check int) "untagged" 0 (Vm.Layout46.tag_of p);
         Alcotest.(check bool) "fallback counted" true
           (t.Cecsan.Meta_table.exhausted_fallbacks > 0));
    Alcotest.test_case "chain mode keeps protecting past exhaustion"
      `Quick
      (fun () ->
         let st = Vm.State.create () in
         let t = Cecsan.Meta_table.create ~chain_mode:true st in
         for k = 1 to Vm.Layout46.tag_limit - 1 do
           ignore
             (Cecsan.Meta_table.alloc t ~base:(0x1000 + (k * 64)) ~size:32)
         done;
         let p = Cecsan.Meta_table.alloc t ~base:0xBEEF000 ~size:32 in
         let idx = Vm.Layout46.tag_of p in
         Alcotest.(check bool) "still tagged" true (idx <> 0);
         Alcotest.(check bool) "chain covers the object" true
           (Cecsan.Meta_table.chain_covers t idx ~raw:0xBEEF000 ~size:32
            <> None);
         Alcotest.(check bool) "chain rejects out of bounds" true
           (Cecsan.Meta_table.chain_covers t idx ~raw:0xBEEF010 ~size:64
            = None);
         Alcotest.(check bool) "release finds the element" true
           (Cecsan.Meta_table.chain_release t idx ~raw:0xBEEF000);
         Alcotest.(check bool) "released element is gone" true
           (Cecsan.Meta_table.chain_covers t idx ~raw:0xBEEF000 ~size:32
            = None));
    Alcotest.test_case
      "end-to-end: default config degrades, chain mode detects" `Slow
      (fun () ->
         let plain = run exhaustion_src in
         (match plain.Sanitizer.Driver.outcome with
          | Vm.Machine.Exit _ -> ()  (* the documented degradation *)
          | o ->
            Alcotest.failf "expected silent degradation, got %a"
              Vm.Machine.pp_outcome o);
         let chained =
           run ~san:(Cecsan.sanitizer ~config:Cecsan.Config.with_chain ())
             exhaustion_src
         in
         match chained.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o ->
           Alcotest.failf "chain mode should detect, got %a"
             Vm.Machine.pp_outcome o);
    (* An injected 8-entry table makes exhaustion cheap: the pointer
       array takes entry 1, the first handful of blocks take 2..7, and
       everything after is served degraded (entry 0 or a chain). *)
    Alcotest.test_case "chain mode catches a double free past exhaustion"
      `Quick (fun () ->
        let r =
          Sanitizer.Driver.run
            (Cecsan.sanitizer ~config:Cecsan.Config.with_chain ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Table 8 ])
            {|
int main() {
  char **h = (char**)malloc(12 * sizeof(char*));
  for (int i = 0; i < 12; i++) h[i] = (char*)malloc(16);
  free(h[10]);
  free(h[10]);
  return 0;
}
|}
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Bug b
          when is_double_free b.Vm.Report.r_kind
               || is_invalid_free b.Vm.Report.r_kind -> ()
        | o ->
          Alcotest.failf "chained double free undetected: %a"
            Vm.Machine.pp_outcome o);
    Alcotest.test_case "chain mode catches a UAF past exhaustion" `Quick
      (fun () ->
        let r =
          Sanitizer.Driver.run
            (Cecsan.sanitizer ~config:Cecsan.Config.with_chain ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Table 8 ])
            {|
int main() {
  char **h = (char**)malloc(12 * sizeof(char*));
  for (int i = 0; i < 12; i++) h[i] = (char*)malloc(16);
  free(h[10]);
  int z = h[10][0];
  return z;
}
|}
        in
        match r.Sanitizer.Driver.outcome with
        (* the shared primary entry is still live, so the chain miss
           surfaces as OOB rather than UAF; either way it is caught *)
        | Vm.Machine.Bug b
          when is_uaf b.Vm.Report.r_kind || is_oob b.Vm.Report.r_kind -> ()
        | o ->
          Alcotest.failf "chained UAF undetected: %a"
            Vm.Machine.pp_outcome o);
    Alcotest.test_case
      "entry-0 fallback serves reads and writes unprotected but alive"
      `Quick (fun () ->
        let r =
          Sanitizer.Driver.run cecsan
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Table 8 ])
            {|
int main() {
  char **h = (char**)malloc(12 * sizeof(char*));
  for (int i = 0; i < 12; i++) { h[i] = (char*)malloc(16); h[i][0] = 'a'; }
  h[6][20] = 'x';
  int v = h[6][0];
  for (int i = 0; i < 12; i++) free(h[i]);
  free(h);
  return v;
}
|}
        in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 97 -> ()  (* the OOB write went through, silently *)
         | o ->
           Alcotest.failf "fallback run should complete with 'a', got %a"
             Vm.Machine.pp_outcome o);
        match List.assoc_opt "exhausted_fallbacks"
                r.Sanitizer.Driver.telemetry with
        | Some n when n > 0 -> ()
        | _ -> Alcotest.fail "exhausted_fallbacks not published");
    Alcotest.test_case "chain mode stays clean on correct programs" `Quick
      (fun () ->
         let r =
           run ~san:(Cecsan.sanitizer ~config:Cecsan.Config.with_chain ())
             "int main() { char *p = (char*)malloc(16); p[0] = 'a'; \
              int v = p[0]; free(p); return v; }"
         in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o -> Alcotest.failf "FP in chain mode: %a"
                  Vm.Machine.pp_outcome o);
  ]

let () =
  Alcotest.run "cecsan"
    [
      "heap-spatial", heap_tests;
      "temporal", temporal_tests;
      "stack-global", stack_global_tests;
      "subobject", subobject_tests;
      "compat", compat_tests;
      "preservation", preservation_tests;
      "optimizations", opt_tests;
      "meta-table", table_tests;
      "exhaustion", exhaustion_tests;
    ]

(* The supervised execution layer (DESIGN.md section 13): exception
   classification, deterministic retry/quarantine, fuel watchdogs,
   ledger serialization, and checkpoint/resume equivalence. *)

let mismatch_pair = Alcotest.(pair (list string) (list string))

let ledgers (s : Fuzz.Campaign.summary) =
  ( Fuzz.Campaign.mismatch_ledger_lines s,
    Fuzz.Campaign.quarantine_ledger_lines s )

(* --- Supervise.run ------------------------------------------------------- *)

let supervise_tests =
  [
    Alcotest.test_case "classify maps known exception classes" `Quick
      (fun () ->
         let check exn cls phase =
           Alcotest.(check (pair string string))
             cls (cls, phase) (Harness.Supervise.classify exn)
         in
         check (Vm.Fault.Injected_crash { after = 3 }) "crash" "run";
         check
           (Tir.Fuel.Exhausted { phase = "verify"; budget = 9 })
           "fuel" "verify";
         check Stack_overflow "stack-overflow" "run";
         check Out_of_memory "out-of-memory" "run";
         check (Failure "x") "failure" "run";
         check Exit "exn" "run");
    Alcotest.test_case "first success needs no retries" `Quick (fun () ->
        let o =
          Harness.Supervise.run ~task:7 ~seed:0xAB (fun ~attempt ->
              attempt * 10)
        in
        Alcotest.(check int) "retries" 0 o.Harness.Supervise.retries;
        match o.Harness.Supervise.result with
        | Ok v -> Alcotest.(check int) "value" 0 v
        | Error _ -> Alcotest.fail "expected Ok");
    Alcotest.test_case "transient failure is retried deterministically"
      `Quick
      (fun () ->
         let o =
           Harness.Supervise.run
             ~policy:{ Harness.Supervise.default_policy with max_retries = 2 }
             ~task:1 ~seed:0xCD
             (fun ~attempt -> if attempt < 2 then failwith "flaky" else 42)
         in
         Alcotest.(check int) "retries" 2 o.Harness.Supervise.retries;
         match o.Harness.Supervise.result with
         | Ok v -> Alcotest.(check int) "value" 42 v
         | Error _ -> Alcotest.fail "expected Ok after retries");
    Alcotest.test_case "exhausted retries quarantine with full entry"
      `Quick
      (fun () ->
         let o =
           Harness.Supervise.run
             ~policy:{ Harness.Supervise.default_policy with max_retries = 1 }
             ~task:5 ~seed:0xEF
             (fun ~attempt:_ ->
                raise (Vm.Fault.Injected_crash { after = 11 }))
         in
         Alcotest.(check int) "retries" 1 o.Harness.Supervise.retries;
         match o.Harness.Supervise.result with
         | Ok _ -> Alcotest.fail "expected quarantine"
         | Error e ->
           Alcotest.(check int) "task" 5 e.Harness.Supervise.q_task;
           Alcotest.(check int) "seed" 0xEF e.Harness.Supervise.q_seed;
           Alcotest.(check string) "class" "crash" e.Harness.Supervise.q_class;
           Alcotest.(check int) "attempts" 2 e.Harness.Supervise.q_attempts);
    Alcotest.test_case "entry_to_line round-trips through entry_of_line"
      `Quick
      (fun () ->
         let e =
           { Harness.Supervise.q_task = 12; q_seed = 0xBEEF;
             q_class = "fuel"; q_phase = "verify"; q_attempts = 3;
             q_detail = "Exhausted {phase=\"verify\"; budget=600}" }
         in
         match
           Harness.Supervise.entry_of_line
             (Harness.Supervise.entry_to_line e)
         with
         | Some e' ->
           Alcotest.(check bool) "round trip" true (e = e')
         | None -> Alcotest.fail "entry_of_line rejected its own line");
    Alcotest.test_case "entry_of_line rejects malformed lines" `Quick
      (fun () ->
         Alcotest.(check bool) "garbage" true
           (Harness.Supervise.entry_of_line "not a ledger line" = None));
  ]

(* --- fuel watchdogs ------------------------------------------------------ *)

let fuel_tests =
  [
    Alcotest.test_case "fuel exhaustion is deterministic" `Quick (fun () ->
        let src = "int main() { int s = 0; for (int i = 0; i < 40; i++) \
                   s += i; return s & 255; }" in
        let exhausted_at budget =
          match
            Sanitizer.Driver.compile
              ~fuel:(Tir.Fuel.make ~phase:"compile" ~budget) src
          with
          | (_ : Tir.Ir.modul) -> None
          | exception Tir.Fuel.Exhausted { phase; budget = b } ->
            Some (phase, b)
        in
        (* a tight budget trips, a huge one does not, and reruns agree *)
        Alcotest.(check bool) "tiny budget trips" true
          (exhausted_at 1 <> None);
        Alcotest.(check bool) "huge budget passes" true
          (exhausted_at 1_000_000 = None);
        Alcotest.(check bool) "deterministic" true
          (exhausted_at 1 = exhausted_at 1));
    Alcotest.test_case "compile_cached burns fuel on cache hits too"
      `Quick
      (fun () ->
         let src = "int main() { return 7; }" in
         Sanitizer.Driver.clear_compile_cache ();
         (* miss, then hit: both must burn the same amount *)
         let burn () =
           let fuel = Tir.Fuel.make ~phase:"compile" ~budget:1_000_000 in
           ignore
             (Sanitizer.Driver.compile_cached ~optimize:true ~fuel src);
           1_000_000 - Tir.Fuel.remaining fuel
         in
         let miss = burn () in
         let hit = burn () in
         Alcotest.(check int) "cache-state independent burn" miss hit;
         Alcotest.(check bool) "burn is positive" true (miss > 0));
    Alcotest.test_case "fault parse round-trips crash and fuel specs"
      `Quick
      (fun () ->
         List.iter
           (fun s ->
              match Vm.Fault.parse s with
              | Ok spec ->
                Alcotest.(check string) "round trip" s
                  (Vm.Fault.spec_to_string spec)
              | Error m -> Alcotest.fail ("parse " ^ s ^ ": " ^ m))
           [ "crash:25"; "fuel:2500"; "oom:40"; "table:8"; "tagflip:97" ]);
    Alcotest.test_case "snapshot JSON round-trips via of_json" `Quick
      (fun () ->
         let s =
           Fuzz.Campaign.run ~seed:0x5EED ~n:12 ~max_shrink:0
             ~faults:[ Vm.Fault.Crash 1 ] ()
         in
         let json = Telemetry.Snapshot.to_json s.Fuzz.Campaign.snapshot in
         match Telemetry.Snapshot.of_json json with
         | Some snap ->
           Alcotest.(check string) "round trip" json
             (Telemetry.Snapshot.to_json snap)
         | None -> Alcotest.fail "of_json rejected to_json output");
  ]

(* --- supervised campaigns ------------------------------------------------ *)

let campaign_tests =
  [
    Alcotest.test_case "crash faults quarantine instead of aborting"
      `Quick
      (fun () ->
         let s =
           Fuzz.Campaign.run ~seed:0x5EED ~n:40 ~max_shrink:0
             ~faults:[ Vm.Fault.Crash 1 ] ()
         in
         Alcotest.(check bool) "some tasks quarantined" true
           (s.Fuzz.Campaign.quarantine <> []);
         Alcotest.(check bool) "retries happened" true
           (s.Fuzz.Campaign.retries > 0);
         Alcotest.(check int) "every program accounted for"
           s.Fuzz.Campaign.n
           (List.length s.Fuzz.Campaign.rows
            + List.length s.Fuzz.Campaign.quarantine));
    Alcotest.test_case "faulted campaign ledgers identical at -j 1 and -j 4"
      `Quick
      (fun () ->
         let run pool =
           Fuzz.Campaign.run ?pool ~seed:0xFA57 ~n:40 ~max_shrink:0
             ~faults:[ Vm.Fault.Crash 1 ] ()
         in
         let seq = run None in
         let par =
           Harness.Pool.with_pool ~jobs:4 (fun p -> run (Some p))
         in
         Alcotest.check mismatch_pair "ledger lines" (ledgers seq)
           (ledgers par);
         Alcotest.(check int) "retries equal" seq.Fuzz.Campaign.retries
           par.Fuzz.Campaign.retries);
    Alcotest.test_case "fuel faults quarantine with class fuel" `Quick
      (fun () ->
         let s =
           Fuzz.Campaign.run ~seed:0x5EED ~n:20 ~max_shrink:0
             ~faults:[ Vm.Fault.Fuel 400 ] ()
         in
         Alcotest.(check bool) "fuel_exhausted counted" true
           (s.Fuzz.Campaign.fuel_exhausted > 0);
         List.iter
           (fun (e : Harness.Supervise.entry) ->
              Alcotest.(check string) "class" "fuel"
                e.Harness.Supervise.q_class)
           s.Fuzz.Campaign.quarantine);
  ]

(* --- checkpoint / resume ------------------------------------------------- *)

let with_tmp_dir f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cecsan_ckpt_%d" (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
        if Sys.file_exists dir then begin
          Array.iter
            (fun f -> Sys.remove (Filename.concat dir f))
            (Sys.readdir dir);
          Sys.rmdir dir
        end)
    (fun () -> f dir)

let checkpoint_tests =
  [
    Alcotest.test_case "interrupt + resume reproduces the ledgers" `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             let seed = 0x5EED and n = 40 in
             let faults = [ Vm.Fault.Crash 1 ] in
             let uninterrupted =
               Fuzz.Campaign.run ~seed ~n ~max_shrink:0 ~faults ()
             in
             (* run one shard, "die", resume from the checkpoint *)
             let partial =
               Fuzz.Campaign.run ~seed ~n ~max_shrink:0 ~faults
                 ~checkpoint:dir ~shard_size:16 ~stop_after_shards:1 ()
             in
             Alcotest.(check bool) "partial really is partial" true
               (List.length partial.Fuzz.Campaign.rows
                + List.length partial.Fuzz.Campaign.quarantine
                < n);
             let resumed =
               Fuzz.Campaign.run ~seed ~n ~max_shrink:0 ~faults
                 ~checkpoint:dir ~shard_size:16 ~resume:true ()
             in
             Alcotest.(check bool) "shards were restored" true
               (resumed.Fuzz.Campaign.resumed_shards > 0);
             Alcotest.check mismatch_pair "ledger lines"
               (ledgers uninterrupted) (ledgers resumed)));
    Alcotest.test_case "resume at a different -j is byte-identical" `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             let seed = 0xFA57 and n = 32 in
             let faults = [ Vm.Fault.Crash 1 ] in
             let uninterrupted =
               Fuzz.Campaign.run ~seed ~n ~max_shrink:0 ~faults ()
             in
             ignore
               (Fuzz.Campaign.run ~seed ~n ~max_shrink:0 ~faults
                  ~checkpoint:dir ~shard_size:8 ~stop_after_shards:2 ());
             let resumed =
               Harness.Pool.with_pool ~jobs:4 (fun p ->
                   Fuzz.Campaign.run ~pool:p ~seed ~n ~max_shrink:0
                     ~faults ~checkpoint:dir ~shard_size:8 ~resume:true ())
             in
             Alcotest.check mismatch_pair "ledger lines"
               (ledgers uninterrupted) (ledgers resumed)));
    Alcotest.test_case "config mismatch on resume is rejected" `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             ignore
               (Fuzz.Campaign.run ~seed:0x5EED ~n:16 ~max_shrink:0
                  ~checkpoint:dir ~shard_size:8 ~stop_after_shards:1 ());
             match
               Fuzz.Campaign.run ~seed:0xBAD ~n:16 ~max_shrink:0
                 ~checkpoint:dir ~shard_size:8 ~resume:true ()
             with
             | (_ : Fuzz.Campaign.summary) ->
               Alcotest.fail "expected Invalid_argument"
             | exception Invalid_argument _ -> ()));
    Alcotest.test_case
      "guided interrupt + resume reproduces corpus, bitmap and ledger"
      `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             let seed = 0x5EED and n = 60 in
             let uninterrupted =
               Fuzz.Campaign.run ~guided:true ~seed ~n ~shard_size:10 ()
             in
             (* die after two shards, resume at a different -j *)
             ignore
               (Fuzz.Campaign.run ~guided:true ~seed ~n ~shard_size:10
                  ~checkpoint:dir ~stop_after_shards:2 ());
             let resumed =
               Harness.Pool.with_pool ~jobs:4 (fun p ->
                   Fuzz.Campaign.run ~pool:p ~guided:true ~seed ~n
                     ~shard_size:10 ~checkpoint:dir ~resume:true ())
             in
             Alcotest.(check bool) "shards were restored" true
               (resumed.Fuzz.Campaign.resumed_shards > 0);
             Alcotest.(check string) "accumulated bitmap"
               (Fuzz.Coverage.to_string uninterrupted.Fuzz.Campaign.coverage)
               (Fuzz.Coverage.to_string resumed.Fuzz.Campaign.coverage);
             Alcotest.(check (list string)) "corpus lines"
               (Fuzz.Corpus.to_lines uninterrupted.Fuzz.Campaign.corpus)
               (Fuzz.Corpus.to_lines resumed.Fuzz.Campaign.corpus);
             Alcotest.check mismatch_pair "ledger lines"
               (ledgers uninterrupted) (ledgers resumed);
             (* the derived on-disk corpus matches the in-memory one *)
             match Fuzz.Corpus.load ~dir with
             | Some c ->
               Alcotest.(check (list string)) "on-disk corpus"
                 (Fuzz.Corpus.to_lines uninterrupted.Fuzz.Campaign.corpus)
                 (Fuzz.Corpus.to_lines c)
             | None -> Alcotest.fail "no corpus file written"));
    Alcotest.test_case "guided flag mismatch on resume is rejected" `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             ignore
               (Fuzz.Campaign.run ~guided:true ~seed:0x5EED ~n:20
                  ~shard_size:10 ~checkpoint:dir ~stop_after_shards:1 ());
             match
               Fuzz.Campaign.run ~seed:0x5EED ~n:20 ~shard_size:10
                 ~checkpoint:dir ~resume:true ()
             with
             | (_ : Fuzz.Campaign.summary) ->
               Alcotest.fail "expected Invalid_argument"
             | exception Invalid_argument _ -> ()));
    Alcotest.test_case "resume without a checkpoint file starts fresh"
      `Quick
      (fun () ->
         with_tmp_dir (fun dir ->
             let s =
               Fuzz.Campaign.run ~seed:0x5EED ~n:8 ~max_shrink:0
                 ~checkpoint:dir ~resume:true ()
             in
             Alcotest.(check int) "no resumed shards" 0
               s.Fuzz.Campaign.resumed_shards;
             Alcotest.(check int) "all rows present" 8
               (List.length s.Fuzz.Campaign.rows)));
  ]

let () =
  Alcotest.run "supervise"
    [
      "supervise", supervise_tests;
      "fuel", fuel_tests;
      "campaign", campaign_tests;
      "checkpoint", checkpoint_tests;
    ]

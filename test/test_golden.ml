(* Golden regression tests: the headline numbers EXPERIMENTS.md pins are
   regenerated in-process and compared against the checked-in
   expectations, so any drift in detection rates or check-elimination
   effectiveness fails `dune runtest` instead of silently rotting the
   docs.

   UPDATING THE EXPECTATIONS: when an intentional change shifts one of
   these numbers, rerun

     dune exec bench/main.exe -- --table 2 -j 4
     dune exec bench/main.exe -- --ablation -j 4

   and update BOTH the tables below and the matching tables in
   EXPERIMENTS.md (sections "Table II" and "Ablation") in the same
   commit.  A mismatch between this file and EXPERIMENTS.md is itself a
   bug. *)

let jobs = max 1 (min 4 (Domain.recommended_domain_count ()))

let check_close ~what ~expected actual =
  (* expectations carry one decimal, like the rendered tables *)
  if Float.abs (actual -. expected) > 0.05 then
    Alcotest.failf "%s: expected %.1f, measured %.1f (update this table \
                    AND EXPERIMENTS.md together if the change is \
                    intentional)" what expected actual

(* --- Table II: detection rates over each tool's evaluated subset --------- *)

(* Rows follow Juliet.Suite.targets order:
   CWE121 CWE122 CWE124 CWE126 CWE127 CWE415 CWE416 CWE761. *)
let expected_rates =
  [
    "CECSan", [ 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0; 100.0 ];
    "PACMem", [ 93.5; 92.0; 100.0; 87.5; 100.0; 100.0; 100.0; 100.0 ];
    "CryptSan", [ 93.5; 92.0; 100.0; 87.5; 100.0; 100.0; 100.0; 100.0 ];
    "HWASan", [ 79.4; 75.0; 82.4; 75.0; 78.4; 100.0; 60.0; 0.0 ];
    "ASan", [ 83.7; 79.2; 82.2; 76.0; 85.6; 100.0; 80.0; 100.0 ];
    "SoftBound/CETS", [ 96.6; 95.6; 100.0; 94.1; 100.0; 100.0; 100.0;
                        100.0 ];
  ]

let expected_subsets =
  [ "CECSan", 985; "PACMem", 888; "CryptSan", 788; "HWASan", 788;
    "ASan", 985; "SoftBound/CETS", 959 ]

let expected_false_positives =
  [ "CECSan", 0; "PACMem", 0; "CryptSan", 0; "HWASan", 0; "ASan", 0;
    "SoftBound/CETS", 5 ]

let table2_golden () =
  let d =
    Harness.Pool.with_pool ~jobs (fun p ->
        Harness.Tables.run_table2 ~pool:p ())
  in
  List.iter
    (fun (tr : Juliet.Runner.tool_results) ->
       let tool = tr.Juliet.Runner.tool in
       Alcotest.(check int)
         (tool ^ " evaluated subset")
         (List.assoc tool expected_subsets)
         tr.Juliet.Runner.evaluated;
       Alcotest.(check int)
         (tool ^ " false positives")
         (List.assoc tool expected_false_positives)
         (Juliet.Runner.false_positives tr);
       List.iter2
         (fun (cwe, _) expected ->
            match Juliet.Runner.rate tr cwe with
            | None ->
              Alcotest.failf "%s: no evaluated cases for %s" tool
                (Juliet.Case.cwe_name cwe)
            | Some r ->
              check_close
                ~what:
                  (Printf.sprintf "%s rate on %s" tool
                     (Juliet.Case.cwe_name cwe))
                ~expected r)
         Juliet.Suite.targets
         (List.assoc tool expected_rates))
    d.Harness.Tables.t2_tools

(* --- Ablation: average runtime overheads per configuration --------------- *)

(* Same measurement as Harness.Tables.ablation: average percent runtime
   overhead over the SPEC2006-like kernels vs the uninstrumented
   baseline. *)
let expected_ablation =
  [
    "CECSan (full)", Cecsan.Config.default, 173.6;
    "no loop opt",
    { Cecsan.Config.default with Cecsan.Config.opt_loop = false }, 185.2;
    "no redundant elim",
    { Cecsan.Config.default with Cecsan.Config.opt_redundant = false },
    174.0;
    "no type-info elim",
    { Cecsan.Config.default with Cecsan.Config.opt_typeinfo = false },
    183.1;
    (* absint off reproduces the pre-certified-elision full pipeline *)
    "no absint",
    { Cecsan.Config.default with Cecsan.Config.opt_absint = false }, 181.1;
    "no optimizations", Cecsan.Config.no_opts, 222.9;
    "no sub-object", Cecsan.Config.no_subobject, 172.2;
  ]

let ablation_golden () =
  Harness.Pool.with_pool ~jobs (fun pool ->
      let workloads = Workloads.Spec2006.all in
      let bases =
        Harness.Pool.map pool
          (fun (w : Workloads.Spec2006.t) ->
             (Sanitizer.Driver.run Sanitizer.Spec.none
                ~budget:Harness.Overhead.default_budget w.w_source)
               .Sanitizer.Driver.cycles)
          workloads
      in
      let pairs = List.combine workloads bases in
      List.iter
        (fun (name, config, expected) ->
           let san = Cecsan.sanitizer ~config () in
           let rts =
             Harness.Pool.map pool
               (fun ((w : Workloads.Spec2006.t), base_cycles) ->
                  let r =
                    Sanitizer.Driver.run san
                      ~budget:Harness.Overhead.default_budget w.w_source
                  in
                  Harness.Stats.percent_overhead ~base:base_cycles
                    ~measured:r.Sanitizer.Driver.cycles)
               pairs
           in
           check_close ~what:("ablation avg: " ^ name) ~expected
             (Harness.Stats.average rts))
        expected_ablation)

let () =
  Alcotest.run "golden"
    [
      ( "golden",
        [
          Alcotest.test_case "table2 detection rates pinned" `Slow
            table2_golden;
          Alcotest.test_case "ablation percentages pinned" `Slow
            ablation_golden;
        ] );
    ]

(* Tests of the coverage-guided fuzzing layer (DESIGN.md section 17):
   bitmap packing and determinism, mutation-schedule determinism,
   corpus admission/minimization properties, and the pinned
   guided-beats-blind golden inequality. *)

let cov = Alcotest.testable Fuzz.Coverage.render Fuzz.Coverage.equal

(* --- bitmap packing -------------------------------------------------------- *)

let packing_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"key packs and unpacks" ~count:500
         QCheck.(triple (int_bound (Fuzz.Coverage.max_legs - 1))
                   (int_bound 5000) (int_bound 3))
         (fun (leg, site, ki) ->
            let kind = List.nth Fuzz.Coverage.all_kinds ki in
            let k = Fuzz.Coverage.key ~leg ~site kind in
            Fuzz.Coverage.key_leg k = leg
            && Fuzz.Coverage.key_site k = site
            && Fuzz.Coverage.key_kind k = kind));
    Alcotest.test_case "to_string/of_string round-trips" `Quick (fun () ->
        let c =
          Fuzz.Coverage.of_keys
            [ Fuzz.Coverage.key ~leg:0 ~site:3 Fuzz.Coverage.Executed;
              Fuzz.Coverage.key ~leg:2 ~site:0 Fuzz.Coverage.Instrumented;
              Fuzz.Coverage.key ~leg:1 ~site:17 Fuzz.Coverage.Covered ]
        in
        (match Fuzz.Coverage.of_string (Fuzz.Coverage.to_string c) with
         | Some c' -> Alcotest.check cov "round trip" c c'
         | None -> Alcotest.fail "of_string failed");
        Alcotest.(check string) "empty is dash" "-"
          (Fuzz.Coverage.to_string Fuzz.Coverage.empty);
        Alcotest.(check bool) "empty parses" true
          (Fuzz.Coverage.of_string "-" = Some Fuzz.Coverage.empty));
    Alcotest.test_case "instrumented-only sites carry a bit" `Quick
      (fun () ->
         (* all-zero rows (sites_full's contribution) must be visible in
            the bitmap, else "new site instrumented" is not novelty *)
         let rows =
           [ { Telemetry.Snapshot.s_site = 0; s_executed = 1; s_elided = 0;
               s_covered = 0 };
             { Telemetry.Snapshot.s_site = 5; s_executed = 0; s_elided = 0;
               s_covered = 0 } ]
         in
         let c = Fuzz.Coverage.of_rows ~leg:0 rows in
         Alcotest.(check int) "bits" 3 (Fuzz.Coverage.cardinal c);
         Alcotest.(check int) "sites" 2 (Fuzz.Coverage.sites c));
  ]

(* --- accumulated-bitmap determinism over a guided shard -------------------- *)

let guided ?pool ?stop_after_shards ?(resume = false) ?checkpoint ~seed ~n
    () =
  Fuzz.Campaign.run ?pool ?checkpoint ~resume ?stop_after_shards
    ~guided:true ~shard_size:10 ~seed ~n ()

let determinism_tests =
  [
    Alcotest.test_case
      "accumulated bitmap and corpus byte-identical at -j1 and -j4" `Quick
      (fun () ->
         let s1 = guided ~seed:0xC0FFEE ~n:200 () in
         let s4 =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               guided ~pool:p ~seed:0xC0FFEE ~n:200 ())
         in
         Alcotest.(check string) "bitmap"
           (Fuzz.Coverage.to_string s1.Fuzz.Campaign.coverage)
           (Fuzz.Coverage.to_string s4.Fuzz.Campaign.coverage);
         Alcotest.(check (list string)) "corpus lines"
           (Fuzz.Corpus.to_lines s1.Fuzz.Campaign.corpus)
           (Fuzz.Corpus.to_lines s4.Fuzz.Campaign.corpus);
         Alcotest.(check (list string)) "mismatch ledger"
           (Fuzz.Campaign.mismatch_ledger_lines s1)
           (Fuzz.Campaign.mismatch_ledger_lines s4));
    Alcotest.test_case "mutation schedule is a pure function of its seed"
      `Quick
      (fun () ->
         (* the same (seed, corpus) produces the same (op, tape) stream
            no matter how often or in what interleaving it is derived *)
         let base = [| 3; 1; 4; 1; 5; 9; 2; 6 |] in
         let partner = [| 2; 7; 1; 8; 2; 8 |] in
         let schedule seed =
           List.init 64 (fun i ->
               let rng =
                 Fuzz.Tape.fresh ~seed:(Fuzz.Tape.mix seed i)
               in
               Fuzz.Mutate.mutate ~rng ~partner base)
         in
         let ops l = List.map (fun (op, _) -> Fuzz.Mutate.op_name op) l in
         let tapes l = List.map snd l in
         let a = schedule 0xFEED and b = schedule 0xFEED in
         Alcotest.(check (list string)) "ops" (ops a) (ops b);
         Alcotest.(check (list (array int))) "tapes" (tapes a) (tapes b);
         (* and a different seed gives a different schedule *)
         let c = schedule 0xBEEF in
         Alcotest.(check bool) "seed-dependent" true
           (tapes a <> tapes c));
  ]

(* --- corpus admission and minimization ------------------------------------- *)

let key l s k = Fuzz.Coverage.key ~leg:l ~site:s k

let corpus_tests =
  [
    Alcotest.test_case "admission strictly grows the bitmap" `Quick
      (fun () ->
         let covs =
           [ Fuzz.Coverage.of_keys [ key 0 0 Fuzz.Coverage.Executed ];
             Fuzz.Coverage.of_keys [ key 0 0 Fuzz.Coverage.Executed ];
             (* duplicate: rejected *)
             Fuzz.Coverage.of_keys
               [ key 0 0 Fuzz.Coverage.Executed;
                 key 0 1 Fuzz.Coverage.Elided ];
             Fuzz.Coverage.empty (* nothing novel: rejected *) ]
         in
         let _, admits =
           List.fold_left
             (fun (c, acc) cv ->
                let before =
                  Fuzz.Coverage.cardinal (Fuzz.Corpus.accumulated c)
                in
                let c', admitted =
                  Fuzz.Corpus.admit c ~seed:0 ~phase:"gen" ~tape:[| 1 |]
                    ~cov:cv
                in
                let after =
                  Fuzz.Coverage.cardinal (Fuzz.Corpus.accumulated c')
                in
                Alcotest.(check bool) "admitted iff bitmap grew" admitted
                  (after > before);
                (c', acc @ [ admitted ]))
             (Fuzz.Corpus.empty, [])
             covs
         in
         Alcotest.(check (list bool)) "admission pattern"
           [ true; false; true; false ] admits);
    Alcotest.test_case
      "minimize is idempotent and coverage-preserving on a guided corpus"
      `Quick
      (fun () ->
         let s = guided ~seed:0x5EED ~n:100 () in
         let c = s.Fuzz.Campaign.corpus in
         Alcotest.(check bool) "corpus is nonempty" true
           (Fuzz.Corpus.size c > 0);
         let m = Fuzz.Corpus.minimize c in
         let m2 = Fuzz.Corpus.minimize m in
         Alcotest.(check (list string)) "fixed point"
           (Fuzz.Corpus.to_lines m) (Fuzz.Corpus.to_lines m2);
         Alcotest.check cov "same accumulated bitmap"
           (Fuzz.Corpus.accumulated c) (Fuzz.Corpus.accumulated m);
         Alcotest.(check bool) "no larger" true
           (Fuzz.Corpus.size m <= Fuzz.Corpus.size c));
    Alcotest.test_case "corpus file round-trips byte for byte" `Quick
      (fun () ->
         let s = guided ~seed:0x5EED ~n:60 () in
         let lines = Fuzz.Corpus.to_lines s.Fuzz.Campaign.corpus in
         match Fuzz.Corpus.of_lines lines with
         | Some c' ->
           Alcotest.(check (list string)) "round trip" lines
             (Fuzz.Corpus.to_lines c')
         | None -> Alcotest.fail "of_lines failed");
  ]

(* --- the golden inequality ------------------------------------------------- *)

(* Pinned over the standard seed: the guided campaign reaches strictly
   more distinct check sites (and strictly more bitmap bits) than the
   blind campaign at the same 100-program budget.  Deterministic, so a
   regression here means the feedback loop stopped feeding back. *)
let golden_tests =
  [
    Alcotest.test_case "guided beats blind at the same budget" `Quick
      (fun () ->
         let s = guided ~seed:0x5EED ~n:100 () in
         let blind =
           Fuzz.Campaign.blind_coverage ~seed:0x5EED ~n:100 ()
         in
         let gs = Fuzz.Coverage.sites s.Fuzz.Campaign.coverage in
         let bs = Fuzz.Coverage.sites blind in
         if gs <= bs then
           Alcotest.failf "guided reached %d sites, blind %d" gs bs;
         let gb = Fuzz.Coverage.cardinal s.Fuzz.Campaign.coverage in
         let bb = Fuzz.Coverage.cardinal blind in
         if gb <= bb then
           Alcotest.failf "guided reached %d bits, blind %d" gb bb);
  ]

let () =
  Alcotest.run "coverage"
    [
      "packing", packing_tests;
      "determinism", determinism_tests;
      "corpus", corpus_tests;
      "golden", golden_tests;
    ]

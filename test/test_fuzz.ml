(* Tests of the differential fuzzing subsystem (lib/fuzz): generator
   validity, campaign determinism across job counts, tape shrinking,
   and the regression corpus replay. *)

let seed_gen = QCheck.(map abs int)

let clean_program seed =
  Fuzz.Gen.generate ~inject:false (Fuzz.Tape.fresh ~seed)

let injected_program seed =
  Fuzz.Gen.generate ~inject:true (Fuzz.Tape.fresh ~seed)

let render_to_string ~jobs s =
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  Fuzz.Campaign.render fmt ~jobs s;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* --- generator properties ------------------------------------------------- *)

let gen_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"clean programs type-check" ~count:150
         seed_gen
         (fun seed ->
            let p = clean_program seed in
            match Minic.Sema.parse_and_check p.Fuzz.Gen.src with
            | _ -> true
            | exception Minic.Sema.Error (m, l) ->
              QCheck.Test.fail_reportf "seed %d: line %d: %s@.%s" seed l m
                p.Fuzz.Gen.src));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bug-injected programs type-check" ~count:150
         seed_gen
         (fun seed ->
            let p = injected_program seed in
            match Minic.Sema.parse_and_check p.Fuzz.Gen.src with
            | _ -> p.Fuzz.Gen.plan <> None
            | exception Minic.Sema.Error (m, l) ->
              QCheck.Test.fail_reportf "seed %d: line %d: %s@.%s" seed l m
                p.Fuzz.Gen.src));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"clean programs terminate within the default budget"
         ~count:80 seed_gen
         (fun seed ->
            let p = clean_program seed in
            let r =
              Sanitizer.Driver.run Sanitizer.Spec.none
                ~externs:Fuzz.Oracle.externs p.Fuzz.Gen.src
            in
            match r.Sanitizer.Driver.outcome with
            | Vm.Machine.Exit _ -> true
            | o ->
              QCheck.Test.fail_reportf "seed %d: %a@.%s" seed
                Vm.Machine.pp_outcome o p.Fuzz.Gen.src));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"replaying a recorded tape regenerates"
         ~count:100 seed_gen
         (fun seed ->
            let p = clean_program seed in
            let p' =
              Fuzz.Gen.generate ~inject:false
                (Fuzz.Tape.replay p.Fuzz.Gen.tape)
            in
            String.equal p.Fuzz.Gen.src p'.Fuzz.Gen.src));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"any int array is a valid tape" ~count:100
         QCheck.(small_list small_nat)
         (fun choices ->
            let tape = Array.of_list choices in
            let p =
              Fuzz.Gen.generate ~inject:false (Fuzz.Tape.replay tape)
            in
            match Minic.Sema.parse_and_check p.Fuzz.Gen.src with
            | _ -> true
            | exception Minic.Sema.Error _ -> false));
  ]

(* --- per-class detection -------------------------------------------------- *)

(* Scan derived seeds for one program of each class and check CECSan
   reports it with a matching kind, under Halt and under Recover. *)
let detection_tests =
  List.map
    (fun cls ->
       Alcotest.test_case
         (Printf.sprintf "CECSan detects %s" (Fuzz.Gen.class_name cls))
         `Quick
         (fun () ->
            let rec find i =
              if i > 500 then
                Alcotest.failf "no %s program in 500 seeds"
                  (Fuzz.Gen.class_name cls)
              else
                let p = injected_program (Fuzz.Tape.mix 0xD151EA5E i) in
                match p.Fuzz.Gen.plan with
                | Some pl when pl.Fuzz.Gen.cls = cls -> p
                | _ -> find (i + 1)
            in
            let p = find 0 in
            let halt =
              Fuzz.Oracle.run_tool (Cecsan.sanitizer ()) ~optimize:true
                p.Fuzz.Gen.src
            in
            Alcotest.(check bool) "detected under Halt" true
              halt.Fuzz.Oracle.detected;
            (match halt.Fuzz.Oracle.first_kind with
             | Some k ->
               Alcotest.(check bool) "kind matches class" true
                 (Fuzz.Oracle.kind_ok cls k)
             | None -> Alcotest.fail "no report kind under Halt");
            let recover =
              Fuzz.Oracle.run_tool (Cecsan.sanitizer ())
                ~policy:(Vm.Report.Recover
                           { max_reports = Vm.Report.default_max_reports })
                ~optimize:true p.Fuzz.Gen.src
            in
            Alcotest.(check bool) "detected under Recover" true
              recover.Fuzz.Oracle.detected))
    Fuzz.Gen.all_classes

(* --- campaign -------------------------------------------------------------- *)

let campaign_tests =
  [
    Alcotest.test_case "200-program campaign passes" `Quick (fun () ->
        let s = Fuzz.Campaign.run ~seed:0x5EED ~n:200 () in
        if not (Fuzz.Campaign.passed s) then
          Alcotest.failf "campaign failed:@.%s" (render_to_string ~jobs:1 s));
    Alcotest.test_case "byte-identical verdicts at -j1 and -j4" `Quick
      (fun () ->
         let s1 = Fuzz.Campaign.run ~seed:0xD00D ~n:80 () in
         let s4 =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               Fuzz.Campaign.run ~pool:p ~seed:0xD00D ~n:80 ())
         in
         Alcotest.(check string) "rendered summaries"
           (render_to_string ~jobs:0 s1) (render_to_string ~jobs:0 s4));
  ]

(* --- shrinking ------------------------------------------------------------- *)

let shrink_tests =
  [
    Alcotest.test_case "oracle failure shrinks to a <= 30 line repro"
      `Quick (fun () ->
        (* A genuine capability-matrix failure: cecsan-nosubobj misses
           sub-object overflows that the full matrix requires.  Shrink
           while that false negative persists. *)
        let nosubobj () =
          Cecsan.sanitizer ~config:Cecsan.Config.no_subobject ()
        in
        let misses tape =
          let p = Fuzz.Gen.generate ~inject:true (Fuzz.Tape.replay tape) in
          match p.Fuzz.Gen.plan with
          | Some pl when pl.Fuzz.Gen.cls = Fuzz.Gen.Subobject ->
            (match
               Fuzz.Oracle.run_tool (nosubobj ()) ~optimize:true
                 p.Fuzz.Gen.src
             with
             | tr -> not tr.Fuzz.Oracle.detected
             | exception Fuzz.Oracle.Compile_error _ -> false)
          | _ -> false
        in
        let rec find i =
          if i > 500 then Alcotest.fail "no missed subobject case found"
          else
            let p = injected_program (Fuzz.Tape.mix 0xFA11 i) in
            if misses p.Fuzz.Gen.tape then p else find (i + 1)
        in
        let p = find 0 in
        let tape = Fuzz.Shrink.minimize ~still_fails:misses p.Fuzz.Gen.tape in
        let p_min = Fuzz.Gen.generate ~inject:true (Fuzz.Tape.replay tape) in
        Alcotest.(check bool) "still fails after shrinking" true
          (misses tape);
        let lines = Fuzz.Gen.line_count p_min.Fuzz.Gen.src in
        if lines > 30 then
          Alcotest.failf "shrunk repro has %d lines:@.%s" lines
            p_min.Fuzz.Gen.src);
    Alcotest.test_case "shrinking is deterministic" `Quick (fun () ->
        (* same (tape, predicate) -> same minimum, twice *)
        let wants_uaf tape =
          let p = Fuzz.Gen.generate ~inject:true (Fuzz.Tape.replay tape) in
          match p.Fuzz.Gen.plan with
          | Some pl -> pl.Fuzz.Gen.cls = Fuzz.Gen.Uaf
          | None -> false
        in
        let rec find i =
          if i > 500 then Alcotest.fail "no uaf case found"
          else
            let p = injected_program (Fuzz.Tape.mix 0xDE7 i) in
            if wants_uaf p.Fuzz.Gen.tape then p else find (i + 1)
        in
        let p = find 0 in
        let t1 = Fuzz.Shrink.minimize ~still_fails:wants_uaf p.Fuzz.Gen.tape in
        let t2 = Fuzz.Shrink.minimize ~still_fails:wants_uaf p.Fuzz.Gen.tape in
        Alcotest.(check (array int)) "same minimum" t1 t2);
  ]

(* --- mutation --------------------------------------------------------------- *)

(* Mutators inherit the "any int array is a valid tape" contract: no
   matter which operator rewrites a recorded tape, replaying the result
   must still produce a type-checking, terminating MiniC program.
   count 334 x 6 operators > 2000 mutated tapes. *)
let mutate_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"every mutator yields valid terminating programs"
         ~count:334 seed_gen
         (fun seed ->
            let base = (clean_program seed).Fuzz.Gen.tape in
            let partner =
              (clean_program (Fuzz.Tape.mix seed 1)).Fuzz.Gen.tape
            in
            let rng = Fuzz.Tape.fresh ~seed:(Fuzz.Tape.mix seed 2) in
            List.for_all
              (fun op ->
                 let tape = Fuzz.Mutate.apply op ~rng ~partner base in
                 let p =
                   Fuzz.Gen.generate ~inject:false (Fuzz.Tape.replay tape)
                 in
                 (match Minic.Sema.parse_and_check p.Fuzz.Gen.src with
                  | _ -> ()
                  | exception Minic.Sema.Error (m, l) ->
                    QCheck.Test.fail_reportf "seed %d %s: line %d: %s@.%s"
                      seed (Fuzz.Mutate.op_name op) l m p.Fuzz.Gen.src);
                 let r =
                   Sanitizer.Driver.run Sanitizer.Spec.none
                     ~externs:Fuzz.Oracle.externs p.Fuzz.Gen.src
                 in
                 match r.Sanitizer.Driver.outcome with
                 | Vm.Machine.Exit _ -> true
                 | o ->
                   QCheck.Test.fail_reportf "seed %d %s: %a@.%s" seed
                     (Fuzz.Mutate.op_name op) Vm.Machine.pp_outcome o
                     p.Fuzz.Gen.src)
              Fuzz.Mutate.all_ops));
    Alcotest.test_case "shrink converges on mutated repro tapes" `Quick
      (fun () ->
        (* mutate an injected tape, then shrink against "still plants
           the same class": must terminate at a fixed point that still
           satisfies the predicate *)
        let rec find i =
          if i > 500 then Alcotest.fail "no mutated injected case found"
          else
            let p = injected_program (Fuzz.Tape.mix 0x3117 i) in
            let rng =
              Fuzz.Tape.fresh ~seed:(Fuzz.Tape.mix 0x3117 (i + 1000))
            in
            let _, tape = Fuzz.Mutate.mutate ~rng p.Fuzz.Gen.tape in
            let p' =
              Fuzz.Gen.generate ~inject:true (Fuzz.Tape.replay tape)
            in
            match p'.Fuzz.Gen.plan with
            | Some pl -> (tape, pl.Fuzz.Gen.cls)
            | None -> find (i + 1)
        in
        let tape, cls = find 0 in
        let same_class t =
          let p = Fuzz.Gen.generate ~inject:true (Fuzz.Tape.replay t) in
          match p.Fuzz.Gen.plan with
          | Some pl -> pl.Fuzz.Gen.cls = cls
          | None -> false
        in
        let t1 = Fuzz.Shrink.minimize ~still_fails:same_class tape in
        Alcotest.(check bool) "minimum still plants the class" true
          (same_class t1);
        let t2 = Fuzz.Shrink.minimize ~still_fails:same_class t1 in
        Alcotest.(check (array int)) "fixed point" t1 t2;
        Alcotest.(check bool) "no longer than the mutant" true
          (Array.length t1 <= Array.length tape));
  ]

(* --- corpus replay ---------------------------------------------------------- *)

(* Every corpus entry replays under CECSan: Halt reports the planted
   class; Recover completes with findings. *)
let corpus_dir = "corpus"

let corpus_class_of_contents contents =
  let lines = String.split_on_char '\n' contents in
  List.find_map
    (fun l ->
       let l = String.trim l in
       let prefix = "class: " in
       if String.length l > String.length prefix
       && String.sub l 0 (String.length prefix) = prefix
       then
         Fuzz.Gen.class_of_name
           (String.sub l (String.length prefix)
              (String.length l - String.length prefix))
       else None)
    lines

let corpus_tests =
  let files =
    if Sys.file_exists corpus_dir then
      Sys.readdir corpus_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".mc")
      |> List.sort compare
    else []
  in
  Alcotest.test_case "corpus is present" `Quick (fun () ->
      Alcotest.(check bool) "at least 10 entries" true
        (List.length files >= 10))
  :: List.map
    (fun file ->
       Alcotest.test_case (Printf.sprintf "corpus %s replays" file) `Quick
         (fun () ->
            let path = Filename.concat corpus_dir file in
            let ic = open_in_bin path in
            let src = really_input_string ic (in_channel_length ic) in
            close_in ic;
            let cls =
              match corpus_class_of_contents src with
              | Some c -> c
              | None -> Alcotest.failf "%s: no class header" file
            in
            let halt =
              Fuzz.Oracle.run_tool (Cecsan.sanitizer ()) ~optimize:true src
            in
            Alcotest.(check bool) "detected under Halt" true
              halt.Fuzz.Oracle.detected;
            (match halt.Fuzz.Oracle.first_kind with
             | Some k ->
               Alcotest.(check bool) "kind matches class header" true
                 (Fuzz.Oracle.kind_ok cls k)
             | None -> Alcotest.fail "no report kind");
            let recover =
              Fuzz.Oracle.run_tool (Cecsan.sanitizer ())
                ~policy:(Vm.Report.Recover
                           { max_reports = Vm.Report.default_max_reports })
                ~optimize:true src
            in
            Alcotest.(check bool) "detected under Recover" true
              recover.Fuzz.Oracle.detected))
    files

let () =
  Alcotest.run "fuzz"
    [
      "generator", gen_tests;
      "detection", detection_tests;
      "campaign", campaign_tests;
      "shrink", shrink_tests;
      "mutate", mutate_tests;
      "corpus", corpus_tests;
    ]

(* End-to-end tests of the uninstrumented pipeline: MiniC -> Tir -> VM.
   These pin down the *semantics* of the substrate: every sanitizer
   comparison rests on programs behaving like C here. *)

let base = Sanitizer.Spec.none

let run ?lines ?packets src = Sanitizer.Driver.run base ?lines ?packets src

let exit_code name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit c -> Alcotest.(check int) "exit code" expected c
      | o -> Alcotest.failf "expected exit %d, got %a" expected
               Vm.Machine.pp_outcome o)

let prints name src expected =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      (match r.Sanitizer.Driver.outcome with
       | Vm.Machine.Exit _ -> ()
       | o -> Alcotest.failf "run failed: %a" Vm.Machine.pp_outcome o);
      Alcotest.(check string) "output" expected r.Sanitizer.Driver.output)

let faults name src pred =
  Alcotest.test_case name `Quick (fun () ->
      let r = run src in
      match r.Sanitizer.Driver.outcome with
      | Vm.Machine.Fault t when pred t.Vm.Report.t_kind -> ()
      | o -> Alcotest.failf "expected a fault, got %a" Vm.Machine.pp_outcome o)

let arith_tests =
  [
    exit_code "return" "int main() { return 42; }" 42;
    exit_code "arith mix" "int main() { return 2 + 3 * 4 - 6 / 2; }" 11;
    exit_code "mod" "int main() { return 17 % 5; }" 2;
    exit_code "shifts" "int main() { return (1 << 6) | (256 >> 4); }" 80;
    exit_code "bitwise" "int main() { return (12 & 10) ^ (1 | 4); }" 13;
    exit_code "negative" "int main() { return 0 - (-7) * (-1) + 10; }" 3;
    exit_code "comparison chain"
      "int main() { return (1 < 2) + (2 <= 2) + (3 > 2) + (2 >= 3) + \
       (1 == 1) + (1 != 1); }" 4;
    exit_code "logical short circuit"
      "int g = 0;\nint bump() { g = g + 1; return 1; }\n\
       int main() { int r = 0 && bump(); int s = 1 || bump(); \
       return g * 10 + r + s; }" 1;
    exit_code "ternary" "int main() { int x = 7; return x > 5 ? 10 : 20; }" 10;
    exit_code "char sign extension"
      "int main() { char c = 200; return c < 0 ? 1 : 0; }" 1;
    exit_code "short truncation"
      "int main() { short s = 70000; return s == 4464 ? 1 : 0; }" 1;
    exit_code "cast narrowing"
      "int main() { long l = 0x1234; char c = (char)l; return c; }" 0x34;
    exit_code "sizeof values"
      "struct S { char a; long b; };\n\
       int main() { return sizeof(char) + sizeof(short) + sizeof(int) + \
       sizeof(long) + sizeof(int*) + sizeof(struct S); }" 39;
  ]

let control_tests =
  [
    exit_code "for sum" "int main() { int s = 0; for (int i = 1; i <= 10; i++) \
                         s += i; return s; }" 55;
    exit_code "while countdown"
      "int main() { int n = 100; int c = 0; while (n > 1) { n /= 2; c++; } \
       return c; }" 6;
    exit_code "do-while"
      "int main() { int i = 0; int n = 0; do { n++; i++; } while (i < 3); \
       return n; }" 3;
    exit_code "nested loops"
      "int main() { int s = 0; for (int i = 0; i < 5; i++) \
       for (int j = 0; j < i; j++) s++; return s; }" 10;
    exit_code "break/continue"
      "int main() { int s = 0; for (int i = 0; i < 100; i++) { \
       if (i % 2 == 0) continue; if (i > 10) break; s += i; } return s; }" 25;
    exit_code "recursion (fib)"
      "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
       int main() { return fib(12); }" 144;
    exit_code "mutual recursion"
      "int is_odd(int n);\n\
       int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }\n\
       int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }\n\
       int main() { return is_even(10) * 10 + is_odd(7); }" 11;
    exit_code "early return" "int f(int x) { if (x > 0) return 1; return 2; }\n\
                              int main() { return f(5) * 10 + f(-5); }" 12;
  ]

let memory_tests =
  [
    exit_code "stack array"
      "int main() { int a[5]; for (int i = 0; i < 5; i++) a[i] = i * i; \
       return a[4]; }" 16;
    exit_code "array init list"
      "int main() { int a[5] = {1, 2, 3}; return a[0] + a[1] + a[2] + a[3] + \
       a[4]; }" 6;
    exit_code "2d array"
      "int main() { int m[3][4]; for (int i = 0; i < 3; i++) \
       for (int j = 0; j < 4; j++) m[i][j] = i * 4 + j; \
       return m[2][3]; }" 11;
    exit_code "pointer swap"
      "void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }\n\
       int main() { int x = 3; int y = 9; swap(&x, &y); \
       return x * 10 + y; }" 93;
    exit_code "pointer walk"
      "int main() { int a[4] = {1, 2, 3, 4}; int *p = a; int s = 0; \
       for (int i = 0; i < 4; i++) { s += *p; p++; } return s; }" 10;
    exit_code "pointer diff"
      "int main() { long a[8]; long *p = &a[6]; long *q = &a[2]; \
       return (int)(p - q); }" 4;
    exit_code "malloc/free roundtrip"
      "int main() { int *p = (int*)malloc(10 * sizeof(int)); \
       for (int i = 0; i < 10; i++) p[i] = i; int s = p[9]; free(p); \
       return s; }" 9;
    exit_code "calloc zeroes"
      "int main() { int *p = (int*)calloc(8, sizeof(int)); int s = 0; \
       for (int i = 0; i < 8; i++) s += p[i]; free(p); return s; }" 0;
    exit_code "realloc preserves"
      "int main() { int *p = (int*)malloc(4 * sizeof(int)); \
       p[0] = 11; p[3] = 44; p = (int*)realloc(p, 16 * sizeof(int)); \
       int s = p[0] + p[3]; free(p); return s; }" 55;
    exit_code "malloc reuse after free"
      "int main() { char *a = (char*)malloc(32); free(a); \
       char *b = (char*)malloc(32); int same = (a == b); free(b); \
       return same; }" 1;
    exit_code "struct fields"
      "struct P { int x; int y; };\n\
       int main() { struct P p; p.x = 6; p.y = 7; return p.x * p.y; }" 42;
    exit_code "struct pointer"
      "struct P { int x; int y; };\n\
       void set(struct P *p, int v) { p->x = v; p->y = v * 2; }\n\
       int main() { struct P p; set(&p, 5); return p.x + p.y; }" 15;
    exit_code "struct copy"
      "struct P { int x; int y; };\n\
       int main() { struct P a; a.x = 1; a.y = 2; struct P b; b = a; \
       a.x = 9; return b.x * 10 + b.y; }" 12;
    exit_code "nested struct access"
      "struct In { int v; };\nstruct Out { struct In in; int w; };\n\
       int main() { struct Out o; o.in.v = 3; o.w = 4; \
       return o.in.v + o.w; }" 7;
    exit_code "struct array field"
      "struct Buf { char data[8]; int len; };\n\
       int main() { struct Buf b; b.len = 0; \
       for (int i = 0; i < 5; i++) { b.data[i] = 'a' + i; b.len++; } \
       return b.data[4] - 'a' + b.len; }" 9;
    exit_code "global counters"
      "int counter;\nvoid tick() { counter++; }\n\
       int main() { for (int i = 0; i < 5; i++) tick(); return counter; }" 5;
    exit_code "global array"
      "int table[10] = {9, 8, 7};\n\
       int main() { table[3] = 1; return table[0] + table[2] + table[3]; }" 17;
    exit_code "global struct"
      "struct Cfg { int a; int b; };\nstruct Cfg cfg = {3, 4};\n\
       int main() { return cfg.a * cfg.b; }" 12;
    exit_code "heap struct"
      "struct Node { int value; struct Node *next; };\n\
       int main() { struct Node *n1 = (struct Node*)malloc(sizeof(struct \
       Node)); struct Node *n2 = (struct Node*)malloc(sizeof(struct Node)); \
       n1->value = 1; n1->next = n2; n2->value = 2; n2->next = NULL; \
       int s = 0; struct Node *p = n1; while (p != NULL) { s += p->value; \
       p = p->next; } free(n1); free(n2); return s; }" 3;
  ]

let string_tests =
  [
    exit_code "strlen/strcpy"
      "int main() { char buf[16]; strcpy(buf, \"hello\"); \
       return (int)strlen(buf); }" 5;
    exit_code "strcat"
      "int main() { char buf[16] = \"ab\"; strcat(buf, \"cd\"); \
       return (int)strlen(buf) * 10 + (buf[3] == 'd'); }" 41;
    exit_code "strcmp"
      "int main() { return (strcmp(\"abc\", \"abc\") == 0) * 100 + \
       (strcmp(\"abc\", \"abd\") < 0) * 10 + (strcmp(\"b\", \"a\") > 0); }" 111;
    exit_code "strncpy pads"
      "int main() { char buf[8]; buf[5] = 'x'; strncpy(buf, \"ab\", 6); \
       return buf[5] == 0; }" 1;
    exit_code "strchr"
      "int main() { char *s = \"hello\"; char *p = strchr(s, 'l'); \
       return (int)(p - s); }" 2;
    exit_code "strdup"
      "int main() { char *p = strdup(\"dup\"); int n = (int)strlen(p); \
       free(p); return n; }" 3;
    exit_code "memcmp/memset"
      "int main() { char a[8]; char b[8]; memset(a, 7, 8); memset(b, 7, 8); \
       return memcmp(a, b, 8) == 0; }" 1;
    exit_code "memmove overlap"
      "int main() { char b[8] = {1, 2, 3, 4, 5}; memmove(b + 2, b, 3); \
       return b[2] * 100 + b[3] * 10 + b[4]; }" 123;
    exit_code "atoi" "int main() { return atoi(\"  1234xyz\"); }" 1234;
    exit_code "wide strings"
      "int main() { wchar_t buf[8]; wcscpy(buf, L\"wide\"); \
       return (int)wcslen(buf); }" 4;
    exit_code "wcsncpy"
      "int main() { wchar_t buf[8]; wcsncpy(buf, L\"ab\", 8); \
       return buf[1] == 'b' && buf[7] == 0; }" 1;
    prints "printf formats"
      "int main() { printf(\"%d %s %c %x!\", 42, \"ok\", 'Z', 255); \
       return 0; }"
      "42 ok Z ff!";
    prints "puts" "int main() { puts(\"line\"); return 0; }" "line\n";
  ]

let input_tests =
  [
    Alcotest.test_case "fgets from dummy server" `Quick (fun () ->
        let r =
          run ~lines:[ "first"; "second" ]
            "int main() { char buf[32]; fgets(buf, 32, 0); \
             int a = (int)strlen(buf); fgets(buf, 32, 0); \
             return a * 10 + (int)strlen(buf); }"
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit c -> Alcotest.(check int) "lens" 56 c
        | o -> Alcotest.failf "failed: %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "recv from dummy server" `Quick (fun () ->
        let r =
          run ~packets:[ "abcdef" ]
            "int main() { char buf[16]; int fd = socket(2, 1, 0); \
             long n = recv(fd, buf, 16, 0); return (int)n; }"
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit c -> Alcotest.(check int) "bytes" 6 c
        | o -> Alcotest.failf "failed: %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "fgets EOF returns NULL" `Quick (fun () ->
        let r =
          run
            "int main() { char buf[8]; char *p = fgets(buf, 8, 0); \
             return p == NULL; }"
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit 1 -> ()
        | o -> Alcotest.failf "failed: %a" Vm.Machine.pp_outcome o);
  ]

let fault_tests =
  [
    faults "null deref" "int main() { int *p = NULL; return *p; }"
      (function Vm.Report.Null_deref -> true | _ -> false);
    faults "wild pointer"
      "int main() { long *p = (long*)123456789012345; return (int)*p; }"
      (function Vm.Report.Segfault -> true | _ -> false);
    faults "division by zero"
      "int main() { int z = 0; return 5 / z; }"
      (function Vm.Report.Div_by_zero -> true | _ -> false);
    faults "stack exhaustion"
      "int deep(int n) { char pad[512]; pad[0] = (char)n; \
       return deep(n + 1) + pad[0]; }\n\
       int main() { return deep(0); }"
      (function Vm.Report.Stack_exhausted -> true | _ -> false);
    faults "glibc double free abort"
      "int main() { char *p = (char*)malloc(8); free(p); free(p); \
       return 0; }"
      (function Vm.Report.Heap_corruption -> true | _ -> false);
    faults "glibc invalid free abort"
      "int main() { char *p = (char*)malloc(8); free(p + 4); return 0; }"
      (function Vm.Report.Heap_corruption -> true | _ -> false);
    Alcotest.test_case "exit() builtin" `Quick (fun () ->
        let r = run "int main() { exit(7); return 0; }" in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit 7 -> ()
        | o -> Alcotest.failf "failed: %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "silent heap overflow into neighbor" `Quick
      (fun () ->
         (* no sanitizer: an OOB write into an adjacent allocation neither
            faults nor aborts -- the canonical silent corruption *)
         let r =
           run
             "int main() { char *a = (char*)malloc(16); \
              char *b = (char*)malloc(16); b[0] = 'B'; \
              a[18] = 'X'; return b[0]; }"
         in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o -> Alcotest.failf "expected silent corruption, got %a"
                  Vm.Machine.pp_outcome o);
  ]

let promote_tests =
  [
    Alcotest.test_case "scalars are promoted" `Quick (fun () ->
        let checked =
          Minic.Sema.parse_and_check
            "int main() { int a = 1; int b = 2; int c[4]; c[0] = a; \
             int *p = &b; return a + *p; }"
        in
        let md = Tir.Lower.lower checked in
        let n = Tir.Promote.run md in
        (* a is promotable; b has its address taken; c is an array *)
        Alcotest.(check bool) "promoted at least one" true (n >= 1);
        let f = Option.get (Tir.Ir.find_func md "main") in
        let slot_names =
          List.map (fun s -> s.Tir.Ir.s_name) f.Tir.Ir.f_slots
        in
        Alcotest.(check bool) "a gone" false (List.mem "a" slot_names);
        Alcotest.(check bool) "b kept" true (List.mem "b" slot_names);
        Alcotest.(check bool) "c kept" true (List.mem "c" slot_names));
    Alcotest.test_case "promotion preserves semantics" `Quick (fun () ->
        let src =
          "int main() { int s = 0; for (int i = 0; i < 17; i++) { char c = \
           (char)(i * 37); s += c; } return s & 255; }"
        in
        let r1 = Sanitizer.Driver.run base ~optimize:false src in
        let r2 = Sanitizer.Driver.run base ~optimize:true src in
        match r1.Sanitizer.Driver.outcome, r2.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit a, Vm.Machine.Exit b ->
          Alcotest.(check int) "same result" a b
        | _ -> Alcotest.fail "runs failed");
    Alcotest.test_case "promotion reduces cycles" `Quick (fun () ->
        let src =
          "int main() { int s = 0; for (int i = 0; i < 1000; i++) s += i; \
           return s & 255; }"
        in
        let r1 = Sanitizer.Driver.run base ~optimize:false src in
        let r2 = Sanitizer.Driver.run base ~optimize:true src in
        Alcotest.(check bool) "O2 is faster" true
          (r2.Sanitizer.Driver.cycles < r1.Sanitizer.Driver.cycles));
    Alcotest.test_case "unsafe stack slots detected" `Quick (fun () ->
        let md =
          Sanitizer.Driver.compile
            "void fill(char *p) { p[0] = 1; }\n\
             int main() { char buf[8]; fill(buf); int plain = 3; \
             return plain; }"
        in
        let f = Option.get (Tir.Ir.find_func md "main") in
        let buf =
          List.find (fun s -> String.equal s.Tir.Ir.s_name "buf")
            f.Tir.Ir.f_slots
        in
        Alcotest.(check bool) "buf unsafe" true buf.Tir.Ir.s_unsafe);
  ]

(* --- substrate property tests -------------------------------------------------- *)

let substrate_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"memory load/store roundtrip" ~count:300
         QCheck.(triple (int_bound 0xFFFF) (int_range 1 8) int)
         (fun (off, size, v) ->
            let size = match size with 3 -> 2 | 5 | 6 | 7 -> 4 | s -> s in
            let mem = Vm.Memory.create () in
            let a = Vm.Layout46.heap_base + off in
            let mask =
              if size >= 8 then -1 else (1 lsl (size * 8)) - 1
            in
            Vm.Memory.store mem a size v;
            Vm.Memory.load mem a size = v land mask));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"page-straddling stores read back" ~count:100
         QCheck.(pair (int_range 4090 4100) int)
         (fun (off, v) ->
            let mem = Vm.Memory.create () in
            let a = Vm.Layout46.heap_base + off in
            Vm.Memory.store mem a 8 v;
            Vm.Memory.load mem a 8 = v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"negative values survive memory" ~count:100
         QCheck.int
         (fun v ->
            let mem = Vm.Memory.create () in
            let a = Vm.Layout46.heap_base in
            Vm.Memory.store mem a 8 v;
            (* the VM models a 63-bit word *)
            Vm.Memory.load mem a 8 = v));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"allocator never hands out overlapping blocks"
         ~count:100
         QCheck.(small_list (int_range 1 200))
         (fun sizes ->
            let mem = Vm.Memory.create () in
            let t = Vm.Alloc.create mem in
            let blocks = List.map (fun s -> (Vm.Alloc.malloc t s, s)) sizes in
            let rec no_overlap = function
              | [] -> true
              | (a, sa) :: rest ->
                List.for_all
                  (fun (b, sb) -> a + sa <= b || b + sb <= a)
                  rest
                && no_overlap rest
            in
            no_overlap blocks));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"freed blocks are reused, never leaked forward"
         ~count:100
         QCheck.(int_range 1 64)
         (fun size ->
            let mem = Vm.Memory.create () in
            let t = Vm.Alloc.create mem in
            let a = Vm.Alloc.malloc t size in
            Vm.Alloc.free t a;
            let b = Vm.Alloc.malloc t size in
            a = b));
    Alcotest.test_case "copy handles overlap both directions" `Quick
      (fun () ->
         let mem = Vm.Memory.create () in
         let a = Vm.Layout46.heap_base in
         for i = 0 to 15 do
           Vm.Memory.store_byte mem (a + i) i
         done;
         Vm.Memory.copy mem ~src:a ~dst:(a + 4) ~len:8;
         Alcotest.(check int) "forward overlap" 3
           (Vm.Memory.load_byte mem (a + 7));
         for i = 0 to 15 do
           Vm.Memory.store_byte mem (a + i) i
         done;
         Vm.Memory.copy mem ~src:(a + 4) ~dst:a ~len:8;
         Alcotest.(check int) "backward overlap" 7
           (Vm.Memory.load_byte mem (a + 3)));
    Alcotest.test_case "residency accounting by region" `Quick (fun () ->
        let mem = Vm.Memory.create () in
        Vm.Memory.store_byte mem Vm.Layout46.heap_base 1;
        Vm.Memory.store_byte mem Vm.Layout46.shadow_base 1;
        Alcotest.(check int) "two pages" (2 * 4096)
          (Vm.Memory.resident_bytes mem);
        Alcotest.(check int) "one program page" 4096
          (Vm.Memory.program_bytes mem);
        Alcotest.(check int) "one sanitizer page" 4096
          (Vm.Memory.sanitizer_bytes mem));
    Alcotest.test_case "rand is deterministic per seed" `Quick (fun () ->
        let seq seed =
          let st = Vm.State.create ~seed () in
          List.init 10 (fun _ -> Vm.State.next_rand st)
        in
        Alcotest.(check (list int)) "same seed" (seq 7) (seq 7);
        Alcotest.(check bool) "different seeds differ" true
          (seq 7 <> seq 8));
    Alcotest.test_case "input server splits long lines" `Quick (fun () ->
        let t = Vm.Input.create () in
        Vm.Input.provide_line t "abcdefghij";
        (match Vm.Input.fgets t ~max:5 with
         | Some "abcd" -> ()
         | Some s -> Alcotest.failf "got %S" s
         | None -> Alcotest.fail "EOF");
        match Vm.Input.fgets t ~max:100 with
        | Some "efghij" -> ()
        | Some s -> Alcotest.failf "rest: %S" s
        | None -> Alcotest.fail "EOF on rest");
    Alcotest.test_case "packets split by recv max" `Quick (fun () ->
        let t = Vm.Input.create () in
        Vm.Input.provide_packet t "0123456789";
        Alcotest.(check string) "first" "0123" (Vm.Input.recv t ~max:4);
        Alcotest.(check string) "second" "456789" (Vm.Input.recv t ~max:64);
        Alcotest.(check string) "exhausted" "" (Vm.Input.recv t ~max:4));
    Alcotest.test_case "cycle budget enforced" `Quick (fun () ->
        let r =
          Sanitizer.Driver.run Sanitizer.Spec.none ~budget:10_000
            "int main() { int s = 0; for (int i = 0; i < 1000000; i++)              s += i; return s & 1; }"
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Fault { t_kind = Vm.Report.Out_of_cycles; _ } -> ()
        | o ->
          Alcotest.failf "expected cycle exhaustion, got %a"
            Vm.Machine.pp_outcome o);
  ]

(* --- last-page cache audit -------------------------------------------------- *)

(* [Vm.Memory]'s last-page cache holds the bytes object of the most
   recently touched page.  Its safety rests on pages never being
   removed or replaced once materialized (free/realloc recycle address
   ranges; fault-injected table shrink only narrows a logical limit).
   These tests pin that invariant down against a model and against the
   operations the audit flagged as suspects. *)
let page_cache_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"cache coherent with a model across page-hopping ops"
         ~count:200
         QCheck.(small_list (triple (int_bound 40) (int_bound 8191) int))
         (fun ops ->
            let mem = Vm.Memory.create () in
            let model = Hashtbl.create 64 in
            (* spread accesses over 40 pages in two regions so the
               single-entry cache is evicted and refilled constantly *)
            let addr pg off =
              let base =
                if pg land 1 = 0 then Vm.Layout46.heap_base
                else Vm.Layout46.globals_base
              in
              base + (pg * 8192) + off
            in
            List.for_all
              (fun (pg, off, v) ->
                 let a = addr pg off in
                 match v land 3 with
                 | 0 ->
                   Vm.Memory.store_byte mem a (v land 0xff);
                   Hashtbl.replace model a (v land 0xff);
                   true
                 | 1 ->
                   Vm.Memory.invalidate_cache mem;
                   true
                 | _ ->
                   let expect =
                     match Hashtbl.find_opt model a with
                     | Some x -> x
                     | None -> 0
                   in
                   Vm.Memory.load_byte mem a = expect)
              ops));
    Alcotest.test_case "cache survives free/realloc recycling" `Quick
      (fun () ->
         let mem = Vm.Memory.create () in
         let t = Vm.Alloc.create mem in
         let a = Vm.Alloc.malloc t 64 in
         Vm.Memory.fill mem ~dst:a ~len:64 0xAA;
         (* cache now holds a's page; free and re-malloc must recycle
            the block without invalidating its backing store *)
         Vm.Alloc.free t a;
         let b = Vm.Alloc.malloc t 64 in
         Alcotest.(check int) "block recycled" a b;
         Vm.Memory.store_byte mem b 0x55;
         (* touch a distant page to evict, then come back *)
         Vm.Memory.store_byte mem Vm.Layout46.globals_base 1;
         Alcotest.(check int) "recycled byte reads back" 0x55
           (Vm.Memory.load_byte mem b);
         Alcotest.(check int) "old fill still backing the page" 0xAA
           (Vm.Memory.load_byte mem (b + 1));
         (* realloc at the libc level: malloc bigger + copy + free *)
         let c = Vm.Alloc.malloc t 4096 in
         Vm.Memory.copy mem ~src:b ~dst:c ~len:64;
         Vm.Alloc.free t b;
         Alcotest.(check int) "grown copy preserved data" 0x55
           (Vm.Memory.load_byte mem c));
    Alcotest.test_case "invalidate_cache is transparent" `Quick (fun () ->
        let mem = Vm.Memory.create () in
        let a = Vm.Layout46.heap_base in
        Vm.Memory.store mem a 8 0x1122334455667788;
        Vm.Memory.invalidate_cache mem;
        Alcotest.(check int) "load after invalidation" 0x1122334455667788
          (Vm.Memory.load mem a 8);
        Vm.Memory.invalidate_cache mem;
        Vm.Memory.store_byte mem (a + 1) 0xFF;
        Alcotest.(check int) "store after invalidation merges" 0x112233445566FF88
          (Vm.Memory.load mem a 8));
    Alcotest.test_case "fault-injected table shrink is repeatable" `Quick
      (fun () ->
         (* a stale cache would show up as run-to-run divergence once
            the metadata table degrades under table:N; two identical
            runs must agree byte for byte *)
         let src =
           "int main() {\n\
           \  int sum = 0;\n\
           \  for (int i = 0; i < 24; i++) {\n\
           \    char *p = malloc(32 + i);\n\
           \    for (int k = 0; k < 32; k++) p[k] = k + i;\n\
           \    sum = sum + p[31];\n\
           \    if (i % 3 == 0) { p = realloc(p, 128); sum = sum + p[0]; }\n\
           \    free(p);\n\
           \  }\n\
           \  printf(\"S:%d\\n\", sum);\n\
           \  return sum & 63;\n\
            }\n"
         in
         let go () =
           let fault =
             match Vm.Fault.parse "table:8" with
             | Ok s -> Vm.Fault.of_specs [ s ]
             | Error m -> Alcotest.fail m
           in
           let r =
             Sanitizer.Driver.run (Cecsan.sanitizer ()) ~fault
               ~policy:(Vm.Report.Recover
                          { max_reports = Vm.Report.default_max_reports })
               src
           in
           (Format.asprintf "%a" Vm.Machine.pp_outcome
              r.Sanitizer.Driver.outcome,
            r.Sanitizer.Driver.output)
         in
         let o1, out1 = go () and o2, out2 = go () in
         Alcotest.(check string) "outcome stable" o1 o2;
         Alcotest.(check string) "output stable" out1 out2);
  ]

let () =
  Alcotest.run "vm"
    [
      "arith", arith_tests;
      "control", control_tests;
      "memory", memory_tests;
      "strings", string_tests;
      "input", input_tests;
      "faults", fault_tests;
      "promote", promote_tests;
      "substrate", substrate_tests;
      "page cache", page_cache_tests;
    ]

(* Tests of the certified-elision pipeline (DESIGN.md section 16):
   Tir.Absint behavior through the CECSan and ASan-- pipelines, the
   Tir.Scev overflow-guarded endpoint helpers, witness-replay mutation
   kills, and the absint-on/off differential property. *)

let seed_gen = QCheck.(map abs int)

let build_cecsan ?(absint = true) src =
  let config =
    { Cecsan.Config.default with Cecsan.Config.opt_absint = absint }
  in
  Sanitizer.Driver.build (Cecsan.sanitizer ~config ()) src

let count_markers md =
  Tir.Ir.count_intrins md (fun n -> String.equal n Tir.Ir.telemetry_elided)

let count_checks md =
  Tir.Ir.count_intrins md (fun n ->
      List.mem_assoc n Cecsan.Opt.model.Tir.Absint.am_checks)

(* straight-line, non-escaping stack + heap accesses: everything the
   redundant pass leaves behind is certifiably elidable *)
let demo_src =
  "int main() { int a[4]; a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4; \
   int *p = (int*)malloc(8); p[0] = a[0] + a[2]; p[1] = a[1] + a[3]; \
   int r = p[0] * p[1]; free(p); return r & 0x7f; }"

(* --- elision through the full pipeline ----------------------------------- *)

let absint_tests =
  [
    Alcotest.test_case "in-bounds non-escaping checks elide with witnesses"
      `Quick
      (fun () ->
         (* Strict verify inside [build] already replayed every witness *)
         let md = build_cecsan demo_src in
         Alcotest.(check bool) "elided markers present" true
           (count_markers md > 0);
         Alcotest.(check bool) "witnesses minted" true
           (md.Tir.Ir.m_witnesses <> []);
         List.iter
           (fun w ->
              Alcotest.(check bool) "witness claims non-escaping" false
                w.Tir.Witness.w_escapes)
           md.Tir.Ir.m_witnesses);
    Alcotest.test_case "an escaping pointer blocks elision" `Quick
      (fun () ->
         (* p escapes into the impure callee, so its checks survive *)
         let src =
           "static void sink(int *q) { free(q); } \
            int main() { int *p = (int*)malloc(8); p[0] = 7; \
            int r = p[0]; sink(p); return r; }"
         in
         let md = build_cecsan src in
         Alcotest.(check bool) "checks remain" true (count_checks md > 0));
    Alcotest.test_case "absint strictly increases elided sites" `Quick
      (fun () ->
         (* the acceptance pin: on top of redundant + loop elisions, the
            absint pass must elide or downgrade strictly more sites
            across the kernels (SPEC code mostly earns downgrades: the
            temporal half proves where variable sizes block bounds) *)
         let total absint =
           List.fold_left
             (fun acc (w : Workloads.Spec2006.t) ->
                match build_cecsan ~absint w.Workloads.Spec2006.w_source with
                | md ->
                  acc + count_markers md
                  + Tir.Ir.count_intrins md (fun n ->
                      Filename.check_suffix n "_spatial")
                | exception Sanitizer.Spec.Unsupported _ -> acc)
             0
             Workloads.Spec2006.all
         in
         let on = total true and off = total false in
         Alcotest.(check bool)
           (Printf.sprintf "%d (absint) > %d (scev-only)" on off)
           true (on > off));
    Alcotest.test_case "asan-- rides the same machinery via call models"
      `Quick
      (fun () ->
         (* allocator CALLS (not intrinsics) feed the points-to domain;
            Strict verify replayed the witnesses during build *)
         let md =
           Sanitizer.Driver.build (Baselines.Asan_minus.sanitizer ()) demo_src
         in
         Alcotest.(check bool) "asan-- witnesses minted" true
           (md.Tir.Ir.m_witnesses <> []));
    Alcotest.test_case "downgraded sites keep their site id and detection"
      `Quick
      (fun () ->
         (* every witness must point at a live site of its function *)
         let md = build_cecsan demo_src in
         List.iter
           (fun w ->
              Alcotest.(check bool) "site id minted" true
                (w.Tir.Witness.w_site >= 0))
           md.Tir.Ir.m_witnesses);
  ]

(* --- Tir.Scev endpoint edge cases (overflow-guarded helpers) -------------- *)

let scev_tests =
  [
    Alcotest.test_case "non-positive strides and zero-trip loops reject"
      `Quick
      (fun () ->
         Alcotest.(check (option int)) "negative stride" None
           (Tir.Scev.last_index ~start:0 ~bound:10 ~step:(-2));
         Alcotest.(check (option int)) "zero stride" None
           (Tir.Scev.last_index ~start:0 ~bound:10 ~step:0);
         Alcotest.(check (option int)) "zero-trip (bound = start)" None
           (Tir.Scev.last_index ~start:5 ~bound:5 ~step:1);
         Alcotest.(check (option int)) "zero-trip (bound < start)" None
           (Tir.Scev.last_index ~start:9 ~bound:2 ~step:3);
         Alcotest.(check (option int)) "one-trip" (Some 4)
           (Tir.Scev.last_index ~start:4 ~bound:5 ~step:7));
    Alcotest.test_case "endpoint arithmetic near max_int refuses to wrap"
      `Quick
      (fun () ->
         Alcotest.(check (option int)) "add overflow" None
           (Tir.Scev.add_no_ov max_int 1);
         Alcotest.(check (option int)) "sub underflow" None
           (Tir.Scev.sub_no_ov min_int 1);
         Alcotest.(check (option int)) "mul overflow" None
           (Tir.Scev.mul_no_ov ((max_int / 2) + 1) 2);
         Alcotest.(check (option int)) "min_int * -1" None
           (Tir.Scev.mul_no_ov min_int (-1));
         Alcotest.(check (option (pair int int))) "endpoint mul overflow"
           None
           (Tir.Scev.endpoint_offsets ~start:(max_int / 2)
              ~bound:((max_int / 2) + 2) ~step:1 ~elem_size:4 ~off:0);
         Alcotest.(check (option (pair int int))) "endpoint off overflow"
           None
           (Tir.Scev.endpoint_offsets ~start:(max_int - 8) ~bound:max_int
              ~step:1 ~elem_size:1 ~off:16));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"derived endpoints never overflow or flip sign" ~count:2000
         QCheck.(
           let corner =
             oneofl [ 0; 1; 2; 7; 1000; max_int; max_int - 1; max_int / 2;
                      max_int / 4 * 3 ]
           in
           let small = map abs small_int in
           tup5 (oneof [ small; corner ]) (oneof [ small; corner ])
             (map (fun n -> 1 + abs n) small_int)
             (oneof [ small; oneofl [ 0; 1; 4; 8; max_int / 2 ] ])
             (oneof [ small; corner ]))
         (fun (start, bound, step, elem_size, off) ->
            match
              Tir.Scev.endpoint_offsets ~start ~bound ~step ~elem_size ~off
            with
            | None -> true
            | Some (x, y) ->
              (* all inputs are >= 0 here, so a negative endpoint can
                 only come from silent wraparound *)
              if x < 0 || y < 0 || x > y then
                QCheck.Test.fail_reportf
                  "start=%d bound=%d step=%d es=%d off=%d -> (%d, %d)"
                  start bound step elem_size off x y
              else true));
    Alcotest.test_case "negative-stride loops stay correct end to end"
      `Quick
      (fun () ->
         (* a countdown loop is outside scev's grouping pattern: checks
            stay per-iteration, behavior and detection are unchanged *)
         let clean =
           "int main() { int a[8]; int s = 0; \
            for (int i = 8; i > 0; i--) a[i-1] = i; \
            for (int i = 0; i < 8; i++) s = s + a[i]; return s & 0x7f; }"
         in
         (match
            (Sanitizer.Driver.run (Cecsan.sanitizer ()) clean)
              .Sanitizer.Driver.outcome
          with
          | Vm.Machine.Exit c -> Alcotest.(check int) "clean exit" 36 c
          | o ->
            Alcotest.failf "clean countdown: %a" Vm.Machine.pp_outcome o);
         let oob =
           "int main() { int a[8]; int s = 0; \
            for (int i = 8; i >= 0; i--) a[i] = i; \
            for (int i = 0; i < 8; i++) s = s + a[i]; return s & 0x7f; }"
         in
         match
           (Sanitizer.Driver.run (Cecsan.sanitizer ()) oob)
             .Sanitizer.Driver.outcome
         with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "oob countdown: %a" Vm.Machine.pp_outcome o);
  ]

(* --- witness-replay mutation kills ---------------------------------------- *)

(* Build the instrumented+optimized module WITHOUT the driver's Strict
   gate, so a mutation can be planted before verification. *)
let build_unverified src =
  let md = Sanitizer.Driver.compile_cached ~optimize:true src in
  let san = Cecsan.sanitizer () in
  san.Sanitizer.Spec.instrument md;
  san.Sanitizer.Spec.optimize md;
  md

let verify md = Tir.Verify.check ~spec:Cecsan.Opt.spec md

let mutate_first f (md : Tir.Ir.modul) =
  match md.Tir.Ir.m_witnesses with
  | [] -> Alcotest.fail "expected at least one witness"
  | w :: rest -> md.Tir.Ir.m_witnesses <- f w :: rest

let expect_reject what md =
  let r = verify md in
  Alcotest.(check bool) (what ^ " rejected") true
    (r.Tir.Verify.r_errors <> [])

let witness_tests =
  [
    Alcotest.test_case "intact witnesses replay clean" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         let r = verify md in
         Alcotest.(check (list string)) "no errors" []
           (List.map Tir.Verify.error_to_string r.Tir.Verify.r_errors);
         Alcotest.(check bool) "witnesses replayed" true
           (r.Tir.Verify.r_witnesses > 0));
    Alcotest.test_case "wrong interval bound is killed" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         mutate_first
           (fun w -> { w with Tir.Witness.w_hi = w.Tir.Witness.w_objsize })
           md;
         expect_reject "inflated w_hi" md);
    Alcotest.test_case "dropped escape fact is killed" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         mutate_first (fun w -> { w with Tir.Witness.w_escapes = true }) md;
         expect_reject "escaping witness" md);
    Alcotest.test_case "stale temporal liveness is killed" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         mutate_first (fun w -> { w with Tir.Witness.w_temporal = false }) md;
         expect_reject "non-temporal witness" md);
    Alcotest.test_case "wrong object descriptor is killed" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         mutate_first (fun w -> { w with Tir.Witness.w_obj = "slot:bogus:9" })
           md;
         expect_reject "bogus object" md);
    Alcotest.test_case "dangling witness site is killed" `Quick
      (fun () ->
         let md = build_unverified demo_src in
         mutate_first (fun w -> { w with Tir.Witness.w_site = 999999 }) md;
         expect_reject "dangling site" md);
    Alcotest.test_case "deleting witnesses shrinks proven coverage" `Quick
      (fun () ->
         let base = build_unverified demo_src in
         let covered_base = (verify base).Tir.Verify.r_covered in
         let md = build_unverified demo_src in
         md.Tir.Ir.m_witnesses <- [];
         let r = verify md in
         Alcotest.(check bool)
           (Printf.sprintf "%d < %d" r.Tir.Verify.r_covered covered_base)
           true
           (r.Tir.Verify.r_covered < covered_base));
  ]

(* --- absint-on/off differential property ---------------------------------- *)

let site_sums (s : Telemetry.Snapshot.t) =
  List.map
    (fun (r : Telemetry.Snapshot.site_row) ->
       (r.Telemetry.Snapshot.s_site,
        r.Telemetry.Snapshot.s_executed + r.Telemetry.Snapshot.s_elided
        + r.Telemetry.Snapshot.s_covered))
    s.Telemetry.Snapshot.sites

let differential_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"certified elision is observationally invisible" ~count:200
         seed_gen
         (fun seed ->
            let p =
              Fuzz.Gen.generate ~inject:(seed mod 2 = 1)
                (Fuzz.Tape.fresh ~seed)
            in
            let go absint =
              Sanitizer.Driver.run
                (Cecsan.sanitizer
                   ~config:
                     { Cecsan.Config.default with
                       Cecsan.Config.opt_absint = absint }
                   ())
                ~externs:Fuzz.Oracle.externs p.Fuzz.Gen.src
            in
            let on = go true and off = go false in
            let show (r : Sanitizer.Driver.run_result) =
              Format.asprintf "%a" Vm.Machine.pp_outcome
                r.Sanitizer.Driver.outcome
            in
            if not (String.equal (show on) (show off)) then
              QCheck.Test.fail_reportf "seed %d: outcome %s vs %s@.%s" seed
                (show on) (show off) p.Fuzz.Gen.src
            else if
              not
                (String.equal on.Sanitizer.Driver.output
                   off.Sanitizer.Driver.output)
            then QCheck.Test.fail_reportf "seed %d: output diverged" seed
            else if on.Sanitizer.Driver.cycles > off.Sanitizer.Driver.cycles
            then
              QCheck.Test.fail_reportf
                "seed %d: absint made it SLOWER (%d > %d cycles)" seed
                on.Sanitizer.Driver.cycles off.Sanitizer.Driver.cycles
            else begin
              (* conservation per site: executed + elided + covered is
                 invariant under certified elision *)
              let a = site_sums on.Sanitizer.Driver.snapshot in
              let b = site_sums off.Sanitizer.Driver.snapshot in
              if a <> b then
                QCheck.Test.fail_reportf
                  "seed %d: per-site conservation broke@.%s" seed
                  p.Fuzz.Gen.src
              else true
            end));
  ]

let () =
  Alcotest.run "absint"
    [
      ("elision", absint_tests);
      ("scev-endpoints", scev_tests);
      ("witness-replay", witness_tests);
      ("differential", differential_tests);
    ]

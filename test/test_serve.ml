(* The sanitizer-as-a-service stack: wire protocol codecs, the batched
   engine's determinism contract (any -j, any batch size, byte-identical
   rows and aggregates), compile_cached under server-shaped load, and
   the load simulator's reproducibility. *)

let ok_or_fail = function
  | Ok v -> v
  | Error m -> Alcotest.failf "unexpected decode error: %s" m

(* --- protocol -------------------------------------------------------------- *)

let protocol_tests =
  [
    Alcotest.test_case "value printer/parser roundtrip" `Quick (fun () ->
        let v =
          Serve.Protocol.(
            Obj
              [ ("a", Int (-3));
                ("b", Str "line\nbreak \"quoted\" back\\slash\ttab");
                ("c", List [ Null; Bool true; Bool false; Int 0 ]);
                ("d", Obj []); ("e", List []) ])
        in
        let s = Serve.Protocol.to_string v in
        (match Serve.Protocol.parse s with
         | Ok v' -> Alcotest.(check bool) "roundtrip" true (v = v')
         | Error m -> Alcotest.failf "parse failed: %s" m);
        (* printing is deterministic *)
        Alcotest.(check string) "stable bytes" s
          (Serve.Protocol.to_string v));
    Alcotest.test_case "parser rejects floats and trailing garbage"
      `Quick
      (fun () ->
         List.iter
           (fun s ->
              match Serve.Protocol.parse s with
              | Ok _ -> Alcotest.failf "accepted %S" s
              | Error _ -> ())
           [ "1.5"; "{\"a\": 2e3}"; "{} trailing"; "{\"a\":}"; "[1,]";
             "\"unterminated"; "nul" ]);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"string escaping roundtrips any bytes"
         ~count:300 QCheck.string
         (fun s ->
            Serve.Protocol.parse
              (Serve.Protocol.to_string (Serve.Protocol.Str s))
            = Ok (Serve.Protocol.Str s)));
    Alcotest.test_case "request codec roundtrips every op" `Quick
      (fun () ->
         List.iter
           (fun (r : Serve.Protocol.request) ->
              let v = Serve.Protocol.encode_request r in
              let s = Serve.Protocol.to_string v in
              let v' = ok_or_fail (Serve.Protocol.parse s) in
              let r' = ok_or_fail (Serve.Protocol.decode_request v') in
              Alcotest.(check bool) "roundtrip" true (r = r'))
           [ { Serve.Protocol.id = 1;
               op =
                 Serve.Protocol.Analyze
                   { source = "int main() { return 0; }";
                     sanitizer = "cecsan"; optimize = true };
               backend = None };
             { Serve.Protocol.id = 2;
               op = Serve.Protocol.Fuzz { fz_seed = 7; inject = true };
               backend = Some Vm.Machine.Jit };
             { Serve.Protocol.id = 3;
               op =
                 Serve.Protocol.Bench
                   { kernel = "429.mcf"; sanitizer = "none" };
               backend = Some Vm.Machine.Interp } ]);
    Alcotest.test_case "response codec roundtrips" `Quick (fun () ->
        let r =
          { Serve.Protocol.rs_id = 9; rs_ok = false; rs_outcome = "";
            rs_detected = false; rs_cycles = 0; rs_reports = 0;
            rs_error = "unsupported: wchar_t" }
        in
        let s = Serve.Protocol.to_string (Serve.Protocol.encode_response r) in
        let r' =
          ok_or_fail
            (Serve.Protocol.decode_response
               (ok_or_fail (Serve.Protocol.parse s)))
        in
        Alcotest.(check bool) "roundtrip" true (r = r'));
    Alcotest.test_case "line framing: controls, blanks, requests" `Quick
      (fun () ->
         (match Serve.Protocol.decode_line "" with
          | Ok Serve.Protocol.Flush -> ()
          | _ -> Alcotest.fail "blank line should be Flush");
         (match Serve.Protocol.decode_line "{\"op\": \"snapshot\"}" with
          | Ok Serve.Protocol.Snapshot -> ()
          | _ -> Alcotest.fail "snapshot control");
         (match Serve.Protocol.decode_line "{\"op\": \"shutdown\"}" with
          | Ok Serve.Protocol.Shutdown -> ()
          | _ -> Alcotest.fail "shutdown control");
         (match
            Serve.Protocol.decode_line
              "{\"id\": 4, \"op\": \"fuzz\", \"seed\": 11}"
          with
          | Ok (Serve.Protocol.Request
                  { id = 4; op = Serve.Protocol.Fuzz
                        { fz_seed = 11; inject = false }; backend = None })
            -> ()
          | _ -> Alcotest.fail "request line");
         match Serve.Protocol.decode_line "{\"op\": \"analyze\"}" with
         | Error _ -> ()
         | Ok _ -> Alcotest.fail "analyze without fields should fail");
  ]

(* --- engine ---------------------------------------------------------------- *)

let analyze ?backend ?(sanitizer = "cecsan") source : Serve.Engine.row =
  Serve.Engine.execute
    { Serve.Protocol.id = 0;
      op =
        Serve.Protocol.Analyze { source; sanitizer; optimize = true };
      backend }

let engine_tests =
  [
    Alcotest.test_case "analyze: clean program exits ok" `Quick (fun () ->
        let r =
          analyze
            "int main() { int s = 0; for (int i = 0; i < 8; i++) s += i; \
             return s & 255; }"
        in
        Alcotest.(check bool) "ok" true r.r_response.Serve.Protocol.rs_ok;
        Alcotest.(check bool) "not detected" false
          r.r_response.Serve.Protocol.rs_detected;
        Alcotest.(check bool) "cycles counted" true (r.r_cycles > 0));
    Alcotest.test_case "analyze: heap overflow is detected" `Quick
      (fun () ->
         let r =
           analyze
             "int main() { int *p = (int*)malloc(16); p[5] = 1; \
              return 0; }"
         in
         Alcotest.(check bool) "ok" true r.r_response.Serve.Protocol.rs_ok;
         Alcotest.(check bool) "detected" true
           r.r_response.Serve.Protocol.rs_detected);
    Alcotest.test_case "errors become responses, not exceptions" `Quick
      (fun () ->
         let check_prefix prefix (r : Serve.Engine.row) =
           Alcotest.(check bool) "not ok" false
             r.r_response.Serve.Protocol.rs_ok;
           let e = r.r_response.Serve.Protocol.rs_error in
           if not (String.length e >= String.length prefix
                   && String.equal (String.sub e 0 (String.length prefix))
                        prefix)
           then Alcotest.failf "error %S lacks prefix %S" e prefix
         in
         check_prefix "unknown-sanitizer:"
           (analyze ~sanitizer:"nope" "int main() { return 0; }");
         (* the front end funnels parser errors through Sema.Error too *)
         check_prefix "sema:" (analyze "int main( {");
         check_prefix "sema:" (analyze "int main() { return x; }");
         check_prefix "unknown-kernel:"
           (Serve.Engine.execute
              { Serve.Protocol.id = 0;
                op =
                  Serve.Protocol.Bench
                    { kernel = "no-such-kernel"; sanitizer = "cecsan" };
                backend = None }));
    Alcotest.test_case "per-request backend wins over engine default"
      `Quick
      (fun () ->
         let src = "int main() { return 7; }" in
         let a = analyze ~backend:Vm.Machine.Jit src in
         let b = analyze src in
         (* backend-invariance: identical response either way *)
         Alcotest.(check bool) "same response" true
           (a.r_response = b.r_response));
    Alcotest.test_case "process: rows identical at any batch size" `Quick
      (fun () ->
         let reqs = Serve.Sim.gen_requests ~seed:0xA11CE 24 in
         let by_batch b = Serve.Engine.process ~batch:b reqs in
         let r1 = by_batch 1 in
         Alcotest.(check bool) "batch 5" true (r1 = by_batch 5);
         Alcotest.(check bool) "batch 64" true (r1 = by_batch 64));
    Alcotest.test_case "process: rows identical at -j 4" `Quick (fun () ->
        let reqs = Serve.Sim.gen_requests ~seed:0xA11CE 24 in
        let seq = Serve.Engine.process ~batch:4 reqs in
        let par =
          Harness.Pool.with_pool ~jobs:4 (fun p ->
              Serve.Engine.process ~pool:p ~batch:4 reqs)
        in
        Alcotest.(check bool) "identical rows" true (seq = par));
    Alcotest.test_case "aggregate folds in submission order" `Quick
      (fun () ->
         let reqs = Serve.Sim.gen_requests ~seed:3 12 in
         let rows = Serve.Engine.process ~batch:3 reqs in
         let agg =
           Serve.Engine.aggregate_rows Serve.Engine.empty_aggregate rows
         in
         Alcotest.(check int) "requests" 12 agg.Serve.Engine.agg_requests;
         Alcotest.(check int) "ok+errors" 12
           (agg.Serve.Engine.agg_ok + agg.Serve.Engine.agg_errors);
         let json =
           Serve.Protocol.to_string (Serve.Engine.aggregate_json agg)
         in
         let par_rows =
           Harness.Pool.with_pool ~jobs:3 (fun p ->
               Serve.Engine.process ~pool:p ~batch:3 reqs)
         in
         let par_json =
           Serve.Protocol.to_string
             (Serve.Engine.aggregate_json
                (Serve.Engine.aggregate_rows Serve.Engine.empty_aggregate
                   par_rows))
         in
         Alcotest.(check string) "aggregate bytes identical across -j"
           json par_json);
  ]

(* --- compile_cached under server-shaped load ------------------------------- *)

let cache_tests =
  [
    Alcotest.test_case
      "concurrent mixed optimize flags match sequential compiles" `Quick
      (fun () ->
         Sanitizer.Driver.clear_compile_cache ();
         let sources =
           List.init 8 (fun i ->
               Printf.sprintf
                 "int main() { int a[%d]; for (int i = 0; i < %d; i++) \
                  a[i] = i; return a[%d] & 255; }"
                 (4 + i) (4 + i) (3 + i))
         in
         (* every (source, optimize) pair, shuffled across workers *)
         let grid =
           List.concat_map
             (fun s -> [ (s, true); (s, false); (s, true) ])
             sources
         in
         let sizes =
           List.map
             (fun (s, o) ->
                Tir.Ir.module_size
                  (Sanitizer.Driver.compile_cached ~optimize:o s))
             grid
         in
         let par_sizes =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               Harness.Pool.map p
                 (fun (s, o) ->
                    Tir.Ir.module_size
                      (Sanitizer.Driver.compile_cached ~optimize:o s))
                 grid)
         in
         Alcotest.(check (list int)) "sizes identical" sizes par_sizes);
    Alcotest.test_case "clear_compile_cache mid-campaign is invisible"
      `Quick
      (fun () ->
         let reqs = Serve.Sim.gen_requests ~seed:0xC1EA2 16 in
         let uninterrupted = Serve.Engine.process ~batch:4 reqs in
         let front = List.filteri (fun i _ -> i < 8) reqs in
         let back = List.filteri (fun i _ -> i >= 8) reqs in
         let a = Serve.Engine.process ~batch:4 front in
         Sanitizer.Driver.clear_compile_cache ();
         let b = Serve.Engine.process ~batch:4 back in
         Alcotest.(check bool) "responses unchanged" true
           (uninterrupted = a @ b));
    Alcotest.test_case "fuel burn is cache-state independent" `Quick
      (fun () ->
         let src =
           "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; \
            return s & 255; }"
         in
         Sanitizer.Driver.clear_compile_cache ();
         let cold = Tir.Fuel.make ~phase:"serve" ~budget:1_000_000 in
         ignore (Sanitizer.Driver.compile_cached ~optimize:true ~fuel:cold src);
         let warm = Tir.Fuel.make ~phase:"serve" ~budget:1_000_000 in
         ignore (Sanitizer.Driver.compile_cached ~optimize:true ~fuel:warm src);
         Alcotest.(check bool) "cold burned something" true
           (Tir.Fuel.remaining cold < 1_000_000);
         Alcotest.(check int) "hit burns exactly what the miss burned"
           (Tir.Fuel.remaining cold) (Tir.Fuel.remaining warm));
  ]

(* --- load simulator -------------------------------------------------------- *)

let sim_tests =
  [
    Alcotest.test_case "request mix is deterministic" `Quick (fun () ->
        let a = Serve.Sim.gen_requests ~seed:0x5EED 32 in
        let b = Serve.Sim.gen_requests ~seed:0x5EED 32 in
        Alcotest.(check bool) "identical" true (a = b);
        let c = Serve.Sim.gen_requests ~seed:0x5EEE 32 in
        Alcotest.(check bool) "seed-sensitive" true (a <> c));
    Alcotest.test_case "report JSON byte-identical at -j 3" `Quick
      (fun () ->
         let cfg = Serve.Sim.default_cfg ~seed:0x5EED ~requests:60 in
         let seq = Serve.Sim.to_json (Serve.Sim.run cfg) in
         let par =
           Harness.Pool.with_pool ~jobs:3 (fun p ->
               Serve.Sim.to_json (Serve.Sim.run ~pool:p cfg))
         in
         Alcotest.(check string) "bytes" seq par);
    Alcotest.test_case "latency percentiles are ordered and positive"
      `Quick
      (fun () ->
         let cfg = Serve.Sim.default_cfg ~seed:1 ~requests:50 in
         let r = Serve.Sim.run cfg in
         let l = r.Serve.Sim.sr_latency in
         Alcotest.(check bool) "ordered" true
           (l.Serve.Sim.l_p50 <= l.Serve.Sim.l_p90
            && l.Serve.Sim.l_p90 <= l.Serve.Sim.l_p99
            && l.Serve.Sim.l_p99 <= l.Serve.Sim.l_p999
            && l.Serve.Sim.l_p999 <= l.Serve.Sim.l_max);
         Alcotest.(check bool) "positive" true (l.Serve.Sim.l_p50 >= 1);
         Alcotest.(check bool) "makespan covers service" true
           (r.Serve.Sim.sr_makespan >= l.Serve.Sim.l_max));
    Alcotest.test_case
      "simulated workers shape latency, real jobs never do" `Quick
      (fun () ->
         let base = Serve.Sim.default_cfg ~seed:2 ~requests:60 in
         let narrow =
           Serve.Sim.run { base with Serve.Sim.sc_workers = 1 }
         in
         let wide =
           Serve.Sim.run { base with Serve.Sim.sc_workers = 8 }
         in
         Alcotest.(check bool) "1 server queues at least as long" true
           (narrow.Serve.Sim.sr_latency.Serve.Sim.l_p99
            >= wide.Serve.Sim.sr_latency.Serve.Sim.l_p99));
    Alcotest.test_case "schema header and key fields present" `Quick
      (fun () ->
         let cfg = Serve.Sim.default_cfg ~seed:3 ~requests:20 in
         let json = Serve.Sim.to_json (Serve.Sim.run cfg) in
         let v = ok_or_fail (Serve.Protocol.parse json) in
         (match Serve.Protocol.member "schema" v with
          | Some (Serve.Protocol.Str "cecsan-bench-serve/1") -> ()
          | _ -> Alcotest.fail "schema field");
         List.iter
           (fun k ->
              if Serve.Protocol.member k v = None then
                Alcotest.failf "missing %S" k)
           [ "seed"; "requests"; "sim_workers"; "batch"; "aggregate";
             "latency_ticks"; "makespan_ticks"; "throughput_per_mticks" ]);
  ]

let () =
  Alcotest.run "serve"
    [
      "protocol", protocol_tests;
      "engine", engine_tests;
      "compile-cache", cache_tests;
      "sim", sim_tests;
    ]

(* Tests of the runtime telemetry layer (lib/telemetry and its wiring):
   the per-site conservation law across check optimization, allocator
   leak/high-water gauges, snapshot merge/JSON determinism across job
   counts, and fault-injection counter hygiene. *)

let sanitizers () =
  [
    Cecsan.sanitizer ();
    Baselines.Asan.sanitizer ();
    Baselines.Asan_minus.sanitizer ();
    Baselines.Hwasan.sanitizer ();
    Baselines.Softbound_cets.sanitizer ();
    Baselines.Pacmem.sanitizer ();
    Baselines.Cryptsan.sanitizer ();
  ]

let clean_program seed =
  Fuzz.Gen.generate ~inject:false (Fuzz.Tape.fresh ~seed)

(* Instrument a fresh clone of the cached module; [boundary] is the
   first site id minted AFTER instrumentation, so sites below it are
   original check sites and sites at or above it are fresh ones the
   optimizer created (hoisted and endpoint checks). *)
let run_instrumented (san : Sanitizer.Spec.t) ~optimize src =
  let md = Sanitizer.Driver.compile_cached ~optimize:true src in
  san.Sanitizer.Spec.instrument md;
  let boundary = md.Tir.Ir.m_next_site in
  if optimize then san.Sanitizer.Spec.optimize md;
  let r =
    Sanitizer.Driver.run_module san ~externs:Fuzz.Oracle.externs md
  in
  (boundary, r)

let site_rows (s : Telemetry.Snapshot.t) =
  List.map
    (fun (row : Telemetry.Snapshot.site_row) -> (row.s_site, row))
    s.Telemetry.Snapshot.sites

(* --- the conservation law ------------------------------------------------ *)

(* Per original check site: every check either executed, was elided
   outright, or was covered by a grouped/hoisted replacement -- so at O2
   the three counters sum to exactly the O0 execution count.  100 seeded
   clean programs x all seven sanitizers (tools whose optimize pass is a
   no-op satisfy the law trivially; CECSan and ASan-- exercise it for
   real). *)
let conservation () =
  for seed = 0 to 99 do
    let p = clean_program seed in
    List.iter
      (fun (san : Sanitizer.Spec.t) ->
         match run_instrumented san ~optimize:false p.Fuzz.Gen.src with
         | exception Sanitizer.Spec.Unsupported _ -> ()
         | boundary, (r0 : Sanitizer.Driver.run_result) ->
           let _, (r2 : Sanitizer.Driver.run_result) =
             run_instrumented san ~optimize:true p.Fuzz.Gen.src
           in
           (match (r0.outcome, r2.outcome) with
            | Vm.Machine.Exit a, Vm.Machine.Exit b when a = b -> ()
            | o0, o2 ->
              Alcotest.failf "seed %d %s: O0 %a vs O2 %a" seed
                san.Sanitizer.Spec.name Vm.Machine.pp_outcome o0
                Vm.Machine.pp_outcome o2);
           let rows0 = site_rows r0.snapshot in
           let rows2 = site_rows r2.snapshot in
           let sites =
             List.sort_uniq compare
               (List.map fst rows0 @ List.map fst rows2)
           in
           List.iter
             (fun site ->
                if site < boundary then begin
                  let get rows =
                    match List.assoc_opt site rows with
                    | None -> (0, 0, 0)
                    | Some (r : Telemetry.Snapshot.site_row) ->
                      (r.s_executed, r.s_elided, r.s_covered)
                  in
                  let ex0, el0, cv0 = get rows0 in
                  let ex2, el2, cv2 = get rows2 in
                  if el0 <> 0 || cv0 <> 0 then
                    Alcotest.failf
                      "seed %d %s site %d: O0 run has optimizer marker \
                       counts (%d elided, %d covered)"
                      seed san.Sanitizer.Spec.name site el0 cv0;
                  if ex0 <> ex2 + el2 + cv2 then
                    Alcotest.failf
                      "seed %d %s site %d: executed(O0)=%d but \
                       executed+elided+covered(O2)=%d+%d+%d"
                      seed san.Sanitizer.Spec.name site ex0 ex2 el2 cv2
                end)
             sites)
      (sanitizers ())
  done

(* --- allocator and metadata-table gauges --------------------------------- *)

let gauge (r : Sanitizer.Driver.run_result) key =
  Option.value ~default:0
    (List.assoc_opt key r.snapshot.Telemetry.Snapshot.gauges)

(* Clean generated programs free everything they allocate (the Gen
   epilogue), so the VM's live-allocation count must return to zero. *)
let leak_free () =
  for seed = 0 to 99 do
    let p = clean_program seed in
    let r =
      Sanitizer.Driver.run (Cecsan.sanitizer ())
        ~externs:Fuzz.Oracle.externs p.Fuzz.Gen.src
    in
    (match r.Sanitizer.Driver.outcome with
     | Vm.Machine.Exit _ -> ()
     | o ->
       Alcotest.failf "seed %d: %a@.%s" seed Vm.Machine.pp_outcome o
         p.Fuzz.Gen.src);
    Alcotest.(check int)
      (Printf.sprintf "seed %d: live allocations at exit" seed)
      0 (gauge r "alloc_live_exit");
    if gauge r "alloc_peak_live" <= 0 then
      Alcotest.failf "seed %d: alloc_peak_live not recorded" seed;
    if gauge r "meta_peak_live" > Vm.Layout46.tag_limit then
      Alcotest.failf "seed %d: meta_peak_live %d exceeds the Layout46 \
                      capacity %d" seed
        (gauge r "meta_peak_live") Vm.Layout46.tag_limit
  done

(* --- snapshot determinism across job counts ------------------------------ *)

(* The same campaign at -j1 and -j4 must merge to byte-identical JSON:
   snapshots merge in submission order, not completion order. *)
let campaign_json_deterministic () =
  let run jobs =
    Harness.Pool.with_pool ~jobs (fun p ->
        let pool = if jobs > 1 then Some p else None in
        let s = Fuzz.Campaign.run ?pool ~seed:0x5EED ~n:40 () in
        Telemetry.Snapshot.to_json s.Fuzz.Campaign.snapshot)
  in
  let j1 = run 1 in
  let j4 = run 4 in
  Alcotest.(check string) "campaign telemetry JSON, -j1 vs -j4" j1 j4;
  Alcotest.(check string) "campaign telemetry JSON, rerun" j1 (run 1)

(* --- fault-injection counter hygiene ------------------------------------- *)

let oom_fault () =
  match Vm.Fault.parse "oom:3" with
  | Ok spec -> Vm.Fault.of_specs [ spec ]
  | Error m -> Alcotest.failf "oom spec: %s" m

let fault_src =
  {|
int main() {
  int sum = 0;
  for (int i = 0; i < 8; i++) {
    char *p = (char*)malloc(16);
    if (p != 0) { p[0] = 1; sum = sum + p[0]; free(p); }
  }
  printf("S:%d\n", sum);
  return sum & 63;
}
|}

(* A shared Vm.Fault.t value must not accumulate state across runs:
   every State.create clones it, so each run injects the same faults and
   reports the same counts. *)
let fault_counters_per_run () =
  let fault = oom_fault () in
  let run () =
    let r =
      Sanitizer.Driver.run (Cecsan.sanitizer ())
        ~policy:(Vm.Report.Recover
                   { max_reports = Vm.Report.default_max_reports })
        ~fault fault_src
    in
    gauge r "injected_oom"
  in
  let a = run () in
  let b = run () in
  if a <= 0 then Alcotest.failf "no OOM injected (got %d)" a;
  Alcotest.(check int) "same injections on every run from one Fault.t" a b

(* The fault-table grid must be identical sequentially and at -j4; a
   shared fault injector would double-count across domains. *)
let fault_grid_job_independent () =
  let seq = Harness.Faults.run () in
  let par =
    Harness.Pool.with_pool ~jobs:4 (fun p -> Harness.Faults.run ~pool:p ())
  in
  Alcotest.(check bool) "fault table identical at -j1 and -j4" true
    (seq = par)

(* --- ring buffer bounds -------------------------------------------------- *)

let ring_bounded () =
  let t = Telemetry.create () in
  let n = Telemetry.ring_capacity + 37 in
  for i = 1 to n do
    Telemetry.record t Telemetry.Alloc i 16
  done;
  let s = Telemetry.Snapshot.capture t in
  Alcotest.(check int) "ring keeps the newest capacity events"
    Telemetry.ring_capacity
    (List.length s.Telemetry.Snapshot.events);
  Alcotest.(check int) "overflow counted as dropped" 37
    s.Telemetry.Snapshot.dropped;
  match List.rev s.Telemetry.Snapshot.events with
  | last :: _ ->
    Alcotest.(check int) "newest event survives" n last.Telemetry.ev_a
  | [] -> Alcotest.fail "ring empty"

let () =
  Alcotest.run "telemetry"
    [
      ( "telemetry",
        [
          Alcotest.test_case "check-site conservation law" `Slow
            conservation;
          Alcotest.test_case "clean programs are leak-free" `Slow
            leak_free;
          Alcotest.test_case "campaign JSON identical across -j" `Slow
            campaign_json_deterministic;
          Alcotest.test_case "fault counters reset per run" `Quick
            fault_counters_per_run;
          Alcotest.test_case "fault grid identical across -j" `Slow
            fault_grid_job_independent;
          Alcotest.test_case "event ring bounded with drop count" `Quick
            ring_bounded;
        ] );
    ]

(* Differential tests of the threaded-code jit backend (Vm.Jit) against
   the reference interpreter: identical outcomes, diagnostics, cycle
   counts and telemetry on generated programs across every sanitizer,
   under fault injection, plus cache regression tests (no re-resolution
   or re-compilation on repeated runs, fuel burned identically on jit
   compile-cache hits and misses) and the last-page-cache audit driven
   through jitted code. *)

let sanitizers () =
  [ ("cecsan", Cecsan.sanitizer ());
    ("asan", Baselines.Asan.sanitizer ());
    ("asan--", Baselines.Asan_minus.sanitizer ());
    ("hwasan", Baselines.Hwasan.sanitizer ());
    ("softbound", Baselines.Softbound_cets.sanitizer ());
    ("pacmem", Baselines.Pacmem.sanitizer ());
    ("cryptsan", Baselines.Cryptsan.sanitizer ()) ]

let seed_gen = QCheck.(map abs int)

(* Everything observable about a run, as strings, so a mismatch prints
   both sides verbatim.  The snapshot comparison is byte equality of
   the deterministic JSON rendering. *)
type obs = {
  o_outcome : string;
  o_output : string;
  o_cycles : int;
  o_reports : string list;
  o_suppressed : int;
  o_snapshot : string;
}

let observe (r : Sanitizer.Driver.run_result) =
  { o_outcome =
      Format.asprintf "%a" Vm.Machine.pp_outcome r.Sanitizer.Driver.outcome;
    o_output = r.Sanitizer.Driver.output;
    o_cycles = r.Sanitizer.Driver.cycles;
    o_reports =
      List.map
        (Format.asprintf "%a" Vm.Report.pp)
        r.Sanitizer.Driver.reports;
    o_suppressed = r.Sanitizer.Driver.suppressed;
    o_snapshot = Telemetry.Snapshot.to_json r.Sanitizer.Driver.snapshot }

(* A run can also end in an injected crash or fuel exhaustion; both are
   part of the observable surface the backends must agree on. *)
type run_obs =
  | Completed of obs
  | Injected_crash of int
  | Fuel_out of string * int

let run_obs ~policy ?fault_spec backend san md =
  let fault =
    match fault_spec with
    | None -> None
    | Some s ->
      (match Vm.Fault.parse s with
       | Ok spec -> Some (Vm.Fault.of_specs [ spec ])
       | Error m -> Alcotest.fail m)
  in
  match
    Sanitizer.Driver.run_module san ~externs:Fuzz.Oracle.externs ~policy
      ?fault ~backend md
  with
  | r -> Completed (observe r)
  | exception Vm.Fault.Injected_crash { after } -> Injected_crash after
  | exception Tir.Fuel.Exhausted { phase; budget } -> Fuel_out (phase, budget)

let describe = function
  | Completed o ->
    Printf.sprintf "outcome=%s cycles=%d output=%S reports=[%s] sup=%d"
      o.o_outcome o.o_cycles o.o_output
      (String.concat "; " o.o_reports)
      o.o_suppressed
  | Injected_crash after -> Printf.sprintf "injected-crash after=%d" after
  | Fuel_out (phase, budget) ->
    Printf.sprintf "fuel-exhausted phase=%s budget=%d" phase budget

let agree ~ctx a b =
  let fail part sa sb =
    QCheck.Test.fail_reportf "%s: %s differs@.interp: %s@.jit:    %s" ctx
      part sa sb
  in
  match (a, b) with
  | Completed x, Completed y ->
    if not (String.equal x.o_outcome y.o_outcome) then
      fail "outcome" x.o_outcome y.o_outcome;
    if not (String.equal x.o_output y.o_output) then
      fail "output" x.o_output y.o_output;
    if x.o_cycles <> y.o_cycles then
      fail "cycles" (string_of_int x.o_cycles) (string_of_int y.o_cycles);
    if x.o_reports <> y.o_reports then
      fail "reports"
        (String.concat "; " x.o_reports)
        (String.concat "; " y.o_reports);
    if x.o_suppressed <> y.o_suppressed then
      fail "suppressed"
        (string_of_int x.o_suppressed)
        (string_of_int y.o_suppressed);
    if not (String.equal x.o_snapshot y.o_snapshot) then
      fail "telemetry snapshot" x.o_snapshot y.o_snapshot;
    true
  | a, b ->
    if a <> b then fail "termination" (describe a) (describe b);
    true

let program_of_seed seed =
  Fuzz.Gen.generate ~inject:(seed land 1 = 1) (Fuzz.Tape.fresh ~seed)

(* Half the draws exercise the Recover sink (reports list, suppression
   counter); the other half Halt (the finding is the outcome). *)
let policy_of_seed seed =
  if seed land 2 = 0 then Vm.Report.Halt
  else
    Vm.Report.Recover { max_reports = Vm.Report.default_max_reports }

let differential_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"interp and jit agree on generated programs x 7 sanitizers"
         ~count:200 seed_gen
         (fun seed ->
            let p = program_of_seed seed in
            let policy = policy_of_seed seed in
            List.for_all
              (fun (sname, san) ->
                 match Sanitizer.Driver.build san p.Fuzz.Gen.src with
                 | exception Sanitizer.Spec.Unsupported _ -> true
                 | md ->
                   let ctx = Printf.sprintf "seed %d, %s" seed sname in
                   agree ~ctx
                     (run_obs ~policy Vm.Machine.Interp san md)
                     (run_obs ~policy Vm.Machine.Jit san md))
              (sanitizers ())));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"interp and jit agree under crash:N / tagflip:N faults"
         ~count:60 seed_gen
         (fun seed ->
            let p = program_of_seed seed in
            let policy = policy_of_seed seed in
            let san = Cecsan.sanitizer () in
            match Sanitizer.Driver.build san p.Fuzz.Gen.src with
            | exception Sanitizer.Spec.Unsupported _ -> true
            | md ->
              List.for_all
                (fun spec ->
                   let ctx =
                     Printf.sprintf "seed %d, cecsan, %s" seed spec
                   in
                   agree ~ctx
                     (run_obs ~policy ~fault_spec:spec Vm.Machine.Interp
                        san md)
                     (run_obs ~policy ~fault_spec:spec Vm.Machine.Jit san
                        md))
                [ "crash:2"; "tagflip:2"; "oom:3" ]));
    Alcotest.test_case "fuel:N exhausts identically on both backends"
      `Quick (fun () ->
        let src =
          "int main() { int s = 0; for (int i = 0; i < 9; i++) s += i; \
           return s; }"
        in
        let san = Cecsan.sanitizer () in
        let go backend budget =
          Sanitizer.Driver.clear_compile_cache ();
          match
            Sanitizer.Driver.run san ~backend
              ~fault:(Vm.Fault.of_specs
                        [ (match Vm.Fault.parse
                                   (Printf.sprintf "fuel:%d" budget)
                           with
                           | Ok s -> s
                           | Error m -> Alcotest.fail m) ])
              src
          with
          | r ->
            Printf.sprintf "exit %s"
              (Format.asprintf "%a" Vm.Machine.pp_outcome
                 r.Sanitizer.Driver.outcome)
          | exception Tir.Fuel.Exhausted { phase; budget } ->
            Printf.sprintf "fuel-exhausted %s %d" phase budget
        in
        (* a one-step budget dies in the front end on both backends; an
           ample one completes on both *)
        List.iter
          (fun budget ->
             Alcotest.(check string)
               (Printf.sprintf "budget %d" budget)
               (go Vm.Machine.Interp budget)
               (go Vm.Machine.Jit budget))
          [ 1; 10_000_000 ])
  ]

(* --- cache regressions ---------------------------------------------------- *)

let cache_tests =
  [
    Alcotest.test_case "repeated runs re-pay neither resolution nor \
                        jit compilation" `Quick (fun () ->
        let san = Cecsan.sanitizer () in
        let md =
          Sanitizer.Driver.build san
            "int main() { int *p = malloc(40); for (int i = 0; i < 10; \
             i++) p[i] = i; int s = p[7]; free(p); return s; }"
        in
        let r0 = !Vm.Vcode.resolutions and c0 = !Vm.Jit.compilations in
        ignore (Sanitizer.Driver.run_module san ~backend:Vm.Machine.Interp md);
        Alcotest.(check int) "first interp run resolves once"
          (r0 + 1) !Vm.Vcode.resolutions;
        ignore (Sanitizer.Driver.run_module san ~backend:Vm.Machine.Interp md);
        Alcotest.(check int) "second interp run hits the cache"
          (r0 + 1) !Vm.Vcode.resolutions;
        ignore (Sanitizer.Driver.run_module san ~backend:Vm.Machine.Jit md);
        Alcotest.(check int) "jit run reuses the resolved form"
          (r0 + 1) !Vm.Vcode.resolutions;
        Alcotest.(check int) "first jit run compiles once"
          (c0 + 1) !Vm.Jit.compilations;
        ignore (Sanitizer.Driver.run_module san ~backend:Vm.Machine.Jit md);
        Alcotest.(check int) "second jit run hits the compile cache"
          (c0 + 1) !Vm.Jit.compilations;
        ignore (Sanitizer.Driver.run_module san ~backend:Vm.Machine.Interp md);
        Alcotest.(check int) "backends share the cached resolution"
          (r0 + 1) !Vm.Vcode.resolutions);
    Alcotest.test_case "jit compile fuel burns identically on cache hit \
                        and miss" `Quick (fun () ->
        let san = Cecsan.sanitizer () in
        let md =
          Sanitizer.Driver.build san
            "int main() { int a[4]; a[1] = 3; return a[1]; }"
        in
        let vc = Vm.Vcode.resolve_cached md in
        let size = Tir.Ir.module_size md in
        let miss = Tir.Fuel.make ~phase:"compile" ~budget:(size + 7) in
        ignore (Vm.Jit.compile_cached ~fuel:miss vc);
        let hit = Tir.Fuel.make ~phase:"compile" ~budget:(size + 7) in
        ignore (Vm.Jit.compile_cached ~fuel:hit vc);
        Alcotest.(check int) "hit burned what the miss burned"
          (Tir.Fuel.remaining miss) (Tir.Fuel.remaining hit);
        Alcotest.(check int) "burn is the module size" 7
          (Tir.Fuel.remaining hit);
        (* and exhaustion below the burn is identical on a warm cache *)
        let starved = Tir.Fuel.make ~phase:"compile" ~budget:(size - 1) in
        (match Vm.Jit.compile_cached ~fuel:starved vc with
         | _ -> Alcotest.fail "expected fuel exhaustion on a warm cache"
         | exception Tir.Fuel.Exhausted { phase; _ } ->
           Alcotest.(check string) "phase" "compile" phase))
  ]

(* --- last-page cache through jitted code ----------------------------------- *)

(* The interpreter's page-cache audit (test_vm.ml) re-driven through
   the jit: free/realloc recycling between jitted blocks, and the
   fault-injected table shrink, must be stable and interp-identical. *)
let page_cache_tests =
  [
    Alcotest.test_case "free/realloc recycling between jitted blocks"
      `Quick (fun () ->
        let src =
          "int main() {\n\
          \  int sum = 0;\n\
          \  for (int i = 0; i < 24; i++) {\n\
          \    char *p = malloc(32 + i);\n\
          \    for (int k = 0; k < 32; k++) p[k] = k + i;\n\
          \    sum = sum + p[31];\n\
          \    if (i % 3 == 0) { p = realloc(p, 128); sum = sum + p[0]; }\n\
          \    free(p);\n\
          \  }\n\
          \  printf(\"S:%d\\n\", sum);\n\
          \  return sum & 63;\n\
           }\n"
        in
        let go backend =
          let r = Sanitizer.Driver.run (Cecsan.sanitizer ()) ~backend src in
          (Format.asprintf "%a" Vm.Machine.pp_outcome
             r.Sanitizer.Driver.outcome,
           r.Sanitizer.Driver.output, r.Sanitizer.Driver.cycles)
        in
        let oi, outi, ci = go Vm.Machine.Interp in
        let oj, outj, cj = go Vm.Machine.Jit in
        Alcotest.(check string) "outcome" oi oj;
        Alcotest.(check string) "output" outi outj;
        Alcotest.(check int) "cycles" ci cj);
    Alcotest.test_case "fault-injected table shrink is repeatable under \
                        the jit" `Quick (fun () ->
        let src =
          "int main() {\n\
          \  int sum = 0;\n\
          \  for (int i = 0; i < 24; i++) {\n\
          \    char *p = malloc(32 + i);\n\
          \    for (int k = 0; k < 32; k++) p[k] = k + i;\n\
          \    sum = sum + p[31];\n\
          \    if (i % 3 == 0) { p = realloc(p, 128); sum = sum + p[0]; }\n\
          \    free(p);\n\
          \  }\n\
          \  printf(\"S:%d\\n\", sum);\n\
          \  return sum & 63;\n\
           }\n"
        in
        let go backend =
          let fault =
            match Vm.Fault.parse "table:8" with
            | Ok s -> Vm.Fault.of_specs [ s ]
            | Error m -> Alcotest.fail m
          in
          let r =
            Sanitizer.Driver.run (Cecsan.sanitizer ()) ~fault ~backend
              ~policy:(Vm.Report.Recover
                         { max_reports = Vm.Report.default_max_reports })
              src
          in
          (Format.asprintf "%a" Vm.Machine.pp_outcome
             r.Sanitizer.Driver.outcome,
           r.Sanitizer.Driver.output)
        in
        let o1, out1 = go Vm.Machine.Jit and o2, out2 = go Vm.Machine.Jit in
        Alcotest.(check string) "jit outcome stable" o1 o2;
        Alcotest.(check string) "jit output stable" out1 out2;
        let oi, outi = go Vm.Machine.Interp in
        Alcotest.(check string) "matches interp outcome" oi o1;
        Alcotest.(check string) "matches interp output" outi out1)
  ]

let () =
  Alcotest.run "jit"
    [
      "differential", differential_tests;
      "caches", cache_tests;
      "page cache", page_cache_tests;
    ]

(* Baseline sanitizer tests: each tool must catch what its mechanism
   catches and MISS what its mechanism structurally cannot see -- the
   capability matrix of DESIGN.md section 3, which drives Table II. *)

let asan = Baselines.Asan.sanitizer ()
let asan_minus = Baselines.Asan_minus.sanitizer ()
let hwasan = Baselines.Hwasan.sanitizer ()
let softbound = Baselines.Softbound_cets.sanitizer ()
let pacmem = Baselines.Pacmem.sanitizer ()
let cryptsan = Baselines.Cryptsan.sanitizer ()

let run san ?lines src = Sanitizer.Driver.run san ?lines src

let detects san name src =
  Alcotest.test_case name `Quick (fun () ->
      match (run san src).Sanitizer.Driver.outcome with
      | Vm.Machine.Bug _ -> ()
      | o ->
        Alcotest.failf "%s should detect, got %a" san.Sanitizer.Spec.name
          Vm.Machine.pp_outcome o)

let misses san name src =
  Alcotest.test_case name `Quick (fun () ->
      match (run san src).Sanitizer.Driver.outcome with
      | Vm.Machine.Exit _ | Vm.Machine.Fault _
      | Vm.Machine.Completed_with_bugs _ -> ()
      | Vm.Machine.Bug b ->
        Alcotest.failf "%s should structurally miss this, but reported %a"
          san.Sanitizer.Spec.name Vm.Report.pp b)

let clean san ?lines name src =
  Alcotest.test_case name `Quick (fun () ->
      match (run san ?lines src).Sanitizer.Driver.outcome with
      | Vm.Machine.Exit _ -> ()
      | o ->
        Alcotest.failf "%s false alarm: %a" san.Sanitizer.Spec.name
          Vm.Machine.pp_outcome o)

let preserves san name src =
  Alcotest.test_case name `Quick (fun () ->
      let r0 = run Sanitizer.Spec.none src in
      let r1 = run san src in
      match r0.Sanitizer.Driver.outcome, r1.Sanitizer.Driver.outcome with
      | Vm.Machine.Exit a, Vm.Machine.Exit b ->
        Alcotest.(check int) "same exit code" a b
      | a, b ->
        Alcotest.failf "diverged: %a vs %a" Vm.Machine.pp_outcome a
          Vm.Machine.pp_outcome b)

(* --- shared bug snippets ---------------------------------------------------- *)

let heap_oob =
  "int main() { char *p = (char*)malloc(16); p[17] = 'x'; free(p); \
   return 0; }"

let heap_uaf =
  "int main() { int *p = (int*)malloc(16); free(p); return p[0]; }"

let double_free =
  "int main() { char *p = (char*)malloc(8); free(p); free(p); return 0; }"

let invalid_free =
  "int main() { char *p = (char*)malloc(8); free(p + 2); return 0; }"

let stack_oob =
  "void fill(char *p, int n) { for (int i = 0; i <= n; i++) p[i] = 'a'; }\n\
   int main() { char buf[16]; fill(buf, 16); return 0; }"

let global_oob =
  "char gbuf[12];\n\
   int main() { for (int i = 0; i < 20; i++) gbuf[i] = 'g'; return 0; }"

let subobject_oob =
  "struct CharVoid { char charFirst[16]; void *voidSecond; };\n\
   int main() { struct CharVoid s; char src[32]; memset(src, 'A', 32); \
   memcpy(s.charFirst, src, sizeof(struct CharVoid) - 8); return 0; }"

(* a stride that clears ASan's 16-32 byte redzones and lands in the next
   chunk's live payload *)
let far_oob =
  "int main() { char *a = (char*)malloc(32); char *b = (char*)malloc(32); \
   b[0] = 'b'; a[72] = 'x'; int ok = b[0] == 'b' ? 0 : 1; free(a); free(b); \
   return ok; }"

let wide_oob =
  "int main() { wchar_t *dst = (wchar_t*)malloc(4 * sizeof(wchar_t)); \
   wchar_t src[16]; wcsncpy(src, L\"wwwwwwwwwwwwwww\", 16); \
   wcsncpy(dst, src, 16); free(dst); return 0; }"

let uaf_via_libc =
  "int main() { char *p = (char*)malloc(16); char dst[16]; free(p); \
   memcpy(dst, p, 16); return dst[0]; }"

let benign =
  "int main() { int *p = (int*)malloc(8 * sizeof(int)); \
   for (int i = 0; i < 8; i++) p[i] = i; int s = p[7]; free(p); \
   char buf[16]; strcpy(buf, \"ok\"); return s + (int)strlen(buf); }"

(* --- ASan --------------------------------------------------------------------- *)

let asan_tests =
  [
    detects asan "heap overflow" heap_oob;
    detects asan "heap UAF (quarantined)" heap_uaf;
    detects asan "double free" double_free;
    detects asan "invalid free" invalid_free;
    detects asan "stack overflow into redzone" stack_oob;
    detects asan "global overflow into redzone" global_oob;
    detects asan "underflow into left redzone"
      "int main() { char *p = (char*)malloc(16); p[-2] = 'x'; free(p); \
       return 0; }";
    detects asan "strcpy interceptor"
      "int main() { char *d = (char*)malloc(4); \
       strcpy(d, \"toooooo long\"); free(d); return 0; }";
    misses asan "sub-object overflow (by design)" subobject_oob;
    misses asan "far OOB jumps the redzone" far_oob;
    misses asan "wide-char overflow (no interceptor)" wide_oob;
    detects asan "UAF via intercepted memcpy" uaf_via_libc;
    Alcotest.test_case "UAF after quarantine eviction is missed" `Quick
      (fun () ->
         (* churn enough freed bytes through the quarantine to evict the
            victim, then reallocate: the stale pointer hits freshly valid
            memory *)
         let src =
           "int main() { char *victim = (char*)malloc(64); free(victim); \
            for (int i = 0; i < 700; i++) { char *f = (char*)malloc(4096); \
            free(f); } \
            char *re = (char*)malloc(64); re[0] = 'n'; \
            victim[0] = 'x'; free(re); return 0; }"
         in
         match (run asan src).Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o ->
           Alcotest.failf "expected eviction miss, got %a"
             Vm.Machine.pp_outcome o);
    clean asan "no false positives" benign;
    preserves asan "semantics preserved" benign;
  ]

let asan_minus_tests =
  [
    detects asan_minus "heap overflow" heap_oob;
    detects asan_minus "UAF" heap_uaf;
    detects asan_minus "stack overflow" stack_oob;
    misses asan_minus "sub-object overflow" subobject_oob;
    clean asan_minus "no false positives" benign;
    preserves asan_minus "semantics preserved" benign;
    Alcotest.test_case "debloating is faster than ASan" `Quick (fun () ->
        let src =
          "int main() { int a[64]; int s = 0; \
           for (int i = 0; i < 64; i++) a[i] = i; \
           for (int r = 0; r < 20; r++) for (int i = 0; i < 64; i++) \
           s += a[i]; return s & 255; }"
        in
        let full = run asan src in
        let lite = run asan_minus src in
        Alcotest.(check bool) "fewer cycles" true
          (lite.Sanitizer.Driver.cycles <= full.Sanitizer.Driver.cycles));
  ]

(* --- HWASan -------------------------------------------------------------------- *)

let hwasan_tests =
  [
    detects hwasan "heap overflow (next granule)" heap_oob;
    detects hwasan "heap UAF (retagged)" heap_uaf;
    detects hwasan "double free" double_free;
    detects hwasan "stack overflow" stack_oob;
    detects hwasan "global overflow" global_oob;
    misses hwasan "sub-object overflow" subobject_oob;
    misses hwasan "invalid free: interior tag matches" invalid_free;
    misses hwasan "UAF through uninstrumented libc" uaf_via_libc;
    misses hwasan "wide-char overflow" wide_oob;
    Alcotest.test_case "intra-granule overflow is missed" `Quick (fun () ->
        (* 20 bytes round to 32: bytes 20..31 carry the object's tag *)
        let src =
          "int main() { char *p = (char*)malloc(20); p[25] = 'x'; free(p); \
           return 0; }"
        in
        match (run hwasan src).Sanitizer.Driver.outcome with
        | Vm.Machine.Exit _ -> ()
        | o ->
          Alcotest.failf "expected granule miss, got %a"
            Vm.Machine.pp_outcome o);
    clean hwasan "no false positives" benign;
    preserves hwasan "semantics preserved" benign;
    clean hwasan "tagged pointers cross libc via TBI"
      "int main() { char *p = (char*)malloc(16); strcpy(p, \"hello\"); \
       int n = (int)strlen(p); char *q = strchr(p, 'l'); \
       int off = (int)(q - p); free(p); return n * 10 + off; }";
  ]

(* --- SoftBound/CETS ------------------------------------------------------------- *)

let softbound_tests =
  [
    detects softbound "heap overflow" heap_oob;
    detects softbound "heap UAF (key revoked)" heap_uaf;
    detects softbound "double free" double_free;
    detects softbound "invalid free" invalid_free;
    detects softbound "stack overflow" stack_oob;
    detects softbound "global overflow" global_oob;
    misses softbound "sub-object overflow (impl gap)" subobject_oob;
    Alcotest.test_case "wchar_t fails to compile (excluded)" `Quick
      (fun () ->
         match Sanitizer.Driver.build softbound wide_oob with
         | (_ : Tir.Ir.modul) ->
           Alcotest.fail "expected Unsupported for wchar_t"
         | exception Sanitizer.Spec.Unsupported _ -> ());
    Alcotest.test_case "missing wrapper causes a false positive" `Quick
      (fun () ->
         (* strchr has no wrapper: its result carries null bounds and the
            next dereference reports spuriously *)
         let src =
           "int main() { char buf[16]; strcpy(buf, \"find-me\"); \
            char *p = strchr(buf, 'm'); if (p == NULL) return 1; \
            return *p == 'm' ? 0 : 2; }"
         in
         match (run softbound src).Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o ->
           Alcotest.failf "expected the prototype's FP, got %a"
             Vm.Machine.pp_outcome o);
    Alcotest.test_case "UAF missed once the address is recycled" `Quick
      (fun () ->
         let src =
           "int main() { char *p = (char*)malloc(32); free(p); \
            char *q = (char*)malloc(32); q[0] = 'q'; \
            p[1] = 'x'; free(q); return 0; }"
         in
         match (run softbound src).Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o ->
           Alcotest.failf "expected value-recycling miss, got %a"
             Vm.Machine.pp_outcome o);
    clean softbound "no false positives on wrapped functions" benign;
    preserves softbound "semantics preserved" benign;
  ]

(* --- PACMem / CryptSan ------------------------------------------------------------ *)

let pa_tests (san : Sanitizer.Spec.t) =
  [
    detects san "heap overflow" heap_oob;
    detects san "heap UAF" heap_uaf;
    detects san "double free" double_free;
    detects san "invalid free" invalid_free;
    detects san "stack overflow" stack_oob;
    detects san "global overflow" global_oob;
    detects san "far OOB (bounds based)" far_oob;
    misses san "sub-object overflow" subobject_oob;
    misses san "wide-char overflow" wide_oob;
    detects san "narrow strcpy overflow (wrapped)"
      "int main() { char *d = (char*)malloc(4); \
       strcpy(d, \"still too long\"); free(d); return 0; }";
    clean san "no false positives" benign;
    preserves san "semantics preserved" benign;
  ]

let cryptsan_extra =
  [
    Alcotest.test_case "retired ids stay dead (no recycling)" `Quick
      (fun () ->
         (* many alloc/free cycles: stale pointers must still be caught
            because CryptSan ids are not reused *)
         let src =
           "int main() { char *stale = (char*)malloc(8); free(stale); \
            for (int i = 0; i < 50; i++) { char *t = (char*)malloc(8); \
            free(t); } stale[0] = 'x'; return 0; }"
         in
         match
           (run cryptsan src).Sanitizer.Driver.outcome
         with
         | Vm.Machine.Bug _ -> ()
         | o ->
           Alcotest.failf "CryptSan should catch stale id, got %a"
             Vm.Machine.pp_outcome o);
  ]

(* --- cross-cutting mechanism details ------------------------------------------ *)

let mechanism_tests =
  [
    Alcotest.test_case "ASan partial-granule shadow catches odd sizes"
      `Quick
      (fun () ->
         (* 10-byte allocation: shadow encodes the 2 valid bytes of the
            second granule, so p[10] is caught even mid-granule *)
         let src =
           "int main() { char *p = (char*)malloc(10); p[10] = 'x';             free(p); return 0; }"
         in
         match (run asan src).Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "ASan should catch: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "same odd size is HWASan's granule blind spot"
      `Quick
      (fun () ->
         let src =
           "int main() { char *p = (char*)malloc(10); p[10] = 'x';             free(p); return 0; }"
         in
         match (run hwasan src).Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o -> Alcotest.failf "HWASan should miss: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "SoftBound propagates metadata through memory"
      `Quick
      (fun () ->
         (* pointer stored into a struct field, loaded back, then
            overflowed: the in-memory metadata map must carry bounds *)
         let src =
           "struct Holder { char *data; int n; };
            int main() { struct Holder h;             h.data = (char*)malloc(8); h.n = 8;             char *p = h.data; p[9] = 'x'; free(h.data); return 0; }"
         in
         match (run softbound src).Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "SoftBound should catch: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "SoftBound key/lock catches UAF via stored pointer"
      `Quick
      (fun () ->
         let src =
           "char *stash[2];
            int main() { stash[0] = (char*)malloc(8);             free(stash[0]); char c = stash[0][0];             return c == 1 ? 1 : 0; }"
         in
         match (run softbound src).Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "SoftBound should catch: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "HWASan realloc of freed pointer reports" `Quick
      (fun () ->
         let src =
           "int main() { char *p = (char*)malloc(16); free(p);             p = (char*)realloc(p, 32); return 0; }"
         in
         match (run hwasan src).Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "HWASan should catch: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "PA tools survive realloc growth chains" `Quick
      (fun () ->
         let src =
           "int main() { long *v = (long*)malloc(4 * sizeof(long));             int cap = 4;             for (int i = 0; i < 100; i++) {               if (i >= cap) { cap *= 2;                 v = (long*)realloc(v, cap * sizeof(long)); }               v[i] = i; }             long s = v[99]; free(v); return (int)s & 127; }"
         in
         match (run pacmem src).Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 99 -> ()
         | o -> Alcotest.failf "PACMem broke realloc: %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "every tool agrees on a mixed clean workload"
      `Quick
      (fun () ->
         let src =
           "struct Rec { char name[12]; int v; };
            int main() { struct Rec *rs = (struct Rec*)malloc(8 *             sizeof(struct Rec)); int s = 0;             for (int i = 0; i < 8; i++) {               strcpy(rs[i].name, \"rec\"); rs[i].v = i; s += rs[i].v; }             char buf[32]; strcpy(buf, \"summary\");             s += (int)strlen(buf); free(rs); return s; }"
         in
         let expect =
           match (run Sanitizer.Spec.none src).Sanitizer.Driver.outcome with
           | Vm.Machine.Exit c -> c
           | o -> Alcotest.failf "baseline failed: %a"
                    Vm.Machine.pp_outcome o
         in
         List.iter
           (fun (san : Sanitizer.Spec.t) ->
              match (run san src).Sanitizer.Driver.outcome with
              | Vm.Machine.Exit c when c = expect -> ()
              | o ->
                Alcotest.failf "%s diverged: %a" san.Sanitizer.Spec.name
                  Vm.Machine.pp_outcome o)
           [ asan; asan_minus; hwasan; softbound; pacmem; cryptsan;
             Cecsan.sanitizer () ]);
  ]

let () =
  Alcotest.run "baselines"
    [
      "asan", asan_tests;
      "asan--", asan_minus_tests;
      "hwasan", hwasan_tests;
      "softbound-cets", softbound_tests;
      "pacmem", pa_tests pacmem;
      "cryptsan", pa_tests cryptsan @ cryptsan_extra;
      "mechanisms", mechanism_tests;
    ]

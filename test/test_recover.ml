(* Recoverable enforcement (the Report.sink) and fault injection
   (Vm.Fault): a run with findings completes with the program's own
   exit code and stdout, the sink dedups and caps, and injected
   allocator/table/tag faults degrade coverage without losing the
   workload. *)

let cecsan = Cecsan.sanitizer ()
let chain = Cecsan.sanitizer ~config:Cecsan.Config.with_chain ()

let run ?policy ?fault ?(san = cecsan) src =
  Sanitizer.Driver.run san ?policy ?fault src

let recover ?(max_reports = Vm.Report.default_max_reports) () =
  Vm.Report.Recover { max_reports }

let kinds reports =
  List.map (fun r -> Vm.Report.kind_to_string r.Vm.Report.r_kind) reports

let stat r key =
  match List.assoc_opt key r.Sanitizer.Driver.telemetry with
  | Some v -> v
  | None -> 0

(* Three distinct violations, all harmless to the raw machine (the
   overflow bytes stay inside mapped heap pages; freed blocks stay
   mapped), so the uninstrumented run is the ground truth a recovering
   run must match byte for byte. *)
let three_violations_src = {|
int main() {
  puts("begin");
  char *p = (char*)malloc(16);
  char *pad = (char*)malloc(16);
  pad[0] = 'p';
  p[16] = 'x';
  char *q = (char*)malloc(8);
  q[0] = 'a';
  free(q);
  int c = q[0];
  putchar(c);
  int d = p[17];
  putchar(48 + (d & 1));
  putchar(10);
  puts("end");
  free(p);
  free(pad);
  return 42;
}
|}

(* A clean malloc/free churn: 32 blocks through a 17-bit table is
   nothing, through an injected 8-entry table it is an exhaustion
   workload.  Expected exit: (0+1+...+31) land 255 = 240. *)
let churn_src = {|
int main() {
  int n = 32;
  char **h = (char**)malloc(n * sizeof(char*));
  int sum = 0;
  for (int i = 0; i < n; i++) { h[i] = (char*)malloc(16); h[i][0] = i; }
  for (int i = 0; i < n; i++) sum = sum + h[i][0];
  for (int i = 0; i < n; i++) free(h[i]);
  free(h);
  return sum & 255;
}
|}

let recover_tests =
  [
    Alcotest.test_case "halt default still raises on the first finding"
      `Quick (fun () ->
        let r = run three_violations_src in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug b ->
           Alcotest.(check string) "first violation wins" "out-of-bounds-write"
             (Vm.Report.kind_to_string b.Vm.Report.r_kind)
         | o ->
           Alcotest.failf "expected Bug, got %a" Vm.Machine.pp_outcome o);
        Alcotest.(check int) "no sink reports under Halt" 0
          (List.length r.Sanitizer.Driver.reports);
        Alcotest.(check int) "nothing suppressed" 0
          r.Sanitizer.Driver.suppressed);
    Alcotest.test_case
      "recover completes with the uninstrumented run's behavior" `Quick
      (fun () ->
        let plain = run ~san:Sanitizer.Spec.none three_violations_src in
        let code0 =
          match plain.Sanitizer.Driver.outcome with
          | Vm.Machine.Exit c -> c
          | o ->
            Alcotest.failf "uninstrumented run must be clean, got %a"
              Vm.Machine.pp_outcome o
        in
        Alcotest.(check int) "ground-truth exit code" 42 code0;
        let r = run ~policy:(recover ()) three_violations_src in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Completed_with_bugs { code; reports; suppressed } ->
          Alcotest.(check int) "exit code preserved" code0 code;
          Alcotest.(check string) "stdout identical"
            plain.Sanitizer.Driver.output r.Sanitizer.Driver.output;
          Alcotest.(check (list string))
            "exactly three findings, in submission order"
            [ "out-of-bounds-write"; "use-after-free";
              "out-of-bounds-read" ]
            (kinds reports);
          Alcotest.(check int) "none suppressed" 0 suppressed;
          Alcotest.(check (list string)) "run_result mirrors the outcome"
            (kinds reports) (kinds r.Sanitizer.Driver.reports)
        | o ->
          Alcotest.failf "expected Completed_with_bugs, got %a"
            Vm.Machine.pp_outcome o);
    Alcotest.test_case "max_reports caps and counts the overflow" `Quick
      (fun () ->
        let r =
          run ~policy:(recover ~max_reports:1 ()) three_violations_src
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Completed_with_bugs { code; reports; suppressed } ->
          Alcotest.(check int) "exit code preserved" 42 code;
          Alcotest.(check (list string)) "one finding recorded"
            [ "out-of-bounds-write" ] (kinds reports);
          Alcotest.(check int) "two findings suppressed" 2 suppressed
        | o ->
          Alcotest.failf "expected Completed_with_bugs, got %a"
            Vm.Machine.pp_outcome o);
    Alcotest.test_case "repeated findings dedup to one report" `Quick
      (fun () ->
        let r =
          run ~policy:(recover ())
            {|
int main() {
  char *p = (char*)malloc(16);
  char *pad = (char*)malloc(64);
  pad[0] = 'p';
  for (int i = 0; i < 5; i++) { p[16] = 'x'; }
  free(p);
  free(pad);
  return 7;
}
|}
        in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Completed_with_bugs { code; reports; suppressed } ->
          Alcotest.(check int) "exit code preserved" 7 code;
          Alcotest.(check int) "one deduped report" 1
            (List.length reports);
          Alcotest.(check int) "four duplicates suppressed" 4 suppressed
        | o ->
          Alcotest.failf "expected Completed_with_bugs, got %a"
            Vm.Machine.pp_outcome o);
  ]

let fault_tests =
  [
    Alcotest.test_case "table:8 entry-0 fallback completes with telemetry"
      `Quick (fun () ->
        let r =
          run ~policy:(recover ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Table 8 ]) churn_src
        in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 240 -> ()
         | o ->
           Alcotest.failf "expected a clean exit 240, got %a"
             Vm.Machine.pp_outcome o);
        Alcotest.(check bool) "exhausted_fallbacks > 0" true
          (stat r "exhausted_fallbacks" > 0));
    Alcotest.test_case "table:8 chain mode completes with telemetry"
      `Quick (fun () ->
        let r =
          run ~san:chain ~policy:(recover ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Table 8 ]) churn_src
        in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 240 -> ()
         | o ->
           Alcotest.failf "expected a clean exit 240, got %a"
             Vm.Machine.pp_outcome o);
        Alcotest.(check bool) "chained > 0" true (stat r "chained" > 0));
    Alcotest.test_case "oom:N serves NULL; a checking program survives"
      `Quick (fun () ->
        let r =
          run ~policy:(recover ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Oom 3 ])
            {|
int main() {
  int got = 0;
  for (int i = 0; i < 8; i++) {
    char *p = (char*)malloc(32);
    if (p != 0) { p[0] = 'x'; got = got + 1; }
  }
  return got;
}
|}
        in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit c ->
           Alcotest.(check bool) "some mallocs served" true (c >= 1);
           Alcotest.(check bool) "some mallocs denied" true (c < 8)
         | o ->
           Alcotest.failf "expected a clean exit, got %a"
             Vm.Machine.pp_outcome o);
        Alcotest.(check bool) "injected_oom > 0" true
          (stat r "injected_oom" > 0));
    Alcotest.test_case "tagflip corrupts coverage, not the workload"
      `Quick (fun () ->
        let r =
          run ~policy:(recover ())
            ~fault:(Vm.Fault.of_specs [ Vm.Fault.Tagflip 5 ]) churn_src
        in
        (match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 240
         | Vm.Machine.Completed_with_bugs { code = 240; _ } -> ()
         | o ->
           Alcotest.failf "expected completion with exit 240, got %a"
             Vm.Machine.pp_outcome o);
        Alcotest.(check bool) "injected_tagflips > 0" true
          (stat r "injected_tagflips" > 0));
    Alcotest.test_case "an inert injector changes nothing" `Quick
      (fun () ->
        let r0 = run churn_src in
        let r1 = run ~fault:(Vm.Fault.none ()) churn_src in
        (match r0.Sanitizer.Driver.outcome, r1.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit a, Vm.Machine.Exit b ->
           Alcotest.(check int) "same exit code" a b
         | a, b ->
           Alcotest.failf "runs diverged: %a vs %a" Vm.Machine.pp_outcome a
             Vm.Machine.pp_outcome b);
        Alcotest.(check int) "same cycle count" r0.Sanitizer.Driver.cycles
          r1.Sanitizer.Driver.cycles;
        Alcotest.(check string) "same output" r0.Sanitizer.Driver.output
          r1.Sanitizer.Driver.output);
    Alcotest.test_case "fault spec parsing" `Quick (fun () ->
        let ok s spec =
          match Vm.Fault.parse s with
          | Ok got ->
            Alcotest.(check string) s (Vm.Fault.spec_to_string spec)
              (Vm.Fault.spec_to_string got)
          | Error m -> Alcotest.failf "parse %S failed: %s" s m
        in
        ok "oom:40" (Vm.Fault.Oom 40);
        ok "table:8" (Vm.Fault.Table 8);
        ok "tagflip:97" (Vm.Fault.Tagflip 97);
        List.iter
          (fun s ->
            match Vm.Fault.parse s with
            | Ok _ -> Alcotest.failf "parse %S should fail" s
            | Error _ -> ())
          [ "bogus"; "oom"; "oom:"; "oom:x"; "table:-"; ":3" ]);
  ]

let () =
  Alcotest.run "recover"
    [ "recover", recover_tests; "faults", fault_tests ]

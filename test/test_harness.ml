(* Harness-level tests: statistics, table rendering, figure demos, and
   the CLI-visible behavior of the drivers. *)

let stats_tests =
  [
    Alcotest.test_case "average" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "mean" 20.0
          (Harness.Stats.average [ 10.0; 20.0; 30.0 ]);
        Alcotest.(check (float 1e-9)) "empty" 0.0
          (Harness.Stats.average []));
    Alcotest.test_case "geomean of equal overheads is that overhead" `Quick
      (fun () ->
         Alcotest.(check (float 1e-6)) "geo" 50.0
           (Harness.Stats.geomean_overhead [ 50.0; 50.0; 50.0 ]));
    Alcotest.test_case "geomean below average for skewed data" `Quick
      (fun () ->
         let xs = [ 10.0; 10.0; 10.0; 2000.0 ] in
         Alcotest.(check bool) "geo < avg" true
           (Harness.Stats.geomean_overhead xs < Harness.Stats.average xs));
    Alcotest.test_case "percent_overhead" `Quick (fun () ->
        Alcotest.(check (float 1e-9)) "2x = 100%" 100.0
          (Harness.Stats.percent_overhead ~base:100 ~measured:200);
        Alcotest.(check (float 1e-9)) "equal = 0%" 0.0
          (Harness.Stats.percent_overhead ~base:100 ~measured:100));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"geomean <= average (AM-GM)" ~count:200
         QCheck.(list_of_size (QCheck.Gen.int_range 1 10)
                   (QCheck.float_range 0.0 500.0))
         (fun xs ->
            Harness.Stats.geomean_overhead xs
            <= Harness.Stats.average xs +. 1e-6));
    Alcotest.test_case "percentiles of the empty list are 0" `Quick
      (fun () ->
         List.iter
           (fun f -> Alcotest.(check int) "empty" 0 (f []))
           [ Harness.Stats.p50; Harness.Stats.p90; Harness.Stats.p99;
             Harness.Stats.p999 ]);
    Alcotest.test_case "percentiles of a singleton are that element"
      `Quick
      (fun () ->
         List.iter
           (fun f -> Alcotest.(check int) "singleton" 42 (f [ 42 ]))
           [ Harness.Stats.p50; Harness.Stats.p90; Harness.Stats.p99;
             Harness.Stats.p999 ]);
    Alcotest.test_case "exact ranks on 1..100" `Quick (fun () ->
        (* nearest-rank: value at 1-based index ceil(q/100 * n) *)
        let xs = List.init 100 (fun i -> 100 - i) in  (* unsorted *)
        Alcotest.(check int) "p50" 50 (Harness.Stats.p50 xs);
        Alcotest.(check int) "p90" 90 (Harness.Stats.p90 xs);
        Alcotest.(check int) "p99" 99 (Harness.Stats.p99 xs);
        Alcotest.(check int) "p999" 100 (Harness.Stats.p999 xs));
    Alcotest.test_case "rank clamps to [1, n]" `Quick (fun () ->
        Alcotest.(check int) "q=50 n=4" 2 (Harness.Stats.rank ~q:50.0 4);
        Alcotest.(check int) "q=99.9 n=1000" 999
          (Harness.Stats.rank ~q:99.9 1000);
        Alcotest.(check int) "q=100 n=7" 7 (Harness.Stats.rank ~q:100.0 7);
        Alcotest.(check int) "tiny q floors at 1" 1
          (Harness.Stats.rank ~q:0.001 1000);
        Alcotest.(check int) "n=0" 0 (Harness.Stats.rank ~q:50.0 0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"percentiles are members and monotone in q" ~count:200
         QCheck.(list_of_size (QCheck.Gen.int_range 1 50) small_int)
         (fun xs ->
            let p50 = Harness.Stats.p50 xs
            and p90 = Harness.Stats.p90 xs
            and p99 = Harness.Stats.p99 xs
            and p999 = Harness.Stats.p999 xs in
            List.for_all (fun p -> List.mem p xs) [ p50; p90; p99; p999 ]
            && p50 <= p90 && p90 <= p99 && p99 <= p999));
  ]

let rendering_tests =
  [
    Alcotest.test_case "Table I renders the suite and the paper counts"
      `Quick
      (fun () ->
         let buf = Buffer.create 256 in
         let fmt = Format.formatter_of_buffer buf in
         Harness.Tables.table1 fmt ();
         Format.pp_print_flush fmt ();
         let s = Buffer.contents buf in
         List.iter
           (fun needle ->
              if
                not
                  (try
                     ignore (Str.search_forward (Str.regexp_string needle) s 0);
                     true
                   with Not_found -> false)
              then Alcotest.failf "missing %S in Table I output" needle)
           [ "CWE121"; "CWE761"; "985"; "15752" ]);
    Alcotest.test_case "Figure 3 demo reports only for CECSan" `Quick
      (fun () ->
         let buf = Buffer.create 256 in
         let fmt = Format.formatter_of_buffer buf in
         Harness.Figures.fig3 fmt ();
         Format.pp_print_flush fmt ();
         let s = Buffer.contents buf in
         let count_sub needle =
           let re = Str.regexp_string needle in
           let rec go i acc =
             match Str.search_forward re s i with
             | j -> go (j + 1) (acc + 1)
             | exception Not_found -> acc
           in
           go 0 0
         in
         Alcotest.(check int) "one BUG line" 1 (count_sub "BUG");
         Alcotest.(check int) "three clean exits" 3 (count_sub "exit 0"));
    Alcotest.test_case "Figure 4 demo keeps detection" `Quick (fun () ->
        let buf = Buffer.create 256 in
        let fmt = Format.formatter_of_buffer buf in
        Harness.Figures.fig4 fmt ();
        Format.pp_print_flush fmt ();
        let s = Buffer.contents buf in
        (try
           ignore
             (Str.search_forward (Str.regexp_string "safety preserved") s 0)
         with Not_found -> Alcotest.fail "missing safety line");
        try ignore (Str.search_forward (Str.regexp_string "BUG") s 0)
        with Not_found -> Alcotest.fail "optimized build must still detect");
  ]

(* a small sampled Table II: the full run lives in bench/main.exe; here
   we validate the machinery end to end on one CWE *)
let sampled_eval_tests =
  [
    Alcotest.test_case "sampled Table II round trip (CWE415)" `Quick
      (fun () ->
         let cases = Juliet.Suite.cases_for Juliet.Case.C415 in
         let d = Harness.Tables.run_table2 ~cases () in
         let buf = Buffer.create 256 in
         let fmt = Format.formatter_of_buffer buf in
         Harness.Tables.table2 fmt d;
         Format.pp_print_flush fmt ();
         List.iter
           (fun tr ->
              match Juliet.Runner.rate tr Juliet.Case.C415 with
              | Some r ->
                Alcotest.(check (float 0.01))
                  (tr.Juliet.Runner.tool ^ " on CWE415") 100.0 r
              | None -> ())
           d.Harness.Tables.t2_tools);
  ]

(* the tentpole guarantee: running the grid on a domain pool produces
   results structurally identical to the sequential run *)
let parallel_tests =
  [
    Alcotest.test_case "pool map preserves submission order" `Quick
      (fun () ->
         Harness.Pool.with_pool ~jobs:4 (fun p ->
             let xs = List.init 100 Fun.id in
             Alcotest.(check (list int))
               "order" (List.map (fun x -> x * x) xs)
               (Harness.Pool.map p (fun x -> x * x) xs)));
    Alcotest.test_case "pool map re-raises the lowest-index exception"
      `Quick
      (fun () ->
         Harness.Pool.with_pool ~jobs:4 (fun p ->
             match
               Harness.Pool.map p
                 (fun x -> if x mod 5 = 3 then failwith (string_of_int x)
                   else x)
                 (List.init 32 Fun.id)
             with
             | (_ : int list) -> Alcotest.fail "expected an exception"
             | exception Failure m ->
               Alcotest.(check string) "first failing index" "3" m));
    Alcotest.test_case "pool map_results keeps errors positional" `Quick
      (fun () ->
         let f x = if x mod 3 = 1 then failwith (string_of_int x) else x * 2 in
         let xs = List.init 20 Fun.id in
         let norm rs =
           List.map
             (function
               | Ok v -> Printf.sprintf "ok:%d" v
               | Error (Failure m) -> "err:" ^ m
               | Error e -> "err:" ^ Printexc.to_string e)
             rs
         in
         let seq =
           Harness.Pool.with_pool ~jobs:1 (fun p ->
               norm (Harness.Pool.map_results p f xs))
         in
         let par =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               norm (Harness.Pool.map_results p f xs))
         in
         Alcotest.(check (list string)) "j1 = j4" seq par;
         Alcotest.(check string) "index 1 failed" "err:1" (List.nth seq 1);
         Alcotest.(check string) "index 2 ok" "ok:4" (List.nth seq 2));
    Alcotest.test_case "pool map_results survives every task raising"
      `Quick
      (fun () ->
         Harness.Pool.with_pool ~jobs:4 (fun p ->
             let rs =
               Harness.Pool.map_results p
                 (fun x -> failwith (string_of_int x))
                 (List.init 64 Fun.id)
             in
             Alcotest.(check int) "all errors" 64
               (List.length
                  (List.filter (function Error _ -> true | _ -> false) rs))));
    Alcotest.test_case "nested pool map raises instead of deadlocking"
      `Quick
      (fun () ->
         Harness.Pool.with_pool ~jobs:2 (fun p ->
             match
               Harness.Pool.map p
                 (fun _ -> Harness.Pool.map p (fun y -> y) [ 1; 2 ])
                 [ 0; 1 ]
             with
             | _ -> Alcotest.fail "expected Invalid_argument"
             | exception Invalid_argument _ -> ()));
    Alcotest.test_case "pool shutdown is idempotent" `Quick (fun () ->
        let p = Harness.Pool.create ~jobs:3 in
        Alcotest.(check (list int)) "works" [ 2; 4 ]
          (Harness.Pool.map p (fun x -> x * 2) [ 1; 2 ]);
        Harness.Pool.shutdown p;
        Harness.Pool.shutdown p);
    Alcotest.test_case "pool create rejects negative job counts" `Quick
      (fun () ->
         match Harness.Pool.create ~jobs:(-1) with
         | _ -> Alcotest.fail "expected Invalid_argument"
         | exception Invalid_argument _ -> ());
    Alcotest.test_case "default_jobs warns and falls back on bad env"
      `Quick
      (fun () ->
         Unix.putenv "CECSAN_JOBS" "not-a-number";
         let j = Harness.Pool.default_jobs () in
         Unix.putenv "CECSAN_JOBS" "";
         Alcotest.(check int) "falls back to 1" 1 j);
    Alcotest.test_case "-j 4 Table II subset equals sequential" `Quick
      (fun () ->
         let cases = Juliet.Suite.cases_for Juliet.Case.C415 in
         let seq = Harness.Tables.run_table2 ~cases () in
         let par =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               Harness.Tables.run_table2 ~pool:p ~cases ())
         in
         Alcotest.(check bool) "identical results" true (seq = par));
    Alcotest.test_case "-j 4 Table IV row equals sequential" `Quick
      (fun () ->
         let w = [ Workloads.Spec2006.mcf ] in
         let seq = Harness.Overhead.measure w in
         let par =
           Harness.Pool.with_pool ~jobs:4 (fun p ->
               Harness.Overhead.measure ~pool:p w)
         in
         Alcotest.(check bool) "identical rows" true (seq = par));
  ]

let () =
  Alcotest.run "harness"
    [
      "stats", stats_tests;
      "rendering", rendering_tests;
      "sampled-eval", sampled_eval_tests;
      "parallel", parallel_tests;
    ]

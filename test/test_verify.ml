(* Tests of Tir.Verify, the static certification pass: the unmutated
   pipeline must verify, ~10 seeded unsound mutations of the
   instrumented/optimized IR must each be rejected, every sanitizer must
   verify across 200 generated programs with coverage preserved over the
   optimization, and the [Cfg.make_preheader] stale-cfg regression. *)

open Tir.Ir

let sp = Printf.sprintf

(* A program exercising every coverage feature: a store loop and a load
   loop over a heap array (grouped endpoint checks), an external call
   taking a pointer (strip obligation), and a free (hazard). *)
let src =
  "extern int ext_sum(char *p, int n);\n\
   int main() {\n\
  \  int sum = 0;\n\
  \  char *h = (char*)malloc(16);\n\
  \  for (int i = 0; i < 16; i++) {\n\
  \    h[i] = 65;\n\
  \  }\n\
  \  for (int i = 0; i < 16; i++) {\n\
  \    sum = sum + (int)h[i];\n\
  \  }\n\
  \  sum = sum + ext_sum(h, 16);\n\
  \  free(h);\n\
  \  printf(\"S:%d\\n\", sum & 65535);\n\
  \  return sum & 63;\n\
   }\n"

(* Instrument + optimize by hand (not through [Driver.build]) so the
   mutations below apply after the gate would have run. *)
let build () =
  let san = Cecsan.sanitizer () in
  let md = Sanitizer.Driver.compile_cached ~optimize:true src in
  san.Sanitizer.Spec.instrument md;
  san.Sanitizer.Spec.optimize md;
  (Option.get san.Sanitizer.Spec.verify, md)

let main_fn md =
  match find_func md "main" with
  | Some f -> f
  | None -> Alcotest.fail "no main"

(* Replace the first instruction satisfying [pred] with [repl i];
   returns whether a replacement happened (a mutation that finds
   nothing to mutate is a broken test, not a pass). *)
let replace_first (f : func) pred repl =
  let hit = ref false in
  Array.iter
    (fun b ->
       if not !hit then
         b.b_instrs <-
           List.concat_map
             (fun i ->
                if (not !hit) && pred i then begin
                  hit := true;
                  repl i
                end
                else [ i ])
             b.b_instrs)
    f.f_blocks;
  !hit

let is_check name i =
  match i with
  | Iintrin { name = n; _ } -> String.equal n name
  | _ -> false

let errors_of spec md = (Tir.Verify.check ~spec md).Tir.Verify.r_errors

let assert_rejected name mutate =
  let spec, md = build () in
  if not (mutate spec md) then
    Alcotest.failf "%s: mutation found nothing to mutate" name;
  match errors_of spec md with
  | [] -> Alcotest.failf "%s: verifier accepted the mutated module" name
  | _ :: _ -> ()

let test_baseline () =
  let spec, md = build () in
  let r = Tir.Verify.check ~spec md in
  Alcotest.(check (list string))
    "no errors"
    []
    (List.map Tir.Verify.error_to_string r.Tir.Verify.r_errors);
  Alcotest.(check bool) "has obligations" true (r.Tir.Verify.r_accesses > 0);
  Alcotest.(check int) "all covered" r.Tir.Verify.r_accesses
    r.Tir.Verify.r_covered

(* --- the mutation-kill battery -------------------------------------------- *)

let mutations =
  [
    (* coverage unsoundness: each must fail the dataflow proof *)
    ( "dropping a check loses coverage",
      fun (spec : Tir.Verify.spec) md ->
        replace_first (main_fn md)
          (is_check spec.Tir.Verify.check_store)
          (fun _ -> []) );
    ( "dropping the far grouped endpoint loses coverage",
      fun (spec : Tir.Verify.spec) md ->
        (* skip the first store check, delete the second: one endpoint
           of a grouped pair is not a range proof *)
        let seen = ref 0 in
        replace_first (main_fn md)
          (fun i ->
             if is_check spec.Tir.Verify.check_store i then begin
               incr seen;
               !seen = 2
             end
             else false)
          (fun _ -> []) );
    ( "widening a grouped endpoint breaks the range proof",
      fun _spec md ->
        (* the optimizer pinned offsets 0 and 15; moving the far
           endpoint to 23 leaves offset 15 unproven *)
        replace_first (main_fn md)
          (function
            | Igep { idx = Some (Imm 15); _ } -> true
            | _ -> false)
          (function
            | Igep g -> [ Igep { g with idx = Some (Imm 23) } ]
            | _ -> assert false) );
    ( "shrinking a check's size breaks coverage",
      fun (spec : Tir.Verify.spec) md ->
        replace_first (main_fn md)
          (is_check spec.Tir.Verify.check_store)
          (function
            | Iintrin ({ args = [ p; Imm _ ]; _ } as c) ->
              [ Iintrin { c with args = [ p; Imm 0 ] } ]
            | i -> [ i ]) );
    ( "a hazard intrinsic before an access kills its facts",
      fun _spec md ->
        let f = main_fn md in
        let hazard =
          Iintrin
            { dst = None; name = "__cecsan_free"; args = [];
              site = fresh_site md }
        in
        replace_first f
          (function
            | Istore { safe = false; _ } -> true
            | _ -> false)
          (fun i -> [ hazard; i ]) );
    ( "an unstripped pointer reaches an external call",
      fun (spec : Tir.Verify.spec) md ->
        let strip = Option.get spec.Tir.Verify.extcall_strip in
        replace_first (main_fn md) (is_check strip)
          (function
            | Iintrin { dst = Some d; args = [ p ]; _ } ->
              [ Imov { dst = d; src = p } ]
            | i -> [ i ]) );
    (* well-formedness: each must fail the lint *)
    ( "branch to a nonexistent block",
      fun _spec md ->
        let f = main_fn md in
        f.f_blocks.(0).b_term <- Tbr 999;
        true );
    ( "operand register out of range",
      fun _spec md ->
        let f = main_fn md in
        let b = f.f_blocks.(0) in
        b.b_instrs <-
          b.b_instrs @ [ Imov { dst = 0; src = Reg (f.f_nregs + 7) } ];
        true );
    ( "call to an unresolved callee",
      fun _spec md ->
        let f = main_fn md in
        let b = f.f_blocks.(0) in
        b.b_instrs <-
          b.b_instrs @ [ Icall { dst = None; callee = "no_such_fn";
                                 args = [] } ];
        true );
    ( "stack slot out of range",
      fun _spec md ->
        let f = main_fn md in
        let b = f.f_blocks.(0) in
        b.b_instrs <- b.b_instrs @ [ Islot { dst = 0; slot = 99 } ];
        true );
    ( "access size not a power of two",
      fun _spec md ->
        replace_first (main_fn md)
          (function
            | Iload { safe = false; _ } -> true
            | _ -> false)
          (function
            | Iload l -> [ Iload { l with size = 3 } ]
            | i -> [ i ]) );
  ]

let mutation_tests =
  List.map
    (fun (name, mutate) ->
       Alcotest.test_case name `Quick (fun () -> assert_rejected name mutate))
    mutations

(* --- every sanitizer verifies on generated programs ----------------------- *)

let all_sanitizers () =
  [
    Cecsan.sanitizer ();
    Baselines.Asan.sanitizer ();
    Baselines.Asan_minus.sanitizer ();
    Baselines.Hwasan.sanitizer ();
    Baselines.Softbound_cets.sanitizer ();
    Baselines.Pacmem.sanitizer ();
    Baselines.Cryptsan.sanitizer ();
  ]

let seed_gen = QCheck.(map abs int)

let property_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:
           "all sanitizers verify on generated programs, coverage \
            preserved across optimization"
         ~count:200 seed_gen
         (fun seed ->
            let p =
              Fuzz.Gen.generate ~inject:(seed land 1 = 1)
                (Fuzz.Tape.fresh ~seed)
            in
            List.for_all
              (fun optimize ->
                 List.for_all
                   (fun (san : Sanitizer.Spec.t) ->
                      match
                        let md =
                          Sanitizer.Driver.compile_cached ~optimize
                            p.Fuzz.Gen.src
                        in
                        let spec = san.Sanitizer.Spec.verify in
                        san.Sanitizer.Spec.instrument md;
                        let pre = Tir.Verify.check ?spec md in
                        san.Sanitizer.Spec.optimize md;
                        let post = Tir.Verify.check ?spec md in
                        (pre, post)
                      with
                      | exception Sanitizer.Spec.Unsupported _ -> true
                      | pre, post ->
                        let clean (r : Tir.Verify.report) tag =
                          match r.Tir.Verify.r_errors with
                          | [] -> true
                          | e :: _ ->
                            QCheck.Test.fail_reportf
                              "seed %d, %s, O%d, %s: %s@.%s" seed
                              san.Sanitizer.Spec.name
                              (if optimize then 2 else 0)
                              tag
                              (Tir.Verify.error_to_string e)
                              p.Fuzz.Gen.src
                        in
                        clean pre "preopt" && clean post "postopt"
                        &&
                        (if
                           pre.Tir.Verify.r_covered
                           <> post.Tir.Verify.r_covered
                         then
                           QCheck.Test.fail_reportf
                             "seed %d, %s, O%d: coverage %d preopt vs %d \
                              postopt"
                             seed san.Sanitizer.Spec.name
                             (if optimize then 2 else 0)
                             pre.Tir.Verify.r_covered
                             post.Tir.Verify.r_covered
                         else true))
                   (all_sanitizers ()))
              [ true; false ]));
  ]

(* --- make_preheader stale-cfg regression ---------------------------------- *)

(* Two self-loops reachable from one shared entry block: creating the
   first preheader appends a block, so the cfg the caller held is stale
   for the second loop.  [make_preheader] returns the rebuilt cfg; this
   drives both creations through the returned values and checks the
   final shape. *)
let test_preheader_shared_entry () =
  let blk id term = { b_id = id; b_instrs = []; b_term = term } in
  let f =
    {
      f_name = "f";
      f_params = [];
      f_nregs = 1;
      f_slots = [];
      f_blocks =
        [|
          blk 0 (Tcbr (Reg 0, 1, 2));
          blk 1 (Tcbr (Reg 0, 1, 2)); (* loop 1: self-loop, exits into 2 *)
          blk 2 (Tcbr (Reg 0, 2, 3)); (* loop 2: self-loop *)
          blk 3 (Tret (Some (Imm 0)));
        |];
      f_external = false;
      f_ret_void = false;
      f_sig_ptrs = [];
      f_ret_ptr = false;
    }
  in
  let cfg = Tir.Cfg.build f in
  let idom = Tir.Cfg.dominators cfg in
  let loops = Tir.Cfg.loops f cfg idom in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let l1, l2 =
    match loops with [ a; b ] -> (a, b) | _ -> assert false
  in
  Alcotest.(check int) "headers" 1 l1.Tir.Cfg.header;
  Alcotest.(check int) "headers" 2 l2.Tir.Cfg.header;
  let ph1, cfg = Tir.Cfg.make_preheader f cfg l1 in
  (* threading the returned cfg into the second creation is the point:
     the original cfg has no arrays for the appended block *)
  let ph2, cfg = Tir.Cfg.make_preheader f cfg l2 in
  Alcotest.(check bool) "distinct preheaders" true (ph1 <> ph2);
  Alcotest.(check int) "six blocks" 6 (Array.length f.f_blocks);
  let term i = f.f_blocks.(i).b_term in
  Alcotest.(check bool) "ph1 -> header 1" true (term ph1 = Tbr 1);
  Alcotest.(check bool) "ph2 -> header 2" true (term ph2 = Tbr 2);
  Alcotest.(check bool) "entry retargeted" true
    (term 0 = Tcbr (Reg 0, ph1, ph2));
  Alcotest.(check bool) "loop 1 exit retargeted" true
    (term 1 = Tcbr (Reg 0, 1, ph2));
  (* the returned cfg matches a fresh rebuild of the mutated function *)
  let fresh = Tir.Cfg.build f in
  Alcotest.(check bool) "returned cfg is current" true
    (cfg.Tir.Cfg.preds = fresh.Tir.Cfg.preds
     && cfg.Tir.Cfg.succs = fresh.Tir.Cfg.succs);
  (* each header now has the preheader as its only non-latch pred *)
  List.iter
    (fun (h, ph) ->
       let outside =
         List.filter (fun p -> p <> h) fresh.Tir.Cfg.preds.(h)
       in
       Alcotest.(check (list int)) (sp "preds of header %d" h) [ ph ]
         outside)
    [ (1, ph1); (2, ph2) ]

let preheader_tests =
  [
    Alcotest.test_case "make_preheader: two loops, shared entry block"
      `Quick test_preheader_shared_entry;
  ]

let () =
  Alcotest.run "verify"
    [
      ("baseline", [ Alcotest.test_case "pipeline verifies" `Quick
                       test_baseline ]);
      ("mutation-kill", mutation_tests);
      ("generated-programs", property_tests);
      ("preheader", preheader_tests);
    ]

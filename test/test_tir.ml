(* IR-level tests: CFG analyses, the check optimizer, and a differential
   fuzzer that generates random well-defined MiniC programs and asserts
   that every sanitizer preserves their semantics exactly. *)

(* --- CFG / dominators / loops ----------------------------------------------- *)

let compile src = Sanitizer.Driver.compile src

let main_of md = Option.get (Tir.Ir.find_func md "main")

let cfg_tests =
  [
    Alcotest.test_case "straight-line has no loops" `Quick (fun () ->
        let md = compile "int main() { int x = 1; return x + 2; }" in
        let f = main_of md in
        let cfg = Tir.Cfg.build f in
        let idom = Tir.Cfg.dominators cfg in
        Alcotest.(check int) "loops" 0
          (List.length (Tir.Cfg.loops f cfg idom)));
    Alcotest.test_case "one loop detected" `Quick (fun () ->
        let md =
          compile
            "int main() { int s = 0; for (int i = 0; i < 5; i++) s += i; \
             return s; }"
        in
        let f = main_of md in
        let cfg = Tir.Cfg.build f in
        let idom = Tir.Cfg.dominators cfg in
        Alcotest.(check int) "loops" 1
          (List.length (Tir.Cfg.loops f cfg idom)));
    Alcotest.test_case "nested loops both detected" `Quick (fun () ->
        let md =
          compile
            "int main() { int s = 0; for (int i = 0; i < 3; i++) \
             for (int j = 0; j < 3; j++) s++; return s; }"
        in
        let f = main_of md in
        let cfg = Tir.Cfg.build f in
        let idom = Tir.Cfg.dominators cfg in
        let loops = Tir.Cfg.loops f cfg idom in
        Alcotest.(check int) "loops" 2 (List.length loops);
        (* the inner loop's body is a subset of the outer's *)
        (match
           List.sort
             (fun a b ->
                compare
                  (List.length a.Tir.Cfg.body)
                  (List.length b.Tir.Cfg.body))
             loops
         with
         | [ inner; outer ] ->
           List.iter
             (fun b ->
                Alcotest.(check bool) "nesting" true
                  (List.mem b outer.Tir.Cfg.body))
             inner.Tir.Cfg.body
         | _ -> Alcotest.fail "expected two loops"));
    Alcotest.test_case "entry dominates everything reachable" `Quick
      (fun () ->
         let md =
           compile
             "int main() { int x = 1; if (x) x = 2; else x = 3; \
              while (x > 0) x--; return x; }"
         in
         let f = main_of md in
         let cfg = Tir.Cfg.build f in
         let idom = Tir.Cfg.dominators cfg in
         Array.iteri
           (fun b _ ->
              if idom.(b) <> -1 then
                Alcotest.(check bool)
                  (Printf.sprintf "0 dom %d" b)
                  true
                  (Tir.Cfg.dominates idom 0 b))
           f.Tir.Ir.f_blocks);
    Alcotest.test_case "preheader creation is idempotent-ish" `Quick
      (fun () ->
         let md =
           compile
             "int main() { int s = 0; for (int i = 0; i < 4; i++) s += i; \
              return s; }"
         in
         let f = main_of md in
         let cfg = Tir.Cfg.build f in
         let idom = Tir.Cfg.dominators cfg in
         match Tir.Cfg.loops f cfg idom with
         | [ l ] ->
           let n_before = Array.length f.Tir.Ir.f_blocks in
           let ph, _ = Tir.Cfg.make_preheader f cfg l in
           Alcotest.(check bool) "valid block id" true
             (ph >= 0 && ph < Array.length f.Tir.Ir.f_blocks);
           (* the loop already had a dedicated straight-line preheader
              from lowering, so no block should have been added *)
           Alcotest.(check int) "no growth" n_before
             (Array.length f.Tir.Ir.f_blocks)
         | _ -> Alcotest.fail "expected one loop");
  ]

(* --- redundant check elimination --------------------------------------------- *)

let count_checks md =
  Tir.Ir.count_intrins md (fun n ->
      String.length n >= 14
      && String.equal (String.sub n 0 14) "__cecsan_check")

let checkopt_tests =
  [
    Alcotest.test_case "repeated deref of one pointer deduplicates" `Quick
      (fun () ->
         let src =
           "int main() { int *p = (int*)malloc(8); *p = 1; *p = 2; \
            *p = *p + 3; int r = *p; free(p); return r; }"
         in
         (* absint off on both sides: it would elide every check of this
            trivial program and hide the redundant-elimination delta *)
         let with_elim =
           Sanitizer.Driver.build
             (Cecsan.sanitizer
                ~config:
                  { Cecsan.Config.default with
                    Cecsan.Config.opt_absint = false }
                ())
             src
         in
         let without =
           Sanitizer.Driver.build
             (Cecsan.sanitizer
                ~config:
                  { Cecsan.Config.default with
                    Cecsan.Config.opt_redundant = false;
                    Cecsan.Config.opt_absint = false }
                ())
             src
         in
         Alcotest.(check bool)
           (Printf.sprintf "%d < %d" (count_checks with_elim)
              (count_checks without))
           true
           (count_checks with_elim < count_checks without));
    Alcotest.test_case "a free between derefs blocks deduplication" `Quick
      (fun () ->
         (* the second check must survive: the object may be gone *)
         let src =
           "int main() { int *p = (int*)malloc(8); *p = 1; free(p); \
            return *p; }"
         in
         let r = Sanitizer.Driver.run (Cecsan.sanitizer ()) src in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug b when b.Vm.Report.r_kind = Vm.Report.Use_after_free
           -> ()
         | o ->
           Alcotest.failf "UAF must survive elision: %a"
             Vm.Machine.pp_outcome o);
    Alcotest.test_case "a call between derefs blocks deduplication" `Quick
      (fun () ->
         let src =
           "int *stash;\n\
            void saboteur() { free(stash); }\n\
            int main() { int *p = (int*)malloc(8); stash = p; *p = 1; \
            saboteur(); return *p; }"
         in
         let r = Sanitizer.Driver.run (Cecsan.sanitizer ()) src in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o ->
           Alcotest.failf "UAF across call must be caught: %a"
             Vm.Machine.pp_outcome o);
    Alcotest.test_case "struct-array loop gets endpoint grouping" `Quick
      (fun () ->
         let src =
           "struct P { long a; long b; };\n\
            int main() { int n = 64; \
            struct P *v = (struct P*)malloc(n * sizeof(struct P)); \
            for (int i = 0; i < n; i++) { v[i].a = i; v[i].b = 2 * i; } \
            long s = v[63].b; free(v); return (int)s & 255; }"
         in
         let full = Sanitizer.Driver.run (Cecsan.sanitizer ()) src in
         let noloop =
           Sanitizer.Driver.run
             (Cecsan.sanitizer
                ~config:
                  { Cecsan.Config.default with
                    Cecsan.Config.opt_loop = false }
                ())
             src
         in
         (match full.Sanitizer.Driver.outcome, noloop.Sanitizer.Driver.outcome
          with
          | Vm.Machine.Exit a, Vm.Machine.Exit b ->
            Alcotest.(check int) "same result" a b
          | _ -> Alcotest.fail "runs failed");
         Alcotest.(check bool) "grouping pays" true
           (full.Sanitizer.Driver.cycles < noloop.Sanitizer.Driver.cycles));
    Alcotest.test_case "variable constant bound still groups" `Quick
      (fun () ->
         (* n is a variable holding a compile-time constant: the mini
            constant propagation must see through it *)
         let src =
           "int main() { int n = 128; int *a = (int*)malloc(n * 4); \
            for (int i = 0; i < n; i++) a[i] = i; int r = a[127]; \
            free(a); return r & 255; }"
         in
         let san = Cecsan.sanitizer () in
         let md = Sanitizer.Driver.build san src in
         (* per-iteration checks gone: fewer than one check site per
            loop would imply at most prologue + endpoints *)
         let r = Sanitizer.Driver.run_module san md in
         (match r.Sanitizer.Driver.outcome with
          | Vm.Machine.Exit 127 -> ()
          | o -> Alcotest.failf "bad run: %a" Vm.Machine.pp_outcome o);
         let noopt =
           Sanitizer.Driver.run
             (Cecsan.sanitizer ~config:Cecsan.Config.no_opts ())
             src
         in
         Alcotest.(check bool) "fewer cycles than unoptimized" true
           (r.Sanitizer.Driver.cycles < noopt.Sanitizer.Driver.cycles));
  ]

(* --- differential fuzzing ----------------------------------------------------- *)

(* Generates random, well-defined MiniC programs: all array indices are
   masked in-bounds, all arithmetic is total, all allocations are freed.
   Every sanitizer must agree with the uninstrumented run bit-for-bit. *)
module Fuzz = struct
  open QCheck.Gen

  let var k = Printf.sprintf "v%d" (k mod 4)

  let rec expr depth =
    if depth <= 0 then
      oneof
        [ map (fun n -> string_of_int (n - 9)) (int_bound 18);
          map var (int_bound 3) ]
    else
      frequency
        [ 2, map (fun n -> string_of_int (n - 9)) (int_bound 18);
          3, map var (int_bound 3);
          2,
          map2
            (fun a b -> Printf.sprintf "(%s + %s)" a b)
            (expr (depth - 1)) (expr (depth - 1));
          2,
          map2
            (fun a b -> Printf.sprintf "(%s - %s)" a b)
            (expr (depth - 1)) (expr (depth - 1));
          1,
          map2
            (fun a b -> Printf.sprintf "(%s * %s)" a b)
            (expr (depth - 1)) (expr (depth - 1));
          1,
          map2
            (fun a b -> Printf.sprintf "(%s ^ %s)" a b)
            (expr (depth - 1)) (expr (depth - 1));
          1,
          map2
            (fun a b -> Printf.sprintf "(%s & %s)" a b)
            (expr (depth - 1)) (expr (depth - 1));
          1, map (fun a -> Printf.sprintf "arr[(%s) & 15]" a)
            (expr (depth - 1));
        ]

  let rec stmt depth =
    if depth <= 0 then
      map2
        (fun k e -> Printf.sprintf "%s = (%s) & 0xffff;" (var k) e)
        (int_bound 3) (expr 2)
    else
      frequency
        [ 3,
          map2
            (fun k e -> Printf.sprintf "%s = (%s) & 0xffff;" (var k) e)
            (int_bound 3) (expr 3);
          2,
          map2
            (fun i e -> Printf.sprintf "arr[(%s) & 15] = (%s) & 0xff;" i e)
            (expr 2) (expr 2);
          2,
          map3
            (fun c a b ->
               Printf.sprintf "if ((%s) > 0) { %s } else { %s }" c a b)
            (expr 2) (stmt (depth - 1)) (stmt (depth - 1));
          2,
          map2
            (fun n body ->
               Printf.sprintf
                 "for (int it%d = 0; it%d < %d; it%d++) { %s }" depth depth
                 (1 + (n mod 6)) depth body)
            (int_bound 5) (stmt (depth - 1));
          1,
          map2
            (fun e body ->
               Printf.sprintf
                 "{ int *hp = (int*)malloc(16 * sizeof(int)); \
                  for (int hi = 0; hi < 16; hi++) hp[hi] = hi; \
                  %s = (%s + hp[(%s) & 15]) & 0xffff; %s free(hp); }"
                 (var 0) (var 0) e body)
            (expr 2) (stmt (depth - 1));
          1,
          map
            (fun e ->
               Printf.sprintf
                 "{ char sbuf[32]; strcpy(sbuf, \"fuzzbox\"); \
                  %s = (%s + sbuf[(%s) & 7] + (int)strlen(sbuf)) & 0xffff; }"
                 (var 1) (var 1) e)
            (expr 2);
        ]

  let program =
    let open QCheck.Gen in
    map2
      (fun stmts seed ->
         Printf.sprintf
           "int main() {\n\
            int v0 = %d; int v1 = %d; int v2 = %d; int v3 = %d;\n\
            int arr[16];\n\
            for (int i = 0; i < 16; i++) arr[i] = i * 3;\n\
            %s\n\
            int cs = v0 + v1 * 3 + v2 * 5 + v3 * 7;\n\
            for (int i = 0; i < 16; i++) cs += arr[i];\n\
            return cs & 255;\n}"
           (seed mod 10)
           ((seed / 10) mod 10)
           ((seed / 100) mod 10)
           ((seed / 1000) mod 10)
           (String.concat "\n" stmts))
      (list_size (int_range 1 6) (stmt 3))
      (int_bound 9999)
end

let differential_test =
  QCheck.Test.make ~name:"all sanitizers preserve program semantics"
    ~count:120
    (QCheck.make Fuzz.program ~print:(fun s -> s))
    (fun src ->
       let outcome (san : Sanitizer.Spec.t) =
         match
           (Sanitizer.Driver.run san ~budget:100_000_000 src)
             .Sanitizer.Driver.outcome
         with
         | Vm.Machine.Exit c -> c
         | o ->
           QCheck.Test.fail_reportf "%s failed: %a" san.Sanitizer.Spec.name
             Vm.Machine.pp_outcome o
       in
       let expected = outcome Sanitizer.Spec.none in
       List.for_all
         (fun san -> outcome san = expected)
         [
           Cecsan.sanitizer ();
           Cecsan.sanitizer ~config:Cecsan.Config.no_opts ();
           Baselines.Asan.sanitizer ();
           Baselines.Asan_minus.sanitizer ();
           Baselines.Hwasan.sanitizer ();
           Baselines.Pacmem.sanitizer ();
           Baselines.Cryptsan.sanitizer ();
           Baselines.Softbound_cets.sanitizer ();
         ])

let clone_deep =
  (* Ir.clone must copy every mutable structure: a sanitizer pass run on
     the clone (rewriting blocks, slots, globals in place) may not leak
     through to the original.  This is what makes Driver.compile_cached
     sound. *)
  QCheck.Test.make
    ~name:"Ir.clone is deep (instrumenting the clone leaves the \
           original byte-identical)"
    ~count:60
    (QCheck.make Fuzz.program ~print:(fun s -> s))
    (fun src ->
       let m = Sanitizer.Driver.compile src in
       let before = Tir.Pp.module_to_string m in
       let c = Tir.Ir.clone m in
       if not (String.equal before (Tir.Pp.module_to_string c)) then
         QCheck.Test.fail_report "clone is not a faithful copy";
       (Cecsan.sanitizer ()).Sanitizer.Spec.instrument c;
       if String.equal before (Tir.Pp.module_to_string c) then
         QCheck.Test.fail_report
           "instrumentation was a no-op; the test is vacuous";
       if not (String.equal before (Tir.Pp.module_to_string m)) then
         QCheck.Test.fail_report
           "instrumenting the clone mutated the original";
       true)

let promote_differential =
  QCheck.Test.make ~name:"promotion (-O2 model) preserves semantics"
    ~count:80
    (QCheck.make Fuzz.program ~print:(fun s -> s))
    (fun src ->
       let run opt =
         match
           (Sanitizer.Driver.run Sanitizer.Spec.none ~optimize:opt
              ~budget:100_000_000 src)
             .Sanitizer.Driver.outcome
         with
         | Vm.Machine.Exit c -> c
         | o ->
           QCheck.Test.fail_reportf "run failed: %a" Vm.Machine.pp_outcome o
       in
       run true = run false)


(* --- link-time merging (section II.E) ----------------------------------------- *)

let lib_unit = {|
struct Pair { int x; int y; };

int lib_sum(int *data, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) s += data[i];
  return s;
}

char *lib_frob(char *buf) {
  /* legacy code writes through the raw pointer */
  buf[0] = 'L';
  return buf;
}
|}

let main_unit = {|
struct Pair { int x; int y; };

extern int lib_sum(int *data, int n);
extern char *lib_frob(char *buf);

int main() {
  int data[8];
  for (int i = 0; i < 8; i++) data[i] = i;
  int s = lib_sum(data, 8);
  char buf[16];
  strcpy(buf, "hello");
  char *r = lib_frob(buf);
  return s + (r[0] == 'L' ? 1 : 0);
}
|}

let link_tests =
  [
    Alcotest.test_case "two instrumented units link and run" `Quick
      (fun () ->
         let md =
           Sanitizer.Driver.build_link (Cecsan.sanitizer ())
             [ (main_unit, `Instrumented); (lib_unit, `Instrumented) ]
         in
         let r = Sanitizer.Driver.run_module (Cecsan.sanitizer ()) md in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit 29 -> ()
         | o -> Alcotest.failf "got %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "legacy unit runs uninstrumented" `Quick (fun () ->
        let md =
          Sanitizer.Driver.build_link (Cecsan.sanitizer ())
            [ (main_unit, `Instrumented); (lib_unit, `Uninstrumented) ]
        in
        (* the legacy function's body must contain no CECSan intrinsics *)
        let f = Option.get (Tir.Ir.find_func md "lib_sum") in
        Alcotest.(check bool) "marked external" true f.Tir.Ir.f_external;
        Array.iter
          (fun b ->
             List.iter
               (function
                 | Tir.Ir.Iintrin { name; _ } ->
                   Alcotest.failf "legacy code instrumented with %s" name
                 | _ -> ())
               b.Tir.Ir.b_instrs)
          f.Tir.Ir.f_blocks;
        let r = Sanitizer.Driver.run_module (Cecsan.sanitizer ()) md in
        match r.Sanitizer.Driver.outcome with
        | Vm.Machine.Exit 29 -> ()
        | o -> Alcotest.failf "got %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "bugs in instrumented side still caught" `Quick
      (fun () ->
         let buggy_main = {|
extern int lib_sum(int *data, int n);
int main() {
  int *data = (int*)malloc(8 * sizeof(int));
  data[9] = 1;
  int s = lib_sum(data, 8);
  free(data);
  return s;
}
|}
         in
         let md =
           Sanitizer.Driver.build_link (Cecsan.sanitizer ())
             [ (buggy_main, `Instrumented); (lib_unit, `Uninstrumented) ]
         in
         let r = Sanitizer.Driver.run_module (Cecsan.sanitizer ()) md in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Bug _ -> ()
         | o -> Alcotest.failf "expected report, got %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "bugs inside legacy code are NOT caught" `Quick
      (fun () ->
         (* the honest limitation: uninstrumented code can overflow
            silently (paper section V.3) *)
         let bad_lib = {|
void lib_smash(char *buf) {
  for (int i = 0; i < 24; i++) buf[i] = 'X';
}
|}
         in
         let m = {|
extern void lib_smash(char *buf);
int main() {
  char *buf = (char*)malloc(16);
  char *other = (char*)malloc(16);
  other[0] = 'o';
  lib_smash(buf);
  int r = other[0];
  free(buf);
  free(other);
  return r;
}
|}
         in
         let md =
           Sanitizer.Driver.build_link (Cecsan.sanitizer ())
             [ (m, `Instrumented); (bad_lib, `Uninstrumented) ]
         in
         let r = Sanitizer.Driver.run_module (Cecsan.sanitizer ()) md in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit _ -> ()
         | o -> Alcotest.failf "expected silent corruption, got %a"
                  Vm.Machine.pp_outcome o);
    Alcotest.test_case "string literals deduplicate per unit" `Quick
      (fun () ->
         let u1 = {|
extern int side(void);
int main() { char b[16]; strcpy(b, "shared"); return side() + b[0]; }
|}
         in
         let u2 = {|
int side(void) { char b[16]; strcpy(b, "shared"); return (int)strlen(b); }
|}
         in
         let md =
           Sanitizer.Driver.build_link (Cecsan.sanitizer ())
             [ (u1, `Instrumented); (u2, `Instrumented) ]
         in
         let r = Sanitizer.Driver.run_module (Cecsan.sanitizer ()) md in
         match r.Sanitizer.Driver.outcome with
         | Vm.Machine.Exit c -> Alcotest.(check int) "result" (6 + 115) c
         | o -> Alcotest.failf "got %a" Vm.Machine.pp_outcome o);
    Alcotest.test_case "duplicate definitions rejected" `Quick (fun () ->
        let u = "int f() { return 1; }\nint main() { return f(); }" in
        let v = "int f() { return 2; }" in
        match
          Sanitizer.Driver.build_link Sanitizer.Spec.none
            [ (u, `Instrumented); (v, `Instrumented) ]
        with
        | (_ : Tir.Ir.modul) -> Alcotest.fail "expected Link_error"
        | exception Tir.Link.Link_error _ -> ());
  ]

let () =
  Alcotest.run "tir"
    [
      "cfg", cfg_tests;
      "checkopt", checkopt_tests;
      "link", link_tests;
      "differential",
      [
        QCheck_alcotest.to_alcotest differential_test;
        QCheck_alcotest.to_alcotest clone_deep;
        QCheck_alcotest.to_alcotest promote_differential;
      ];
    ]

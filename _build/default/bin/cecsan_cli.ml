(* cecsan_cli: the `clang -fsanitize=` analog for the simulated stack.

   Compile a MiniC source file, instrument it with a chosen sanitizer,
   and run it on the VM:

     dune exec bin/cecsan_cli.exe -- program.c
     dune exec bin/cecsan_cli.exe -- program.c -s asan --stats
     dune exec bin/cecsan_cli.exe -- program.c --dump-ir
     dune exec bin/cecsan_cli.exe -- program.c --stdin "line1" --packet "B"
*)

open Cmdliner

let sanitizer_of_name = function
  | "cecsan" -> Ok (Cecsan.sanitizer ())
  | "cecsan-nosubobj" ->
    Ok (Cecsan.sanitizer ~config:Cecsan.Config.no_subobject ())
  | "cecsan-noopt" -> Ok (Cecsan.sanitizer ~config:Cecsan.Config.no_opts ())
  | "asan" -> Ok (Baselines.Asan.sanitizer ())
  | "asan--" -> Ok (Baselines.Asan_minus.sanitizer ())
  | "hwasan" -> Ok (Baselines.Hwasan.sanitizer ())
  | "softbound" -> Ok (Baselines.Softbound_cets.sanitizer ())
  | "pacmem" -> Ok (Baselines.Pacmem.sanitizer ())
  | "cryptsan" -> Ok (Baselines.Cryptsan.sanitizer ())
  | "none" -> Ok Sanitizer.Spec.none
  | s -> Error (`Msg ("unknown sanitizer: " ^ s))

let sanitizer_conv =
  Arg.conv
    ( (fun s -> sanitizer_of_name s),
      fun fmt (s : Sanitizer.Spec.t) -> Fmt.string fmt s.name )

let file =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"MiniC source file to compile and run.")

let sanitizer =
  Arg.(value
       & opt sanitizer_conv (Cecsan.sanitizer ())
       & info [ "s"; "sanitizer" ] ~docv:"NAME"
           ~doc:
             "Sanitizer: cecsan (default), cecsan-nosubobj, cecsan-noopt, \
              asan, asan--, hwasan, softbound, pacmem, cryptsan, none.")

let stdin_lines =
  Arg.(value & opt_all string []
       & info [ "stdin" ] ~docv:"LINE"
           ~doc:"Line served to fgets/getchar by the dummy input server \
                 (repeatable).")

let packets =
  Arg.(value & opt_all string []
       & info [ "packet" ] ~docv:"DATA"
           ~doc:"Packet served to recv by the dummy input server \
                 (repeatable).")

let dump_ir =
  Arg.(value & flag
       & info [ "dump-ir" ]
           ~doc:"Print the instrumented IR instead of running.")

let stats =
  Arg.(value & flag
       & info [ "stats" ] ~doc:"Print cycle and memory statistics.")

let no_opt =
  Arg.(value & flag
       & info [ "O0" ] ~doc:"Disable the -O2 model (slot promotion).")

let budget =
  Arg.(value & opt int 2_000_000_000
       & info [ "budget" ] ~docv:"CYCLES" ~doc:"Cycle budget for the run.")

let run_cmd (san : Sanitizer.Spec.t) src_file lines packets dump_ir stats
    no_opt budget =
  let src =
    let ic = open_in_bin src_file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  match Sanitizer.Driver.build san ~optimize:(not no_opt) src with
  | exception Minic.Sema.Error (m, l) ->
    Fmt.epr "%s:%d: error: %s@." src_file l m;
    exit 2
  | exception Tir.Lower.Error m ->
    Fmt.epr "%s: lowering error: %s@." src_file m;
    exit 2
  | exception Sanitizer.Spec.Unsupported m ->
    Fmt.epr "%s: %s cannot compile this program: %s@." src_file
      san.Sanitizer.Spec.name m;
    exit 3
  | md ->
    if dump_ir then begin
      print_string (Tir.Pp.module_to_string md);
      exit 0
    end;
    let r = Sanitizer.Driver.run_module san ~lines ~packets ~budget md in
    print_string r.Sanitizer.Driver.output;
    if not (String.equal r.Sanitizer.Driver.output "") then print_newline ();
    (match r.Sanitizer.Driver.outcome with
     | Vm.Machine.Exit c ->
       if stats then
         Fmt.pr "[%s] exit %d, %d cycles, %d bytes resident@."
           san.Sanitizer.Spec.name c r.Sanitizer.Driver.cycles
           r.Sanitizer.Driver.resident;
       exit (c land 0x7f)
     | Vm.Machine.Bug b ->
       Fmt.epr "==ERROR== %a@." Vm.Report.pp b;
       exit 99
     | Vm.Machine.Fault t ->
       Fmt.epr "==CRASH== %a@." Vm.Report.pp_trap t;
       exit 98)

let cmd =
  let doc = "compile and run a MiniC program under a memory-safety \
             sanitizer (CECSan reproduction)" in
  Cmd.v
    (Cmd.info "cecsan_cli" ~version:"1.0" ~doc)
    Term.(const run_cmd $ sanitizer $ file $ stdin_lines $ packets
          $ dump_ir $ stats $ no_opt $ budget)

let () = exit (Cmd.eval cmd)

(* Memory layout of MiniC types: sizes, alignments, struct field offsets.
   Natural alignment, as on x86-64. *)

open Ast

type field = { f_name : string; f_ty : ty; f_off : int; f_size : int }

type struct_layout = {
  s_name : string;
  s_fields : field list;
  s_size : int;
  s_align : int;
}

type env = (string, struct_layout) Hashtbl.t

exception Error of string

let align_up n a = (n + a - 1) / a * a

let rec size_of (env : env) = function
  | Tvoid -> 1   (* GNU extension: sizeof(void) = 1, used by void* arith *)
  | Tchar -> 1
  | Tshort -> 2
  | Tint -> 4
  | Twchar -> 4
  | Tlong -> 8
  | Tptr _ -> 8
  | Tfun _ -> 8
  | Tarr (t, n) -> n * size_of env t
  | Tstruct s ->
    (match Hashtbl.find_opt env s with
     | Some l -> l.s_size
     | None -> raise (Error ("unknown struct " ^ s)))

let rec align_of (env : env) = function
  | Tvoid | Tchar -> 1
  | Tshort -> 2
  | Tint | Twchar -> 4
  | Tlong | Tptr _ | Tfun _ -> 8
  | Tarr (t, _) -> align_of env t
  | Tstruct s ->
    (match Hashtbl.find_opt env s with
     | Some l -> l.s_align
     | None -> raise (Error ("unknown struct " ^ s)))

(* Builds layouts for all struct definitions in the program.  Structs must
   be defined before use (as in C without forward references to sizes). *)
let build (prog : program) : env =
  let env : env = Hashtbl.create 17 in
  List.iter
    (function
      | Dstruct { sname; sfields } ->
        if Hashtbl.mem env sname then
          raise (Error ("duplicate struct " ^ sname));
        let off = ref 0 in
        let align = ref 1 in
        let fields =
          List.map
            (fun (f_ty, f_name) ->
               let a = align_of env f_ty in
               let size = size_of env f_ty in
               off := align_up !off a;
               align := max !align a;
               let f = { f_name; f_ty; f_off = !off; f_size = size } in
               off := !off + size;
               f)
            sfields
        in
        Hashtbl.replace env sname
          { s_name = sname; s_fields = fields;
            s_size = align_up !off !align; s_align = !align }
      | Dfunc _ | Dglobal _ -> ())
    prog;
  env

let field (env : env) sname fname : field =
  match Hashtbl.find_opt env sname with
  | None -> raise (Error ("unknown struct " ^ sname))
  | Some l ->
    (match List.find_opt (fun f -> String.equal f.f_name fname) l.s_fields with
     | Some f -> f
     | None ->
       raise (Error (Printf.sprintf "struct %s has no field %s" sname fname)))

let struct_layout (env : env) sname : struct_layout =
  match Hashtbl.find_opt env sname with
  | Some l -> l
  | None -> raise (Error ("unknown struct " ^ sname))

(* Abstract syntax for MiniC, the C subset used throughout the reproduction.

   MiniC covers the constructs that Juliet-style test cases and the
   SPEC-like kernels need: the integer types (char/short/int/long plus
   wchar_t), pointers, fixed-size arrays, structs, the usual expression
   and statement forms, string and wide-string literals, and calls to
   libc-style builtins.  Floating point is deliberately absent: numeric
   kernels use fixed-point arithmetic so the VM has a single machine-word
   value domain (see DESIGN.md). *)

type ty =
  | Tvoid
  | Tchar                      (* 1 byte, signed *)
  | Tshort                     (* 2 bytes *)
  | Tint                       (* 4 bytes *)
  | Tlong                      (* 8 bytes; also plays size_t *)
  | Twchar                     (* 4 bytes, distinct for wide strings *)
  | Tptr of ty
  | Tarr of ty * int
  | Tstruct of string
  | Tfun of ty * ty list * bool  (* return, params, varargs *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Shl | Shr | Band | Bor | Bxor
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor

type unop = Neg | Lnot | Bnot

(* Expressions carry their source line for diagnostics and a type slot
   filled in by [Sema.check]. *)
type expr = { e : expr_kind; eline : int; mutable ety : ty }

and expr_kind =
  | Int of int * ty                  (* integer literal, with literal type *)
  | Str of string                    (* "..." (NUL not included) *)
  | Wstr of int array                (* L"..." code points *)
  | Ident of string
  | Bin of binop * expr * expr
  | Un of unop * expr
  | Addr of expr                     (* &e *)
  | Deref of expr                    (* *e *)
  | Assign of expr * expr
  | Op_assign of binop * expr * expr (* e1 op= e2 *)
  | Inc_dec of { pre : bool; inc : bool; arg : expr }
  | Call of string * expr list
  | Index of expr * expr             (* e1[e2] *)
  | Field of expr * string           (* e.f *)
  | Arrow of expr * string           (* e->f *)
  | Cast of ty * expr
  | Sizeof_ty of ty
  | Sizeof_expr of expr
  | Cond of expr * expr * expr       (* c ? a : b *)
  | Comma of expr * expr

type init =
  | Init_expr of expr
  | Init_list of init list           (* brace initializer *)

type stmt =
  | Sexpr of expr
  | Sdecl of ty * string * init option
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of stmt list * expr option * expr option * stmt list
  | Sreturn of expr option
  | Sbreak
  | Scontinue
  | Sblock of stmt list

type func = {
  fname : string;
  fret : ty;
  fparams : (ty * string) list;
  fvarargs : bool;
  fbody : stmt list option;          (* None for extern declarations *)
  fextern : bool;                    (* declared [extern]: uninstrumented *)
  fline : int;
}

type global = {
  gname : string;
  gty : ty;
  ginit : init option;
  gline : int;
}

type struct_def = { sname : string; sfields : (ty * string) list }

type decl =
  | Dfunc of func
  | Dglobal of global
  | Dstruct of struct_def

type program = decl list

let mk_expr ?(line = 0) e = { e; eline = line; ety = Tvoid }

let rec ty_equal a b =
  match a, b with
  | Tvoid, Tvoid | Tchar, Tchar | Tshort, Tshort
  | Tint, Tint | Tlong, Tlong | Twchar, Twchar -> true
  | Tptr a, Tptr b -> ty_equal a b
  | Tarr (a, n), Tarr (b, m) -> n = m && ty_equal a b
  | Tstruct a, Tstruct b -> String.equal a b
  | Tfun (r1, p1, v1), Tfun (r2, p2, v2) ->
    v1 = v2 && ty_equal r1 r2
    && List.length p1 = List.length p2
    && List.for_all2 ty_equal p1 p2
  | (Tvoid | Tchar | Tshort | Tint | Tlong | Twchar
    | Tptr _ | Tarr _ | Tstruct _ | Tfun _), _ -> false

let is_integer = function
  | Tchar | Tshort | Tint | Tlong | Twchar -> true
  | Tvoid | Tptr _ | Tarr _ | Tstruct _ | Tfun _ -> false

let is_pointer = function Tptr _ -> true | _ -> false

let rec pp_ty fmt = function
  | Tvoid -> Fmt.string fmt "void"
  | Tchar -> Fmt.string fmt "char"
  | Tshort -> Fmt.string fmt "short"
  | Tint -> Fmt.string fmt "int"
  | Tlong -> Fmt.string fmt "long"
  | Twchar -> Fmt.string fmt "wchar_t"
  | Tptr t -> Fmt.pf fmt "%a*" pp_ty t
  | Tarr (t, n) -> Fmt.pf fmt "%a[%d]" pp_ty t n
  | Tstruct s -> Fmt.pf fmt "struct %s" s
  | Tfun (r, ps, va) ->
    Fmt.pf fmt "%a(%a%s)" pp_ty r
      Fmt.(list ~sep:(any ", ") pp_ty) ps
      (if va then ", ..." else "")

let ty_to_string t = Fmt.str "%a" pp_ty t

(** Memory layout of MiniC types: sizes, alignments, struct field
    offsets (natural alignment, as on x86-64). *)

type field = { f_name : string; f_ty : Ast.ty; f_off : int; f_size : int }

type struct_layout = {
  s_name : string;
  s_fields : field list;
  s_size : int;
  s_align : int;
}

type env = (string, struct_layout) Hashtbl.t

exception Error of string

val align_up : int -> int -> int
val size_of : env -> Ast.ty -> int
val align_of : env -> Ast.ty -> int

val build : Ast.program -> env
(** Layouts for every struct definition (define-before-use). *)

val field : env -> string -> string -> field
val struct_layout : env -> string -> struct_layout

(** Recursive-descent parser for MiniC (C-style declarations with
    simplified declarators; [static]/[const] accepted and ignored;
    [extern] marks external/uninstrumented functions). *)

exception Error of string * int
(** (message, line). *)

val parse_program : string -> Ast.program

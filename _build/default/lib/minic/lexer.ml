(* Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | CHAR_LIT of int
  | STR_LIT of string
  | WSTR_LIT of int array
  | IDENT of string
  (* keywords *)
  | KVOID | KCHAR | KSHORT | KINT | KLONG | KWCHAR | KUNSIGNED | KSIGNED
  | KCONST | KSTATIC | KEXTERN | KSTRUCT
  | KIF | KELSE | KWHILE | KDO | KFOR | KRETURN | KBREAK | KCONTINUE
  | KSIZEOF | KNULL
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

exception Error of string * int  (* message, line *)

let keyword_table : (string, token) Hashtbl.t =
  let t = Hashtbl.create 41 in
  List.iter (fun (k, v) -> Hashtbl.replace t k v)
    [ "void", KVOID; "char", KCHAR; "short", KSHORT; "int", KINT;
      "long", KLONG; "wchar_t", KWCHAR; "unsigned", KUNSIGNED;
      "signed", KSIGNED; "const", KCONST; "static", KSTATIC;
      "extern", KEXTERN; "struct", KSTRUCT; "if", KIF; "else", KELSE;
      "while", KWHILE; "do", KDO; "for", KFOR; "return", KRETURN;
      "break", KBREAK; "continue", KCONTINUE; "sizeof", KSIZEOF;
      "NULL", KNULL ];
  t

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Tokenize [src]; returns tokens paired with 1-based line numbers. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let line = ref 1 in
  let pos = ref 0 in
  let out = ref [] in
  let emit tok = out := (tok, !line) :: !out in
  let peek k = if !pos + k < n then src.[!pos + k] else '\000' in
  let cur () = peek 0 in
  let advance () =
    (if cur () = '\n' then incr line);
    incr pos
  in
  let fail msg = raise (Error (msg, !line)) in
  let read_escape () =
    (* cursor sits on the char after the backslash *)
    let c = cur () in
    advance ();
    match c with
    | 'n' -> 10 | 't' -> 9 | 'r' -> 13 | '0' -> 0
    | '\\' -> Char.code '\\' | '\'' -> Char.code '\''
    | '"' -> Char.code '"'
    | 'x' ->
      let v = ref 0 in
      let seen = ref false in
      while is_hex (cur ()) do
        let c = cur () in
        let d =
          if is_digit c then Char.code c - Char.code '0'
          else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
        in
        v := (!v * 16) + d;
        seen := true;
        advance ()
      done;
      if not !seen then fail "empty hex escape";
      !v
    | c -> fail (Printf.sprintf "bad escape '\\%c'" c)
  in
  let read_string_body () =
    (* cursor sits after the opening quote; returns code points *)
    let buf = ref [] in
    let rec loop () =
      match cur () with
      | '"' -> advance ()
      | '\000' -> fail "unterminated string literal"
      | '\n' -> fail "newline in string literal"
      | '\\' -> advance (); buf := read_escape () :: !buf; loop ()
      | c -> advance (); buf := Char.code c :: !buf; loop ()
    in
    loop ();
    List.rev !buf
  in
  let rec skip_ws_comments () =
    match cur () with
    | ' ' | '\t' | '\r' | '\n' -> advance (); skip_ws_comments ()
    | '/' when peek 1 = '/' ->
      while cur () <> '\n' && cur () <> '\000' do advance () done;
      skip_ws_comments ()
    | '/' when peek 1 = '*' ->
      advance (); advance ();
      let rec close () =
        match cur () with
        | '\000' -> fail "unterminated comment"
        | '*' when peek 1 = '/' -> advance (); advance ()
        | _ -> advance (); close ()
      in
      close ();
      skip_ws_comments ()
    | '#' ->
      (* preprocessor lines (e.g. #include) are ignored whole-line *)
      while cur () <> '\n' && cur () <> '\000' do advance () done;
      skip_ws_comments ()
    | _ -> ()
  in
  let read_number () =
    let v = ref 0 in
    if cur () = '0' && (peek 1 = 'x' || peek 1 = 'X') then begin
      advance (); advance ();
      if not (is_hex (cur ())) then fail "bad hex literal";
      while is_hex (cur ()) do
        let c = cur () in
        let d =
          if is_digit c then Char.code c - Char.code '0'
          else (Char.code (Char.lowercase_ascii c) - Char.code 'a') + 10
        in
        v := (!v * 16) + d;
        advance ()
      done
    end else
      while is_digit (cur ()) do
        v := (!v * 10) + (Char.code (cur ()) - Char.code '0');
        advance ()
      done;
    (* integer suffixes are accepted and ignored *)
    while (match cur () with 'u' | 'U' | 'l' | 'L' -> true | _ -> false) do
      advance ()
    done;
    !v
  in
  while (skip_ws_comments (); !pos < n) do
    let c = cur () in
    if is_digit c then emit (INT_LIT (read_number ()))
    else if c = 'L' && peek 1 = '"' then begin
      advance (); advance ();
      emit (WSTR_LIT (Array.of_list (read_string_body ())))
    end
    else if is_ident_start c then begin
      let start = !pos in
      while is_ident_char (cur ()) do advance () done;
      let s = String.sub src start (!pos - start) in
      match Hashtbl.find_opt keyword_table s with
      | Some tok -> emit tok
      | None -> emit (IDENT s)
    end
    else if c = '"' then begin
      advance ();
      let cps = read_string_body () in
      let b = Buffer.create (List.length cps) in
      List.iter (fun cp -> Buffer.add_char b (Char.chr (cp land 0xff))) cps;
      emit (STR_LIT (Buffer.contents b))
    end
    else if c = '\'' then begin
      advance ();
      let v =
        match cur () with
        | '\\' -> advance (); read_escape ()
        | '\'' -> fail "empty char literal"
        | c -> advance (); Char.code c
      in
      if cur () <> '\'' then fail "unterminated char literal";
      advance ();
      emit (CHAR_LIT v)
    end
    else begin
      let two = if !pos + 1 < n then String.sub src !pos 2 else "" in
      let three = if !pos + 2 < n then String.sub src !pos 3 else "" in
      let adv k = for _ = 1 to k do advance () done in
      match three with
      | "..." -> adv 3; emit ELLIPSIS
      | "<<=" -> adv 3; emit SHLEQ
      | ">>=" -> adv 3; emit SHREQ
      | _ ->
        (match two with
         | "->" -> adv 2; emit ARROW
         | "<<" -> adv 2; emit SHL
         | ">>" -> adv 2; emit SHR
         | "<=" -> adv 2; emit LE
         | ">=" -> adv 2; emit GE
         | "==" -> adv 2; emit EQEQ
         | "!=" -> adv 2; emit NEQ
         | "&&" -> adv 2; emit ANDAND
         | "||" -> adv 2; emit OROR
         | "+=" -> adv 2; emit PLUSEQ
         | "-=" -> adv 2; emit MINUSEQ
         | "*=" -> adv 2; emit STAREQ
         | "/=" -> adv 2; emit SLASHEQ
         | "%=" -> adv 2; emit PERCENTEQ
         | "&=" -> adv 2; emit AMPEQ
         | "|=" -> adv 2; emit PIPEEQ
         | "^=" -> adv 2; emit CARETEQ
         | "++" -> adv 2; emit PLUSPLUS
         | "--" -> adv 2; emit MINUSMINUS
         | _ ->
           adv 1;
           (match c with
            | '(' -> emit LPAREN | ')' -> emit RPAREN
            | '{' -> emit LBRACE | '}' -> emit RBRACE
            | '[' -> emit LBRACK | ']' -> emit RBRACK
            | ';' -> emit SEMI | ',' -> emit COMMA | '.' -> emit DOT
            | '+' -> emit PLUS | '-' -> emit MINUS | '*' -> emit STAR
            | '/' -> emit SLASH | '%' -> emit PERCENT
            | '&' -> emit AMP | '|' -> emit PIPE | '^' -> emit CARET
            | '~' -> emit TILDE | '!' -> emit BANG
            | '<' -> emit LT | '>' -> emit GT
            | '=' -> emit ASSIGN
            | '?' -> emit QUESTION | ':' -> emit COLON
            | c -> fail (Printf.sprintf "unexpected character '%c'" c)))
    end
  done;
  emit EOF;
  List.rev !out

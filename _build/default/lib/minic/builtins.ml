(* The libc-style builtin surface available to MiniC programs.

   These functions are "external, uninstrumented code" from the point of
   view of the sanitizers: their implementations live in the VM
   ([Vm.Libc]), and each sanitizer decides which of them it intercepts
   with checking wrappers (DESIGN.md section 3). *)

open Ast

type sig_ = { ret : ty; params : ty list; varargs : bool }

let vp = Tptr Tvoid
let cp = Tptr Tchar
let wp = Tptr Twchar

let table : (string * sig_) list =
  [
    (* allocation *)
    "malloc", { ret = vp; params = [ Tlong ]; varargs = false };
    "calloc", { ret = vp; params = [ Tlong; Tlong ]; varargs = false };
    "realloc", { ret = vp; params = [ vp; Tlong ]; varargs = false };
    "free", { ret = Tvoid; params = [ vp ]; varargs = false };
    (* memory *)
    "memcpy", { ret = vp; params = [ vp; vp; Tlong ]; varargs = false };
    "memmove", { ret = vp; params = [ vp; vp; Tlong ]; varargs = false };
    "memset", { ret = vp; params = [ vp; Tint; Tlong ]; varargs = false };
    "memcmp", { ret = Tint; params = [ vp; vp; Tlong ]; varargs = false };
    (* narrow strings *)
    "strcpy", { ret = cp; params = [ cp; cp ]; varargs = false };
    "strncpy", { ret = cp; params = [ cp; cp; Tlong ]; varargs = false };
    "strcat", { ret = cp; params = [ cp; cp ]; varargs = false };
    "strncat", { ret = cp; params = [ cp; cp; Tlong ]; varargs = false };
    "strlen", { ret = Tlong; params = [ cp ]; varargs = false };
    "strcmp", { ret = Tint; params = [ cp; cp ]; varargs = false };
    "strncmp", { ret = Tint; params = [ cp; cp; Tlong ]; varargs = false };
    "strchr", { ret = cp; params = [ cp; Tint ]; varargs = false };
    "strdup", { ret = cp; params = [ cp ]; varargs = false };
    "atoi", { ret = Tint; params = [ cp ]; varargs = false };
    (* wide strings: the functions most sanitizers forget to intercept *)
    "wcscpy", { ret = wp; params = [ wp; wp ]; varargs = false };
    "wcsncpy", { ret = wp; params = [ wp; wp; Tlong ]; varargs = false };
    "wcscat", { ret = wp; params = [ wp; wp ]; varargs = false };
    "wcslen", { ret = Tlong; params = [ wp ]; varargs = false };
    "wcscmp", { ret = Tint; params = [ wp; wp ]; varargs = false };
    (* io: fed by the harness's dummy input server *)
    "printf", { ret = Tint; params = [ cp ]; varargs = true };
    "puts", { ret = Tint; params = [ cp ]; varargs = false };
    "putchar", { ret = Tint; params = [ Tint ]; varargs = false };
    "getchar", { ret = Tint; params = []; varargs = false };
    "fgets", { ret = cp; params = [ cp; Tint; Tlong ]; varargs = false };
    "socket", { ret = Tint; params = [ Tint; Tint; Tint ]; varargs = false };
    "recv", { ret = Tlong; params = [ Tint; vp; Tlong; Tint ]; varargs = false };
    (* misc *)
    "rand", { ret = Tint; params = []; varargs = false };
    "srand", { ret = Tvoid; params = [ Tint ]; varargs = false };
    "abs", { ret = Tint; params = [ Tint ]; varargs = false };
    "exit", { ret = Tvoid; params = [ Tint ]; varargs = false };
    "abort", { ret = Tvoid; params = []; varargs = false };
    "time", { ret = Tlong; params = [ vp ]; varargs = false };
  ]

let find name = List.assoc_opt name table

let is_builtin name = find name <> None

(* Builtins that return one of their pointer arguments (the argument
   index).  CECSan wraps calls to these to re-apply the stripped tag to
   the returned pointer (paper section II.E). *)
let returns_pointer_arg = function
  | "memcpy" | "memmove" | "memset" | "strcpy" | "strncpy" | "strcat"
  | "strncat" | "wcscpy" | "wcsncpy" | "wcscat" -> Some 0
  | "fgets" -> Some 0
  | "strchr" -> Some 0  (* returns an interior pointer of arg 0, or NULL *)
  | _ -> None

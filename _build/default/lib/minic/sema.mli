(** Type checker for MiniC: annotates every expression's type slot in
    place and validates declarations.  Permissive where C is permissive
    (integer mixing, void* conversions), strict where lowering needs
    guarantees (lvalues, known fields, known callees). *)

exception Error of string * int
(** (message, source line). *)

type checked = {
  prog : Ast.program;
  layouts : Layout.env;
  funcs : (string, Ast.ty) Hashtbl.t;   (** name -> function type *)
  globals : (string, Ast.ty) Hashtbl.t;
}

val decay : Ast.ty -> Ast.ty
(** Array-to-pointer decay. *)

val is_lvalue : Ast.expr -> bool

val check : Ast.program -> checked
(** Checks a whole program; every expression's [ety] is filled in. *)

val parse_and_check : string -> checked
(** Lex + parse + check, folding lexer/parser errors into [Error]. *)

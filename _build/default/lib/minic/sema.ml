(* Type checker for MiniC.  Annotates every expression's [ety] slot in
   place and validates declarations.  Deliberately permissive where C is
   permissive (integer mixing, void* conversions), strict where the
   later lowering needs guarantees (lvalues, known struct fields, known
   callees). *)

open Ast

exception Error of string * int

type checked = {
  prog : program;
  layouts : Layout.env;
  funcs : (string, ty) Hashtbl.t;       (* name -> Tfun *)
  globals : (string, ty) Hashtbl.t;
}

let err line fmt = Fmt.kstr (fun m -> raise (Error (m, line))) fmt

(* Value type of an expression after array-to-pointer decay. *)
let decay = function Tarr (t, _) -> Tptr t | t -> t

let int_rank = function
  | Tchar -> 1 | Tshort -> 2 | Tint -> 4 | Twchar -> 4 | Tlong -> 8
  | _ -> 0

let arith_result a b =
  if int_rank a >= int_rank b then (if int_rank a < 4 then Tint else a)
  else if int_rank b < 4 then Tint
  else b

let rec is_lvalue e =
  match e.e with
  | Ident _ | Deref _ | Index _ | Field _ | Arrow _ -> true
  | Cast (_, e) -> is_lvalue e
  | Comma (_, e) -> is_lvalue e
  | Int _ | Str _ | Wstr _ | Bin _ | Un _ | Addr _ | Assign _
  | Op_assign _ | Inc_dec _ | Call _ | Sizeof_ty _ | Sizeof_expr _
  | Cond _ -> false

type scope = {
  layouts : Layout.env;
  funcs : (string, ty) Hashtbl.t;
  globals : (string, ty) Hashtbl.t;
  mutable locals : (string * ty) list list;  (* stack of scopes *)
  ret : ty;
}

let push_scope sc = sc.locals <- [] :: sc.locals

let pop_scope sc =
  match sc.locals with
  | _ :: rest -> sc.locals <- rest
  | [] -> assert false

let add_local sc line name ty =
  match sc.locals with
  | top :: rest ->
    if List.mem_assoc name top then err line "redefinition of %s" name;
    sc.locals <- ((name, ty) :: top) :: rest
  | [] -> assert false

let lookup_var sc name =
  let rec in_locals = function
    | [] -> None
    | scope :: rest ->
      (match List.assoc_opt name scope with
       | Some t -> Some t
       | None -> in_locals rest)
  in
  match in_locals sc.locals with
  | Some t -> Some t
  | None -> Hashtbl.find_opt sc.globals name

(* Can a value of type [src] be used where [dst] is expected?  Mirrors
   C's implicit conversions: integer <-> integer, void* <-> T*,
   array decay, 0 -> pointer. *)
let compatible dst src =
  let dst = decay dst and src = decay src in
  if ty_equal dst src then true
  else
    match dst, src with
    | t1, t2 when is_integer t1 && is_integer t2 -> true
    | Tptr Tvoid, Tptr _ | Tptr _, Tptr Tvoid -> true
    | Tptr _, t when is_integer t -> true  (* 0 / intptr casts in C89 code *)
    | t, Tptr _ when is_integer t -> true
    | Tptr a, Tptr b -> ty_equal a b
    | _ -> false

let rec check_expr sc (e : expr) : ty =
  let t = infer sc e in
  e.ety <- t;
  t

and infer sc e =
  let line = e.eline in
  match e.e with
  | Int (_, t) -> t
  | Str s -> Tarr (Tchar, String.length s + 1)
  | Wstr a -> Tarr (Twchar, Array.length a + 1)
  | Ident name ->
    (match lookup_var sc name with
     | Some t -> t
     | None ->
       (match Hashtbl.find_opt sc.funcs name with
        | Some t -> t
        | None -> err line "undeclared identifier %s" name))
  | Bin (op, a, b) ->
    let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
    (match op with
     | Add ->
       (match ta, tb with
        | Tptr _, t when is_integer t -> ta
        | t, Tptr _ when is_integer t -> tb
        | t1, t2 when is_integer t1 && is_integer t2 -> arith_result t1 t2
        | _ -> err line "invalid operands to +")
     | Sub ->
       (match ta, tb with
        | Tptr _, t when is_integer t -> ta
        | Tptr _, Tptr _ -> Tlong
        | t1, t2 when is_integer t1 && is_integer t2 -> arith_result t1 t2
        | _ -> err line "invalid operands to -")
     | Mul | Div | Mod | Shl | Shr | Band | Bor | Bxor ->
       if is_integer ta && is_integer tb then arith_result ta tb
       else err line "invalid operands to arithmetic operator"
     | Eq | Ne | Lt | Le | Gt | Ge ->
       if (is_integer ta || is_pointer ta) && (is_integer tb || is_pointer tb)
       then Tint
       else err line "invalid operands to comparison"
     | Land | Lor ->
       if (is_integer ta || is_pointer ta) && (is_integer tb || is_pointer tb)
       then Tint
       else err line "invalid operands to logical operator")
  | Un (op, a) ->
    let t = decay (check_expr sc a) in
    (match op with
     | Neg | Bnot ->
       if is_integer t then (if int_rank t < 4 then Tint else t)
       else err line "invalid operand to unary operator"
     | Lnot ->
       if is_integer t || is_pointer t then Tint
       else err line "invalid operand to !")
  | Addr a ->
    let t = check_expr sc a in
    if not (is_lvalue a) then err line "& requires an lvalue";
    Tptr t
  | Deref a ->
    (match decay (check_expr sc a) with
     | Tptr Tvoid -> err line "cannot dereference void*"
     | Tptr t -> t
     | _ -> err line "cannot dereference non-pointer")
  | Assign (lhs, rhs) ->
    let tl = check_expr sc lhs in
    let tr = check_expr sc rhs in
    if not (is_lvalue lhs) then err line "assignment to non-lvalue";
    (match tl with
     | Tarr _ -> err line "assignment to array"
     | Tstruct _ ->
       if not (ty_equal tl (decay tr)) then err line "struct type mismatch"
     | _ ->
       if not (compatible tl tr) then
         err line "incompatible types in assignment (%s <- %s)"
           (ty_to_string tl) (ty_to_string tr));
    tl
  | Op_assign (op, lhs, rhs) ->
    let tl = check_expr sc lhs in
    let tr = decay (check_expr sc rhs) in
    if not (is_lvalue lhs) then err line "assignment to non-lvalue";
    (match op, decay tl with
     | (Add | Sub), Tptr _ when is_integer tr -> ()
     | _, t1 when is_integer t1 && is_integer tr -> ()
     | _ -> err line "invalid compound assignment");
    tl
  | Inc_dec { arg; _ } ->
    let t = check_expr sc arg in
    if not (is_lvalue arg) then err line "++/-- requires an lvalue";
    (match decay t with
     | Tptr _ -> t
     | t' when is_integer t' -> t
     | _ -> err line "invalid operand to ++/--")
  | Call (name, args) ->
    let signature =
      match Hashtbl.find_opt sc.funcs name with
      | Some (Tfun (ret, params, va)) -> Some (ret, params, va)
      | Some _ | None ->
        (match Builtins.find name with
         | Some { ret; params; varargs } -> Some (ret, params, varargs)
         | None -> None)
    in
    (match signature with
     | None -> err line "call to undeclared function %s" name
     | Some (ret, params, va) ->
       let nargs = List.length args and nparams = List.length params in
       if nargs < nparams || ((not va) && nargs > nparams) then
         err line "wrong number of arguments to %s (%d, expected %d%s)"
           name nargs nparams (if va then "+" else "");
       List.iteri
         (fun i arg ->
            let t = check_expr sc arg in
            if i < nparams then begin
              let expected = List.nth params i in
              if not (compatible expected t) then
                err line "argument %d of %s: expected %s, got %s"
                  (i + 1) name (ty_to_string expected) (ty_to_string t)
            end)
         args;
       ret)
  | Index (a, i) ->
    let ta = check_expr sc a in
    let ti = decay (check_expr sc i) in
    if not (is_integer ti) then err line "array index must be an integer";
    (match decay ta with
     | Tptr Tvoid -> err line "cannot index void*"
     | Tptr t -> t
     | _ -> err line "indexed expression is not a pointer or array")
  | Field (a, f) ->
    (match check_expr sc a with
     | Tstruct s ->
       (try (Layout.field sc.layouts s f).f_ty
        with Layout.Error m -> err line "%s" m)
     | t -> err line "member access on non-struct %s" (ty_to_string t))
  | Arrow (a, f) ->
    (match decay (check_expr sc a) with
     | Tptr (Tstruct s) ->
       (try (Layout.field sc.layouts s f).f_ty
        with Layout.Error m -> err line "%s" m)
     | t -> err line "-> on non-struct-pointer %s" (ty_to_string t))
  | Cast (t, a) ->
    let src = decay (check_expr sc a) in
    (match t, src with
     | t, _ when is_integer t || is_pointer t || ty_equal t Tvoid -> t
     | _ -> err line "invalid cast to %s" (ty_to_string t))
  | Sizeof_ty _ -> Tlong
  | Sizeof_expr a ->
    let _ = check_expr sc a in
    Tlong
  | Cond (c, a, b) ->
    let tc = decay (check_expr sc c) in
    if not (is_integer tc || is_pointer tc) then
      err line "condition must be scalar";
    let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
    if is_integer ta && is_integer tb then arith_result ta tb
    else if compatible ta tb then ta
    else err line "mismatched branches of ?:"
  | Comma (a, b) ->
    let _ = check_expr sc a in
    check_expr sc b

let rec check_init sc line ty (init : init) =
  match ty, init with
  | Tarr (Tchar, n), Init_expr ({ e = Str s; _ } as e) ->
    let _ = check_expr sc e in
    if String.length s + 1 > n && n > 0 then
      err line "string initializer too long"
  | Tarr (Twchar, n), Init_expr ({ e = Wstr a; _ } as e) ->
    let _ = check_expr sc e in
    if Array.length a + 1 > n && n > 0 then
      err line "wide string initializer too long"
  | Tarr (elt, n), Init_list items ->
    if List.length items > n && n > 0 then
      err line "too many initializers for array";
    List.iter (check_init sc line elt) items
  | Tstruct s, Init_list items ->
    let l = Layout.struct_layout sc.layouts s in
    if List.length items > List.length l.Layout.s_fields then
      err line "too many initializers for struct %s" s;
    List.iteri
      (fun i item ->
         let f = List.nth l.Layout.s_fields i in
         check_init sc line f.Layout.f_ty item)
      items
  | _, Init_expr e ->
    let t = check_expr sc e in
    if not (compatible ty t) then
      err line "incompatible initializer (%s <- %s)"
        (ty_to_string ty) (ty_to_string t)
  | _, Init_list _ -> err line "brace initializer for scalar"

let rec check_stmt sc (s : stmt) =
  match s with
  | Sexpr e -> ignore (check_expr sc e)
  | Sdecl (ty, name, init) ->
    (match ty with
     | Tvoid -> raise (Error ("void variable " ^ name, 0))
     | Tarr (_, n) when n <= 0 ->
       raise (Error ("array with non-positive size: " ^ name, 0))
     | _ -> ());
    (* reject incomplete types: the size must be computable *)
    (try ignore (Layout.size_of sc.layouts ty)
     with Layout.Error m -> raise (Error (m, 0)));
    (* the declared name is visible in its own initializer, as in C *)
    add_local sc 0 name ty;
    Option.iter (check_init sc 0 ty) init
  | Sif (c, a, b) ->
    ignore (check_expr sc c);
    check_block sc a;
    check_block sc b
  | Swhile (c, body) ->
    ignore (check_expr sc c);
    check_block sc body
  | Sdo (body, c) ->
    check_block sc body;
    ignore (check_expr sc c)
  | Sfor (init, cond, step, body) ->
    push_scope sc;
    List.iter (check_stmt sc) init;
    Option.iter (fun e -> ignore (check_expr sc e)) cond;
    Option.iter (fun e -> ignore (check_expr sc e)) step;
    check_block sc body;
    pop_scope sc
  | Sreturn None ->
    if not (ty_equal sc.ret Tvoid) then
      raise (Error ("return without value in non-void function", 0))
  | Sreturn (Some e) ->
    let t = check_expr sc e in
    if ty_equal sc.ret Tvoid then
      raise (Error ("return with value in void function", 0));
    if not (compatible sc.ret t) then
      raise (Error ("incompatible return type", e.eline))
  | Sbreak | Scontinue -> ()
  | Sblock body -> check_block sc body

and check_block sc body =
  push_scope sc;
  List.iter (check_stmt sc) body;
  pop_scope sc

(* Checks a whole program.  Returns the layout table plus symbol tables
   that lowering reuses. *)
let check (prog : program) : checked =
  let layouts =
    try Layout.build prog with Layout.Error m -> raise (Error (m, 0))
  in
  let funcs : (string, ty) Hashtbl.t = Hashtbl.create 17 in
  let globals : (string, ty) Hashtbl.t = Hashtbl.create 17 in
  (* collect signatures first so forward calls work *)
  List.iter
    (function
      | Dfunc f ->
        let t = Tfun (f.fret, List.map fst f.fparams, f.fvarargs) in
        (match Hashtbl.find_opt funcs f.fname with
         | Some t' when not (ty_equal t t') ->
           raise (Error ("conflicting declarations of " ^ f.fname, f.fline))
         | _ -> ());
        Hashtbl.replace funcs f.fname t
      | Dglobal g ->
        if Hashtbl.mem globals g.gname then
          raise (Error ("duplicate global " ^ g.gname, g.gline));
        (match g.gty with
         | Tvoid -> raise (Error ("void global " ^ g.gname, g.gline))
         | _ -> ());
        Hashtbl.replace globals g.gname g.gty
      | Dstruct _ -> ())
    prog;
  List.iter
    (function
      | Dfunc { fbody = Some body; fret; fparams; fline; fname; _ } ->
        let sc = { layouts; funcs; globals; locals = []; ret = fret } in
        push_scope sc;
        List.iter (fun (t, n) ->
            match t with
            | Tvoid -> raise (Error ("void parameter in " ^ fname, fline))
            | _ -> add_local sc fline n t)
          fparams;
        check_block sc body;
        pop_scope sc
      | Dfunc { fbody = None; _ } | Dglobal _ | Dstruct _ -> ())
    prog;
  List.iter
    (function
      | Dglobal g ->
        let sc = { layouts; funcs; globals; locals = [ [] ]; ret = Tvoid } in
        Option.iter (check_init sc g.gline g.gty) g.ginit
      | Dfunc _ | Dstruct _ -> ())
    prog;
  { prog; layouts; funcs; globals }

(* Convenience: parse + check in one step. *)
let parse_and_check (src : string) : checked =
  let prog =
    try Parser.parse_program src with
    | Lexer.Error (m, l) -> raise (Error ("lex error: " ^ m, l))
    | Parser.Error (m, l) -> raise (Error ("parse error: " ^ m, l))
  in
  check prog

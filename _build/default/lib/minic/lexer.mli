(** Hand-written lexer for MiniC. *)

type token =
  | INT_LIT of int
  | CHAR_LIT of int
  | STR_LIT of string
  | WSTR_LIT of int array
  | IDENT of string
  | KVOID | KCHAR | KSHORT | KINT | KLONG | KWCHAR | KUNSIGNED | KSIGNED
  | KCONST | KSTATIC | KEXTERN | KSTRUCT
  | KIF | KELSE | KWHILE | KDO | KFOR | KRETURN | KBREAK | KCONTINUE
  | KSIZEOF | KNULL
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACK | RBRACK
  | SEMI | COMMA | DOT | ARROW | ELLIPSIS
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | BANG
  | SHL | SHR
  | LT | GT | LE | GE | EQEQ | NEQ
  | ANDAND | OROR
  | ASSIGN
  | PLUSEQ | MINUSEQ | STAREQ | SLASHEQ | PERCENTEQ
  | AMPEQ | PIPEEQ | CARETEQ | SHLEQ | SHREQ
  | PLUSPLUS | MINUSMINUS
  | QUESTION | COLON
  | EOF

exception Error of string * int
(** (message, line). *)

val tokenize : string -> (token * int) list
(** Tokens paired with 1-based line numbers; comments and preprocessor
    lines are skipped. *)

(** The libc-style builtin surface available to MiniC programs.  These
    are "external, uninstrumented code" to the sanitizers: the VM
    implements them, and each sanitizer decides which ones it intercepts
    with checking wrappers. *)

type sig_ = { ret : Ast.ty; params : Ast.ty list; varargs : bool }

val table : (string * sig_) list
val find : string -> sig_ option
val is_builtin : string -> bool

val returns_pointer_arg : string -> int option
(** Builtins that return one of their pointer arguments (the index):
    CECSan re-applies the stripped tag to such results (section II.E). *)

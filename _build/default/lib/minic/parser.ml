(* Recursive-descent parser for MiniC.

   Grammar notes:
   - declarations are C-style but simplified: a base type followed by a
     declarator that may add pointer stars and array suffixes;
   - [static] and [const] are accepted and ignored; [unsigned]/[signed]
     are folded into the underlying integer type;
   - [extern] on a function marks it as external/uninstrumented code. *)

open Ast

exception Error of string * int

type state = {
  toks : (Lexer.token * int) array;
  mutable cur : int;
}

let tok st = fst st.toks.(st.cur)
let line st = snd st.toks.(st.cur)
let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1
let fail st msg = raise (Error (msg, line st))

let expect st t msg =
  if tok st = t then advance st else fail st ("expected " ^ msg)

let expect_ident st =
  match tok st with
  | Lexer.IDENT s -> advance st; s
  | _ -> fail st "expected identifier"

(* --- types ------------------------------------------------------------- *)

let starts_type st =
  match tok st with
  | Lexer.KVOID | KCHAR | KSHORT | KINT | KLONG | KWCHAR
  | KUNSIGNED | KSIGNED | KCONST | KSTRUCT -> true
  | IDENT ("size_t" | "ssize_t" | "intptr_t" | "uintptr_t" | "int64_t"
          | "uint64_t" | "int32_t" | "uint32_t" | "int8_t" | "uint8_t"
          | "int16_t" | "uint16_t") -> true
  | _ -> false

(* Parses the base type: [const] [unsigned|signed] (void|char|...|struct S).
   Common stdint/size_t spellings are accepted as aliases. *)
let rec parse_base_ty st =
  match tok st with
  | Lexer.KCONST -> advance st; parse_base_ty st
  | KUNSIGNED | KSIGNED ->
    advance st;
    (match tok st with
     | KCHAR | KSHORT | KINT | KLONG -> parse_base_ty st
     | _ -> Tint)
  | KVOID -> advance st; Tvoid
  | KCHAR -> advance st; Tchar
  | KSHORT -> advance st; (if tok st = KINT then advance st); Tshort
  | KINT -> advance st; Tint
  | KLONG ->
    advance st;
    (match tok st with
     | KLONG -> advance st; (if tok st = KINT then advance st); Tlong
     | KINT -> advance st; Tlong
     | _ -> Tlong)
  | KWCHAR -> advance st; Twchar
  | KSTRUCT ->
    advance st;
    let name = expect_ident st in
    Tstruct name
  | IDENT ("size_t" | "ssize_t" | "intptr_t" | "uintptr_t" | "int64_t"
          | "uint64_t") -> advance st; Tlong
  | IDENT ("int32_t" | "uint32_t") -> advance st; Tint
  | IDENT ("int16_t" | "uint16_t") -> advance st; Tshort
  | IDENT ("int8_t" | "uint8_t") -> advance st; Tchar
  | _ -> fail st "expected type"

let parse_stars st base =
  let t = ref base in
  while tok st = Lexer.STAR do
    advance st;
    (if tok st = Lexer.KCONST then advance st);
    t := Tptr !t
  done;
  !t

(* Array suffixes bind outside-in: [int a[2][3]] is array 2 of array 3. *)
let parse_array_suffix st base =
  let rec dims acc =
    if tok st = Lexer.LBRACK then begin
      advance st;
      let n =
        match tok st with
        | Lexer.INT_LIT n -> advance st; n
        | RBRACK -> 0  (* incomplete [] treated as size 0; sema rejects *)
        | _ -> fail st "expected constant array size"
      in
      expect st RBRACK "]";
      dims (n :: acc)
    end else acc
  in
  let ds = dims [] in
  List.fold_left (fun t n -> Tarr (t, n)) base ds

(* --- expressions -------------------------------------------------------- *)

let rec parse_expr st = parse_comma st

and parse_comma st =
  let e = parse_assign st in
  if tok st = Lexer.COMMA then begin
    let ln = line st in
    advance st;
    let rest = parse_comma st in
    mk_expr ~line:ln (Comma (e, rest))
  end else e

and parse_assign st =
  let lhs = parse_cond st in
  let ln = line st in
  let op_assign op =
    advance st;
    let rhs = parse_assign st in
    mk_expr ~line:ln (Op_assign (op, lhs, rhs))
  in
  match tok st with
  | Lexer.ASSIGN ->
    advance st;
    let rhs = parse_assign st in
    mk_expr ~line:ln (Assign (lhs, rhs))
  | PLUSEQ -> op_assign Add
  | MINUSEQ -> op_assign Sub
  | STAREQ -> op_assign Mul
  | SLASHEQ -> op_assign Div
  | PERCENTEQ -> op_assign Mod
  | AMPEQ -> op_assign Band
  | PIPEEQ -> op_assign Bor
  | CARETEQ -> op_assign Bxor
  | SHLEQ -> op_assign Shl
  | SHREQ -> op_assign Shr
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if tok st = Lexer.QUESTION then begin
    let ln = line st in
    advance st;
    let a = parse_assign st in
    expect st COLON ":";
    let b = parse_cond st in
    mk_expr ~line:ln (Cond (c, a, b))
  end else c

and parse_binlevel st next table =
  let lhs = ref (next st) in
  let rec loop () =
    match List.assoc_opt (tok st) table with
    | Some op ->
      let ln = line st in
      advance st;
      let rhs = next st in
      lhs := mk_expr ~line:ln (Bin (op, !lhs, rhs));
      loop ()
    | None -> ()
  in
  loop ();
  !lhs

and parse_lor st = parse_binlevel st parse_land [ Lexer.OROR, Lor ]
and parse_land st = parse_binlevel st parse_bor [ Lexer.ANDAND, Land ]
and parse_bor st = parse_binlevel st parse_bxor [ Lexer.PIPE, Bor ]
and parse_bxor st = parse_binlevel st parse_band [ Lexer.CARET, Bxor ]
and parse_band st = parse_binlevel st parse_equality [ Lexer.AMP, Band ]

and parse_equality st =
  parse_binlevel st parse_relational [ Lexer.EQEQ, Eq; Lexer.NEQ, Ne ]

and parse_relational st =
  parse_binlevel st parse_shift
    [ Lexer.LT, Lt; Lexer.GT, Gt; Lexer.LE, Le; Lexer.GE, Ge ]

and parse_shift st =
  parse_binlevel st parse_additive [ Lexer.SHL, Shl; Lexer.SHR, Shr ]

and parse_additive st =
  parse_binlevel st parse_multiplicative [ Lexer.PLUS, Add; Lexer.MINUS, Sub ]

and parse_multiplicative st =
  parse_binlevel st parse_unary
    [ Lexer.STAR, Mul; Lexer.SLASH, Div; Lexer.PERCENT, Mod ]

and parse_unary st =
  let ln = line st in
  match tok st with
  | Lexer.MINUS -> advance st; mk_expr ~line:ln (Un (Neg, parse_unary st))
  | BANG -> advance st; mk_expr ~line:ln (Un (Lnot, parse_unary st))
  | TILDE -> advance st; mk_expr ~line:ln (Un (Bnot, parse_unary st))
  | AMP -> advance st; mk_expr ~line:ln (Addr (parse_unary st))
  | STAR -> advance st; mk_expr ~line:ln (Deref (parse_unary st))
  | PLUSPLUS ->
    advance st;
    mk_expr ~line:ln (Inc_dec { pre = true; inc = true; arg = parse_unary st })
  | MINUSMINUS ->
    advance st;
    mk_expr ~line:ln (Inc_dec { pre = true; inc = false; arg = parse_unary st })
  | PLUS -> advance st; parse_unary st
  | KSIZEOF ->
    advance st;
    if tok st = LPAREN then begin
      (* sizeof(type) or sizeof(expr) -- disambiguate on a type start *)
      let save = st.cur in
      advance st;
      if starts_type st then begin
        let base = parse_base_ty st in
        let t = parse_stars st base in
        expect st RPAREN ")";
        mk_expr ~line:ln (Sizeof_ty t)
      end else begin
        st.cur <- save;
        let e = parse_unary st in
        mk_expr ~line:ln (Sizeof_expr e)
      end
    end else
      mk_expr ~line:ln (Sizeof_expr (parse_unary st))
  | LPAREN ->
    (* cast or parenthesized expression *)
    let save = st.cur in
    advance st;
    if starts_type st then begin
      let base = parse_base_ty st in
      let t = parse_stars st base in
      if tok st = RPAREN then begin
        advance st;
        let e = parse_unary st in
        mk_expr ~line:ln (Cast (t, e))
      end else begin
        st.cur <- save;
        parse_postfix st
      end
    end else begin
      st.cur <- save;
      parse_postfix st
    end
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let rec loop () =
    let ln = line st in
    match tok st with
    | Lexer.LBRACK ->
      advance st;
      let idx = parse_expr st in
      expect st RBRACK "]";
      e := mk_expr ~line:ln (Index (!e, idx));
      loop ()
    | DOT ->
      advance st;
      let f = expect_ident st in
      e := mk_expr ~line:ln (Field (!e, f));
      loop ()
    | ARROW ->
      advance st;
      let f = expect_ident st in
      e := mk_expr ~line:ln (Arrow (!e, f));
      loop ()
    | PLUSPLUS ->
      advance st;
      e := mk_expr ~line:ln (Inc_dec { pre = false; inc = true; arg = !e });
      loop ()
    | MINUSMINUS ->
      advance st;
      e := mk_expr ~line:ln (Inc_dec { pre = false; inc = false; arg = !e });
      loop ()
    | _ -> ()
  in
  loop ();
  !e

and parse_primary st =
  let ln = line st in
  match tok st with
  | Lexer.INT_LIT n -> advance st; mk_expr ~line:ln (Int (n, Tint))
  | CHAR_LIT n -> advance st; mk_expr ~line:ln (Int (n, Tchar))
  | STR_LIT s -> advance st; mk_expr ~line:ln (Str s)
  | WSTR_LIT a -> advance st; mk_expr ~line:ln (Wstr a)
  | KNULL -> advance st; mk_expr ~line:ln (Int (0, Tptr Tvoid))
  | IDENT name ->
    advance st;
    if tok st = LPAREN then begin
      advance st;
      let args = ref [] in
      if tok st <> RPAREN then begin
        args := [ parse_assign st ];
        while tok st = COMMA do
          advance st;
          args := parse_assign st :: !args
        done
      end;
      expect st RPAREN ")";
      mk_expr ~line:ln (Call (name, List.rev !args))
    end else
      mk_expr ~line:ln (Ident name)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN ")";
    e
  | _ -> fail st "expected expression"

(* --- initializers ------------------------------------------------------- *)

let rec parse_init st =
  if tok st = Lexer.LBRACE then begin
    advance st;
    let items = ref [] in
    if tok st <> RBRACE then begin
      items := [ parse_init st ];
      while tok st = COMMA do
        advance st;
        if tok st <> RBRACE then items := parse_init st :: !items
      done
    end;
    expect st RBRACE "}";
    Init_list (List.rev !items)
  end else Init_expr (parse_assign st)

(* --- statements --------------------------------------------------------- *)

let rec parse_stmt st : stmt list =
  match tok st with
  | Lexer.SEMI -> advance st; []
  | LBRACE -> [ Sblock (parse_block st) ]
  | KIF ->
    advance st;
    expect st LPAREN "(";
    let c = parse_expr st in
    expect st RPAREN ")";
    let then_ = parse_stmt st in
    let else_ =
      if tok st = KELSE then begin advance st; parse_stmt st end else []
    in
    [ Sif (c, then_, else_) ]
  | KWHILE ->
    advance st;
    expect st LPAREN "(";
    let c = parse_expr st in
    expect st RPAREN ")";
    [ Swhile (c, parse_stmt st) ]
  | KDO ->
    advance st;
    let body = parse_stmt st in
    expect st KWHILE "while";
    expect st LPAREN "(";
    let c = parse_expr st in
    expect st RPAREN ")";
    expect st SEMI ";";
    [ Sdo (body, c) ]
  | KFOR ->
    advance st;
    expect st LPAREN "(";
    let init =
      if tok st = SEMI then begin advance st; [] end
      else if starts_type st then begin
        let d = parse_local_decl st in
        d
      end else begin
        let e = parse_expr st in
        expect st SEMI ";";
        [ Sexpr e ]
      end
    in
    let cond = if tok st = SEMI then None else Some (parse_expr st) in
    expect st SEMI ";";
    let step = if tok st = RPAREN then None else Some (parse_expr st) in
    expect st RPAREN ")";
    let body = parse_stmt st in
    [ Sfor (init, cond, step, body) ]
  | KRETURN ->
    advance st;
    let e = if tok st = SEMI then None else Some (parse_expr st) in
    expect st SEMI ";";
    [ Sreturn e ]
  | KBREAK -> advance st; expect st SEMI ";"; [ Sbreak ]
  | KCONTINUE -> advance st; expect st SEMI ";"; [ Scontinue ]
  | _ ->
    if starts_type st then parse_local_decl st
    else begin
      let e = parse_expr st in
      expect st SEMI ";";
      [ Sexpr e ]
    end

(* One local declaration statement, possibly with several declarators:
   [int a = 1, *p, buf[10];] *)
and parse_local_decl st : stmt list =
  let base = parse_base_ty st in
  let one () =
    let t = parse_stars st base in
    let name = expect_ident st in
    let t = parse_array_suffix st t in
    let init = if tok st = Lexer.ASSIGN then begin
        advance st;
        Some (parse_init st)
      end else None
    in
    Sdecl (t, name, init)
  in
  let decls = ref [ one () ] in
  while tok st = COMMA do
    advance st;
    decls := one () :: !decls
  done;
  expect st SEMI ";";
  List.rev !decls

and parse_block st : stmt list =
  expect st LBRACE "{";
  let stmts = ref [] in
  while tok st <> RBRACE && tok st <> EOF do
    stmts := List.rev_append (parse_stmt st) !stmts
  done;
  expect st RBRACE "}";
  List.rev !stmts

(* --- top level ---------------------------------------------------------- *)

let parse_struct_def st =
  (* cursor sits on KSTRUCT and the next-next token is LBRACE *)
  expect st KSTRUCT "struct";
  let name = expect_ident st in
  expect st LBRACE "{";
  let fields = ref [] in
  while tok st <> RBRACE do
    let base = parse_base_ty st in
    let one () =
      let t = parse_stars st base in
      let fname = expect_ident st in
      let t = parse_array_suffix st t in
      fields := (t, fname) :: !fields
    in
    one ();
    while tok st = COMMA do advance st; one () done;
    expect st SEMI ";"
  done;
  expect st RBRACE "}";
  expect st SEMI ";";
  Dstruct { sname = name; sfields = List.rev !fields }

let parse_top st : decl list =
  let ln = line st in
  let extern = (tok st = Lexer.KEXTERN) in
  if extern then advance st;
  (if tok st = KSTATIC then advance st);
  if tok st = KSTRUCT
  && (match fst st.toks.(st.cur + 2) with Lexer.LBRACE -> true | _ -> false)
  then [ parse_struct_def st ]
  else begin
    let base = parse_base_ty st in
    if tok st = SEMI then begin advance st; [] end
    else begin
      let t = parse_stars st base in
      let name = expect_ident st in
      if tok st = LPAREN then begin
        (* function definition or declaration *)
        advance st;
        let params = ref [] in
        let varargs = ref false in
        if tok st <> RPAREN then begin
          let one () =
            if tok st = ELLIPSIS then begin
              advance st;
              varargs := true
            end else begin
              let b = parse_base_ty st in
              let pt = parse_stars st b in
              let pname =
                match tok st with
                | IDENT s -> advance st; s
                | _ -> ""
              in
              let pt = parse_array_suffix st pt in
              (* array parameters decay to pointers *)
              let pt = match pt with Tarr (e, _) -> Tptr e | t -> t in
              if not (ty_equal pt Tvoid) then params := (pt, pname) :: !params
            end
          in
          one ();
          while tok st = COMMA do advance st; one () done
        end;
        expect st RPAREN ")";
        let body =
          if tok st = SEMI then begin advance st; None end
          else Some (parse_block st)
        in
        [ Dfunc { fname = name; fret = t; fparams = List.rev !params;
                  fvarargs = !varargs; fbody = body;
                  fextern = extern && body = None; fline = ln } ]
      end else begin
        (* global variable(s) *)
        let decls = ref [] in
        let finish_one t name =
          let init =
            if tok st = Lexer.ASSIGN then begin
              advance st;
              Some (parse_init st)
            end else None
          in
          decls := Dglobal { gname = name; gty = t; ginit = init; gline = ln }
                   :: !decls
        in
        let t = parse_array_suffix st t in
        finish_one t name;
        while tok st = COMMA do
          advance st;
          let t = parse_stars st base in
          let name = expect_ident st in
          let t = parse_array_suffix st t in
          finish_one t name
        done;
        expect st SEMI ";";
        List.rev !decls
      end
    end
  end

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let decls = ref [] in
  while tok st <> EOF do
    decls := List.rev_append (parse_top st) !decls
  done;
  List.rev !decls

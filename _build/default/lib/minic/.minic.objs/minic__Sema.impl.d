lib/minic/sema.ml: Array Ast Builtins Fmt Hashtbl Layout Lexer List Option Parser String

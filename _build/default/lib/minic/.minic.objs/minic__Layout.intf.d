lib/minic/layout.mli: Ast Hashtbl

lib/minic/lexer.mli:

lib/minic/layout.ml: Ast Hashtbl List Printf String

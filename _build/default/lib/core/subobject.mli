(** Sub-object granularity protection (paper section II.D, Figure 3).

    Field pointers that are derived from (indexed or passed to libc) are
    re-tagged with a temporary metadata entry covering just the field;
    the entry is released when the pointer's (provably block-local)
    lifetime ends.  Direct full-width scalar field accesses are left at
    object granularity: they cannot violate sub-object bounds. *)

val narrow : Tir.Ir.modul -> Tir.Ir.func -> int
(** Rewrites eligible field geps in the function; returns the number of
    narrowing sites introduced. *)

lib/core/config.mli:

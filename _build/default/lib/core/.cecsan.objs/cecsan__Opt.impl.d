lib/core/opt.ml: Config Sanitizer Tir Vm

lib/core/subobject.ml: Array Hashtbl Instrument_util List Minic Option Tir

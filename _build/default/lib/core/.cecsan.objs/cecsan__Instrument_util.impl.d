lib/core/instrument_util.ml: Sanitizer

lib/core/costs.ml:

lib/core/instrument.ml: Array Config Hashtbl Instrument_util List Opt Option Subobject Tir

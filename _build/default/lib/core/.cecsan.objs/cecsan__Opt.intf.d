lib/core/opt.mli: Config Sanitizer Tir

lib/core/cecsan.ml: Config Costs Instrument Meta_table Opt Runtime Sanitizer Subobject

lib/core/instrument.mli: Config Tir

lib/core/costs.mli:

lib/core/instrument_util.mli:

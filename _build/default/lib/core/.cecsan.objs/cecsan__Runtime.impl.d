lib/core/runtime.ml: Array Costs Hashtbl List Meta_table Printf String Vm

lib/core/meta_table.ml: Hashtbl List Vm

lib/core/subobject.mli: Tir

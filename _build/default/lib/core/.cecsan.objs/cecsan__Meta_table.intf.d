lib/core/meta_table.mli: Hashtbl Vm

lib/core/runtime.mli: Hashtbl Meta_table Vm

(* Small shared helpers for the instrumentation phases. *)

let is_alloc_family = Sanitizer.Spec.is_alloc_family
